//! Criterion benchmarks of the Section II microbenchmark suite (Tables
//! II-IV, Figures 1-2): how long each characterisation takes to run on
//! the simulator.

use criterion::{criterion_group, criterion_main, Criterion};
use regla_gpu_sim::Gpu;
use regla_microbench as mb;
use std::hint::black_box;

fn bench_bandwidth(c: &mut Criterion) {
    let gpu = Gpu::quadro_6000();
    let mut g = c.benchmark_group("microbench_bandwidth");
    g.sample_size(20);
    g.bench_function("shared_table2", |b| {
        b.iter(|| black_box(mb::measure_shared_bandwidth(&gpu).all_sms_gbs))
    });
    g.bench_function("global_table2", |b| {
        b.iter(|| black_box(mb::measure_global_bandwidth(&gpu).kernel_gbs))
    });
    g.finish();
}

fn bench_latency(c: &mut Criterion) {
    let gpu = Gpu::quadro_6000();
    let mut g = c.benchmark_group("microbench_latency");
    g.sample_size(20);
    g.bench_function("shared_chase_table3", |b| {
        b.iter(|| black_box(mb::measure_shared_latency(&gpu).byte_chain_cycles))
    });
    g.bench_function("global_stride_fig1_point", |b| {
        b.iter(|| {
            black_box(mb::global_latency::measure_latency_at_stride(
                &gpu,
                1 << 22,
                1 << 10,
            ))
        })
    });
    g.bench_function("sync_fig2_point", |b| {
        b.iter(|| black_box(mb::sync_latency::measure_sync_latency(&gpu, 256)))
    });
    g.finish();
}

fn bench_param_derivation(c: &mut Criterion) {
    let gpu = Gpu::quadro_6000();
    let mut g = c.benchmark_group("microbench_params");
    g.sample_size(10);
    g.bench_function("derive_table4", |b| {
        b.iter(|| black_box(mb::derive_params(&gpu).alpha_glb))
    });
    g.finish();
}

criterion_group!(benches, bench_bandwidth, bench_latency, bench_param_derivation);
criterion_main!(benches);
