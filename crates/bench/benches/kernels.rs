//! Criterion wall-clock benchmarks of the simulator kernel launches that
//! power Tables V/VII and Figures 4 and 7-12. These measure the cost of
//! *running the reproduction* (simulation throughput); the simulated-GPU
//! performance numbers themselves come from the figure binaries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use regla_bench::workloads::{c32_batch, f32_batch};
use regla_core::{Layout, Op, RunOpts, Session};
use regla_gpu_sim::ExecMode;
use regla_model::Approach;
use std::hint::black_box;

fn rep(approach: Approach) -> RunOpts {
    RunOpts::builder()
        .exec(ExecMode::Representative)
        .approach(approach)
        .build().unwrap()
}

/// Figure 4's hot path: the per-thread kernels.
fn bench_per_thread(c: &mut Criterion) {
    let session = Session::new();
    let mut g = c.benchmark_group("per_thread");
    g.sample_size(20);
    for n in [4usize, 8, 12] {
        let a = f32_batch(n, n, 4096, true, 4);
        g.bench_with_input(BenchmarkId::new("qr", n), &n, |b, _| {
            b.iter(|| black_box(session.run_with(Op::Qr, &a, None, &rep(Approach::PerThread)).unwrap().run.gflops()))
        });
    }
    g.finish();
}

/// Figure 9 / Table V hot path: per-block factorization launches.
fn bench_per_block(c: &mut Criterion) {
    let session = Session::new();
    let mut g = c.benchmark_group("per_block");
    g.sample_size(10);
    for n in [24usize, 56, 104] {
        let a = f32_batch(n, n, 1120, true, 5);
        g.bench_with_input(BenchmarkId::new("qr", n), &n, |b, _| {
            b.iter(|| black_box(session.run_with(Op::Qr, &a, None, &rep(Approach::PerBlock)).unwrap().run.gflops()))
        });
        g.bench_with_input(BenchmarkId::new("lu", n), &n, |b, _| {
            b.iter(|| black_box(session.run_with(Op::Lu, &a, None, &rep(Approach::PerBlock)).unwrap().run.gflops()))
        });
    }
    g.finish();
}

/// Figure 7's layout variants.
fn bench_layouts(c: &mut Criterion) {
    let session = Session::new();
    let mut g = c.benchmark_group("layouts_fig7");
    g.sample_size(10);
    let n = 48;
    let a = f32_batch(n, n, 560, true, 7);
    let b2 = f32_batch(n, 1, 560, false, 8);
    for layout in [Layout::TwoDCyclic, Layout::ColCyclic, Layout::RowCyclic] {
        let opts = RunOpts::builder()
            .exec(ExecMode::Representative)
            .approach(Approach::PerBlock)
            .layout(layout)
            .build().unwrap();
        g.bench_function(layout.name(), |bch| {
            bch.iter(|| black_box(session.run_with(Op::QrSolve, &a, Some(&b2), &opts).unwrap().run.gflops()))
        });
    }
    g.finish();
}

/// Table VII's hot path: batched complex QR (per-block and tiled).
fn bench_stap(c: &mut Criterion) {
    let session = Session::new();
    let mut g = c.benchmark_group("stap_table7");
    g.sample_size(10);
    let small = c32_batch(80, 16, 64, false, 9);
    g.bench_function("complex_qr_80x16", |b| {
        b.iter(|| {
            black_box(
                session.run_with(Op::Qr, &small, None, &rep(Approach::PerBlock)).unwrap().run.gflops(),
            )
        })
    });
    let tall = c32_batch(240, 66, 8, false, 10);
    g.bench_function("complex_qr_240x66_tiled", |b| {
        b.iter(|| black_box(session.run_with(Op::Qr, &tall, None, &rep(Approach::Tiled)).unwrap().run.gflops()))
    });
    g.finish();
}

/// Full functional execution (all blocks computed), the correctness path.
fn bench_full_exec(c: &mut Criterion) {
    let session = Session::new();
    let mut g = c.benchmark_group("full_exec");
    g.sample_size(10);
    let a = f32_batch(24, 24, 256, true, 11);
    g.bench_function("qr_24x24_x256_full", |b| {
        b.iter(|| black_box(session.run_with(Op::Qr, &a, None, &RunOpts::default()).unwrap().run.gflops()))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_per_thread,
    bench_per_block,
    bench_layouts,
    bench_stap,
    bench_full_exec
);
criterion_main!(benches);
