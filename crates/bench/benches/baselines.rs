//! Criterion benchmarks of the comparator paths: the CPU ("MKL") baseline
//! that Figures 11-12 measure, the hybrid (MAGMA-style) model, and the
//! analytic model evaluation itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use regla_bench::workloads::f32_batch;
use regla_cpu::{run_batch, CpuAlg};
use regla_gpu_sim::GpuConfig;
use regla_hybrid::{blocked_qr_in_place, hybrid_time, HybridCfg, Start};
use regla_model::{block_plan, per_block, Algorithm, ModelParams};
use std::hint::black_box;

fn bench_cpu_baseline(c: &mut Criterion) {
    let mut g = c.benchmark_group("cpu_baseline");
    g.sample_size(10);
    for n in [16usize, 56] {
        let a = f32_batch(n, n, 64, true, 20);
        g.bench_with_input(BenchmarkId::new("qr_x64", n), &n, |b, _| {
            b.iter(|| black_box(run_batch(CpuAlg::Qr, &a, 1)))
        });
        g.bench_with_input(BenchmarkId::new("lu_pivot_x64", n), &n, |b, _| {
            b.iter(|| black_box(run_batch(CpuAlg::LuPivot, &a, 1)))
        });
    }
    g.finish();
}

fn bench_hybrid(c: &mut Criterion) {
    let cfg = GpuConfig::quadro_6000();
    let hybrid = HybridCfg::magma_like(&cfg);
    let mut g = c.benchmark_group("hybrid_baseline");
    g.sample_size(20);
    g.bench_function("blocked_qr_256x256_functional", |b| {
        let a = f32_batch(256, 256, 1, true, 21).mat(0);
        b.iter(|| {
            let mut m = a.clone();
            black_box(blocked_qr_in_place(&mut m, 96));
        })
    });
    g.bench_function("magma_time_model_4096", |b| {
        b.iter(|| black_box(hybrid_time(&hybrid, Algorithm::Qr, 4096, 4096, Start::Cpu).total_s))
    });
    g.finish();
}

fn bench_model(c: &mut Criterion) {
    let p = ModelParams::table_iv();
    let cfg = GpuConfig::quadro_6000();
    let mut g = c.benchmark_group("analytic_model");
    g.sample_size(50);
    g.bench_function("predict_block_sweep_fig9", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for n in (8..=144).step_by(8) {
                acc += per_block::predict_block(&p, &cfg, Algorithm::Qr, n, n, 0, 1, 8000).gflops;
            }
            black_box(acc)
        })
    });
    g.bench_function("qr_panels_56", |b| {
        let plan = block_plan(56, 56, 0, 1);
        b.iter(|| black_box(per_block::qr_panels(&p, &plan, 8).len()))
    });
    g.bench_function("dispatch_decision", |b| {
        b.iter(|| {
            black_box(regla_model::choose(&p, &cfg, Algorithm::Qr, 56, 56, 5000, 1).unwrap().choice)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_cpu_baseline, bench_hybrid, bench_model);
criterion_main!(benches);
