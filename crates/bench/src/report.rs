//! Markdown table rendering for the experiment reports.

use std::fmt::Write as _;

/// A simple markdown table builder.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// Render as markdown with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (w, c) in widths.iter_mut().zip(r) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}\n", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                let _ = write!(s, " {c:>w$} |");
            }
            s
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{}|", "-".repeat(w + 2));
        }
        let _ = writeln!(out, "{sep}");
        for r in &self.rows {
            let _ = writeln!(out, "{}", line(r, &widths));
        }
        for n in &self.notes {
            let _ = writeln!(out, "\n> {n}");
        }
        out.push('\n');
        out
    }

    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Render as CSV (plot-ready; notes are omitted).
    pub fn to_csv(&self) -> String {
        let esc = |c: &str| -> String {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(&self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a float with sensible precision for tables.
pub fn f(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new("Demo", &["n", "GFLOPS"]);
        t.row(&["8".into(), "12.5".into()]);
        t.row(&["144".into(), "200".into()]);
        t.note("a note");
        let r = t.render();
        assert!(r.contains("## Demo"));
        assert!(r.contains("| GFLOPS |"));
        assert!(r.contains("> a note"));
        assert!(r.matches('\n').count() >= 6);
    }

    #[test]
    fn float_formatting_scales() {
        // {:.0} rounds ties to even.
        assert_eq!(f(1234.5), "1234");
        assert_eq!(f(56.78), "56.8");
        assert_eq!(f(1.234), "1.23");
        assert_eq!(f(0.0), "0");
    }

    #[test]
    fn csv_escapes_and_lists_rows() {
        let mut t = Table::new("t", &["a,b", "c"]);
        t.row(&["1".into(), "x\"y".into()]);
        let csv = t.to_csv();
        assert!(csv.starts_with("\"a,b\",c\n"));
        assert!(csv.contains("1,\"x\"\"y\"\n"));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only-one".into()]);
    }
}
