//! Per-experiment wall-clock telemetry for the benchmark harness.
//!
//! The simulator keeps process-wide counters of its own host-side cost
//! (`regla_gpu_sim::telemetry`); this module drains them once per
//! experiment and renders the collected records as `results/BENCH_sim.json`
//! so regressions in *simulator* speed — as opposed to simulated GPU time —
//! are visible across commits. JSON is hand-rolled: the workspace has no
//! serde, and the schema is flat.
//!
//! Fault campaigns ride on the same channel: each record also drains the
//! simulator's injected-fault count and the recovery totals experiments
//! file via [`file_recovery`] from their `Session`/`Fleet` counters
//! (detected / retried / fell-back / recovered / unrecovered), so
//! `results/BENCH_sim.json` shows whether a resilience experiment left
//! anything unrecovered.

use regla_core::RecoveryTelemetry;
use regla_gpu_sim::{telemetry, SimTelemetry};
use std::sync::Mutex;

// Recovery counters live on each `Session`/`Fleet` (there is no
// process-wide shim anymore), so experiments that exercise the recovery
// layer file their drained totals here and [`Collector::record`] folds
// everything filed since the previous experiment into that record.
static RECOVERY: Mutex<Option<RecoveryTelemetry>> = Mutex::new(None);

/// File recovery totals drained from a `Session::take_recovery_totals` /
/// `Fleet::take_recovery_totals` for the current experiment. Totals
/// accumulate until the next [`Collector::record`] call drains them.
pub fn file_recovery(t: RecoveryTelemetry) {
    let mut g = RECOVERY.lock().unwrap();
    let acc = g.get_or_insert_with(RecoveryTelemetry::default);
    acc.faults_detected += t.faults_detected;
    acc.retried += t.retried;
    acc.fell_back += t.fell_back;
    acc.recovered += t.recovered;
    acc.unrecovered += t.unrecovered;
    acc.device_failovers += t.device_failovers;
    acc.shards_stolen += t.shards_stolen;
    acc.deadline_misses += t.deadline_misses;
    acc.breaker_trips += t.breaker_trips;
    acc.cpu_degraded += t.cpu_degraded;
    acc.verify_failures += t.verify_failures;
    acc.verify_recovered += t.verify_recovered;
}

/// Drain the filed recovery totals.
fn take_recovery() -> RecoveryTelemetry {
    RECOVERY.lock().unwrap().take().unwrap_or_default()
}

/// One (algorithm, shape) summary row from the `model_discrepancy`
/// experiment: how far the analytic model's per-phase cycle estimates sit
/// from the simulator's recorded phase spans.
#[derive(Clone, Debug)]
pub struct DiscrepancyRow {
    pub alg: String,
    pub shape: String,
    pub approach: String,
    /// Number of joined phase labels.
    pub phases: usize,
    /// Mean of per-phase `|predicted - simulated| / simulated` in percent.
    pub mean_abs_error_pct: f64,
    /// Signed whole-wave error in percent.
    pub total_error_pct: f64,
}

static DISCREPANCY: Mutex<Vec<DiscrepancyRow>> = Mutex::new(Vec::new());

/// File the discrepancy experiment's summary rows for the harness run;
/// [`Collector::to_json`] embeds them in `results/BENCH_sim.json`.
/// Replaces any previously filed rows (the experiment is the only writer).
pub fn record_discrepancy(rows: Vec<DiscrepancyRow>) {
    *DISCREPANCY.lock().unwrap() = rows;
}

/// Snapshot of the currently filed discrepancy rows.
pub fn discrepancy_rows() -> Vec<DiscrepancyRow> {
    DISCREPANCY.lock().unwrap().clone()
}

/// One (device, op, shape) summary row from the `pipeline` experiment:
/// end-to-end time of the chunked stream pipeline against the synchronous
/// schedule, measured on the timeline and predicted by the model.
#[derive(Clone, Debug)]
pub struct PipelineRow {
    /// Device configuration name (e.g. `quadro_6000_dual_copy`).
    pub config: String,
    pub op: String,
    pub shape: String,
    pub batch: usize,
    pub chunks: usize,
    pub streams: usize,
    pub copy_engines: usize,
    /// Synchronous (no-overlap) end-to-end milliseconds of the same
    /// chunked schedule.
    pub sync_ms: f64,
    /// Resolved stream-timeline end-to-end milliseconds.
    pub pipelined_ms: f64,
    /// `sync_ms / pipelined_ms`.
    pub speedup: f64,
    /// The model's predicted end-to-end speedup for the same schedule.
    pub predicted_speedup: f64,
    /// Signed `(predicted_pipelined - pipelined) / pipelined` in percent.
    pub model_error_pct: f64,
    /// False when the kernel stage reused the measured mean (no analytic
    /// kernel model for the op) rather than a model prediction.
    pub kernel_modeled: bool,
}

static PIPELINE: Mutex<Vec<PipelineRow>> = Mutex::new(Vec::new());

/// File the pipeline experiment's summary rows for the harness run;
/// [`Collector::to_json`] embeds them in `results/BENCH_sim.json`.
/// Replaces any previously filed rows (the experiment is the only writer).
pub fn record_pipeline(rows: Vec<PipelineRow>) {
    *PIPELINE.lock().unwrap() = rows;
}

/// Snapshot of the currently filed pipeline rows.
pub fn pipeline_rows() -> Vec<PipelineRow> {
    PIPELINE.lock().unwrap().clone()
}

/// One (workload, solver, shape) row from the `sim_throughput`
/// experiment: simulator throughput of the fast (observer-free) execution
/// path against the fully instrumented slow path over an identical launch
/// sequence.
#[derive(Clone, Debug)]
pub struct ThroughputRow {
    /// Workload family (`fig10_pt`, `fig10_pb`, `sched_sweep`, ...).
    pub workload: String,
    pub op: String,
    pub shape: String,
    /// Functional blocks each leg replayed (equal by construction).
    pub sim_blocks: usize,
    /// Simulator seconds per leg (`sim_wall_s`, transfers excluded).
    pub fast_sim_s: f64,
    pub slow_sim_s: f64,
    /// Blocks per second per leg.
    pub fast_blocks_per_sec: f64,
    pub slow_blocks_per_sec: f64,
    /// `slow_sim_s / fast_sim_s`.
    pub speedup: f64,
    /// Whether the two legs produced bit-identical device results.
    pub bit_identical: bool,
}

static THROUGHPUT: Mutex<Vec<ThroughputRow>> = Mutex::new(Vec::new());

/// File the throughput experiment's rows for the harness run;
/// [`Collector::to_json`] embeds them in `results/BENCH_sim.json`.
/// Replaces any previously filed rows (the experiment is the only writer).
pub fn record_throughput(rows: Vec<ThroughputRow>) {
    *THROUGHPUT.lock().unwrap() = rows;
}

/// Snapshot of the currently filed throughput rows.
pub fn throughput_rows() -> Vec<ThroughputRow> {
    THROUGHPUT.lock().unwrap().clone()
}

/// One (campaign, device) row from the `chaos_campaign` experiment: what
/// the fleet scheduler did on one device — planned shard, chunks actually
/// run, steals/rescues, failed dispatches, breaker activity — plus a
/// `cpu-pool` pseudo-device for work degraded to the host.
#[derive(Clone, Debug)]
pub struct FleetRow {
    pub campaign: String,
    /// Device config name, or `"cpu-pool"` for the degraded mode.
    pub device: String,
    /// Problems the throughput-proportional sharding planned here.
    pub planned_problems: usize,
    pub chunks_run: usize,
    pub problems_run: usize,
    pub steals: usize,
    pub rescues: usize,
    pub failed_dispatches: usize,
    pub deadline_misses: usize,
    pub breaker_trips: usize,
    /// Breaker state at campaign end (`Closed` / `Open` / `HalfOpen`).
    pub breaker_state: String,
    /// The device's simulated clock at campaign end.
    pub sim_time_s: f64,
}

static FLEET: Mutex<Vec<FleetRow>> = Mutex::new(Vec::new());

/// File the chaos experiment's per-device rows for the harness run;
/// [`Collector::to_json`] embeds them in `results/BENCH_sim.json`.
/// Replaces any previously filed rows (the experiment is the only writer).
pub fn record_fleet(rows: Vec<FleetRow>) {
    *FLEET.lock().unwrap() = rows;
}

/// Snapshot of the currently filed fleet rows.
pub fn fleet_rows() -> Vec<FleetRow> {
    FLEET.lock().unwrap().clone()
}

/// One scenario row from the `serve_load` experiment: the aggregate
/// metrics of a served open-loop campaign (see `regla_serve::ServeReport`)
/// under one service configuration.
#[derive(Clone, Debug)]
pub struct ServeRow {
    /// Scenario label (`coalesced`, `uncoalesced`, `overload`, `chaos`).
    pub scenario: String,
    pub offered: usize,
    pub served: usize,
    pub shed: usize,
    pub request_errors: usize,
    /// Coalesced fleet dispatches issued.
    pub dispatches: usize,
    pub problems: usize,
    /// Served requests per dispatch.
    pub coalescing: f64,
    pub shed_rate: f64,
    /// Request latency percentiles on the simulated clock, milliseconds.
    pub p50_ms: f64,
    pub p99_ms: f64,
    pub p999_ms: f64,
    /// Served requests that blew their latency budget.
    pub late: usize,
    /// Served problems per simulated second of makespan.
    pub problems_per_sec: f64,
    /// Served problems per simulated second of busy time (the coalescing
    /// gate's capacity metric).
    pub busy_problems_per_sec: f64,
    /// Flattened per-device dispatch counts (`name:count; ...`).
    pub device_dispatches: String,
}

static SERVE: Mutex<Vec<ServeRow>> = Mutex::new(Vec::new());

/// File the serve experiment's scenario rows for the harness run;
/// [`Collector::to_json`] embeds them in `results/BENCH_sim.json`.
/// Replaces any previously filed rows (the experiment is the only writer).
pub fn record_serve(rows: Vec<ServeRow>) {
    *SERVE.lock().unwrap() = rows;
}

/// Snapshot of the currently filed serve rows.
pub fn serve_rows() -> Vec<ServeRow> {
    SERVE.lock().unwrap().clone()
}

/// One (alg, shape, batch) row from the `autotune` experiment: the tuned
/// plan against the paper's hand heuristic and the exhaustive-search
/// winner, with regret in simulated cycles.
#[derive(Clone, Debug)]
pub struct TuneRow {
    pub alg: String,
    /// `m x n` (+`rhs` carried columns when nonzero).
    pub shape: String,
    pub batch: usize,
    /// Model-priced candidates in the enumerated design space.
    pub candidates: usize,
    /// Distinct execution shapes the tuner validated in the simulator.
    pub validated: usize,
    /// Compact plan strings (`approach/layout/threads/panel`).
    pub heuristic: String,
    pub tuned: String,
    pub best: String,
    /// Model-predicted cycles of the tuned plan.
    pub predicted_cycles: f64,
    /// Simulated cycles: tuned pick, heuristic pick, exhaustive winner.
    pub tuned_sim_cycles: f64,
    pub heuristic_sim_cycles: f64,
    pub exhaustive_sim_cycles: f64,
    /// `(tuned - exhaustive) / exhaustive`, percent (the gate metric).
    pub regret_pct: f64,
    /// `(heuristic - exhaustive) / exhaustive`, percent.
    pub heuristic_regret_pct: f64,
    /// Whether tuning changed the execution shape vs the hand heuristic.
    pub plan_changed: bool,
}

static TUNE: Mutex<Vec<TuneRow>> = Mutex::new(Vec::new());

/// File the autotune experiment's per-key rows for the harness run;
/// [`Collector::to_json`] embeds them in `results/BENCH_sim.json`.
/// Replaces any previously filed rows (the experiment is the only writer).
pub fn record_tune(rows: Vec<TuneRow>) {
    *TUNE.lock().unwrap() = rows;
}

/// Snapshot of the currently filed autotune rows.
pub fn tune_rows() -> Vec<TuneRow> {
    TUNE.lock().unwrap().clone()
}

/// One (alg, shape) row from the `verify_campaign` experiment: silent
/// corruption injected by the simulator against what the ABFT checksum /
/// residual screens caught, plus the measured and model-predicted cost of
/// screening a clean sweep.
#[derive(Clone, Debug)]
pub struct VerifyRow {
    pub alg: String,
    pub shape: String,
    pub approach: String,
    pub problems: usize,
    /// Silent faults the simulator actually fired (ground truth from
    /// `LaunchStats::silent_faults`; invisible to the recovery layer).
    pub injected: usize,
    /// Injected faults whose block produced at least one `VerifyFailed`.
    pub detected: usize,
    /// `detected / injected` (1.0 when nothing was injected).
    pub detection_rate: f64,
    /// `VerifyFailed` verdicts on problems no silent fault touched.
    pub false_positives: usize,
    /// Flagged problems the recovery layer re-solved to a settled verdict.
    pub recovered: usize,
    /// Whether the clean sweep's outputs with verification on and off
    /// match bit for bit (the screens must be strictly observational).
    pub bit_identical: bool,
    /// Measured host wall-clock of the screens over the clean sweep,
    /// milliseconds (best-of-N delta between verified and unverified).
    pub measured_screen_ms: f64,
    /// The model's predicted screen cost for the same sweep,
    /// milliseconds (`regla_model::verify_seconds`).
    pub predicted_screen_ms: f64,
}

static VERIFY: Mutex<Vec<VerifyRow>> = Mutex::new(Vec::new());

/// File the verify experiment's rows for the harness run;
/// [`Collector::to_json`] embeds them in `results/BENCH_sim.json`.
/// Replaces any previously filed rows (the experiment is the only writer).
pub fn record_verify(rows: Vec<VerifyRow>) {
    *VERIFY.lock().unwrap() = rows;
}

/// Snapshot of the currently filed verify rows.
pub fn verify_rows() -> Vec<VerifyRow> {
    VERIFY.lock().unwrap().clone()
}

/// One experiment's host-side cost.
#[derive(Clone, Debug)]
pub struct ExperimentTelemetry {
    pub id: String,
    /// Wall-clock of the whole experiment (including CPU baselines etc.).
    pub wall_s: f64,
    /// The simulator's share: launches, functional blocks, wall time,
    /// replay thread counts, injected faults.
    pub sim: SimTelemetry,
    /// What the recovery layer did during the experiment.
    pub recovery: RecoveryTelemetry,
}

/// Collects per-experiment simulator telemetry for one harness run.
#[derive(Default)]
pub struct Collector {
    records: Vec<ExperimentTelemetry>,
}

impl Collector {
    /// Start collecting; resets the simulator's and the filed recovery
    /// counters so the first experiment doesn't inherit earlier launches.
    pub fn new() -> Self {
        telemetry::take();
        take_recovery();
        record_discrepancy(Vec::new());
        record_pipeline(Vec::new());
        record_throughput(Vec::new());
        record_fleet(Vec::new());
        record_serve(Vec::new());
        record_tune(Vec::new());
        record_verify(Vec::new());
        Collector::default()
    }

    /// Close out one experiment: drain the simulator counters and the
    /// recovery totals filed via [`file_recovery`] since the previous
    /// call, and file them under `id`.
    pub fn record(&mut self, id: &str, wall_s: f64) -> &ExperimentTelemetry {
        self.records.push(ExperimentTelemetry {
            id: id.to_string(),
            wall_s,
            sim: telemetry::take(),
            recovery: take_recovery(),
        });
        self.records.last().unwrap()
    }

    pub fn records(&self) -> &[ExperimentTelemetry] {
        &self.records
    }

    /// One-line human summary of an experiment's simulator cost.
    pub fn summary_line(r: &ExperimentTelemetry) -> String {
        let mut line = format!(
            "{}: {:.2}s wall ({:.2}s in simulator, {} launches, {} blocks \
             replayed at {:.0} blocks/s, {} host thread(s))",
            r.id,
            r.wall_s,
            r.sim.wall_s,
            r.sim.launches,
            r.sim.functional_blocks,
            r.sim.blocks_per_sec(),
            r.sim.max_host_threads.max(1),
        );
        if r.sim.faults_injected > 0 || r.recovery.faults_detected > 0 {
            line.push_str(&format!(
                " [faults: {} injected, {} detected, {} retried, {} CPU \
                 fallback, {} unrecovered]",
                r.sim.faults_injected,
                r.recovery.faults_detected,
                r.recovery.retried,
                r.recovery.fell_back,
                r.recovery.unrecovered,
            ));
        }
        if r.recovery.verify_failures > 0 {
            line.push_str(&format!(
                " [verify: {} flagged, {} recovered]",
                r.recovery.verify_failures, r.recovery.verify_recovered,
            ));
        }
        line
    }

    /// Render every record as a JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"experiments\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"id\": \"{}\", \"wall_s\": {:.6}, \"sim_wall_s\": {:.6}, \
                 \"harness_overhead_s\": {:.6}, \
                 \"launches\": {}, \"functional_blocks\": {}, \
                 \"blocks_per_sec\": {:.1}, \"host_threads\": {}, \
                 \"faults_injected\": {}, \"faults_detected\": {}, \
                 \"retried\": {}, \"fell_back\": {}, \"recovered\": {}, \
                 \"unrecovered\": {}, \"device_failovers\": {}, \
                 \"shards_stolen\": {}, \"deadline_misses\": {}, \
                 \"breaker_trips\": {}, \"cpu_degraded\": {}, \
                 \"verify_failures\": {}, \"verify_recovered\": {}}}{}\n",
                escape(&r.id),
                r.wall_s,
                r.sim.wall_s,
                (r.wall_s - r.sim.wall_s).max(0.0),
                r.sim.launches,
                r.sim.functional_blocks,
                r.sim.blocks_per_sec(),
                r.sim.max_host_threads.max(1),
                r.sim.faults_injected,
                r.recovery.faults_detected,
                r.recovery.retried,
                r.recovery.fell_back,
                r.recovery.recovered,
                r.recovery.unrecovered,
                r.recovery.device_failovers,
                r.recovery.shards_stolen,
                r.recovery.deadline_misses,
                r.recovery.breaker_trips,
                r.recovery.cpu_degraded,
                r.recovery.verify_failures,
                r.recovery.verify_recovered,
                if i + 1 < self.records.len() { "," } else { "" },
            ));
        }
        s.push_str("  ],\n  \"model_discrepancy\": [\n");
        let rows = discrepancy_rows();
        for (i, r) in rows.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"alg\": \"{}\", \"shape\": \"{}\", \"approach\": \"{}\", \
                 \"phases\": {}, \"mean_abs_error_pct\": {:.2}, \
                 \"total_error_pct\": {:.2}}}{}\n",
                escape(&r.alg),
                escape(&r.shape),
                escape(&r.approach),
                r.phases,
                r.mean_abs_error_pct,
                r.total_error_pct,
                if i + 1 < rows.len() { "," } else { "" },
            ));
        }
        s.push_str("  ],\n  \"pipeline\": [\n");
        let rows = pipeline_rows();
        for (i, r) in rows.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"config\": \"{}\", \"op\": \"{}\", \"shape\": \"{}\", \
                 \"batch\": {}, \"chunks\": {}, \"streams\": {}, \
                 \"copy_engines\": {}, \"sync_ms\": {:.4}, \
                 \"pipelined_ms\": {:.4}, \"speedup\": {:.3}, \
                 \"predicted_speedup\": {:.3}, \"model_error_pct\": {:.2}, \
                 \"kernel_modeled\": {}}}{}\n",
                escape(&r.config),
                escape(&r.op),
                escape(&r.shape),
                r.batch,
                r.chunks,
                r.streams,
                r.copy_engines,
                r.sync_ms,
                r.pipelined_ms,
                r.speedup,
                r.predicted_speedup,
                r.model_error_pct,
                r.kernel_modeled,
                if i + 1 < rows.len() { "," } else { "" },
            ));
        }
        s.push_str("  ],\n  \"sim_throughput\": [\n");
        let rows = throughput_rows();
        for (i, r) in rows.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"workload\": \"{}\", \"op\": \"{}\", \"shape\": \"{}\", \
                 \"sim_blocks\": {}, \"fast_sim_s\": {:.6}, \
                 \"slow_sim_s\": {:.6}, \"fast_blocks_per_sec\": {:.1}, \
                 \"slow_blocks_per_sec\": {:.1}, \"speedup\": {:.2}, \
                 \"bit_identical\": {}}}{}\n",
                escape(&r.workload),
                escape(&r.op),
                escape(&r.shape),
                r.sim_blocks,
                r.fast_sim_s,
                r.slow_sim_s,
                r.fast_blocks_per_sec,
                r.slow_blocks_per_sec,
                r.speedup,
                r.bit_identical,
                if i + 1 < rows.len() { "," } else { "" },
            ));
        }
        s.push_str("  ],\n  \"fleet\": [\n");
        let rows = fleet_rows();
        for (i, r) in rows.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"campaign\": \"{}\", \"device\": \"{}\", \
                 \"planned_problems\": {}, \"chunks_run\": {}, \
                 \"problems_run\": {}, \"steals\": {}, \"rescues\": {}, \
                 \"failed_dispatches\": {}, \"deadline_misses\": {}, \
                 \"breaker_trips\": {}, \"breaker_state\": \"{}\", \
                 \"sim_time_s\": {:.6}}}{}\n",
                escape(&r.campaign),
                escape(&r.device),
                r.planned_problems,
                r.chunks_run,
                r.problems_run,
                r.steals,
                r.rescues,
                r.failed_dispatches,
                r.deadline_misses,
                r.breaker_trips,
                escape(&r.breaker_state),
                r.sim_time_s,
                if i + 1 < rows.len() { "," } else { "" },
            ));
        }
        s.push_str("  ],\n  \"serve\": [\n");
        let rows = serve_rows();
        for (i, r) in rows.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"scenario\": \"{}\", \"offered\": {}, \"served\": {}, \
                 \"shed\": {}, \"request_errors\": {}, \"dispatches\": {}, \
                 \"problems\": {}, \"coalescing\": {:.2}, \
                 \"shed_rate\": {:.4}, \"p50_ms\": {:.4}, \"p99_ms\": {:.4}, \
                 \"p999_ms\": {:.4}, \"late\": {}, \
                 \"problems_per_sec\": {:.1}, \
                 \"busy_problems_per_sec\": {:.1}, \
                 \"device_dispatches\": \"{}\"}}{}\n",
                escape(&r.scenario),
                r.offered,
                r.served,
                r.shed,
                r.request_errors,
                r.dispatches,
                r.problems,
                r.coalescing,
                r.shed_rate,
                r.p50_ms,
                r.p99_ms,
                r.p999_ms,
                r.late,
                r.problems_per_sec,
                r.busy_problems_per_sec,
                escape(&r.device_dispatches),
                if i + 1 < rows.len() { "," } else { "" },
            ));
        }
        s.push_str("  ],\n  \"tune\": [\n");
        let rows = tune_rows();
        for (i, r) in rows.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"alg\": \"{}\", \"shape\": \"{}\", \"batch\": {}, \
                 \"candidates\": {}, \"validated\": {}, \
                 \"heuristic\": \"{}\", \"tuned\": \"{}\", \"best\": \"{}\", \
                 \"predicted_cycles\": {:.1}, \"tuned_sim_cycles\": {:.1}, \
                 \"heuristic_sim_cycles\": {:.1}, \
                 \"exhaustive_sim_cycles\": {:.1}, \"regret_pct\": {:.3}, \
                 \"heuristic_regret_pct\": {:.3}, \"plan_changed\": {}}}{}\n",
                escape(&r.alg),
                escape(&r.shape),
                r.batch,
                r.candidates,
                r.validated,
                escape(&r.heuristic),
                escape(&r.tuned),
                escape(&r.best),
                r.predicted_cycles,
                r.tuned_sim_cycles,
                r.heuristic_sim_cycles,
                r.exhaustive_sim_cycles,
                r.regret_pct,
                r.heuristic_regret_pct,
                r.plan_changed,
                if i + 1 < rows.len() { "," } else { "" },
            ));
        }
        s.push_str("  ],\n  \"verify\": [\n");
        let rows = verify_rows();
        for (i, r) in rows.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"alg\": \"{}\", \"shape\": \"{}\", \
                 \"approach\": \"{}\", \"problems\": {}, \"injected\": {}, \
                 \"detected\": {}, \"detection_rate\": {:.4}, \
                 \"false_positives\": {}, \"recovered\": {}, \
                 \"bit_identical\": {}, \"measured_screen_ms\": {:.3}, \
                 \"predicted_screen_ms\": {:.3}}}{}\n",
                escape(&r.alg),
                escape(&r.shape),
                escape(&r.approach),
                r.problems,
                r.injected,
                r.detected,
                r.detection_rate,
                r.false_positives,
                r.recovered,
                r.bit_identical,
                r.measured_screen_ms,
                r.predicted_screen_ms,
                if i + 1 < rows.len() { "," } else { "" },
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Write the JSON document to `path`.
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            '\n' => vec!['\\', 'n'],
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    // The discrepancy rows are process-global; serialize the tests that
    // touch them.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn json_has_one_entry_per_experiment() {
        let _g = TEST_LOCK.lock().unwrap();
        let mut c = Collector::new();
        c.record("exp_a", 0.5);
        c.record("exp_b", 1.5);
        let j = c.to_json();
        assert!(j.contains("\"id\": \"exp_a\""));
        assert!(j.contains("\"id\": \"exp_b\""));
        assert!(j.contains("\"wall_s\": 1.500000"));
        assert!(j.contains("\"faults_injected\""));
        assert!(j.contains("\"unrecovered\""));
        assert_eq!(j.matches("\"launches\"").count(), 2);
        // Exactly one trailing comma between the two entries.
        assert_eq!(j.matches("},\n").count(), 1);
        // The discrepancy section is present even when no rows are filed.
        assert!(j.contains("\"model_discrepancy\": ["));
        // Harness overhead = wall minus simulator share, clamped at zero.
        assert!(j.contains("\"harness_overhead_s\": 0.500000"));
        assert!(j.contains("\"harness_overhead_s\": 1.500000"));
    }

    #[test]
    fn throughput_rows_land_in_the_json() {
        let _g = TEST_LOCK.lock().unwrap();
        let mut c = Collector::new();
        c.record("sim_throughput", 0.1);
        record_throughput(vec![ThroughputRow {
            workload: "fig10_pt".into(),
            op: "QrSolve".into(),
            shape: "32x32x6400".into(),
            sim_blocks: 100,
            fast_sim_s: 0.05,
            slow_sim_s: 1.0,
            fast_blocks_per_sec: 2000.0,
            slow_blocks_per_sec: 100.0,
            speedup: 20.0,
            bit_identical: true,
        }]);
        let j = c.to_json();
        assert!(j.contains("\"sim_throughput\": ["));
        assert!(j.contains("\"workload\": \"fig10_pt\""));
        assert!(j.contains("\"speedup\": 20.00"));
        assert!(j.contains("\"bit_identical\": true"));
        record_throughput(Vec::new());
    }

    #[test]
    fn discrepancy_rows_land_in_the_json() {
        let _g = TEST_LOCK.lock().unwrap();
        let mut c = Collector::new();
        c.record("model_discrepancy", 0.1);
        record_discrepancy(vec![DiscrepancyRow {
            alg: "Householder QR".into(),
            shape: "56x56".into(),
            approach: "PerBlock".into(),
            phases: 23,
            mean_abs_error_pct: 12.5,
            total_error_pct: -3.25,
        }]);
        let j = c.to_json();
        assert!(j.contains("\"alg\": \"Householder QR\""));
        assert!(j.contains("\"shape\": \"56x56\""));
        assert!(j.contains("\"phases\": 23"));
        assert!(j.contains("\"mean_abs_error_pct\": 12.50"));
        assert!(j.contains("\"total_error_pct\": -3.25"));
        record_discrepancy(Vec::new());
    }

    #[test]
    fn fleet_rows_land_in_the_json() {
        let _g = TEST_LOCK.lock().unwrap();
        let mut c = Collector::new();
        c.record("chaos_campaign", 0.2);
        record_fleet(vec![FleetRow {
            campaign: "QR 8x8".into(),
            device: "quadro-6000".into(),
            planned_problems: 1365,
            chunks_run: 9,
            problems_run: 2048,
            steals: 3,
            rescues: 2,
            failed_dispatches: 1,
            deadline_misses: 1,
            breaker_trips: 1,
            breaker_state: "Closed".into(),
            sim_time_s: 0.0123,
        }]);
        let j = c.to_json();
        assert!(j.contains("\"fleet\": ["));
        assert!(j.contains("\"device\": \"quadro-6000\""));
        assert!(j.contains("\"rescues\": 2"));
        assert!(j.contains("\"breaker_state\": \"Closed\""));
        // The experiment records carry the device-level counters too.
        assert!(j.contains("\"device_failovers\""));
        assert!(j.contains("\"cpu_degraded\""));
        record_fleet(Vec::new());
    }

    #[test]
    fn serve_rows_land_in_the_json() {
        let _g = TEST_LOCK.lock().unwrap();
        let mut c = Collector::new();
        c.record("serve_load", 0.3);
        record_serve(vec![ServeRow {
            scenario: "coalesced".into(),
            offered: 400,
            served: 398,
            shed: 2,
            request_errors: 0,
            dispatches: 40,
            problems: 25000,
            coalescing: 9.95,
            shed_rate: 0.005,
            p50_ms: 1.25,
            p99_ms: 4.5,
            p999_ms: 6.0,
            late: 3,
            problems_per_sec: 120000.0,
            busy_problems_per_sec: 300000.0,
            device_dispatches: "quadro:25; gt200:15".into(),
        }]);
        let j = c.to_json();
        assert!(j.contains("\"serve\": ["));
        assert!(j.contains("\"scenario\": \"coalesced\""));
        assert!(j.contains("\"coalescing\": 9.95"));
        assert!(j.contains("\"p99_ms\": 4.5000"));
        assert!(j.contains("\"busy_problems_per_sec\": 300000.0"));
        assert!(j.contains("\"device_dispatches\": \"quadro:25; gt200:15\""));
        record_serve(Vec::new());
    }

    #[test]
    fn verify_rows_land_in_the_json() {
        let _g = TEST_LOCK.lock().unwrap();
        let mut c = Collector::new();
        c.record("verify_campaign", 0.2);
        record_verify(vec![VerifyRow {
            alg: "Householder QR".into(),
            shape: "16x16".into(),
            approach: "PerThread".into(),
            problems: 4096,
            injected: 64,
            detected: 64,
            detection_rate: 1.0,
            false_positives: 0,
            recovered: 64,
            bit_identical: true,
            measured_screen_ms: 3.5,
            predicted_screen_ms: 2.75,
        }]);
        let j = c.to_json();
        assert!(j.contains("\"verify\": ["));
        assert!(j.contains("\"detection_rate\": 1.0000"));
        assert!(j.contains("\"false_positives\": 0"));
        assert!(j.contains("\"bit_identical\": true"));
        assert!(j.contains("\"predicted_screen_ms\": 2.750"));
        // The experiment records carry the per-run verify counters too.
        assert!(j.contains("\"verify_failures\""));
        assert!(j.contains("\"verify_recovered\""));
        record_verify(Vec::new());
    }

    #[test]
    fn escape_handles_quotes() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
    }

    #[test]
    fn fault_counters_reach_the_summary_line() {
        let r = ExperimentTelemetry {
            id: "resilience".into(),
            wall_s: 1.0,
            sim: SimTelemetry {
                faults_injected: 5,
                ..SimTelemetry::default()
            },
            recovery: RecoveryTelemetry {
                faults_detected: 5,
                retried: 5,
                fell_back: 1,
                recovered: 5,
                unrecovered: 0,
                ..RecoveryTelemetry::default()
            },
        };
        let line = Collector::summary_line(&r);
        assert!(line.contains("5 injected"));
        assert!(line.contains("0 unrecovered"));
    }
}
