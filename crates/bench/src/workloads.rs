//! Workload generators shared by the experiment harnesses.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use regla_core::{C32, MatBatch};

/// Random single-precision batch; `dd` makes each matrix diagonally
/// dominant (the paper benchmarks its pivot-free LU/GJ on diagonally
/// dominant matrices, Section VI-B).
pub fn f32_batch(m: usize, n: usize, count: usize, dd: bool, seed: u64) -> MatBatch<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = MatBatch::from_fn(m, n, count, |_, _, _| rng.random_range(-1.0f32..1.0));
    if dd {
        for k in 0..count {
            let mut mk = b.mat(k);
            mk.make_diagonally_dominant();
            b.set_mat(k, &mk);
        }
    }
    b
}

/// Random complex batch.
pub fn c32_batch(m: usize, n: usize, count: usize, dd: bool, seed: u64) -> MatBatch<C32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = MatBatch::from_fn(m, n, count, |_, _, _| {
        C32::new(rng.random_range(-1.0f32..1.0), rng.random_range(-1.0f32..1.0))
    });
    if dd {
        for k in 0..count {
            let mut mk = b.mat(k);
            mk.make_diagonally_dominant();
            b.set_mat(k, &mk);
        }
    }
    b
}

/// Batch size for a performance sweep at dimension `n`: enough blocks to
/// saturate the chip for many waves, capped so host memory stays sane.
/// (Throughput is wave-periodic, so this matches the paper's 8000-problem
/// batches to within tail-wave effects.)
pub fn sweep_count(n: usize, full: usize) -> usize {
    let cap = (48_000_000 / (n * n).max(1)).max(1024);
    full.min(cap)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dd_batches_are_dominant() {
        let b = f32_batch(8, 8, 3, true, 7);
        for k in 0..3 {
            let m = b.mat(k);
            for i in 0..8 {
                let off: f64 = (0..8)
                    .filter(|&j| j != i)
                    .map(|j| regla_core::Scalar::abs(m[(i, j)]))
                    .sum();
                assert!(regla_core::Scalar::abs(m[(i, i)]) > off);
            }
        }
    }

    #[test]
    fn seeds_are_reproducible() {
        let a = f32_batch(4, 4, 2, false, 42);
        let b = f32_batch(4, 4, 2, false, 42);
        assert_eq!(a.max_frob_dist(&b), 0.0);
    }

    #[test]
    fn sweep_count_caps_large_sizes() {
        assert_eq!(sweep_count(8, 64000), 64000);
        assert!(sweep_count(144, 8000) <= 8000);
        assert!(sweep_count(1024, 8000) >= 1024);
    }
}
