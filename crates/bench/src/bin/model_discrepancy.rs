//! Regenerates the per-phase model-discrepancy table and writes the
//! recorded launches as Chrome-trace JSON under `results/`.
fn main() {
    let fast = regla_bench::fast_mode();
    print!("{}", regla_bench::experiments::model_discrepancy(fast));
}
