//! Regenerates "fig9_per_block" (see DESIGN.md's experiment index).
fn main() {
    let fast = regla_bench::fast_mode();
    print!("{}", regla_bench::experiments::fig9(fast));
}
