//! Regenerates "ablation_batch" (see DESIGN.md's ablation list).
fn main() {
    let fast = regla_bench::fast_mode();
    print!("{}", regla_bench::experiments::ablation_batch(fast));
}
