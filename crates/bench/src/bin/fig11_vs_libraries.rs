//! Regenerates "fig11_vs_libraries" (see DESIGN.md's experiment index).
fn main() {
    let fast = regla_bench::fast_mode();
    print!("{}", regla_bench::experiments::fig11(fast));
}
