//! Regenerates "fig8_panels" (see DESIGN.md's experiment index).
fn main() {
    let fast = regla_bench::fast_mode();
    print!("{}", regla_bench::experiments::fig8(fast));
}
