//! Acceptance gate for the multi-device fault-domain stack: seeded chaos
//! campaigns over 4096-problem QR and LU batches on a three-device fleet
//! with two injected device deaths, a killer stream stall and a fault
//! storm must solve every problem (failover + stealing + recovery), record
//! the failover/steal counts, and reproduce bit-identically under the same
//! plan. Also smoke-checks that a zero-device fleet and an
//! all-devices-dead fleet with the CPU pool disabled return structured
//! errors instead of hanging. Writes the per-device telemetry to
//! `results/BENCH_sim.json`. Exits non-zero on any violation
//! (`REGLA_FAST=1` shrinks the batches).

use regla_bench::bench_telemetry::Collector;
use regla_bench::experiments::chaos::{fleet_rows, run_chaos_campaign};
use regla_core::{ChaosPlan, Fleet, FleetPolicy, MatBatch, Op, ReglaError};
use regla_gpu_sim::GpuConfig;
use std::time::Instant;

fn structured_error_smoke() -> Vec<String> {
    let mut bad = Vec::new();
    // A fleet with no devices must refuse to build.
    match Fleet::builder().build() {
        Err(ReglaError::FleetUnavailable(_)) => {}
        other => bad.push(format!("zero-device fleet: expected FleetUnavailable, got {other:?}")),
    }
    // Every device dead + CPU pool disabled must fail structurally, fast.
    let fleet = Fleet::builder()
        .device(GpuConfig::quadro_6000())
        .device(GpuConfig::gt200())
        .policy(FleetPolicy {
            cpu_pool: false,
            ..FleetPolicy::default()
        })
        .chaos(ChaosPlan::new(1).device_death(0, 0).device_death(1, 0))
        .build()
        .expect("two-device fleet builds");
    let a = MatBatch::from_fn(6, 6, 32, |k, i, j| {
        ((k + i + j) % 7) as f32 + if i == j { 8.0 } else { 0.0 }
    });
    match fleet.run(Op::Lu, &a, None) {
        Err(ReglaError::FleetUnavailable(_)) => {}
        Ok(_) => bad.push("all-dead fleet without CPU pool unexpectedly succeeded".into()),
        Err(e) => bad.push(format!("all-dead fleet: expected FleetUnavailable, got {e}")),
    }
    bad
}

fn main() {
    let fast = regla_bench::fast_mode();
    let count = if fast { 1024 } else { 4096 };
    let mut telemetry = Collector::new();
    let t0 = Instant::now();
    let mut failures = 0;

    for line in structured_error_smoke() {
        failures += 1;
        println!("FAIL smoke: {line}");
    }
    if failures == 0 {
        println!("ok   smoke: zero-device and all-dead fleets fail with FleetUnavailable");
    }

    let mut rows = Vec::new();
    for (name, op) in [("QR 8x8", Op::Qr), ("LU 8x8", Op::Lu)] {
        let o = run_chaos_campaign(op, 8, count, 0xC4A0_5EED);
        let mut bad = Vec::new();
        if !o.all_ok {
            bad.push("not every problem came back Ok".to_string());
        }
        // Both injected deaths must manifest (devices 1 and 2 are the
        // killed ones in the campaign plan) ...
        for dead in [1, 2] {
            if o.report.devices[dead].failed_dispatches == 0 {
                bad.push(format!(
                    "killed device {dead} never registered a failed dispatch"
                ));
            }
        }
        // ... and their work must have been rescued by a healthy device
        // or degraded to the CPU pool.
        if o.failovers == 0 && o.report.cpu_pool_chunks == 0 {
            bad.push("no failed chunk was rescued or CPU-degraded".into());
        }
        if o.deadline_misses == 0 {
            bad.push("the killer stall did not register a deadline miss".into());
        }
        if o.breaker_trips == 0 {
            bad.push("no breaker tripped despite device deaths".into());
        }
        if !o.reproducible {
            bad.push("rerun with the same chaos plan was not bit-identical".into());
        }
        let run_by_devices: usize = o
            .report
            .devices
            .iter()
            .map(|d| d.problems_run)
            .sum::<usize>()
            + o.report.cpu_pool_problems;
        if run_by_devices != count {
            bad.push(format!(
                "devices + CPU pool ran {run_by_devices} problems, batch holds {count}"
            ));
        }
        if bad.is_empty() {
            println!(
                "ok   {name}: {} problems, {} failovers, {} steals, {} deadline \
                 misses, {} breaker trips, {} CPU degraded, reproducible",
                o.problems, o.failovers, o.steals, o.deadline_misses, o.breaker_trips,
                o.cpu_degraded,
            );
        } else {
            failures += 1;
            println!("FAIL {name}: {}", bad.join("; "));
        }
        rows.extend(fleet_rows(name, &o.report));
    }

    regla_bench::bench_telemetry::record_fleet(rows);
    telemetry.record("chaos_campaign", t0.elapsed().as_secs_f64());
    std::fs::create_dir_all("results").expect("create results dir");
    telemetry
        .write("results/BENCH_sim.json")
        .expect("write BENCH_sim.json");

    if failures > 0 {
        std::process::exit(1);
    }
    println!(
        "chaos campaign passed: per-device telemetry in results/BENCH_sim.json"
    );
}
