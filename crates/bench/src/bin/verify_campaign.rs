//! Acceptance gate for end-to-end result verification: seeded
//! silent-corruption campaigns over 4096-problem QR and LU batches must
//! detect >= 99% of injected flips through the ABFT checksum / residual
//! screens, flag zero clean problems, recover every flagged problem
//! through the ordinary verification-gated recovery path, keep the clean
//! sweep bit-identical with screens on and off, and reproduce
//! bit-identically under the same seed. Writes per-case detection /
//! false-positive / screen-cost rows into the `"verify"` section of
//! `results/BENCH_sim.json`. Exits non-zero on any violation, so CI can
//! run it as a smoke test (`REGLA_FAST=1` shrinks the batches).

use regla_bench::bench_telemetry::Collector;
use regla_bench::experiments::verify::{outcome_row, run_verify_campaign, VERIFY_CASES};
use std::time::Instant;

fn main() {
    let fast = regla_bench::fast_mode();
    let (count, faults) = if fast { (512, 32) } else { (4096, 64) };
    let mut telemetry = Collector::new();
    let t0 = Instant::now();
    let mut rows = Vec::new();
    let mut total_injected = 0;
    let mut failures = 0;
    for (name, alg, approach, n) in VERIFY_CASES {
        let o = run_verify_campaign(*alg, *approach, *n, count, faults, 0x51_1E_47);
        rows.push(outcome_row(*alg, *approach, *n, count, &o));
        total_injected += o.injected;
        let mut bad = Vec::new();
        if o.injected == 0 {
            bad.push("no silent faults fired".to_string());
        }
        if o.detection_rate < 0.99 {
            bad.push(format!(
                "detected {} of {} silent flips ({:.1}% < 99%)",
                o.detected,
                o.injected,
                o.detection_rate * 100.0
            ));
        }
        if o.false_positives != 0 {
            bad.push(format!(
                "{} clean problems flagged as corrupt",
                o.false_positives
            ));
        }
        if o.flagged > 0 && o.recovered != o.flagged {
            bad.push(format!(
                "recovery settled {} of {} flagged problems",
                o.recovered, o.flagged
            ));
        }
        if o.unrecovered != 0 {
            bad.push(format!("{} problems left unsettled", o.unrecovered));
        }
        if !o.clean_bit_identical {
            bad.push("clean outputs differ with verification on".into());
        }
        if !o.reproducible {
            bad.push("rerun with the same seed was not bit-identical".into());
        }
        if bad.is_empty() {
            println!(
                "ok   {name}: {}/{} silent flips detected, {} false positives, \
                 {}/{} flagged problems recovered, screens {:.2}ms (pred {:.2}ms)",
                o.detected,
                o.injected,
                o.false_positives,
                o.recovered,
                o.flagged,
                o.measured_screen_ms,
                o.predicted_screen_ms
            );
        } else {
            failures += 1;
            println!("FAIL {name}: {}", bad.join("; "));
        }
    }
    if !fast && total_injected < 100 {
        failures += 1;
        println!("FAIL campaign too small: {total_injected} silent flips (< 100)");
    }
    regla_bench::bench_telemetry::record_verify(rows);
    telemetry.record("verify_campaign", t0.elapsed().as_secs_f64());
    std::fs::create_dir_all("results").expect("create results dir");
    telemetry
        .write("results/BENCH_sim.json")
        .expect("write BENCH_sim.json");
    if failures > 0 {
        std::process::exit(1);
    }
    println!(
        "verify campaign passed: {total_injected} silent flips injected, \
         all detected and recovered; telemetry in results/BENCH_sim.json"
    );
}
