//! Regenerates "fig4_per_thread" (see DESIGN.md's experiment index).
fn main() {
    let fast = regla_bench::fast_mode();
    print!("{}", regla_bench::experiments::fig4(fast));
}
