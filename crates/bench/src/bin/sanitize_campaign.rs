//! Acceptance gate for the compute-sanitizer layer: every deliberately
//! buggy fixture must be caught by exactly its check, the hung kernel must
//! come back as `LaunchError::Watchdog` in bounded host time, and the
//! shipped-solver sweep under `SanitizerMode::Full` must report zero
//! findings with bit-identical numerics. Exits non-zero on any violation
//! (`REGLA_FAST=1` shrinks the sweep). The merged buggy-fixture report is
//! written to `results/sanitizer_report.json`.

use regla_bench::experiments::sanitize::{buggy_fixtures, clean_sweep, watchdog_fixture};
use regla_gpu_sim::{LaunchError, SanitizerReport};

fn main() {
    let fast = regla_bench::fast_mode();
    let mut failures = 0;

    let mut merged = SanitizerReport::default();
    for f in buggy_fixtures() {
        merged.merge(&f.report);
        if f.hits > 0 {
            println!(
                "ok   {}: {} x {} ({} collateral)",
                f.name, f.hits, f.expect, f.other
            );
        } else {
            failures += 1;
            println!("FAIL {}: {} did not fire ({})", f.name, f.expect, f.report.summary());
        }
    }

    match watchdog_fixture() {
        Err(LaunchError::Watchdog { block, ref phase, ops, limit }) => {
            println!(
                "ok   hung kernel: watchdog tripped in block {block} \
                 phase {phase:?} ({ops} ops > {limit})"
            );
        }
        Err(other) => {
            failures += 1;
            println!("FAIL hung kernel: wrong error {other}");
        }
        Ok(()) => {
            failures += 1;
            println!("FAIL hung kernel: launch completed; watchdog never tripped");
        }
    }

    let sweep = clean_sweep(fast);
    let mut dirty = 0;
    let mut nonident = 0;
    for s in &sweep {
        if s.findings != 0 {
            dirty += 1;
            println!(
                "FAIL {:?} {}x{} {:?}: {} findings on a shipped kernel",
                s.op, s.n, s.n, s.approach, s.findings
            );
        }
        if !s.bit_identical {
            nonident += 1;
            println!(
                "FAIL {:?} {}x{} {:?}: sanitized run is not bit-identical",
                s.op, s.n, s.n, s.approach
            );
        }
    }
    if dirty == 0 && nonident == 0 {
        println!(
            "ok   clean sweep: {} cases, 0 findings, all bit-identical",
            sweep.len()
        );
    } else {
        failures += 1;
    }

    let path = "results/sanitizer_report.json";
    match std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write(path, merged.to_json()))
    {
        Ok(()) => println!("wrote {path} ({} findings)", merged.total()),
        Err(e) => println!("report export skipped ({e})"),
    }

    if failures > 0 {
        std::process::exit(1);
    }
    println!("sanitizer campaign passed");
}
