//! Acceptance gate for the model-driven autotuner: (1) the tuned plan for
//! every fig10-design-space key must sit within 5% regret of the
//! exhaustive-search winner in simulated cycles; (2) decision-table
//! dispatch must be numerically transparent — a table of heuristic plans,
//! serialized and re-loaded, dispatches bit-identically to
//! `Planner::Heuristic`, and tuned entries that keep the heuristic's
//! execution shape reproduce its outputs bit for bit (entries that change
//! the shape must still solve every problem cleanly); (3) a `tune`
//! section lands in `results/BENCH_sim.json` and the emitted table in
//! `results/decision_table.txt`. Exits non-zero on any violation
//! (`REGLA_FAST=1` shrinks the sweep).

use regla_bench::bench_telemetry::Collector;
use regla_bench::experiments::tune::{autotune_artifacts, fig10_keys, same_execution};
use regla_bench::workloads::f32_batch;
use regla_core::{MatBatch, Op, Planner, ProblemStatus, RunOpts, Session};
use regla_model::{heuristic_plan, Algorithm, DecisionTable, PlanKey, TableEntry};
use std::sync::Arc;
use std::time::Instant;

fn bits(b: &MatBatch<f32>) -> Vec<u32> {
    b.data().iter().map(|v| v.to_bits()).collect()
}

/// Everything a dispatch produced, as exact bits.
#[derive(PartialEq)]
struct Fingerprint {
    out: Vec<u32>,
    solution: Option<Vec<u32>>,
    status: Vec<ProblemStatus>,
}

/// Run the op behind `key` on a deterministic probe batch under `planner`.
fn fingerprint(session: &Session, key: &PlanKey, planner: Planner) -> Option<Fingerprint> {
    let count = key.batch();
    let (op, rhs) = match key.alg {
        Algorithm::GaussJordan => (Op::GjSolve, true),
        Algorithm::Lu => (Op::Lu, false),
        Algorithm::Qr => (Op::Qr, false),
        Algorithm::LeastSquares => (Op::LeastSquares, true),
        Algorithm::QrSolve => (Op::QrSolve, true),
        Algorithm::Cholesky => (Op::Cholesky, false),
    };
    let a = f32_batch(key.m, key.n, count, true, 0x7E57 + key.m as u64);
    let b = rhs.then(|| f32_batch(key.m, key.rhs.max(1), count, false, 0x7E58 + key.n as u64));
    let opts = RunOpts::builder().planner(planner).build().expect("valid opts");
    let o = session.run_with(op, &a, b.as_ref(), &opts).ok()?;
    Some(Fingerprint {
        out: bits(&o.run.out),
        solution: o.solution.as_ref().map(bits),
        status: o.run.status,
    })
}

fn main() {
    let fast = regla_bench::fast_mode();
    let mut telemetry = Collector::new();
    let t0 = Instant::now();
    let mut failures = 0;

    // -- run the sweep: tuned vs exhaustive vs heuristic -----------------
    let (report, rows, table) = autotune_artifacts(fast);
    println!("{report}");
    if rows.is_empty() {
        failures += 1;
        println!("FAIL autotune produced no rows");
    }

    // -- gate 1: regret <= 5% vs exhaustive on every key -----------------
    for r in rows.iter().filter(|r| r.regret_pct > 5.0) {
        failures += 1;
        println!(
            "FAIL {} {}: tuned plan {} has {:.2}% regret vs exhaustive {} (> 5%)",
            r.alg, r.shape, r.tuned, r.regret_pct, r.best
        );
    }
    if failures == 0 {
        let max = rows.iter().map(|r| r.regret_pct).fold(0.0f64, f64::max);
        println!("ok   regret: {} keys, max {:.2}% (<= 5%)", rows.len(), max);
    }

    // -- artifact + round-trip: serialize -> load -> identical decisions -
    std::fs::create_dir_all("results").expect("create results dir");
    let text = table.to_text();
    std::fs::write("results/decision_table.txt", &text).expect("write decision table");
    let reloaded = match DecisionTable::from_text(&text) {
        Ok(t) if t == table => t,
        Ok(_) => {
            failures += 1;
            println!("FAIL decision table did not round-trip bit-exactly");
            table.clone()
        }
        Err(e) => {
            failures += 1;
            println!("FAIL emitted decision table failed to re-parse: {e}");
            table.clone()
        }
    };

    // -- gate 2: table dispatch is numerically transparent ---------------
    let session = Session::new();
    let keys = fig10_keys(fast);

    // A serialized-and-reloaded table of *heuristic* plans must dispatch
    // bit-identically to Planner::Heuristic on every key.
    let mut htab = DecisionTable::new("heuristic-roundtrip");
    for k in &keys {
        htab.insert(
            *k,
            TableEntry {
                plan: heuristic_plan(k),
                predicted_cycles: 0.0,
                simulated_cycles: None,
            },
        );
    }
    let htab = DecisionTable::from_text(&htab.to_text()).expect("heuristic table parses");
    let htab = Arc::new(htab);
    for k in &keys {
        let h = fingerprint(&session, k, Planner::Heuristic);
        let t = fingerprint(&session, k, Planner::Table(htab.clone()));
        if h != t {
            failures += 1;
            println!(
                "FAIL {:?} {}x{}: heuristic-table dispatch is not bit-identical \
                 to heuristic dispatch",
                k.alg, k.m, k.n
            );
        }
    }
    println!("ok   transparency: heuristic-entry table dispatches bit-identically");

    // The *tuned* table: entries that keep the heuristic's execution shape
    // must reproduce its outputs bit for bit; entries that change it must
    // still solve every probe problem cleanly.
    let tuned = Arc::new(reloaded);
    let (mut kept, mut changed) = (0usize, 0usize);
    for k in &keys {
        let Some(entry) = tuned.lookup(k).copied() else { continue };
        let t = fingerprint(&session, k, Planner::Table(tuned.clone()));
        if same_execution(k, &entry.plan, &heuristic_plan(k)) {
            kept += 1;
            if t != fingerprint(&session, k, Planner::Heuristic) {
                failures += 1;
                println!(
                    "FAIL {:?} {}x{}: tuned entry keeps the heuristic execution \
                     shape but outputs differ",
                    k.alg, k.m, k.n
                );
            }
        } else {
            changed += 1;
            match &t {
                Some(fp) if fp.status.iter().all(|s| s.is_ok()) => {}
                _ => {
                    failures += 1;
                    println!(
                        "FAIL {:?} {}x{}: tuned entry changed the execution shape \
                         and the probe did not solve cleanly",
                        k.alg, k.m, k.n
                    );
                }
            }
        }
    }
    println!(
        "ok   tuned table: {kept} entries keep the heuristic shape (bit-identical), \
         {changed} re-plan it (verified clean)"
    );

    // -- gate 3: the tune section lands in BENCH_sim.json ----------------
    telemetry.record("autotune", t0.elapsed().as_secs_f64());
    telemetry
        .write("results/BENCH_sim.json")
        .expect("write BENCH_sim.json");
    let json = std::fs::read_to_string("results/BENCH_sim.json").expect("read back");
    if !json.contains("\"tune\": [") || !json.contains("\"regret_pct\"") {
        failures += 1;
        println!("FAIL tune section missing from results/BENCH_sim.json");
    }

    if failures > 0 {
        std::process::exit(1);
    }
    println!(
        "autotune passed: decision table in results/decision_table.txt, \
         regret telemetry in results/BENCH_sim.json"
    );
}
