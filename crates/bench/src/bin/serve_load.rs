//! Acceptance gate for the async solve service: the mixed open-loop
//! workload must (1) file a `serve` section with latency percentiles,
//! throughput, coalescing factor and shed rate into
//! `results/BENCH_sim.json`; (2) deliver at least 2x the per-busy-second
//! problem throughput with micro-batching on versus off; (3) shed with
//! structured admission errors under overload; and (4) absorb a device
//! death under load as a p99 latency bump — zero request errors — while
//! reproducing bit-identically from the same seed. Exits non-zero on any
//! violation (`REGLA_FAST=1` shrinks the campaign).

use regla_bench::bench_telemetry::Collector;
use regla_bench::experiments::serve::{run_serve_scenario, serve_row, standard_scenarios};
use std::time::Instant;

fn bits(b: &regla_core::MatBatch<f32>) -> Vec<u32> {
    b.data().iter().map(|v| v.to_bits()).collect()
}

fn main() {
    let fast = regla_bench::fast_mode();
    let requests = if fast { 160 } else { 480 };
    let mut telemetry = Collector::new();
    let t0 = Instant::now();
    let mut failures = 0;
    let fail = |msg: String| {
        println!("FAIL {msg}");
    };

    let scenarios = standard_scenarios(requests);
    let report = |name: &str| {
        &scenarios
            .iter()
            .find(|(n, _)| *n == name)
            .expect("standard scenario present")
            .1
            .report
    };
    let coalesced = report("coalesced");
    let uncoalesced = report("uncoalesced");
    let overload = report("overload");
    let chaos = report("chaos");

    // -- every throughput-scenario request is actually served ------------
    for (name, r) in [("coalesced", coalesced), ("uncoalesced", uncoalesced)] {
        if r.served != r.offered || r.request_errors != 0 {
            failures += 1;
            fail(format!(
                "{name}: served {} of {} offered with {} errors",
                r.served, r.offered, r.request_errors
            ));
        }
    }

    // -- the >= 2x coalescing capacity gate ------------------------------
    let gain = coalesced.busy_problems_per_sec / uncoalesced.busy_problems_per_sec;
    if gain < 2.0 {
        failures += 1;
        fail(format!(
            "coalescing gain {gain:.2}x < 2x ({:.0} vs {:.0} problems per busy second)",
            coalesced.busy_problems_per_sec, uncoalesced.busy_problems_per_sec
        ));
    } else {
        println!(
            "ok   coalescing: {:.2} requests/dispatch, {gain:.2}x capacity over \
             one-dispatch-per-request",
            coalesced.coalescing
        );
    }

    // -- overload sheds via admission control, not errors ----------------
    if overload.shed == 0 {
        failures += 1;
        fail("overload scenario shed nothing; admission control never engaged".into());
    } else if overload.request_errors != 0 {
        failures += 1;
        fail(format!(
            "overload scenario produced {} request errors (shedding must be structured)",
            overload.request_errors
        ));
    } else {
        println!(
            "ok   overload: shed {} of {} offered (rate {:.3}), zero request errors",
            overload.shed, overload.offered, overload.shed_rate
        );
    }

    // -- chaos under load: latency bump, never request errors ------------
    let mut chaos_ok = true;
    if chaos.request_errors != 0 {
        chaos_ok = false;
        fail(format!(
            "chaos scenario produced {} request errors; the fleet must absorb the death",
            chaos.request_errors
        ));
    }
    if chaos.served != chaos.offered {
        chaos_ok = false;
        fail(format!(
            "chaos scenario served {} of {} offered",
            chaos.served, chaos.offered
        ));
    }
    if chaos.p99_ms <= coalesced.p99_ms {
        chaos_ok = false;
        fail(format!(
            "device death did not bump p99 ({:.4} ms chaos vs {:.4} ms clean)",
            chaos.p99_ms, coalesced.p99_ms
        ));
    }
    if chaos_ok {
        println!(
            "ok   chaos: served {}, p99 {:.4} ms vs {:.4} ms clean, 0 request errors",
            chaos.served, chaos.p99_ms, coalesced.p99_ms
        );
    } else {
        failures += 1;
    }

    // -- the chaos campaign reproduces bit-identically -------------------
    let rerun = run_serve_scenario(requests, 2500.0, true, true, None);
    let first = &scenarios.iter().find(|(n, _)| *n == "chaos").unwrap().1;
    let mut identical = first.report == rerun.report;
    for (a, b) in first.responses.iter().zip(&rerun.responses) {
        identical &= a.completion_s.to_bits() == b.completion_s.to_bits();
        if let (Ok(x), Ok(y)) = (&a.result, &b.result) {
            identical &= bits(&x.run.out) == bits(&y.run.out);
        }
    }
    if !identical {
        failures += 1;
        fail("chaos-under-load rerun from the same seed was not bit-identical".into());
    } else {
        println!("ok   reproducibility: chaos campaign rerun is bit-identical");
    }

    // -- file the serve section --------------------------------------------
    let rows = scenarios
        .iter()
        .map(|(name, o)| serve_row(name, &o.report))
        .collect();
    regla_bench::bench_telemetry::record_serve(rows);
    telemetry.record("serve_load", t0.elapsed().as_secs_f64());
    std::fs::create_dir_all("results").expect("create results dir");
    telemetry
        .write("results/BENCH_sim.json")
        .expect("write BENCH_sim.json");
    let json = std::fs::read_to_string("results/BENCH_sim.json").expect("read back");
    if !json.contains("\"serve\": [") || !json.contains("\"scenario\": \"chaos\"") {
        failures += 1;
        fail("serve section missing from results/BENCH_sim.json".into());
    }

    if failures > 0 {
        std::process::exit(1);
    }
    println!("serve load passed: scenario telemetry in results/BENCH_sim.json");
}
