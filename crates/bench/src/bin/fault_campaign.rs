//! Acceptance gate for the fault-injection/recovery stack: seeded
//! campaigns over 4096-problem QR and LU batches (>= 100 injected faults
//! total) must detect every applied fault, recover every tainted problem
//! (device retry, then CPU fallback), keep residuals under tolerance, and
//! reproduce bit-identically under the same seed. Exits non-zero on any
//! violation, so CI can run it as a smoke test (`REGLA_FAST=1` shrinks the
//! batches).

use regla_bench::experiments::resilience::{run_campaign, CampaignAlg};
use regla_model::Approach;

fn main() {
    let fast = regla_bench::fast_mode();
    let (count, faults) = if fast { (512, 32) } else { (4096, 64) };
    let cases: &[(&str, CampaignAlg, Approach, usize)] = &[
        ("QR 24x24 per-block", CampaignAlg::Qr, Approach::PerBlock, 24),
        ("LU 24x24 per-block", CampaignAlg::Lu, Approach::PerBlock, 24),
        ("QR 8x8 per-thread", CampaignAlg::Qr, Approach::PerThread, 8),
    ];
    let mut total_injected = 0;
    let mut failures = 0;
    for (name, alg, approach, n) in cases {
        let o = run_campaign(*alg, *approach, *n, count, faults, 0xCA_FA_11);
        total_injected += o.injected;
        let mut bad = Vec::new();
        if o.injected == 0 {
            bad.push("no faults applied".to_string());
        }
        // Per-thread blocks carry 64 problems each; per-block carry one.
        let ppb = if *approach == Approach::PerThread { 64 } else { 1 };
        if o.detected_problems != o.injected * ppb {
            bad.push(format!(
                "detected {} problems for {} applied faults (x{ppb} expected)",
                o.detected_problems, o.injected
            ));
        }
        if o.unrecovered != 0 {
            bad.push(format!("{} problems left unrecovered", o.unrecovered));
        }
        if o.max_residual > 2e-3 {
            bad.push(format!("max residual {:.2e} above 2e-3", o.max_residual));
        }
        if !o.reproducible {
            bad.push("rerun with the same seed was not bit-identical".into());
        }
        if bad.is_empty() {
            println!(
                "ok   {name}: {} injected, {} tainted, {} retried, {} CPU \
                 fallback, max residual {:.2e}, reproducible",
                o.injected, o.detected_problems, o.retried, o.fell_back, o.max_residual
            );
        } else {
            failures += 1;
            println!("FAIL {name}: {}", bad.join("; "));
        }
    }
    if !fast && total_injected < 100 {
        failures += 1;
        println!("FAIL campaign too small: {total_injected} total faults (< 100)");
    }
    if failures > 0 {
        std::process::exit(1);
    }
    println!("fault campaign passed: {total_injected} faults injected, all recovered");
}
