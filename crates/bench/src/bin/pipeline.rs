//! Regenerates the stream-pipelining table: chunked copy/compute overlap
//! on the single- and dual-copy-engine device configurations.
fn main() {
    let fast = regla_bench::fast_mode();
    print!("{}", regla_bench::experiments::pipeline(fast));
}
