//! Regenerates the model-accuracy summary (DESIGN.md's headline claim).
fn main() {
    let fast = regla_bench::fast_mode();
    print!("{}", regla_bench::experiments::model_accuracy(fast));
}
