//! Regenerates "fig10_design_space" (see DESIGN.md's experiment index).
fn main() {
    let fast = regla_bench::fast_mode();
    print!("{}", regla_bench::experiments::fig10(fast));
}
