//! Regenerates "fig7_layouts" (see DESIGN.md's experiment index).
fn main() {
    let fast = regla_bench::fast_mode();
    print!("{}", regla_bench::experiments::fig7(fast));
}
