//! Regenerates "ablation_tsqr" (sequential tiled vs communication-avoiding QR).
fn main() {
    let fast = regla_bench::fast_mode();
    print!("{}", regla_bench::experiments::ablation_tsqr(fast));
}
