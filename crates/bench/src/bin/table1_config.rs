//! Regenerates "table1_config" (see DESIGN.md's experiment index).
fn main() {
    let fast = regla_bench::fast_mode();
    print!("{}", regla_bench::experiments::table1(fast));
}
