//! Regenerates "table4_params" (see DESIGN.md's experiment index).
fn main() {
    let fast = regla_bench::fast_mode();
    print!("{}", regla_bench::experiments::table4(fast));
}
