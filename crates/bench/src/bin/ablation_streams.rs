//! Regenerates "ablation_streams" (Section VI-C: global-level CUBLAS + streams).
fn main() {
    let fast = regla_bench::fast_mode();
    print!("{}", regla_bench::experiments::ablation_streams(fast));
}
