//! Regenerates every table and figure into `results/` (markdown + CSV),
//! plus `results/BENCH_sim.json` with per-experiment simulator wall-clock.
//!
//! `--quick` shrinks every experiment to its fast configuration (smaller
//! batches and sweeps; the sampled-execution figures replay even fewer
//! blocks) — same tables, lower fidelity, minutes instead of hours.
use regla_bench::bench_telemetry::Collector;
use std::fs;
use std::time::Instant;

/// Extract the data rows of a rendered markdown table as CSV.
fn md_to_csv(report: &str) -> String {
    let mut out = String::new();
    for line in report.lines() {
        let l = line.trim();
        if !l.starts_with('|') || l.starts_with("|-") || l.starts_with("| -") {
            continue;
        }
        if l.chars().all(|c| "|-: ".contains(c)) {
            continue; // separator row
        }
        let cells: Vec<String> = l
            .trim_matches('|')
            .split('|')
            .map(|c| {
                let c = c.trim();
                if c.contains(',') {
                    format!("\"{c}\"")
                } else {
                    c.to_string()
                }
            })
            .collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

fn main() {
    let quick = std::env::args().skip(1).any(|a| a == "--quick" || a == "-q");
    let fast = quick || regla_bench::fast_mode();
    fs::create_dir_all("results").expect("create results dir");
    let mut index = String::from("# regla experiment results\n\n");
    let mut telemetry = Collector::new();
    for (id, title, run) in regla_bench::experiments::ALL {
        let t0 = Instant::now();
        eprintln!("running {id} ...");
        let report = run(fast);
        let secs = t0.elapsed().as_secs_f64();
        fs::write(format!("results/{id}.md"), &report).expect("write report");
        fs::write(format!("results/{id}.csv"), md_to_csv(&report)).expect("write csv");
        println!("{report}");
        let rec = telemetry.record(id, secs);
        eprintln!("  {}", Collector::summary_line(rec));
        index.push_str(&format!("- [{title}]({id}.md) ({secs:.1}s)\n"));
    }
    fs::write("results/README.md", index).expect("write index");
    telemetry
        .write("results/BENCH_sim.json")
        .expect("write BENCH_sim.json");
    // Mirror the per-experiment summary to the repo root so CI jobs (and
    // humans) can diff it without digging into results/.
    telemetry
        .write("BENCH_sim.json")
        .expect("write root BENCH_sim.json");
    eprintln!(
        "all experiments written to results/ (markdown + CSV); simulator \
         wall-clock telemetry in results/BENCH_sim.json (mirrored to \
         ./BENCH_sim.json)"
    );
}
