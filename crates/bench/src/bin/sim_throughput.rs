//! Acceptance gate for the fast execution path: runs the `sim_throughput`
//! experiment and fails (non-zero exit) if the observer-free path is less
//! than 5x faster than the instrumented path on the fig10 per-thread
//! workload aggregate, or if any fast/slow leg pair disagrees bit for bit.
//! The full-scale run recorded in `results/BENCH_sim.json` targets >= 10x;
//! the CI smoke (`REGLA_FAST=1`) uses smaller batches, so the gate here is
//! the conservative 5x floor from the issue.

use regla_bench::experiments::throughput::sim_throughput_rows;

fn main() {
    let fast = regla_bench::fast_mode();
    let (report, rows) = sim_throughput_rows(fast);
    println!("{report}");
    let mut failures = 0;
    for r in rows.iter().filter(|r| !r.bit_identical) {
        failures += 1;
        println!(
            "FAIL {} {} {}: fast and slow legs are not bit-identical",
            r.workload, r.op, r.shape
        );
    }
    match rows
        .iter()
        .find(|r| r.workload == "fig10_pt" && r.shape == "aggregate")
    {
        Some(agg) if agg.speedup < 5.0 => {
            failures += 1;
            println!(
                "FAIL fig10_pt aggregate speedup {:.1}x below the 5x gate",
                agg.speedup
            );
        }
        Some(agg) => println!(
            "speedup gate ok: fig10_pt aggregate {:.1}x (>= 5x)",
            agg.speedup
        ),
        None => {
            failures += 1;
            println!("FAIL no fig10_pt aggregate row produced");
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
