//! Per-phase model discrepancy: the observability counterpart of
//! `model_accuracy`. Where that experiment compares end-to-end GFLOPS,
//! this one attaches a [`Profiler`] to each run and joins the recorded
//! launch trace's phase spans against the analytic model's per-phase
//! estimates (`regla_model::phase_estimates`), phase label by phase label
//! — the finest granularity at which the paper's model makes a claim.
//!
//! Side products: the per-(algorithm, shape) summary rows are filed with
//! [`crate::bench_telemetry`] so `run_all` lands them in
//! `results/BENCH_sim.json`, and every recorded launch is exported as
//! Chrome-trace JSON (`results/model_discrepancy_trace.json`, loadable in
//! Perfetto / chrome://tracing).

use crate::bench_telemetry::{self, DiscrepancyRow};
use crate::report::{f, Table};
use crate::workloads::f32_batch;
use regla_core::{BatchRun, Op, ProfileReport, RunOpts, Session};
use regla_gpu_sim::Profiler;
use regla_model::Approach;

/// Worst-offending phase of a report: `(label, |error| %)`.
fn worst_phase(r: &ProfileReport) -> (String, f64) {
    r.entries
        .iter()
        .map(|e| (e.label.clone(), e.error_pct.abs()))
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .unwrap_or((String::from("—"), 0.0))
}

/// Per-phase predicted-vs-simulated discrepancy across algorithms/shapes.
pub fn model_discrepancy(fast: bool) -> String {
    let session = Session::new();
    let count = if fast { 224 } else { 2016 };
    let pt_count = if fast { 3584 } else { 64_000 };
    let profiler = Profiler::new();
    let mut t = Table::new(
        "Model discrepancy — per-phase predicted vs simulated cycles",
        &[
            "alg", "shape", "approach", "phases", "mean |err| %", "total err %", "worst phase",
        ],
    );
    let mut rows: Vec<DiscrepancyRow> = Vec::new();

    let mut file = |t: &mut Table, run: &BatchRun<f32>, shape: String| {
        let r = run
            .profile
            .as_ref()
            .expect("profiled per-thread/per-block runs produce a report");
        let (wlabel, werr) = worst_phase(r);
        t.row(&[
            r.alg.name().into(),
            shape.clone(),
            format!("{:?}", r.approach),
            r.entries.len().to_string(),
            f(r.mean_abs_error_pct),
            f(r.total_error_pct()),
            format!("{wlabel} ({}%)", f(werr)),
        ]);
        rows.push(DiscrepancyRow {
            alg: r.alg.name().to_string(),
            shape,
            approach: format!("{:?}", r.approach),
            phases: r.entries.len(),
            mean_abs_error_pct: r.mean_abs_error_pct,
            total_error_pct: r.total_error_pct(),
        });
    };

    let opts = |approach: Approach| -> RunOpts {
        RunOpts::builder()
            .approach(approach)
            .trace(profiler.clone())
            .build().unwrap()
    };

    // Per-thread roofline (Section IV): one whole-launch comparison.
    for n in [5usize, 7] {
        let a = f32_batch(n, n, pt_count, true, 0x400 + n as u64);
        let run = session
            .run_with(Op::Qr, &a, None, &opts(Approach::PerThread))
            .unwrap()
            .run;
        file(&mut t, &run, format!("{n}x{n}"));
    }

    // Per-block phases (Section V-D): panel-by-panel joins.
    for n in [24usize, 56] {
        let a = f32_batch(n, n, count, true, 0x410 + n as u64);
        let run = session
            .run_with(Op::Qr, &a, None, &opts(Approach::PerBlock))
            .unwrap()
            .run;
        file(&mut t, &run, format!("{n}x{n}"));
    }
    {
        let n = 56;
        let a = f32_batch(n, n, count, true, 0x420);
        let run = session
            .run_with(Op::Lu, &a, None, &opts(Approach::PerBlock))
            .unwrap()
            .run;
        file(&mut t, &run, format!("{n}x{n}"));
    }
    {
        let n = 32;
        let a = f32_batch(n, n, count, true, 0x430);
        let b = f32_batch(n, 1, count, false, 0x431);
        let run = session
            .run_with(Op::GjSolve, &a, Some(&b), &opts(Approach::PerBlock))
            .unwrap()
            .run;
        file(&mut t, &run, format!("{n}x{n}"));
    }
    {
        let n = 40;
        let a = f32_batch(n, n, count, true, 0x440);
        let b = f32_batch(n, 1, count, false, 0x441);
        let run = session
            .run_with(Op::QrSolve, &a, Some(&b), &opts(Approach::PerBlock))
            .unwrap()
            .run;
        file(&mut t, &run, format!("{n}x{n}+1"));
    }

    bench_telemetry::record_discrepancy(rows.clone());

    // Export everything the profiler saw as a Chrome-trace document.
    let json = profiler.chrome_trace_json();
    let trace_path = "results/model_discrepancy_trace.json";
    let exported = std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write(trace_path, &json))
        .is_ok();

    let mean = if rows.is_empty() {
        0.0
    } else {
        rows.iter().map(|r| r.mean_abs_error_pct).sum::<f64>() / rows.len() as f64
    };
    t.note(format!(
        "Mean of per-run mean |error|: {}% over {} runs ({} launches traced{}). \
         Per-block rows join each labeled phase (panel k: form-hh/matvec/rank-1, \
         load, store, ...) of the first wave against the Table VI cost model; \
         per-thread rows compare whole-launch cycles against the roofline. \
         Load/store rows inherit the model's streamed-DRAM assumption, so they \
         carry most of the error on small shapes.",
        f(mean),
        rows.len(),
        profiler.launch_count(),
        if exported {
            format!("; Chrome trace written to {trace_path}")
        } else {
            String::from("; trace export skipped (results/ not writable)")
        },
    ));
    t.render()
}
