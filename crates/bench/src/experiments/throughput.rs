//! `sim_throughput` — simulator throughput of the fast (observer-free)
//! execution path against the fully instrumented slow path.
//!
//! Three workload families, all timed on `sim_wall_s` (the simulator's
//! own share — host transfers excluded) over identical launch sequences:
//!
//! * `fig10_pt` — full-execution per-thread solves at the Figure 10 sweep
//!   shapes (the gate workload: the PR targets >= 10x here in full mode);
//! * `fig10_pb` — full-execution per-block solves;
//! * `sched_sweep` — the re-run regime: the same launch repeated in one
//!   session, where the fast path's schedule cache elides re-tracing.
//!
//! Every row also re-checks the engine contract: both legs must produce
//! bit-identical outputs, statuses and modeled cycle totals (the
//! `fast_slow_identity` proptests pin the same invariant more broadly).
//!
//! Each leg runs one untimed warm-up launch first: it touches the batch
//! pages and primes the fast leg's schedule cache, so the timed runs
//! measure the steady state of each engine rather than first-touch costs.

use crate::bench_telemetry::{record_throughput, ThroughputRow};
use crate::report::{f, Table};
use crate::workloads::f32_batch;
use regla_core::{MatBatch, Op, OpOutput, ProblemStatus, RunOpts, Session};
use regla_gpu_sim::ExecMode;
use regla_model::Approach;

/// Everything a leg produced, as exact bits.
#[derive(PartialEq)]
struct Fingerprint {
    out: Vec<u32>,
    taus: Option<Vec<u32>>,
    solution: Option<Vec<u32>>,
    status: Vec<ProblemStatus>,
    cycles: Vec<u64>,
}

fn bits(b: &MatBatch<f32>) -> Vec<u32> {
    b.data().iter().map(|x| x.to_bits()).collect()
}

fn fingerprint(o: &OpOutput<f32>) -> Fingerprint {
    Fingerprint {
        out: bits(&o.run.out),
        taus: o.run.taus.as_ref().map(bits),
        solution: o.solution.as_ref().map(bits),
        status: o.run.status.clone(),
        cycles: o
            .run
            .stats
            .launches
            .iter()
            .map(|l| l.cycles.to_bits())
            .collect(),
    }
}

struct Leg {
    sim_s: f64,
    /// Grid blocks across all timed launches (identical for both legs by
    /// construction — unlike `sim_blocks`, which is host telemetry and
    /// legitimately differs by one when a schedule-cache hit demotes the
    /// traced block to a functional one).
    blocks: usize,
    fp: Fingerprint,
}

/// One warm-up launch (untimed), then `iters` timed launches.
fn run_leg(
    op: Op,
    a: &MatBatch<f32>,
    b: Option<&MatBatch<f32>>,
    opts: &RunOpts,
    iters: usize,
) -> Leg {
    let s = Session::builder().opts(opts.clone()).build();
    let _ = s.run(op, a, b).expect("warm-up run");
    let (mut sim_s, mut blocks) = (0.0, 0usize);
    let mut fp = None;
    for _ in 0..iters {
        let o = s.run(op, a, b).expect("timed run");
        sim_s += o.run.stats.launches.iter().map(|l| l.sim_wall_s).sum::<f64>();
        blocks += o.run.stats.launches.iter().map(|l| l.grid_blocks).sum::<usize>();
        fp.get_or_insert_with(|| fingerprint(&o));
    }
    Leg { sim_s, blocks, fp: fp.unwrap() }
}

struct Case {
    workload: &'static str,
    op: Op,
    approach: Approach,
    n: usize,
    count: usize,
    iters: usize,
    exec: ExecMode,
}

fn cases(fast: bool) -> Vec<Case> {
    let mut v = Vec::new();
    let pt_shapes: &[(usize, usize, usize)] = if fast {
        &[(8, 8000, 64000), (32, 1600, 6400), (64, 400, 1600)]
    } else {
        &[(8, 64000, 64000), (32, 6400, 6400), (64, 1600, 1600)]
    };
    for &(n, count, _) in pt_shapes {
        for op in [Op::Lu, Op::QrSolve, Op::GjSolve, Op::Cholesky] {
            v.push(Case {
                workload: "fig10_pt",
                op,
                approach: Approach::PerThread,
                n,
                count,
                iters: 1,
                exec: ExecMode::Full,
            });
        }
    }
    let pb_shapes: &[(usize, usize)] =
        if fast { &[(32, 800), (56, 300)] } else { &[(32, 4000), (56, 2000)] };
    for &(n, count) in pb_shapes {
        for op in [Op::Lu, Op::QrSolve] {
            v.push(Case {
                workload: "fig10_pb",
                op,
                approach: Approach::PerBlock,
                n,
                count,
                iters: 1,
                exec: ExecMode::Full,
            });
        }
    }
    v.push(Case {
        workload: "sched_sweep",
        op: Op::QrSolve,
        approach: Approach::PerBlock,
        n: 56,
        count: if fast { 500 } else { 2000 },
        iters: if fast { 4 } else { 8 },
        exec: ExecMode::Representative,
    });
    v
}

fn opts(c: &Case, slow: bool) -> RunOpts {
    RunOpts::builder()
        .exec(c.exec)
        .approach(c.approach)
        .slow_path(slow)
        .build().unwrap()
}

/// Run the experiment and return (rendered report, per-case rows).
/// Rows are also filed with [`record_throughput`] for `BENCH_sim.json`.
pub fn sim_throughput_rows(fast: bool) -> (String, Vec<ThroughputRow>) {
    let mut t = Table::new(
        "Simulator throughput — fast path vs instrumented slow path \
         (sim seconds, transfers excluded)",
        &[
            "workload", "op", "shape", "blocks", "fast blk/s", "slow blk/s", "speedup",
            "identical",
        ],
    );
    let mut rows = Vec::new();
    for c in cases(fast) {
        let a = f32_batch(c.n, c.n, c.count, true, 0x7D00 + c.n as u64);
        let b = c
            .op
            .needs_rhs()
            .then(|| f32_batch(c.n, 1, c.count, false, 0x7E00 + c.n as u64));
        let fl = run_leg(c.op, &a, b.as_ref(), &opts(&c, false), c.iters);
        let sl = run_leg(c.op, &a, b.as_ref(), &opts(&c, true), c.iters);
        let shape = format!("{0}x{0}x{1}", c.n, c.count);
        let row = ThroughputRow {
            workload: c.workload.into(),
            op: format!("{:?}", c.op),
            shape: shape.clone(),
            sim_blocks: fl.blocks,
            fast_sim_s: fl.sim_s,
            slow_sim_s: sl.sim_s,
            fast_blocks_per_sec: fl.blocks as f64 / fl.sim_s.max(1e-12),
            slow_blocks_per_sec: sl.blocks as f64 / sl.sim_s.max(1e-12),
            speedup: sl.sim_s / fl.sim_s.max(1e-12),
            bit_identical: fl.fp == sl.fp,
        };
        t.row(&[
            row.workload.clone(),
            row.op.clone(),
            shape,
            row.sim_blocks.to_string(),
            f(row.fast_blocks_per_sec),
            f(row.slow_blocks_per_sec),
            format!("{:.1}x", row.speedup),
            row.bit_identical.to_string(),
        ]);
        rows.push(row);
    }
    for wl in ["fig10_pt", "fig10_pb", "sched_sweep"] {
        let (fs, ss, blocks, ident) = rows
            .iter()
            .filter(|r| r.workload == wl)
            .fold((0.0, 0.0, 0, true), |(fs, ss, bl, id), r| {
                (fs + r.fast_sim_s, ss + r.slow_sim_s, bl + r.sim_blocks, id && r.bit_identical)
            });
        let row = ThroughputRow {
            workload: wl.into(),
            op: "all".into(),
            shape: "aggregate".into(),
            sim_blocks: blocks,
            fast_sim_s: fs,
            slow_sim_s: ss,
            fast_blocks_per_sec: blocks as f64 / fs.max(1e-12),
            slow_blocks_per_sec: blocks as f64 / ss.max(1e-12),
            speedup: ss / fs.max(1e-12),
            bit_identical: ident,
        };
        t.row(&[
            wl.into(),
            "all".into(),
            "aggregate".into(),
            blocks.to_string(),
            f(row.fast_blocks_per_sec),
            f(row.slow_blocks_per_sec),
            format!("{:.1}x", row.speedup),
            ident.to_string(),
        ]);
        rows.push(row);
    }
    t.note(
        "fast = observer-free path (value-only macro-ops, arena state, schedule cache); \
         slow = scoreboarded path every observed run takes. Both legs replay identical \
         launch sequences and must agree bit for bit.",
    );
    record_throughput(rows.clone());
    (t.render(), rows)
}

/// Harness entry point (see `experiments::ALL`).
pub fn sim_throughput(fast: bool) -> String {
    sim_throughput_rows(fast).0
}
