//! One function per paper artifact. Every function returns the rendered
//! report (also suitable for writing into `results/`).

pub mod ablations;
pub mod accuracy;
pub mod chaos;
pub mod discrepancy;
pub mod figures;
pub mod pipeline;
pub mod resilience;
pub mod sanitize;
pub mod serve;
pub mod tables;
pub mod throughput;
pub mod tune;
pub mod verify;

pub use ablations::*;
pub use accuracy::*;
pub use chaos::*;
pub use discrepancy::*;
pub use figures::*;
pub use pipeline::*;
pub use resilience::*;
pub use sanitize::*;
pub use serve::*;
pub use tables::*;
pub use throughput::*;
pub use tune::*;
pub use verify::*;

/// (id, title, runner) for every experiment, in paper order.
pub type Runner = fn(bool) -> String;

pub const ALL: &[(&str, &str, Runner)] = &[
    ("table1_config", "Table I — device summary", tables::table1),
    ("table2_bandwidth", "Table II — bandwidths", tables::table2),
    ("table3_latency", "Table III — latencies", tables::table3),
    ("table4_params", "Table IV — model parameters", tables::table4),
    ("table5_cycles", "Table V — 56x56 cycle counts", tables::table5),
    ("table6_estimates", "Table VI — cost model estimates", tables::table6),
    ("table7_stap", "Table VII — RT_STAP complex QR", tables::table7),
    ("fig1_global_latency", "Figure 1 — global latency vs stride", figures::fig1),
    ("fig2_sync_latency", "Figure 2 — synchronization latency", figures::fig2),
    ("fig4_per_thread", "Figure 4 — one problem per thread", figures::fig4),
    ("fig7_layouts", "Figure 7 — 1D vs 2D layouts", figures::fig7),
    ("fig8_panels", "Figure 8 — QR per-panel breakdown", figures::fig8),
    ("fig9_per_block", "Figure 9 — one problem per block", figures::fig9),
    ("fig10_design_space", "Figure 10 — three approaches", figures::fig10),
    ("fig11_vs_libraries", "Figure 11 — vs MKL and MAGMA", figures::fig11),
    ("fig12_solvers", "Figure 12 — linear solvers vs MKL", figures::fig12),
    (
        "ablation_fastmath",
        "Ablation — fast vs precise math",
        ablations::ablation_fastmath,
    ),
    (
        "ablation_reduction",
        "Ablation — serial vs tree reductions",
        ablations::ablation_reduction,
    ),
    (
        "ablation_threads",
        "Ablation — 64 vs 256 threads per block",
        ablations::ablation_threads,
    ),
    (
        "ablation_batch",
        "Ablation — batch-size saturation",
        ablations::ablation_batch,
    ),
    (
        "ablation_lu_style",
        "Ablation — LU trailing-update style",
        ablations::ablation_lu_style,
    ),
    (
        "ablation_streams",
        "Section VI-C — CUBLAS + streams",
        ablations::ablation_streams,
    ),
    (
        "ablation_tsqr",
        "Ablation — tiled vs TSQR",
        ablations::ablation_tsqr,
    ),
    (
        "pipeline",
        "Stream pipelining — copy/compute overlap",
        pipeline::pipeline,
    ),
    (
        "model_accuracy",
        "Model accuracy summary",
        accuracy::model_accuracy,
    ),
    (
        "model_discrepancy",
        "Model discrepancy — per-phase predicted vs simulated",
        discrepancy::model_discrepancy,
    ),
    (
        "resilience_campaign",
        "Resilience — seeded fault campaigns",
        resilience::resilience_campaign,
    ),
    (
        "chaos_campaign",
        "Chaos — multi-device failure campaigns",
        chaos::chaos_campaign,
    ),
    (
        "sanitize_campaign",
        "Sanitizer — buggy fixtures + clean sweep",
        sanitize::sanitize_campaign,
    ),
    (
        "sim_throughput",
        "Fast path — simulator throughput vs instrumented slow path",
        throughput::sim_throughput,
    ),
    (
        "serve_load",
        "Serving — admission control and micro-batching under load",
        serve::serve_load,
    ),
    (
        "autotune",
        "Autotune — model-picked plans vs exhaustive search",
        tune::autotune,
    ),
    (
        "verify_campaign",
        "Verification — silent corruption vs ABFT screens",
        verify::verify_campaign,
    ),
];
