//! Resilience experiment: seeded fault-injection campaigns over large
//! QR/LU batches, with the detection / retry / CPU-fallback accounting
//! that the recovery layer reports (and `results/BENCH_sim.json` records).

use crate::report::Table;
use crate::workloads::f32_batch;
use regla_core::{MatBatch, Op, ProblemStatus, RunOpts, Session};
use regla_gpu_sim::FaultPlan;
use regla_model::Approach;

/// Which factorization a campaign drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CampaignAlg {
    Qr,
    Lu,
}

/// Aggregated outcome of one seeded campaign (one batched run, re-run once
/// with the same seed for the reproducibility check).
#[derive(Clone, Copy, Debug)]
pub struct CampaignOutcome {
    /// Faults the simulator applied (its ECC/machine-check records).
    pub injected: usize,
    /// Problems the recovery layer saw as fault-tainted.
    pub detected_problems: usize,
    pub retried: usize,
    pub fell_back: usize,
    pub unrecovered: usize,
    /// Worst relative factorization residual over the faulted problems
    /// after recovery (`‖L·U − A‖/‖A‖` or `‖RᴴR − AᴴA‖/‖AᴴA‖`).
    pub max_residual: f64,
    /// The same seed reproduced bit-identical output and accounting.
    pub reproducible: bool,
}

/// Run one seeded campaign: factor `count` n x n problems under a
/// `faults`-block fault plan, with the default bounded recovery policy
/// (one device retry, then CPU fallback).
pub fn run_campaign(
    alg: CampaignAlg,
    approach: Approach,
    n: usize,
    count: usize,
    faults: usize,
    seed: u64,
) -> CampaignOutcome {
    let session = Session::new();
    let a = f32_batch(n, n, count, true, seed ^ 0xA5A5);
    let opts = RunOpts::builder()
        .approach(approach)
        .fault(FaultPlan::new(seed, faults))
        .build().unwrap();
    let once = |o: &RunOpts| {
        let op = match alg {
            CampaignAlg::Qr => Op::Qr,
            CampaignAlg::Lu => Op::Lu,
        };
        session
            .run_with(op, &a, None, o)
            .expect("valid campaign batch")
            .run
    };
    let run = once(&opts);

    // Every problem a recorded fault tainted, for the residual check.
    let ppb = if approach == Approach::PerThread { 64 } else { 1 };
    let mut tainted: Vec<usize> = run
        .stats
        .launches
        .iter()
        .flat_map(|l| l.faults.iter())
        .flat_map(|f| f.block * ppb..((f.block + 1) * ppb).min(count))
        .collect();
    tainted.sort_unstable();
    tainted.dedup();

    let mut max_residual = 0.0f64;
    for &p in &tainted {
        let am = a.mat(p);
        let fact = run.out.mat(p);
        let rel = match alg {
            CampaignAlg::Lu => {
                let (lo, up) = regla_core::host::split_lu(&fact);
                lo.matmul(&up).frob_dist(&am) / am.frob_norm()
            }
            CampaignAlg::Qr => {
                // Gram identity RᴴR = AᴴA: checks R without forming Q.
                let r = regla_core::host::extract_r(&fact);
                let rtr = r.hermitian_transpose().matmul(&r);
                let ata = am.hermitian_transpose().matmul(&am);
                rtr.frob_dist(&ata) / ata.frob_norm()
            }
        };
        max_residual = max_residual.max(rel as f64);
    }

    let rerun = once(&opts);
    let bits = |b: &MatBatch<f32>| -> Vec<u32> { b.data().iter().map(|v| v.to_bits()).collect() };
    let reproducible = bits(&run.out) == bits(&rerun.out)
        && run.status == rerun.status
        && run.recovery == rerun.recovery;
    crate::bench_telemetry::file_recovery(session.take_recovery_totals());

    CampaignOutcome {
        injected: run.stats.launches.iter().map(|l| l.faults.len()).sum(),
        detected_problems: run.recovery.faults_detected,
        retried: run.recovery.retried,
        fell_back: run.recovery.fell_back,
        unrecovered: run
            .status
            .iter()
            .filter(|s| !matches!(s, ProblemStatus::Ok | ProblemStatus::ZeroPivot { .. }))
            .count(),
        max_residual,
        reproducible,
    }
}

/// The campaign table: seeded fault injection over QR and LU batches on
/// the per-thread and per-block paths.
pub fn resilience_campaign(fast: bool) -> String {
    let (count, faults) = if fast { (512, 32) } else { (4096, 128) };
    let mut t = Table::new(
        format!(
            "Resilience — seeded fault campaigns ({count} problems, \
             bounded recovery: 1 retry + CPU fallback)"
        ),
        &[
            "campaign",
            "injected",
            "tainted problems",
            "retried",
            "CPU fallback",
            "unrecovered",
            "max residual",
            "reproducible",
        ],
    );
    let cases: &[(&str, CampaignAlg, Approach, usize)] = &[
        ("QR 8x8 per-thread", CampaignAlg::Qr, Approach::PerThread, 8),
        ("QR 24x24 per-block", CampaignAlg::Qr, Approach::PerBlock, 24),
        ("LU 8x8 per-thread", CampaignAlg::Lu, Approach::PerThread, 8),
        ("LU 24x24 per-block", CampaignAlg::Lu, Approach::PerBlock, 24),
    ];
    for (name, alg, approach, n) in cases {
        let o = run_campaign(*alg, *approach, *n, count, faults, 0x0D1E5E1);
        t.row(&[
            name.to_string(),
            o.injected.to_string(),
            o.detected_problems.to_string(),
            o.retried.to_string(),
            o.fell_back.to_string(),
            o.unrecovered.to_string(),
            format!("{:.2e}", o.max_residual),
            if o.reproducible { "yes" } else { "NO" }.to_string(),
        ]);
    }
    t.note(
        "Every fault in this campaign is recorded by the simulator (the \
         ECC/machine-check report a real device would provide), so detection \
         cannot miss a flipped bit that still produced a finite value. Silent \
         corruption — flips the ECC report does *not* carry — is exercised \
         separately by the verify_campaign experiment, where only the ABFT \
         checksum/residual screens can catch it. Per-thread blocks carry 64 \
         problems, so one faulted block taints 64 problems there. Residuals are \
         measured over the faulted problems only, after recovery.",
    );
    t.render()
}
