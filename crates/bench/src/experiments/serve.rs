//! Serve experiment: an open-loop mixed workload (LU/QR/GJ-solve on
//! paper-sized problems) offered to the async solve service under four
//! configurations — micro-batching on, micro-batching off (the baseline
//! the coalescing gate compares against), an overload run that exercises
//! admission-control shedding, and a chaos run with a device death under
//! load. Scenario rows are filed for the `serve` section of
//! `results/BENCH_sim.json`.

use crate::bench_telemetry::{record_serve, ServeRow};
use crate::report::Table;
use regla_core::{ChaosPlan, Fleet};
use regla_gpu_sim::GpuConfig;
use regla_serve::{
    generate_requests, ServeConfig, ServeEngine, ServeOutcome, ServeReport, TrafficConfig,
};

/// Campaign seed shared by the traffic source and the chaos plan.
pub const CAMPAIGN_SEED: u64 = 0x5E21_ED5E;

/// The serving fleet: a Fermi part plus a GT200, so coalesced dispatches
/// shard unevenly and a device death has somewhere to fail over to.
fn serve_fleet(chaos: Option<ChaosPlan>) -> Fleet {
    let mut b = Fleet::builder()
        .device(GpuConfig::quadro_6000())
        .device(GpuConfig::gt200());
    if let Some(plan) = chaos {
        b = b.chaos(plan);
    }
    b.build().expect("serve fleet has devices")
}

/// Run one serve scenario over the shared mixed traffic stream.
///
/// `backlog_budget_s = None` disables admission shedding (infinite budget
/// and queue) so throughput scenarios serve every request; `Some(budget)`
/// uses the bounded queue and the model-priced backlog controller.
/// `chaos = true` kills the GT200 after its second dispatch.
pub fn run_serve_scenario(
    requests: usize,
    rate_rps: f64,
    coalesce: bool,
    chaos: bool,
    backlog_budget_s: Option<f64>,
) -> ServeOutcome<f32> {
    let plan = chaos.then(|| ChaosPlan::new(CAMPAIGN_SEED).device_death(1, 2));
    let fleet = serve_fleet(plan);
    let mut cfg = ServeConfig::default().coalesce(coalesce);
    cfg = match backlog_budget_s {
        // Admission scenarios also bound the queue, so whichever limit the
        // workload hits first (queue depth or predicted backlog) sheds.
        Some(b) => cfg.backlog_budget_s(b).queue_capacity(64),
        None => cfg
            .backlog_budget_s(f64::INFINITY)
            .queue_capacity(usize::MAX),
    };
    let mut engine = ServeEngine::new(fleet, cfg);
    let traffic = TrafficConfig::mixed(requests, rate_rps, CAMPAIGN_SEED);
    let outcome = engine.serve(generate_requests(&traffic));
    crate::bench_telemetry::file_recovery(engine.fleet().take_recovery_totals());
    outcome
}

/// Flatten one scenario's aggregate report into a telemetry row.
pub fn serve_row(scenario: &str, r: &ServeReport) -> ServeRow {
    ServeRow {
        scenario: scenario.to_string(),
        offered: r.offered,
        served: r.served,
        shed: r.shed,
        request_errors: r.request_errors,
        dispatches: r.dispatches,
        problems: r.problems,
        coalescing: r.coalescing,
        shed_rate: r.shed_rate,
        p50_ms: r.p50_ms,
        p99_ms: r.p99_ms,
        p999_ms: r.p999_ms,
        late: r.late,
        problems_per_sec: r.problems_per_sec,
        busy_problems_per_sec: r.busy_problems_per_sec,
        device_dispatches: r
            .device_dispatches
            .iter()
            .map(|(name, count)| format!("{name}:{count}"))
            .collect::<Vec<_>>()
            .join("; "),
    }
}

/// The four standard scenarios at a given campaign size.
pub fn standard_scenarios(requests: usize) -> Vec<(&'static str, ServeOutcome<f32>)> {
    vec![
        ("coalesced", run_serve_scenario(requests, 2500.0, true, false, None)),
        ("uncoalesced", run_serve_scenario(requests, 2500.0, false, false, None)),
        ("overload", run_serve_scenario(requests, 100_000.0, true, false, Some(1e-4))),
        ("chaos", run_serve_scenario(requests, 2500.0, true, true, None)),
    ]
}

/// The serve table: the mixed workload through all four scenarios.
pub fn serve_load(fast: bool) -> String {
    let requests = if fast { 160 } else { 480 };
    let mut t = Table::new(
        format!(
            "Serving — admission control and micro-batching \
             ({requests} requests, 8 clients, 2 devices)"
        ),
        &[
            "scenario",
            "served",
            "shed",
            "errors",
            "dispatches",
            "coalescing",
            "p50 ms",
            "p99 ms",
            "p99.9 ms",
            "late",
            "busy prob/s",
        ],
    );
    let mut rows = Vec::new();
    for (name, outcome) in standard_scenarios(requests) {
        let r = &outcome.report;
        t.row(&[
            name.to_string(),
            r.served.to_string(),
            r.shed.to_string(),
            r.request_errors.to_string(),
            r.dispatches.to_string(),
            format!("{:.2}", r.coalescing),
            format!("{:.4}", r.p50_ms),
            format!("{:.4}", r.p99_ms),
            format!("{:.4}", r.p999_ms),
            r.late.to_string(),
            format!("{:.0}", r.busy_problems_per_sec),
        ]);
        rows.push(serve_row(name, r));
    }
    record_serve(rows);
    t.note(
        "Open-loop Poisson-ish traffic on the simulated clock: LU 8x8, QR \
         10x10 and GJ-solve 8x8 requests from 8 seeded client streams. \
         `coalesced` micro-batches compatible requests into shared fleet \
         dispatches under a deadline-driven flush; `uncoalesced` issues one \
         dispatch per request (the capacity baseline); `overload` offers 40x \
         the rate against a 0.1 ms backlog budget and a 64-deep queue, so \
         the admission controller sheds instead of queueing unbounded work; \
         `chaos` re-runs the \
         coalesced scenario with the GT200 killed after two dispatches — the \
         fleet's failover absorbs the death, so it shows up as a latency \
         bump, not request errors.",
    );
    t.render()
}
