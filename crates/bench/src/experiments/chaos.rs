//! Chaos experiment: a seeded multi-device failure campaign over the
//! fleet dispatcher — device deaths, a stream stall against an armed
//! deadline, and a fault storm — verifying that health-gated failover,
//! work stealing and the CPU degraded mode keep every problem solved,
//! bit-identically across reruns. Per-device shard/failover/steal
//! telemetry is filed for `results/BENCH_sim.json`.

use crate::bench_telemetry::{record_fleet, FleetRow};
use crate::report::Table;
use crate::workloads::f32_batch;
use regla_core::{ChaosPlan, Fleet, FleetPolicy, FleetReport, Op};
use regla_gpu_sim::GpuConfig;

/// A stall so long no model-derived deadline budget survives it
/// (~2^40 simulated cycles, minutes of simulated time).
const KILLER_STALL_CYCLES: u64 = 1 << 40;

/// Aggregated outcome of one seeded chaos campaign (run twice with the
/// same plan for the reproducibility check).
#[derive(Clone, Debug)]
pub struct ChaosOutcome {
    pub problems: usize,
    /// Devices the plan kills during the campaign.
    pub devices_killed: usize,
    /// Every problem came back [`regla_core::ProblemStatus::Ok`].
    pub all_ok: bool,
    pub failovers: usize,
    pub steals: usize,
    pub deadline_misses: usize,
    pub breaker_trips: usize,
    pub cpu_degraded: usize,
    /// The same plan reproduced bit-identical output and telemetry.
    pub reproducible: bool,
    pub report: FleetReport,
}

/// The campaign's three-device fleet: two Fermi parts and a GT200, so
/// sharding is throughput-weighted rather than even.
fn campaign_fleet(seed: u64) -> Fleet {
    Fleet::builder()
        .device(GpuConfig::quadro_6000())
        .device(GpuConfig::quadro_6000_dual_copy())
        .device(GpuConfig::gt200())
        .policy(FleetPolicy {
            // Generous slack: only the injected stall can blow a budget.
            deadline_slack: Some(4.0),
            ..FleetPolicy::default()
        })
        .chaos(
            ChaosPlan::new(seed)
                // Device 2 is dead on arrival; device 1 survives one
                // dispatch. Both manifest under any schedule.
                .device_death(2, 0)
                .device_death(1, 1)
                // Device 0's third dispatch stalls past any deadline.
                .stream_stall(0, 2, KILLER_STALL_CYCLES)
                // ... and its next two dispatches run under a fault storm
                // (recovered by retry, and health-gating the breaker).
                .fault_storm(0, 3, 2, 8),
        )
        .build()
        .expect("campaign fleet has devices")
}

/// Run one seeded chaos campaign: `count` n x n problems of `op` across
/// three devices with two injected device deaths, one killer stall and
/// one fault storm. Every problem must still come back Ok.
pub fn run_chaos_campaign(op: Op, n: usize, count: usize, seed: u64) -> ChaosOutcome {
    let a = f32_batch(n, n, count, true, seed ^ 0x000C_4A05);
    let b = op.needs_rhs().then(|| f32_batch(n, 1, count, false, seed ^ 0xB0_07));
    let once = || {
        let fleet = campaign_fleet(seed);
        let run = fleet
            .run(op, &a, b.as_ref())
            .expect("chaos campaign batch is valid");
        crate::bench_telemetry::file_recovery(fleet.take_recovery_totals());
        run
    };
    let run = once();
    let rerun = once();
    let bits = |b: &regla_core::MatBatch<f32>| -> Vec<u32> {
        b.data().iter().map(|v| v.to_bits()).collect()
    };
    let reproducible = bits(&run.output.run.out) == bits(&rerun.output.run.out)
        && run.output.run.status == rerun.output.run.status
        && run.output.run.recovery == rerun.output.run.recovery
        && run.report == rerun.report;

    let rec = &run.output.run.recovery;
    ChaosOutcome {
        problems: count,
        devices_killed: 2,
        all_ok: run.output.run.status.iter().all(|s| s.is_ok()),
        failovers: rec.device_failovers,
        steals: rec.shards_stolen,
        deadline_misses: rec.deadline_misses,
        breaker_trips: rec.breaker_trips,
        cpu_degraded: rec.cpu_degraded,
        reproducible,
        report: run.report,
    }
}

/// Flatten a campaign's fleet report into per-device telemetry rows for
/// `results/BENCH_sim.json` (plus a `cpu-pool` pseudo-device when the
/// degraded mode ran).
pub fn fleet_rows(campaign: &str, report: &FleetReport) -> Vec<FleetRow> {
    let mut rows: Vec<FleetRow> = report
        .devices
        .iter()
        .map(|d| FleetRow {
            campaign: campaign.to_string(),
            device: d.name.clone(),
            planned_problems: d.planned_problems,
            chunks_run: d.chunks_run,
            problems_run: d.problems_run,
            steals: d.steals,
            rescues: d.rescues,
            failed_dispatches: d.failed_dispatches,
            deadline_misses: d.deadline_misses,
            breaker_trips: d.breaker_trips,
            breaker_state: format!("{:?}", d.breaker_state),
            sim_time_s: d.sim_time_s,
        })
        .collect();
    if report.cpu_pool_problems > 0 {
        rows.push(FleetRow {
            campaign: campaign.to_string(),
            device: "cpu-pool".to_string(),
            planned_problems: 0,
            chunks_run: report.cpu_pool_chunks,
            problems_run: report.cpu_pool_problems,
            steals: 0,
            rescues: 0,
            failed_dispatches: 0,
            deadline_misses: 0,
            breaker_trips: 0,
            breaker_state: "Closed".to_string(),
            sim_time_s: 0.0,
        });
    }
    rows
}

/// The chaos table: seeded device-death / stall / fault-storm campaigns
/// over QR and LU on a three-device fleet.
pub fn chaos_campaign(fast: bool) -> String {
    let count = if fast { 1024 } else { 4096 };
    let mut t = Table::new(
        format!(
            "Chaos — multi-device failure campaigns ({count} problems, \
             3 devices, 2 injected device deaths + stall + fault storm)"
        ),
        &[
            "campaign",
            "problems",
            "failovers",
            "steals",
            "deadline misses",
            "breaker trips",
            "CPU degraded",
            "all ok",
            "reproducible",
        ],
    );
    let mut rows = Vec::new();
    for (name, op, n) in [("QR 8x8", Op::Qr, 8), ("LU 8x8", Op::Lu, 8)] {
        let o = run_chaos_campaign(op, n, count, 0xC4A0_5EED);
        t.row(&[
            name.to_string(),
            o.problems.to_string(),
            o.failovers.to_string(),
            o.steals.to_string(),
            o.deadline_misses.to_string(),
            o.breaker_trips.to_string(),
            o.cpu_degraded.to_string(),
            if o.all_ok { "yes" } else { "NO" }.to_string(),
            if o.reproducible { "yes" } else { "NO" }.to_string(),
        ]);
        rows.extend(fleet_rows(name, &o.report));
    }
    record_fleet(rows);
    t.note(
        "Each campaign shards its batch across a Quadro 6000, a dual-copy \
         Quadro 6000 and a GT200 by modeled throughput. The chaos plan kills \
         device 2 before its first dispatch and device 1 after one dispatch \
         (both survive via rescue/steal onto device 0), stalls one dispatch \
         past its model-derived deadline, and runs a two-dispatch fault storm \
         that the per-run recovery policy retries clean. The whole schedule is \
         driven by simulated clocks, so a rerun with the same plan is \
         bit-identical.",
    );
    t.render()
}
