//! Verification experiment: silent-corruption campaigns over large QR/LU
//! batches, screened end to end by the ABFT checksum / residual layer
//! (`regla_core::verify`) that the ECC-style fault reports cannot see.
//!
//! Each campaign runs four legs per (alg, shape):
//!
//! 1. **Raw detection** — `SilentFlip` faults, verification on, recovery
//!    off: every injected flip (ground truth from
//!    `LaunchStats::silent_faults`) must surface as a `VerifyFailed`
//!    verdict in its block; flags outside faulted blocks are false
//!    positives.
//! 2. **Gated recovery** — same plan with the default bounded recovery:
//!    `VerifyFailed` is not a settled verdict, so the ordinary retry /
//!    CPU-fallback machinery re-runs flagged problems
//!    (`RecoveryStats::verify_failures` / `verify_recovered`).
//! 3. **Clean sweep** — no faults, verification off vs on: outputs must
//!    be bit-identical (the screens are strictly observational) and no
//!    clean problem may be flagged.
//! 4. **Reproducibility** — the verified faulted run repeats
//!    bit-identically under the same seed.
//!
//! The clean pair also times the screens (host wall-clock) against the
//! model's [`regla_model::verify_seconds`] prediction.

use crate::report::Table;
use crate::workloads::f32_batch;
use regla_core::{
    MatBatch, Op, ProblemStatus, RecoveryPolicy, RunOpts, Session, VerifyMode,
};
use regla_gpu_sim::{FaultKind, FaultPlan};
use regla_model::{Algorithm, Approach};
use std::time::Instant;

/// Which factorization a campaign drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VerifyAlg {
    Qr,
    Lu,
}

impl VerifyAlg {
    fn op(self) -> Op {
        match self {
            VerifyAlg::Qr => Op::Qr,
            VerifyAlg::Lu => Op::Lu,
        }
    }

    fn model(self) -> Algorithm {
        match self {
            VerifyAlg::Qr => Algorithm::Qr,
            VerifyAlg::Lu => Algorithm::Lu,
        }
    }
}

/// Aggregated outcome of one silent-corruption campaign.
#[derive(Clone, Copy, Debug)]
pub struct VerifyOutcome {
    /// Silent flips the simulator actually fired (ground truth; these are
    /// *not* in `LaunchStats::faults`, so recovery alone cannot see them).
    pub injected: usize,
    /// Injected flips whose block carries at least one `VerifyFailed`.
    pub detected: usize,
    /// `detected / injected` (1.0 when nothing fired).
    pub detection_rate: f64,
    /// `VerifyFailed` problems outside every faulted block, plus any
    /// flagged problem in the clean sweep.
    pub false_positives: usize,
    /// `RecoveryStats::verify_failures` of the gated-recovery leg.
    pub flagged: usize,
    /// `RecoveryStats::verify_recovered` of the gated-recovery leg.
    pub recovered: usize,
    /// Problems still unsettled after gated recovery.
    pub unrecovered: usize,
    /// Clean sweep produced bit-identical outputs with verify off and on.
    pub clean_bit_identical: bool,
    /// The verified faulted leg reran bit-identically (same seed).
    pub reproducible: bool,
    /// Measured host wall-clock of the screens over the clean sweep,
    /// milliseconds (best-of-3 delta between verified and unverified).
    pub measured_screen_ms: f64,
    /// Model-predicted screen cost for the same sweep, milliseconds.
    pub predicted_screen_ms: f64,
}

fn bits(b: &MatBatch<f32>) -> Vec<u32> {
    b.data().iter().map(|v| v.to_bits()).collect()
}

/// Run one seeded silent-corruption campaign: factor `count` n x n
/// problems under a `faults`-block `SilentFlip` plan and screen the
/// results with `VerifyMode::Full`.
pub fn run_verify_campaign(
    alg: VerifyAlg,
    approach: Approach,
    n: usize,
    count: usize,
    faults: usize,
    seed: u64,
) -> VerifyOutcome {
    let session = Session::new();
    let a = f32_batch(n, n, count, true, seed ^ 0xA5A5);
    let plan = FaultPlan::new(seed, faults).kind(FaultKind::SilentFlip);
    let once = |o: &RunOpts| {
        session
            .run_with(alg.op(), &a, None, o)
            .expect("valid campaign batch")
            .run
    };

    // Leg 1: raw detection — verification on, recovery off, so the
    // statuses are exactly what the screens said.
    let raw_opts = RunOpts::builder()
        .approach(approach)
        .fault(plan)
        .verify(VerifyMode::Full)
        .recovery(RecoveryPolicy::off())
        .build()
        .unwrap();
    let raw = once(&raw_opts);

    // Ground truth: which problems could each silent flip have tainted.
    // Per-thread blocks carry 64 problems; per-block and tiled carry one.
    let ppb = if approach == Approach::PerThread { 64 } else { 1 };
    let silent: Vec<usize> = raw
        .stats
        .launches
        .iter()
        .flat_map(|l| l.silent_faults.iter())
        .map(|f| f.block)
        .collect();
    let injected = silent.len();
    let problems_of =
        |block: usize| block * ppb..((block + 1) * ppb).min(count);
    let flagged_at = |p: usize| matches!(raw.status[p], ProblemStatus::VerifyFailed { .. });
    let detected = silent
        .iter()
        .filter(|&&b| problems_of(b).any(flagged_at))
        .count();
    let mut tainted = vec![false; count];
    for &b in &silent {
        for p in problems_of(b) {
            tainted[p] = true;
        }
    }
    let mut false_positives = (0..count).filter(|&p| flagged_at(p) && !tainted[p]).count();

    // Leg 2: verification-gated recovery — the default bounded policy
    // re-runs flagged problems because `VerifyFailed` is not settled.
    let gated_opts = RunOpts::builder()
        .approach(approach)
        .fault(plan)
        .verify(VerifyMode::Full)
        .build()
        .unwrap();
    let gated = once(&gated_opts);
    let unrecovered = gated.status.iter().filter(|s| !s.is_settled()).count();

    // Leg 4 (cheap, reuse leg 2): bit-identical rerun under the same seed.
    let rerun = once(&gated_opts);
    let reproducible = bits(&gated.out) == bits(&rerun.out)
        && gated.status == rerun.status
        && gated.recovery == rerun.recovery;

    // Leg 3: clean sweep — screens must be strictly observational and
    // silent on clean data. Timed (best of 3, to sit under host noise)
    // for the measured screen-cost column.
    let clean = |mode: VerifyMode| {
        let o = RunOpts::builder()
            .approach(approach)
            .verify(mode)
            .build()
            .unwrap();
        let mut best = f64::INFINITY;
        let mut run = None;
        for _ in 0..3 {
            let t0 = Instant::now();
            let r = once(&o);
            best = best.min(t0.elapsed().as_secs_f64());
            run = Some(r);
        }
        (run.unwrap(), best)
    };
    let (off_run, off_s) = clean(VerifyMode::Off);
    let (on_run, on_s) = clean(VerifyMode::Full);
    let clean_bit_identical = bits(&off_run.out) == bits(&on_run.out);
    false_positives += on_run
        .status
        .iter()
        .filter(|s| matches!(s, ProblemStatus::VerifyFailed { .. }))
        .count();
    let measured_screen_ms = (on_s - off_s).max(0.0) * 1e3;
    let predicted_screen_ms =
        regla_model::verify_seconds(alg.model(), n, n, 0, count, VerifyMode::Full) * 1e3;

    crate::bench_telemetry::file_recovery(session.take_recovery_totals());

    VerifyOutcome {
        injected,
        detected,
        detection_rate: if injected == 0 {
            1.0
        } else {
            detected as f64 / injected as f64
        },
        false_positives,
        flagged: gated.recovery.verify_failures,
        recovered: gated.recovery.verify_recovered,
        unrecovered,
        clean_bit_identical,
        reproducible,
        measured_screen_ms,
        predicted_screen_ms,
    }
}

/// Telemetry row for one campaign outcome (shared by the report and the
/// `verify_campaign` acceptance binary).
pub fn outcome_row(
    alg: VerifyAlg,
    approach: Approach,
    n: usize,
    count: usize,
    o: &VerifyOutcome,
) -> crate::bench_telemetry::VerifyRow {
    crate::bench_telemetry::VerifyRow {
        alg: match alg {
            VerifyAlg::Qr => "Householder QR".into(),
            VerifyAlg::Lu => "LU".into(),
        },
        shape: format!("{n}x{n}"),
        approach: format!("{approach:?}"),
        problems: count,
        injected: o.injected,
        detected: o.detected,
        detection_rate: o.detection_rate,
        false_positives: o.false_positives,
        recovered: o.recovered,
        bit_identical: o.clean_bit_identical && o.reproducible,
        measured_screen_ms: o.measured_screen_ms,
        predicted_screen_ms: o.predicted_screen_ms,
    }
}

/// The campaign cases shared by the report and the `verify_campaign`
/// acceptance binary.
pub const VERIFY_CASES: &[(&str, VerifyAlg, Approach, usize)] = &[
    ("QR 8x8 per-thread", VerifyAlg::Qr, Approach::PerThread, 8),
    ("QR 24x24 per-block", VerifyAlg::Qr, Approach::PerBlock, 24),
    ("LU 8x8 per-thread", VerifyAlg::Lu, Approach::PerThread, 8),
    ("LU 24x24 per-block", VerifyAlg::Lu, Approach::PerBlock, 24),
];

/// The verification table: silent-corruption detection, gated recovery,
/// clean-sweep transparency, and screen overhead, per (alg, shape).
pub fn verify_campaign(fast: bool) -> String {
    let (count, faults) = if fast { (512, 32) } else { (4096, 64) };
    let mut t = Table::new(
        format!(
            "Verification — silent-corruption campaigns ({count} problems, \
             ABFT checksums + residual screens, verification-gated recovery)"
        ),
        &[
            "campaign",
            "injected",
            "detected",
            "rate",
            "false pos",
            "flagged",
            "recovered",
            "unrecovered",
            "clean bit-id",
            "reproducible",
            "screen ms (meas/pred)",
        ],
    );
    let mut rows = Vec::new();
    for (name, alg, approach, n) in VERIFY_CASES {
        let o = run_verify_campaign(*alg, *approach, *n, count, faults, 0x51_1E_47);
        t.row(&[
            name.to_string(),
            o.injected.to_string(),
            o.detected.to_string(),
            format!("{:.1}%", o.detection_rate * 100.0),
            o.false_positives.to_string(),
            o.flagged.to_string(),
            o.recovered.to_string(),
            o.unrecovered.to_string(),
            if o.clean_bit_identical { "yes" } else { "NO" }.to_string(),
            if o.reproducible { "yes" } else { "NO" }.to_string(),
            format!("{:.2} / {:.2}", o.measured_screen_ms, o.predicted_screen_ms),
        ]);
        rows.push(outcome_row(*alg, *approach, *n, count, &o));
    }
    crate::bench_telemetry::record_verify(rows);
    t.note(
        "Silent flips are invisible to the simulated ECC/machine-check \
         (they land in `LaunchStats::silent_faults`, which recovery never \
         reads), so only the checksum/residual screens can catch them. \
         `VerifyFailed` is not a settled verdict: the ordinary bounded \
         recovery re-runs flagged problems, and the clean re-run passes \
         the same screens. Per-thread blocks carry 64 problems, so one \
         flip can taint any of its block's 64 problems. The screen-cost \
         pair is measured host wall-clock (best of 3) vs the model's \
         `verify_seconds` prediction, both in milliseconds for the whole \
         sweep.",
    );
    t.render()
}
