//! Model-accuracy summary: the quantitative version of the paper's claim
//! that the model "accurately predicts and explains our performance across
//! different problem sizes". Computes per-size prediction error for both
//! approaches and reports the aggregate statistics.

use crate::report::{f, Table};
use crate::workloads::{f32_batch, sweep_count};
use regla_core::{Op, RunOpts, Session};
use regla_gpu_sim::ExecMode;
use regla_model::{per_block, per_thread, Algorithm, Approach, ModelParams};

fn rep(approach: Approach) -> RunOpts {
    RunOpts::builder()
        .exec(ExecMode::Representative)
        .approach(approach)
        .build().unwrap()
}

/// Prediction error across the Figure 4 + Figure 9 size ranges.
pub fn model_accuracy(fast: bool) -> String {
    let session = Session::new();
    let p = ModelParams::table_iv();
    let full = if fast { 1120 } else { 8000 };
    let mut t = Table::new(
        "Model accuracy — measured (sim) vs predicted GFLOPS",
        &["approach", "n", "measured", "predicted", "error %", "regs spill"],
    );
    let mut errors_resident = Vec::new();
    let mut errors_spilled = Vec::new();

    // One problem per thread (Figure 4's range).
    for n in [3usize, 4, 5, 6, 7, 8, 10, 12] {
        let a = f32_batch(n, n, sweep_count(n, 8 * full), true, 0x200 + n as u64);
        let run = session
            .run_with(Op::Qr, &a, None, &rep(Approach::PerThread))
            .unwrap()
            .run;
        let meas = run.gflops();
        let pred = per_thread::predicted_gflops(&p, Algorithm::Qr, n, 4);
        let err = 100.0 * (meas - pred) / pred;
        let spilled = regla_model::thread_plan(n, 0, 1).regs_per_thread > 64;
        if spilled {
            errors_spilled.push(err.abs());
        } else {
            errors_resident.push(err.abs());
        }
        t.row(&[
            "per-thread".into(),
            n.to_string(),
            f(meas),
            f(pred),
            f(err),
            if spilled { "yes" } else { "no" }.into(),
        ]);
    }

    // One problem per block (Figure 9's range).
    let step = if fast { 24 } else { 8 };
    let mut n = 16;
    while n <= 144 {
        let count = sweep_count(n, full);
        let a = f32_batch(n, n, count, true, 0x300 + n as u64);
        let run = session
            .run_with(Op::Qr, &a, None, &rep(Approach::PerBlock))
            .unwrap()
            .run;
        let meas = run.gflops();
        let pred = per_block::predict_block(&p, session.config(), Algorithm::Qr, n, n, 0, 1, count).gflops;
        let err = 100.0 * (meas - pred) / pred;
        let spilled = regla_model::block_plan(n, n, 0, 1).spills();
        if spilled {
            errors_spilled.push(err.abs());
        } else {
            errors_resident.push(err.abs());
        }
        t.row(&[
            "per-block".into(),
            n.to_string(),
            f(meas),
            f(pred),
            f(err),
            if spilled { "yes" } else { "no" }.into(),
        ]);
        n += step;
    }

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    t.note(format!(
        "Mean |error| where the register file suffices: {}%; on spilling sizes \
         (which the model deliberately does not cover — the paper: 'register \
         spilling, which our model does not consider'): {}%.",
        f(mean(&errors_resident)),
        f(mean(&errors_spilled))
    ));
    t.render()
}
