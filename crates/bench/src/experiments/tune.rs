//! `autotune` — regret of the model-driven autotuner on the Figure 10
//! design space.
//!
//! For each (alg, m, n, rhs, batch) key the tuner enumerates the mapping x
//! layout x thread-count x panel space, ranks it by model-predicted cycles
//! and validates the top-k in the fast-path simulator. This experiment
//! then measures what that pipeline *costs* against two baselines, all on
//! simulated cycles of identical probe batches:
//!
//! * **exhaustive** — every distinct execution shape in the space probed
//!   in the simulator; its minimum is the oracle the regret is against;
//! * **heuristic** — the paper's hand-chosen configuration (the 64/256
//!   rule and the fixed panel width).
//!
//! The acceptance gate (`autotune` bin) requires the tuned pick within 5%
//! of the exhaustive oracle on every key; rows land in the `tune` section
//! of `results/BENCH_sim.json`.

use crate::bench_telemetry::{record_tune, TuneRow};
use crate::report::Table;
use regla_gpu_sim::{GpuConfig, MathMode};
use regla_model::{heuristic_plan, Algorithm, Approach, DecisionTable, ModelParams, Plan, PlanKey};
use regla_tune::{TuneSpace, Tuner};

/// Compact `approach/layout/threads/panel` plan label for reports.
fn plan_str(p: &Plan) -> String {
    format!(
        "{}/{}/t{}/p{}",
        p.approach.code(),
        p.layout.code(),
        p.threads.map_or_else(|| "auto".to_string(), |t| t.to_string()),
        p.panel
    )
}

/// Whether two plans launch the same kernels for `key` (panel width only
/// matters on the tiled path; `threads: None` and an explicit count that
/// matches the 64/256 rule are the same launch).
pub fn same_execution(key: &PlanKey, a: &Plan, b: &Plan) -> bool {
    let cols = key.n + key.rhs;
    a.approach == b.approach
        && a.layout == b.layout
        && a.block_threads_for(key.m, cols, key.elem_words)
            == b.block_threads_for(key.m, cols, key.elem_words)
        && (a.approach != Approach::Tiled || a.panel == b.panel)
}

/// The fig10 key sweep: square QR across the per-thread / per-block /
/// spill regimes, plus tall least-squares shapes (the tiled regime) and a
/// few solver keys with carried right-hand sides.
pub fn fig10_keys(fast: bool) -> Vec<PlanKey> {
    let batch = if fast { 32 } else { 256 };
    let mut v = Vec::new();
    let sizes: &[usize] = if fast {
        &[6, 24, 56]
    } else {
        &[4, 6, 8, 16, 24, 40, 56, 64, 80, 96]
    };
    for &n in sizes {
        v.push(PlanKey::new(Algorithm::Qr, n, n, 0, 1, batch, MathMode::Fast));
    }
    let talls: &[(usize, usize)] = if fast {
        &[(48, 24)]
    } else {
        &[(48, 24), (96, 48), (128, 64)]
    };
    for &(m, n) in talls {
        v.push(PlanKey::new(
            Algorithm::LeastSquares,
            m,
            n,
            1,
            1,
            batch,
            MathMode::Fast,
        ));
    }
    if !fast {
        for &n in &[8usize, 32, 56] {
            v.push(PlanKey::new(Algorithm::QrSolve, n, n, 1, 1, batch, MathMode::Fast));
            v.push(PlanKey::new(Algorithm::Lu, n, n, 0, 1, batch, MathMode::Fast));
        }
    }
    v
}

/// Run the autotune sweep and return (rendered report, per-key rows, the
/// emitted decision table). Rows are also filed via [`record_tune`] for
/// `BENCH_sim.json`; the table is what the acceptance bin writes to
/// `results/decision_table.txt`.
pub fn autotune_artifacts(fast: bool) -> (String, Vec<TuneRow>, DecisionTable) {
    let space = if fast {
        TuneSpace::fast()
    } else {
        TuneSpace::default()
    };
    let tuner = Tuner::new(ModelParams::table_iv(), GpuConfig::quadro_6000()).with_space(space);
    let keys = fig10_keys(fast);
    let outcome = tuner.tune(keys.iter().copied());

    let mut t = Table::new(
        "Autotune — model-picked plans vs exhaustive search vs the paper's \
         hand heuristic (simulated cycles on identical probe batches)",
        &[
            "alg", "shape", "heuristic", "tuned", "best", "tuned cyc", "best cyc",
            "regret", "heur regret",
        ],
    );
    let mut rows = Vec::new();
    for report in &outcome.reports {
        let key = report.key;
        let exhaustive = tuner.exhaustive(&key);
        let Some((best_plan, best_sim)) = exhaustive
            .iter()
            .filter_map(|e| e.simulated_cycles.map(|s| (e.plan, s)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
        else {
            continue;
        };
        let tuned_sim = match report.entry.simulated_cycles {
            Some(s) => s,
            None => match tuner.simulate_plan(&key, &report.entry.plan) {
                Some(s) => s,
                None => continue,
            },
        };
        let h = heuristic_plan(&key);
        let h_sim = tuner.simulate_plan(&key, &h).unwrap_or(tuned_sim);
        let regret_pct = 100.0 * (tuned_sim - best_sim) / best_sim;
        let heuristic_regret_pct = 100.0 * (h_sim - best_sim) / best_sim;
        let shape = if key.rhs > 0 {
            format!("{}x{}+{}", key.m, key.n, key.rhs)
        } else {
            format!("{}x{}", key.m, key.n)
        };
        let row = TuneRow {
            alg: key.alg.code().to_string(),
            shape: shape.clone(),
            batch: key.batch(),
            candidates: report.ranked.len(),
            validated: report.validated.len(),
            heuristic: plan_str(&h),
            tuned: plan_str(&report.entry.plan),
            best: plan_str(&best_plan),
            predicted_cycles: report.entry.predicted_cycles,
            tuned_sim_cycles: tuned_sim,
            heuristic_sim_cycles: h_sim,
            exhaustive_sim_cycles: best_sim,
            regret_pct,
            heuristic_regret_pct,
            plan_changed: !same_execution(&key, &report.entry.plan, &h),
        };
        t.row(&[
            row.alg.clone(),
            shape,
            row.heuristic.clone(),
            row.tuned.clone(),
            row.best.clone(),
            format!("{:.0}", row.tuned_sim_cycles),
            format!("{:.0}", row.exhaustive_sim_cycles),
            format!("{:+.2}%", row.regret_pct),
            format!("{:+.2}%", row.heuristic_regret_pct),
        ]);
        rows.push(row);
    }
    let (max_regret, mean_h) = (
        rows.iter().map(|r| r.regret_pct).fold(0.0f64, f64::max),
        rows.iter().map(|r| r.heuristic_regret_pct).sum::<f64>() / rows.len().max(1) as f64,
    );
    t.note(format!(
        "{} keys tuned; max tuned regret {:.2}% (gate: <= 5%); mean heuristic \
         regret {:.2}%. Tuned per-block entries pin derived thread counts, \
         replacing the hand 64/256 rule.",
        rows.len(),
        max_regret,
        mean_h,
    ));
    record_tune(rows.clone());
    (t.render(), rows, outcome.table)
}

/// Harness entry point (see `experiments::ALL`).
pub fn autotune(fast: bool) -> String {
    autotune_artifacts(fast).0
}
