//! Table reproductions (Tables I-VII).

use crate::report::{f, Table};
use regla_core::{Op, RunOpts, Session};
use regla_gpu_sim::{ExecMode, Gpu};
use regla_microbench as mb;
use regla_model::{block_plan, qr_panels, Algorithm, ModelParams};

/// Table I — summary of the GF100 chip and the Quadro 6000.
pub fn table1(_fast: bool) -> String {
    let cfg = regla_gpu_sim::GpuConfig::quadro_6000();
    let mut t = Table::new(
        "Table I — NVIDIA GF100 / Quadro 6000 (simulated)",
        &["Property", "Paper", "This configuration"],
    );
    let rows: Vec<(&str, String, String)> = vec![
        ("Multiprocessors (SIMT units)", "14".into(), cfg.num_sms.to_string()),
        (
            "Total FPUs",
            "448".into(),
            (cfg.num_sms * cfg.fpus_per_sm).to_string(),
        ),
        ("Core clock", "1.15 GHz".into(), format!("{} GHz", cfg.core_clock_ghz)),
        (
            "Max registers per FPU",
            "64".into(),
            cfg.max_regs_per_thread.to_string(),
        ),
        (
            "Shared memory per SIMT unit",
            "64 kB".into(),
            format!(
                "{} kB (48 shared + 16 L1)",
                (cfg.shared_bytes_per_sm + cfg.l1_bytes_per_sm) / 1024
            ),
        ),
        (
            "Global memory bandwidth",
            "144 GB/s".into(),
            format!("{} GB/s", cfg.dram_peak_gbs),
        ),
        (
            "Peak SP throughput",
            "1.03 TFlop/s".into(),
            format!("{:.2} TFlop/s", cfg.peak_sp_gflops() / 1000.0),
        ),
        (
            "Peak SP per FPU",
            "2.3 GFlop/s".into(),
            format!(
                "{:.1} GFlop/s",
                cfg.peak_sp_gflops() / (cfg.num_sms * cfg.fpus_per_sm) as f64
            ),
        ),
    ];
    for (p, a, b) in rows {
        t.row(&[p.into(), a, b]);
    }
    t.render()
}

/// Table II — bandwidth of each level of the memory hierarchy.
pub fn table2(_fast: bool) -> String {
    let gpu = Gpu::quadro_6000();
    let s = mb::measure_shared_bandwidth(&gpu);
    let g = mb::measure_global_bandwidth(&gpu);
    let mut t = Table::new(
        "Table II — bandwidths (GB/s)",
        &["Level", "Paper", "Measured (sim)"],
    );
    t.row(&["Shared memory (per core)".into(), "62.8".into(), f(s.per_sm_gbs)]);
    t.row(&["Shared memory (all cores)".into(), "880".into(), f(s.all_sms_gbs)]);
    t.row(&["Global memory (copy kernel)".into(), "108".into(), f(g.kernel_gbs)]);
    t.row(&["Global memory (cudaMemcpy)".into(), "84".into(), f(g.memcpy_gbs)]);
    t.note(format!(
        "Theoretical peaks: shared {} GB/s ({}% achieved), global {} GB/s ({}% achieved).",
        f(s.theoretical_gbs),
        f(100.0 * s.fraction_of_peak),
        f(g.peak_gbs),
        f(100.0 * g.kernel_fraction)
    ));
    t.render()
}

/// Table III — latency of each level of the memory hierarchy.
pub fn table3(_fast: bool) -> String {
    let gpu = Gpu::quadro_6000();
    let sl = mb::measure_shared_latency(&gpu);
    let gl = mb::global_latency::measure_latency_at_stride(&gpu, 64 << 20, 1 << 20);
    let mut t = Table::new(
        "Table III — latencies (cycles)",
        &["Level", "Paper", "Measured (sim)"],
    );
    t.row(&["Shared memory".into(), "27".into(), f(sl.byte_chain_cycles)]);
    t.row(&[
        "Global memory".into(),
        "570".into(),
        f(gl - sl.shift_cycles),
    ]);
    t.note(format!(
        "Shared latency via byte pointer chase {}; int chase (load+SHL) {} with the \
         {}-cycle shift backed out, matching the paper's two methods.",
        f(sl.byte_chain_cycles),
        f(sl.int_chain_cycles),
        f(sl.shift_cycles)
    ));
    t.render()
}

/// Table IV — the model parameters, derived from the microbenchmarks.
pub fn table4(_fast: bool) -> String {
    let gpu = Gpu::quadro_6000();
    let m = mb::derive_params(&gpu);
    let p = ModelParams::table_iv();
    let mut t = Table::new(
        "Table IV — model parameters",
        &["Parameter", "Paper", "Derived from microbenchmarks (sim)"],
    );
    t.row(&["alpha_glb (cycles)".into(), f(p.alpha_glb), f(m.alpha_glb)]);
    t.row(&[
        "beta_glb (GB/s achievable)".into(),
        f(p.beta_glb_gbs),
        f(m.beta_glb_gbs),
    ]);
    t.row(&["alpha_sh (cycles)".into(), f(p.alpha_sh), f(m.alpha_sh)]);
    t.row(&[
        "beta_sh (GB/s achievable)".into(),
        f(p.beta_sh_gbs),
        f(m.beta_sh_gbs),
    ]);
    t.row(&[
        "alpha_sync @ 64 threads (cycles)".into(),
        "46".into(),
        f(m.alpha_sync(64)),
    ]);
    t.row(&["gamma (cycles)".into(), f(p.gamma), f(m.gamma)]);
    t.render()
}

/// Table V — load/compute/store cycle counts for 56x56 LU and QR.
pub fn table5(fast: bool) -> String {
    let session = Session::new();
    // Per-block cycle counts come from the traced block alone, and the
    // full-wave phase times saturate once the grid fills a wave (112
    // resident blocks), so 10 waves is as good as the paper's 8000
    // problems — at a fraction of the harness's batch-generation cost.
    let _ = fast;
    let count = 1120;
    let opts = RunOpts::builder()
        .exec(ExecMode::Representative)
        .approach(regla_model::Approach::PerBlock)
        .build().unwrap();
    let mut t = Table::new(
        "Table V — cycle counts for 56x56 decompositions (per block)",
        &[
            "Alg", "Load (paper)", "Load (sim)", "Compute (paper)", "Compute (sim)",
            "Store (paper)", "Store (sim)",
        ],
    );
    // One shared batch: regenerating 56x56 problems per algorithm was the
    // bulk of this experiment's wall-clock (pure harness overhead).
    let a = crate::workloads::f32_batch(56, 56, count, true, 0x55);
    let run = |alg: &str| -> (f64, f64, f64) {
        let stats = match alg {
            "LU" => session.run_with(Op::Lu, &a, None, &opts).unwrap().run.stats,
            "LU-listing7" => {
                let mut o = opts.clone();
                o.lu_listing7 = true;
                session.run_with(Op::Lu, &a, None, &o).unwrap().run.stats
            }
            _ => session.run_with(Op::Qr, &a, None, &opts).unwrap().run.stats,
        };
        let s = &stats.launches[0];
        let load = s.cycles_for("load");
        let store = s.cycles_for("store");
        let compute = s.wave_cycles() - load - store;
        (load, compute, store)
    };
    let (l, c, s) = run("LU");
    t.row(&[
        "LU (hoisted)".into(), "8800".into(), f(l), "68250".into(), f(c), "8740".into(), f(s),
    ]);
    let (l, c, s) = run("LU-listing7");
    t.row(&[
        "LU (Listing 7)".into(), "8800".into(), f(l), "68250".into(), f(c), "8740".into(), f(s),
    ]);
    let (l, c, s) = run("QR");
    t.row(&[
        "QR".into(), "9120".into(), f(l), "150203".into(), f(c), "9762".into(), f(s),
    ]);
    t.note(
        "Paper: 64 threads/block, 8 blocks/SM (112 problems in flight). The simulator \
         does not overlap global loads with compute, so its load/store cycles are the \
         full wave's DRAM time; the paper observed partial overlap (Section V-C). \
         The 'Listing 7' LU re-reads shared memory inside the rank-1 update exactly \
         like the paper's published kernel, reproducing its measured 68k cycles; the \
         default hoisted kernel is faster.",
    );
    t.render()
}

/// Table VI — the cost-model estimates, symbolic and evaluated at 56x56.
pub fn table6(_fast: bool) -> String {
    let p = ModelParams::table_iv();
    let plan = block_plan(56, 56, 0, 1);
    let mut t = Table::new(
        "Table VI — per-column cost estimates (paper's expressions)",
        &["Operation", "Expression (paper)", "Evaluated at n=56, p=64 (cycles)"],
    );
    let c = |x: f64| f(x);
    let n_t = plan.hreg as f64;
    let rdim = plan.rdim as f64;
    let sync = p.alpha_sync(plan.threads);
    let bc = p.beta_chain();
    // LU rows.
    t.row(&[
        "LU column: scale factor".into(),
        "gamma_div + alpha_sync".into(),
        c(p.gamma_div + sync),
    ]);
    t.row(&[
        "LU column: write/read scale".into(),
        "2 beta".into(),
        c(2.0 * bc),
    ]);
    t.row(&["LU column: scale l".into(), "N gamma".into(), c(n_t + p.gamma)]);
    t.row(&[
        "LU column: write l & u".into(),
        "2N beta + alpha_sync".into(),
        c(4.0 * n_t + p.alpha_sh + sync),
    ]);
    t.row(&[
        "LU trailing: read l & u".into(),
        "2N beta".into(),
        c(3.0 * 2.0 * n_t + p.alpha_sh),
    ]);
    t.row(&[
        "LU trailing: rank-1".into(),
        "N^2 gamma + alpha_sync".into(),
        c(n_t * n_t + p.gamma + sync),
    ]);
    // QR rows.
    t.row(&["QR column: norm".into(), "N gamma".into(), c(n_t * p.gamma)]);
    t.row(&[
        "QR column: norm reduction".into(),
        "(1+sqrt(p)) beta + sqrt(p) gamma".into(),
        c(rdim * (bc + p.gamma)),
    ]);
    t.row(&[
        "QR column: scale factor".into(),
        "gamma_sqrt + 2 gamma_div + 2 gamma".into(),
        c(p.gamma_sqrt + 2.0 * p.gamma_div + 2.0 * p.gamma),
    ]);
    t.row(&[
        "QR column: scale & publish".into(),
        "N gamma + N beta + alpha_sync".into(),
        c(n_t + p.gamma + 2.0 * n_t + p.alpha_sh + sync),
    ]);
    t.row(&[
        "QR trailing: matvec".into(),
        "N beta + N^2 gamma".into(),
        c(3.0 * n_t + p.alpha_sh + n_t * n_t * p.gamma),
    ]);
    t.row(&[
        "QR trailing: mv reduction".into(),
        "2 alpha_sync + (1+sqrt(p)) beta + sqrt(p) gamma".into(),
        c(2.0 * sync + rdim * (bc + p.gamma)),
    ]);
    t.row(&[
        "QR trailing: rank-1".into(),
        "N beta + N^2 gamma + alpha_sync".into(),
        c(3.0 * n_t + p.alpha_sh + n_t * n_t + p.gamma + sync),
    ]);
    t.note(
        "Expressions are the paper's; evaluations use this reproduction's calibration \
         (dependent shared access = alpha_sh + address arithmetic; independent FMAs \
         pipeline at one per cycle).",
    );
    let lu = regla_model::per_block::block_compute_cycles(&p, &plan, Algorithm::Lu, 8);
    let qr: f64 = qr_panels(&p, &plan, 8).iter().map(|e| e.total()).sum();
    t.note(format!(
        "Model totals for 56x56: LU {} cycles, QR {} cycles (paper measured 68k / 150k).",
        f(lu),
        f(qr)
    ));
    t.render()
}

/// Table VII — RT_STAP complex QR factorizations.
pub fn table7(fast: bool) -> String {
    let session = Session::new();
    let mut t = Table::new(
        "Table VII — single-precision complex QR from RT_STAP",
        &[
            "Size", "# Matrices", "GPU GFLOPS (paper)", "GPU GFLOPS (sim)",
            "MKL GFLOPS (paper)", "CPU GFLOPS (ours)", "Speedup (paper)", "Speedup (sim vs ours)",
        ],
    );
    for case in &regla_stap::RT_STAP_CASES {
        let c = if fast {
            regla_stap::StapCase {
                count: (case.count / 16).max(4),
                ..*case
            }
        } else {
            *case
        };
        let r = regla_stap::run_case(&session, &c, ExecMode::Representative, regla_cpu::default_threads());
        let paper_speedup = case.paper_gpu_gflops / case.paper_mkl_gflops;
        t.row(&[
            format!("{}x{}", case.m, case.n),
            c.count.to_string(),
            f(case.paper_gpu_gflops),
            f(r.gpu_gflops),
            f(case.paper_mkl_gflops),
            f(r.cpu_gflops),
            format!("{}x", f(paper_speedup)),
            format!("{}x", f(r.speedup)),
        ]);
    }
    t.note(
        "Our CPU baseline is plain Rust (no SSE intrinsics), so its absolute GFLOPS sit \
         below MKL's; the paper's MKL column is reprinted for the intended comparison. \
         Shape check: 80x16 is fastest on the GPU (fits one block), 240x66 is slowest \
         of the three (tiled, register file partially wasted) — as in the paper.",
    );
    t.render()
}
