//! Sanitizer campaign: deliberately buggy kernel fixtures (one per check,
//! plus a hung kernel for the watchdog) that the sanitizer must catch, and
//! a clean sweep of the shipped solvers under `SanitizerMode::Full` that
//! must come back with zero findings and bit-identical numerics.
//!
//! `sanitize_campaign` (the bin) turns the same fixtures into an
//! acceptance gate and writes the merged buggy-fixture report as
//! `results/sanitizer_report.json`.

use crate::report::Table;
use crate::workloads::f32_batch;
use regla_core::{MatBatch, Op, RunOpts, Session};
use regla_gpu_sim::{
    BlockCtx, ExecMode, GlobalMemory, Gpu, LaunchConfig, LaunchError, SanitizerCheck,
    SanitizerMode, SanitizerReport,
};
use regla_model::Approach;

const THREADS: usize = 64;

/// Outcome of one buggy fixture: what the sanitizer reported.
pub struct FixtureOutcome {
    pub name: &'static str,
    /// The check this fixture is built to trip.
    pub expect: &'static str,
    /// Findings of the expected check (watchdog fixture: 1 on trip).
    pub hits: u64,
    /// Findings of every other check (should stay 0 for a sharp fixture).
    pub other: u64,
    /// The per-launch report (empty for the watchdog fixture, which errors
    /// before a report is assembled).
    pub report: SanitizerReport,
}

fn buggy_launch(
    kernel: impl Fn(&mut BlockCtx) + Sync,
    shared_words: usize,
) -> SanitizerReport {
    let mut mem = GlobalMemory::with_bytes(1 << 16);
    let out = mem.alloc(THREADS);
    mem.h2d(out, &vec![0.0; THREADS]);
    let lc = LaunchConfig::new(1, THREADS)
        .regs(12)
        .shared_words(shared_words)
        .exec(ExecMode::Full)
        .sanitizer(SanitizerMode::Full);
    let stats = Gpu::quadro_6000()
        .launch(
            &move |blk: &mut BlockCtx| {
                kernel(blk);
                blk.for_each(|t| {
                    let v = t.lit(1.0);
                    t.gstore(out, t.tid, v);
                });
            },
            &lc,
            &mut mem,
        )
        .expect("buggy fixtures still complete (the sanitizer observes)");
    stats.sanitizer.expect("sanitized launch carries a report")
}

fn fixture(
    name: &'static str,
    check: SanitizerCheck,
    report: SanitizerReport,
) -> FixtureOutcome {
    let hits = report.count(check);
    FixtureOutcome {
        name,
        expect: check.name(),
        hits,
        other: report.total() - hits,
        report,
    }
}

/// Run the four buggy-kernel fixtures and return their outcomes.
pub fn buggy_fixtures() -> Vec<FixtureOutcome> {
    let mut out = Vec::new();

    // memcheck: thread 0 reads one word past the shared allocation.
    out.push(fixture(
        "OOB shared read",
        SanitizerCheck::Memcheck,
        buggy_launch(
            |blk| {
                blk.phase_label("oob");
                blk.for_each(|t| {
                    if t.tid == 0 {
                        t.shared_load(8);
                    }
                });
            },
            8,
        ),
    ));

    // racecheck: neighbour exchange with no sync between write and read.
    out.push(fixture(
        "missing sync()",
        SanitizerCheck::Racecheck,
        buggy_launch(
            |blk| {
                blk.phase_label("warm up");
                blk.for_each(|t| {
                    let v = t.lit(t.tid as f32);
                    t.shared_store(t.tid, v);
                });
                blk.sync();
                blk.phase_label("exchange");
                blk.for_each(|t| {
                    let v = t.shared_load((t.tid + 1) % THREADS);
                    let v2 = t.add(v, v);
                    t.shared_store(t.tid, v2);
                });
            },
            THREADS,
        ),
    ));

    // synccheck: thread 3 skips a barrier the rest of the block reaches.
    out.push(fixture(
        "divergent barrier",
        SanitizerCheck::Synccheck,
        buggy_launch(
            |blk| {
                blk.phase_label("diverge");
                blk.for_each(|t| {
                    if t.tid != 3 {
                        t.barrier();
                    }
                });
                blk.sync();
            },
            0,
        ),
    ));

    // initcheck: read a workspace the host never filled.
    let uninit = {
        let mut mem = GlobalMemory::with_bytes(1 << 16);
        let cold = mem.alloc(THREADS);
        let out = mem.alloc(THREADS);
        mem.h2d(out, &vec![0.0; THREADS]);
        let lc = LaunchConfig::new(1, THREADS)
            .regs(12)
            .shared_words(0)
            .exec(ExecMode::Full)
            .sanitizer(SanitizerMode::Full);
        Gpu::quadro_6000()
            .launch(
                &move |blk: &mut BlockCtx| {
                    blk.phase_label("cold read");
                    blk.for_each(|t| {
                        let v = t.gload(cold, t.tid);
                        t.gstore(out, t.tid, v);
                    });
                },
                &lc,
                &mut mem,
            )
            .unwrap()
            .sanitizer
            .unwrap()
    };
    out.push(fixture(
        "uninitialized workspace read",
        SanitizerCheck::Initcheck,
        uninit,
    ));

    out
}

/// Run the hung-kernel fixture; returns the structured watchdog error.
pub fn watchdog_fixture() -> Result<(), LaunchError> {
    let mut mem = GlobalMemory::with_bytes(1 << 12);
    let lc = LaunchConfig::new(1, THREADS)
        .regs(8)
        .shared_words(0)
        .exec(ExecMode::Full)
        .watchdog(10_000);
    Gpu::quadro_6000()
        .launch(
            &|blk: &mut BlockCtx| {
                blk.phase_label("spin");
                blk.for_each(|t| {
                    let one = t.lit(1.0);
                    let mut acc = t.lit(0.0);
                    loop {
                        acc = t.add(acc, one);
                    }
                });
            },
            &lc,
            &mut mem,
        )
        .map(|_| ())
}

/// Outcome of one clean-sweep case.
pub struct SweepOutcome {
    pub op: Op,
    pub n: usize,
    pub approach: Approach,
    pub findings: u64,
    pub bit_identical: bool,
}

/// Sweep the shipped solvers over the paper's shape range under the full
/// sanitizer; each case is also run unsanitized for the bit-identity
/// check.
pub fn clean_sweep(fast: bool) -> Vec<SweepOutcome> {
    let session = Session::new();
    let shapes: &[usize] = if fast { &[8, 16] } else { &[4, 8, 16, 24, 32] };
    let count = if fast { 64 } else { 256 };
    let mut out = Vec::new();
    for op in [Op::Qr, Op::Lu, Op::GjSolve, Op::Cholesky] {
        for &n in shapes {
            for approach in [Approach::PerThread, Approach::PerBlock] {
                let mut a = f32_batch(n, n, count, true, 0x5A17 + n as u64);
                if op == Op::Cholesky {
                    // SPD input: symmetrize, then re-dominate the diagonal.
                    for k in 0..count {
                        let mut m = a.mat(k);
                        for i in 0..n {
                            for j in 0..i {
                                let v = m[(i, j)];
                                m[(j, i)] = v;
                            }
                        }
                        m.make_diagonally_dominant();
                        a.set_mat(k, &m);
                    }
                }
                let b = MatBatch::from_fn(n, 1, count, |k, i, _| ((k + i) % 9) as f32 - 4.0);
                let rhs = op.needs_rhs().then_some(&b);
                let plain = RunOpts::builder().approach(approach).build().unwrap();
                let checked = RunOpts::builder()
                    .approach(approach)
                    .sanitizer(SanitizerMode::Full)
                    .build().unwrap();
                let base = session.run_with(op, &a, rhs, &plain).expect("valid case").run;
                let run = session.run_with(op, &a, rhs, &checked).expect("valid case").run;
                let bits =
                    |b: &MatBatch<f32>| -> Vec<u32> { b.data().iter().map(|v| v.to_bits()).collect() };
                out.push(SweepOutcome {
                    op,
                    n,
                    approach,
                    findings: run.sanitizer.as_ref().map_or(u64::MAX, |r| r.total()),
                    bit_identical: bits(&run.out) == bits(&base.out)
                        && run.status == base.status,
                });
            }
        }
    }
    out
}

/// The sanitizer campaign table: buggy fixtures, the watchdog, and the
/// clean-sweep summary.
pub fn sanitize_campaign(fast: bool) -> String {
    let mut t = Table::new(
        "Sanitizer — buggy-kernel fixtures and shipped-kernel clean sweep".to_string(),
        &["case", "expected check", "hits", "other findings", "verdict"],
    );
    for f in buggy_fixtures() {
        t.row(&[
            f.name.to_string(),
            f.expect.to_string(),
            f.hits.to_string(),
            f.other.to_string(),
            if f.hits > 0 { "caught" } else { "MISSED" }.to_string(),
        ]);
    }
    let wd = watchdog_fixture();
    t.row(&[
        "hung kernel".to_string(),
        "watchdog".to_string(),
        if matches!(wd, Err(LaunchError::Watchdog { .. })) { 1 } else { 0 }.to_string(),
        "0".to_string(),
        match wd {
            Err(LaunchError::Watchdog { .. }) => "caught".to_string(),
            Err(other) => format!("WRONG ERROR ({other})"),
            Ok(()) => "MISSED".to_string(),
        },
    ]);

    let sweep = clean_sweep(fast);
    let dirty = sweep.iter().filter(|s| s.findings != 0).count();
    let nonident = sweep.iter().filter(|s| !s.bit_identical).count();
    t.row(&[
        format!("clean sweep ({} cases)", sweep.len()),
        "none".to_string(),
        sweep.iter().map(|s| s.findings).sum::<u64>().to_string(),
        "0".to_string(),
        if dirty == 0 && nonident == 0 {
            "clean + bit-identical".to_string()
        } else {
            format!("{dirty} dirty, {nonident} non-identical")
        },
    ]);
    t.note(
        "Each fixture is built to trip exactly one check; \"other findings\" \
         counts collateral reports from the remaining checks. The clean sweep \
         runs every shipped solver across the paper's shape range under \
         SanitizerMode::Full and re-runs it unsanitized: the sanitizer is \
         observational, so outputs must match to the bit.",
    );
    t.render()
}
