//! Stream-pipelined batch execution: chunked copy/compute overlap through
//! `Session::pipelined`, on the paper's single-copy-engine Quadro 6000
//! (where the driver serializes everything — "we found no benefit from
//! using multiple streams", Section VI-C) and on a dual-copy-engine
//! configuration of the same chip, where the classic three-stage
//! H2D / kernel / D2H pipeline emerges.

use crate::bench_telemetry::{record_pipeline, PipelineRow};
use crate::report::{f, Table};
use crate::workloads::f32_batch;
use regla_core::{Op, PipelineOpts, RunOpts, Session};
use regla_gpu_sim::{ExecMode, GpuConfig};

/// One measured shape: op, n, batch size.
struct Case {
    op: Op,
    n: usize,
    count: usize,
}

pub fn pipeline(fast: bool) -> String {
    let scale = if fast { 8 } else { 1 };
    // The flagship transfer-bound shape (4096 x QR 32x32) first: small
    // matrices move almost as many bytes as they compute, so overlap pays
    // the most. 56x56 is compute-heavy; the GJ solve carries a rhs.
    let cases = [
        Case { op: Op::Qr, n: 32, count: 4096 / scale },
        Case { op: Op::Qr, n: 56, count: 2016 / scale },
        Case { op: Op::GjSolve, n: 16, count: 4096 / scale },
    ];
    let configs = [
        ("quadro_6000", GpuConfig::quadro_6000()),
        ("quadro_6000_dual_copy", GpuConfig::quadro_6000_dual_copy()),
    ];
    let popts = PipelineOpts::new(4, 8);
    let opts = RunOpts::builder().exec(ExecMode::Representative).build().unwrap();

    let mut t = Table::new(
        "Stream pipelining — chunked copy/compute overlap (4 streams, 8 chunks)",
        &[
            "device", "op", "shape", "batch", "sync (ms)", "pipelined (ms)",
            "speedup", "predicted", "model err %",
        ],
    );
    let mut rows = Vec::new();
    for (name, cfg) in configs {
        let session = Session::with_config(cfg);
        for case in &cases {
            let a = f32_batch(case.n, case.n, case.count, true, 0x91 + case.n as u64);
            let b = matches!(case.op, Op::GjSolve)
                .then(|| f32_batch(case.n, 1, case.count, false, 0x92));
            let r = session
                .pipelined_with(case.op, &a, b.as_ref(), &popts, &opts)
                .unwrap();
            let rep = &r.report;
            t.row(&[
                name.into(),
                rep.op.into(),
                format!("{}x{}", case.n, case.n),
                case.count.to_string(),
                f(rep.sync_s * 1e3),
                f(rep.pipelined_s * 1e3),
                format!("{}x", f(rep.speedup())),
                format!("{}x", f(rep.predicted_speedup())),
                format!("{:+.1}", rep.pipelined_error_pct()),
            ]);
            rows.push(PipelineRow {
                config: name.into(),
                op: rep.op.into(),
                shape: format!("{}x{}", case.n, case.n),
                batch: rep.batch,
                chunks: rep.chunks,
                streams: rep.streams,
                copy_engines: rep.copy_engines,
                sync_ms: rep.sync_s * 1e3,
                pipelined_ms: rep.pipelined_s * 1e3,
                speedup: rep.speedup(),
                predicted_speedup: rep.predicted_speedup(),
                model_error_pct: rep.pipelined_error_pct(),
                kernel_modeled: rep.kernel_modeled,
            });
        }
    }
    let modeled: Vec<f64> = rows
        .iter()
        .filter(|r| r.kernel_modeled)
        .map(|r| r.model_error_pct.abs())
        .collect();
    let mean_err = modeled.iter().sum::<f64>() / modeled.len().max(1) as f64;
    record_pipeline(rows);
    t.note(format!(
        "One copy engine (the paper's board): the driver serializes every \
         transfer, the timeline collapses to the synchronous schedule, and \
         streams buy exactly nothing — the paper's Section VI-C observation. \
         Two copy engines: H2D, kernel, and D2H stages of different chunks \
         overlap and the transfer-bound shapes approach the kernel-only \
         rate. The model's pipelined-time term tracks the resolved timeline \
         at {}% mean |error| over the modeled rows.",
        f(mean_err)
    ));
    t.render()
}
