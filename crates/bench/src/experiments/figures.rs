//! Figure reproductions (Figures 1, 2, 4, 7, 8, 9, 10, 11, 12).

use crate::report::{f, Table};
use crate::workloads::{f32_batch, sweep_count};
use regla_core::{Layout, Op, RunOpts, Session};
use regla_cpu::{mkl_reference_gflops, timed_batch, CpuAlg};
use regla_gpu_sim::{ExecMode, Gpu};
use regla_hybrid::{hybrid_batch_gflops, HybridCfg, Start};
use regla_microbench as mb;
use regla_model::{per_thread, predict_block, qr_panels, Algorithm, Approach, ModelParams};

fn rep_opts(approach: Approach) -> RunOpts {
    RunOpts::builder()
        .exec(ExecMode::Representative)
        .approach(approach)
        .build().unwrap()
}

/// Sampled execution: timing is still traced-block exact, but `k`
/// evenly-spaced blocks also run functionally so a spread of problems
/// across the batch has real outputs to spot-check. Used by the per-thread
/// sweeps (Figures 4 and 10), whose huge grids make `Full` replay the
/// dominant host cost; see EXPERIMENTS.md.
fn sampled_opts(approach: Approach, k: usize) -> RunOpts {
    RunOpts::builder()
        .exec(ExecMode::Sampled(k))
        .approach(approach)
        .build().unwrap()
}

/// Figure 1 — global memory latency as a function of access stride.
pub fn fig1(fast: bool) -> String {
    let gpu = Gpu::quadro_6000();
    let max_log2 = if fast { 20 } else { 26 };
    let curve = mb::measure_global_latency_curve(&gpu, max_log2);
    let mut t = Table::new(
        "Figure 1 — global memory latency vs stride (cycles)",
        &["log2(stride words)", "Latency (sim)"],
    );
    for p in &curve {
        t.row(&[p.log2_stride.to_string(), f(p.cycles)]);
    }
    t.note(
        "Paper's curve rises in steps from ~300 to ~570 cycles as strides defeat \
         first the L2 line, then the DRAM row buffer, then the TLB reach. Table III's \
         570-cycle alpha_glb is the large-stride plateau.",
    );
    t.render()
}

/// Figure 2 — synchronization latency vs threads per multiprocessor.
pub fn fig2(_fast: bool) -> String {
    let gpu = Gpu::quadro_6000();
    let curve = mb::measure_sync_latency_curve(&gpu);
    let mut t = Table::new(
        "Figure 2 — __syncthreads() latency vs block size (cycles)",
        &["Threads", "Latency (sim)"],
    );
    for p in &curve {
        t.row(&[p.threads.to_string(), f(p.cycles)]);
    }
    t.note("Paper: ~46 cycles at 64 threads (Table IV), rising to ~190 at 1024.");
    t.render()
}

/// Figure 4 — one problem per thread, measured vs the bandwidth roofline.
pub fn fig4(fast: bool) -> String {
    let session = Session::new();
    let params = ModelParams::table_iv();
    let full = if fast { 6400 } else { 64000 };
    let mut t = Table::new(
        "Figure 4 — 64000 per-thread factorizations (GFLOPS)",
        &[
            "n", "QR measured", "QR predicted", "LU measured", "LU predicted", "spills",
        ],
    );
    for n in 3..=12 {
        let count = sweep_count(n, full);
        let a = f32_batch(n, n, count, true, 0x40 + n as u64);
        let qr = session
            .run_with(Op::Qr, &a, None, &sampled_opts(Approach::PerThread, 8))
            .unwrap()
            .run;
        let lu = session
            .run_with(Op::Lu, &a, None, &sampled_opts(Approach::PerThread, 8))
            .unwrap()
            .run;
        let qr_pred = per_thread::predicted_gflops(&params, Algorithm::Qr, n, 4);
        let lu_pred = per_thread::predicted_gflops(&params, Algorithm::Lu, n, 4);
        let spilled = lu.stats.launches[0].occupancy.regs_spilled > 0;
        t.row(&[
            n.to_string(),
            f(qr.gflops()),
            f(qr_pred),
            f(lu.gflops()),
            f(lu_pred),
            if spilled { "yes" } else { "no" }.into(),
        ]);
    }
    t.note(
        "The model is arithmetic intensity x 108 GB/s (FLOPs free, latency hidden). \
         Measurement follows it until the matrix exceeds the 64-register budget at \
         n = 8 and spills to local memory — the paper's collapse point.",
    );
    t.render()
}

/// Figure 7 — 2D cyclic vs 1D row/column cyclic layouts for QR solves.
pub fn fig7(fast: bool) -> String {
    let session = Session::new();
    let full = if fast { 560 } else { 2016 };
    let mut t = Table::new(
        "Figure 7 — solving linear systems with QR, layouts compared (GFLOPS)",
        &["n", "2D cyclic", "1D column cyclic", "1D row cyclic"],
    );
    for n in (16..=96).step_by(16) {
        let count = sweep_count(n, full);
        let a = f32_batch(n, n, count, true, 0x70 + n as u64);
        let b = f32_batch(n, 1, count, false, 0x71 + n as u64);
        let mut cells = vec![n.to_string()];
        for layout in [Layout::TwoDCyclic, Layout::ColCyclic, Layout::RowCyclic] {
            let opts = RunOpts::builder()
                .exec(ExecMode::Representative)
                .approach(Approach::PerBlock)
                .layout(layout)
                .build().unwrap();
            let run = session.run_with(Op::QrSolve, &a, Some(&b), &opts).unwrap().run;
            cells.push(f(run.gflops()));
        }
        t.row(&cells);
    }
    t.note(
        "Paper (10,000 systems): the 2D layout dominates both 1D layouts at every \
         size; 1D row cyclic is worst because Householder QR's column operations \
         serialise across all p threads.",
    );
    t.render()
}

/// Figure 8 — per-panel cycle breakdown of the 56x56 QR.
pub fn fig8(fast: bool) -> String {
    let session = Session::new();
    let count = if fast { 1120 } else { 8000 };
    let a = f32_batch(56, 56, count, true, 0x88);
    let run = session
        .run_with(Op::Qr, &a, None, &rep_opts(Approach::PerBlock))
        .unwrap()
        .run;
    let stats = &run.stats.launches[0];
    let params = ModelParams::table_iv();
    let plan = regla_model::block_plan(56, 56, 0, 1);
    let model = qr_panels(&params, &plan, 8);
    let mut t = Table::new(
        "Figure 8 — cycles per panel of a 56x56 QR (measured sim | model)",
        &[
            "Panel", "Form HH (sim)", "Form HH (model)", "MatVec (sim)", "MatVec (model)",
            "Rank-1 (sim)", "Rank-1 (model)", "Total (sim)", "Total (model)",
        ],
    );
    for est in &model {
        let p = est.panel;
        let hh = stats.cycles_for(&format!("panel {p}: form-hh"));
        let mv = stats.cycles_for(&format!("panel {p}: matvec"));
        let r1 = stats.cycles_for(&format!("panel {p}: rank-1"));
        t.row(&[
            p.to_string(),
            f(hh),
            f(est.form_hh),
            f(mv),
            f(est.matvec),
            f(r1),
            f(est.rank1),
            f(hh + mv + r1),
            f(est.total()),
        ]);
    }
    t.note(
        "As in the paper, each panel is cheaper than the last (the trailing matrix \
         shrinks by sqrt(p) rows and columns per panel) and the matrix-vector \
         multiply dominates.",
    );
    t.render()
}

/// Shared machinery for Figures 9-12: measured per-block GFLOPS.
fn per_block_gflops(session: &Session, alg: CpuAlg, n: usize, count: usize) -> f64 {
    let a = f32_batch(n, n, count, true, 0x90 + n as u64);
    let opts = rep_opts(Approach::PerBlock);
    let run = match alg {
        CpuAlg::LuNoPivot | CpuAlg::LuPivot => session.run_with(Op::Lu, &a, None, &opts),
        CpuAlg::Qr => session.run_with(Op::Qr, &a, None, &opts),
        CpuAlg::QrSolve => {
            let b = f32_batch(n, 1, count, false, 0x91 + n as u64);
            session.run_with(Op::QrSolve, &a, Some(&b), &opts)
        }
        CpuAlg::GjSolve => {
            let b = f32_batch(n, 1, count, false, 0x92 + n as u64);
            session.run_with(Op::GjSolve, &a, Some(&b), &opts)
        }
        CpuAlg::Cholesky => session.run_with(Op::Cholesky, &a, None, &opts),
    };
    run.unwrap().run.gflops()
}

/// Figure 9 — one problem per block, measured vs model.
pub fn fig9(fast: bool) -> String {
    let session = Session::new();
    let cfgd = session.config();
    let params = ModelParams::table_iv();
    let full = if fast { 1120 } else { 8000 };
    let step = if fast { 16 } else { 8 };
    let mut t = Table::new(
        "Figure 9 — 8000 per-block factorizations (GFLOPS)",
        &[
            "n", "threads", "QR measured", "QR predicted", "LU measured", "LU predicted",
        ],
    );
    let mut n = 8;
    while n <= 144 {
        let count = sweep_count(n, full);
        let qr = per_block_gflops(&session, CpuAlg::Qr, n, count);
        let lu = per_block_gflops(&session, CpuAlg::LuNoPivot, n, count);
        let qr_pred = predict_block(&params, cfgd, Algorithm::Qr, n, n, 0, 1, count).gflops;
        let lu_pred = predict_block(&params, cfgd, Algorithm::Lu, n, n, 0, 1, count).gflops;
        let plan = regla_model::block_plan(n, n, 0, 1);
        t.row(&[
            n.to_string(),
            plan.threads.to_string(),
            f(qr),
            f(qr_pred),
            f(lu),
            f(lu_pred),
        ]);
        n += step;
    }
    t.note(
        "Paper's shape: performance climbs to ~200 GFLOPS, drops sharply at n = 80 \
         (the switch from 64 to 256 threads cuts blocks/SM), and the model over-\
         predicts at n = 64 and beyond 112 where register spilling (not modelled) \
         slows the measurement.",
    );
    t.render()
}

/// Figure 10 — the design space: per-thread, per-block, hybrid.
pub fn fig10(fast: bool) -> String {
    let session = Session::new();
    let hybrid = HybridCfg::magma_like(session.config());
    let mut t = Table::new(
        "Figure 10 — many QR factorizations: three approaches (GFLOPS)",
        &["n", "per-thread", "per-block", "hybrid CPU+GPU"],
    );
    let sizes: &[usize] = if fast {
        &[2, 8, 32, 64, 128, 512, 2048, 8192]
    } else {
        &[2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192]
    };
    let mut last_pt = 0.0;
    let mut last_pb = 0.0;
    for &n in sizes {
        // Per-thread: measured until the functional cost explodes.
        let pt = if n <= 128 {
            let count = sweep_count(n, 64000);
            let a = f32_batch(n, n, count, true, 0xA0 + n as u64);
            let g = session
                .run_with(Op::Qr, &a, None, &sampled_opts(Approach::PerThread, 8))
                .unwrap()
                .run
                .gflops();
            last_pt = g;
            f(g)
        } else {
            format!("~{} (extrap.)", f(last_pt))
        };
        // Per-block: measured while a block can still hold (or spill) it.
        let pb = if (8..=512).contains(&n) {
            let count = sweep_count(n, 8000);
            let g = per_block_gflops(&session, CpuAlg::Qr, n, count);
            last_pb = g;
            f(g)
        } else if n < 8 {
            "-".into()
        } else {
            format!("~{} (extrap.)", f(last_pb))
        };
        let hy = hybrid_batch_gflops(&hybrid, Algorithm::Qr, n, n, 1.max(8192 / n), Start::Cpu);
        t.row(&[n.to_string(), pt, pb, f(hy)]);
    }
    t.note(
        "The design space is not flat (paper, Section VI): per-thread wins tiny \
         sizes, per-block wins the small-to-medium batched regime, and the hybrid \
         blocked library wins single large factorizations. Extrapolated entries \
         continue the spilled (DRAM-bound) plateau where functional simulation is \
         impractical.",
    );
    t.render()
}

/// Figure 11 — per-block QR/LU vs MKL and MAGMA.
pub fn fig11(fast: bool) -> String {
    let session = Session::new();
    let hybrid = HybridCfg::magma_like(session.config());
    let full = if fast { 1120 } else { 8000 };
    let step = if fast { 32 } else { 16 };
    let threads = regla_cpu::default_threads();
    let mut t = Table::new(
        "Figure 11 — 8000 factorizations vs MKL and MAGMA (GFLOPS)",
        &[
            "alg", "n", "per-block (sim)", "CPU ours", "MKL (paper)",
            "MAGMA CPU-start (model)", "MAGMA GPU-start (model)",
        ],
    );
    for (alg, cpu_alg, malg) in [
        ("QR", CpuAlg::Qr, Algorithm::Qr),
        ("LU", CpuAlg::LuNoPivot, Algorithm::Lu),
    ] {
        let mut n = 8;
        while n <= 144 {
            let count = sweep_count(n, full);
            let gpu_g = per_block_gflops(&session, cpu_alg, n, count);
            let cpu_count = (2_000_000 / (n * n * n).max(1)).clamp(8, 512);
            let a = f32_batch(n, n, cpu_count, true, 0xB0 + n as u64);
            let cpu_run = timed_batch(cpu_alg, &a, n, threads);
            let magma_c = hybrid_batch_gflops(&hybrid, malg, n, n, count, Start::Cpu);
            let magma_g = hybrid_batch_gflops(&hybrid, malg, n, n, count, Start::Gpu);
            t.row(&[
                alg.into(),
                n.to_string(),
                f(gpu_g),
                f(cpu_run.gflops()),
                f(mkl_reference_gflops(n)),
                f(magma_c),
                f(magma_g),
            ]);
            n += step;
        }
    }
    t.note(
        "Paper (log scale): the per-block kernels sit 1-2 orders above MKL and \
         MAGMA across n = 8..144; MAGMA's CPU-start beats its GPU-start because \
         these sizes are factored on the CPU anyway and GPU-start pays the round \
         trip. Our CPU baseline is plain Rust; the MKL column holds the paper's \
         anchored values.",
    );
    t.render()
}

/// Figure 12 — solving linear systems (QR solve and Gauss-Jordan) vs MKL.
pub fn fig12(fast: bool) -> String {
    let session = Session::new();
    let full = if fast { 1120 } else { 8000 };
    let step = if fast { 32 } else { 16 };
    let threads = regla_cpu::default_threads();
    let mut t = Table::new(
        "Figure 12 — solving 8000 linear systems (GFLOPS)",
        &[
            "solver", "n", "per-block (sim)", "CPU ours", "MKL (paper, pivoting)",
        ],
    );
    for (name, cpu_alg) in [
        ("QR solve", CpuAlg::QrSolve),
        ("Gauss-Jordan (no pivot)", CpuAlg::GjSolve),
    ] {
        let mut n = 8;
        while n <= 144 {
            let count = sweep_count(n, full);
            let gpu_g = per_block_gflops(&session, cpu_alg, n, count);
            let cpu_count = (2_000_000 / (n * n * n).max(1)).clamp(8, 512);
            let a = f32_batch(n, n, cpu_count, true, 0xC0 + n as u64);
            let b = f32_batch(n, 1, cpu_count, false, 0xC1 + n as u64);
            let aug = regla_core::MatBatch::augment(&a, &b);
            let cpu_run = timed_batch(cpu_alg, &aug, n, threads);
            t.row(&[
                name.into(),
                n.to_string(),
                f(gpu_g),
                f(cpu_run.gflops()),
                f(mkl_reference_gflops(n)),
            ]);
            n += step;
        }
    }
    t.note(
        "As in the paper, the GPU kernels do not pivot (benchmarked on diagonally \
         dominant systems) while the MKL reference pivots.",
    );
    t.render()
}
