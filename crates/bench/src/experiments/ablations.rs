//! Ablations of the design choices DESIGN.md calls out — beyond the
//! paper's figures, but each anchored to a claim the paper makes in prose.

use crate::report::{f, Table};
use crate::workloads::{f32_batch, sweep_count};
use regla_core::{Op, RunOpts, Session};
use regla_gpu_sim::{ExecMode, MathMode};
use regla_model::Approach;

fn base(approach: Approach) -> RunOpts {
    RunOpts::builder()
        .exec(ExecMode::Representative)
        .approach(approach)
        .build().unwrap()
}

/// Fast-math (22-bit SFU) vs full-precision division/sqrt. The paper:
/// "the median performance penalty for not using these hardware functions
/// is 5.6%" (per-thread) and "30%" (per-block).
pub fn ablation_fastmath(fast: bool) -> String {
    let session = Session::new();
    let full = if fast { 1120 } else { 8000 };
    let mut t = Table::new(
        "Ablation — hardware (fast) vs software (precise) division & sqrt",
        &["approach", "n", "fast GFLOPS", "precise GFLOPS", "penalty %"],
    );
    let mut penalties_pt = Vec::new();
    let mut penalties_pb = Vec::new();
    for n in [4usize, 5, 6, 7] {
        let a = f32_batch(n, n, sweep_count(n, 64_000.min(full * 8)), true, 0xF0 + n as u64);
        let mut o = base(Approach::PerThread);
        let fast_g = session.run_with(Op::Qr, &a, None, &o).unwrap().run.gflops();
        o.math = MathMode::Precise;
        let prec_g = session.run_with(Op::Qr, &a, None, &o).unwrap().run.gflops();
        let pen = 100.0 * (1.0 - prec_g / fast_g);
        penalties_pt.push(pen);
        t.row(&["per-thread".into(), n.to_string(), f(fast_g), f(prec_g), f(pen)]);
    }
    for n in [24usize, 40, 56, 72] {
        let a = f32_batch(n, n, sweep_count(n, full), true, 0xF8 + n as u64);
        let mut o = base(Approach::PerBlock);
        let fast_g = session.run_with(Op::Qr, &a, None, &o).unwrap().run.gflops();
        o.math = MathMode::Precise;
        let prec_g = session.run_with(Op::Qr, &a, None, &o).unwrap().run.gflops();
        let pen = 100.0 * (1.0 - prec_g / fast_g);
        penalties_pb.push(pen);
        t.row(&["per-block".into(), n.to_string(), f(fast_g), f(prec_g), f(pen)]);
    }
    let med = |mut v: Vec<f64>| -> f64 {
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    t.note(format!(
        "Median penalties: per-thread {}% (paper: 5.6%), per-block {}% (paper: 30%). \
         Per-thread stays bandwidth-bound so the SFU barely matters; the per-block \
         kernels pay the software sequences on every column's critical path.",
        f(med(penalties_pt)),
        f(med(penalties_pb))
    ));
    t.render()
}

/// Serial vs tree reductions in the per-block QR (Section V-D: "we choose
/// to do serial reductions instead of parallel").
pub fn ablation_reduction(fast: bool) -> String {
    let session = Session::new();
    let full = if fast { 1120 } else { 8000 };
    let mut t = Table::new(
        "Ablation — serial vs tree reductions in per-block QR (GFLOPS)",
        &["n", "serial (paper's choice)", "tree", "serial advantage %"],
    );
    for n in [16usize, 32, 48, 64, 96, 128] {
        let a = f32_batch(n, n, sweep_count(n, full), true, 0xE0 + n as u64);
        let serial = session.run_with(Op::Qr, &a, None, &base(Approach::PerBlock)).unwrap().run.gflops();
        let mut o = base(Approach::PerBlock);
        o.tree_reduction = true;
        let tree = session.run_with(Op::Qr, &a, None, &o).unwrap().run.gflops();
        t.row(&[
            n.to_string(),
            f(serial),
            f(tree),
            f(100.0 * (serial / tree - 1.0)),
        ]);
    }
    t.note(
        "A tree reduction saves dependent shared loads but pays log2(sqrt(p)) extra \
         barriers per column; at these reduction widths (8-16 partials) the barriers \
         cost more than they save — the quantitative basis for the paper's choice.",
    );
    t.render()
}

/// 64 vs 256 threads per block across sizes (the occupancy trade behind
/// Figure 9's drop at n = 80).
pub fn ablation_threads(fast: bool) -> String {
    let session = Session::new();
    let full = if fast { 1120 } else { 8000 };
    let mut t = Table::new(
        "Ablation — threads per block for per-block QR (GFLOPS)",
        &["n", "64 threads", "256 threads", "default rule picks"],
    );
    for n in [32usize, 48, 64, 72, 80, 96, 112] {
        let count = sweep_count(n, full);
        let a = f32_batch(n, n, count, true, 0xD0 + n as u64);
        let g = |threads: usize| {
            let mut o = base(Approach::PerBlock);
            o.force_threads = Some(threads);
            session.run_with(Op::Qr, &a, None, &o).unwrap().run.gflops()
        };
        let g64 = g(64);
        let g256 = g(256);
        let default = regla_model::block_plan(n, n, 0, 1).threads;
        t.row(&[
            n.to_string(),
            f(g64),
            f(g256),
            format!("{default}"),
        ]);
    }
    t.note(
        "64 threads keep 8 blocks per SM resident (better latency hiding, more \
         problems in flight) but only 64 registers x 64 threads of tile space; 256 \
         threads quadruple the tile at 2-3 blocks per SM. The crossover drives the \
         paper's switch at n = 80 — visible here as the point where the 256-thread \
         column overtakes the spilling 64-thread one.",
    );
    t.render()
}

/// Batch-size saturation at the paper's flagship size: how many problems
/// are needed to saturate the chip (the premise of batching).
pub fn ablation_batch(fast: bool) -> String {
    let session = Session::new();
    let mut t = Table::new(
        "Ablation — throughput vs batch size (56x56 per-block QR)",
        &["problems", "waves", "GFLOPS", "% of saturated"],
    );
    let counts: &[usize] = if fast {
        &[1, 14, 112, 448, 2016]
    } else {
        &[1, 14, 56, 112, 224, 448, 1120, 2016, 8064]
    };
    let sat = {
        let a = f32_batch(56, 56, 8064, true, 0xB5);
        session.run_with(Op::Qr, &a, None, &base(Approach::PerBlock)).unwrap().run.gflops()
    };
    for &c in counts {
        let a = f32_batch(56, 56, c, true, 0xB6);
        let run = session.run_with(Op::Qr, &a, None, &base(Approach::PerBlock)).unwrap().run;
        let waves = run.stats.launches[0].waves;
        let g = run.gflops();
        t.row(&[
            c.to_string(),
            waves.to_string(),
            f(g),
            f(100.0 * g / sat),
        ]);
    }
    t.note(
        "One problem uses one block of one SM (~1/112 of the chip); throughput \
         saturates once the batch fills a wave (112 problems) and stays flat — the \
         paper's case for batching thousands of small problems.",
    );
    t.render()
}

/// Hoisted vs Listing-7-literal LU trailing update, against the paper's
/// measured Table V cycles.
pub fn ablation_lu_style(fast: bool) -> String {
    let session = Session::new();
    let count = if fast { 1120 } else { 8000 };
    let a = f32_batch(56, 56, count, true, 0xB7);
    let mut t = Table::new(
        "Ablation — LU trailing-update style, 56x56 (per-block compute cycles)",
        &["variant", "compute cycles", "GFLOPS", "paper measured"],
    );
    let run_style = |listing7: bool| {
        let mut o = base(Approach::PerBlock);
        o.lu_listing7 = listing7;
        let run = session.run_with(Op::Lu, &a, None, &o).unwrap().run;
        let s = &run.stats.launches[0];
        let compute = s.wave_cycles() - s.cycles_for("load") - s.cycles_for("store");
        (compute, run.gflops())
    };
    let (c_h, g_h) = run_style(false);
    let (c_7, g_7) = run_style(true);
    t.row(&["hoisted (this library)".into(), f(c_h), f(g_h), "—".into()]);
    t.row(&["Listing 7 literal".into(), f(c_7), f(g_7), "68250".into()]);
    t.note(
        "The paper's published LU kernel indexes shared memory inside the rank-1 \
         update loop; re-reading u per FMA puts its cycle count near the paper's \
         measured 68k, while hoisting both vectors into registers (what this \
         library ships) cuts the trailing update cost substantially.",
    );
    t.render()
}

/// Sequential tiled QR vs TSQR on the tall radar shapes: the
/// communication-avoiding tree (the paper's reference [6]) fills the chip
/// even when the batch alone cannot.
pub fn ablation_tsqr(fast: bool) -> String {
    use crate::workloads::c32_batch;
    let session = Session::new();
    let mut t = Table::new(
        "Ablation — sequential tiled QR vs TSQR (complex least squares, GFLOPS)",
        &["shape", "batch", "tiled (paper's path)", "TSQR (ref [6])", "TSQR speedup"],
    );
    let shapes: &[(usize, usize)] = &[(240, 66), (192, 96)];
    let batches: &[usize] = if fast { &[4, 28] } else { &[4, 28, 128] };
    for &(m, n) in shapes {
        for &count in batches {
            let a = c32_batch(m, n, count, false, 0x500 + m as u64);
            let b = c32_batch(m, 1, count, false, 0x501 + m as u64);
            let flops = regla_model::Algorithm::Qr.flops_complex(m, n) * count as f64;
            let o = RunOpts::builder()
                .exec(ExecMode::Representative)
                .approach(Approach::Tiled)
                .build().unwrap();
            let tiled_run = session.run_with(Op::LeastSquares, &a, Some(&b), &o).unwrap().run;
            let tiled_g = flops / tiled_run.time_s() / 1e9;
            let ot = RunOpts::builder().exec(ExecMode::Representative).build().unwrap();
            let (_, tsqr_stats) = session.tsqr_least_squares_with(&a, &b, &ot).unwrap();
            let tsqr_g = flops / tsqr_stats.time_s / 1e9;
            t.row(&[
                format!("{m}x{n}"),
                count.to_string(),
                f(tiled_g),
                f(tsqr_g),
                format!("{}x", f(tsqr_g / tiled_g)),
            ]);
        }
    }
    t.note(
        "The sequential tiled path keeps one block per problem, so small batches \
         leave most SMs idle; TSQR factors the row blocks of every problem \
         independently (count x blocks grid) and pays only a log-depth combine \
         tree. As the batch itself fills the chip the advantage shrinks.",
    );
    t.render()
}

/// Section VI-C: the global-level "CUBLAS + streams" approach against the
/// per-block kernels and the sequential CPU.
pub fn ablation_streams(fast: bool) -> String {
    use regla_core::global_level::{global_level_qr, GlobalLevelOpts};
    use regla_core::per_block::SubMat;
    use regla_gpu_sim::{GlobalMemory, Gpu};
    let session = Session::new();
    let gpu = Gpu::quadro_6000();
    let mut t = Table::new(
        "Section VI-C — QR via global-level CUBLAS-style calls (GFLOPS)",
        &[
            "n", "batch", "per-block", "CUBLAS 1 stream", "CUBLAS 4 streams", "CPU sequential",
        ],
    );
    let sizes: &[usize] = if fast { &[16, 32] } else { &[16, 32, 56] };
    for &n in sizes {
        let count = if fast { 112 } else { 448 };
        let a = f32_batch(n, n, count, true, 0x600 + n as u64);
        let flops = regla_model::Algorithm::Qr.flops(n, n) * count as f64;
        let pb = session.run_with(Op::Qr, &a, None, &base(Approach::PerBlock)).unwrap().run.gflops();
        let cublas = |streams: usize| {
            let mut gmem = GlobalMemory::new(a.words_per_mat() * count + count * (n + 8) + 4096);
            let ptr = a.to_device(&mut gmem);
            let opts = GlobalLevelOpts {
                streams,
                ..Default::default()
            };
            let stats = global_level_qr::<regla_gpu_sim::Rv>(
                &gpu,
                &mut gmem,
                SubMat::whole(ptr, n, n),
                n,
                n,
                count,
                opts,
            )
            .unwrap();
            flops / stats.time_s / 1e9
        };
        let c1 = cublas(1);
        let c4 = cublas(4);
        let cpu = regla_cpu::timed_batch(regla_cpu::CpuAlg::Qr, &a, n, 1);
        t.row(&[
            n.to_string(),
            count.to_string(),
            f(pb),
            f(c1),
            f(c4),
            f(cpu.gflops()),
        ]);
    }
    t.note(
        "The paper: the global-level approach \"does not take advantage of the \
         memory hierarchy\", fine-grained CUBLAS calls cannot be overlapped with \
         streams on this hardware, and \"we could achieve better performance \
         solving the problems sequentially on the CPU\" — all three visible here: \
         launch overhead + full DRAM re-streaming per call crush the CUBLAS rows, \
         streams change nothing, and even the plain CPU baseline beats them.",
    );
    t.render()
}
