//! # regla-bench — harnesses that regenerate every table and figure
//!
//! One binary per experiment (`cargo run -p regla-bench --release --bin
//! fig9_per_block`), each printing the paper's rows/series next to our
//! measured (simulator) and predicted (analytic model) values. `run_all`
//! regenerates everything into `results/`.

pub mod bench_telemetry;
pub mod experiments;
pub mod report;
pub mod workloads;

pub use report::Table;

/// Scale factor for quick runs: set `REGLA_FAST=1` to shrink batches and
/// sweeps (used by smoke runs; the full harness uses the paper's sizes).
/// Unrecognized spellings warn once and fall back to the full-size run.
pub fn fast_mode() -> bool {
    regla_gpu_sim::env_flag("REGLA_FAST", false)
}
