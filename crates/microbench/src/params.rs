//! Assemble the microbenchmark measurements into the model parameters of
//! Table IV.

use crate::{
    global_bw::measure_global_bandwidth, global_latency::measure_latency_at_stride,
    shared_bw::measure_shared_bandwidth, shared_latency::measure_shared_latency,
    sync_latency::measure_sync_latency,
};
use regla_gpu_sim::Gpu;
use regla_model::ModelParams;

/// Run the full microbenchmark suite and derive a [`ModelParams`]
/// (the measurement-driven counterpart of `ModelParams::table_iv`).
pub fn derive_params(gpu: &Gpu) -> ModelParams {
    let gbw = measure_global_bandwidth(gpu);
    let sbw = measure_shared_bandwidth(gpu);
    let slat = measure_shared_latency(gpu);
    // α_glb from the fully-strided (row-miss) pointer chase, with the
    // chase's address arithmetic backed out like the shared variant.
    let glat = measure_latency_at_stride(gpu, 64 << 20, 1 << 20) - slat.shift_cycles;
    // Fit α_sync(T) = base + slope * warps from two operating points.
    let s2 = measure_sync_latency(gpu, 64);
    let s32 = measure_sync_latency(gpu, 1024);
    let slope = (s32 - s2) / 30.0;
    let base = s2 - 2.0 * slope;

    let mut p = ModelParams::table_iv();
    p.alpha_glb = glat.round();
    p.beta_glb_gbs = gbw.kernel_gbs;
    p.alpha_sh = slat.byte_chain_cycles.round();
    p.beta_sh_gbs = sbw.all_sms_gbs;
    p.gamma = slat.shift_cycles.round();
    p.gamma_addr = slat.shift_cycles.round();
    p.sync_base = base;
    p.sync_per_warp = slope;
    p.clock_ghz = gpu.cfg.core_clock_ghz;
    p.num_sms = gpu.cfg.num_sms;
    p.warp_size = gpu.cfg.warp_size;
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_params_match_table_iv() {
        let gpu = Gpu::quadro_6000();
        let p = derive_params(&gpu);
        let t = ModelParams::table_iv();
        assert!(
            (p.alpha_glb - t.alpha_glb).abs() < 90.0,
            "alpha_glb {} vs {}",
            p.alpha_glb,
            t.alpha_glb
        );
        assert!((p.beta_glb_gbs - t.beta_glb_gbs).abs() < 6.0);
        assert!((p.alpha_sh - t.alpha_sh).abs() < 3.0);
        assert!((p.beta_sh_gbs - t.beta_sh_gbs).abs() < 60.0);
        assert!((p.gamma - t.gamma).abs() < 1.0);
        assert!((p.alpha_sync(64) - 46.0).abs() < 3.0);
    }
}
