//! Synchronization latency against block size (Figure 2, Section II-D).

use regla_gpu_sim::{BlockCtx, GlobalMemory, Gpu, LaunchConfig};

/// One point of the Figure 2 curve.
#[derive(Clone, Copy, Debug)]
pub struct SyncPoint {
    pub threads: usize,
    pub cycles: f64,
}

/// Measure the cost of `__syncthreads()` in a block of `threads`.
pub fn measure_sync_latency(gpu: &Gpu, threads: usize) -> f64 {
    let nsyncs = 4096usize;
    let mut mem = GlobalMemory::with_bytes(4096);
    let kernel = move |blk: &mut BlockCtx| {
        for _ in 0..nsyncs {
            blk.sync();
        }
    };
    let lc = LaunchConfig::new(1, threads).regs(8).shared_words(16);
    let stats = gpu.launch(&kernel, &lc, &mut mem).expect("microbench launch");
    stats.cycles / nsyncs as f64
}

/// Sweep thread counts 32..=1024 (Figure 2's x-axis).
pub fn measure_sync_latency_curve(gpu: &Gpu) -> Vec<SyncPoint> {
    (1..=16)
        .map(|w| {
            let threads = w * 64;
            SyncPoint {
                threads,
                cycles: measure_sync_latency(gpu, threads),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixty_four_threads_cost_46_cycles() {
        let gpu = Gpu::quadro_6000();
        let c = measure_sync_latency(&gpu, 64);
        assert!((c - 46.0).abs() < 1.5, "sync(64) = {c}, Table IV: 46");
    }

    #[test]
    fn curve_is_monotone_and_tops_near_190() {
        let gpu = Gpu::quadro_6000();
        let curve = measure_sync_latency_curve(&gpu);
        for w in curve.windows(2) {
            assert!(w[1].cycles >= w[0].cycles);
        }
        let top = curve.last().unwrap();
        assert_eq!(top.threads, 1024);
        assert!(
            (top.cycles - 190.0).abs() < 25.0,
            "sync(1024) = {}, Figure 2 tops near 190",
            top.cycles
        );
    }
}
