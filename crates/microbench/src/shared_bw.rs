//! Shared-memory bandwidth (Listing 1, Table II).
//!
//! Each thread repeatedly loads NCOPIES shared words and accumulates them
//! into registers; the add is hidden by dual issue, so the LD/ST pipeline
//! is the bottleneck and the achieved rate measures shared bandwidth.

use regla_gpu_sim::{BlockCtx, ExecMode, GlobalMemory, Gpu, LaunchConfig, Rv};

const NCOPIES: usize = 8;
const NITRS: usize = 1024;

/// Result of the shared-bandwidth benchmark.
#[derive(Clone, Copy, Debug)]
pub struct SharedBw {
    /// Achieved bandwidth of one SM in GB/s (Table II row 1: 62.8).
    pub per_sm_gbs: f64,
    /// Achieved bandwidth of the whole chip (Table II row 2: 880).
    pub all_sms_gbs: f64,
    /// Theoretical peak for the chip (Section II-B1: 1030).
    pub theoretical_gbs: f64,
    /// Fraction of theoretical achieved (paper: 85.4%).
    pub fraction_of_peak: f64,
}

fn bw_kernel(blk: &mut BlockCtx) {
    let nt = blk.num_threads();
    blk.phase_label("shared copy");
    blk.for_each(|t| {
        let mut acc = [Rv::imm(0.0); NCOPIES];
        for _ in 0..NITRS {
            // Loop control of the outer NITRS loop (counter + branch).
            t.int_op();
            t.int_op();
            // Issue all the loads before the adds, as nvcc schedules the
            // unrolled body — the adds then overlap the load latency.
            let mut v = [Rv::imm(0.0); NCOPIES];
            for (j, vj) in v.iter_mut().enumerate() {
                *vj = t.shared_load((t.tid + j * nt) % (nt * NCOPIES));
            }
            for (a, vj) in acc.iter_mut().zip(v) {
                *a = t.add(*a, vj);
            }
        }
        // Keep the accumulators live.
        let mut s = acc[0];
        for a in &acc[1..] {
            s = t.add(s, *a);
        }
        t.gstore(regla_gpu_sim::DPtr::new(t.tid), 0, s);
    });
}

/// Run Listing 1 on the device and report Table II's shared rows.
pub fn measure_shared_bandwidth(gpu: &Gpu) -> SharedBw {
    let mut mem = GlobalMemory::with_bytes(1 << 16);
    // One 256-thread block per SM; shared accesses dominate.
    let lc = LaunchConfig::new(gpu.cfg.num_sms, 256)
        .regs(24)
        .shared_words(256 * NCOPIES)
        .exec(ExecMode::Representative);
    let stats = gpu.launch(&bw_kernel, &lc, &mut mem).expect("microbench launch");
    let all = stats.shared_gbs();
    let theoretical = gpu.cfg.peak_shared_gbs();
    SharedBw {
        per_sm_gbs: all / gpu.cfg.num_sms as f64,
        all_sms_gbs: all,
        theoretical_gbs: theoretical,
        fraction_of_peak: all / theoretical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chip_bandwidth_matches_table_ii() {
        let gpu = Gpu::quadro_6000();
        let bw = measure_shared_bandwidth(&gpu);
        assert!(
            (bw.all_sms_gbs - 880.0).abs() < 60.0,
            "chip shared bandwidth {} GB/s, paper: 880",
            bw.all_sms_gbs
        );
        assert!(
            (bw.per_sm_gbs - 62.8).abs() < 5.0,
            "per-SM {} GB/s, paper: 62.8",
            bw.per_sm_gbs
        );
    }

    #[test]
    fn achieves_most_but_not_all_of_peak() {
        let gpu = Gpu::quadro_6000();
        let bw = measure_shared_bandwidth(&gpu);
        assert!(bw.fraction_of_peak > 0.7 && bw.fraction_of_peak < 1.0);
    }
}
