//! Global-memory bandwidth (Listing 2, Table II / Section II-B2).
//!
//! A simple unrolled copy of a 16 MB array, compared against the vendor
//! `cudaMemcpy` path. The paper measures 108 GB/s (75% of the 144 GB/s
//! pin rate) for the kernel and 84 GB/s (58.3%) for `cudaMemcpy`.

use regla_gpu_sim::{cuda_memcpy_gbs, BlockCtx, ExecMode, GlobalMemory, Gpu, LaunchConfig};

/// Result of the global-bandwidth benchmark.
#[derive(Clone, Copy, Debug)]
pub struct GlobalBw {
    /// Copy-kernel achieved bandwidth in GB/s (read+write counted).
    pub kernel_gbs: f64,
    /// Driver `cudaMemcpy` bandwidth in GB/s.
    pub memcpy_gbs: f64,
    /// Pin-rate peak (Table I: 144).
    pub peak_gbs: f64,
    pub kernel_fraction: f64,
}

/// Run Listing 2: copy `words` (default 4M = 16 MB) through a grid that
/// covers the chip.
pub fn measure_global_bandwidth(gpu: &Gpu) -> GlobalBw {
    let words: usize = 4 << 20; // 16 MB, as in the paper
    let mut mem = GlobalMemory::with_bytes(40 << 20);
    let src = mem.alloc(words);
    let dst = mem.alloc(words);
    let grid = gpu.cfg.num_sms * 8;
    let per_block = words / grid;
    let tpb = 256;
    let per_thread = per_block / tpb; // NUNROLL
    let kernel = move |blk: &mut BlockCtx| {
        let base = blk.block_id * per_block;
        blk.phase_label("global copy");
        blk.for_each(|t| {
            for i in 0..per_thread {
                let idx = base + i * tpb + t.tid;
                let v = t.gload(src, idx);
                t.gstore(dst, idx, v);
            }
        });
    };
    let lc = LaunchConfig::new(grid, tpb)
        .regs(20)
        .shared_words(0)
        .exec(ExecMode::Representative);
    let stats = gpu.launch(&kernel, &lc, &mut mem).expect("microbench launch");
    let kernel_gbs = stats.dram_gbs();
    GlobalBw {
        kernel_gbs,
        memcpy_gbs: cuda_memcpy_gbs(&gpu.cfg, words * 4),
        peak_gbs: gpu.cfg.dram_peak_gbs,
        kernel_fraction: kernel_gbs / gpu.cfg.dram_peak_gbs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_kernel_hits_108_gbs() {
        let gpu = Gpu::quadro_6000();
        let bw = measure_global_bandwidth(&gpu);
        assert!(
            (bw.kernel_gbs - 108.0).abs() < 5.0,
            "kernel {} GB/s, paper: 108",
            bw.kernel_gbs
        );
    }

    #[test]
    fn memcpy_is_slower_than_the_kernel() {
        let gpu = Gpu::quadro_6000();
        let bw = measure_global_bandwidth(&gpu);
        assert!((bw.memcpy_gbs - 84.0).abs() < 2.0);
        assert!(bw.memcpy_gbs < bw.kernel_gbs);
    }

    #[test]
    fn fractions_match_paper_percentages() {
        let gpu = Gpu::quadro_6000();
        let bw = measure_global_bandwidth(&gpu);
        assert!((bw.kernel_fraction - 0.75).abs() < 0.04);
    }
}
