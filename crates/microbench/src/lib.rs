//! # regla-microbench — the paper's Section II microbenchmarks
//!
//! Bandwidth and latency characterisation of the (simulated) GF100 memory
//! hierarchy, reproducing Listings 1-3, Figures 1-2 and Tables II-IV:
//!
//! * [`shared_bw`] — repeated shared-memory loads accumulated into the
//!   register file (Listing 1); per-SM and whole-chip GB/s.
//! * [`global_bw`] — a 16 MB device-to-device copy kernel (Listing 2)
//!   against the driver `cudaMemcpy` path.
//! * [`shared_latency`] — pointer chasing in shared memory, in both the
//!   int (with its SHL address computation) and byte variants, plus the
//!   G80 cross-check against Volkov's 36 cycles.
//! * [`global_latency`] — dependent loads walking a large array at
//!   strides from 1 word to 64M words (Figure 1).
//! * [`sync_latency`] — `__syncthreads()` cost against block size
//!   (Figure 2).
//! * [`params`] — assembles the measurements into the model's Table IV.

pub mod global_bw;
pub mod global_latency;
pub mod params;
pub mod shared_bw;
pub mod shared_latency;
pub mod sync_latency;

pub use global_bw::{measure_global_bandwidth, GlobalBw};
pub use global_latency::{measure_global_latency_curve, StridePoint};
pub use params::derive_params;
pub use shared_bw::{measure_shared_bandwidth, SharedBw};
pub use shared_latency::{measure_shared_latency, SharedLatency};
pub use sync_latency::{measure_sync_latency_curve, SyncPoint};
