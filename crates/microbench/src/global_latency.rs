//! Global-memory latency as a function of stride (Figure 1, Table III).
//!
//! A single thread walks a large array with dependent loads at strides
//! from 1 word to 64M words. Small strides reuse L2 lines, mid strides hit
//! open DRAM rows, and large strides pay the full row-miss (and beyond TLB
//! reach, page-walk) latency — the 570-cycle α_glb of Table III.

use regla_gpu_sim::{BlockCtx, GlobalMemory, Gpu, LaunchConfig};

/// One point of the Figure 1 curve.
#[derive(Clone, Copy, Debug)]
pub struct StridePoint {
    pub log2_stride: u32,
    pub stride_words: usize,
    pub cycles: f64,
}

/// Average dependent-load latency when walking `array_words` at `stride`.
pub fn measure_latency_at_stride(gpu: &Gpu, array_words: usize, stride: usize) -> f64 {
    let nchase = 512usize.min(array_words);
    let mut mem = GlobalMemory::new(array_words.max(nchase) + 64);
    let buf = mem.alloc(array_words.max(nchase));
    // Build the pointer chain on the host: chain[i] at (i*stride) % N.
    for i in 0..nchase {
        let at = (i * stride) % array_words;
        let next = (((i + 1) % nchase) * stride) % array_words;
        mem.write(buf, at, next as f32);
    }
    let kernel = move |blk: &mut BlockCtx| {
        blk.phase_label("chase");
        blk.for_each(|t| {
            if t.tid != 0 {
                return;
            }
            let mut acc = t.gload_dep(buf, 0, 0);
            for _ in 1..nchase {
                let addr = acc.val() as usize;
                let dep = t.int_dep_of(acc);
                acc = t.gload_dep(buf, addr, dep);
            }
            t.gstore(buf, 0, acc);
        });
    };
    let lc = LaunchConfig::new(1, 32).regs(8).shared_words(0);
    let stats = gpu.launch(&kernel, &lc, &mut mem).expect("microbench launch");
    // Subtract the address arithmetic, as the paper does implicitly (the
    // global latency dwarfs it; we keep it for fidelity).
    stats.cycles_for("chase") / nchase as f64
}

/// Sweep log2(stride) = 0..=max_log2 over a 256 MB array (Figure 1).
pub fn measure_global_latency_curve(gpu: &Gpu, max_log2: u32) -> Vec<StridePoint> {
    let array_words = 64 << 20; // 256 MB
    (0..=max_log2)
        .map(|l| {
            let stride = (1usize << l).min(array_words);
            StridePoint {
                log2_stride: l,
                stride_words: stride,
                cycles: measure_latency_at_stride(gpu, array_words, stride),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_grows_with_stride() {
        let gpu = Gpu::quadro_6000();
        let small = measure_latency_at_stride(&gpu, 1 << 20, 1);
        let mid = measure_latency_at_stride(&gpu, 1 << 20, 64);
        let large = measure_latency_at_stride(&gpu, 64 << 20, 1 << 16);
        assert!(small < mid, "{small} !< {mid}");
        assert!(mid < large, "{mid} !< {large}");
    }

    #[test]
    fn large_stride_exposes_alpha_glb() {
        let gpu = Gpu::quadro_6000();
        let l = measure_latency_at_stride(&gpu, 64 << 20, 1 << 20);
        // Table III: 570 cycles (plus the chase's address arithmetic and
        // TLB misses at this extreme stride).
        assert!(
            (l - 570.0).abs() < 120.0,
            "large-stride latency {l}, expected near 570"
        );
        assert!(l > 560.0);
    }

    #[test]
    fn unit_stride_benefits_from_l2_lines() {
        let gpu = Gpu::quadro_6000();
        let l = measure_latency_at_stride(&gpu, 1 << 20, 1);
        // 31 of 32 consecutive word accesses hit the freshly filled line.
        assert!(l < 400.0, "unit-stride latency {l} should be L2-dominated");
    }
}
