//! Shared-memory latency by pointer chasing (Listing 3, Section II-C1).
//!
//! GF100 dropped the G80 ability to fuse an arithmetic operation into a
//! shared-memory operand, so the integer variant of the chase pays an
//! extra SHL.W address computation (measured at 18 cycles; combined
//! load+shift chain 45 cycles => 27 cycles of pure shared latency). The
//! byte variant avoids the shift and measures 27 cycles directly.

use regla_gpu_sim::{BlockCtx, GlobalMemory, Gpu, LaunchConfig};

const NCHASE: usize = 256;

/// Result of the shared-latency benchmark.
#[derive(Clone, Copy, Debug)]
pub struct SharedLatency {
    /// Cycles per link of the int-typed chase (load + shift): ~45.
    pub int_chain_cycles: f64,
    /// The shift (SHL.W) latency measured separately: ~18.
    pub shift_cycles: f64,
    /// Int chase minus address arithmetic: the paper's method one.
    pub int_derived_cycles: f64,
    /// Cycles per link of the byte-typed chase: the paper's method two.
    pub byte_chain_cycles: f64,
}

fn chase(gpu: &Gpu, with_shift: bool) -> f64 {
    let mut mem = GlobalMemory::with_bytes(1 << 16);
    let kernel = move |blk: &mut BlockCtx| {
        // Build the chain: sMem[i] = (i + 1) % NCHASE.
        blk.phase_label("init");
        blk.for_each(|t| {
            if t.tid == 0 {
                for i in 0..NCHASE {
                    let v = t.lit(((i + 1) % NCHASE) as f32);
                    t.shared_store(i, v);
                }
            }
        });
        blk.sync();
        blk.phase_label("chase");
        blk.for_each(|t| {
            if t.tid != 0 {
                return;
            }
            let mut acc = t.shared_load(0);
            for _ in 1..NCHASE {
                let addr = acc.val() as usize;
                let dep = if with_shift {
                    // The SHL.W that scales the index to a byte address.
                    t.int_dep_of(acc)
                } else {
                    t.ready_of(acc)
                };
                acc = t.shared_load_dep(addr, dep);
            }
            t.gstore(regla_gpu_sim::DPtr::new(0), 0, acc);
        });
        blk.sync();
    };
    let lc = LaunchConfig::new(1, 32).regs(8).shared_words(NCHASE);
    let stats = gpu.launch(&kernel, &lc, &mut mem).expect("microbench launch");
    stats.cycles_for("chase") / (NCHASE as f64)
}

/// Measure the arithmetic-pipeline (shift) latency with a dependent chain.
fn shift_latency(gpu: &Gpu) -> f64 {
    let mut mem = GlobalMemory::with_bytes(4096);
    let n = 256usize;
    let kernel = move |blk: &mut BlockCtx| {
        blk.phase_label("shift");
        blk.for_each(|t| {
            if t.tid != 0 {
                return;
            }
            let mut acc = t.lit(1.0);
            for _ in 0..n {
                // A dependent integer op chain (SHL feeding SHL).
                acc = t.int_chain(acc);
            }
            t.gstore(regla_gpu_sim::DPtr::new(0), 0, acc);
        });
    };
    let lc = LaunchConfig::new(1, 32).regs(8).shared_words(0);
    let stats = gpu.launch(&kernel, &lc, &mut mem).expect("microbench launch");
    stats.cycles / n as f64
}

/// Run both variants of Listing 3 plus the shift calibration.
pub fn measure_shared_latency(gpu: &Gpu) -> SharedLatency {
    let int_chain = chase(gpu, true);
    let byte_chain = chase(gpu, false);
    let shift = shift_latency(gpu);
    SharedLatency {
        int_chain_cycles: int_chain,
        shift_cycles: shift,
        int_derived_cycles: int_chain - shift,
        byte_chain_cycles: byte_chain,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_chain_is_45_cycles() {
        let gpu = Gpu::quadro_6000();
        let l = measure_shared_latency(&gpu);
        assert!(
            (l.int_chain_cycles - 45.0).abs() < 3.0,
            "int chain {} cycles, paper: 45",
            l.int_chain_cycles
        );
    }

    #[test]
    fn both_methods_agree_on_27_cycles() {
        let gpu = Gpu::quadro_6000();
        let l = measure_shared_latency(&gpu);
        assert!(
            (l.int_derived_cycles - 27.0).abs() < 3.0,
            "derived {} cycles, paper: 27",
            l.int_derived_cycles
        );
        assert!(
            (l.byte_chain_cycles - 27.0).abs() < 3.0,
            "byte chase {} cycles, paper: 27",
            l.byte_chain_cycles
        );
        assert!((l.int_derived_cycles - l.byte_chain_cycles).abs() < 2.0);
    }

    #[test]
    fn g80_cross_check_matches_volkov() {
        // "our latency benchmark gives identical results to Volkov's
        // published numbers when we run our benchmark on G80 (36 cycles)."
        let gpu = Gpu::new(regla_gpu_sim::GpuConfig::g80());
        let l = measure_shared_latency(&gpu);
        assert!(
            (l.byte_chain_cycles - 36.0).abs() < 6.0,
            "G80 chase {} cycles, Volkov: 36",
            l.byte_chain_cycles
        );
    }
}
