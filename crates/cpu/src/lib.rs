//! # regla-cpu — the multicore CPU baseline ("MKL on a Core i7-2600")
//!
//! The paper compares its GPU kernels against Intel MKL with the problems
//! "distributed evenly across all four cores using pthreads" (§VI-B).
//! This crate is the equivalent baseline for the reproduction: native Rust
//! LAPACK-style factorizations (from `regla-core::host`) with a batched
//! driver that splits the problems across OS threads, plus wall-clock
//! measurement helpers that report GFLOP/s the same way the paper does.
//!
//! Differences from MKL are documented in DESIGN.md: these are
//! straightforward scalar implementations, so absolute CPU GFLOP/s are
//! lower than MKL's hand-tuned SSE/AVX kernels; the figure harnesses print
//! the paper's published MKL numbers alongside for the shape comparison.

use regla_core::host;
use regla_core::{Mat, MatBatch, ProblemStatus, Scalar};
use std::time::Instant;

pub mod baseline;

pub use baseline::{mkl_reference_gflops, MklReference};

/// Which CPU solver to run over a batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CpuAlg {
    /// Partial-pivot LU (what MKL `sgetrf` does).
    LuPivot,
    /// LU without pivoting (matching the GPU kernel semantics).
    LuNoPivot,
    /// Householder QR.
    Qr,
    /// Gauss-Jordan solve of `[A|b]` (b = last column of the batch).
    GjSolve,
    /// Linear solve via QR (factor + back substitution).
    QrSolve,
    /// Cholesky factorization (SPD matrices; extension).
    Cholesky,
}

/// Result of a timed batched CPU run.
#[derive(Clone, Debug)]
pub struct CpuRun<T> {
    pub out: MatBatch<T>,
    pub seconds: f64,
    pub flops: f64,
}

impl<T> CpuRun<T> {
    pub fn gflops(&self) -> f64 {
        if self.seconds == 0.0 {
            0.0
        } else {
            self.flops / self.seconds / 1e9
        }
    }
}

/// FLOP count attributed to one problem (the paper's conventions; complex
/// counted at 4x real).
pub fn flops_for<T: Scalar>(alg: CpuAlg, m: usize, n: usize) -> f64 {
    use regla_model::Algorithm;
    let base = match alg {
        CpuAlg::LuPivot | CpuAlg::LuNoPivot => Algorithm::Lu.flops(m, n),
        CpuAlg::Qr => Algorithm::Qr.flops(m, n),
        CpuAlg::GjSolve => Algorithm::GaussJordan.flops(m, n),
        CpuAlg::QrSolve => Algorithm::QrSolve.flops(m, n),
        CpuAlg::Cholesky => Algorithm::Cholesky.flops(m, n),
    };
    if T::IS_COMPLEX {
        4.0 * base
    } else {
        base
    }
}

/// Solve one problem in place and report the same [`ProblemStatus`]
/// verdict the GPU paths produce, so verdicts are comparable backend to
/// backend. The CPU never sees hardware faults, so `FaultDetected` cannot
/// occur here.
fn solve_one<T: Scalar>(alg: CpuAlg, a: &mut Mat<T>) -> ProblemStatus {
    let status = match alg {
        CpuAlg::LuPivot => match host::lu_partial_pivot_in_place(a) {
            Ok(_) => ProblemStatus::Ok,
            Err(z) => ProblemStatus::ZeroPivot { col: z.column },
        },
        CpuAlg::LuNoPivot => match host::lu_nopivot_in_place(a) {
            Ok(()) => ProblemStatus::Ok,
            Err(z) => ProblemStatus::ZeroPivot { col: z.column },
        },
        CpuAlg::Qr => {
            host::householder_qr_in_place(a);
            ProblemStatus::Ok
        }
        CpuAlg::GjSolve => match host::gj_reduce_in_place(a) {
            Ok(()) => ProblemStatus::Ok,
            Err(z) => ProblemStatus::ZeroPivot { col: z.column },
        },
        CpuAlg::Cholesky => match host::cholesky_in_place(a) {
            Ok(()) => ProblemStatus::Ok,
            Err(npd) => ProblemStatus::ZeroPivot { col: npd.column },
        },
        CpuAlg::QrSolve => {
            // a is [A|b]: factor A while carrying b, then back-substitute.
            let n = a.rows();
            host::householder_qr_in_place(a);
            let y: Vec<T> = (0..n).map(|i| a[(i, n)]).collect();
            let x = host::back_substitute(&a.submatrix(0, 0, n, n), &y);
            for (i, v) in x.into_iter().enumerate() {
                a[(i, n)] = v;
            }
            ProblemStatus::Ok
        }
    };
    if status.is_ok() && !mat_is_finite(a) {
        ProblemStatus::NonFinite
    } else {
        status
    }
}

/// Every word of the matrix is finite (the same screen the GPU API runs
/// after a launch).
fn mat_is_finite<T: Scalar>(a: &Mat<T>) -> bool {
    (0..a.cols()).all(|j| {
        (0..a.rows()).all(|i| {
            let w = a[(i, j)].to_words();
            w[0].is_finite() && w[1].is_finite()
        })
    })
}

/// Run `alg` over every problem of the batch, split across `threads`
/// OS threads (the paper's "each core is assigned a subset").
pub fn run_batch<T: Scalar>(alg: CpuAlg, batch: &MatBatch<T>, threads: usize) -> MatBatch<T> {
    run_batch_status(alg, batch, threads).0
}

/// Like [`run_batch`], but also reports one [`ProblemStatus`] verdict per
/// problem — the baseline the GPU paths' verdicts are compared against in
/// the resilience tests.
pub fn run_batch_status<T: Scalar>(
    alg: CpuAlg,
    batch: &MatBatch<T>,
    threads: usize,
) -> (MatBatch<T>, Vec<ProblemStatus>) {
    let count = batch.count();
    let threads = threads.clamp(1, count.max(1));
    let mut results: Vec<Option<(Mat<T>, ProblemStatus)>> = vec![None; count];
    if threads <= 1 {
        for (k, slot) in results.iter_mut().enumerate() {
            let mut m = batch.mat(k);
            let s = solve_one(alg, &mut m);
            *slot = Some((m, s));
        }
    } else {
        let chunk = count.div_ceil(threads);
        std::thread::scope(|scope| {
            for (c, slot_chunk) in results.chunks_mut(chunk).enumerate() {
                let base = c * chunk;
                scope.spawn(move || {
                    for (off, slot) in slot_chunk.iter_mut().enumerate() {
                        let mut m = batch.mat(base + off);
                        let s = solve_one(alg, &mut m);
                        *slot = Some((m, s));
                    }
                });
            }
        });
    }
    let mut out = MatBatch::zeros(batch.rows(), batch.cols(), count);
    let mut status = Vec::with_capacity(count);
    for (k, r) in results.into_iter().enumerate() {
        let (m, s) = r.expect("all problems solved");
        out.set_mat(k, &m);
        status.push(s);
    }
    (out, status)
}

/// Timed batched run with the paper's GFLOP/s accounting. `nfac` is the
/// factored width (excluding appended right-hand sides).
pub fn timed_batch<T: Scalar>(
    alg: CpuAlg,
    batch: &MatBatch<T>,
    nfac: usize,
    threads: usize,
) -> CpuRun<T> {
    let t0 = Instant::now();
    let out = run_batch(alg, batch, threads);
    let seconds = t0.elapsed().as_secs_f64();
    let flops = flops_for::<T>(alg, batch.rows(), nfac) * batch.count() as f64;
    CpuRun {
        out,
        seconds,
        flops,
    }
}

/// Number of worker threads to use by default (the host's parallelism).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use regla_core::C32;

    fn dd_batch(n: usize, count: usize) -> MatBatch<f32> {
        let mut b = MatBatch::from_fn(n, n, count, |k, i, j| {
            (((k * 31 + i * 7 + j * 3) % 17) as f32) / 17.0 - 0.3
        });
        for k in 0..count {
            let mut m = b.mat(k);
            m.make_diagonally_dominant();
            b.set_mat(k, &m);
        }
        b
    }

    #[test]
    fn batched_lu_matches_sequential() {
        let b = dd_batch(8, 10);
        let par = run_batch(CpuAlg::LuNoPivot, &b, 4);
        let seq = run_batch(CpuAlg::LuNoPivot, &b, 1);
        assert_eq!(par.max_frob_dist(&seq), 0.0);
    }

    #[test]
    fn pivoted_lu_reconstructs() {
        let b = dd_batch(6, 4);
        let out = run_batch(CpuAlg::LuPivot, &b, 2);
        for k in 0..4 {
            // Diagonally dominant => no pivoting happens => P = I.
            let (l, u) = host::split_lu(&out.mat(k));
            let d = l.matmul(&u).frob_dist(&b.mat(k));
            assert!(d < 1e-4);
        }
    }

    #[test]
    fn qr_solve_augmented_batches() {
        let a = dd_batch(7, 5);
        let rhs = MatBatch::from_fn(7, 1, 5, |k, i, _| (k + i) as f32 * 0.25 - 0.5);
        let aug = MatBatch::augment(&a, &rhs);
        let out = run_batch(CpuAlg::QrSolve, &aug, 3);
        for k in 0..5 {
            let x: Vec<f32> = (0..7).map(|i| out.get(k, i, 7)).collect();
            let bk: Vec<f32> = (0..7).map(|i| rhs.get(k, i, 0)).collect();
            assert!(host::residual_norm(&a.mat(k), &x, &bk) < 1e-3);
        }
    }

    #[test]
    fn gflops_accounting_uses_paper_conventions() {
        let r = CpuRun::<f32> {
            out: MatBatch::zeros(1, 1, 1),
            seconds: 1.0,
            flops: 2e9,
        };
        assert!((r.gflops() - 2.0).abs() < 1e-12);
        // Complex QR counted at 4x the real FLOPs (Section VII).
        let fr = flops_for::<f32>(CpuAlg::Qr, 240, 66);
        let fc = flops_for::<C32>(CpuAlg::Qr, 240, 66);
        assert_eq!(fc, 4.0 * fr);
    }

    #[test]
    fn timing_is_positive() {
        let b = dd_batch(16, 32);
        let run = timed_batch(CpuAlg::Qr, &b, 16, 2);
        assert!(run.seconds > 0.0);
        assert!(run.gflops() > 0.0);
    }
}
