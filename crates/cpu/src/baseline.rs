//! Paper-reported MKL reference numbers.
//!
//! Our Rust CPU baseline is a faithful *algorithmic* stand-in for MKL but
//! not a performance one (MKL's hand-tuned SSE kernels reach much higher
//! absolute GFLOP/s). So that the figure harnesses can show the paper's
//! actual comparison lines, this module records every MKL data point the
//! paper states explicitly and interpolates between them. Interpolated
//! values are clearly labelled in the harness output.

/// The anchors the paper reports for MKL on the Core i7-2600.
#[derive(Clone, Copy, Debug)]
pub struct MklReference {
    /// Table VII: complex QR GFLOP/s for the RT_STAP sizes.
    pub stap_80x16: f64,
    pub stap_240x66: f64,
    pub stap_192x96: f64,
    /// Section I / Abstract: our QR at 56x56 is 29x faster than MKL, with
    /// the GPU near 200 GFLOP/s (Figure 9) => MKL ≈ 6.9.
    pub qr_56: f64,
}

impl Default for MklReference {
    fn default() -> Self {
        MklReference {
            stap_80x16: 5.4,
            stap_240x66: 36.0,
            stap_192x96: 27.0,
            qr_56: 6.9,
        }
    }
}

/// Rough single-precision MKL GFLOP/s for batched small factorizations on
/// the i7-2600, interpolated from the paper's stated points: small
/// problems run at a few GFLOP/s and grow roughly linearly with n as the
/// kernels amortise (Figures 11-12 show MKL between ~1 and ~20 over
/// n = 8..144).
pub fn mkl_reference_gflops(n: usize) -> f64 {
    let n = n as f64;
    // Through (8, ~1.2) and (56, 6.9), saturating around 36 (the best
    // Table VII shows for large well-shaped problems).
    (0.25 + n * 0.119).min(36.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_match_table_vii() {
        let r = MklReference::default();
        assert_eq!(r.stap_80x16, 5.4);
        assert_eq!(r.stap_240x66, 36.0);
        assert_eq!(r.stap_192x96, 27.0);
    }

    #[test]
    fn interpolation_passes_through_qr56() {
        let g = mkl_reference_gflops(56);
        assert!((g - 6.9).abs() < 0.3, "got {g}");
    }

    #[test]
    fn interpolation_is_monotone_and_saturates() {
        let mut last = 0.0;
        for n in [8, 16, 32, 64, 128, 256, 512] {
            let g = mkl_reference_gflops(n);
            assert!(g >= last);
            last = g;
        }
        assert_eq!(mkl_reference_gflops(4096), 36.0);
    }
}
