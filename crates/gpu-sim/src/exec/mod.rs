//! Kernel launch machinery.

mod arena;
pub mod block;
pub mod occupancy;
mod schedule;
pub mod thread;

use crate::config::{GpuConfig, MathMode};
use crate::error::LaunchError;
use crate::fault::{FaultPlan, FaultRecord};
use crate::mem::global::GmemAccess;
use crate::mem::{GlobalMemory, MemHier};
use crate::sanitize::{
    ContextFindings, LaunchShadow, SanitizerMode, SanitizerReport, WatchdogTrip,
};
use crate::timing::{combine, LaunchStats, PhaseRecord};
use crate::trace::Profiler;
use arena::BufPool;
use block::{BlockCtx, SanitizeHook};
use occupancy::occupancy;
use schedule::{ScheduleCache, ScheduleKey};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;
use thread::SpillInfo;

/// How much of the grid to execute functionally.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Run every block: outputs are valid for the whole batch.
    #[default]
    Full,
    /// Run the traced block plus `k-1` further evenly-spaced blocks, so a
    /// spread of problems across the batch gets real outputs (enough for
    /// spot-checking numerics) at a fraction of `Full`'s host cost. `k`
    /// counts executed blocks including block 0 and is clamped to the grid;
    /// `Sampled(0)` is rejected at launch.
    Sampled(usize),
    /// Run only the traced block (block 0): timing is exact (all blocks
    /// execute identical code), but only problem 0's output is computed.
    /// Used by the performance harnesses to sweep large batches quickly.
    Representative,
}

/// Launch configuration: the CUDA `<<<grid, block, shared>>>` triple plus
/// the compile-time facts the simulator needs (register usage, math mode).
///
/// Construct with [`LaunchConfig::new`] and the fluent setters; the struct
/// is `#[non_exhaustive]` so new launch knobs (like the trace sink) are not
/// breaking changes for downstream crates.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct LaunchConfig {
    pub grid_blocks: usize,
    pub threads_per_block: usize,
    /// Registers per thread the kernel *wants*; beyond the architectural
    /// maximum the excess spills to local memory.
    pub regs_per_thread: usize,
    /// Shared memory per block in 32-bit words.
    pub shared_words: usize,
    pub math: MathMode,
    pub exec: ExecMode,
    /// Host worker threads for the functional replay. `None` defers to the
    /// `REGLA_SIM_THREADS` environment variable and then to
    /// `std::thread::available_parallelism()`. Replay results are
    /// bit-identical at every thread count; this only trades host
    /// wall-clock for cores.
    pub host_threads: Option<usize>,
    /// Seeded fault-injection campaign for this launch (`None` = no
    /// faults). Applied faults are reported in `LaunchStats::faults`.
    pub fault: Option<FaultPlan>,
    /// Kernel name shown in exported traces.
    pub name: String,
    /// Per-launch trace sink: when set, the launch appends a
    /// [`crate::trace::LaunchTrace`] (launch → wave → phase spans) to the
    /// profiler. Purely simulated quantities, so traces are bit-identical
    /// across `host_threads` counts.
    pub trace: Option<Profiler>,
    /// Dynamic-analysis checks (memcheck / racecheck / synccheck /
    /// initcheck) for this launch. Strictly observational: device results
    /// and timing are bit-identical with the sanitizer on or off; findings
    /// land in `LaunchStats::sanitizer`.
    pub sanitize: SanitizerMode,
    /// Per-block watchdog budget in scoreboarded ops (`None` = unlimited).
    /// A block exceeding it aborts the launch with
    /// [`LaunchError::Watchdog`] instead of hanging the host. Independent
    /// of `sanitize`.
    pub watchdog: Option<u64>,
    /// Force the fully-instrumented slow path even when no observer is
    /// attached (see [`LaunchConfig::fast_eligible`]). The environment
    /// variable `REGLA_SIM_SLOW=1` does the same process-wide.
    pub slow_path: bool,
    /// Opaque kernel identity for the cross-launch schedule cache (`None`
    /// = never cache). Launches sharing a key *and* shape promise to
    /// produce identical traced-block schedules; kernels with data-
    /// dependent control flow must fold a digest of the traced block's
    /// inputs into the key. Only consulted on the fast path; set
    /// `REGLA_SCHED_CACHE=0` to disable caching process-wide.
    pub schedule_key: Option<u64>,
    /// Simulated-cycle budget for the whole launch (`None` = unlimited).
    /// When the modeled cycle total (including any injected stall)
    /// exceeds it, the launch fails with [`LaunchError::DeadlineExceeded`]
    /// after device memory is written — mirroring a host-side timeout
    /// that fires once the launch has already run too long.
    pub deadline_cycles: Option<u64>,
    /// Extra simulated cycles added to the launch's modeled total before
    /// the deadline check — a chaos-injection knob modeling a stalled
    /// stream or a clock-throttled device. Purely a timing perturbation:
    /// functional results are unaffected and the fast path stays
    /// eligible.
    pub stall_cycles: u64,
}

impl LaunchConfig {
    pub fn new(grid_blocks: usize, threads_per_block: usize) -> Self {
        LaunchConfig {
            grid_blocks,
            threads_per_block,
            regs_per_thread: 32,
            shared_words: 1024,
            math: MathMode::Fast,
            exec: ExecMode::Full,
            host_threads: None,
            fault: None,
            name: String::from("kernel"),
            trace: None,
            sanitize: SanitizerMode::Off,
            watchdog: None,
            slow_path: false,
            schedule_key: None,
            deadline_cycles: None,
            stall_cycles: 0,
        }
    }

    pub fn regs(mut self, r: usize) -> Self {
        self.regs_per_thread = r;
        self
    }

    pub fn shared_words(mut self, w: usize) -> Self {
        self.shared_words = w;
        self
    }

    pub fn math(mut self, m: MathMode) -> Self {
        self.math = m;
        self
    }

    pub fn exec(mut self, e: ExecMode) -> Self {
        self.exec = e;
        self
    }

    pub fn host_threads(mut self, t: impl Into<Option<usize>>) -> Self {
        self.host_threads = t.into();
        self
    }

    pub fn fault(mut self, plan: impl Into<Option<FaultPlan>>) -> Self {
        self.fault = plan.into();
        self
    }

    /// Name the kernel for exported traces.
    pub fn name(mut self, n: impl Into<String>) -> Self {
        self.name = n.into();
        self
    }

    /// Attach a per-launch trace sink (cloning a [`Profiler`] shares its
    /// buffer, so one profiler can collect a whole sequence of launches).
    pub fn trace(mut self, sink: impl Into<Option<Profiler>>) -> Self {
        self.trace = sink.into();
        self
    }

    /// Enable the compute sanitizer for this launch.
    pub fn sanitizer(mut self, mode: SanitizerMode) -> Self {
        self.sanitize = mode;
        self
    }

    /// Set (or clear) the per-block watchdog op budget.
    pub fn watchdog(mut self, ops: impl Into<Option<u64>>) -> Self {
        self.watchdog = ops.into();
        self
    }

    /// Force the fully-instrumented slow path for this launch.
    pub fn slow_path(mut self, slow: bool) -> Self {
        self.slow_path = slow;
        self
    }

    /// Set the opaque kernel identity for the schedule cache.
    pub fn schedule_key(mut self, key: impl Into<Option<u64>>) -> Self {
        self.schedule_key = key.into();
        self
    }

    /// Set (or clear) the simulated-cycle deadline budget.
    pub fn deadline_cycles(mut self, budget: impl Into<Option<u64>>) -> Self {
        self.deadline_cycles = budget.into();
        self
    }

    /// Inject a stream stall of `cycles` simulated cycles.
    pub fn stall_cycles(mut self, cycles: u64) -> Self {
        self.stall_cycles = cycles;
        self
    }

    /// Whether this configuration is eligible for the fast (observer-free)
    /// execution path: no trace sink, sanitizer, fault plan, or watchdog,
    /// and `slow_path` not forced. On the fast path replay blocks elide
    /// all per-op scoreboard/shadow bookkeeping; results, statuses, and
    /// modeled cycle totals are bit-identical to the slow path.
    pub fn fast_eligible(&self) -> bool {
        !self.slow_path
            && self.trace.is_none()
            && !self.sanitize.is_on()
            && self.fault.is_none()
            && self.watchdog.is_none()
    }

    /// The blocks this configuration executes functionally, in ascending
    /// order, always including the traced block 0. Post-launch screens use
    /// this to restrict themselves to problems whose outputs are real.
    pub fn executed_blocks(&self) -> Vec<usize> {
        let mut blocks = vec![0];
        blocks.extend(replay_blocks(self));
        blocks.sort_unstable();
        blocks
    }
}

/// Resolve the replay thread count: explicit config, then the
/// `REGLA_SIM_THREADS` environment variable, then available parallelism.
fn resolve_host_threads(lc: &LaunchConfig) -> usize {
    lc.host_threads
        .or_else(|| match std::env::var("REGLA_SIM_THREADS") {
            Ok(v) => match v.trim().parse::<usize>() {
                Ok(n) => Some(n),
                Err(_) => {
                    // Warn once, then fall back to available parallelism —
                    // a typo'd value should not silently change behaviour.
                    static WARNED: std::sync::Once = std::sync::Once::new();
                    WARNED.call_once(|| {
                        eprintln!(
                            "regla-gpu-sim: ignoring unparseable \
                             REGLA_SIM_THREADS={v:?} (expected a positive \
                             integer); using available parallelism"
                        );
                    });
                    None
                }
            },
            Err(_) => None,
        })
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        })
        .max(1)
}

/// Whether the disjoint-write checker runs: always in debug builds, and in
/// release when `REGLA_SIM_CHECK=1` (`REGLA_SIM_CHECK=0` force-disables).
fn check_writes_enabled() -> bool {
    match std::env::var("REGLA_SIM_CHECK") {
        Ok(v) => v.trim() != "0" && !v.trim().is_empty(),
        Err(_) => cfg!(debug_assertions),
    }
}

/// Parse one boolean flag value: `1`/`true`/`on` and `0`/`false`/`off`
/// (case-insensitive, trimmed); anything else — including empty — is
/// unrecognised.
pub(crate) fn parse_flag(value: &str) -> Option<bool> {
    match value.trim().to_ascii_lowercase().as_str() {
        "1" | "true" | "on" => Some(true),
        "0" | "false" | "off" => Some(false),
        _ => None,
    }
}

/// Read a boolean `REGLA_*` environment flag. Unset yields `default`;
/// an unrecognised value warns once per variable and then yields
/// `default` — a typo'd flag must not silently change behaviour (the
/// same contract `REGLA_SIM_THREADS` gets above).
pub fn env_flag(name: &str, default: bool) -> bool {
    let Ok(v) = std::env::var(name) else {
        return default;
    };
    parse_flag(&v).unwrap_or_else(|| {
        use std::collections::HashSet;
        use std::sync::{Mutex, OnceLock};
        static WARNED: OnceLock<Mutex<HashSet<String>>> = OnceLock::new();
        let mut warned = WARNED
            .get_or_init(|| Mutex::new(HashSet::new()))
            .lock()
            .unwrap();
        if warned.insert(name.to_string()) {
            eprintln!(
                "regla-gpu-sim: ignoring unrecognised {name}={v:?} \
                 (expected 0/1, true/false, on/off); defaulting to {default}"
            );
        }
        default
    })
}

/// `REGLA_SIM_SLOW=1` forces every launch onto the instrumented slow path
/// (A/B comparisons, perf debugging).
fn force_slow_path() -> bool {
    env_flag("REGLA_SIM_SLOW", false)
}

/// The schedule cache defaults on; `REGLA_SCHED_CACHE=0` disables it.
fn schedule_cache_enabled() -> bool {
    env_flag("REGLA_SCHED_CACHE", true)
}

/// `REGLA_SIM_VERBOSE=1` logs one stderr line per launch naming the path
/// it took, so perf mysteries are diagnosable without a debugger.
fn sim_verbose() -> bool {
    env_flag("REGLA_SIM_VERBOSE", false)
}

/// The blocks (besides traced block 0) to execute functionally.
fn replay_blocks(lc: &LaunchConfig) -> Vec<usize> {
    match lc.exec {
        ExecMode::Full => (1..lc.grid_blocks).collect(),
        ExecMode::Representative => Vec::new(),
        ExecMode::Sampled(k) => {
            // `Sampled(0)` is rejected by launch validation
            // (`LaunchError::InvalidExecMode`); clamp here so
            // `executed_blocks` stays total.
            // k evenly-spaced blocks over the grid, always including 0
            // (already traced, so excluded from the replay list).
            let k = k.clamp(1, lc.grid_blocks);
            let mut blocks: Vec<usize> =
                (0..k).map(|i| i * lc.grid_blocks / k).collect();
            blocks.dedup();
            blocks.retain(|&b| b != 0);
            blocks
        }
    }
}

/// A device kernel: runs once per thread block.
pub trait BlockKernel {
    fn run(&self, blk: &mut BlockCtx);
}

impl<F: Fn(&mut BlockCtx)> BlockKernel for F {
    fn run(&self, blk: &mut BlockCtx) {
        self(blk)
    }
}

/// The simulated GPU.
///
/// Cheap to clone: the buffer arena and schedule cache are shared across
/// clones (and therefore across every launch issued through them), which is
/// what lets `Session`-driven batch workloads stop hitting the allocator
/// and re-decode after the first launch.
#[derive(Clone, Debug)]
pub struct Gpu {
    pub cfg: GpuConfig,
    /// Reusable block-context buffers (see [`arena::BufPool`]).
    pool: Arc<BufPool>,
    /// Cross-launch traced-schedule cache (see [`schedule::ScheduleCache`]).
    sched: Arc<ScheduleCache>,
}

/// Extract a human-readable message from a caught panic payload.
fn panic_message(e: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run the kernel on one block with panic containment. A watchdog trip
/// (thrown as a typed panic payload by the op scoreboard) becomes
/// [`LaunchError::Watchdog`] with the phase the block was stuck in; any
/// other panic becomes [`LaunchError::KernelPanic`].
fn run_contained<K: BlockKernel + Sync + ?Sized>(
    kernel: &K,
    blk: &mut BlockCtx,
) -> Result<(), LaunchError> {
    let block = blk.block_id;
    match catch_unwind(AssertUnwindSafe(|| kernel.run(&mut *blk))) {
        Ok(()) => Ok(()),
        Err(e) => {
            if let Some(trip) = e.downcast_ref::<WatchdogTrip>() {
                Err(LaunchError::Watchdog {
                    block,
                    phase: blk.current_label().to_string(),
                    ops: trip.ops,
                    limit: trip.limit,
                })
            } else {
                Err(LaunchError::KernelPanic {
                    block,
                    message: panic_message(e.as_ref()),
                })
            }
        }
    }
}

impl Gpu {
    pub fn new(cfg: GpuConfig) -> Self {
        Gpu {
            cfg,
            pool: Arc::default(),
            sched: Arc::default(),
        }
    }

    /// The paper's device: a Quadro 6000.
    pub fn quadro_6000() -> Self {
        Gpu::new(GpuConfig::quadro_6000())
    }

    /// Check a launch configuration against the device's architectural
    /// limits before anything executes.
    pub fn validate(&self, lc: &LaunchConfig) -> Result<(), LaunchError> {
        if lc.grid_blocks == 0 {
            return Err(LaunchError::EmptyGrid);
        }
        if lc.threads_per_block == 0 {
            return Err(LaunchError::ZeroThreads);
        }
        if lc.threads_per_block > self.cfg.max_threads_per_block {
            return Err(LaunchError::TooManyThreads {
                requested: lc.threads_per_block,
                max: self.cfg.max_threads_per_block,
            });
        }
        if lc.shared_words * 4 > self.cfg.shared_bytes_per_sm {
            return Err(LaunchError::SharedMemoryExceeded {
                requested_bytes: lc.shared_words * 4,
                max_bytes: self.cfg.shared_bytes_per_sm,
            });
        }
        if lc.exec == ExecMode::Sampled(0) {
            return Err(LaunchError::InvalidExecMode(
                "ExecMode::Sampled(0) executes no blocks; at least the \
                 traced block 0 must run (use Representative to skip the \
                 functional replay entirely)",
            ));
        }
        Ok(())
    }

    /// Launch a kernel over `lc.grid_blocks` blocks.
    ///
    /// Block 0 is executed with full tracing (scoreboard timing, conflict
    /// and coalescing analysis); the remaining blocks execute functionally
    /// (or are skipped under [`ExecMode::Representative`], sampled under
    /// [`ExecMode::Sampled`]). Timing is then extrapolated over the grid
    /// via the occupancy and wave model.
    ///
    /// The functional replay is sharded across host worker threads (see
    /// [`LaunchConfig::host_threads`]); simulated results — `LaunchStats`
    /// and device memory — are bit-identical at every thread count, because
    /// timing comes solely from the traced block and each replayed block
    /// writes only its own problem's output.
    pub fn launch<K: BlockKernel + Sync + ?Sized>(
        &self,
        kernel: &K,
        lc: &LaunchConfig,
        gmem: &mut GlobalMemory,
    ) -> Result<LaunchStats, LaunchError> {
        self.validate(lc)?;
        let fault_map = lc.fault.map(|p| p.materialize(lc.grid_blocks));
        let fault_map = fault_map.as_ref();
        let mut applied: Vec<FaultRecord> = Vec::new();
        // Sanitizer setup: snapshot host-initialization and allocation
        // state before any block runs, so initcheck and the cross-block
        // classifier see the launch's declared inputs.
        let sanitizing = lc.sanitize.is_on();
        let shadow = sanitizing.then(|| LaunchShadow::new(&*gmem));
        if lc.watchdog.is_some() {
            crate::sanitize::install_quiet_watchdog_hook();
        }
        let hook = SanitizeHook {
            on: sanitizing,
            wd_limit: lc.watchdog.unwrap_or(0),
            shadow: shadow.as_ref(),
        };
        let mut collected = ContextFindings::default();
        let wall_start = Instant::now();
        let occ = occupancy(
            &self.cfg,
            lc.threads_per_block,
            lc.regs_per_thread,
            lc.shared_words * 4,
        );

        // Register-spill parameters. nvcc spills the least-used registers,
        // so the probability that a given access touches a spilled value is
        // roughly quadratic in the spilled fraction; spills land in the L1
        // (48 kB when the kernel's shared footprint allows the prefer-L1
        // split) and overflow to DRAM beyond its capacity.
        let spill = if occ.regs_spilled > 0 {
            let rho = occ.regs_spilled as f64 / lc.regs_per_thread as f64;
            let every = (1.0 / (rho * rho)).round().max(1.0) as u64;
            let footprint =
                (occ.regs_spilled * 4 * lc.threads_per_block * occ.blocks_per_sm) as f64;
            let l1_eff = if lc.shared_words * 4 <= self.cfg.l1_bytes_per_sm {
                self.cfg.prefer_l1_bytes_per_sm.max(self.cfg.l1_bytes_per_sm)
            } else {
                self.cfg.l1_bytes_per_sm
            } as f64;
            let hit_frac = (l1_eff / footprint).min(1.0);
            let latency = hit_frac * self.cfg.l1_latency as f64
                + (1.0 - hit_frac) * self.cfg.dram_row_hit_latency as f64;
            SpillInfo {
                every,
                latency: latency.round() as u64,
                dram_frac: 1.0 - hit_frac,
            }
        } else {
            SpillInfo::default()
        };

        let mut memhier = MemHier::new(&self.cfg);

        // Fast (observer-free) path: replay blocks elide all per-op
        // bookkeeping; results and modeled timing stay bit-identical.
        let fast = lc.fast_eligible() && !force_slow_path();

        // Schedule cache: only consulted on the fast path and only when the
        // caller supplied a kernel identity (its promise that launches
        // sharing key + shape trace identically).
        let sched_key = (fast && schedule_cache_enabled())
            .then_some(lc.schedule_key)
            .flatten()
            .map(|kernel| ScheduleKey {
                kernel,
                threads_per_block: lc.threads_per_block,
                regs_per_thread: lc.regs_per_thread,
                shared_words: lc.shared_words,
                math: lc.math as u8,
            });
        let cached: Option<Arc<Vec<PhaseRecord>>> =
            sched_key.as_ref().and_then(|k| self.sched.get(k));

        let mut blocks = replay_blocks(lc);
        let ctx: Vec<PhaseRecord> = if let Some(records) = &cached {
            // Cache hit: no block needs tracing. Block 0 is demoted to a
            // plain functional block (it still has to produce problem 0's
            // output) and the cached records feed the timing model, which
            // is a pure function of records + shape — so cycle totals are
            // bit-identical to a traced run.
            blocks.insert(0, 0);
            records.as_ref().clone()
        } else {
            // Traced representative block.
            let mut ctx = BlockCtx::new(
                0,
                lc.grid_blocks,
                true,
                false,
                lc.threads_per_block,
                lc.shared_words,
                &self.cfg,
                lc.math,
                spill,
                GmemAccess::Excl(gmem),
                &mut memhier,
                fault_map,
                hook,
                &self.pool,
            );
            run_contained(kernel, &mut ctx)?;
            applied.extend(ctx.take_applied_faults());
            collected.absorb(ctx.take_findings());
            let records = ctx.finish();
            if let Some(k) = sched_key {
                self.sched.insert(k, &records);
            }
            records
        };

        // Functional execution of the rest of the grid, sharded over host
        // worker threads. Each worker gets a contiguous chunk of the block
        // list, its own reused block context and memory hierarchy, and a
        // shared read / per-block write view of device memory.
        let mut workers = 1usize;
        let mut utilization = 1.0f64;
        if !blocks.is_empty() {
            workers = resolve_host_threads(lc).min(blocks.len());
            let check = check_writes_enabled();
            if workers == 1 && !check {
                // Zero-overhead sequential path through the exclusive borrow.
                let mut blk = BlockCtx::new(
                    blocks[0],
                    lc.grid_blocks,
                    false,
                    fast,
                    lc.threads_per_block,
                    lc.shared_words,
                    &self.cfg,
                    lc.math,
                    spill,
                    GmemAccess::Excl(gmem),
                    &mut memhier,
                    fault_map,
                    hook,
                    &self.pool,
                );
                run_contained(kernel, &mut blk)?;
                for &b in &blocks[1..] {
                    blk.reset_for_block(b);
                    run_contained(kernel, &mut blk)?;
                }
                applied.extend(blk.take_applied_faults());
                collected.absorb(blk.take_findings());
            } else {
                let shared = gmem.share(check, sanitizing);
                let replay_start = Instant::now();
                let chunk = blocks.len().div_ceil(workers);
                type ShardOutcome = Result<
                    (std::time::Duration, Vec<FaultRecord>, ContextFindings),
                    LaunchError,
                >;
                let outcomes: Vec<ShardOutcome> = std::thread::scope(|s| {
                    let handles: Vec<_> = blocks
                        .chunks(chunk)
                        .map(|shard| {
                            let shared = &shared;
                            let cfg = &self.cfg;
                            let pool = &*self.pool;
                            s.spawn(move || -> ShardOutcome {
                                let t0 = Instant::now();
                                let mut memhier = MemHier::new(cfg);
                                let mut blk = BlockCtx::new(
                                    shard[0],
                                    lc.grid_blocks,
                                    false,
                                    fast,
                                    lc.threads_per_block,
                                    lc.shared_words,
                                    cfg,
                                    lc.math,
                                    spill,
                                    GmemAccess::Worker(shared.worker(shard[0])),
                                    &mut memhier,
                                    fault_map,
                                    hook,
                                    pool,
                                );
                                run_contained(kernel, &mut blk)?;
                                for &b in &shard[1..] {
                                    blk.reset_for_block(b);
                                    run_contained(kernel, &mut blk)?;
                                }
                                Ok((
                                    t0.elapsed(),
                                    blk.take_applied_faults(),
                                    blk.take_findings(),
                                ))
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| {
                            h.join()
                                .unwrap_or_else(|e| std::panic::resume_unwind(e))
                        })
                        .collect()
                });
                let replay_wall = replay_start.elapsed().as_secs_f64();
                let mut busy_s = 0.0f64;
                for outcome in outcomes {
                    let (busy, faults, findings) = outcome?;
                    busy_s += busy.as_secs_f64();
                    applied.extend(faults);
                    collected.absorb(findings);
                }
                if replay_wall > 0.0 {
                    utilization = (busy_s / (workers as f64 * replay_wall)).min(1.0);
                }
            }
        }

        let mut stats = combine(
            &self.cfg,
            occ,
            ctx,
            lc.grid_blocks,
            lc.threads_per_block,
            spill.dram_frac > 0.0,
        );
        let wall = wall_start.elapsed();
        stats.sim_wall_s = wall.as_secs_f64();
        stats.sim_blocks = blocks.len();
        stats.sim_host_threads = workers;
        stats.sim_worker_utilization = utilization;
        stats.sim_fast = fast;
        stats.sim_sched_cache_hit = cached.is_some();
        // Chaos-injected stream stall: a pure timing perturbation applied
        // before the deadline check, so a stalled stream on an otherwise
        // healthy device is exactly what a deadline exists to catch.
        if lc.stall_cycles > 0 {
            stats.cycles += lc.stall_cycles as f64;
            stats.time_s += self.cfg.cycles_to_secs(lc.stall_cycles as f64);
        }
        if let Some(budget) = lc.deadline_cycles {
            let cycles = stats.cycles.ceil() as u64;
            if cycles > budget {
                // Like a watchdog trip, the deadline fires after device
                // memory is written: the launch ran, it just ran too long
                // for anyone to still be waiting on it.
                return Err(LaunchError::DeadlineExceeded { cycles, budget });
            }
        }
        applied.sort_unstable_by_key(|f| f.block);
        if sanitizing {
            let ContextFindings {
                mut findings,
                mut totals,
                per_block,
            } = collected;
            if let Some(shadow) = &shadow {
                shadow.classify(&mut findings, &mut totals);
            }
            // Findings from blocks where an injected fault actually landed
            // are the fault's doing, not a kernel bug. Attribution uses the
            // uncapped per-block totals so it stays exact past the
            // detail cap.
            let faulted: std::collections::HashSet<usize> =
                applied.iter().map(|f| f.block).collect();
            let mut fault_attributed = 0u64;
            for (b, tot) in &per_block {
                if faulted.contains(b) {
                    fault_attributed += tot.iter().sum::<u64>();
                }
            }
            for f in &mut findings {
                if f.block.is_some_and(|b| faulted.contains(&b)) {
                    f.fault_attributed = true;
                }
            }
            // Deterministic report order regardless of replay sharding.
            findings.sort_by(|a, b| {
                (a.block, a.check, a.addr, a.thread).cmp(&(
                    b.block, b.check, b.addr, b.thread,
                ))
            });
            stats.sanitizer = Some(SanitizerReport {
                mode: lc.sanitize,
                findings,
                counts: totals,
                fault_attributed,
            });
        }
        // The traced block also executes functionally (problem 0's output
        // is real), so it counts; on a schedule-cache hit block 0 is
        // already in the replay list.
        let functional_blocks = blocks.len() + usize::from(cached.is_none());
        crate::telemetry::record_launch(
            wall.as_nanos().min(u128::from(u64::MAX)) as u64,
            functional_blocks,
            workers,
            applied.len() as u64,
        );
        // Silent flips are withheld from the ECC report: `faults` carries
        // only the kinds a real machine-check would surface, while
        // `silent_faults` is ground truth for verification campaigns.
        let (silent, reported): (Vec<_>, Vec<_>) = applied
            .into_iter()
            .partition(|f| f.kind == crate::fault::FaultKind::SilentFlip);
        stats.faults = reported;
        stats.silent_faults = silent;
        if let Some(sink) = &lc.trace {
            sink.record(crate::trace::build_trace(&self.cfg, &stats, &lc.name));
        }
        if sim_verbose() {
            eprintln!(
                "regla-gpu-sim: launch '{}' took the {} path ({}{} functional \
                 blocks, {} workers)",
                lc.name,
                if fast { "fast" } else { "slow" },
                if cached.is_some() { "cached schedule, " } else { "" },
                functional_blocks,
                workers,
            );
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::DPtr;

    fn copy_kernel(
        n_per_thread: usize,
        src: DPtr,
        dst: DPtr,
    ) -> impl Fn(&mut BlockCtx) {
        move |blk: &mut BlockCtx| {
            let t_per_b = blk.num_threads();
            let base = blk.block_id * t_per_b * n_per_thread;
            blk.for_each(|t| {
                for i in 0..n_per_thread {
                    // Coalesced: consecutive threads touch consecutive words.
                    let idx = base + i * t_per_b + t.tid;
                    let v = t.gload(src, idx);
                    t.gstore(dst, idx, v);
                }
            });
        }
    }

    #[test]
    fn flag_parsing_accepts_common_spellings_and_rejects_garbage() {
        for v in ["1", "true", "TRUE", "on", " On "] {
            assert_eq!(parse_flag(v), Some(true), "{v:?}");
        }
        for v in ["0", "false", "False", "off", " OFF "] {
            assert_eq!(parse_flag(v), Some(false), "{v:?}");
        }
        for v in ["", "yes", "2", "enable", "0x1", "tru e"] {
            assert_eq!(parse_flag(v), None, "{v:?}");
        }
    }

    #[test]
    fn env_flag_defaults_on_unset_and_invalid() {
        // Unset: default passes through either way.
        assert!(env_flag("REGLA_TEST_FLAG_UNSET", true));
        assert!(!env_flag("REGLA_TEST_FLAG_UNSET", false));
        // Invalid: warn-once path, default preserved (not treated as set).
        std::env::set_var("REGLA_TEST_FLAG_BAD", "maybe");
        assert!(env_flag("REGLA_TEST_FLAG_BAD", true));
        assert!(!env_flag("REGLA_TEST_FLAG_BAD", false));
        std::env::remove_var("REGLA_TEST_FLAG_BAD");
        // Valid values override the default.
        std::env::set_var("REGLA_TEST_FLAG_SET", "off");
        assert!(!env_flag("REGLA_TEST_FLAG_SET", true));
        std::env::remove_var("REGLA_TEST_FLAG_SET");
    }

    #[test]
    fn copy_kernel_moves_data_and_reports_stats() {
        let gpu = Gpu::quadro_6000();
        let mut mem = GlobalMemory::with_bytes(1 << 20);
        let n = 64 * 16 * 8;
        let src = mem.alloc(n);
        let dst = mem.alloc(n);
        for i in 0..n {
            mem.write(src, i, i as f32);
        }
        let lc = LaunchConfig::new(8, 64).regs(16).shared_words(0);
        let stats = gpu.launch(&copy_kernel(16, src, dst), &lc, &mut mem).unwrap();
        for i in 0..n {
            assert_eq!(mem.read(dst, i), i as f32);
        }
        // read + write of n words, fully coalesced and deduplicated.
        assert_eq!(stats.dram_bytes, (2 * n * 4) as f64);
        assert!(stats.cycles > 0.0);
        assert!(stats.time_s > 0.0);
    }

    #[test]
    fn stall_inflates_timing_and_deadline_trips() {
        let gpu = Gpu::quadro_6000();
        let mut mem = GlobalMemory::with_bytes(1 << 20);
        let n = 64 * 16 * 8;
        let src = mem.alloc(n);
        let dst = mem.alloc(n);
        for i in 0..n {
            mem.write(src, i, i as f32);
        }
        let base_lc = LaunchConfig::new(8, 64).regs(16).shared_words(0);
        let base = gpu.launch(&copy_kernel(16, src, dst), &base_lc, &mut mem).unwrap();

        // A stall is a pure timing perturbation: cycles shift by exactly
        // the injected amount and the functional output is untouched.
        let lc = base_lc.clone().stall_cycles(1_000_000);
        assert!(lc.fast_eligible(), "stall must not force the slow path");
        let stalled = gpu.launch(&copy_kernel(16, src, dst), &lc, &mut mem).unwrap();
        assert_eq!(stalled.cycles, base.cycles + 1_000_000.0);
        for i in 0..n {
            assert_eq!(mem.read(dst, i), i as f32);
        }

        // A generous budget passes; the stalled launch blows the same one.
        let budget = base.cycles.ceil() as u64 + 1000;
        let ok_lc = base_lc.clone().deadline_cycles(budget);
        gpu.launch(&copy_kernel(16, src, dst), &ok_lc, &mut mem).unwrap();
        let bad_lc = base_lc.stall_cycles(1_000_000).deadline_cycles(budget);
        let err = gpu.launch(&copy_kernel(16, src, dst), &bad_lc, &mut mem);
        match err {
            Err(LaunchError::DeadlineExceeded { cycles, budget: b }) => {
                assert_eq!(b, budget);
                assert!(cycles > b);
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }

    #[test]
    fn representative_mode_skips_other_blocks() {
        let gpu = Gpu::quadro_6000();
        let mut mem = GlobalMemory::with_bytes(1 << 20);
        let n = 64 * 4 * 4;
        let src = mem.alloc(n);
        let dst = mem.alloc(n);
        for i in 0..n {
            mem.write(src, i, 1.0);
        }
        let lc = LaunchConfig::new(4, 64)
            .regs(16)
            .shared_words(0)
            .exec(ExecMode::Representative);
        let stats = gpu.launch(&copy_kernel(4, src, dst), &lc, &mut mem).unwrap();
        // Block 0's slice was copied; block 3's slice untouched.
        assert_eq!(mem.read(dst, 0), 1.0);
        assert_eq!(mem.read(dst, n - 1), 0.0);
        // Timing still covers the whole grid.
        assert_eq!(stats.grid_blocks, 4);
        assert_eq!(stats.dram_bytes, (2 * n * 4) as f64);
    }

    #[test]
    fn large_grid_runs_in_waves() {
        let gpu = Gpu::quadro_6000();
        let mut mem = GlobalMemory::with_bytes(1 << 24);
        let n_per_block = 64 * 4;
        let grid = 500; // > 14 SMs * 8 blocks
        let src = mem.alloc(n_per_block * grid);
        let dst = mem.alloc(n_per_block * grid);
        let lc = LaunchConfig::new(grid, 64)
            .regs(16)
            .shared_words(0)
            .exec(ExecMode::Representative);
        let stats = gpu.launch(&copy_kernel(4, src, dst), &lc, &mut mem).unwrap();
        assert_eq!(stats.waves, (500f64 / 112f64).ceil() as usize);
    }

    #[test]
    fn dram_bound_copy_achieves_stream_bandwidth() {
        // A big, fully-coalesced copy must run at ~108 GB/s (Table II).
        let gpu = Gpu::quadro_6000();
        let mut mem = GlobalMemory::with_bytes(64 << 20);
        let words = 4 << 20; // 16 MB array, as in Listing 2
        let src = mem.alloc(words);
        let dst = mem.alloc(words);
        let grid = 14 * 8;
        let per_block = words / grid;
        let per_thread = per_block / 256;
        let k = move |blk: &mut BlockCtx| {
            let base = blk.block_id * per_block;
            blk.for_each(|t| {
                for i in 0..per_thread {
                    let idx = base + i * 256 + t.tid;
                    let v = t.gload(src, idx);
                    t.gstore(dst, idx, v);
                }
            });
        };
        let lc = LaunchConfig::new(grid, 256)
            .regs(20)
            .shared_words(0)
            .exec(ExecMode::Representative);
        let stats = gpu.launch(&k, &lc, &mut mem).unwrap();
        let gbs = stats.dram_gbs();
        assert!(
            (gbs - 108.0).abs() < 6.0,
            "copy bandwidth {gbs} GB/s, expected ~108"
        );
    }

    #[test]
    fn fma_chain_is_latency_bound() {
        // A single dependent FMA chain exposes the 18-cycle pipeline.
        let gpu = Gpu::quadro_6000();
        let mut mem = GlobalMemory::with_bytes(4096);
        let n = 1000usize;
        let k = move |blk: &mut BlockCtx| {
            blk.for_each(|t| {
                if t.tid == 0 {
                    let mut acc = t.lit(0.0);
                    let x = t.lit(1.000001);
                    for _ in 0..n {
                        acc = t.fma(acc, x, x);
                    }
                }
            });
        };
        let lc = LaunchConfig::new(1, 32).regs(8).shared_words(0);
        let stats = gpu.launch(&k, &lc, &mut mem).unwrap();
        let per_op = stats.cycles / n as f64;
        assert!(
            (per_op - 18.0).abs() < 1.5,
            "dependent FMA cost {per_op} cycles, expected ~18 (gamma)"
        );
    }

    #[test]
    fn independent_fp_ops_reach_issue_throughput() {
        // Many independent ops across many warps: throughput-bound.
        let gpu = Gpu::quadro_6000();
        let mut mem = GlobalMemory::with_bytes(1 << 20);
        let n = 256usize;
        let k = move |blk: &mut BlockCtx| {
            blk.for_each(|t| {
                let x = t.lit(1.5);
                let mut accs = [t.lit(0.0); 8];
                for _ in 0..n / 8 {
                    for a in &mut accs {
                        *a = t.fma(*a, x, x);
                    }
                }
                let mut s = accs[0];
                for a in &accs[1..] {
                    s = t.add(s, *a);
                }
                // Per-block output slab: blocks must write disjoint words.
                t.gstore(DPtr(0), t.block_id * 256 + t.tid, s);
            });
        };
        let lc = LaunchConfig::new(112, 256).regs(24).shared_words(0);
        let stats = gpu.launch(&k, &lc, &mut mem).unwrap();
        // 8-way ILP with full occupancy: should be far below 18 cycles/op
        // per warp and reach a decent fraction of peak FLOP throughput.
        let frac = stats.gflops() / gpu.cfg.peak_sp_gflops();
        assert!(frac > 0.5, "achieved only {frac:.2} of peak");
    }

    #[test]
    fn spilled_registers_slow_the_kernel_down() {
        let gpu = Gpu::quadro_6000();
        let run = |regs: usize| {
            let mut mem = GlobalMemory::with_bytes(1 << 20);
            let k = move |blk: &mut BlockCtx| {
                blk.for_each(|t| {
                    let mut a = thread::RegArray::<thread::Rv>::zeroed(regs);
                    let one = t.lit(1.0);
                    for i in 0..regs {
                        let x = a.get(t, i);
                        let y = t.add(x, one);
                        a.set(t, i, y);
                    }
                    let last = a.get(t, regs - 1);
                    t.gstore(DPtr(0), t.block_id * 64 + t.tid, last);
                });
            };
            let lc = LaunchConfig::new(112, 64).regs(regs).shared_words(0);
            gpu.launch(&k, &lc, &mut mem).unwrap().cycles
        };
        let fits = run(48);
        let spills = run(120);
        assert!(
            spills > fits * 1.5,
            "spilled {spills} vs resident {fits}: expected a clear penalty"
        );
    }

    #[test]
    fn sync_adds_barrier_cost() {
        let gpu = Gpu::quadro_6000();
        let mut mem = GlobalMemory::with_bytes(4096);
        let nsyncs = 100usize;
        let k = move |blk: &mut BlockCtx| {
            for _ in 0..nsyncs {
                blk.sync();
            }
        };
        let lc = LaunchConfig::new(1, 64).regs(8).shared_words(16);
        let stats = gpu.launch(&k, &lc, &mut mem).unwrap();
        let per_sync = stats.cycles / nsyncs as f64;
        assert!(
            (per_sync - 46.0).abs() < 2.0,
            "sync cost {per_sync}, expected ~46 (Table IV)"
        );
    }

    #[test]
    fn bank_conflicts_are_detected_and_penalised() {
        let gpu = Gpu::quadro_6000();
        let run = |stride: usize| {
            let mut mem = GlobalMemory::with_bytes(1 << 16);
            let k = move |blk: &mut BlockCtx| {
                blk.for_each(|t| {
                    let mut acc = t.lit(0.0);
                    for i in 0..8 {
                        let v = t.shared_load((t.tid * stride + i * 512) % 4096);
                        acc = t.add(acc, v);
                    }
                    t.gstore(DPtr(0), t.tid, acc);
                });
            };
            let lc = LaunchConfig::new(1, 32).regs(8).shared_words(4096);
            gpu.launch(&k, &lc, &mut mem).unwrap()
        };
        let clean = run(1);
        let conflicted = run(32);
        assert_eq!(clean.conflict_replays(), 0);
        assert_eq!(conflicted.conflict_replays(), 31 * 8);
        assert!(conflicted.cycles > clean.cycles);
    }
}
