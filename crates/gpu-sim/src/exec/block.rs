//! Block-level execution context.
//!
//! A kernel runs once per thread block and is written from the block's
//! perspective: `for_each` executes a closure for every thread (the SIMT
//! lanes), `sync()` is `__syncthreads()`, and `phase_label` names the
//! current section for the per-phase breakdowns of Table V and Figure 8.
//! Phases are delimited by synchronizations; at each boundary the context
//! performs the warp-level analyses (bank conflicts, coalescing, distinct
//! DRAM lines) and folds them into a [`PhaseRecord`].

use crate::config::{GpuConfig, MathMode};
use crate::exec::arena::{BlockBufs, BufPool};
use crate::exec::thread::{AccessRec, PhaseAccum, SpillInfo, ThreadCtx};
use crate::fault::{FaultMap, FaultRecord, FaultState};
use crate::mem::global::GmemAccess;
use crate::mem::shared::{bank_conflict_replays, coalesced_transactions, distinct_lines};
use crate::mem::MemHier;
use crate::sanitize::{ContextFindings, LaunchShadow, SanitizerState};
use crate::timing::PhaseRecord;

/// Sanitizer wiring handed to each block context by `Gpu::launch`:
/// whether checks run, the per-block watchdog budget, and the launch-level
/// global-memory shadow.
#[derive(Clone, Copy)]
pub(crate) struct SanitizeHook<'a> {
    pub(crate) on: bool,
    pub(crate) wd_limit: u64,
    pub(crate) shadow: Option<&'a LaunchShadow>,
}


/// Execution context for one thread block.
pub struct BlockCtx<'a> {
    pub block_id: usize,
    pub grid_blocks: usize,
    nthreads: usize,
    traced: bool,
    /// True when the launch runs observer-free and this context executes
    /// replay (untraced) blocks: threads expose the raw fast primitives.
    fast: bool,
    cfg: &'a GpuConfig,
    math: MathMode,
    spill: SpillInfo,
    /// Shared memory, readiness shadow and per-thread timing, checked out
    /// of the per-`Gpu` arena and returned on drop.
    bufs: BlockBufs,
    pool: &'a BufPool,
    phase: PhaseAccum,
    phase_start: u64,
    label: String,
    records: Vec<PhaseRecord>,
    gmem: GmemAccess<'a>,
    memhier: &'a mut MemHier,
    /// Materialised fault plan for the whole launch (None = no campaign).
    fault_map: Option<&'a FaultMap>,
    /// This context's armed/applied fault state (re-armed per block).
    fault: FaultState,
    /// This context's sanitizer/watchdog state (re-armed per block).
    san: SanitizerState,
    /// Launch-level global shadow (`Some` iff the sanitizer is on).
    shadow: Option<&'a LaunchShadow>,
}

impl<'a> BlockCtx<'a> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        block_id: usize,
        grid_blocks: usize,
        traced: bool,
        fast: bool,
        nthreads: usize,
        shared_words: usize,
        cfg: &'a GpuConfig,
        math: MathMode,
        spill: SpillInfo,
        gmem: GmemAccess<'a>,
        memhier: &'a mut MemHier,
        fault_map: Option<&'a FaultMap>,
        sanitize: SanitizeHook<'a>,
        pool: &'a BufPool,
    ) -> Self {
        debug_assert!(!(fast && traced), "the traced block is never fast");
        let mut fault = FaultState::default();
        fault.arm(fault_map, block_id);
        let mut san = SanitizerState::new(sanitize.on, sanitize.wd_limit, shared_words, nthreads);
        san.arm(block_id);
        BlockCtx {
            block_id,
            grid_blocks,
            nthreads,
            traced,
            fast,
            cfg,
            math,
            spill,
            bufs: pool.checkout(shared_words, nthreads),
            pool,
            phase: PhaseAccum::default(),
            phase_start: 0,
            label: String::new(),
            records: Vec::new(),
            gmem,
            memhier,
            fault_map,
            fault,
            san,
            shadow: sanitize.shadow,
        }
    }

    /// Drain the fault records applied by every block this context ran.
    pub(crate) fn take_applied_faults(&mut self) -> Vec<FaultRecord> {
        std::mem::take(&mut self.fault.applied)
    }

    /// Drain the sanitizer findings (and uncapped per-check totals) from
    /// every block this context ran, flushing the final block's barrier
    /// check.
    pub(crate) fn take_findings(&mut self) -> ContextFindings {
        self.san.take()
    }

    /// The label the kernel last set (watchdog error provenance; labels
    /// are maintained on every block whenever the sanitizer or watchdog
    /// is active).
    pub(crate) fn current_label(&self) -> &str {
        &self.label
    }

    /// Reuse this context for another (untraced) block without reallocating.
    pub(crate) fn reset_for_block(&mut self, block_id: usize) {
        self.block_id = block_id;
        self.gmem.set_block(block_id);
        self.bufs.shared.fill(0.0);
        self.bufs.shared_ready.fill(0);
        for t in &mut self.bufs.threads {
            t.reset_phase(0);
            t.regctr = 0;
        }
        self.phase.clear();
        self.phase_start = 0;
        self.label.clear();
        self.records.clear();
        self.fault.arm(self.fault_map, block_id);
        self.san.arm(block_id);
    }

    pub fn num_threads(&self) -> usize {
        self.nthreads
    }

    /// Size of the shared-memory allocation in 32-bit words.
    pub fn shared_words(&self) -> usize {
        self.bufs.shared.len()
    }

    /// Whether labels are being kept (traced block, sanitizer or watchdog
    /// active). Kernels use this to skip building `format!`ed labels on
    /// replay blocks.
    #[inline]
    pub fn wants_labels(&self) -> bool {
        self.traced || self.san.on || self.san.wd_limit != 0
    }

    /// Name the current phase (applies when the phase closes). Labels are
    /// also kept on untraced blocks when the sanitizer or watchdog is
    /// active, so findings and `LaunchError::Watchdog` carry phase
    /// provenance for every block.
    pub fn phase_label(&mut self, label: impl Into<String>) {
        if self.wants_labels() {
            self.label = label.into();
            self.san.set_phase(&self.label);
        }
    }

    /// Lazily-built variant of [`phase_label`](Self::phase_label): the
    /// closure runs only when labels are kept, so fast replay blocks never
    /// pay for a `format!`.
    pub fn phase_label_with(&mut self, label: impl FnOnce() -> String) {
        if self.wants_labels() {
            self.label = label();
            self.san.set_phase(&self.label);
        }
    }

    /// Execute `f` once per thread, in SIMT order.
    pub fn for_each(&mut self, mut f: impl FnMut(&mut ThreadCtx)) {
        for tid in 0..self.nthreads {
            let mut t = ThreadCtx {
                tid,
                block_id: self.block_id,
                traced: self.traced,
                fast: self.fast,
                cfg: self.cfg,
                math: self.math,
                tt: &mut self.bufs.threads[tid],
                shared: &mut self.bufs.shared,
                shared_ready: &mut self.bufs.shared_ready,
                gmem: &mut self.gmem,
                phase: &mut self.phase,
                memhier: self.memhier,
                spill: self.spill,
                fault: &mut self.fault,
                san: &mut self.san,
                shadow: self.shadow,
            };
            f(&mut t);
        }
    }

    /// `__syncthreads()`: barrier plus phase boundary.
    pub fn sync(&mut self) {
        self.san.on_sync();
        self.close_phase(true);
    }

    fn close_phase(&mut self, with_sync: bool) {
        if !self.traced {
            return;
        }
        let raw_end = self
            .bufs
            .threads
            .iter()
            .map(|t| t.clock.max(t.horizon))
            .max()
            .unwrap_or(self.phase_start);
        let mut critical = raw_end - self.phase_start;

        // ---- bank-conflict analysis: group shared accesses by (warp, seq).
        let shared_accesses = self.phase.shared_rec.len() as u64;
        let (conflict_replays, max_warp_replays) = self.analyze_shared();
        let replay_interval = self.cfg.ldst_issue_interval;
        critical += max_warp_replays * replay_interval;

        // ---- global coalescing and distinct-line DRAM traffic.
        let (transactions, line_bytes) = self.analyze_global();

        // ---- warp-level instruction totals.
        let ws = self.cfg.warp_size;
        let mut fp_instrs = 0u64;
        let mut ldst_instrs = 0u64;
        let mut sfu_instrs = 0u64;
        let mut block_issue = 0u64;
        for warp in self.bufs.threads.chunks(ws) {
            let wfp = warp.iter().map(|t| t.fp).max().unwrap_or(0);
            let wldst = warp.iter().map(|t| t.ldst).max().unwrap_or(0);
            let wsfu = warp.iter().map(|t| t.sfu).max().unwrap_or(0);
            fp_instrs += wfp;
            ldst_instrs += wldst;
            sfu_instrs += wsfu;
            let fp_cyc = wfp * self.cfg.fp_issue_interval;
            let ld_cyc = (wldst as f64
                * self.cfg.ldst_issue_interval as f64
                * self.cfg.ldst_sustained_factor)
                .round() as u64;
            block_issue += if self.cfg.dual_issue {
                fp_cyc.max(ld_cyc)
            } else {
                fp_cyc + ld_cyc
            } + wsfu * self.cfg.sfu_issue_interval;
        }
        block_issue += conflict_replays * replay_interval;

        let flops: u64 = self.bufs.threads.iter().map(|t| t.flops).sum();

        let sync_cycles = if with_sync {
            self.cfg.sync_cycles(self.nthreads)
        } else {
            0
        };
        critical += sync_cycles;

        self.records.push(PhaseRecord {
            // The label persists across syncs until the kernel changes it,
            // so multi-phase sections aggregate under one name.
            label: self.label.clone(),
            critical_cycles: critical,
            sync_cycles,
            block_issue_cycles: block_issue,
            fp_instrs,
            ldst_instrs,
            sfu_instrs,
            flops,
            shared_accesses,
            conflict_replays,
            global_transactions: transactions,
            global_line_bytes: line_bytes,
            spill_dram_bytes: (self.phase.spill_words as f64 * 4.0 * self.spill.dram_frac)
                .round() as u64,
            had_sync: with_sync,
        });

        let new_start = self.phase_start + critical;
        for t in &mut self.bufs.threads {
            t.reset_phase(new_start);
        }
        self.phase_start = new_start;
        self.phase.clear();
    }

    /// Group the phase's shared accesses by (warp, static-instruction seq)
    /// and count bank-conflict replays. Returns (total, worst-warp).
    fn analyze_shared(&mut self) -> (u64, u64) {
        if self.phase.shared_rec.is_empty() {
            return (0, 0);
        }
        let mut recs = std::mem::take(&mut self.phase.shared_rec);
        recs.sort_unstable_by_key(|r| (r.warp, r.seq));
        let mut total = 0u64;
        let mut per_warp = std::collections::HashMap::new();
        let mut addrs: Vec<u32> = Vec::with_capacity(self.cfg.warp_size);
        let mut i = 0;
        while i < recs.len() {
            let key = (recs[i].warp, recs[i].seq);
            addrs.clear();
            while i < recs.len() && (recs[i].warp, recs[i].seq) == key {
                addrs.push(recs[i].addr as u32);
                i += 1;
            }
            let r = u64::from(bank_conflict_replays(self.cfg.shared_banks, &addrs));
            total += r;
            *per_warp.entry(key.0).or_insert(0u64) += r;
        }
        let worst = per_warp.values().copied().max().unwrap_or(0);
        self.phase.shared_rec = recs;
        self.phase.shared_rec.clear();
        (total, worst)
    }

    /// Coalesce the phase's global accesses into transactions and compute
    /// the distinct-line DRAM footprint.
    fn analyze_global(&mut self) -> (u64, u64) {
        if self.phase.global_rec.is_empty() {
            return (0, 0);
        }
        let recs: Vec<AccessRec> = std::mem::take(&mut self.phase.global_rec);
        let mut sorted = recs;
        sorted.sort_unstable_by_key(|r| (r.warp, r.seq));
        let line = self.cfg.dram_line_bytes;
        let mut transactions = 0u64;
        let mut addrs: Vec<u64> = Vec::with_capacity(self.cfg.warp_size);
        let mut i = 0;
        while i < sorted.len() {
            let key = (sorted[i].warp, sorted[i].seq);
            addrs.clear();
            while i < sorted.len() && (sorted[i].warp, sorted[i].seq) == key {
                addrs.push(sorted[i].addr);
                i += 1;
            }
            transactions += u64::from(coalesced_transactions(line, &addrs));
        }
        // Loads and stores are separate DRAM traffic even when they touch
        // the same lines (read + write-back of an in-place factorization).
        let load_lines = distinct_lines(
            line,
            sorted.iter().filter(|r| !r.store).map(|r| r.addr),
        );
        let store_lines = distinct_lines(
            line,
            sorted.iter().filter(|r| r.store).map(|r| r.addr),
        );
        let bytes = ((load_lines.len() + store_lines.len()) * line) as u64;
        (transactions, bytes)
    }

    /// Close the final phase and return the records (traced block only).
    pub(crate) fn finish(mut self) -> Vec<PhaseRecord> {
        self.close_phase(false);
        std::mem::take(&mut self.records)
    }
}

impl Drop for BlockCtx<'_> {
    fn drop(&mut self) {
        // Retire the buffers to the per-`Gpu` arena so the next launch's
        // contexts allocate nothing.
        self.pool.restore(std::mem::take(&mut self.bufs));
    }
}
