//! CUDA occupancy calculator for compute-capability-2.0 class devices.
//!
//! The number of thread blocks co-resident on an SM is the binding factor in
//! the paper's Figure 9 (the drop at n = 80 comes from the 64 -> 256 thread
//! switch reducing blocks per SM), so this mirrors the CUDA occupancy
//! calculator's rules: block limit, thread limit, register-file limit with
//! warp-granularity allocation, and shared-memory limit.

use crate::config::GpuConfig;

/// Which resource limits the number of resident blocks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OccLimiter {
    Blocks,
    Threads,
    Registers,
    SharedMem,
}

/// Result of the occupancy computation for one kernel configuration.
#[derive(Clone, Copy, Debug)]
pub struct Occupancy {
    /// Thread blocks co-resident per SM (>= 1; launches always make progress).
    pub blocks_per_sm: usize,
    pub warps_per_sm: usize,
    pub threads_per_sm: usize,
    pub limiter: OccLimiter,
    /// Registers per thread actually allocated (clamped to the
    /// architectural maximum; the excess spills to local memory).
    pub regs_allocated: usize,
    /// Declared registers beyond the architectural maximum.
    pub regs_spilled: usize,
}

impl Occupancy {
    /// Fraction of the SM's maximum resident threads that are occupied.
    pub fn occupancy_fraction(&self, cfg: &GpuConfig) -> f64 {
        self.threads_per_sm as f64 / cfg.max_threads_per_sm as f64
    }
}

/// Compute the occupancy of a kernel with the given per-block resources.
pub fn occupancy(
    cfg: &GpuConfig,
    threads_per_block: usize,
    regs_per_thread: usize,
    shared_bytes_per_block: usize,
) -> Occupancy {
    assert!(threads_per_block >= 1, "empty thread block");
    assert!(
        threads_per_block <= cfg.max_threads_per_block,
        "block of {threads_per_block} threads exceeds device limit {}",
        cfg.max_threads_per_block
    );
    let regs_allocated = regs_per_thread.clamp(1, cfg.max_regs_per_thread);
    let regs_spilled = regs_per_thread.saturating_sub(cfg.max_regs_per_thread);

    let warps_per_block = threads_per_block.div_ceil(cfg.warp_size);
    // Register allocation is per warp, rounded up to the granularity.
    let warp_regs = (regs_allocated * cfg.warp_size).div_ceil(cfg.reg_alloc_granularity)
        * cfg.reg_alloc_granularity;
    let block_regs = warp_regs * warps_per_block;

    let mut candidates = [
        (cfg.max_blocks_per_sm, OccLimiter::Blocks),
        (
            cfg.max_threads_per_sm / threads_per_block,
            OccLimiter::Threads,
        ),
        (cfg.regfile_words_per_sm / block_regs, OccLimiter::Registers),
        (
            cfg.shared_bytes_per_sm
                .checked_div(shared_bytes_per_block)
                .unwrap_or(usize::MAX),
            OccLimiter::SharedMem,
        ),
    ];
    // Stable: prefer the earlier limiter on ties (Blocks < Threads < ...).
    candidates.sort_by_key(|&(n, _)| n);
    let (blocks, limiter) = candidates[0];
    let blocks = blocks.max(1);
    Occupancy {
        blocks_per_sm: blocks,
        warps_per_sm: blocks * warps_per_block,
        threads_per_sm: blocks * threads_per_block,
        limiter,
        regs_allocated,
        regs_spilled,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> GpuConfig {
        GpuConfig::quadro_6000()
    }

    #[test]
    fn paper_56x56_configuration_gets_eight_blocks() {
        // 64 threads, ~63 registers (7x7 sub-matrix + overhead), small shared
        // usage: the paper reports 8 blocks per SM => 112 problems in flight.
        let occ = occupancy(&cfg(), 64, 63, 4 * 1024);
        assert_eq!(occ.blocks_per_sm, 8);
        assert_eq!(occ.regs_spilled, 0);
    }

    #[test]
    fn switch_to_256_threads_drops_occupancy() {
        // The n = 80 switch to 256 threads: register pressure limits
        // residency to 2 blocks per SM (the paper's "8 to 2" drop).
        let occ = occupancy(&cfg(), 256, 63, 8 * 1024);
        assert!(occ.blocks_per_sm <= 3, "got {}", occ.blocks_per_sm);
        assert!(occ.blocks_per_sm >= 2);
    }

    #[test]
    fn block_limit_binds_for_tiny_blocks() {
        let occ = occupancy(&cfg(), 32, 16, 0);
        assert_eq!(occ.blocks_per_sm, 8);
        assert_eq!(occ.limiter, OccLimiter::Blocks);
    }

    #[test]
    fn thread_limit_binds_for_huge_blocks() {
        let occ = occupancy(&cfg(), 1024, 20, 0);
        assert_eq!(occ.blocks_per_sm, 1);
        assert_eq!(occ.limiter, OccLimiter::Threads);
    }

    #[test]
    fn shared_memory_limits_residency() {
        let occ = occupancy(&cfg(), 64, 16, 24 * 1024);
        assert_eq!(occ.blocks_per_sm, 2);
        assert_eq!(occ.limiter, OccLimiter::SharedMem);
    }

    #[test]
    fn declared_registers_beyond_max_spill() {
        let occ = occupancy(&cfg(), 64, 100, 0);
        assert_eq!(occ.regs_allocated, 64);
        assert_eq!(occ.regs_spilled, 36);
    }

    #[test]
    fn occupancy_fraction_in_unit_range() {
        let occ = occupancy(&cfg(), 192, 32, 1024);
        let f = occ.occupancy_fraction(&cfg());
        assert!(f > 0.0 && f <= 1.0);
    }

    #[test]
    #[should_panic(expected = "exceeds device limit")]
    fn oversized_block_rejected() {
        occupancy(&cfg(), 2048, 16, 0);
    }
}
