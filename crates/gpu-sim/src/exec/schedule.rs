//! Cross-launch schedule cache.
//!
//! Tracing block 0 of a launch is the expensive part of the fast path: the
//! scoreboard, bank-conflict and coalescing analyses all run there even
//! when every other block replays functionally. Batch drivers and design-
//! space sweeps relaunch the same kernel shape over and over, so the `Gpu`
//! keeps the traced block's phase records in a small cache keyed by an
//! opaque caller-supplied kernel id plus the launch shape. On a hit the
//! traced block is demoted to a plain functional block and the cached
//! records feed the timing model directly — modeled cycles are
//! bit-identical because `timing::combine` is a pure function of the
//! records and the launch shape.
//!
//! The kernel id is the caller's promise: launches sharing an id (and
//! shape) must produce identical traced schedules. Kernels whose control
//! flow depends on the data (e.g. a zero-pivot early exit) must fold a
//! digest of the traced block's inputs into the id. `regla-core` does
//! exactly that, so a cache entry can never be replayed against a block
//! that would have traced differently. Set `REGLA_SCHED_CACHE=0` to
//! disable the cache entirely.

use crate::timing::PhaseRecord;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Everything launch-visible that shapes the traced block's records.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub(crate) struct ScheduleKey {
    /// Caller-supplied kernel identity (`LaunchConfig::schedule_key`).
    pub kernel: u64,
    pub threads_per_block: usize,
    pub regs_per_thread: usize,
    pub shared_words: usize,
    /// `MathMode` discriminant (fast SFU vs precise sequences change both
    /// the values and the issue schedule).
    pub math: u8,
}

/// Bound on retained entries; a sweep touches tens of shapes, not
/// thousands, so this is a leak guard rather than an eviction policy.
const MAX_ENTRIES: usize = 256;

/// Per-[`Gpu`] cache of traced-block phase records.
///
/// [`Gpu`]: crate::exec::Gpu
#[derive(Debug, Default)]
pub(crate) struct ScheduleCache {
    map: Mutex<HashMap<ScheduleKey, Arc<Vec<PhaseRecord>>>>,
}

impl ScheduleCache {
    pub(crate) fn get(&self, key: &ScheduleKey) -> Option<Arc<Vec<PhaseRecord>>> {
        self.map
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(key)
            .cloned()
    }

    pub(crate) fn insert(&self, key: ScheduleKey, records: &[PhaseRecord]) {
        let mut map = self.map.lock().unwrap_or_else(|e| e.into_inner());
        if map.len() >= MAX_ENTRIES && !map.contains_key(&key) {
            // Shapes past the guard rail simply stop caching; correctness
            // never depends on a hit.
            return;
        }
        map.insert(key, Arc::new(records.to_vec()));
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.map.lock().unwrap_or_else(|e| e.into_inner()).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(kernel: u64) -> ScheduleKey {
        ScheduleKey {
            kernel,
            threads_per_block: 64,
            regs_per_thread: 20,
            shared_words: 128,
            math: 0,
        }
    }

    #[test]
    fn insert_then_get_round_trips() {
        let cache = ScheduleCache::default();
        assert!(cache.get(&key(1)).is_none());
        cache.insert(key(1), &[]);
        assert_eq!(cache.len(), 1);
        assert!(cache.get(&key(1)).is_some());
        // A different kernel id or shape misses.
        assert!(cache.get(&key(2)).is_none());
        let mut k = key(1);
        k.shared_words = 64;
        assert!(cache.get(&k).is_none());
    }

    #[test]
    fn cache_is_bounded() {
        let cache = ScheduleCache::default();
        for i in 0..(MAX_ENTRIES as u64 + 16) {
            cache.insert(key(i), &[]);
        }
        assert_eq!(cache.len(), MAX_ENTRIES);
    }
}
