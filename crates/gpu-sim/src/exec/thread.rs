//! Per-thread execution context with an in-order scoreboard.
//!
//! Kernels perform arithmetic through [`ThreadCtx`] helper methods that both
//! compute the value and account its cost. Every value is an [`Rv`]
//! ("register value") carrying the cycle at which it becomes available; an
//! instruction issues when its operands are ready and its functional unit's
//! issue slot is free, and completes after the unit's pipeline latency.
//! This reproduces the latency-bound behaviour the paper measures for the
//! one-problem-per-block factorizations (Table V) while still letting
//! high-occupancy streaming kernels reach the throughput bounds.

use crate::config::{GpuConfig, MathMode};
use crate::fault::FaultState;
use crate::mem::global::GmemAccess;
use crate::mem::{DPtr, MemHier};
use crate::sanitize::{LaunchShadow, SanitizerState, WatchdogTrip};

/// Functional-unit classes with distinct issue ports/intervals.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Class {
    /// CUDA cores: FP32 and integer ALU. One warp instruction per cycle.
    Fp = 0,
    /// Load/store units (shared, global, local). One per two cycles.
    LdSt = 1,
    /// Special function units (reciprocal, sqrt). One per eight cycles.
    Sfu = 2,
}

/// A tracked register value: an `f32` plus the cycle it becomes readable.
#[derive(Clone, Copy, Debug, Default)]
pub struct Rv {
    pub v: f32,
    pub(crate) ready: u64,
}

impl Rv {
    /// An immediate/compile-time constant (always ready).
    pub fn imm(v: f32) -> Rv {
        Rv { v, ready: 0 }
    }

    pub fn val(self) -> f32 {
        self.v
    }
}

/// A tracked complex value built from two register values.
#[derive(Clone, Copy, Debug, Default)]
pub struct CRv {
    pub re: Rv,
    pub im: Rv,
}

impl CRv {
    pub fn imm(re: f32, im: f32) -> CRv {
        CRv {
            re: Rv::imm(re),
            im: Rv::imm(im),
        }
    }

    pub fn val(self) -> (f32, f32) {
        (self.re.v, self.im.v)
    }
}

/// Emulate the 22-mantissa-bit accuracy of the GF100 SFU fast paths by
/// truncating the low bits of the correctly-rounded result.
#[inline]
pub fn trunc22(x: f32) -> f32 {
    if x.is_finite() {
        f32::from_bits(x.to_bits() & !0x3)
    } else {
        x
    }
}

/// Per-thread timing state, persisted across phases by the block context.
#[derive(Clone, Debug, Default)]
pub(crate) struct ThreadTiming {
    pub clock: u64,
    pub horizon: u64,
    pub next_free: [u64; 3],
    pub last_issue: u64,
    pub dual_used: bool,
    // per-phase instruction counts (reset at each phase boundary)
    pub fp: u64,
    pub ldst: u64,
    pub sfu: u64,
    pub flops: u64,
    pub sseq: u32,
    pub gseq: u32,
    pub regctr: u64,
}

impl ThreadTiming {
    pub fn reset_phase(&mut self, at: u64) {
        self.clock = at;
        self.horizon = at;
        self.next_free = [at; 3];
        self.last_issue = at;
        self.dual_used = false;
        self.fp = 0;
        self.ldst = 0;
        self.sfu = 0;
        self.flops = 0;
        self.sseq = 0;
        self.gseq = 0;
    }
}

/// One recorded memory access (traced block only).
#[derive(Clone, Copy, Debug)]
pub(crate) struct AccessRec {
    pub warp: u32,
    pub seq: u32,
    pub addr: u64,
    pub store: bool,
}

/// Accumulator for the current phase of the traced block.
#[derive(Default)]
pub(crate) struct PhaseAccum {
    pub shared_rec: Vec<AccessRec>,
    pub global_rec: Vec<AccessRec>,
    pub spill_words: u64,
}

impl PhaseAccum {
    pub fn clear(&mut self) {
        self.shared_rec.clear();
        self.global_rec.clear();
        self.spill_words = 0;
    }
}

/// Register-spill parameters derived from the launch configuration.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct SpillInfo {
    /// Every `every`-th register-array access touches a spilled register
    /// (0 = no spilling). nvcc spills the coldest registers, so the hit
    /// probability is quadratic in the spilled fraction.
    pub every: u64,
    /// Blended latency of a spilled access (L1 hit / DRAM mix).
    pub latency: u64,
    /// Fraction of spilled accesses that overflow the L1 into DRAM.
    pub dram_frac: f64,
}

/// The device-side view of one thread.
///
/// The second lifetime `'m` is the device-memory borrow carried by the
/// [`GmemAccess`] handle; it outlives the per-`for_each` borrow `'a`, which
/// is what lets replay workers reuse one block context across many blocks
/// while sharing the memory view. Elision hides both from kernels, which
/// only ever see `&mut ThreadCtx`.
pub struct ThreadCtx<'a, 'm> {
    pub tid: usize,
    pub block_id: usize,
    pub(crate) traced: bool,
    /// Fast-path flag: true only on replay blocks of a launch with no
    /// observers attached (no trace sink, sanitizer, fault plan, or
    /// watchdog). Kernels may then use the raw `sget`/`sset`/`gget`/`gset`
    /// primitives and value-only arithmetic, skipping per-op bookkeeping
    /// entirely; results are bit-identical because the raw ops perform the
    /// same `f32` operations in the same order.
    pub(crate) fast: bool,
    pub(crate) cfg: &'a GpuConfig,
    pub(crate) math: MathMode,
    pub(crate) tt: &'a mut ThreadTiming,
    pub(crate) shared: &'a mut [f32],
    pub(crate) shared_ready: &'a mut [u64],
    pub(crate) gmem: &'a mut GmemAccess<'m>,
    pub(crate) phase: &'a mut PhaseAccum,
    pub(crate) memhier: &'a mut MemHier,
    pub(crate) spill: SpillInfo,
    /// Block-shared fault-injection state (no-op unless a plan armed it).
    pub(crate) fault: &'a mut FaultState,
    /// Block-shared sanitizer/watchdog state (inert unless the launch
    /// enabled either).
    pub(crate) san: &'a mut SanitizerState,
    /// Launch-level global-memory shadow (`Some` iff the sanitizer is on).
    pub(crate) shadow: Option<&'a LaunchShadow>,
}

impl ThreadCtx<'_, '_> {
    /// Watchdog tick: every scoreboarded op counts against the per-block
    /// budget, traced or not, so a livelocked replay block trips too. The
    /// trip unwinds as a typed payload that `Gpu::launch` converts into
    /// `LaunchError::Watchdog`.
    #[inline]
    fn step(&mut self) {
        if self.san.wd_limit != 0 {
            self.san.wd_ops += 1;
            if self.san.wd_ops > self.san.wd_limit {
                std::panic::panic_any(WatchdogTrip {
                    ops: self.san.wd_ops,
                    limit: self.san.wd_limit,
                });
            }
        }
    }

    /// Announce this thread's arrival at a barrier for the sanitizer's
    /// synccheck. Call once per thread immediately before the block-level
    /// `sync()`; threads that skip it (divergent control flow) are
    /// reported. A no-op unless the sanitizer is on.
    pub fn barrier(&mut self) {
        self.san.barrier(self.tid);
    }

    #[inline]
    fn interval(&self, c: Class) -> u64 {
        match c {
            Class::Fp => self.cfg.fp_issue_interval,
            Class::LdSt => self.cfg.ldst_issue_interval,
            Class::Sfu => self.cfg.sfu_issue_interval,
        }
    }

    /// Issue one warp instruction of class `c` whose operands are ready at
    /// `ready`; returns the issue cycle.
    #[inline]
    fn issue(&mut self, c: Class, ready: u64) -> u64 {
        let interval = self.interval(c);
        let t = &mut *self.tt;
        let mut start = ready.max(t.next_free[c as usize]).max(t.last_issue);
        if start == t.last_issue {
            if self.cfg.dual_issue && !t.dual_used {
                t.dual_used = true;
            } else {
                start += 1;
                t.dual_used = false;
            }
        } else {
            t.dual_used = false;
        }
        t.next_free[c as usize] = start + interval;
        t.last_issue = start;
        t.clock = t.clock.max(start);
        match c {
            Class::Fp => t.fp += 1,
            Class::LdSt => t.ldst += 1,
            Class::Sfu => t.sfu += 1,
        }
        start
    }

    #[inline]
    fn complete(&mut self, start: u64, latency: u64) -> u64 {
        let ready = start + latency;
        self.tt.horizon = self.tt.horizon.max(ready);
        ready
    }

    #[inline]
    fn alu(&mut self, v: f32, ready: u64, flops: u64) -> Rv {
        self.step();
        if !self.traced {
            return Rv { v, ready: 0 };
        }
        let start = self.issue(Class::Fp, ready);
        self.tt.flops += flops;
        let ready = self.complete(start, self.cfg.alu_latency);
        Rv { v, ready }
    }

    /// An always-ready literal.
    #[inline]
    pub fn lit(&mut self, v: f32) -> Rv {
        Rv::imm(v)
    }

    /// Current thread-local cycle counter (the CUDA `clock()` analogue).
    pub fn now(&self) -> u64 {
        self.tt.clock.max(self.tt.horizon)
    }

    // ---- real arithmetic ----

    #[inline]
    pub fn add(&mut self, a: Rv, b: Rv) -> Rv {
        self.alu(a.v + b.v, a.ready.max(b.ready), 1)
    }

    #[inline]
    pub fn sub(&mut self, a: Rv, b: Rv) -> Rv {
        self.alu(a.v - b.v, a.ready.max(b.ready), 1)
    }

    #[inline]
    pub fn mul(&mut self, a: Rv, b: Rv) -> Rv {
        self.alu(a.v * b.v, a.ready.max(b.ready), 1)
    }

    /// Fused multiply-add `a*b + c` (one issue slot, two FLOPs).
    #[inline]
    pub fn fma(&mut self, a: Rv, b: Rv, c: Rv) -> Rv {
        self.alu(a.v * b.v + c.v, a.ready.max(b.ready).max(c.ready), 2)
    }

    /// Fused negate-multiply-add `c - a*b` (one issue slot, two FLOPs).
    #[inline]
    pub fn fnma(&mut self, a: Rv, b: Rv, c: Rv) -> Rv {
        self.alu(c.v - a.v * b.v, a.ready.max(b.ready).max(c.ready), 2)
    }

    /// Negation is a source modifier on GF100: free.
    #[inline]
    pub fn neg(&mut self, a: Rv) -> Rv {
        Rv {
            v: -a.v,
            ready: a.ready,
        }
    }

    /// Absolute value is a source modifier: free.
    #[inline]
    pub fn abs(&mut self, a: Rv) -> Rv {
        Rv {
            v: a.v.abs(),
            ready: a.ready,
        }
    }

    /// An untracked integer ALU operation (address arithmetic, loop
    /// counters); occupies an FP-class issue slot but is not a FLOP.
    #[inline]
    pub fn int_op(&mut self) -> u64 {
        self.step();
        if !self.traced {
            return 0;
        }
        let start = self.issue(Class::Fp, self.tt.clock);
        self.complete(start, self.cfg.alu_latency)
    }

    /// Integer op whose result feeds an address: returns a readiness token.
    #[inline]
    pub fn int_dep(&mut self, dep: u64) -> u64 {
        self.step();
        if !self.traced {
            return 0;
        }
        let start = self.issue(Class::Fp, dep);
        self.complete(start, self.cfg.alu_latency)
    }

    /// Readiness cycle of a value (for explicit address dependencies).
    #[inline]
    pub fn ready_of(&self, a: Rv) -> u64 {
        a.ready
    }

    /// Integer op consuming `a` (e.g. the SHL.W scaling an index to a byte
    /// address); returns the completion cycle.
    #[inline]
    pub fn int_dep_of(&mut self, a: Rv) -> u64 {
        self.int_dep(a.ready)
    }

    /// A dependent integer op that produces a value (chained shifts in the
    /// pipeline-latency calibration).
    #[inline]
    pub fn int_chain(&mut self, a: Rv) -> Rv {
        self.step();
        if !self.traced {
            return a;
        }
        let start = self.issue(Class::Fp, a.ready);
        let ready = self.complete(start, self.cfg.alu_latency);
        Rv { v: a.v, ready }
    }

    // ---- comparisons / control (charge one ALU op, return host bool) ----

    #[inline]
    pub fn is_zero(&mut self, a: Rv) -> bool {
        self.step();
        if self.traced {
            let start = self.issue(Class::Fp, a.ready);
            self.complete(start, self.cfg.alu_latency);
        }
        a.v == 0.0
    }

    #[inline]
    pub fn gt(&mut self, a: Rv, b: Rv) -> bool {
        self.step();
        if self.traced {
            let ready = a.ready.max(b.ready);
            let start = self.issue(Class::Fp, ready);
            self.complete(start, self.cfg.alu_latency);
        }
        a.v > b.v
    }

    // ---- special functions ----

    /// Reciprocal. Fast mode uses the SFU (22-bit accurate); precise mode
    /// the correctly-rounded software sequence.
    pub fn recip(&mut self, a: Rv) -> Rv {
        self.step();
        match self.math {
            MathMode::Fast => {
                let v = trunc22(1.0 / a.v);
                if !self.traced {
                    return Rv { v, ready: 0 };
                }
                let start = self.issue(Class::Sfu, a.ready);
                let ready = self.complete(start, self.cfg.fast_recip_latency);
                self.tt.flops += 1;
                Rv { v, ready }
            }
            MathMode::Precise => {
                let v = 1.0 / a.v;
                if !self.traced {
                    return Rv { v, ready: 0 };
                }
                let mut start = self.issue(Class::Sfu, a.ready);
                for _ in 0..self.cfg.precise_extra_issue {
                    start = self.issue(Class::Fp, start);
                }
                let ready = self.complete(start, self.cfg.precise_div_latency);
                self.tt.flops += 1;
                Rv { v, ready }
            }
        }
    }

    /// Division `a/b`: a reciprocal plus a multiply in fast mode, the full
    /// software sequence in precise mode.
    pub fn div(&mut self, a: Rv, b: Rv) -> Rv {
        match self.math {
            MathMode::Fast => {
                let r = self.recip(b);
                let out = self.mul(a, r);
                Rv {
                    v: trunc22(a.v / b.v),
                    ready: out.ready,
                }
            }
            MathMode::Precise => {
                let v = a.v / b.v;
                if !self.traced {
                    return Rv { v, ready: 0 };
                }
                let mut start = self.issue(Class::Sfu, a.ready.max(b.ready));
                for _ in 0..self.cfg.precise_extra_issue {
                    start = self.issue(Class::Fp, start);
                }
                let ready = self.complete(start, self.cfg.precise_div_latency);
                self.tt.flops += 1;
                Rv { v, ready }
            }
        }
    }

    /// Square root.
    pub fn sqrt(&mut self, a: Rv) -> Rv {
        self.step();
        match self.math {
            MathMode::Fast => {
                let v = trunc22(a.v.sqrt());
                if !self.traced {
                    return Rv { v, ready: 0 };
                }
                let start = self.issue(Class::Sfu, a.ready);
                let ready = self.complete(start, self.cfg.fast_sqrt_latency);
                self.tt.flops += 1;
                Rv { v, ready }
            }
            MathMode::Precise => {
                let v = a.v.sqrt();
                if !self.traced {
                    return Rv { v, ready: 0 };
                }
                let mut start = self.issue(Class::Sfu, a.ready);
                for _ in 0..self.cfg.precise_extra_issue {
                    start = self.issue(Class::Fp, start);
                }
                let ready = self.complete(start, self.cfg.precise_sqrt_latency);
                self.tt.flops += 1;
                Rv { v, ready }
            }
        }
    }

    /// Reciprocal square root (single SFU op in fast mode).
    pub fn rsqrt(&mut self, a: Rv) -> Rv {
        self.step();
        match self.math {
            MathMode::Fast => {
                let v = trunc22(1.0 / a.v.sqrt());
                if !self.traced {
                    return Rv { v, ready: 0 };
                }
                let start = self.issue(Class::Sfu, a.ready);
                let ready = self.complete(start, self.cfg.fast_sqrt_latency);
                self.tt.flops += 1;
                Rv { v, ready }
            }
            MathMode::Precise => {
                let s = self.sqrt(a);
                self.recip(s)
            }
        }
    }

    // ---- shared memory ----

    #[inline]
    fn record_shared(&mut self, word: usize) {
        let warp = (self.tid / self.cfg.warp_size) as u32;
        let seq = self.tt.sseq;
        self.tt.sseq += 1;
        self.phase.shared_rec.push(AccessRec {
            warp,
            seq,
            addr: word as u64,
            store: false,
        });
    }

    /// Load a word from block shared memory.
    pub fn shared_load(&mut self, word: usize) -> Rv {
        self.step();
        if self.san.on && !self.san.shared_load(self.tid, word) {
            return Rv { v: 0.0, ready: 0 };
        }
        let v = self.shared[word];
        if !self.traced {
            return Rv { v, ready: 0 };
        }
        self.record_shared(word);
        let dep = self.shared_ready[word];
        let start = self.issue(Class::LdSt, dep);
        let ready = self.complete(start, self.cfg.shared_latency);
        Rv { v, ready }
    }

    /// Load whose address depends on a previous result (pointer chasing).
    pub fn shared_load_dep(&mut self, word: usize, addr_ready: u64) -> Rv {
        self.step();
        if self.san.on && !self.san.shared_load(self.tid, word) {
            return Rv { v: 0.0, ready: 0 };
        }
        let v = self.shared[word];
        if !self.traced {
            return Rv { v, ready: 0 };
        }
        self.record_shared(word);
        let dep = addr_ready.max(self.shared_ready[word]);
        let start = self.issue(Class::LdSt, dep);
        let ready = self.complete(start, self.cfg.shared_latency);
        Rv { v, ready }
    }

    /// Store a word to block shared memory.
    pub fn shared_store(&mut self, word: usize, x: Rv) {
        self.step();
        let stored = self.fault.on_shared_store(x.v);
        if self.san.on && !self.san.shared_store(self.tid, word, stored.is_some()) {
            return;
        }
        if let Some(v) = stored {
            self.shared[word] = v;
        }
        if !self.traced {
            return;
        }
        self.record_shared(word);
        let start = self.issue(Class::LdSt, x.ready);
        let done = self.complete(start, self.cfg.shared_latency);
        self.shared_ready[word] = self.shared_ready[word].max(done);
    }

    // ---- global memory ----

    #[inline]
    fn record_global(&mut self, byte_addr: u64, store: bool) {
        let warp = (self.tid / self.cfg.warp_size) as u32;
        let seq = self.tt.gseq;
        self.tt.gseq += 1;
        self.phase.global_rec.push(AccessRec {
            warp,
            seq,
            addr: byte_addr,
            store,
        });
    }

    /// Load a word from global memory (bandwidth-accounted path).
    pub fn gload(&mut self, p: DPtr, idx: usize) -> Rv {
        self.step();
        if self.san.on {
            let shadow = self.shadow.expect("sanitized launch has a shadow");
            if !self.san.global_load(self.tid, p.0 + idx, shadow) {
                return Rv { v: 0.0, ready: 0 };
            }
        }
        let v = self.gmem.read(p, idx);
        if !self.traced {
            return Rv { v, ready: 0 };
        }
        self.record_global(p.offset(idx).byte_addr(), false);
        let start = self.issue(Class::LdSt, self.tt.clock);
        let ready = self.complete(start, self.cfg.dram_row_miss_latency);
        Rv { v, ready }
    }

    /// Dependent global load routed through the latency hierarchy
    /// (pointer-chasing microbenchmarks).
    pub fn gload_dep(&mut self, p: DPtr, idx: usize, addr_ready: u64) -> Rv {
        self.step();
        if self.san.on {
            let shadow = self.shadow.expect("sanitized launch has a shadow");
            if !self.san.global_load(self.tid, p.0 + idx, shadow) {
                return Rv { v: 0.0, ready: 0 };
            }
        }
        let v = self.gmem.read(p, idx);
        if !self.traced {
            return Rv { v, ready: 0 };
        }
        self.record_global(p.offset(idx).byte_addr(), false);
        let start = self.issue(Class::LdSt, addr_ready);
        let lat = self.memhier.load_latency(p.offset(idx).byte_addr());
        let ready = self.complete(start, lat);
        Rv { v, ready }
    }

    /// Store a word to global memory. An armed fault plan may flip a bit
    /// of the stored value or drop the store entirely (aborted block);
    /// timing is charged either way — a faulted device still issues the
    /// instruction.
    pub fn gstore(&mut self, p: DPtr, idx: usize, x: Rv) {
        self.step();
        let stored = self.fault.on_global_store(x.v);
        if self.san.on {
            let shadow = self.shadow.expect("sanitized launch has a shadow");
            if !self
                .san
                .global_store(self.tid, p.0 + idx, stored.is_some(), shadow)
            {
                return;
            }
        }
        if let Some(v) = stored {
            self.gmem.write(p, idx, v);
        }
        if !self.traced {
            return;
        }
        self.record_global(p.offset(idx).byte_addr(), true);
        let start = self.issue(Class::LdSt, x.ready);
        self.complete(start, 1);
    }

    // ---- register-array spill accounting ----

    /// Called on each register-array access; returns the ready cycle of a
    /// spilled (local-memory) access, or `None` when the access stays in
    /// the register file.
    #[inline]
    pub(crate) fn reg_access(&mut self, words: u64, _store: bool) -> Option<u64> {
        self.step();
        // The spill counter feeds nothing but the traced block's spill
        // accounting, so untraced (replay) threads skip the divisions
        // entirely — on heavily-spilled kernels they dominate replay cost.
        if self.spill.every == 0 || !self.traced {
            return None;
        }
        self.tt.regctr += words;
        // Deterministic sampling: every `every`-th word is spilled.
        let prev = self.tt.regctr - words;
        let hits = self.tt.regctr / self.spill.every - prev / self.spill.every;
        if hits == 0 {
            return None;
        }
        self.phase.spill_words += hits;
        let mut ready = 0;
        for _ in 0..hits {
            let start = self.issue(Class::LdSt, self.tt.clock);
            ready = self.complete(start, self.spill.latency);
        }
        Some(ready)
    }

    // ---- fast-path raw primitives ----
    //
    // Available only when `fast()` is true (replay block, no observers).
    // They perform exactly the same memory/`f32` operations as the
    // scoreboarded equivalents but skip all per-op bookkeeping: no
    // watchdog tick, no access records, no readiness tracking. Because the
    // launch was only eligible for the fast path with the sanitizer off and
    // no fault plan armed, skipping those hooks cannot change behaviour.

    /// Whether this thread runs on the fast (observer-free) path. Kernels
    /// branch on this once per fused loop, not per op.
    #[inline]
    pub fn fast(&self) -> bool {
        self.fast
    }

    /// Raw shared-memory load (fast path only).
    #[inline]
    pub fn sget(&self, word: usize) -> f32 {
        debug_assert!(self.fast, "sget is a fast-path primitive");
        self.shared[word]
    }

    /// Raw shared-memory store (fast path only).
    #[inline]
    pub fn sset(&mut self, word: usize, v: f32) {
        debug_assert!(self.fast, "sset is a fast-path primitive");
        self.shared[word] = v;
    }

    /// Raw global-memory load (fast path only). Still routed through the
    /// `GmemAccess` handle so the `REGLA_SIM_CHECK` disjoint-write checker
    /// keeps seeing every access.
    #[inline]
    pub fn gget(&mut self, p: DPtr, idx: usize) -> f32 {
        debug_assert!(self.fast, "gget is a fast-path primitive");
        self.gmem.read(p, idx)
    }

    /// Raw global-memory store (fast path only).
    #[inline]
    pub fn gset(&mut self, p: DPtr, idx: usize, v: f32) {
        debug_assert!(self.fast, "gset is a fast-path primitive");
        self.gmem.write(p, idx, v);
    }

    /// Bulk raw load of `len` consecutive words (fast path only): the
    /// access-path dispatch and bounds check are hoisted out of the loop,
    /// which matters when a kernel streams whole problems to registers.
    #[inline]
    pub fn gget_span(&mut self, p: DPtr, idx: usize, len: usize, f: impl FnMut(usize, f32)) {
        debug_assert!(self.fast, "gget_span is a fast-path primitive");
        self.gmem.read_span(p, idx, len, f);
    }

    /// Bulk raw store of `len` consecutive words (fast path only).
    #[inline]
    pub fn gset_span(&mut self, p: DPtr, idx: usize, len: usize, f: impl FnMut(usize) -> f32) {
        debug_assert!(self.fast, "gset_span is a fast-path primitive");
        self.gmem.write_span(p, idx, len, f);
    }

    /// Value-only reciprocal with the launch's math-mode semantics
    /// (bit-identical to `recip`).
    #[inline]
    pub fn v_recip(&self, a: f32) -> f32 {
        match self.math {
            MathMode::Fast => trunc22(1.0 / a),
            MathMode::Precise => 1.0 / a,
        }
    }

    /// Value-only division (bit-identical to `div`).
    #[inline]
    pub fn v_div(&self, a: f32, b: f32) -> f32 {
        match self.math {
            MathMode::Fast => trunc22(a / b),
            MathMode::Precise => a / b,
        }
    }

    /// Value-only square root (bit-identical to `sqrt`).
    #[inline]
    pub fn v_sqrt(&self, a: f32) -> f32 {
        match self.math {
            MathMode::Fast => trunc22(a.sqrt()),
            MathMode::Precise => a.sqrt(),
        }
    }

    /// Value-only reciprocal square root (bit-identical to `rsqrt`).
    #[inline]
    pub fn v_rsqrt(&self, a: f32) -> f32 {
        match self.math {
            MathMode::Fast => trunc22(1.0 / a.sqrt()),
            // Precise mode composes sqrt then recip, both exact.
            MathMode::Precise => 1.0 / a.sqrt(),
        }
    }

    // ---- complex arithmetic (built from counted real ops) ----

    pub fn cadd(&mut self, a: CRv, b: CRv) -> CRv {
        CRv {
            re: self.add(a.re, b.re),
            im: self.add(a.im, b.im),
        }
    }

    pub fn csub(&mut self, a: CRv, b: CRv) -> CRv {
        CRv {
            re: self.sub(a.re, b.re),
            im: self.sub(a.im, b.im),
        }
    }

    /// Complex multiply: 2 MUL + 2 FMA (6 FLOPs).
    pub fn cmul(&mut self, a: CRv, b: CRv) -> CRv {
        let t1 = self.mul(a.re, b.re);
        let re = self.fnma(a.im, b.im, t1);
        let t2 = self.mul(a.re, b.im);
        let im = self.fma(a.im, b.re, t2);
        CRv { re, im }
    }

    /// Complex fused multiply-add `acc + a*b`: 4 FMA (8 FLOPs).
    pub fn cfma(&mut self, a: CRv, b: CRv, acc: CRv) -> CRv {
        let t1 = self.fma(a.re, b.re, acc.re);
        let re = self.fnma(a.im, b.im, t1);
        let t2 = self.fma(a.re, b.im, acc.im);
        let im = self.fma(a.im, b.re, t2);
        CRv { re, im }
    }

    /// `acc - a*b`: 4 FMA-class ops.
    pub fn cfnma(&mut self, a: CRv, b: CRv, acc: CRv) -> CRv {
        let t1 = self.fnma(a.re, b.re, acc.re);
        let re = self.fma(a.im, b.im, t1);
        let t2 = self.fnma(a.re, b.im, acc.im);
        let im = self.fnma(a.im, b.re, t2);
        CRv { re, im }
    }

    /// Complex value scaled by a real.
    pub fn cscale(&mut self, a: CRv, s: Rv) -> CRv {
        CRv {
            re: self.mul(a.re, s),
            im: self.mul(a.im, s),
        }
    }

    /// Conjugation is a sign flip: free.
    pub fn conj(&mut self, a: CRv) -> CRv {
        CRv {
            re: a.re,
            im: self.neg(a.im),
        }
    }

    /// Squared magnitude `re^2 + im^2` (MUL + FMA).
    pub fn cnorm_sq(&mut self, a: CRv) -> Rv {
        let t = self.mul(a.re, a.re);
        self.fma(a.im, a.im, t)
    }

    /// Complex reciprocal via `conj(z) / |z|^2`.
    pub fn crecip(&mut self, a: CRv) -> CRv {
        let n = self.cnorm_sq(a);
        let r = self.recip(n);
        let c = self.conj(a);
        self.cscale(c, r)
    }

    /// Load a complex (two consecutive words) from shared memory.
    pub fn cshared_load(&mut self, word: usize) -> CRv {
        CRv {
            re: self.shared_load(word),
            im: self.shared_load(word + 1),
        }
    }

    /// Store a complex to shared memory.
    pub fn cshared_store(&mut self, word: usize, x: CRv) {
        self.shared_store(word, x.re);
        self.shared_store(word + 1, x.im);
    }

    /// Load a complex (two consecutive words) from global memory.
    pub fn cgload(&mut self, p: DPtr, idx: usize) -> CRv {
        if self.san.on {
            let shadow = self.shadow.expect("sanitized launch has a shadow");
            self.san.complex_global(self.tid, p.0 + 2 * idx, shadow);
        }
        CRv {
            re: self.gload(p, 2 * idx),
            im: self.gload(p, 2 * idx + 1),
        }
    }

    /// Store a complex to global memory.
    pub fn cgstore(&mut self, p: DPtr, idx: usize, x: CRv) {
        if self.san.on {
            let shadow = self.shadow.expect("sanitized launch has a shadow");
            self.san.complex_global(self.tid, p.0 + 2 * idx, shadow);
        }
        self.gstore(p, 2 * idx, x.re);
        self.gstore(p, 2 * idx + 1, x.im);
    }
}

/// Trait for values storable in a register array.
pub trait RegVal: Copy + Default {
    const REG_WORDS: u64;
    fn with_ready(self, ready: u64) -> Self;
    /// Flip one bit of the stored word (fault injection; complex values
    /// flip the real component).
    fn flip_bit(self, bit: u32) -> Self;
}

impl RegVal for Rv {
    const REG_WORDS: u64 = 1;
    fn with_ready(self, ready: u64) -> Self {
        Rv {
            v: self.v,
            ready: self.ready.max(ready),
        }
    }

    fn flip_bit(self, bit: u32) -> Self {
        Rv {
            v: f32::from_bits(self.v.to_bits() ^ (1 << (bit % 32))),
            ready: self.ready,
        }
    }
}

impl RegVal for CRv {
    const REG_WORDS: u64 = 2;
    fn with_ready(self, ready: u64) -> Self {
        CRv {
            re: self.re.with_ready(ready),
            im: self.im.with_ready(ready),
        }
    }

    fn flip_bit(self, bit: u32) -> Self {
        CRv {
            re: self.re.flip_bit(bit),
            im: self.im,
        }
    }
}

/// A per-thread register array. When the launch declares more registers
/// than the architecture provides, a deterministic fraction of accesses is
/// charged as local-memory (spill) traffic — this is what produces the
/// performance cliffs at n >= 8 in Figure 4 and at n = 64 / n > 112 in
/// Figure 9.
#[derive(Clone, Debug)]
pub struct RegArray<T: RegVal> {
    v: Vec<T>,
}

impl<T: RegVal> RegArray<T> {
    pub fn zeroed(len: usize) -> Self {
        RegArray {
            v: vec![T::default(); len],
        }
    }

    pub fn len(&self) -> usize {
        self.v.len()
    }

    pub fn is_empty(&self) -> bool {
        self.v.is_empty()
    }

    #[inline]
    pub fn get(&self, t: &mut ThreadCtx, i: usize) -> T {
        match t.reg_access(T::REG_WORDS, false) {
            Some(ready) => self.v[i].with_ready(ready),
            None => self.v[i],
        }
    }

    #[inline]
    pub fn set(&mut self, t: &mut ThreadCtx, i: usize, x: T) {
        t.reg_access(T::REG_WORDS, true);
        self.v[i] = match t.fault.on_reg_store() {
            Some(bit) => x.flip_bit(bit),
            None => x,
        };
    }

    /// Raw view of the backing storage (fast path only): bypasses spill
    /// accounting and fault hooks, which are inert on an observer-free
    /// replay block anyway.
    #[inline]
    pub fn raw(&self) -> &[T] {
        &self.v
    }

    /// Mutable raw view of the backing storage (fast path only).
    #[inline]
    pub fn raw_mut(&mut self) -> &mut [T] {
        &mut self.v
    }
}
