//! Reusable per-launch buffer arena.
//!
//! Every block context needs a shared-memory image, a readiness shadow and
//! per-thread timing state. Allocating those three `Vec`s per context made
//! repeated launches (batch drivers, sweeps, proptests) hit the allocator
//! once per worker per launch; the pool keeps retired buffers on the `Gpu`
//! so steady-state launches allocate nothing. Buffers are handed out
//! cleared — `checkout` resizes and zero-fills, so a pooled buffer is
//! indistinguishable from a fresh one and the fast and slow paths stay
//! bit-identical.

use crate::exec::thread::ThreadTiming;
use std::sync::Mutex;

/// Cap on retired buffer sets kept alive. Bounds worst-case memory at
/// roughly one buffer set per replay worker of the widest launch seen.
const MAX_POOLED: usize = 64;

/// One block context's worth of reusable storage.
#[derive(Debug, Default)]
pub(crate) struct BlockBufs {
    pub shared: Vec<f32>,
    pub shared_ready: Vec<u64>,
    pub threads: Vec<ThreadTiming>,
}

/// A mutex-guarded free list of retired [`BlockBufs`]. One per [`Gpu`],
/// shared by every launch; the lock is taken once per worker per launch
/// (contexts are reused across replay blocks), so contention is nil.
///
/// [`Gpu`]: crate::exec::Gpu
#[derive(Debug, Default)]
pub(crate) struct BufPool {
    slots: Mutex<Vec<BlockBufs>>,
}

impl BufPool {
    /// Take a cleared buffer set sized for `shared_words` / `nthreads`,
    /// reusing a retired one when available.
    pub(crate) fn checkout(&self, shared_words: usize, nthreads: usize) -> BlockBufs {
        let mut b = self
            .slots
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop()
            .unwrap_or_default();
        // clear + resize rewrites every slot with the default value while
        // keeping whatever capacity the buffer already has.
        b.shared.clear();
        b.shared.resize(shared_words, 0.0);
        b.shared_ready.clear();
        b.shared_ready.resize(shared_words, 0);
        b.threads.clear();
        b.threads.resize(nthreads, ThreadTiming::default());
        b
    }

    /// Return a buffer set to the free list (dropped if the pool is full).
    pub(crate) fn restore(&self, bufs: BlockBufs) {
        let mut slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        if slots.len() < MAX_POOLED {
            slots.push(bufs);
        }
    }

    /// Number of retired buffer sets currently pooled (tests).
    #[cfg(test)]
    pub(crate) fn pooled(&self) -> usize {
        self.slots.lock().unwrap_or_else(|e| e.into_inner()).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_reuses_and_clears() {
        let pool = BufPool::default();
        let mut b = pool.checkout(8, 4);
        assert_eq!(b.shared.len(), 8);
        assert_eq!(b.threads.len(), 4);
        b.shared[3] = 7.0;
        b.shared_ready[3] = 9;
        b.threads[1].clock = 42;
        pool.restore(b);
        assert_eq!(pool.pooled(), 1);
        // Re-checkout at a different shape: cleared and resized.
        let b2 = pool.checkout(6, 2);
        assert_eq!(pool.pooled(), 0);
        assert_eq!(b2.shared, vec![0.0; 6]);
        assert_eq!(b2.shared_ready, vec![0; 6]);
        assert_eq!(b2.threads.len(), 2);
        assert_eq!(b2.threads[1].clock, 0);
    }

    #[test]
    fn pool_is_bounded() {
        let pool = BufPool::default();
        for _ in 0..(MAX_POOLED + 8) {
            pool.restore(BlockBufs::default());
        }
        assert_eq!(pool.pooled(), MAX_POOLED);
    }
}
