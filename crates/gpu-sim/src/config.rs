//! GPU configuration presets.
//!
//! The default configuration reproduces the NVIDIA Quadro 6000 (GF100) from
//! Table I of the paper, with the memory-system parameters of Tables II-IV
//! either taken directly (pipeline depth, shared-memory latency) or chosen so
//! that the microbenchmarks in `regla-microbench` reproduce the paper's
//! measured values (DRAM stream efficiency, synchronization cost curve).

/// Precision mode for reciprocal / square-root operations.
///
/// `Fast` models the GF100 SFU paths enabled by `--use_fast_math`: low
/// latency, results accurate to 22 mantissa bits (emulated by truncating the
/// low mantissa bits of the IEEE result). `Precise` models the full-precision
/// software sequences nvcc emits otherwise: correctly rounded results at a
/// much higher cycle cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum MathMode {
    #[default]
    Fast,
    Precise,
}

/// Static description of a simulated GPU.
///
/// All latencies and issue intervals are expressed in *hot-clock* cycles
/// (`core_clock_ghz`), matching how the paper reports cycle counts via the
/// CUDA `clock()` function.
#[derive(Clone, Debug)]
pub struct GpuConfig {
    pub name: &'static str,
    /// Number of streaming multiprocessors (SIMT units). GF100: 14.
    pub num_sms: usize,
    /// Single-precision FPUs per SM. GF100: 32.
    pub fpus_per_sm: usize,
    /// Threads per warp.
    pub warp_size: usize,
    /// Hot clock in GHz (FPU clock). Quadro 6000: 1.15.
    pub core_clock_ghz: f64,

    // ---- occupancy limits (CUDA compute capability 2.0) ----
    /// Architectural limit on registers per thread; accesses beyond this
    /// spill to L1 and then DRAM. GF100: 64 (the paper's number).
    pub max_regs_per_thread: usize,
    /// Register file capacity per SM in 32-bit words. GF100: 32768 (128 kB).
    pub regfile_words_per_sm: usize,
    /// Register allocation granularity in words (per-warp rounding).
    pub reg_alloc_granularity: usize,
    /// Usable shared memory per SM in bytes (48 kB of the 64 kB array).
    pub shared_bytes_per_sm: usize,
    /// L1 cache per SM in bytes (the other 16 kB); receives register spills.
    pub l1_bytes_per_sm: usize,
    /// L1 size when the kernel requests the prefer-L1 split (48 kB on
    /// GF100); used by spilling kernels with small shared footprints.
    pub prefer_l1_bytes_per_sm: usize,
    pub max_blocks_per_sm: usize,
    pub max_threads_per_sm: usize,
    pub max_threads_per_block: usize,

    // ---- pipeline ----
    /// FP pipeline depth: the paper's gamma = 18 cycles.
    pub alu_latency: u64,
    /// Shared-memory load-to-use latency: the paper's alpha_sh = 27 cycles.
    pub shared_latency: u64,
    /// L1 hit latency (register spills, local memory).
    pub l1_latency: u64,
    /// Penalty for touching shared memory through a generic (LD, not LDS)
    /// instruction on the unified address space; measured as ~14 cycles.
    pub unified_addr_penalty: u64,
    /// Issue interval of one warp FP instruction (32 FPUs -> 1 cycle).
    pub fp_issue_interval: u64,
    /// Issue interval of one warp LD/ST instruction (half-clock units -> 2).
    pub ldst_issue_interval: u64,
    /// Sustained-throughput derating of the LD/ST pipeline (arbitration
    /// and fetch bubbles): the paper measures 85.4% of theoretical shared
    /// bandwidth, i.e. a factor of ~1.17 on the issue interval.
    pub ldst_sustained_factor: f64,
    /// Issue interval of one warp SFU instruction (4 SFUs -> 8 cycles).
    pub sfu_issue_interval: u64,
    /// Whether an FP and a LD/ST instruction can be co-issued (two
    /// schedulers per GF100 SM).
    pub dual_issue: bool,

    // ---- special functions ----
    /// Latency of hardware reciprocal (fast math).
    pub fast_recip_latency: u64,
    /// Latency of hardware reciprocal square root / square root (fast math).
    pub fast_sqrt_latency: u64,
    /// Latency of the correctly-rounded software division sequence.
    pub precise_div_latency: u64,
    /// Latency of the correctly-rounded software square root sequence.
    pub precise_sqrt_latency: u64,
    /// Extra FP issue slots consumed by the precise sequences.
    pub precise_extra_issue: u64,

    // ---- synchronization ----
    /// `__syncthreads()` cost: `sync_base + sync_per_warp * warps` cycles.
    /// Fitted to Figure 2: 46 cycles at 64 threads, ~190 at 1024.
    pub sync_base: f64,
    pub sync_per_warp: f64,

    // ---- shared memory array ----
    pub shared_banks: usize,

    // ---- global memory ----
    /// Peak DRAM bandwidth in GB/s. Quadro 6000: 144 (384-bit * 3 GHz).
    pub dram_peak_gbs: f64,
    /// Fraction of peak achievable by a well-coalesced streaming kernel
    /// (command overhead, refresh, read/write turnaround). The paper
    /// measures 108/144 = 75%.
    pub dram_stream_efficiency: f64,
    /// Fraction of peak achieved by the driver's `cudaMemcpy` on-device
    /// copy path (chunking overhead). The paper measures 84/144 = 58.3%.
    pub memcpy_efficiency: f64,
    /// Memory transaction size in bytes (L2 line).
    pub dram_line_bytes: usize,
    pub l2_bytes: usize,
    pub l2_ways: usize,
    /// L2 hit latency for a dependent (pointer-chasing) load.
    pub l2_hit_latency: u64,
    /// DRAM latency with an open row (dependent load).
    pub dram_row_hit_latency: u64,
    /// DRAM latency with a row miss: the paper's alpha_glb = 570 cycles.
    pub dram_row_miss_latency: u64,
    /// DRAM row-buffer locality window in bytes.
    pub dram_row_bytes: usize,
    /// Extra cycles when the address walk misses the TLB.
    pub tlb_miss_penalty: u64,
    /// TLB reach: entries * page size.
    pub tlb_entries: usize,
    pub tlb_page_bytes: usize,

    // ---- PCIe (host link) ----
    pub pcie_gbs: f64,
    pub pcie_latency_us: f64,

    // ---- driver ----
    /// Fixed kernel-launch overhead in microseconds (driver + dispatch).
    /// This is what makes fine-grained CUBLAS-style approaches to small
    /// problems uncompetitive (Section VI-C).
    pub launch_overhead_us: f64,
    /// Kernels from different streams that the hardware can actually run
    /// concurrently for this launch pattern. GF100 nominally supports 16
    /// concurrent kernels, but small back-to-back launches serialize in
    /// the driver — the paper's "no benefit from using multiple streams".
    pub concurrent_kernels: usize,
    /// DMA copy engines available to asynchronous transfers. The paper's
    /// GF100 board exposes a single engine *and* serializes it against the
    /// compute queue in the driver, which is why the paper measures "no
    /// benefit from using multiple streams"; the stream timeline scheduler
    /// (see [`crate::stream`]) reproduces that: with fewer than two engines
    /// every command serializes in issue order. Tesla-class Fermi boards
    /// (and everything since) expose two engines — one per direction — and
    /// get the classic 3-stage copy/compute pipeline.
    pub copy_engines: usize,
}

impl GpuConfig {
    /// The NVIDIA Quadro 6000 (GF100) used throughout the paper (Table I).
    pub fn quadro_6000() -> Self {
        GpuConfig {
            name: "NVIDIA Quadro 6000 (GF100, simulated)",
            num_sms: 14,
            fpus_per_sm: 32,
            warp_size: 32,
            core_clock_ghz: 1.15,
            max_regs_per_thread: 64,
            regfile_words_per_sm: 32768,
            reg_alloc_granularity: 64,
            shared_bytes_per_sm: 48 * 1024,
            l1_bytes_per_sm: 16 * 1024,
            prefer_l1_bytes_per_sm: 48 * 1024,
            max_blocks_per_sm: 8,
            max_threads_per_sm: 1536,
            max_threads_per_block: 1024,
            alu_latency: 18,
            shared_latency: 27,
            l1_latency: 40,
            unified_addr_penalty: 14,
            fp_issue_interval: 1,
            ldst_issue_interval: 2,
            ldst_sustained_factor: 1.171,
            sfu_issue_interval: 8,
            dual_issue: true,
            fast_recip_latency: 28,
            fast_sqrt_latency: 32,
            precise_div_latency: 260,
            precise_sqrt_latency: 330,
            precise_extra_issue: 12,
            sync_base: 36.4,
            sync_per_warp: 4.8,
            shared_banks: 32,
            dram_peak_gbs: 144.0,
            dram_stream_efficiency: 0.75,
            memcpy_efficiency: 0.583,
            dram_line_bytes: 128,
            l2_bytes: 768 * 1024,
            l2_ways: 16,
            l2_hit_latency: 282,
            dram_row_hit_latency: 470,
            dram_row_miss_latency: 570,
            dram_row_bytes: 4096,
            tlb_miss_penalty: 58,
            tlb_entries: 64,
            tlb_page_bytes: 128 * 1024,
            pcie_gbs: 6.0,
            pcie_latency_us: 15.0,
            launch_overhead_us: 4.0,
            concurrent_kernels: 1,
            copy_engines: 1,
        }
    }

    /// The Quadro 6000 with the dual copy engines of the Tesla-class Fermi
    /// boards (C2050/C2070). Compute parameters are identical; only the
    /// host-link topology changes, so comparing this preset against
    /// [`GpuConfig::quadro_6000`] isolates exactly the copy/compute-overlap
    /// effect the stream scheduler models.
    pub fn quadro_6000_dual_copy() -> Self {
        GpuConfig {
            name: "NVIDIA Quadro 6000 (dual copy engines, simulated)",
            copy_engines: 2,
            ..Self::quadro_6000()
        }
    }

    /// Builder-style override of the copy-engine count.
    pub fn with_copy_engines(mut self, n: usize) -> Self {
        self.copy_engines = n;
        self
    }

    /// A G80-generation part (GeForce 8800 class), used only to cross-check
    /// the latency microbenchmark against Volkov's published 36-cycle
    /// shared-memory figure.
    pub fn g80() -> Self {
        GpuConfig {
            name: "NVIDIA G80 (simulated)",
            num_sms: 16,
            fpus_per_sm: 8,
            warp_size: 32,
            core_clock_ghz: 1.35,
            max_regs_per_thread: 128,
            regfile_words_per_sm: 8192,
            reg_alloc_granularity: 256,
            shared_bytes_per_sm: 16 * 1024,
            l1_bytes_per_sm: 0,
            prefer_l1_bytes_per_sm: 0,
            max_blocks_per_sm: 8,
            max_threads_per_sm: 768,
            max_threads_per_block: 512,
            alu_latency: 24,
            shared_latency: 36,
            l1_latency: 36,
            unified_addr_penalty: 0,
            fp_issue_interval: 4,
            ldst_issue_interval: 4,
            ldst_sustained_factor: 1.2,
            sfu_issue_interval: 16,
            dual_issue: false,
            fast_recip_latency: 28,
            fast_sqrt_latency: 36,
            precise_div_latency: 280,
            precise_sqrt_latency: 360,
            precise_extra_issue: 16,
            sync_base: 28.0,
            sync_per_warp: 4.0,
            shared_banks: 16,
            dram_peak_gbs: 86.4,
            dram_stream_efficiency: 0.78,
            memcpy_efficiency: 0.6,
            dram_line_bytes: 64,
            l2_bytes: 0,
            l2_ways: 1,
            l2_hit_latency: 350,
            dram_row_hit_latency: 420,
            dram_row_miss_latency: 510,
            dram_row_bytes: 2048,
            tlb_miss_penalty: 80,
            tlb_entries: 16,
            tlb_page_bytes: 64 * 1024,
            pcie_gbs: 3.0,
            pcie_latency_us: 15.0,
            launch_overhead_us: 8.0,
            concurrent_kernels: 1,
            copy_engines: 1,
        }
    }

    /// A GT200-generation part (GTX 280 class): the chip Wong et al.
    /// microbenchmarked, from which the paper takes its division and
    /// square-root cycle times. Useful for cross-generation studies.
    pub fn gt200() -> Self {
        GpuConfig {
            name: "NVIDIA GT200 (simulated)",
            num_sms: 30,
            fpus_per_sm: 8,
            warp_size: 32,
            core_clock_ghz: 1.296,
            max_regs_per_thread: 124,
            regfile_words_per_sm: 16384,
            reg_alloc_granularity: 512,
            shared_bytes_per_sm: 16 * 1024,
            l1_bytes_per_sm: 0,
            prefer_l1_bytes_per_sm: 0,
            max_blocks_per_sm: 8,
            max_threads_per_sm: 1024,
            max_threads_per_block: 512,
            alu_latency: 24,
            shared_latency: 38,
            l1_latency: 38,
            unified_addr_penalty: 0,
            fp_issue_interval: 4,
            ldst_issue_interval: 4,
            ldst_sustained_factor: 1.15,
            sfu_issue_interval: 16,
            dual_issue: true,
            fast_recip_latency: 28,
            fast_sqrt_latency: 32,
            precise_div_latency: 280,
            precise_sqrt_latency: 360,
            precise_extra_issue: 16,
            sync_base: 30.0,
            sync_per_warp: 4.0,
            shared_banks: 16,
            dram_peak_gbs: 141.7,
            dram_stream_efficiency: 0.77,
            memcpy_efficiency: 0.6,
            dram_line_bytes: 64,
            l2_bytes: 0,
            l2_ways: 1,
            l2_hit_latency: 340,
            dram_row_hit_latency: 440,
            dram_row_miss_latency: 540,
            dram_row_bytes: 2048,
            tlb_miss_penalty: 70,
            tlb_entries: 32,
            tlb_page_bytes: 64 * 1024,
            pcie_gbs: 5.0,
            pcie_latency_us: 15.0,
            launch_overhead_us: 6.0,
            concurrent_kernels: 1,
            copy_engines: 1,
        }
    }

    /// Synchronization barrier cost in cycles for a block of `threads`.
    pub fn sync_cycles(&self, threads: usize) -> u64 {
        let warps = threads.div_ceil(self.warp_size);
        (self.sync_base + self.sync_per_warp * warps as f64).round() as u64
    }

    /// Peak single-precision throughput in GFLOP/s (FMA counted as 2).
    pub fn peak_sp_gflops(&self) -> f64 {
        (self.num_sms * self.fpus_per_sm) as f64 * self.core_clock_ghz * 2.0
    }

    /// Theoretical peak shared-memory bandwidth of the whole chip in GB/s:
    /// each SM moves one 4-byte word per bank per two hot cycles.
    pub fn peak_shared_gbs(&self) -> f64 {
        self.num_sms as f64 * self.shared_banks as f64 * 4.0 * self.core_clock_ghz
            / self.ldst_issue_interval as f64
    }

    /// Convert a duration in hot-clock cycles to seconds.
    pub fn cycles_to_secs(&self, cycles: f64) -> f64 {
        cycles / (self.core_clock_ghz * 1e9)
    }

    /// Convert seconds to hot-clock cycles.
    pub fn secs_to_cycles(&self, secs: f64) -> f64 {
        secs * self.core_clock_ghz * 1e9
    }

    /// DRAM bandwidth achievable by a streaming kernel, in bytes per cycle.
    pub fn dram_stream_bytes_per_cycle(&self) -> f64 {
        self.dram_peak_gbs * self.dram_stream_efficiency / self.core_clock_ghz
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self::quadro_6000()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadro_peak_flops_matches_table_one() {
        let cfg = GpuConfig::quadro_6000();
        // Table I: 1.03 TFlop/s peak single precision.
        assert!((cfg.peak_sp_gflops() - 1030.4).abs() < 1.0);
    }

    #[test]
    fn quadro_peak_shared_bandwidth_matches_paper() {
        let cfg = GpuConfig::quadro_6000();
        // Section II-B1: theoretical peak 1030 GB/s from all shared memories.
        assert!((cfg.peak_shared_gbs() - 1030.4).abs() < 1.0);
    }

    #[test]
    fn sync_cost_matches_table_four() {
        let cfg = GpuConfig::quadro_6000();
        // Table IV: synchronization of 64 threads costs 46 cycles.
        assert_eq!(cfg.sync_cycles(64), 46);
    }

    #[test]
    fn sync_cost_grows_with_threads() {
        let cfg = GpuConfig::quadro_6000();
        let mut last = 0;
        for t in [32, 64, 128, 256, 512, 1024] {
            let c = cfg.sync_cycles(t);
            assert!(c > last, "sync cost must grow with thread count");
            last = c;
        }
        // Figure 2 tops out near ~190 cycles at 1024 threads.
        assert!((170..=210).contains(&cfg.sync_cycles(1024)));
    }

    #[test]
    fn cycle_time_round_trip() {
        let cfg = GpuConfig::quadro_6000();
        let s = cfg.cycles_to_secs(1.15e9);
        assert!((s - 1.0).abs() < 1e-12);
        assert!((cfg.secs_to_cycles(s) - 1.15e9).abs() < 1.0);
    }

    #[test]
    fn stream_bandwidth_is_108_gbs() {
        let cfg = GpuConfig::quadro_6000();
        let gbs = cfg.dram_stream_bytes_per_cycle() * cfg.core_clock_ghz;
        assert!((gbs - 108.0).abs() < 0.1);
    }
}
