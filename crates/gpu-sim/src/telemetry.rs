//! Process-wide simulator telemetry (aggregate compatibility shim).
//!
//! The benchmark harness runs many launches per experiment and wants one
//! wall-clock summary per experiment without threading a collector through
//! every call site, so `Gpu::launch` records into these process-wide atomic
//! counters and the harness snapshots/resets them around each experiment
//! (see `regla-bench`'s `bench_telemetry`). Counters are relaxed atomics:
//! launches from replay worker threads never overlap with launches from the
//! host thread, so ordering is irrelevant; atomicity just keeps the counts
//! exact if a harness ever launches from several host threads.
//!
//! These counters aggregate *host-side simulator cost* across the whole
//! process. For per-launch observability of the *simulated device* —
//! launch → wave → phase spans, memory counters, occupancy — attach a
//! [`crate::trace::Profiler`] to the launch config instead; this module
//! stays as the thin aggregate shim for harnesses that only need totals.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::Relaxed};

static LAUNCHES: AtomicU64 = AtomicU64::new(0);
static FUNC_BLOCKS: AtomicU64 = AtomicU64::new(0);
static WALL_NANOS: AtomicU64 = AtomicU64::new(0);
static LAST_THREADS: AtomicUsize = AtomicUsize::new(0);
static MAX_THREADS: AtomicUsize = AtomicUsize::new(0);
static FAULTS: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the simulator's host-side cost counters.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SimTelemetry {
    /// Kernel launches since the last reset.
    pub launches: u64,
    /// Blocks executed functionally on the host. Includes the traced
    /// block, which also produces real outputs — so timing-only launches
    /// (`ExecMode::Representative`) still count one block per launch and
    /// throughput trends stay visible for every experiment.
    pub functional_blocks: u64,
    /// Host wall-clock seconds spent inside `Gpu::launch`.
    pub wall_s: f64,
    /// Host threads used by the most recent launch's replay.
    pub last_host_threads: usize,
    /// Largest replay thread count seen since the last reset.
    pub max_host_threads: usize,
    /// Faults injected by configured fault plans (applied, not planned).
    pub faults_injected: u64,
}

impl SimTelemetry {
    /// Host-side functional replay throughput in blocks per second.
    pub fn blocks_per_sec(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.functional_blocks as f64 / self.wall_s
        } else {
            0.0
        }
    }
}

/// Called by `Gpu::launch` after each launch completes.
pub(crate) fn record_launch(
    wall_nanos: u64,
    functional_blocks: usize,
    host_threads: usize,
    faults: u64,
) {
    LAUNCHES.fetch_add(1, Relaxed);
    FUNC_BLOCKS.fetch_add(functional_blocks as u64, Relaxed);
    WALL_NANOS.fetch_add(wall_nanos, Relaxed);
    LAST_THREADS.store(host_threads, Relaxed);
    MAX_THREADS.fetch_max(host_threads, Relaxed);
    FAULTS.fetch_add(faults, Relaxed);
}

/// Read the counters without resetting them.
pub fn snapshot() -> SimTelemetry {
    SimTelemetry {
        launches: LAUNCHES.load(Relaxed),
        functional_blocks: FUNC_BLOCKS.load(Relaxed),
        wall_s: WALL_NANOS.load(Relaxed) as f64 * 1e-9,
        last_host_threads: LAST_THREADS.load(Relaxed),
        max_host_threads: MAX_THREADS.load(Relaxed),
        faults_injected: FAULTS.load(Relaxed),
    }
}

/// Read and reset the counters (one experiment's worth of launches).
pub fn take() -> SimTelemetry {
    SimTelemetry {
        launches: LAUNCHES.swap(0, Relaxed),
        functional_blocks: FUNC_BLOCKS.swap(0, Relaxed),
        wall_s: WALL_NANOS.swap(0, Relaxed) as f64 * 1e-9,
        last_host_threads: LAST_THREADS.swap(0, Relaxed),
        max_host_threads: MAX_THREADS.swap(0, Relaxed),
        faults_injected: FAULTS.swap(0, Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_reads_and_resets() {
        // Other tests in this process also launch kernels, so only check
        // relative behaviour: record, take >= what we recorded, then the
        // next snapshot starts over from what arrives afterwards.
        record_launch(1_000_000, 7, 4, 2);
        let t = take();
        assert!(t.launches >= 1);
        assert!(t.functional_blocks >= 7);
        assert!(t.wall_s >= 1e-3 - 1e-12);
        assert!(t.max_host_threads >= 4);
        assert!(t.blocks_per_sec() > 0.0);
    }
}
