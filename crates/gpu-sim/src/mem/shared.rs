//! Shared-memory bank-conflict and global-coalescing analysis.
//!
//! GF100 shared memory has 32 banks of 4-byte words. A warp access in which
//! two lanes touch *different* words in the same bank is replayed once per
//! extra word; lanes reading the *same* word are served by a broadcast and
//! are free. Global accesses by a warp are coalesced into 128-byte
//! transactions: the cost is the number of distinct 128-byte segments.

/// Number of shared-memory replays (beyond the first issue) needed to
/// service one warp access with the given per-lane word addresses.
///
/// Returns `degree - 1` where `degree` is the maximum number of distinct
/// words mapped to any single bank.
pub fn bank_conflict_replays(banks: usize, word_addrs: &[u32]) -> u32 {
    if word_addrs.len() <= 1 {
        return 0;
    }
    // Tiny fixed-size counting: banks <= 32 in practice.
    let mut per_bank: Vec<Vec<u32>> = vec![Vec::new(); banks];
    for &a in word_addrs {
        let b = (a as usize) % banks;
        if !per_bank[b].contains(&a) {
            per_bank[b].push(a);
        }
    }
    let degree = per_bank.iter().map(|v| v.len()).max().unwrap_or(1).max(1);
    (degree - 1) as u32
}

/// Number of 128-byte (or `line_bytes`) memory transactions needed for one
/// warp access with the given per-lane *byte* addresses.
pub fn coalesced_transactions(line_bytes: usize, byte_addrs: &[u64]) -> u32 {
    let mut lines: Vec<u64> = byte_addrs.iter().map(|a| a / line_bytes as u64).collect();
    lines.sort_unstable();
    lines.dedup();
    lines.len() as u32
}

/// The distinct memory lines touched by a set of byte addresses; used to
/// account DRAM traffic per phase with intra-block reuse deduplicated.
pub fn distinct_lines(line_bytes: usize, byte_addrs: impl IntoIterator<Item = u64>) -> Vec<u64> {
    let mut lines: Vec<u64> = byte_addrs
        .into_iter()
        .map(|a| a / line_bytes as u64)
        .collect();
    lines.sort_unstable();
    lines.dedup();
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_stride_has_no_conflicts() {
        let addrs: Vec<u32> = (0..32).collect();
        assert_eq!(bank_conflict_replays(32, &addrs), 0);
    }

    #[test]
    fn broadcast_is_free() {
        let addrs = [7u32; 32];
        assert_eq!(bank_conflict_replays(32, &addrs), 0);
    }

    #[test]
    fn stride_two_gives_two_way_conflict() {
        let addrs: Vec<u32> = (0..32).map(|i| i * 2).collect();
        assert_eq!(bank_conflict_replays(32, &addrs), 1);
    }

    #[test]
    fn stride_32_serialises_fully() {
        let addrs: Vec<u32> = (0..32).map(|i| i * 32).collect();
        assert_eq!(bank_conflict_replays(32, &addrs), 31);
    }

    #[test]
    fn mixed_broadcast_and_conflict() {
        // 16 lanes read word 0, 16 lanes read word 32 (same bank, two words).
        let mut addrs = vec![0u32; 16];
        addrs.extend(vec![32u32; 16]);
        assert_eq!(bank_conflict_replays(32, &addrs), 1);
    }

    #[test]
    fn coalesced_unit_stride_is_one_transaction() {
        let addrs: Vec<u64> = (0..32).map(|i| i * 4).collect();
        assert_eq!(coalesced_transactions(128, &addrs), 1);
    }

    #[test]
    fn strided_access_needs_many_transactions() {
        let addrs: Vec<u64> = (0..32).map(|i| i * 256).collect();
        assert_eq!(coalesced_transactions(128, &addrs), 32);
    }

    #[test]
    fn distinct_lines_dedups() {
        let lines = distinct_lines(128, [0u64, 4, 128, 130, 256]);
        assert_eq!(lines, vec![0, 1, 2]);
    }
}
