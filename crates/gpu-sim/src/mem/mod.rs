//! Memory subsystem: global DRAM, latency hierarchy, and access analysis.

pub mod global;
pub mod shared;
pub mod timing;

pub use global::{DPtr, GlobalMemory};
pub use timing::MemHier;
