//! Latency model for *dependent* global-memory accesses.
//!
//! This is the path exercised by pointer-chasing microbenchmarks (Figure 1
//! and Table III of the paper): a single in-flight access whose latency is
//! fully exposed. The model consults, in order, a set-associative L2, a
//! small TLB, and per-"row" DRAM row-buffer state. Bandwidth-bound kernel
//! traffic does not use this model; it is accounted with the stream
//! bandwidth model in `timing.rs`.

use crate::config::GpuConfig;

/// Set-associative LRU cache model (used for the L2).
pub struct CacheModel {
    sets: Vec<Vec<u64>>, // per set: line tags, most recent last
    ways: usize,
    line_bytes: u64,
    num_sets: u64,
}

impl CacheModel {
    pub fn new(capacity_bytes: usize, ways: usize, line_bytes: usize) -> Self {
        let ways = ways.max(1);
        let lines = (capacity_bytes / line_bytes).max(1);
        let num_sets = (lines / ways).max(1);
        CacheModel {
            sets: vec![Vec::with_capacity(ways); num_sets],
            ways,
            line_bytes: line_bytes as u64,
            num_sets: num_sets as u64,
        }
    }

    /// Access a byte address; returns true on hit. Misses fill the line.
    pub fn access(&mut self, byte_addr: u64) -> bool {
        let line = byte_addr / self.line_bytes;
        let set = (line % self.num_sets) as usize;
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|&t| t == line) {
            let tag = ways.remove(pos);
            ways.push(tag);
            true
        } else {
            if ways.len() == self.ways {
                ways.remove(0);
            }
            ways.push(line);
            false
        }
    }

    pub fn flush(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
    }
}

/// Fully-associative LRU TLB model.
pub struct TlbModel {
    entries: Vec<u64>,
    capacity: usize,
    page_bytes: u64,
}

impl TlbModel {
    pub fn new(entries: usize, page_bytes: usize) -> Self {
        TlbModel {
            entries: Vec::with_capacity(entries),
            capacity: entries.max(1),
            page_bytes: page_bytes as u64,
        }
    }

    pub fn access(&mut self, byte_addr: u64) -> bool {
        let page = byte_addr / self.page_bytes;
        if let Some(pos) = self.entries.iter().position(|&p| p == page) {
            let p = self.entries.remove(pos);
            self.entries.push(p);
            true
        } else {
            if self.entries.len() == self.capacity {
                self.entries.remove(0);
            }
            self.entries.push(page);
            false
        }
    }
}

/// DRAM row-buffer model: one open row per bank group, approximated by a
/// single locality window over the physical address space.
pub struct RowBufferModel {
    open_row: Option<u64>,
    row_bytes: u64,
}

impl RowBufferModel {
    pub fn new(row_bytes: usize) -> Self {
        RowBufferModel {
            open_row: None,
            row_bytes: row_bytes as u64,
        }
    }

    /// Returns true when the access hits the open row.
    pub fn access(&mut self, byte_addr: u64) -> bool {
        let row = byte_addr / self.row_bytes;
        let hit = self.open_row == Some(row);
        self.open_row = Some(row);
        hit
    }
}

/// The composed latency hierarchy for dependent loads.
pub struct MemHier {
    pub l2: CacheModel,
    pub tlb: TlbModel,
    pub row: RowBufferModel,
    l2_hit: u64,
    row_hit: u64,
    row_miss: u64,
    tlb_penalty: u64,
}

impl MemHier {
    pub fn new(cfg: &GpuConfig) -> Self {
        MemHier {
            l2: CacheModel::new(cfg.l2_bytes, cfg.l2_ways, cfg.dram_line_bytes),
            tlb: TlbModel::new(cfg.tlb_entries, cfg.tlb_page_bytes),
            row: RowBufferModel::new(cfg.dram_row_bytes),
            l2_hit: cfg.l2_hit_latency,
            row_hit: cfg.dram_row_hit_latency,
            row_miss: cfg.dram_row_miss_latency,
            tlb_penalty: cfg.tlb_miss_penalty,
        }
    }

    /// Latency in hot-clock cycles of one dependent load at `byte_addr`.
    pub fn load_latency(&mut self, byte_addr: u64) -> u64 {
        let tlb_hit = self.tlb.access(byte_addr);
        let tlb_extra = if tlb_hit { 0 } else { self.tlb_penalty };
        if self.l2.access(byte_addr) {
            self.l2_hit + tlb_extra
        } else if self.row.access(byte_addr) {
            self.row_hit + tlb_extra
        } else {
            self.row_miss + tlb_extra
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_hits_after_fill() {
        let mut c = CacheModel::new(1024, 2, 64);
        assert!(!c.access(0));
        assert!(c.access(4)); // same 64B line
        assert!(!c.access(64));
    }

    #[test]
    fn cache_lru_eviction_within_set() {
        // 2 ways, 2 sets of 64B lines => lines 0,2,4 map to set 0.
        let mut c = CacheModel::new(256, 2, 64);
        assert!(!c.access(0));
        assert!(!c.access(128));
        assert!(!c.access(256)); // evicts line 0
        assert!(!c.access(0)); // line 0 gone
        assert!(c.access(256)); // line 256 survived as MRU
    }

    #[test]
    fn tlb_tracks_pages_lru() {
        let mut t = TlbModel::new(2, 4096);
        assert!(!t.access(0));
        assert!(!t.access(4096));
        assert!(t.access(100)); // page 0 still resident
        assert!(!t.access(8192)); // evicts page 1 (LRU)
        assert!(!t.access(4096));
    }

    #[test]
    fn row_buffer_hits_within_row() {
        let mut r = RowBufferModel::new(4096);
        assert!(!r.access(0));
        assert!(r.access(4095));
        assert!(!r.access(4096));
        assert!(!r.access(0)); // row was closed
    }

    #[test]
    fn hierarchy_latency_ordering() {
        let cfg = GpuConfig::quadro_6000();
        let mut h = MemHier::new(&cfg);
        let miss = h.load_latency(0);
        let l2hit = h.load_latency(4);
        assert!(miss > l2hit, "cold miss {miss} should exceed L2 hit {l2hit}");
        assert_eq!(l2hit, cfg.l2_hit_latency);
    }

    #[test]
    fn large_stride_walk_approaches_alpha_glb() {
        // Walking far beyond row and TLB reach must expose the full
        // row-miss + TLB-miss latency (Table III's 570-cycle class).
        let cfg = GpuConfig::quadro_6000();
        let mut h = MemHier::new(&cfg);
        let stride: u64 = 8 * 1024 * 1024; // 8 MB in bytes
        let mut total = 0u64;
        let n = 64;
        for i in 0..n {
            total += h.load_latency((i * stride) % (1 << 30));
        }
        let avg = total / n;
        assert!(
            avg >= cfg.dram_row_miss_latency,
            "avg {avg} below row-miss latency"
        );
    }
}
