//! Simulated device global memory (DRAM).
//!
//! Global memory is a flat, word-addressed (32-bit) array with a bump
//! allocator. Functional accesses simply read/write the backing vector;
//! timing is accounted separately by the launch machinery, which asks each
//! traced block for the set of distinct 128-byte lines it touched per phase
//! (in-flight request coalescing plus the 768 kB L2 make intra-block line
//! reuse effectively free on GF100, which is how the paper's 2D-cyclic
//! gather sustains >90 GB/s despite non-contiguous accesses).

/// An opaque device pointer: a word offset into [`GlobalMemory`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DPtr(pub(crate) usize);

impl DPtr {
    /// A pointer to an absolute word offset (mostly for tests; real code
    /// gets pointers from [`GlobalMemory::alloc`]).
    pub fn new(word: usize) -> DPtr {
        DPtr(word)
    }

    /// Pointer arithmetic in 32-bit words, like `d_A + offset` in CUDA.
    pub fn offset(self, words: usize) -> DPtr {
        DPtr(self.0 + words)
    }

    /// Byte address of the first word (for coalescing analysis).
    pub fn byte_addr(self) -> u64 {
        (self.0 as u64) * 4
    }

    /// Word index inside the flat device memory.
    pub fn word(self) -> usize {
        self.0
    }
}

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Flat simulated DRAM with a bump allocator.
pub struct GlobalMemory {
    data: Vec<f32>,
    next: usize,
    /// One bit per word: has the word ever been written (by the host or a
    /// kernel)? Seeds the sanitizer's initcheck; never read otherwise.
    init: Vec<AtomicU64>,
    /// Bump-allocation extents `(start, len)`, in allocation order. The
    /// sanitizer uses these for alignment/straddle checks on complex
    /// accesses.
    allocs: Vec<(usize, usize)>,
}

/// How a block context reaches device memory: exclusively (traced block,
/// sequential replay) or through a shared worker view (parallel replay).
///
/// Kernels never see this type; they go through `ThreadCtx::gload` /
/// `gstore`, which delegate here. Keeping the enum `pub(crate)` is what
/// lets the parallel path exist without any `unsafe` or raw-pointer type
/// leaking into the public API: `Gpu::launch` still takes
/// `&mut GlobalMemory`, and every aliased access is confined to
/// [`WorkerGmem`] below.
pub(crate) enum GmemAccess<'m> {
    /// Exclusive access through the normal borrow-checked path.
    Excl(&'m mut GlobalMemory),
    /// One replay worker's handle onto memory shared across workers.
    Worker(WorkerGmem<'m>),
}

impl GmemAccess<'_> {
    #[inline]
    pub(crate) fn read(&self, p: DPtr, idx: usize) -> f32 {
        match self {
            GmemAccess::Excl(g) => g.read(p, idx),
            GmemAccess::Worker(w) => w.read(p.0 + idx),
        }
    }

    #[inline]
    pub(crate) fn write(&mut self, p: DPtr, idx: usize, v: f32) {
        match self {
            GmemAccess::Excl(g) => g.write(p, idx, v),
            GmemAccess::Worker(w) => w.write(p.0 + idx, v),
        }
    }

    /// Inform the disjoint-write checker which block now owns this context
    /// (no-op for exclusive access).
    pub(crate) fn set_block(&mut self, block_id: usize) {
        if let GmemAccess::Worker(w) = self {
            w.block_id = block_id as u32 + 1;
        }
    }

    /// Read `len` consecutive words starting at `p + idx`, handing each
    /// `(offset, value)` to `f`. One access-path dispatch and one bounds
    /// check cover the whole span, instead of one of each per word.
    #[inline]
    pub(crate) fn read_span(&self, p: DPtr, idx: usize, len: usize, mut f: impl FnMut(usize, f32)) {
        match self {
            GmemAccess::Excl(g) => {
                for (k, &v) in g.slice(p.offset(idx), len).iter().enumerate() {
                    f(k, v);
                }
            }
            GmemAccess::Worker(w) => {
                let base = p.0 + idx;
                let words = &w.words[base..base + len];
                for (k, word) in words.iter().enumerate() {
                    f(k, f32::from_bits(word.load(Ordering::Relaxed)));
                }
            }
        }
    }

    /// Write `len` consecutive words starting at `p + idx`, pulling word
    /// `k` from `f(k)`. Keeps the disjoint-write checker and the
    /// initialization bitmap exactly as word-at-a-time stores would.
    #[inline]
    pub(crate) fn write_span(
        &mut self,
        p: DPtr,
        idx: usize,
        len: usize,
        mut f: impl FnMut(usize) -> f32,
    ) {
        match self {
            GmemAccess::Excl(g) => {
                for (k, d) in g.slice_mut(p.offset(idx), len).iter_mut().enumerate() {
                    *d = f(k);
                }
            }
            GmemAccess::Worker(w) => {
                let base = p.0 + idx;
                for k in 0..len {
                    w.write(base + k, f(k));
                }
            }
        }
    }
}

/// Device memory re-viewed as shared atomic words for the parallel
/// functional replay, plus the optional disjoint-write checker state.
///
/// Constructed from `&mut GlobalMemory` by [`GlobalMemory::share`], so for
/// its whole lifetime no other alias of the backing storage exists; every
/// access from every worker goes through the `AtomicU32` slice below.
pub(crate) struct SharedGmem<'m> {
    words: &'m [AtomicU32],
    /// Disjoint-write checker: `owners[w]` holds `block_id + 1` of the
    /// first block that stored to word `w` during this replay (0 = clean).
    owners: Option<Vec<AtomicU32>>,
    /// Initialization bitmap to stamp on kernel stores (sanitized launches
    /// only, so later launches see this launch's writes as initialized).
    init: Option<&'m [AtomicU64]>,
}

impl GlobalMemory {
    /// Re-view the device memory for a parallel replay section. With
    /// `check_writes`, a full-size owner table is allocated and every
    /// store is checked for cross-block overlap (debug builds and
    /// `REGLA_SIM_CHECK=1` runs).
    pub(crate) fn share(&mut self, check_writes: bool, track_init: bool) -> SharedGmem<'_> {
        let owners = check_writes
            .then(|| (0..self.data.len()).map(|_| AtomicU32::new(0)).collect());
        let init = track_init.then_some(self.init.as_slice());
        // SAFETY: `AtomicU32` has the same size and alignment as `f32`
        // (both 4-byte plain words), and we hold `&mut self`, so re-typing
        // the unique slice as shared atomics is sound. All aliased access
        // for the lifetime of the returned view goes through these atomics
        // (relaxed loads/stores — plain MOVs on x86), so even a kernel
        // that violated the per-problem write discipline could cause a
        // wrong *value*, never undefined behaviour.
        let words = unsafe {
            &*(self.data.as_mut_slice() as *mut [f32] as *const [AtomicU32])
        };
        SharedGmem { words, owners, init }
    }
}

impl<'m> SharedGmem<'m> {
    /// Hand out one worker's view, initially owned by `block_id`.
    pub(crate) fn worker(&'m self, block_id: usize) -> WorkerGmem<'m> {
        WorkerGmem {
            words: self.words,
            owners: self.owners.as_deref(),
            init: self.init,
            block_id: block_id as u32 + 1,
        }
    }
}

/// One replay worker's view of device memory: shared reads, per-block
/// disjoint writes.
///
/// # Safety argument
///
/// Workers replay *functional* blocks of a batched kernel. Each simulated
/// block reads its own per-problem input slab (written before the launch
/// or by the same block) plus launch-constant data, and writes only its
/// own per-problem output slab — the same invariant the real GPU kernels
/// rely on for correctness, since CUDA blocks run concurrently without
/// ordering. Because all access goes through relaxed atomics, a kernel
/// that broke the invariant could produce a nondeterministic value but
/// not a data race in the UB sense; the owner-table checker (debug builds,
/// `REGLA_SIM_CHECK=1`) additionally panics on any cross-block write
/// overlap, turning silent nondeterminism into a loud failure.
pub(crate) struct WorkerGmem<'m> {
    words: &'m [AtomicU32],
    owners: Option<&'m [AtomicU32]>,
    init: Option<&'m [AtomicU64]>,
    /// Owner tag (`block_id + 1`) stamped on every word this view writes.
    pub(crate) block_id: u32,
}

impl WorkerGmem<'_> {
    #[inline]
    pub(crate) fn read(&self, word: usize) -> f32 {
        f32::from_bits(self.words[word].load(Ordering::Relaxed))
    }

    #[inline]
    pub(crate) fn write(&mut self, word: usize, v: f32) {
        if let Some(owners) = self.owners {
            let prev = owners[word].swap(self.block_id, Ordering::Relaxed);
            assert!(
                prev == 0 || prev == self.block_id,
                "cross-block write overlap at device word {word}: block {} \
                 stored over block {}'s output — batched kernels must write \
                 disjoint per-problem slabs for the parallel replay to be \
                 deterministic",
                self.block_id - 1,
                prev - 1,
            );
        }
        if let Some(init) = self.init {
            init[word / 64].fetch_or(1 << (word % 64), Ordering::Relaxed);
        }
        self.words[word].store(v.to_bits(), Ordering::Relaxed);
    }
}

impl GlobalMemory {
    /// Create a device memory of `words` 32-bit words (zero initialised —
    /// though the sanitizer's initcheck still treats never-written words
    /// as uninitialized, matching real `cudaMalloc` semantics).
    pub fn new(words: usize) -> Self {
        GlobalMemory {
            data: vec![0.0; words],
            next: 0,
            init: (0..words.div_ceil(64)).map(|_| AtomicU64::new(0)).collect(),
            allocs: Vec::new(),
        }
    }

    /// Create a device with the given capacity in bytes.
    pub fn with_bytes(bytes: usize) -> Self {
        Self::new(bytes / 4)
    }

    /// Allocate `words` words; panics when the device is out of memory
    /// (allocation failures are programming errors in this simulator).
    pub fn alloc(&mut self, words: usize) -> DPtr {
        assert!(
            self.next + words <= self.data.len(),
            "device out of memory: requested {words} words, {} free",
            self.data.len() - self.next
        );
        let p = DPtr(self.next);
        self.allocs.push((self.next, words));
        self.next += words;
        p
    }

    /// Release everything allocated so far (contents are kept, and so are
    /// the initialization bits — the words still hold their old values).
    pub fn reset_allocator(&mut self) {
        self.next = 0;
        self.allocs.clear();
    }

    /// Words currently allocated.
    pub fn allocated_words(&self) -> usize {
        self.next
    }

    /// Total capacity in words.
    pub fn capacity_words(&self) -> usize {
        self.data.len()
    }

    /// Functional word read.
    #[inline]
    pub fn read(&self, p: DPtr, idx: usize) -> f32 {
        self.data[p.0 + idx]
    }

    /// Functional word write.
    #[inline]
    pub fn write(&mut self, p: DPtr, idx: usize, v: f32) {
        let w = p.0 + idx;
        self.data[w] = v;
        *self.init[w / 64].get_mut() |= 1 << (w % 64);
    }

    /// Host-to-device copy (functional; PCIe timing is modelled in `host`).
    pub fn h2d(&mut self, p: DPtr, src: &[f32]) {
        self.data[p.0..p.0 + src.len()].copy_from_slice(src);
        self.mark_init(p.0, src.len());
    }

    /// Device-to-host copy.
    pub fn d2h(&self, p: DPtr, dst: &mut [f32]) {
        dst.copy_from_slice(&self.data[p.0..p.0 + dst.len()]);
    }

    /// Borrow a device range as a slice (testing convenience).
    pub fn slice(&self, p: DPtr, len: usize) -> &[f32] {
        &self.data[p.0..p.0 + len]
    }

    /// Borrow a device range mutably (testing convenience). The whole
    /// range counts as host-initialized for the sanitizer.
    pub fn slice_mut(&mut self, p: DPtr, len: usize) -> &mut [f32] {
        self.mark_init(p.0, len);
        &mut self.data[p.0..p.0 + len]
    }

    fn mark_init(&mut self, start: usize, len: usize) {
        for w in start..start + len {
            *self.init[w / 64].get_mut() |= 1 << (w % 64);
        }
    }

    /// Snapshot of the initialization bitmap (one bit per word), taken by
    /// the sanitizer at launch start.
    pub(crate) fn init_snapshot(&self) -> Vec<u64> {
        self.init.iter().map(|b| b.load(Ordering::Relaxed)).collect()
    }

    /// Copy of the bump-allocation extents `(start, len)`.
    pub(crate) fn alloc_table(&self) -> Vec<(usize, usize)> {
        self.allocs.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_bump_and_word_addressed() {
        let mut m = GlobalMemory::with_bytes(4096);
        let a = m.alloc(16);
        let b = m.alloc(8);
        assert_eq!(a.word(), 0);
        assert_eq!(b.word(), 16);
        assert_eq!(b.byte_addr(), 64);
        assert_eq!(m.allocated_words(), 24);
    }

    #[test]
    fn h2d_d2h_round_trip() {
        let mut m = GlobalMemory::new(64);
        let p = m.alloc(4);
        m.h2d(p, &[1.0, 2.0, 3.0, 4.0]);
        let mut out = [0.0f32; 4];
        m.d2h(p, &mut out);
        assert_eq!(out, [1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn pointer_offset_reads_through() {
        let mut m = GlobalMemory::new(64);
        let p = m.alloc(8);
        m.write(p, 5, 9.5);
        assert_eq!(m.read(p.offset(5), 0), 9.5);
    }

    #[test]
    #[should_panic(expected = "device out of memory")]
    fn alloc_past_capacity_panics() {
        let mut m = GlobalMemory::new(8);
        m.alloc(9);
    }

    #[test]
    fn reset_allocator_reuses_space() {
        let mut m = GlobalMemory::new(8);
        m.alloc(8);
        m.reset_allocator();
        let p = m.alloc(8);
        assert_eq!(p.word(), 0);
    }
}
