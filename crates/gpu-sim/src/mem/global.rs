//! Simulated device global memory (DRAM).
//!
//! Global memory is a flat, word-addressed (32-bit) array with a bump
//! allocator. Functional accesses simply read/write the backing vector;
//! timing is accounted separately by the launch machinery, which asks each
//! traced block for the set of distinct 128-byte lines it touched per phase
//! (in-flight request coalescing plus the 768 kB L2 make intra-block line
//! reuse effectively free on GF100, which is how the paper's 2D-cyclic
//! gather sustains >90 GB/s despite non-contiguous accesses).

/// An opaque device pointer: a word offset into [`GlobalMemory`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DPtr(pub(crate) usize);

impl DPtr {
    /// A pointer to an absolute word offset (mostly for tests; real code
    /// gets pointers from [`GlobalMemory::alloc`]).
    pub fn new(word: usize) -> DPtr {
        DPtr(word)
    }

    /// Pointer arithmetic in 32-bit words, like `d_A + offset` in CUDA.
    pub fn offset(self, words: usize) -> DPtr {
        DPtr(self.0 + words)
    }

    /// Byte address of the first word (for coalescing analysis).
    pub fn byte_addr(self) -> u64 {
        (self.0 as u64) * 4
    }

    /// Word index inside the flat device memory.
    pub fn word(self) -> usize {
        self.0
    }
}

/// Flat simulated DRAM with a bump allocator.
pub struct GlobalMemory {
    data: Vec<f32>,
    next: usize,
}

impl GlobalMemory {
    /// Create a device memory of `words` 32-bit words (zero initialised).
    pub fn new(words: usize) -> Self {
        GlobalMemory {
            data: vec![0.0; words],
            next: 0,
        }
    }

    /// Create a device with the given capacity in bytes.
    pub fn with_bytes(bytes: usize) -> Self {
        Self::new(bytes / 4)
    }

    /// Allocate `words` words; panics when the device is out of memory
    /// (allocation failures are programming errors in this simulator).
    pub fn alloc(&mut self, words: usize) -> DPtr {
        assert!(
            self.next + words <= self.data.len(),
            "device out of memory: requested {words} words, {} free",
            self.data.len() - self.next
        );
        let p = DPtr(self.next);
        self.next += words;
        p
    }

    /// Release everything allocated so far (contents are kept).
    pub fn reset_allocator(&mut self) {
        self.next = 0;
    }

    /// Words currently allocated.
    pub fn allocated_words(&self) -> usize {
        self.next
    }

    /// Total capacity in words.
    pub fn capacity_words(&self) -> usize {
        self.data.len()
    }

    /// Functional word read.
    #[inline]
    pub fn read(&self, p: DPtr, idx: usize) -> f32 {
        self.data[p.0 + idx]
    }

    /// Functional word write.
    #[inline]
    pub fn write(&mut self, p: DPtr, idx: usize, v: f32) {
        self.data[p.0 + idx] = v;
    }

    /// Host-to-device copy (functional; PCIe timing is modelled in `host`).
    pub fn h2d(&mut self, p: DPtr, src: &[f32]) {
        self.data[p.0..p.0 + src.len()].copy_from_slice(src);
    }

    /// Device-to-host copy.
    pub fn d2h(&self, p: DPtr, dst: &mut [f32]) {
        dst.copy_from_slice(&self.data[p.0..p.0 + dst.len()]);
    }

    /// Borrow a device range as a slice (testing convenience).
    pub fn slice(&self, p: DPtr, len: usize) -> &[f32] {
        &self.data[p.0..p.0 + len]
    }

    /// Borrow a device range mutably (testing convenience).
    pub fn slice_mut(&mut self, p: DPtr, len: usize) -> &mut [f32] {
        &mut self.data[p.0..p.0 + len]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_bump_and_word_addressed() {
        let mut m = GlobalMemory::with_bytes(4096);
        let a = m.alloc(16);
        let b = m.alloc(8);
        assert_eq!(a.word(), 0);
        assert_eq!(b.word(), 16);
        assert_eq!(b.byte_addr(), 64);
        assert_eq!(m.allocated_words(), 24);
    }

    #[test]
    fn h2d_d2h_round_trip() {
        let mut m = GlobalMemory::new(64);
        let p = m.alloc(4);
        m.h2d(p, &[1.0, 2.0, 3.0, 4.0]);
        let mut out = [0.0f32; 4];
        m.d2h(p, &mut out);
        assert_eq!(out, [1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn pointer_offset_reads_through() {
        let mut m = GlobalMemory::new(64);
        let p = m.alloc(8);
        m.write(p, 5, 9.5);
        assert_eq!(m.read(p.offset(5), 0), 9.5);
    }

    #[test]
    #[should_panic(expected = "device out of memory")]
    fn alloc_past_capacity_panics() {
        let mut m = GlobalMemory::new(8);
        m.alloc(9);
    }

    #[test]
    fn reset_allocator_reuses_space() {
        let mut m = GlobalMemory::new(8);
        m.alloc(8);
        m.reset_allocator();
        let p = m.alloc(8);
        assert_eq!(p.word(), 0);
    }
}
