//! # regla-gpu-sim — a cycle-approximate SIMT GPU simulator
//!
//! The substrate for reproducing *"A Predictive Model for Solving Small
//! Linear Algebra Problems in GPU Registers"* (IPPS 2012) without GPU
//! hardware. It models a GF100-class device (the paper's NVIDIA Quadro
//! 6000) at the granularity the paper's analysis operates on:
//!
//! * **Parallelism hierarchy** — thread blocks over SMs with a CUDA
//!   occupancy calculator, warps of 32 threads, `__syncthreads()` with the
//!   thread-count-dependent cost of Figure 2.
//! * **Inverted memory hierarchy** — per-thread register arrays (with
//!   spill-to-L1/DRAM beyond 64 registers), 32-bank shared memory with
//!   conflict replays, an L2 + row-buffer + TLB latency hierarchy for
//!   dependent loads, and a stream-efficiency DRAM bandwidth model.
//! * **Pipeline** — an in-order scoreboard per thread: 18-cycle FP latency
//!   (the paper's γ), dual-issue FP/LDST, SFU reciprocal and square root
//!   with 22-mantissa-bit fast-math emulation.
//!
//! Kernels are plain Rust closures over [`exec::block::BlockCtx`]; they
//! compute real results (the simulator is functional) while the traced
//! block's operation stream drives the timing model.
//!
//! ```
//! use regla_gpu_sim::{Gpu, GlobalMemory, LaunchConfig};
//!
//! let gpu = Gpu::quadro_6000();
//! let mut mem = GlobalMemory::with_bytes(1 << 16);
//! let buf = mem.alloc(64);
//! let kernel = move |blk: &mut regla_gpu_sim::BlockCtx| {
//!     blk.for_each(|t| {
//!         let x = t.lit(t.tid as f32);
//!         let y = t.fma(x, x, x);
//!         t.gstore(buf, t.tid, y);
//!     });
//! };
//! let stats = gpu
//!     .launch(&kernel, &LaunchConfig::new(1, 64).regs(8), &mut mem)
//!     .unwrap();
//! assert_eq!(mem.read(buf, 3), 12.0);
//! assert!(stats.gflops() > 0.0);
//! ```
//!
//! Launches validate their configuration against the device limits and
//! return [`LaunchError`] instead of panicking; a seeded [`FaultPlan`] on
//! the launch config injects deterministic bit flips / block aborts for
//! resilience testing (see the `fault` module).

pub mod config;
pub mod error;
pub mod exec;
pub mod fault;
pub mod host;
pub mod mem;
pub mod sanitize;
pub mod stream;
pub mod telemetry;
pub mod timing;
pub mod trace;

pub use config::{GpuConfig, MathMode};
pub use error::LaunchError;
pub use exec::block::BlockCtx;
pub use exec::occupancy::{occupancy, OccLimiter, Occupancy};
pub use exec::thread::{trunc22, CRv, RegArray, RegVal, Rv, ThreadCtx};
pub use exec::{env_flag, BlockKernel, ExecMode, Gpu, LaunchConfig};
pub use fault::{FaultKind, FaultPlan, FaultRecord};
pub use host::{cuda_memcpy_gbs, cuda_memcpy_secs, PcieModel};
pub use mem::{DPtr, GlobalMemory, MemHier};
pub use sanitize::{Finding, MemSpace, SanitizerCheck, SanitizerMode, SanitizerReport};
pub use stream::{
    CmdKind, CommandSpan, Event, Stream, StreamWatchdogReport, Timeline, TimelineReport,
};
pub use telemetry::SimTelemetry;
pub use timing::{LaunchStats, PhaseBound, PhaseRecord, PhaseTime};
pub use trace::{
    chrome_trace_json, validate_chrome_trace, ChromeTraceSummary, LaunchTrace, PhaseSpan,
    Profiler, SpanCounters, TraceSink, WaveSpan,
};
