//! Per-launch hierarchical tracing: launch → wave → phase spans.
//!
//! The process-wide counters in [`crate::telemetry`] answer "how much did
//! the simulator cost this experiment"; they cannot say *where* a QR launch
//! spends its simulated cycles, nor where the analytic model diverges from
//! the simulation. This module records that structure per launch: a
//! [`Profiler`] attached to a [`crate::LaunchConfig`] collects one
//! [`LaunchTrace`] per launch, each holding the wave schedule and, per
//! wave, the phase spans with their binding constraint and memory counters
//! (bank-conflict replays, coalesced transactions, distinct DRAM line
//! bytes, spill traffic) taken from the traced block's [`PhaseRecord`]s.
//!
//! Everything recorded here is a pure function of *simulated* quantities —
//! cycles, counters, occupancy — never host wall-clock, so traces are
//! bit-identical across replay thread counts and across reruns.
//!
//! Two consumers are supported:
//!
//! * [`Profiler::chrome_trace_json`] renders the spans as a Chrome-trace
//!   JSON document loadable in `chrome://tracing` or Perfetto (one process
//!   per launch, one thread row per wave, complete "X" events per phase);
//! * `regla-core`'s `profile` module joins the phase spans against the
//!   analytic model's per-phase estimates to report predicted-vs-simulated
//!   cycle discrepancy.

use crate::config::GpuConfig;
use crate::timing::{phase_time, LaunchStats, PhaseBound};
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// Memory and work counters of one span (per-wave totals: the traced
/// block's per-block counters scaled by the blocks in the wave).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanCounters {
    /// Thread-level FLOPs.
    pub flops: u64,
    /// Thread-level shared-memory accesses.
    pub shared_accesses: u64,
    /// Bank-conflict replays.
    pub conflict_replays: u64,
    /// Coalesced global-memory transactions.
    pub global_transactions: u64,
    /// Distinct DRAM lines touched, in bytes (true DRAM traffic).
    pub global_line_bytes: u64,
    /// DRAM traffic from register spills past the L1.
    pub spill_dram_bytes: u64,
}

impl SpanCounters {
    fn accumulate(&mut self, other: &SpanCounters) {
        self.flops += other.flops;
        self.shared_accesses += other.shared_accesses;
        self.conflict_replays += other.conflict_replays;
        self.global_transactions += other.global_transactions;
        self.global_line_bytes += other.global_line_bytes;
        self.spill_dram_bytes += other.spill_dram_bytes;
    }
}

/// One phase (sync-delimited section) of one wave: a leaf span.
#[derive(Clone, Debug)]
pub struct PhaseSpan {
    pub label: String,
    /// Start cycle relative to the launch start.
    pub start_cycle: f64,
    pub end_cycle: f64,
    /// What bound the phase's duration for this wave.
    pub bound: PhaseBound,
    pub counters: SpanCounters,
}

impl PhaseSpan {
    pub fn cycles(&self) -> f64 {
        self.end_cycle - self.start_cycle
    }
}

/// One wave of co-resident blocks sweeping through the kernel.
#[derive(Clone, Debug)]
pub struct WaveSpan {
    /// Wave index within the launch (0-based).
    pub index: usize,
    /// Blocks executing in this wave (the last wave may be partial).
    pub blocks: usize,
    pub start_cycle: f64,
    pub end_cycle: f64,
    pub phases: Vec<PhaseSpan>,
}

/// The root span of one kernel launch.
#[derive(Clone, Debug)]
pub struct LaunchTrace {
    /// Kernel name from [`crate::LaunchConfig::name`].
    pub name: String,
    pub grid_blocks: usize,
    pub threads_per_block: usize,
    /// Blocks co-resident per SM (the occupancy result).
    pub blocks_per_sm: usize,
    /// Fraction of the SM's maximum resident threads occupied.
    pub occupancy_fraction: f64,
    pub regs_per_thread: usize,
    pub regs_spilled: usize,
    /// Start cycle on the profiler's launch timeline (launches recorded by
    /// one profiler are laid end to end).
    pub start_cycle: f64,
    /// Total launch duration in hot-clock cycles (matches
    /// [`LaunchStats::cycles`]).
    pub cycles: f64,
    pub clock_ghz: f64,
    pub waves: Vec<WaveSpan>,
}

impl LaunchTrace {
    /// Sum of all phase-span durations across every wave. Equals
    /// [`Self::cycles`] up to floating-point associativity.
    pub fn span_cycle_total(&self) -> f64 {
        self.waves
            .iter()
            .flat_map(|w| w.phases.iter())
            .map(|p| p.cycles())
            .sum()
    }

    /// Aggregate span cycles and counters by phase label (summed across
    /// waves), in first-appearance order.
    pub fn phase_totals(&self) -> Vec<(String, f64, SpanCounters)> {
        let mut order: Vec<String> = Vec::new();
        let mut cycles: Vec<f64> = Vec::new();
        let mut counters: Vec<SpanCounters> = Vec::new();
        for w in &self.waves {
            for p in &w.phases {
                match order.iter().position(|l| *l == p.label) {
                    Some(i) => {
                        cycles[i] += p.cycles();
                        counters[i].accumulate(&p.counters);
                    }
                    None => {
                        order.push(p.label.clone());
                        cycles.push(p.cycles());
                        counters.push(p.counters);
                    }
                }
            }
        }
        order
            .into_iter()
            .zip(cycles)
            .zip(counters)
            .map(|((l, c), k)| (l, c, k))
            .collect()
    }
}

/// Build the hierarchical trace of one launch from its combined statistics.
///
/// Full waves reuse the wave-level [`crate::timing::PhaseTime`]s already in
/// the stats; a trailing partial wave is re-derived for its actual block
/// count (fewer blocks can shift a phase from DRAM- to latency-bound).
pub(crate) fn build_trace(cfg: &GpuConfig, stats: &LaunchStats, name: &str) -> LaunchTrace {
    let blocks_per_wave = (stats.occupancy.blocks_per_sm * cfg.num_sms).max(1);
    let full_waves = stats.grid_blocks / blocks_per_wave;
    let rem = stats.grid_blocks % blocks_per_wave;

    let scale = |c: &crate::timing::PhaseRecord, blocks: usize| SpanCounters {
        flops: c.flops * blocks as u64,
        shared_accesses: c.shared_accesses * blocks as u64,
        conflict_replays: c.conflict_replays * blocks as u64,
        global_transactions: c.global_transactions * blocks as u64,
        global_line_bytes: c.global_line_bytes * blocks as u64,
        spill_dram_bytes: c.spill_dram_bytes * blocks as u64,
    };

    let mut waves = Vec::with_capacity(full_waves + usize::from(rem > 0));
    let mut cursor = 0.0f64;
    for w in 0..full_waves {
        let start = cursor;
        let mut phases = Vec::with_capacity(stats.phase_times.len());
        for (pt, pr) in stats.phase_times.iter().zip(&stats.phases) {
            phases.push(PhaseSpan {
                label: pt.label.clone(),
                start_cycle: cursor,
                end_cycle: cursor + pt.cycles,
                bound: pt.bound,
                counters: scale(pr, blocks_per_wave.min(stats.grid_blocks)),
            });
            cursor += pt.cycles;
        }
        waves.push(WaveSpan {
            index: w,
            blocks: blocks_per_wave.min(stats.grid_blocks),
            start_cycle: start,
            end_cycle: cursor,
            phases,
        });
    }
    if rem > 0 {
        let start = cursor;
        let mut phases = Vec::with_capacity(stats.phases.len());
        for pr in &stats.phases {
            let pt = phase_time(cfg, &stats.occupancy, pr, rem);
            phases.push(PhaseSpan {
                label: pt.label,
                start_cycle: cursor,
                end_cycle: cursor + pt.cycles,
                bound: pt.bound,
                counters: scale(pr, rem),
            });
            cursor += pt.cycles;
        }
        waves.push(WaveSpan {
            index: full_waves,
            blocks: rem,
            start_cycle: start,
            end_cycle: cursor,
            phases,
        });
    }

    LaunchTrace {
        name: name.to_string(),
        grid_blocks: stats.grid_blocks,
        threads_per_block: stats.threads_per_block,
        blocks_per_sm: stats.occupancy.blocks_per_sm,
        occupancy_fraction: stats.occupancy.occupancy_fraction(cfg),
        regs_per_thread: stats.occupancy.regs_allocated,
        regs_spilled: stats.occupancy.regs_spilled,
        start_cycle: 0.0,
        cycles: stats.cycles,
        clock_ghz: stats.clock_ghz,
        waves,
    }
}

/// A shared per-launch trace sink.
///
/// Cloning is cheap and shares the underlying buffer, so one profiler can
/// be handed to many [`crate::LaunchConfig`]s (every launch of a tiled
/// factorization, every launch of a batch API call) and drained once.
/// Attach with [`crate::LaunchConfig::trace`].
#[derive(Clone, Debug, Default)]
pub struct Profiler {
    inner: Arc<Mutex<Vec<LaunchTrace>>>,
}

/// The role a [`Profiler`] plays on a launch config (alias for call sites
/// that prefer the sink-side name).
pub type TraceSink = Profiler;

impl Profiler {
    pub fn new() -> Self {
        Profiler::default()
    }

    /// Append one launch's trace, placing it after every trace already
    /// recorded on this profiler's launch timeline.
    pub(crate) fn record(&self, mut trace: LaunchTrace) {
        let mut inner = self.inner.lock().unwrap();
        trace.start_cycle = inner.last().map_or(0.0, |t| t.start_cycle + t.cycles);
        inner.push(trace);
    }

    /// Number of launches recorded so far.
    pub fn launch_count(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// Snapshot of every recorded launch trace (in launch order).
    pub fn launches(&self) -> Vec<LaunchTrace> {
        self.inner.lock().unwrap().clone()
    }

    /// Drain the recorded traces (subsequent launches start a new timeline).
    pub fn take(&self) -> Vec<LaunchTrace> {
        std::mem::take(&mut *self.inner.lock().unwrap())
    }

    /// Total simulated cycles across every recorded launch.
    pub fn total_cycles(&self) -> f64 {
        self.inner.lock().unwrap().iter().map(|t| t.cycles).sum()
    }

    /// Render every recorded launch as a Chrome-trace JSON document
    /// (load it in `chrome://tracing` or <https://ui.perfetto.dev>).
    ///
    /// Layout: one trace "process" per launch, one thread row per wave
    /// plus a summary row 0 holding the whole-launch span; phases are
    /// complete ("X") events carrying cycles, the binding constraint and
    /// the memory counters in `args`. Timestamps are microseconds of
    /// simulated device time.
    pub fn chrome_trace_json(&self) -> String {
        chrome_trace_json(&self.inner.lock().unwrap())
    }
}

/// Cycles → microseconds of simulated device time.
fn us(cycles: f64, ghz: f64) -> f64 {
    cycles / (ghz * 1e3)
}

fn push_event(out: &mut String, first: &mut bool, body: std::fmt::Arguments) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    let _ = write!(out, "    {body}");
}

/// Render a slice of launch traces as a Chrome-trace JSON document.
pub fn chrome_trace_json(traces: &[LaunchTrace]) -> String {
    let mut s = String::from("{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n");
    let mut first = true;
    for (pid, t) in traces.iter().enumerate() {
        push_event(
            &mut s,
            &mut first,
            format_args!(
                "{{\"ph\": \"M\", \"pid\": {pid}, \"tid\": 0, \"name\": \"process_name\", \
                 \"args\": {{\"name\": \"launch {pid}: {}\"}}}}",
                json_escape(&t.name)
            ),
        );
        push_event(
            &mut s,
            &mut first,
            format_args!(
                "{{\"ph\": \"M\", \"pid\": {pid}, \"tid\": 0, \"name\": \"thread_name\", \
                 \"args\": {{\"name\": \"launch\"}}}}"
            ),
        );
        // Whole-launch summary span on row 0.
        push_event(
            &mut s,
            &mut first,
            format_args!(
                "{{\"ph\": \"X\", \"pid\": {pid}, \"tid\": 0, \"name\": \"{}\", \
                 \"ts\": {:.6}, \"dur\": {:.6}, \"args\": {{\"cycles\": {:.3}, \
                 \"grid_blocks\": {}, \"threads_per_block\": {}, \"blocks_per_sm\": {}, \
                 \"occupancy\": {:.4}, \"regs_per_thread\": {}, \"regs_spilled\": {}, \
                 \"waves\": {}}}}}",
                json_escape(&t.name),
                us(t.start_cycle, t.clock_ghz),
                us(t.cycles, t.clock_ghz),
                t.cycles,
                t.grid_blocks,
                t.threads_per_block,
                t.blocks_per_sm,
                t.occupancy_fraction,
                t.regs_per_thread,
                t.regs_spilled,
                t.waves.len(),
            ),
        );
        for w in &t.waves {
            let tid = w.index + 1;
            push_event(
                &mut s,
                &mut first,
                format_args!(
                    "{{\"ph\": \"M\", \"pid\": {pid}, \"tid\": {tid}, \
                     \"name\": \"thread_name\", \"args\": {{\"name\": \
                     \"wave {} ({} blocks)\"}}}}",
                    w.index, w.blocks
                ),
            );
            for p in &w.phases {
                push_event(
                    &mut s,
                    &mut first,
                    format_args!(
                        "{{\"ph\": \"X\", \"pid\": {pid}, \"tid\": {tid}, \"name\": \"{}\", \
                         \"ts\": {:.6}, \"dur\": {:.6}, \"args\": {{\"cycles\": {:.3}, \
                         \"bound\": \"{:?}\", \"flops\": {}, \"shared_accesses\": {}, \
                         \"conflict_replays\": {}, \"global_transactions\": {}, \
                         \"global_line_bytes\": {}, \"spill_dram_bytes\": {}}}}}",
                        json_escape(if p.label.is_empty() { "phase" } else { &p.label }),
                        us(t.start_cycle + p.start_cycle, t.clock_ghz),
                        us(p.cycles(), t.clock_ghz),
                        p.cycles(),
                        p.bound,
                        p.counters.flops,
                        p.counters.shared_accesses,
                        p.counters.conflict_replays,
                        p.counters.global_transactions,
                        p.counters.global_line_bytes,
                        p.counters.spill_dram_bytes,
                    ),
                );
            }
        }
    }
    s.push_str("\n  ]\n}\n");
    s
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            '\n' => vec!['\\', 'n'],
            c => vec![c],
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Chrome-trace validation: a minimal JSON parser so tests and smoke bins can
// check that exported documents round-trip through the schema without
// pulling a JSON dependency into the workspace.
// ---------------------------------------------------------------------------

/// Summary of a parsed Chrome-trace document.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ChromeTraceSummary {
    /// Total events of any kind.
    pub events: usize,
    /// Complete ("X") duration events.
    pub complete_events: usize,
    /// Distinct `pid`s (launches).
    pub processes: usize,
    /// Sum of `args.cycles` over complete events on wave rows (`tid > 0`).
    pub wave_span_cycles: f64,
    /// Sum of `args.conflict_replays` over wave-row complete events.
    pub conflict_replays: u64,
}

/// Parse and validate a Chrome-trace JSON document produced by
/// [`chrome_trace_json`]. Returns a summary, or an error describing the
/// first schema violation.
pub fn validate_chrome_trace(json: &str) -> Result<ChromeTraceSummary, String> {
    let v = Json::parse(json)?;
    let root = v.as_object().ok_or("root is not an object")?;
    let events = root
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .ok_or("missing traceEvents")?
        .1
        .as_array()
        .ok_or("traceEvents is not an array")?;
    let mut sum = ChromeTraceSummary::default();
    let mut pids = Vec::new();
    for e in events {
        let obj = e.as_object().ok_or("event is not an object")?;
        let field = |k: &str| obj.iter().find(|(n, _)| n == k).map(|(_, v)| v);
        let ph = field("ph")
            .and_then(Json::as_str)
            .ok_or("event missing ph")?;
        let pid = field("pid")
            .and_then(Json::as_f64)
            .ok_or("event missing pid")? as i64;
        if !pids.contains(&pid) {
            pids.push(pid);
        }
        field("name")
            .and_then(Json::as_str)
            .ok_or("event missing name")?;
        sum.events += 1;
        if ph == "X" {
            let dur = field("dur")
                .and_then(Json::as_f64)
                .ok_or("X event missing dur")?;
            if dur < 0.0 {
                return Err("negative dur".into());
            }
            field("ts")
                .and_then(Json::as_f64)
                .ok_or("X event missing ts")?;
            sum.complete_events += 1;
            let tid = field("tid").and_then(Json::as_f64).unwrap_or(0.0) as i64;
            if tid > 0 {
                if let Some(args) = field("args").and_then(Json::as_object) {
                    let arg = |k: &str| args.iter().find(|(n, _)| n == k).map(|(_, v)| v);
                    sum.wave_span_cycles +=
                        arg("cycles").and_then(Json::as_f64).unwrap_or(0.0);
                    sum.conflict_replays +=
                        arg("conflict_replays").and_then(Json::as_f64).unwrap_or(0.0) as u64;
                }
            }
        } else if ph != "M" {
            return Err(format!("unexpected event phase {ph:?}"));
        }
    }
    sum.processes = pids.len();
    Ok(sum)
}

/// A minimal JSON value (just enough to validate exported traces).
enum Json {
    Null,
    Bool,
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
    fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }
    fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(o) => Some(o),
            _ => None,
        }
    }

    fn parse(s: &str) -> Result<Json, String> {
        let b = s.as_bytes();
        let mut i = 0usize;
        let v = Self::value(b, &mut i)?;
        Self::ws(b, &mut i);
        if i != b.len() {
            return Err(format!("trailing data at byte {i}"));
        }
        Ok(v)
    }

    fn ws(b: &[u8], i: &mut usize) {
        while *i < b.len() && b[*i].is_ascii_whitespace() {
            *i += 1;
        }
    }

    fn expect(b: &[u8], i: &mut usize, c: u8) -> Result<(), String> {
        if *i < b.len() && b[*i] == c {
            *i += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", c as char, i))
        }
    }

    fn value(b: &[u8], i: &mut usize) -> Result<Json, String> {
        Self::ws(b, i);
        match b.get(*i) {
            Some(b'{') => {
                *i += 1;
                let mut fields = Vec::new();
                Self::ws(b, i);
                if b.get(*i) == Some(&b'}') {
                    *i += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    Self::ws(b, i);
                    let key = match Self::value(b, i)? {
                        Json::Str(s) => s,
                        _ => return Err(format!("non-string key at byte {i}")),
                    };
                    Self::ws(b, i);
                    Self::expect(b, i, b':')?;
                    fields.push((key, Self::value(b, i)?));
                    Self::ws(b, i);
                    match b.get(*i) {
                        Some(b',') => *i += 1,
                        Some(b'}') => {
                            *i += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return Err(format!("expected , or }} at byte {i}")),
                    }
                }
            }
            Some(b'[') => {
                *i += 1;
                let mut items = Vec::new();
                Self::ws(b, i);
                if b.get(*i) == Some(&b']') {
                    *i += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(Self::value(b, i)?);
                    Self::ws(b, i);
                    match b.get(*i) {
                        Some(b',') => *i += 1,
                        Some(b']') => {
                            *i += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(format!("expected , or ] at byte {i}")),
                    }
                }
            }
            Some(b'"') => {
                *i += 1;
                let mut out = String::new();
                while *i < b.len() {
                    match b[*i] {
                        b'"' => {
                            *i += 1;
                            return Ok(Json::Str(out));
                        }
                        b'\\' => {
                            *i += 1;
                            match b.get(*i) {
                                Some(b'n') => out.push('\n'),
                                Some(b't') => out.push('\t'),
                                Some(&c @ (b'"' | b'\\' | b'/')) => out.push(c as char),
                                Some(b'u') => {
                                    let hex = b
                                        .get(*i + 1..*i + 5)
                                        .and_then(|h| std::str::from_utf8(h).ok())
                                        .and_then(|h| u32::from_str_radix(h, 16).ok())
                                        .ok_or(format!("bad \\u escape at byte {i}"))?;
                                    out.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                                    *i += 4;
                                }
                                _ => return Err(format!("bad escape at byte {i}")),
                            }
                            *i += 1;
                        }
                        c => {
                            // Copy the raw byte; exported traces are ASCII
                            // but pass UTF-8 through untouched.
                            let start = *i;
                            let mut end = *i + 1;
                            while end < b.len() && b[end] & 0xC0 == 0x80 {
                                end += 1;
                            }
                            out.push_str(
                                std::str::from_utf8(&b[start..end])
                                    .map_err(|_| format!("bad utf8 at byte {start}"))?,
                            );
                            let _ = c;
                            *i = end;
                        }
                    }
                }
                Err("unterminated string".into())
            }
            Some(b't') if b[*i..].starts_with(b"true") => {
                *i += 4;
                Ok(Json::Bool)
            }
            Some(b'f') if b[*i..].starts_with(b"false") => {
                *i += 5;
                Ok(Json::Bool)
            }
            Some(b'n') if b[*i..].starts_with(b"null") => {
                *i += 4;
                Ok(Json::Null)
            }
            Some(_) => {
                let start = *i;
                while *i < b.len()
                    && matches!(b[*i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                {
                    *i += 1;
                }
                std::str::from_utf8(&b[start..*i])
                    .ok()
                    .and_then(|s| s.parse::<f64>().ok())
                    .map(Json::Num)
                    .ok_or(format!("bad number at byte {start}"))
            }
            None => Err("unexpected end of input".into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::occupancy::occupancy;
    use crate::timing::{combine, PhaseRecord};

    fn record(label: &str, critical: u64, flops: u64) -> PhaseRecord {
        PhaseRecord {
            label: label.into(),
            critical_cycles: critical,
            sync_cycles: 40,
            block_issue_cycles: critical / 2,
            fp_instrs: flops / 32,
            ldst_instrs: 8,
            sfu_instrs: 0,
            flops,
            shared_accesses: 64,
            conflict_replays: 3,
            global_transactions: 4,
            global_line_bytes: 512,
            spill_dram_bytes: 0,
            had_sync: true,
        }
    }

    fn sample_stats(cfg: &GpuConfig, grid: usize) -> LaunchStats {
        let occ = occupancy(cfg, 64, 32, 4096);
        combine(
            cfg,
            occ,
            vec![record("load", 500, 0), record("compute", 2000, 4096), record("store", 400, 0)],
            grid,
            64,
            false,
        )
    }

    #[test]
    fn trace_spans_sum_to_launch_cycles() {
        let cfg = GpuConfig::quadro_6000();
        // 300 blocks: two full waves of 112 plus a 76-block remainder.
        let stats = sample_stats(&cfg, 300);
        let t = build_trace(&cfg, &stats, "sample");
        assert_eq!(t.waves.len(), stats.waves);
        assert_eq!(t.waves.last().unwrap().blocks, 300 - 2 * 112);
        let total = t.span_cycle_total();
        assert!(
            (total - stats.cycles).abs() <= 1e-9 * stats.cycles,
            "span total {total} != launch cycles {}",
            stats.cycles
        );
    }

    #[test]
    fn wave_counters_scale_with_blocks() {
        let cfg = GpuConfig::quadro_6000();
        let stats = sample_stats(&cfg, 300);
        let t = build_trace(&cfg, &stats, "sample");
        let full = &t.waves[0];
        let rem = t.waves.last().unwrap();
        let f = full.phases.iter().map(|p| p.counters.flops).sum::<u64>();
        let r = rem.phases.iter().map(|p| p.counters.flops).sum::<u64>();
        assert_eq!(f, 4096 * 112);
        assert_eq!(r, 4096 * 76);
        // Grid totals match the stats' whole-launch FLOP count.
        let all: u64 = t
            .waves
            .iter()
            .flat_map(|w| w.phases.iter())
            .map(|p| p.counters.flops)
            .sum();
        assert_eq!(all as f64, stats.flops);
    }

    #[test]
    fn profiler_lays_launches_end_to_end() {
        let cfg = GpuConfig::quadro_6000();
        let prof = Profiler::new();
        let stats = sample_stats(&cfg, 112);
        prof.record(build_trace(&cfg, &stats, "first"));
        prof.record(build_trace(&cfg, &stats, "second"));
        let ls = prof.launches();
        assert_eq!(ls.len(), 2);
        assert_eq!(ls[0].start_cycle, 0.0);
        assert!((ls[1].start_cycle - ls[0].cycles).abs() < 1e-12);
        assert_eq!(prof.launch_count(), 2);
        assert!(prof.total_cycles() > 0.0);
        // take() drains.
        assert_eq!(prof.take().len(), 2);
        assert_eq!(prof.launch_count(), 0);
    }

    #[test]
    fn chrome_export_round_trips_through_the_validator() {
        let cfg = GpuConfig::quadro_6000();
        let prof = Profiler::new();
        prof.record(build_trace(&cfg, &sample_stats(&cfg, 300), "qr \"odd\" name"));
        prof.record(build_trace(&cfg, &sample_stats(&cfg, 112), "lu"));
        let json = prof.chrome_trace_json();
        let sum = validate_chrome_trace(&json).expect("valid chrome trace");
        assert_eq!(sum.processes, 2);
        // 3 waves + 1 wave → 4 wave rows * 3 phases + 2 launch spans.
        assert_eq!(sum.complete_events, 4 * 3 + 2);
        let expected: f64 = prof.launches().iter().map(|t| t.cycles).sum();
        assert!((sum.wave_span_cycles - expected).abs() / expected < 1e-3);
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_chrome_trace("{").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\": 3}").is_err());
        assert!(
            validate_chrome_trace("{\"traceEvents\": [{\"ph\": \"X\", \"pid\": 0}]}").is_err()
        );
        // A well-formed minimal document passes.
        let ok = "{\"traceEvents\": [{\"ph\": \"X\", \"pid\": 0, \"tid\": 1, \
                  \"name\": \"p\", \"ts\": 0.0, \"dur\": 1.5, \
                  \"args\": {\"cycles\": 10.0}}]}";
        let s = validate_chrome_trace(ok).unwrap();
        assert_eq!(s.complete_events, 1);
        assert_eq!(s.wave_span_cycles, 10.0);
    }

    #[test]
    fn phase_totals_aggregate_across_waves() {
        let cfg = GpuConfig::quadro_6000();
        let t = build_trace(&cfg, &sample_stats(&cfg, 300), "s");
        let totals = t.phase_totals();
        assert_eq!(totals.len(), 3);
        assert_eq!(totals[0].0, "load");
        let sum: f64 = totals.iter().map(|(_, c, _)| c).sum();
        assert!((sum - t.cycles).abs() <= 1e-9 * t.cycles);
    }
}
