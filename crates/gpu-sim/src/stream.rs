//! Streams, events, and the copy/compute overlap timeline.
//!
//! CUDA exposes asynchronous execution through *streams* (per-stream FIFO
//! command queues) and *events* (markers one stream can wait on). Whether
//! queuing work in multiple streams actually buys overlap depends on the
//! host-link topology: the paper's GF100 board has a single DMA copy engine
//! that the driver additionally serializes against the compute queue, so the
//! paper reports "no benefit from using multiple streams". Tesla-class Fermi
//! boards expose two copy engines (one per direction) and get the classic
//! three-stage H2D / kernel / D2H pipeline.
//!
//! This module *simulates* that distinction instead of assuming it. Commands
//! are enqueued into [`Stream`]s on a [`Timeline`] and resolved by a small
//! discrete-event scheduler:
//!
//! * Commands dispatch in **issue order** (the order the host enqueued them),
//!   matching how the driver feeds hardware queues.
//! * A command starts no earlier than (a) the completion of the previous
//!   command in its stream, (b) every [`Event`] the stream was told to wait
//!   on, and (c) its engine becoming free — H2D and D2H copies each occupy a
//!   copy engine, kernels occupy one of `concurrent_kernels` kernel slots.
//! * With fewer than two copy engines ([`GpuConfig::copy_engines`]) the
//!   timeline degrades to the paper's behavior: **every** command additionally
//!   waits for the previously issued command, whatever its stream — full
//!   serialization, so multiple streams show ~no speedup.
//! * With two or more engines, H2D and D2H get dedicated engines and copies
//!   overlap both each other and compute.
//!
//! Copy durations come from the config's [`PcieModel`]; kernel durations are
//! supplied by the caller (typically [`crate::LaunchStats::time_s`], which
//! already includes the launch overhead). Resolution is pure arithmetic over
//! the issue list — deterministic and independent of host thread count.

use crate::config::GpuConfig;
use crate::host::PcieModel;

/// Handle to a per-stream FIFO command queue on a [`Timeline`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Stream(usize);

impl Stream {
    /// Index of this stream on its timeline (creation order).
    pub fn index(&self) -> usize {
        self.0
    }
}

/// Marker recorded into a stream; other streams can wait on it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Event(usize);

/// What a resolved command was.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmdKind {
    /// Host-to-device copy over PCIe.
    H2d,
    /// Device-to-host copy over PCIe.
    D2h,
    /// Kernel execution.
    Kernel,
}

impl CmdKind {
    pub fn name(&self) -> &'static str {
        match self {
            CmdKind::H2d => "h2d",
            CmdKind::D2h => "d2h",
            CmdKind::Kernel => "kernel",
        }
    }
}

enum Cmd {
    Copy {
        stream: usize,
        kind: CmdKind,
        bytes: usize,
    },
    Kernel {
        stream: usize,
        secs: f64,
        label: String,
    },
    Record {
        stream: usize,
        event: usize,
    },
    Wait {
        stream: usize,
        event: usize,
    },
}

/// One resolved command occupying `[start_s, end_s]` on the timeline.
#[derive(Clone, Debug)]
pub struct CommandSpan {
    /// Index of the issuing stream ([`Stream::index`]).
    pub stream: usize,
    pub kind: CmdKind,
    /// Kernel label, or empty for copies.
    pub label: String,
    /// Bytes moved (copies only).
    pub bytes: usize,
    pub start_s: f64,
    pub end_s: f64,
}

impl CommandSpan {
    pub fn duration_s(&self) -> f64 {
        self.end_s - self.start_s
    }
}

/// Resolved schedule of a [`Timeline`].
#[derive(Clone, Debug)]
pub struct TimelineReport {
    /// Wall-clock end of the last command.
    pub total_s: f64,
    /// Every copy / kernel command with its scheduled interval, in issue
    /// order (records and waits are zero-width and omitted).
    pub spans: Vec<CommandSpan>,
    /// Busy time of the H2D copy path.
    pub h2d_s: f64,
    /// Busy time of the D2H copy path.
    pub d2h_s: f64,
    /// Busy time of the kernel slots.
    pub kernel_s: f64,
    /// True when the single-copy-engine rule forced full serialization.
    pub serialized: bool,
}

impl TimelineReport {
    /// What the same command list costs with no overlap at all: the sum of
    /// every command duration. On a serialized (single-copy-engine) timeline
    /// `total_s == serial_s()` up to float rounding.
    pub fn serial_s(&self) -> f64 {
        self.h2d_s + self.d2h_s + self.kernel_s
    }

    /// `serial_s / total_s` — how much the schedule gained from overlap.
    pub fn overlap_speedup(&self) -> f64 {
        if self.total_s > 0.0 {
            self.serial_s() / self.total_s
        } else {
            1.0
        }
    }

    /// Stream-level watchdog over the resolved schedule.
    ///
    /// A stream is **unresolved** when one of its spans has a non-finite
    /// bound — its queue never drains (see [`Timeline::kernel`] on
    /// modelling a hung kernel as a NaN/infinite duration). On a
    /// serialized (single-copy-engine) timeline every command issued
    /// after the hang also never runs, so their streams are unresolved
    /// too. A stream is **stalled** when its work does resolve but its
    /// last command ends after `budget_s`.
    pub fn watchdog(&self, budget_s: f64) -> StreamWatchdogReport {
        let mut stalled: Vec<usize> = Vec::new();
        let mut unresolved: Vec<usize> = Vec::new();
        let mut poisoned = false;
        for s in &self.spans {
            let finite = s.start_s.is_finite() && s.end_s.is_finite();
            if !finite || (self.serialized && poisoned) {
                poisoned |= !finite;
                if !unresolved.contains(&s.stream) {
                    unresolved.push(s.stream);
                }
            } else if s.end_s > budget_s && !stalled.contains(&s.stream) {
                stalled.push(s.stream);
            }
        }
        stalled.retain(|s| !unresolved.contains(s));
        stalled.sort_unstable();
        unresolved.sort_unstable();
        StreamWatchdogReport {
            budget_s,
            stalled,
            unresolved,
        }
    }
}

/// Verdict of [`TimelineReport::watchdog`]: which streams blew the budget
/// and which never resolve at all.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StreamWatchdogReport {
    /// The deadline the schedule was checked against, in seconds.
    pub budget_s: f64,
    /// Streams whose final command completes after `budget_s`
    /// ([`Stream::index`] values, ascending).
    pub stalled: Vec<usize>,
    /// Streams whose queued commands never resolve (ascending).
    pub unresolved: Vec<usize>,
}

impl StreamWatchdogReport {
    /// No stream stalled and every queue drained.
    pub fn is_clean(&self) -> bool {
        self.stalled.is_empty() && self.unresolved.is_empty()
    }
}

/// Issue-order command list plus the device's overlap resources; resolves to
/// a [`TimelineReport`] via a discrete-event scan.
pub struct Timeline {
    pcie: PcieModel,
    copy_engines: usize,
    concurrent_kernels: usize,
    streams: usize,
    events: usize,
    cmds: Vec<Cmd>,
}

impl Timeline {
    pub fn new(cfg: &GpuConfig) -> Self {
        Timeline {
            pcie: PcieModel::from_config(cfg),
            copy_engines: cfg.copy_engines,
            concurrent_kernels: cfg.concurrent_kernels.max(1),
            streams: 0,
            events: 0,
            cmds: Vec::new(),
        }
    }

    /// Create a new stream (FIFO command queue).
    pub fn stream(&mut self) -> Stream {
        self.streams += 1;
        Stream(self.streams - 1)
    }

    /// Number of streams created so far.
    pub fn stream_count(&self) -> usize {
        self.streams
    }

    /// Enqueue a host-to-device copy of `bytes` on `s`.
    pub fn h2d(&mut self, s: Stream, bytes: usize) {
        self.cmds.push(Cmd::Copy {
            stream: s.0,
            kind: CmdKind::H2d,
            bytes,
        });
    }

    /// Enqueue a device-to-host copy of `bytes` on `s`.
    pub fn d2h(&mut self, s: Stream, bytes: usize) {
        self.cmds.push(Cmd::Copy {
            stream: s.0,
            kind: CmdKind::D2h,
            bytes,
        });
    }

    /// Enqueue a kernel taking `secs` (including launch overhead) on `s`.
    ///
    /// A non-finite duration (NaN or infinity) models a kernel that never
    /// completes: it is preserved — not clamped — so the spans it produces
    /// carry non-finite bounds and [`TimelineReport::watchdog`] can flag
    /// the stream as unresolved.
    pub fn kernel(&mut self, s: Stream, secs: f64, label: impl Into<String>) {
        let secs = if secs.is_finite() { secs.max(0.0) } else { secs };
        self.cmds.push(Cmd::Kernel {
            stream: s.0,
            secs,
            label: label.into(),
        });
    }

    /// Record an event on `s`: it completes when all work enqueued on `s` so
    /// far has completed.
    pub fn record(&mut self, s: Stream) -> Event {
        self.events += 1;
        let e = Event(self.events - 1);
        self.cmds.push(Cmd::Record {
            stream: s.0,
            event: e.0,
        });
        e
    }

    /// Make subsequent commands on `s` wait for `e`. Waiting on an event
    /// that is never recorded is a no-op (as in CUDA).
    pub fn wait(&mut self, s: Stream, e: Event) {
        self.cmds.push(Cmd::Wait {
            stream: s.0,
            event: e.0,
        });
    }

    /// Scan the issue list and schedule every command.
    pub fn resolve(&self) -> TimelineReport {
        let serialized = self.copy_engines < 2;
        // Per-stream completion time of the last scheduled command.
        let mut stream_end = vec![0.0f64; self.streams];
        // Per-stream extra barrier imposed by event waits.
        let mut stream_gate = vec![0.0f64; self.streams];
        let mut event_time = vec![0.0f64; self.events];
        // Engine availability: H2D engine, D2H engine, kernel slots.
        let mut h2d_free = 0.0f64;
        let mut d2h_free = 0.0f64;
        let mut kernel_free = vec![0.0f64; self.concurrent_kernels];
        // End of the previously issued command, for the serialized rule.
        let mut prev_end = 0.0f64;

        let mut spans = Vec::new();
        let (mut h2d_busy, mut d2h_busy, mut kernel_busy) = (0.0f64, 0.0f64, 0.0f64);

        for cmd in &self.cmds {
            match cmd {
                Cmd::Record { stream, event } => {
                    event_time[*event] = stream_end[*stream].max(stream_gate[*stream]);
                }
                Cmd::Wait { stream, event } => {
                    stream_gate[*stream] = stream_gate[*stream].max(event_time[*event]);
                }
                Cmd::Copy {
                    stream,
                    kind,
                    bytes,
                } => {
                    let dur = self.pcie.transfer_secs(*bytes);
                    let engine_free = match kind {
                        CmdKind::H2d => &mut h2d_free,
                        _ => &mut d2h_free,
                    };
                    let mut start = stream_end[*stream]
                        .max(stream_gate[*stream])
                        .max(*engine_free);
                    if serialized {
                        start = start.max(prev_end);
                    }
                    let end = start + dur;
                    *engine_free = end;
                    stream_end[*stream] = end;
                    prev_end = end;
                    match kind {
                        CmdKind::H2d => h2d_busy += dur,
                        _ => d2h_busy += dur,
                    }
                    spans.push(CommandSpan {
                        stream: *stream,
                        kind: *kind,
                        label: String::new(),
                        bytes: *bytes,
                        start_s: start,
                        end_s: end,
                    });
                }
                Cmd::Kernel {
                    stream,
                    secs,
                    label,
                } => {
                    // Earliest-free kernel slot (lowest index on ties for
                    // determinism).
                    let (slot, slot_free) = kernel_free
                        .iter()
                        .copied()
                        .enumerate()
                        .fold((0usize, f64::INFINITY), |best, (i, t)| {
                            if t < best.1 {
                                (i, t)
                            } else {
                                best
                            }
                        });
                    let mut start = stream_end[*stream]
                        .max(stream_gate[*stream])
                        .max(slot_free);
                    if serialized {
                        start = start.max(prev_end);
                    }
                    let end = start + secs;
                    kernel_free[slot] = end;
                    stream_end[*stream] = end;
                    prev_end = end;
                    kernel_busy += secs;
                    spans.push(CommandSpan {
                        stream: *stream,
                        kind: CmdKind::Kernel,
                        label: label.clone(),
                        bytes: 0,
                        start_s: start,
                        end_s: end,
                    });
                }
            }
        }

        let total = spans.iter().map(|s| s.end_s).fold(0.0f64, f64::max);
        TimelineReport {
            total_s: total,
            spans,
            h2d_s: h2d_busy,
            d2h_s: d2h_busy,
            kernel_s: kernel_busy,
            serialized,
        }
    }

    /// Seconds one PCIe transfer of `bytes` takes on this timeline's link.
    pub fn transfer_secs(&self, bytes: usize) -> f64 {
        self.pcie.transfer_secs(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Enqueue a canonical chunked pipeline: `chunks` rounds of
    /// H2D -> kernel -> D2H, round-robined over `nstreams` streams.
    fn pipelined(cfg: &GpuConfig, nstreams: usize, chunks: usize, bytes: usize, ksecs: f64) -> TimelineReport {
        let mut tl = Timeline::new(cfg);
        let streams: Vec<Stream> = (0..nstreams).map(|_| tl.stream()).collect();
        for c in 0..chunks {
            let s = streams[c % nstreams];
            tl.h2d(s, bytes);
            tl.kernel(s, ksecs, format!("chunk {c}"));
            tl.d2h(s, bytes);
        }
        tl.resolve()
    }

    #[test]
    fn single_copy_engine_gives_no_stream_speedup() {
        // Paper's claim: on the GF100 board multiple streams buy nothing.
        let cfg = GpuConfig::quadro_6000();
        assert_eq!(cfg.copy_engines, 1);
        let multi = pipelined(&cfg, 4, 8, 2 << 20, 500e-6);
        let single = pipelined(&cfg, 1, 8, 2 << 20, 500e-6);
        assert!(multi.serialized);
        assert!((multi.total_s - single.total_s).abs() < 1e-12);
        assert!((multi.total_s - multi.serial_s()).abs() < 1e-12);
        assert!((multi.overlap_speedup() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dual_copy_engines_pipeline_three_stages() {
        // With dedicated H2D/D2H engines the steady state advances at the
        // pace of the slowest stage: total ~= fill + (chunks-1) * max_stage.
        let cfg = GpuConfig::quadro_6000_dual_copy();
        let bytes = 2 << 20;
        let ksecs = 500e-6;
        let chunks = 8;
        let r = pipelined(&cfg, 4, chunks, bytes, ksecs);
        assert!(!r.serialized);
        let t_copy = PcieModel::from_config(&cfg).transfer_secs(bytes);
        let max_stage = t_copy.max(ksecs);
        let expected = (t_copy + ksecs + t_copy) + (chunks as f64 - 1.0) * max_stage;
        assert!(
            (r.total_s - expected).abs() / expected < 0.01,
            "total {} vs 3-stage closed form {}",
            r.total_s,
            expected
        );
        assert!(r.overlap_speedup() > 1.3, "speedup {}", r.overlap_speedup());
    }

    #[test]
    fn dual_engine_single_stream_still_fifo() {
        // One stream is a FIFO even with two engines: no overlap possible.
        let cfg = GpuConfig::quadro_6000_dual_copy();
        let r = pipelined(&cfg, 1, 6, 1 << 20, 200e-6);
        assert!((r.total_s - r.serial_s()).abs() < 1e-12);
    }

    #[test]
    fn event_wait_orders_across_streams() {
        let cfg = GpuConfig::quadro_6000_dual_copy();
        let mut tl = Timeline::new(&cfg);
        let a = tl.stream();
        let b = tl.stream();
        tl.kernel(a, 1e-3, "producer");
        let e = tl.record(a);
        tl.wait(b, e);
        tl.kernel(b, 1e-4, "consumer");
        let r = tl.resolve();
        let producer = &r.spans[0];
        let consumer = &r.spans[1];
        assert_eq!(consumer.label, "consumer");
        assert!(consumer.start_s >= producer.end_s - 1e-15);

        // Without the wait, the consumer would start immediately.
        let mut tl2 = Timeline::new(&cfg);
        let a2 = tl2.stream();
        let b2 = tl2.stream();
        tl2.kernel(a2, 1e-3, "producer");
        tl2.kernel(b2, 1e-4, "consumer");
        let r2 = tl2.resolve();
        assert!(r2.spans[1].start_s < 1e-12 || cfg.concurrent_kernels == 1);
    }

    #[test]
    fn wait_before_record_is_noop() {
        // As in CUDA, a wait sees only records issued before it: waiting on
        // an event recorded later does not gate the stream.
        let cfg = GpuConfig::quadro_6000_dual_copy();
        let mut tl = Timeline::new(&cfg);
        let a = tl.stream();
        let b = tl.stream();
        tl.wait(b, Event(0));
        tl.h2d(b, 1 << 10);
        tl.kernel(a, 1e-3, "late producer");
        let e = tl.record(a);
        assert_eq!(e, Event(0));
        let r = tl.resolve();
        assert!(r.spans[0].start_s < 1e-12, "wait must not gate at 0");
    }

    #[test]
    fn resolution_is_deterministic() {
        let cfg = GpuConfig::quadro_6000_dual_copy();
        let r1 = pipelined(&cfg, 3, 11, 3 << 20, 700e-6);
        let r2 = pipelined(&cfg, 3, 11, 3 << 20, 700e-6);
        assert_eq!(r1.total_s.to_bits(), r2.total_s.to_bits());
        assert_eq!(r1.spans.len(), r2.spans.len());
        for (a, b) in r1.spans.iter().zip(&r2.spans) {
            assert_eq!(a.start_s.to_bits(), b.start_s.to_bits());
            assert_eq!(a.end_s.to_bits(), b.end_s.to_bits());
        }
    }

    #[test]
    fn watchdog_flags_stalled_and_unresolved_streams() {
        let cfg = GpuConfig::quadro_6000_dual_copy();
        let mut tl = Timeline::new(&cfg);
        let a = tl.stream();
        let b = tl.stream();
        let c = tl.stream();
        tl.kernel(a, 1e-6, "quick");
        tl.kernel(b, f64::NAN, "hung");
        // A big copy rides the D2H engine, untouched by the wedged kernel
        // slot: it resolves, but well past a 1 ms budget.
        tl.d2h(c, 64 << 20);
        let wd = tl.resolve().watchdog(1e-3);
        assert_eq!(wd.unresolved, vec![b.index()]);
        assert_eq!(wd.stalled, vec![c.index()]);
        assert!(!wd.is_clean());

        // Under a generous budget only the hung stream remains.
        let wd = tl.resolve().watchdog(10.0);
        assert_eq!(wd.unresolved, vec![b.index()]);
        assert!(wd.stalled.is_empty());

        // A kernel queued behind the hung device (one concurrent kernel
        // slot) never starts: its stream is unresolved, not stalled.
        let mut tl2 = Timeline::new(&cfg);
        let x = tl2.stream();
        let y = tl2.stream();
        tl2.kernel(x, f64::NAN, "hung");
        tl2.kernel(y, 1e-6, "starved");
        let wd = tl2.resolve().watchdog(10.0);
        assert_eq!(wd.unresolved, vec![x.index(), y.index()]);
    }

    #[test]
    fn serialized_timeline_poisons_streams_issued_after_a_hang() {
        // With one copy engine every command waits on the previous one, so
        // a hung kernel wedges every stream issued after it.
        let cfg = GpuConfig::quadro_6000();
        let mut tl = Timeline::new(&cfg);
        let a = tl.stream();
        let b = tl.stream();
        tl.kernel(a, f64::INFINITY, "hung");
        tl.kernel(b, 1e-6, "starved");
        let wd = tl.resolve().watchdog(1.0);
        assert_eq!(wd.unresolved, vec![a.index(), b.index()]);

        // A clean serialized pipeline is clean under a generous budget.
        let r = pipelined(&cfg, 2, 4, 1 << 20, 100e-6);
        assert!(r.watchdog(10.0).is_clean());
    }

    #[test]
    fn copies_in_opposite_directions_overlap_with_two_engines() {
        let cfg = GpuConfig::quadro_6000_dual_copy();
        let mut tl = Timeline::new(&cfg);
        let a = tl.stream();
        let b = tl.stream();
        tl.h2d(a, 8 << 20);
        tl.d2h(b, 8 << 20);
        let r = tl.resolve();
        // Both copies run concurrently: wall clock ~= one transfer.
        assert!(r.total_s < 1.5 * tl.transfer_secs(8 << 20));
        // Same direction serializes on the shared engine.
        let mut tl2 = Timeline::new(&cfg);
        let a2 = tl2.stream();
        let b2 = tl2.stream();
        tl2.h2d(a2, 8 << 20);
        tl2.h2d(b2, 8 << 20);
        let r2 = tl2.resolve();
        assert!(r2.total_s > 1.9 * tl2.transfer_secs(8 << 20));
        let _ = (a, b);
    }
}
