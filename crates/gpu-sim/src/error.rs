//! Structured launch errors.
//!
//! `Gpu::launch` validates the launch configuration against the device's
//! architectural limits and returns these instead of asserting, so a
//! malformed configuration reaching the simulator from the batched API is
//! a recoverable condition rather than a process abort. Kernel panics on
//! replay workers are likewise contained (`catch_unwind` per shard) and
//! surfaced as [`LaunchError::KernelPanic`].

use std::fmt;

/// Why a kernel launch was rejected or failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LaunchError {
    /// `grid_blocks == 0`: nothing to execute.
    EmptyGrid,
    /// `threads_per_block == 0`: an empty thread block.
    ZeroThreads,
    /// The block exceeds the device's `max_threads_per_block`.
    TooManyThreads { requested: usize, max: usize },
    /// The per-block shared allocation exceeds the SM's shared memory.
    SharedMemoryExceeded {
        requested_bytes: usize,
        max_bytes: usize,
    },
    /// An execution mode that cannot run (e.g. `ExecMode::Sampled(0)`).
    InvalidExecMode(&'static str),
    /// The kernel panicked while executing `block` (traced or replayed);
    /// the panic was contained and device memory may be partially written.
    KernelPanic { block: usize, message: String },
    /// `block` exceeded the launch's watchdog op budget (a hung or
    /// livelocked kernel); the launch was aborted in bounded host time.
    /// `phase` is the phase label the block was stuck in when it tripped.
    Watchdog {
        block: usize,
        phase: String,
        ops: u64,
        limit: u64,
    },
    /// The launch's simulated duration exceeded its deadline budget.
    ///
    /// The budget is normally derived from the predictive model's cycle
    /// estimate times a slack factor (the model acts as the timeout
    /// oracle), so a launch that blows its deadline is a device that is
    /// not behaving like the model says it should — a stalled stream, a
    /// clock-throttled part, or a hung kernel the watchdog did not catch.
    /// Both fields are whole simulated cycles so the error stays `Eq`.
    DeadlineExceeded { cycles: u64, budget: u64 },
    /// The device is gone: every launch on it fails until it is replaced.
    ///
    /// The simulator itself never produces this — a fleet-level
    /// `ChaosPlan` synthesizes it to model the CUDA "device lost" sticky
    /// error state (XID errors, fell-off-the-bus). `device` is the fleet
    /// index of the dead device.
    DeviceLost { device: usize },
}

impl fmt::Display for LaunchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LaunchError::EmptyGrid => write!(f, "empty grid: grid_blocks must be >= 1"),
            LaunchError::ZeroThreads => {
                write!(f, "empty thread block: threads_per_block must be >= 1")
            }
            LaunchError::TooManyThreads { requested, max } => write!(
                f,
                "{requested} threads per block exceeds the device maximum of {max}"
            ),
            LaunchError::SharedMemoryExceeded {
                requested_bytes,
                max_bytes,
            } => write!(
                f,
                "{requested_bytes} B of shared memory per block exceeds the \
                 SM's {max_bytes} B"
            ),
            LaunchError::InvalidExecMode(why) => write!(f, "invalid exec mode: {why}"),
            LaunchError::KernelPanic { block, message } => {
                write!(f, "kernel panicked in block {block}: {message}")
            }
            LaunchError::Watchdog {
                block,
                phase,
                ops,
                limit,
            } => {
                let phase = if phase.is_empty() { "<unlabelled>" } else { phase };
                write!(
                    f,
                    "watchdog: block {block} exceeded its op budget \
                     ({ops} > {limit}) in phase {phase:?}; kernel is hung \
                     or livelocked"
                )
            }
            LaunchError::DeadlineExceeded { cycles, budget } => write!(
                f,
                "deadline exceeded: launch took {cycles} simulated cycles \
                 against a budget of {budget}"
            ),
            LaunchError::DeviceLost { device } => {
                write!(f, "device {device} is lost; all launches on it fail")
            }
        }
    }
}

impl std::error::Error for LaunchError {}
