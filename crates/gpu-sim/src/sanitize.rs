//! Opt-in compute-sanitizer pass over the simulator's scoreboarded ops.
//!
//! The checks mirror NVIDIA's `compute-sanitizer` tools, applied to the
//! simulator's functional execution:
//!
//! * **memcheck** — out-of-bounds shared/global accesses (including reads
//!   past the end of the launch's bump allocations), complex accesses that
//!   are misaligned within their allocation or straddle two allocations.
//! * **racecheck** — shared-memory read-write / write-write hazards between
//!   barrier epochs, via shadow words stamped `(thread, epoch, access
//!   kind)`, plus cross-block global hazards from launch-level shadow
//!   stamps.
//! * **synccheck** — divergent barrier participation: threads that reach a
//!   different number of [`ThreadCtx::barrier`] annotations than their
//!   block-mates before a `sync()` (or kernel end).
//! * **initcheck** — reads of never-written shared words, and of global
//!   words neither host-initialized before the launch nor written earlier
//!   by the reading block.
//!
//! The pass is strictly observational: it never changes values, issue
//! order, or timing, so a sanitized launch is bit-identical to an
//! unsanitized one. Everything is off (and free) unless
//! `LaunchConfig::sanitizer(SanitizerMode::Full)` is set; the kernel
//! watchdog (`LaunchConfig::watchdog`) can be enabled independently.
//!
//! [`ThreadCtx::barrier`]: crate::exec::ThreadCtx::barrier

use std::collections::HashSet;
use std::sync::atomic::{AtomicU32, Ordering};

use crate::mem::GlobalMemory;

/// Whether the dynamic-analysis pass runs for a launch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SanitizerMode {
    /// No checking, no overhead (the default).
    #[default]
    Off,
    /// All four checks: memcheck, racecheck, synccheck, initcheck.
    Full,
}

impl SanitizerMode {
    /// True when any checking is enabled.
    pub fn is_on(self) -> bool {
        matches!(self, SanitizerMode::Full)
    }
}

/// Which check produced a finding.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SanitizerCheck {
    /// Out-of-bounds or misaligned access.
    Memcheck,
    /// Unsynchronized conflicting accesses.
    Racecheck,
    /// Divergent barrier participation.
    Synccheck,
    /// Read of never-written memory.
    Initcheck,
}

impl SanitizerCheck {
    /// Stable lowercase name (used in reports and JSON).
    pub fn name(self) -> &'static str {
        match self {
            SanitizerCheck::Memcheck => "memcheck",
            SanitizerCheck::Racecheck => "racecheck",
            SanitizerCheck::Synccheck => "synccheck",
            SanitizerCheck::Initcheck => "initcheck",
        }
    }

    fn index(self) -> usize {
        match self {
            SanitizerCheck::Memcheck => 0,
            SanitizerCheck::Racecheck => 1,
            SanitizerCheck::Synccheck => 2,
            SanitizerCheck::Initcheck => 3,
        }
    }

    const ALL: [SanitizerCheck; 4] = [
        SanitizerCheck::Memcheck,
        SanitizerCheck::Racecheck,
        SanitizerCheck::Synccheck,
        SanitizerCheck::Initcheck,
    ];
}

/// Memory space a finding refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum MemSpace {
    /// Per-block shared memory (word-addressed).
    Shared,
    /// Device global memory (word-addressed).
    Global,
}

impl MemSpace {
    fn name(self) -> &'static str {
        match self {
            MemSpace::Shared => "shared",
            MemSpace::Global => "global",
        }
    }
}

/// One sanitizer finding, with as much provenance as the check can attach.
#[derive(Clone, Debug, PartialEq)]
pub struct Finding {
    /// The check that fired.
    pub check: SanitizerCheck,
    /// Block the access ran in (`None` for cross-block classifications
    /// where the writing block could not be pinned down).
    pub block: Option<usize>,
    /// Thread within the block, when the access is thread-attributable.
    pub thread: Option<usize>,
    /// The phase label active at the access (`LaunchConfig`-named kernels
    /// keep labels on every sanitized block, traced or not).
    pub phase: String,
    /// Barrier epoch (number of `sync()`s the block had executed).
    pub epoch: u32,
    /// Memory space, when the finding is about an access.
    pub space: Option<MemSpace>,
    /// Word address, when the finding is about an access.
    pub addr: Option<usize>,
    /// Human-readable description of the hazard.
    pub detail: String,
    /// True when the finding is explained by a deliberately injected fault
    /// recorded in `LaunchStats::faults` (it is then excluded from
    /// [`SanitizerReport::is_clean`]).
    pub fault_attributed: bool,
}

/// Structured result of a sanitized launch (or a merge over several).
///
/// Detailed findings are capped per block and per check so a
/// pathologically buggy kernel cannot blow up memory; `counts` always
/// holds the uncapped totals.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SanitizerReport {
    /// The mode the launch ran under.
    pub mode: SanitizerMode,
    /// Detailed findings, sorted by (block, check, address, thread).
    pub findings: Vec<Finding>,
    /// Total finding counts per check — `[memcheck, racecheck, synccheck,
    /// initcheck]` — including findings suppressed by the detail cap.
    pub counts: [u64; 4],
    /// How many detailed findings were attributed to injected faults.
    pub fault_attributed: u64,
}

impl SanitizerReport {
    /// Total findings across all checks (capped and suppressed alike).
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Findings for one check.
    pub fn count(&self, check: SanitizerCheck) -> u64 {
        self.counts[check.index()]
    }

    /// True when every finding (if any) is attributed to an injected
    /// fault — i.e. the kernel itself is clean. Counts cap-suppressed
    /// findings too: attribution is computed from uncapped per-block
    /// totals, not just the detailed records.
    pub fn is_clean(&self) -> bool {
        self.total() == self.fault_attributed
    }

    /// Fold another report into this one (used to aggregate the launches
    /// of a batched run).
    pub fn merge(&mut self, other: &SanitizerReport) {
        if other.mode.is_on() {
            self.mode = other.mode;
        }
        self.findings.extend(other.findings.iter().cloned());
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.fault_attributed += other.fault_attributed;
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        if self.total() == 0 {
            return "sanitizer: clean (0 findings)".into();
        }
        let per: Vec<String> = SanitizerCheck::ALL
            .iter()
            .filter(|c| self.count(**c) > 0)
            .map(|c| format!("{} {}", c.name(), self.count(*c)))
            .collect();
        format!(
            "sanitizer: {} finding(s) ({}){}",
            self.total(),
            per.join(", "),
            if self.fault_attributed > 0 {
                format!(", {} attributed to injected faults", self.fault_attributed)
            } else {
                String::new()
            }
        )
    }

    /// Export the report as a standalone JSON document (hand-rolled, like
    /// the Chrome-trace exporter — no serialization dependency).
    pub fn to_json(&self) -> String {
        fn opt(v: Option<usize>) -> String {
            v.map_or_else(|| "null".into(), |x| x.to_string())
        }
        let mut s = String::with_capacity(256 + 160 * self.findings.len());
        s.push_str("{\n");
        s.push_str(&format!(
            "  \"mode\": \"{}\",\n",
            match self.mode {
                SanitizerMode::Off => "off",
                SanitizerMode::Full => "full",
            }
        ));
        s.push_str("  \"counts\": {");
        for (i, c) in SanitizerCheck::ALL.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{}\": {}", c.name(), self.count(*c)));
        }
        s.push_str("},\n");
        s.push_str(&format!(
            "  \"fault_attributed\": {},\n  \"clean\": {},\n  \"findings\": [",
            self.fault_attributed,
            self.is_clean()
        ));
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"check\": \"{}\", \"block\": {}, \"thread\": {}, \
                 \"phase\": \"{}\", \"epoch\": {}, \"space\": {}, \"addr\": {}, \
                 \"fault_attributed\": {}, \"detail\": \"{}\"}}",
                f.check.name(),
                opt(f.block),
                opt(f.thread),
                json_escape(&f.phase),
                f.epoch,
                f.space
                    .map_or_else(|| "null".into(), |sp| format!("\"{}\"", sp.name())),
                opt(f.addr),
                f.fault_attributed,
                json_escape(&f.detail),
            ));
        }
        if !self.findings.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            '\n' => vec!['\\', 'n'],
            c => vec![c],
        })
        .collect()
}

/// Panic payload thrown by the per-block watchdog; `Gpu::launch` converts
/// it into `LaunchError::Watchdog` with block/phase provenance.
pub(crate) struct WatchdogTrip {
    pub(crate) ops: u64,
    pub(crate) limit: u64,
}

/// A watchdog trip is control flow, not a bug: suppress the default panic
/// hook's message/backtrace for `WatchdogTrip` payloads (every other panic
/// still reaches the previous hook). Installed once, the first time a
/// launch arms a watchdog.
pub(crate) fn install_quiet_watchdog_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<WatchdogTrip>().is_none() {
                prev(info);
            }
        }));
    });
}

/// Everything one block context accumulated for the launch report:
/// detailed findings, uncapped per-check totals, and per-block totals
/// (the latter drive exact fault attribution even past the detail cap).
#[derive(Default)]
pub(crate) struct ContextFindings {
    pub(crate) findings: Vec<Finding>,
    pub(crate) totals: [u64; 4],
    pub(crate) per_block: Vec<(usize, [u64; 4])>,
}

impl ContextFindings {
    /// Fold another context's accumulation into this one.
    pub(crate) fn absorb(&mut self, other: ContextFindings) {
        self.findings.extend(other.findings);
        for (t, o) in self.totals.iter_mut().zip(other.totals) {
            *t += o;
        }
        self.per_block.extend(other.per_block);
    }
}

/// Per-word shared-memory shadow: who touched the word in which barrier
/// epoch, and whether it was ever written.
#[derive(Clone, Copy)]
struct ShWord {
    init: bool,
    write_epoch: u32,
    writer: u32,
    multi_writer: bool,
    read_epoch: u32,
    reader: u32,
    multi_reader: bool,
}

const NEVER: u32 = u32::MAX;

impl Default for ShWord {
    fn default() -> Self {
        ShWord {
            init: false,
            write_epoch: NEVER,
            writer: 0,
            multi_writer: false,
            read_epoch: NEVER,
            reader: 0,
            multi_reader: false,
        }
    }
}

/// Detailed findings kept per (block, check); overflow is still counted.
const BLOCK_DETAIL_CAP: u32 = 8;
/// Detailed findings kept per check by the cross-block classifier.
const CLASSIFY_DETAIL_CAP: u64 = 32;

/// Per-`BlockCtx` sanitizer state: the shared-memory shadow, the block's
/// global written-set, barrier-arrival counters, the watchdog budget, and
/// the findings accumulated so far. Inert (and allocation-free) when both
/// the sanitizer and the watchdog are off.
pub(crate) struct SanitizerState {
    /// Checks enabled.
    pub(crate) on: bool,
    /// Watchdog op budget per block (0 = off). Independent of `on`.
    pub(crate) wd_limit: u64,
    /// Ops this block has issued against the watchdog budget.
    pub(crate) wd_ops: u64,
    block: usize,
    epoch: u32,
    phase: String,
    sh: Vec<ShWord>,
    gwritten: HashSet<usize>,
    arrivals: Vec<u32>,
    counts: [u32; 4],
    block_totals: [u64; 4],
    per_block: Vec<(usize, [u64; 4])>,
    findings: Vec<Finding>,
    totals: [u64; 4],
}

impl SanitizerState {
    pub(crate) fn new(on: bool, wd_limit: u64, shared_words: usize, nthreads: usize) -> Self {
        SanitizerState {
            on,
            wd_limit,
            wd_ops: 0,
            block: 0,
            epoch: 0,
            phase: String::new(),
            sh: if on {
                vec![ShWord::default(); shared_words]
            } else {
                Vec::new()
            },
            gwritten: HashSet::new(),
            arrivals: if on { vec![0; nthreads] } else { Vec::new() },
            counts: [0; 4],
            block_totals: [0; 4],
            per_block: Vec::new(),
            findings: Vec::new(),
            totals: [0; 4],
        }
    }

    /// Re-arm for a new block: flush the previous block's barrier check and
    /// reset every per-block structure. Accumulated findings survive until
    /// [`SanitizerState::take`].
    pub(crate) fn arm(&mut self, block: usize) {
        self.wd_ops = 0;
        if !self.on {
            return;
        }
        self.flush_barriers("kernel end");
        self.roll_block();
        self.block = block;
        self.epoch = 0;
        self.phase.clear();
        self.sh.fill(ShWord::default());
        self.gwritten.clear();
        self.counts = [0; 4];
    }

    /// Close the per-block total accounting for the current block.
    fn roll_block(&mut self) {
        if self.block_totals != [0; 4] {
            self.per_block.push((self.block, self.block_totals));
            self.block_totals = [0; 4];
        }
    }

    pub(crate) fn set_phase(&mut self, label: &str) {
        if self.on {
            self.phase.clear();
            self.phase.push_str(label);
        }
    }

    /// Drain everything this context accumulated (flushing the final
    /// block's barrier check first).
    pub(crate) fn take(&mut self) -> ContextFindings {
        if self.on {
            self.flush_barriers("kernel end");
            self.roll_block();
        }
        let totals = self.totals;
        self.totals = [0; 4];
        ContextFindings {
            findings: std::mem::take(&mut self.findings),
            totals,
            per_block: std::mem::take(&mut self.per_block),
        }
    }

    fn push(
        &mut self,
        check: SanitizerCheck,
        thread: Option<usize>,
        space: Option<MemSpace>,
        addr: Option<usize>,
        detail: String,
    ) {
        let i = check.index();
        self.totals[i] += 1;
        self.block_totals[i] += 1;
        if self.counts[i] >= BLOCK_DETAIL_CAP {
            return;
        }
        self.counts[i] += 1;
        self.findings.push(Finding {
            check,
            block: Some(self.block),
            thread,
            phase: self.phase.clone(),
            epoch: self.epoch,
            space,
            addr,
            detail,
            fault_attributed: false,
        });
    }

    /// A thread announced barrier participation (`ThreadCtx::barrier`).
    pub(crate) fn barrier(&mut self, tid: usize) {
        if self.on {
            self.arrivals[tid] += 1;
        }
    }

    /// A block-wide `sync()`: run the synccheck and open a new epoch.
    pub(crate) fn on_sync(&mut self) {
        if !self.on {
            return;
        }
        self.flush_barriers("sync()");
        self.epoch += 1;
    }

    /// Synccheck: all threads must have announced the same number of
    /// barrier arrivals by each boundary (a `sync()` or kernel end).
    fn flush_barriers(&mut self, at: &str) {
        let max = self.arrivals.iter().copied().max().unwrap_or(0);
        if max > 0 {
            for tid in 0..self.arrivals.len() {
                let got = self.arrivals[tid];
                if got < max {
                    self.push(
                        SanitizerCheck::Synccheck,
                        Some(tid),
                        None,
                        None,
                        format!(
                            "divergent barrier: thread {tid} reached {got} of {max} \
                             barrier arrivals before {at}"
                        ),
                    );
                }
            }
        }
        self.arrivals.fill(0);
    }

    /// Shared-memory load. Returns false when the access is out of bounds
    /// and must be skipped (the caller substitutes 0.0).
    pub(crate) fn shared_load(&mut self, tid: usize, word: usize) -> bool {
        if word >= self.sh.len() {
            self.push(
                SanitizerCheck::Memcheck,
                Some(tid),
                Some(MemSpace::Shared),
                Some(word),
                format!(
                    "shared load out of bounds: word {word} >= {} shared words",
                    self.sh.len()
                ),
            );
            return false;
        }
        let w = self.sh[word];
        let t = tid as u32;
        if !w.init {
            self.push(
                SanitizerCheck::Initcheck,
                Some(tid),
                Some(MemSpace::Shared),
                Some(word),
                format!("read of uninitialized shared word {word}"),
            );
        }
        if w.write_epoch == self.epoch && (w.writer != t || w.multi_writer) {
            self.push(
                SanitizerCheck::Racecheck,
                Some(tid),
                Some(MemSpace::Shared),
                Some(word),
                format!(
                    "shared word {word} written by thread {} and read by thread {tid} \
                     with no sync() in between",
                    w.writer
                ),
            );
        }
        let w = &mut self.sh[word];
        if w.read_epoch == self.epoch {
            if w.reader != t {
                w.multi_reader = true;
            }
        } else {
            w.read_epoch = self.epoch;
            w.reader = t;
            w.multi_reader = false;
        }
        true
    }

    /// Shared-memory store. `landed` is false when fault injection dropped
    /// the store (the word then stays uninitialized). Returns false when
    /// out of bounds and the store must be skipped.
    pub(crate) fn shared_store(&mut self, tid: usize, word: usize, landed: bool) -> bool {
        if word >= self.sh.len() {
            self.push(
                SanitizerCheck::Memcheck,
                Some(tid),
                Some(MemSpace::Shared),
                Some(word),
                format!(
                    "shared store out of bounds: word {word} >= {} shared words",
                    self.sh.len()
                ),
            );
            return false;
        }
        let w = self.sh[word];
        let t = tid as u32;
        if w.write_epoch == self.epoch && (w.writer != t || w.multi_writer) {
            self.push(
                SanitizerCheck::Racecheck,
                Some(tid),
                Some(MemSpace::Shared),
                Some(word),
                format!(
                    "write-write hazard: shared word {word} written by thread {} and \
                     thread {tid} in the same barrier epoch",
                    w.writer
                ),
            );
        }
        if w.read_epoch == self.epoch && (w.reader != t || w.multi_reader) {
            self.push(
                SanitizerCheck::Racecheck,
                Some(tid),
                Some(MemSpace::Shared),
                Some(word),
                format!(
                    "read-write hazard: shared word {word} read by thread {} and \
                     written by thread {tid} in the same barrier epoch",
                    w.reader
                ),
            );
        }
        let w = &mut self.sh[word];
        if w.write_epoch == self.epoch {
            if w.writer != t {
                w.multi_writer = true;
            }
        } else {
            w.write_epoch = self.epoch;
            w.writer = t;
            w.multi_writer = false;
        }
        if landed {
            w.init = true;
        }
        true
    }

    /// Global load. Returns false when out of bounds (skip, read 0.0).
    pub(crate) fn global_load(&mut self, tid: usize, word: usize, shadow: &LaunchShadow) -> bool {
        if word >= shadow.gwords {
            self.push(
                SanitizerCheck::Memcheck,
                Some(tid),
                Some(MemSpace::Global),
                Some(word),
                format!(
                    "global load out of bounds: word {word} beyond the \
                     {}-word device allocation",
                    shadow.gwords
                ),
            );
            return false;
        }
        LaunchShadow::stamp(&shadow.reader[word], self.block as u32 + 1);
        if !shadow.host_init(word) && !self.gwritten.contains(&word) {
            self.push(
                SanitizerCheck::Initcheck,
                Some(tid),
                Some(MemSpace::Global),
                Some(word),
                format!("read of never-written global word {word}"),
            );
        }
        true
    }

    /// Global store. `landed` is false when fault injection dropped the
    /// store. Returns false when out of bounds (skip).
    pub(crate) fn global_store(
        &mut self,
        tid: usize,
        word: usize,
        landed: bool,
        shadow: &LaunchShadow,
    ) -> bool {
        if word >= shadow.gwords {
            self.push(
                SanitizerCheck::Memcheck,
                Some(tid),
                Some(MemSpace::Global),
                Some(word),
                format!(
                    "global store out of bounds: word {word} beyond the \
                     {}-word device allocation",
                    shadow.gwords
                ),
            );
            return false;
        }
        if landed {
            LaunchShadow::stamp(&shadow.writer[word], self.block as u32 + 1);
            self.gwritten.insert(word);
        }
        true
    }

    /// Alignment/straddle check for two-word (complex) global accesses at
    /// `word, word + 1`.
    pub(crate) fn complex_global(&mut self, tid: usize, word: usize, shadow: &LaunchShadow) {
        if let Some((start, len)) = shadow.alloc_of(word) {
            if !(word - start).is_multiple_of(2) {
                self.push(
                    SanitizerCheck::Memcheck,
                    Some(tid),
                    Some(MemSpace::Global),
                    Some(word),
                    format!(
                        "misaligned complex access: word {word} is at odd offset \
                         {} within its allocation",
                        word - start
                    ),
                );
            } else if word + 1 >= start + len {
                self.push(
                    SanitizerCheck::Memcheck,
                    Some(tid),
                    Some(MemSpace::Global),
                    Some(word),
                    format!(
                        "complex access at word {word} straddles the end of its \
                         {len}-word allocation"
                    ),
                );
            }
        }
    }
}

/// Launch-level shadow for global memory, shared (read-only plus atomic
/// stamp slots) across the replay worker threads.
///
/// `writer[w]` / `reader[w]` record which block touched word `w`:
/// 0 = none, `b + 1` = exactly block `b`, `u32::MAX` = more than one
/// block. The CAS discipline makes the final value independent of worker
/// scheduling, so classification is deterministic.
pub(crate) struct LaunchShadow {
    gwords: usize,
    host_init: Vec<u64>,
    allocs: Vec<(usize, usize)>,
    writer: Vec<AtomicU32>,
    reader: Vec<AtomicU32>,
}

const MULTI: u32 = u32::MAX;

impl LaunchShadow {
    /// Snapshot the allocator and host-initialization state at launch.
    pub(crate) fn new(gmem: &GlobalMemory) -> Self {
        let gwords = gmem.allocated_words();
        LaunchShadow {
            gwords,
            host_init: gmem.init_snapshot(),
            allocs: gmem.alloc_table(),
            writer: (0..gwords).map(|_| AtomicU32::new(0)).collect(),
            reader: (0..gwords).map(|_| AtomicU32::new(0)).collect(),
        }
    }

    fn host_init(&self, word: usize) -> bool {
        self.host_init
            .get(word / 64)
            .is_some_and(|bits| bits & (1 << (word % 64)) != 0)
    }

    /// The bump allocation containing `word`, as `(start, len)`.
    fn alloc_of(&self, word: usize) -> Option<(usize, usize)> {
        let i = self.allocs.partition_point(|&(start, _)| start <= word);
        let (start, len) = *self.allocs.get(i.checked_sub(1)?)?;
        (word < start + len).then_some((start, len))
    }

    fn stamp(slot: &AtomicU32, tag: u32) {
        let mut cur = slot.load(Ordering::Relaxed);
        loop {
            if cur == tag || cur == MULTI {
                return;
            }
            let next = if cur == 0 { tag } else { MULTI };
            match slot.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(c) => cur = c,
            }
        }
    }

    /// Post-launch classification of cross-block global hazards.
    pub(crate) fn classify(&self, findings: &mut Vec<Finding>, totals: &mut [u64; 4]) {
        let mut detailed = 0u64;
        for w in 0..self.gwords {
            let wr = self.writer[w].load(Ordering::Relaxed);
            if wr == 0 {
                continue;
            }
            let rd = self.reader[w].load(Ordering::Relaxed);
            let (block, detail) = if wr == MULTI {
                (
                    None,
                    format!("global word {w} written by more than one block in one launch"),
                )
            } else if rd != 0 && rd != wr {
                let by = if rd == MULTI {
                    "several other blocks".to_string()
                } else {
                    format!("block {}", rd - 1)
                };
                (
                    Some((wr - 1) as usize),
                    format!(
                        "global word {w} written by block {} and read by {by} \
                         with no ordering between them",
                        wr - 1
                    ),
                )
            } else {
                continue;
            };
            totals[SanitizerCheck::Racecheck.index()] += 1;
            if detailed < CLASSIFY_DETAIL_CAP {
                detailed += 1;
                findings.push(Finding {
                    check: SanitizerCheck::Racecheck,
                    block,
                    thread: None,
                    phase: String::new(),
                    epoch: 0,
                    space: Some(MemSpace::Global),
                    addr: Some(w),
                    detail,
                    fault_attributed: false,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_round_trips_basics() {
        let mut r = SanitizerReport {
            mode: SanitizerMode::Full,
            ..Default::default()
        };
        assert!(r.is_clean());
        r.counts[SanitizerCheck::Racecheck.index()] = 2;
        r.findings.push(Finding {
            check: SanitizerCheck::Racecheck,
            block: Some(3),
            thread: Some(5),
            phase: "qr.column \"x\"".into(),
            epoch: 2,
            space: Some(MemSpace::Shared),
            addr: Some(17),
            detail: "write-write hazard".into(),
            fault_attributed: false,
        });
        r.findings.push(Finding {
            check: SanitizerCheck::Racecheck,
            block: None,
            thread: None,
            phase: String::new(),
            epoch: 0,
            space: Some(MemSpace::Global),
            addr: Some(9),
            detail: "cross-block".into(),
            fault_attributed: false,
        });
        assert!(!r.is_clean());
        let json = r.to_json();
        assert!(json.contains("\"racecheck\": 2"));
        assert!(json.contains("\"block\": null"));
        assert!(json.contains("\\\"x\\\""));
        assert!(json.contains("\"clean\": false"));
        assert!(r.summary().contains("racecheck 2"));
    }

    #[test]
    fn merge_accumulates_counts_and_findings() {
        let mut a = SanitizerReport::default();
        let mut b = SanitizerReport {
            mode: SanitizerMode::Full,
            ..Default::default()
        };
        b.counts = [1, 0, 0, 2];
        b.fault_attributed = 1;
        b.findings.push(Finding {
            check: SanitizerCheck::Memcheck,
            block: Some(0),
            thread: Some(1),
            phase: "p".into(),
            epoch: 0,
            space: Some(MemSpace::Global),
            addr: Some(4),
            detail: "oob".into(),
            fault_attributed: true,
        });
        a.merge(&b);
        a.merge(&b);
        assert_eq!(a.total(), 6);
        assert_eq!(a.findings.len(), 2);
        assert_eq!(a.fault_attributed, 2);
        assert_eq!(a.mode, SanitizerMode::Full);
        // Not clean: only 2 of the 6 total findings are fault-attributed.
        assert!(!a.is_clean());

        // A report whose every finding is attributed is clean.
        let all_attributed = SanitizerReport {
            mode: SanitizerMode::Full,
            counts: [0, 0, 0, 3],
            fault_attributed: 3,
            ..Default::default()
        };
        assert!(all_attributed.is_clean());
    }

    #[test]
    fn shared_shadow_flags_the_canonical_hazards() {
        let mut s = SanitizerState::new(true, 0, 4, 8);
        s.arm(0);
        // Uninitialized read.
        assert!(s.shared_load(0, 1));
        // Write then same-epoch read by another thread.
        assert!(s.shared_store(0, 2, true));
        assert!(s.shared_load(1, 2));
        // Same-epoch write-write — and the word was also read by thread 1
        // this epoch, so the store is simultaneously a read-write hazard.
        assert!(s.shared_store(3, 2, true));
        // After a sync, a read of the same word is ordered: no new hazard.
        s.on_sync();
        assert!(s.shared_load(4, 2));
        // OOB is flagged and skipped.
        assert!(!s.shared_load(0, 9));
        let ContextFindings { findings, totals, .. } = s.take();
        assert_eq!(totals[SanitizerCheck::Initcheck.index()], 1);
        assert_eq!(totals[SanitizerCheck::Racecheck.index()], 3);
        assert_eq!(totals[SanitizerCheck::Memcheck.index()], 1);
        assert_eq!(totals[SanitizerCheck::Synccheck.index()], 0);
        assert_eq!(findings.len(), 5);
        assert!(findings.iter().all(|f| f.block == Some(0)));
    }

    #[test]
    fn same_thread_access_and_epoch_separation_are_clean() {
        let mut s = SanitizerState::new(true, 0, 4, 8);
        s.arm(7);
        assert!(s.shared_store(2, 0, true));
        assert!(s.shared_load(2, 0)); // own write, same epoch: fine
        s.on_sync();
        assert!(s.shared_load(5, 0)); // other thread after barrier: fine
        s.on_sync();
        assert!(s.shared_store(6, 0, true)); // write after everyone read: fine
        let ContextFindings { findings, totals, .. } = s.take();
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(totals, [0; 4]);
    }

    #[test]
    fn barrier_divergence_is_flagged_at_the_boundary() {
        let mut s = SanitizerState::new(true, 0, 1, 4);
        s.arm(2);
        for tid in 0..4 {
            if tid != 3 {
                s.barrier(tid);
            }
        }
        s.on_sync();
        let ContextFindings { findings, totals, .. } = s.take();
        assert_eq!(totals[SanitizerCheck::Synccheck.index()], 1);
        assert_eq!(findings[0].thread, Some(3));
        assert_eq!(findings[0].block, Some(2));
    }

    #[test]
    fn detail_cap_suppresses_but_still_counts() {
        let mut s = SanitizerState::new(true, 0, 1, 2);
        s.arm(0);
        for _ in 0..20 {
            s.shared_load(0, 5); // OOB every time
        }
        let ContextFindings { findings, totals, .. } = s.take();
        assert_eq!(totals[SanitizerCheck::Memcheck.index()], 20);
        assert_eq!(findings.len(), BLOCK_DETAIL_CAP as usize);
    }

    #[test]
    fn shadow_stamp_classifies_cross_block_traffic() {
        let mut g = GlobalMemory::new(8);
        let p = g.alloc(8);
        // Host initializes the first half only.
        g.h2d(p, &[1.0; 4]);
        let shadow = LaunchShadow::new(&g);

        let mut s = SanitizerState::new(true, 0, 0, 1);
        s.arm(0);
        assert!(s.global_store(0, 2, true, &shadow));
        s.arm(1);
        assert!(s.global_load(0, 2, &shadow)); // block 1 reads block 0's word
        assert!(s.global_load(0, 6, &shadow)); // never written anywhere
        assert!(!s.global_load(0, 99, &shadow)); // OOB
        let ContextFindings { findings, mut totals, .. } = s.take();
        assert_eq!(totals[SanitizerCheck::Initcheck.index()], 1);
        assert_eq!(totals[SanitizerCheck::Memcheck.index()], 1);
        assert!(findings
            .iter()
            .any(|f| f.check == SanitizerCheck::Initcheck && f.addr == Some(6)));

        let mut cross = Vec::new();
        shadow.classify(&mut cross, &mut totals);
        assert_eq!(totals[SanitizerCheck::Racecheck.index()], 1);
        assert_eq!(cross.len(), 1);
        assert_eq!(cross[0].addr, Some(2));
        assert_eq!(cross[0].block, Some(0));
    }

    #[test]
    fn alloc_table_alignment_checks() {
        let mut g = GlobalMemory::new(16);
        let _a = g.alloc(3); // odd-sized first allocation
        let b = g.alloc(9); // complex buffer starts at word 3, odd length
        let shadow = LaunchShadow::new(&g);
        let mut s = SanitizerState::new(true, 0, 0, 1);
        s.arm(0);
        // Offset 0 within the complex buffer: aligned, no finding.
        s.complex_global(0, b.word(), &shadow);
        // Odd offset within the allocation: misaligned.
        s.complex_global(0, b.word() + 1, &shadow);
        // Even offset whose pair runs past the odd-length allocation end.
        s.complex_global(0, b.word() + 8, &shadow);
        let ContextFindings { findings, totals, .. } = s.take();
        assert_eq!(totals[SanitizerCheck::Memcheck.index()], 2);
        assert!(findings[0].detail.contains("misaligned"));
        assert!(findings[1].detail.contains("straddles"));
    }
}
