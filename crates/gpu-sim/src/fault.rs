//! Deterministic, seeded fault injection.
//!
//! A [`FaultPlan`] attached to a `LaunchConfig` selects a set of blocks
//! (seeded PRNG, no wall-clock randomness) and injects one fault into each:
//! a bit flip in a register-file, shared-memory or global-memory word at
//! that block's n-th store, or an abort that silently drops every store
//! the block makes from that point on. Campaigns are bit-reproducible: the
//! same seed over the same grid always faults the same blocks in the same
//! way, and every *applied* fault is recorded in `LaunchStats::faults` —
//! the simulator plays the role of the ECC/machine-check reporting a real
//! device would provide, which is what lets a recovery layer guarantee it
//! saw every injected fault even when a flipped bit still produces a
//! finite (plausible-looking) value.

use std::collections::HashMap;

/// What kind of fault to inject into a chosen block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Flip one bit of a value as it is written to a register array.
    RegisterBitFlip,
    /// Flip one bit of a value as it is stored to block shared memory.
    SharedBitFlip,
    /// Flip one bit of a value as it is stored to global memory.
    GlobalBitFlip,
    /// Kill the block mid-kernel: from the n-th global store on, every
    /// store (global and shared) is silently dropped.
    BlockAbort,
    /// Silent data corruption: flip a *low-order mantissa* bit of the
    /// first well-scaled (|v| >= 0.5) global store at or after the n-th,
    /// so the corrupted value stays finite and plausible. Unlike every
    /// other kind, an applied `SilentFlip` is reported in
    /// `LaunchStats::silent_faults`, not `LaunchStats::faults` — the
    /// simulated ECC/machine-check does *not* see it, which models the
    /// undetected-error regime that algorithm-based verification
    /// (checksum/residual screens) exists to catch.
    SilentFlip,
}

const MIXED_KINDS: [FaultKind; 4] = [
    FaultKind::GlobalBitFlip,
    FaultKind::RegisterBitFlip,
    FaultKind::BlockAbort,
    FaultKind::SharedBitFlip,
];

/// A seeded fault-injection campaign for one launch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// PRNG seed; the same seed over the same grid reproduces the exact
    /// same faults.
    pub seed: u64,
    /// Number of distinct blocks to fault (clamped to the grid size).
    pub faults: usize,
    /// Restrict the campaign to one fault kind; `None` mixes all four.
    pub kind: Option<FaultKind>,
}

impl FaultPlan {
    pub fn new(seed: u64, faults: usize) -> Self {
        FaultPlan {
            seed,
            faults,
            kind: None,
        }
    }

    pub fn kind(mut self, kind: FaultKind) -> Self {
        self.kind = Some(kind);
        self
    }

    /// The blocks this plan faults on a `grid_blocks`-block launch,
    /// sorted ascending (for tests and campaign bookkeeping).
    pub fn target_blocks(&self, grid_blocks: usize) -> Vec<usize> {
        let mut blocks: Vec<usize> = self.materialize(grid_blocks).into_keys().collect();
        blocks.sort_unstable();
        blocks
    }

    /// Materialise the plan over a concrete grid: a deterministic map from
    /// block id to the fault injected into it.
    pub(crate) fn materialize(&self, grid_blocks: usize) -> FaultMap {
        let mut rng = SplitMix64::new(self.seed);
        let want = self.faults.min(grid_blocks);
        let mut map = FaultMap::with_capacity(want);
        // Distinct-block selection: a seeded partial Fisher-Yates over the
        // block ids, so the choice is deterministic and uniform whatever
        // the want/grid ratio.
        let mut ids: Vec<usize> = (0..grid_blocks).collect();
        for slot in 0..want {
            let j = slot + rng.below((grid_blocks - slot) as u64) as usize;
            ids.swap(slot, j);
            let block = ids[slot];
            let kind = self
                .kind
                .unwrap_or(MIXED_KINDS[(rng.next() % 4) as usize]);
            map.insert(
                block,
                BlockFault {
                    kind,
                    bit: rng.below(32) as u32,
                    // Early stores so even the smallest kernels (a handful
                    // of words per block) still trigger the fault.
                    nth_store: rng.below(24) as u32,
                },
            );
        }
        map
    }
}

/// One fault that was actually applied during a launch, as recorded in
/// `LaunchStats::faults`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultRecord {
    pub block: usize,
    pub kind: FaultKind,
    /// Which bit of the 32-bit word was flipped (meaningless for aborts).
    pub bit: u32,
    /// Which store (per fault-kind counter, within the block) triggered.
    pub nth_store: u32,
}

pub(crate) type FaultMap = HashMap<usize, BlockFault>;

/// The fault armed for one block.
#[derive(Clone, Copy, Debug)]
pub(crate) struct BlockFault {
    pub kind: FaultKind,
    pub bit: u32,
    pub nth_store: u32,
}

/// Per-block-context fault state: armed from the plan when the context
/// (re)binds to a block, fired at most once per block, with every applied
/// fault accumulated for the launch's `LaunchStats::faults`.
#[derive(Default)]
pub(crate) struct FaultState {
    pending: Option<BlockFault>,
    block: usize,
    aborted: bool,
    gstores: u32,
    sstores: u32,
    rstores: u32,
    pub(crate) applied: Vec<FaultRecord>,
}

impl FaultState {
    /// Re-arm for `block` (keeps the accumulated `applied` records).
    pub(crate) fn arm(&mut self, map: Option<&FaultMap>, block: usize) {
        self.pending = map.and_then(|m| m.get(&block).copied());
        self.block = block;
        self.aborted = false;
        self.gstores = 0;
        self.sstores = 0;
        self.rstores = 0;
    }

    fn fire(&mut self, f: BlockFault, nth: u32) {
        self.applied.push(FaultRecord {
            block: self.block,
            kind: f.kind,
            bit: f.bit,
            nth_store: nth,
        });
        self.pending = None;
    }

    /// Filter a global store: `None` drops it (aborted block), `Some`
    /// passes the (possibly bit-flipped) value through.
    #[inline]
    pub(crate) fn on_global_store(&mut self, v: f32) -> Option<f32> {
        if self.aborted {
            return None;
        }
        let Some(f) = self.pending else {
            return Some(v);
        };
        let n = self.gstores;
        self.gstores += 1;
        match f.kind {
            FaultKind::GlobalBitFlip if n == f.nth_store => {
                self.fire(f, n);
                Some(f32::from_bits(v.to_bits() ^ (1 << f.bit)))
            }
            // First well-scaled store at or after the trigger point: the
            // |v| >= 0.5 guard keeps the flip finite (mantissa bits of a
            // normal float) and bounds the relative error to [1/8, 1/2],
            // large enough for a checksum screen yet invisible to the
            // finite screen. Bits 21-22 only: lower bits would shrink the
            // relative change below verification tolerances.
            FaultKind::SilentFlip if n >= f.nth_store && v.abs() >= 0.5 => {
                self.fire(f, n);
                Some(f32::from_bits(v.to_bits() ^ (1 << (21 + f.bit % 2))))
            }
            FaultKind::BlockAbort if n == f.nth_store => {
                self.fire(f, n);
                self.aborted = true;
                None
            }
            _ => Some(v),
        }
    }

    /// Filter a shared-memory store (same contract as global stores).
    #[inline]
    pub(crate) fn on_shared_store(&mut self, v: f32) -> Option<f32> {
        if self.aborted {
            return None;
        }
        let Some(f) = self.pending else {
            return Some(v);
        };
        if f.kind == FaultKind::SharedBitFlip {
            let n = self.sstores;
            self.sstores += 1;
            if n == f.nth_store {
                self.fire(f, n);
                return Some(f32::from_bits(v.to_bits() ^ (1 << f.bit)));
            }
        }
        Some(v)
    }

    /// On a register-array store, the bit to flip (if this store faults).
    #[inline]
    pub(crate) fn on_reg_store(&mut self) -> Option<u32> {
        let f = self.pending?;
        if f.kind != FaultKind::RegisterBitFlip {
            return None;
        }
        let n = self.rstores;
        self.rstores += 1;
        if n == f.nth_store {
            self.fire(f, n);
            Some(f.bit)
        } else {
            None
        }
    }
}

/// SplitMix64: tiny, high-quality, seedable — the workspace's standard
/// offline PRNG (no `rand` dependency).
pub(crate) struct SplitMix64(u64);

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    pub(crate) fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n` (n >= 1).
    pub(crate) fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_and_distinct() {
        let p = FaultPlan::new(42, 10);
        let a = p.materialize(100);
        let b = p.materialize(100);
        assert_eq!(a.len(), 10);
        let mut ka: Vec<_> = a.keys().copied().collect();
        let mut kb: Vec<_> = b.keys().copied().collect();
        ka.sort_unstable();
        kb.sort_unstable();
        assert_eq!(ka, kb, "same seed must fault the same blocks");
        for (k, f) in &a {
            let g = b[k];
            assert_eq!((f.bit, f.nth_store), (g.bit, g.nth_store));
        }
    }

    #[test]
    fn plan_clamps_to_grid_and_covers_it() {
        let p = FaultPlan::new(7, 1000);
        let m = p.materialize(8);
        assert_eq!(m.len(), 8);
        assert_eq!(p.target_blocks(8), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::new(1, 20).target_blocks(1000);
        let b = FaultPlan::new(2, 20).target_blocks(1000);
        assert_ne!(a, b);
    }

    #[test]
    fn fault_state_fires_once_at_nth_store() {
        let mut map = FaultMap::new();
        map.insert(
            3,
            BlockFault {
                kind: FaultKind::GlobalBitFlip,
                bit: 0,
                nth_store: 2,
            },
        );
        let mut st = FaultState::default();
        st.arm(Some(&map), 3);
        assert_eq!(st.on_global_store(1.0), Some(1.0));
        assert_eq!(st.on_global_store(1.0), Some(1.0));
        // Third store: bit 0 of 1.0f32 flips.
        let flipped = st.on_global_store(1.0).unwrap();
        assert_ne!(flipped, 1.0);
        assert_eq!(flipped.to_bits(), 1.0f32.to_bits() ^ 1);
        // Fired once; subsequent stores are clean.
        assert_eq!(st.on_global_store(2.0), Some(2.0));
        assert_eq!(st.applied.len(), 1);
        assert_eq!(st.applied[0].block, 3);
        // A block without an entry is untouched.
        st.arm(Some(&map), 4);
        assert_eq!(st.on_global_store(5.0), Some(5.0));
        assert_eq!(st.applied.len(), 1);
    }

    #[test]
    fn silent_flip_waits_for_well_scaled_store_and_stays_finite() {
        let mut map = FaultMap::new();
        map.insert(
            5,
            BlockFault {
                kind: FaultKind::SilentFlip,
                bit: 3, // 21 + 3 % 2 = bit 22
                nth_store: 1,
            },
        );
        let mut st = FaultState::default();
        st.arm(Some(&map), 5);
        // Store 0 is before the trigger point; store 1 is too small.
        assert_eq!(st.on_global_store(2.0), Some(2.0));
        assert_eq!(st.on_global_store(1e-3), Some(1e-3));
        // Store 2 is the first well-scaled store at/after nth_store.
        let v = -0.75f32;
        let flipped = st.on_global_store(v).unwrap();
        assert!(flipped.is_finite());
        assert_ne!(flipped, v);
        assert_eq!(flipped.to_bits(), v.to_bits() ^ (1 << 22));
        let rel = ((flipped - v) / v).abs();
        assert!((0.125..=0.5).contains(&rel), "rel change {rel}");
        // Fired once; later stores are clean.
        assert_eq!(st.on_global_store(0.9), Some(0.9));
        assert_eq!(st.applied.len(), 1);
        assert_eq!(st.applied[0].kind, FaultKind::SilentFlip);
    }

    #[test]
    fn abort_drops_all_later_stores() {
        let mut map = FaultMap::new();
        map.insert(
            0,
            BlockFault {
                kind: FaultKind::BlockAbort,
                bit: 0,
                nth_store: 1,
            },
        );
        let mut st = FaultState::default();
        st.arm(Some(&map), 0);
        assert_eq!(st.on_global_store(1.0), Some(1.0));
        assert_eq!(st.on_global_store(1.0), None);
        assert_eq!(st.on_global_store(1.0), None);
        assert_eq!(st.on_shared_store(1.0), None);
        assert_eq!(st.applied.len(), 1);
        // Re-arming for the next block clears the abort.
        st.arm(Some(&map), 7);
        assert_eq!(st.on_global_store(1.0), Some(1.0));
    }
}
