//! Host-side services: PCIe transfers and the driver copy path.
//!
//! These are used by the hybrid CPU+GPU baseline (Section VI-A) where panel
//! factorizations travel between host and device, and by the bandwidth
//! microbenchmark's `cudaMemcpy` comparison (Section II-B2).

use crate::config::GpuConfig;

/// Timing model for transfers across the host link.
#[derive(Clone, Debug)]
pub struct PcieModel {
    /// Link bandwidth in GB/s.
    pub gbs: f64,
    /// Per-transfer latency in microseconds (driver + DMA setup).
    pub latency_us: f64,
}

impl PcieModel {
    pub fn from_config(cfg: &GpuConfig) -> Self {
        PcieModel {
            gbs: cfg.pcie_gbs,
            latency_us: cfg.pcie_latency_us,
        }
    }

    /// Seconds to move `bytes` across the link in one transfer.
    pub fn transfer_secs(&self, bytes: usize) -> f64 {
        self.latency_us * 1e-6 + bytes as f64 / (self.gbs * 1e9)
    }

    /// Seconds for `n` separate transfers of `bytes` each (latency paid per
    /// call — this is what makes per-problem MAGMA calls so expensive for
    /// small matrices).
    pub fn transfers_secs(&self, n: usize, bytes: usize) -> f64 {
        n as f64 * self.transfer_secs(bytes)
    }
}

/// Seconds for an on-device `cudaMemcpy` of `bytes` (the driver path that
/// achieves 84 GB/s on the Quadro 6000, vs 108 GB/s for a simple kernel).
pub fn cuda_memcpy_secs(cfg: &GpuConfig, bytes: usize) -> f64 {
    // Read + write traffic at the driver path's efficiency.
    2.0 * bytes as f64 / (cfg.dram_peak_gbs * cfg.memcpy_efficiency * 1e9)
}

/// Effective `cudaMemcpy` bandwidth in GB/s (bytes copied per second).
pub fn cuda_memcpy_gbs(cfg: &GpuConfig, bytes: usize) -> f64 {
    // Reported as copy throughput: read+write counted, matching the paper.
    2.0 * bytes as f64 / cuda_memcpy_secs(cfg, bytes) / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pcie_latency_dominates_small_transfers() {
        let p = PcieModel {
            gbs: 6.0,
            latency_us: 15.0,
        };
        let small = p.transfer_secs(1024);
        assert!((small - 15.17e-6).abs() < 0.1e-6);
        // 1000 small transfers cost ~1000x the latency; one big transfer of
        // the same total bytes is far cheaper.
        let many = p.transfers_secs(1000, 1024);
        let one = p.transfer_secs(1024 * 1000);
        assert!(many > 50.0 * one);
    }

    #[test]
    fn memcpy_matches_paper_measurement() {
        let cfg = GpuConfig::quadro_6000();
        let gbs = cuda_memcpy_gbs(&cfg, 16 << 20);
        assert!((gbs - 84.0).abs() < 1.0, "cudaMemcpy {gbs} GB/s, paper: 84");
    }
}
