//! Launch timing: per-phase records and whole-launch statistics.
//!
//! Per-block phase records come from the traced block (all blocks execute
//! the same kernel, so one is representative). The launch combines them
//! with the occupancy and grid size: a *wave* of `blocks_per_sm * num_sms`
//! blocks executes at the slowest of three bounds per phase — the warp
//! critical path (latency-bound, the regime of the paper's factorizations),
//! the SM issue throughput for all resident blocks, and chip-wide DRAM
//! bandwidth (the regime of the one-problem-per-thread approach).

use crate::config::GpuConfig;
use crate::exec::occupancy::Occupancy;

/// Timing and traffic of one phase (sync-delimited section) of a block.
#[derive(Clone, Debug)]
pub struct PhaseRecord {
    pub label: String,
    /// Scoreboard critical path through the phase, including the closing
    /// barrier and the worst-warp bank-conflict replays.
    pub critical_cycles: u64,
    pub sync_cycles: u64,
    /// Issue cycles the whole block consumes on one SM (dual-issue folded).
    pub block_issue_cycles: u64,
    pub fp_instrs: u64,
    pub ldst_instrs: u64,
    pub sfu_instrs: u64,
    /// Thread-level FLOPs performed by the block in this phase.
    pub flops: u64,
    /// Thread-level shared-memory accesses.
    pub shared_accesses: u64,
    pub conflict_replays: u64,
    /// Coalesced global transactions issued by the block.
    pub global_transactions: u64,
    /// Distinct DRAM lines touched (bytes): the block's true DRAM traffic.
    pub global_line_bytes: u64,
    /// DRAM traffic from register spills that overflow the L1.
    pub spill_dram_bytes: u64,
    pub had_sync: bool,
}

/// What bound a phase's duration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PhaseBound {
    /// Warp critical path (latency-bound).
    Latency,
    /// SM issue throughput with all resident blocks.
    Issue,
    /// Chip-wide DRAM bandwidth.
    Dram,
}

/// Duration of one phase for a full wave of blocks.
#[derive(Clone, Debug)]
pub struct PhaseTime {
    pub label: String,
    pub cycles: f64,
    pub bound: PhaseBound,
}

/// Statistics of one kernel launch.
#[derive(Clone, Debug)]
pub struct LaunchStats {
    pub grid_blocks: usize,
    pub threads_per_block: usize,
    pub occupancy: Occupancy,
    /// Per-block phase records from the traced block.
    pub phases: Vec<PhaseRecord>,
    /// Per-phase durations for a full wave, with the binding constraint.
    pub phase_times: Vec<PhaseTime>,
    /// Number of waves needed to run the whole grid.
    pub waves: usize,
    /// Total launch duration in hot-clock cycles.
    pub cycles: f64,
    /// Total launch duration in seconds (including the driver's fixed
    /// launch overhead).
    pub time_s: f64,
    /// The fixed driver overhead included in `time_s`.
    pub overhead_s: f64,
    /// Total FLOPs across the whole grid.
    pub flops: f64,
    /// Total DRAM traffic in bytes across the whole grid (incl. spills).
    pub dram_bytes: f64,
    pub clock_ghz: f64,
    /// Whether register spills went past the L1 into DRAM.
    pub spill_to_dram: bool,
    /// Host wall-clock seconds the simulator spent on this launch (tracing
    /// plus functional replay). Unlike every field above, this measures the
    /// *simulator*, not the simulated device, and varies run to run.
    pub sim_wall_s: f64,
    /// Blocks executed functionally on the host, excluding the traced
    /// block when one ran (0 under `ExecMode::Representative` unless a
    /// schedule-cache hit demoted block 0 to a functional block).
    pub sim_blocks: usize,
    /// Host worker threads used for the functional replay (1 = sequential).
    pub sim_host_threads: usize,
    /// Whether the launch took the fast (observer-free) execution path.
    /// Purely host-side telemetry: fast and slow launches produce
    /// bit-identical results, statuses and modeled cycles.
    pub sim_fast: bool,
    /// Whether the traced block's schedule came from the cross-launch
    /// cache (block 0 was demoted to a plain functional block).
    pub sim_sched_cache_hit: bool,
    /// Mean busy fraction of the replay workers: sum of per-worker busy
    /// time over `workers x replay wall time`. 1.0 when the block shards
    /// finish in lockstep; lower when the tail worker straggles.
    pub sim_worker_utilization: f64,
    /// Faults actually injected into this launch by the configured
    /// [`crate::FaultPlan`] (empty when no plan was set), sorted by block.
    /// This is the simulator's ECC/machine-check report: a recovery layer
    /// reads it to learn exactly which blocks were corrupted, including
    /// bit flips whose results still look finite.
    pub faults: Vec<crate::fault::FaultRecord>,
    /// [`crate::FaultKind::SilentFlip`] faults applied to this launch,
    /// kept out of `faults` on purpose: silent corruption is exactly the
    /// class the simulated ECC/machine-check does *not* report, so a
    /// recovery layer must not read this field — it exists only as
    /// campaign ground truth for verification experiments.
    pub silent_faults: Vec<crate::fault::FaultRecord>,
    /// Compute-sanitizer report for this launch (`None` unless the launch
    /// ran with [`crate::SanitizerMode::Full`]). `Some` with zero findings
    /// means the kernel came back clean.
    pub sanitizer: Option<crate::sanitize::SanitizerReport>,
}

impl LaunchStats {
    /// Host-side functional replay throughput in blocks per second
    /// (0 when nothing was replayed).
    pub fn sim_blocks_per_sec(&self) -> f64 {
        if self.sim_wall_s > 0.0 {
            self.sim_blocks as f64 / self.sim_wall_s
        } else {
            0.0
        }
    }

    /// Achieved throughput in GFLOP/s.
    pub fn gflops(&self) -> f64 {
        if self.time_s == 0.0 {
            0.0
        } else {
            self.flops / self.time_s / 1e9
        }
    }

    /// Achieved DRAM bandwidth in GB/s.
    pub fn dram_gbs(&self) -> f64 {
        if self.time_s == 0.0 {
            0.0
        } else {
            self.dram_bytes / self.time_s / 1e9
        }
    }

    /// Per-block cycles of one wave (what CUDA `clock()` deltas measure).
    pub fn wave_cycles(&self) -> f64 {
        self.phase_times.iter().map(|p| p.cycles).sum()
    }

    /// Sum of full-wave phase cycles whose label contains `pat`.
    pub fn cycles_for(&self, pat: &str) -> f64 {
        self.phase_times
            .iter()
            .filter(|p| p.label.contains(pat))
            .map(|p| p.cycles)
            .sum()
    }

    /// Sum of per-block FLOPs whose phase label contains `pat`.
    pub fn flops_for(&self, pat: &str) -> u64 {
        self.phases
            .iter()
            .filter(|p| p.label.contains(pat))
            .map(|p| p.flops)
            .sum()
    }

    /// Per-block FLOPs (traced block).
    pub fn flops_per_block(&self) -> u64 {
        self.phases.iter().map(|p| p.flops).sum()
    }

    /// Total shared-memory traffic in bytes across the grid.
    pub fn shared_bytes(&self) -> f64 {
        let per_block: u64 = self.phases.iter().map(|p| p.shared_accesses * 4).sum();
        per_block as f64 * self.grid_blocks as f64
    }

    /// Achieved shared-memory bandwidth in GB/s.
    pub fn shared_gbs(&self) -> f64 {
        if self.time_s == 0.0 {
            0.0
        } else {
            self.shared_bytes() / self.time_s / 1e9
        }
    }

    /// Total bank-conflict replays in the traced block.
    pub fn conflict_replays(&self) -> u64 {
        self.phases.iter().map(|p| p.conflict_replays).sum()
    }

    /// Human-readable launch summary (for examples and debugging).
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "launch: {} blocks x {} threads, {} wave(s), {:.0} cycles ({:.3} ms)",
            self.grid_blocks,
            self.threads_per_block,
            self.waves,
            self.cycles,
            self.time_s * 1e3
        );
        let _ = writeln!(
            s,
            "  occupancy: {} blocks/SM ({:?}-limited), {} regs/thread{}",
            self.occupancy.blocks_per_sm,
            self.occupancy.limiter,
            self.occupancy.regs_allocated,
            if self.occupancy.regs_spilled > 0 {
                format!(" (+{} spilled)", self.occupancy.regs_spilled)
            } else {
                String::new()
            }
        );
        let _ = writeln!(
            s,
            "  throughput: {:.1} GFLOPS, DRAM {:.1} GB/s, shared {:.1} GB/s",
            self.gflops(),
            self.dram_gbs(),
            self.shared_gbs()
        );
        // Aggregate wave time by binding constraint.
        let mut by_bound = [0.0f64; 3];
        for pt in &self.phase_times {
            by_bound[pt.bound as usize] += pt.cycles;
        }
        let wave = self.wave_cycles().max(1.0);
        let _ = writeln!(
            s,
            "  wave breakdown: {:.0}% latency-bound, {:.0}% issue-bound, {:.0}% DRAM-bound",
            100.0 * by_bound[PhaseBound::Latency as usize] / wave,
            100.0 * by_bound[PhaseBound::Issue as usize] / wave,
            100.0 * by_bound[PhaseBound::Dram as usize] / wave
        );
        s
    }
}

/// Duration of one phase when `nblocks` blocks share the chip.
pub(crate) fn phase_time(cfg: &GpuConfig, occ: &Occupancy, p: &PhaseRecord, nblocks: usize) -> PhaseTime {
    let blocks_per_sm_eff = nblocks.div_ceil(cfg.num_sms).min(occ.blocks_per_sm).max(1);
    let latency = p.critical_cycles as f64;
    // Resident blocks share the SM's issue ports; barriers overlap across
    // blocks so the sync cost is paid once, not per block.
    let issue = (p.block_issue_cycles * blocks_per_sm_eff as u64 + p.sync_cycles) as f64;
    let bytes = (p.global_line_bytes + p.spill_dram_bytes) as f64 * nblocks as f64;
    let dram = bytes / cfg.dram_stream_bytes_per_cycle();
    let (cycles, bound) = if dram >= issue && dram >= latency {
        (dram, PhaseBound::Dram)
    } else if issue >= latency {
        (issue, PhaseBound::Issue)
    } else {
        (latency, PhaseBound::Latency)
    };
    PhaseTime {
        label: p.label.clone(),
        cycles,
        bound,
    }
}

/// Combine traced-block phase records into launch statistics.
pub(crate) fn combine(
    cfg: &GpuConfig,
    occ: Occupancy,
    phases: Vec<PhaseRecord>,
    grid_blocks: usize,
    threads_per_block: usize,
    spill_to_dram: bool,
) -> LaunchStats {
    let blocks_per_wave = (occ.blocks_per_sm * cfg.num_sms).max(1);
    let full_waves = grid_blocks / blocks_per_wave;
    let rem = grid_blocks % blocks_per_wave;
    let waves = full_waves + usize::from(rem > 0);

    let full_phase_times: Vec<PhaseTime> = phases
        .iter()
        .map(|p| phase_time(cfg, &occ, p, blocks_per_wave.min(grid_blocks)))
        .collect();
    let full_wave_cycles: f64 = full_phase_times.iter().map(|t| t.cycles).sum();
    let rem_cycles: f64 = if rem > 0 {
        phases
            .iter()
            .map(|p| phase_time(cfg, &occ, p, rem).cycles)
            .sum()
    } else {
        0.0
    };
    let cycles = full_wave_cycles * full_waves as f64 + rem_cycles;
    let overhead_s = cfg.launch_overhead_us * 1e-6;
    let time_s = cfg.cycles_to_secs(cycles) + overhead_s;

    let flops_per_block: u64 = phases.iter().map(|p| p.flops).sum();
    let bytes_per_block: u64 = phases
        .iter()
        .map(|p| p.global_line_bytes + p.spill_dram_bytes)
        .sum();

    LaunchStats {
        grid_blocks,
        threads_per_block,
        occupancy: occ,
        phases,
        phase_times: full_phase_times,
        waves,
        cycles,
        time_s,
        overhead_s,
        flops: flops_per_block as f64 * grid_blocks as f64,
        dram_bytes: bytes_per_block as f64 * grid_blocks as f64,
        clock_ghz: cfg.core_clock_ghz,
        spill_to_dram,
        // Host-side telemetry is filled in by `Gpu::launch` after combining.
        sim_wall_s: 0.0,
        sim_blocks: 0,
        sim_host_threads: 1,
        sim_fast: false,
        sim_sched_cache_hit: false,
        sim_worker_utilization: 1.0,
        faults: Vec::new(),
        silent_faults: Vec::new(),
        sanitizer: None,
    }
}
