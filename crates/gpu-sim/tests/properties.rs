//! Property-based tests of the simulator's analysis components.

use proptest::prelude::*;
use regla_gpu_sim::mem::shared::{bank_conflict_replays, coalesced_transactions, distinct_lines};
use regla_gpu_sim::mem::timing::{CacheModel, RowBufferModel, TlbModel};
use regla_gpu_sim::{occupancy, GpuConfig, MemHier};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn conflict_replays_are_bounded(addrs in prop::collection::vec(0u32..4096, 1..33)) {
        let r = bank_conflict_replays(32, &addrs);
        // At worst every lane hits a distinct word of one bank.
        prop_assert!(r < addrs.len() as u32);
    }

    #[test]
    fn conflicts_invariant_under_permutation(
        mut addrs in prop::collection::vec(0u32..1024, 2..33),
    ) {
        let a = bank_conflict_replays(32, &addrs);
        addrs.reverse();
        prop_assert_eq!(a, bank_conflict_replays(32, &addrs));
    }

    #[test]
    fn transactions_bounded_by_lanes_and_lines(
        addrs in prop::collection::vec(0u64..1_000_000, 1..33),
    ) {
        let t = coalesced_transactions(128, &addrs) as usize;
        prop_assert!(t >= 1);
        prop_assert!(t <= addrs.len());
        // Identical addresses coalesce to one transaction.
        let dup = vec![addrs[0]; addrs.len()];
        prop_assert_eq!(coalesced_transactions(128, &dup), 1);
    }

    #[test]
    fn distinct_lines_is_a_set(addrs in prop::collection::vec(0u64..100_000, 0..64)) {
        let lines = distinct_lines(128, addrs.iter().copied());
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(lines, sorted);
    }

    #[test]
    fn cache_second_touch_always_hits(addr in 0u64..1_000_000) {
        let mut c = CacheModel::new(768 * 1024, 16, 128);
        let _ = c.access(addr);
        prop_assert!(c.access(addr), "immediate re-access must hit");
    }

    #[test]
    fn tlb_and_row_are_deterministic(addrs in prop::collection::vec(0u64..1u64<<24, 1..64)) {
        let run = |addrs: &[u64]| -> Vec<bool> {
            let mut t = TlbModel::new(64, 128 * 1024);
            let mut r = RowBufferModel::new(4096);
            addrs.iter().map(|&a| t.access(a) && r.access(a)).collect()
        };
        prop_assert_eq!(run(&addrs), run(&addrs));
    }

    #[test]
    fn memhier_latency_within_architectural_bounds(
        addrs in prop::collection::vec(0u64..1u64<<28, 1..128),
    ) {
        let cfg = GpuConfig::quadro_6000();
        let mut h = MemHier::new(&cfg);
        for a in addrs {
            let l = h.load_latency(a);
            prop_assert!(l >= cfg.l2_hit_latency);
            prop_assert!(l <= cfg.dram_row_miss_latency + cfg.tlb_miss_penalty);
        }
    }

    #[test]
    fn occupancy_never_exceeds_any_limit(
        threads in prop::sample::select(vec![32usize, 64, 96, 128, 192, 256, 384, 512, 768, 1024]),
        regs in 1usize..200,
        shared in 0usize..49_153,
    ) {
        let cfg = GpuConfig::quadro_6000();
        let occ = occupancy(&cfg, threads, regs, shared);
        prop_assert!(occ.blocks_per_sm >= 1);
        prop_assert!(occ.blocks_per_sm <= cfg.max_blocks_per_sm);
        let warp_regs = (occ.regs_allocated * 32).div_ceil(64) * 64;
        let warps = threads.div_ceil(32);
        // At the reported occupancy (beyond the guaranteed-progress block)
        // the register file is not oversubscribed.
        if occ.blocks_per_sm > 1 {
            prop_assert!(occ.blocks_per_sm * warps * warp_regs <= cfg.regfile_words_per_sm);
            if shared > 0 {
                prop_assert!(occ.blocks_per_sm * shared <= cfg.shared_bytes_per_sm);
            }
        }
        prop_assert_eq!(occ.regs_spilled, regs.saturating_sub(64));
    }

    #[test]
    fn sync_cost_is_monotone(t1 in 32usize..1024, t2 in 32usize..1024) {
        let cfg = GpuConfig::quadro_6000();
        if t1 <= t2 {
            prop_assert!(cfg.sync_cycles(t1) <= cfg.sync_cycles(t2));
        } else {
            prop_assert!(cfg.sync_cycles(t1) >= cfg.sync_cycles(t2));
        }
    }
}
