//! Tests of the parallel functional replay: determinism across host thread
//! counts, the `Sampled(k)` execution mode, the disjoint-write checker, and
//! the host-side telemetry attached to `LaunchStats`.

use proptest::prelude::*;
use regla_gpu_sim::{BlockCtx, DPtr, ExecMode, GlobalMemory, Gpu, LaunchConfig};

/// A compute kernel whose output depends on the block id, so a block that
/// is skipped, re-ordered, or run twice would corrupt a distinguishable
/// slab of device memory.
fn block_stamp_kernel(n_fma: usize, out: DPtr) -> impl Fn(&mut BlockCtx) + Sync {
    move |blk: &mut BlockCtx| {
        let nthreads = blk.num_threads();
        blk.for_each(|t| {
            let x = t.lit(1.0 + (t.block_id % 7) as f32 * 1e-3);
            let mut acc = t.lit(0.25 + t.tid as f32 * 1e-4);
            for _ in 0..n_fma {
                acc = t.fma(acc, x, x);
            }
            t.gstore(out, t.block_id * nthreads + t.tid, acc);
        });
    }
}

/// A strided copy kernel: each block moves its own slab of `src` to `dst`.
fn copy_kernel(words_per_thread: usize, src: DPtr, dst: DPtr) -> impl Fn(&mut BlockCtx) + Sync {
    move |blk: &mut BlockCtx| {
        let nthreads = blk.num_threads();
        blk.for_each(|t| {
            let base = t.block_id * nthreads * words_per_thread;
            for i in 0..words_per_thread {
                let idx = base + i * nthreads + t.tid;
                let v = t.gload(src, idx);
                t.gstore(dst, idx, v);
            }
        });
    }
}

/// Run `kernel` at a given host thread count and return the final device
/// memory (bit-patterns) plus the simulated timing essentials.
fn run_at<K: Fn(&mut BlockCtx) + Sync>(
    threads: usize,
    grid: usize,
    tpb: usize,
    setup: impl Fn(&mut GlobalMemory),
    kernel: impl Fn(&mut GlobalMemory) -> K,
    out_words: usize,
) -> (Vec<u32>, f64, f64, f64) {
    let gpu = Gpu::quadro_6000();
    let mut mem = GlobalMemory::with_bytes(1 << 22);
    let k = kernel(&mut mem);
    setup(&mut mem);
    let base = DPtr::new(0);
    let lc = LaunchConfig::new(grid, tpb)
        .regs(16)
        .shared_words(0)
        .exec(ExecMode::Full)
        .host_threads(threads);
    let stats = gpu.launch(&k, &lc, &mut mem).unwrap();
    let bits: Vec<u32> = mem
        .slice(base, out_words)
        .iter()
        .map(|v| v.to_bits())
        .collect();
    (bits, stats.cycles, stats.flops, stats.dram_bytes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The tentpole invariant: bit-identical device memory and identical
    /// simulated timing at every host thread count.
    #[test]
    fn compute_replay_is_deterministic_across_thread_counts(
        grid in 2usize..40,
        n_fma in 1usize..40,
        tpb in prop::sample::select(vec![32usize, 64, 128]),
    ) {
        let runs: Vec<_> = [1usize, 2, 8]
            .iter()
            .map(|&threads| {
                run_at(
                    threads,
                    grid,
                    tpb,
                    |_| {},
                    |mem| block_stamp_kernel(n_fma, mem.alloc(grid * tpb)),
                    grid * tpb,
                )
            })
            .collect();
        prop_assert_eq!(&runs[0], &runs[1], "1 vs 2 host threads");
        prop_assert_eq!(&runs[0], &runs[2], "1 vs 8 host threads");
    }

    #[test]
    fn copy_replay_is_deterministic_across_thread_counts(
        grid in 2usize..24,
        wpt in 1usize..6,
        seed in 0u32..1000,
    ) {
        let tpb = 64usize;
        let n = grid * tpb * wpt;
        let runs: Vec<_> = [1usize, 2, 8]
            .iter()
            .map(|&threads| {
                run_at(
                    threads,
                    grid,
                    tpb,
                    move |mem| {
                        let src = DPtr::new(0);
                        for i in 0..n {
                            mem.write(src, i, (seed + i as u32) as f32 * 0.125);
                        }
                    },
                    |mem| {
                        let src = mem.alloc(n);
                        let dst = mem.alloc(n);
                        copy_kernel(wpt, src, dst)
                    },
                    2 * n,
                )
            })
            .collect();
        prop_assert_eq!(&runs[0], &runs[1], "1 vs 2 host threads");
        prop_assert_eq!(&runs[0], &runs[2], "1 vs 8 host threads");
    }
}

#[test]
fn sampled_executes_evenly_spaced_blocks_only() {
    let gpu = Gpu::quadro_6000();
    let grid = 10usize;
    let tpb = 32usize;
    let mut mem = GlobalMemory::with_bytes(1 << 16);
    let out = mem.alloc(grid * tpb);
    let k = |blk: &mut BlockCtx| {
        let nthreads = blk.num_threads();
        blk.for_each(|t| {
            let one = t.lit(1.0);
            t.gstore(out, t.block_id * nthreads + t.tid, one);
        });
    };
    let lc = LaunchConfig::new(grid, tpb)
        .regs(8)
        .shared_words(0)
        .exec(ExecMode::Sampled(3));
    let stats = gpu.launch(&k, &lc, &mut mem).unwrap();
    // i * 10 / 3 for i in 0..3 = blocks {0, 3, 6}; block 0 is the traced one.
    let executed = [0usize, 3, 6];
    for b in 0..grid {
        let slab = mem.slice(out, grid * tpb);
        let written = slab[b * tpb..(b + 1) * tpb].iter().all(|&v| v == 1.0);
        let zero = slab[b * tpb..(b + 1) * tpb].iter().all(|&v| v == 0.0);
        if executed.contains(&b) {
            assert!(written, "sampled block {b} must have run functionally");
        } else {
            assert!(zero, "unsampled block {b} must not have run");
        }
    }
    // Timing still covers the whole grid: Sampled changes fidelity of the
    // functional outputs, never the simulated clock.
    assert_eq!(stats.grid_blocks, grid);
    assert_eq!(stats.sim_blocks, 2, "two non-traced blocks replayed");
}

#[test]
fn sampled_k_at_least_grid_matches_full() {
    let gpu = Gpu::quadro_6000();
    let run = |mode: ExecMode| {
        let mut mem = GlobalMemory::with_bytes(1 << 16);
        let out = mem.alloc(5 * 32);
        let k = |blk: &mut BlockCtx| {
            let nthreads = blk.num_threads();
            blk.for_each(|t| {
                let v = t.lit(2.0 + t.block_id as f32);
                t.gstore(out, t.block_id * nthreads + t.tid, v);
            });
        };
        let lc = LaunchConfig::new(5, 32).regs(8).shared_words(0).exec(mode);
        let stats = gpu.launch(&k, &lc, &mut mem).unwrap();
        let bits: Vec<u32> = mem.slice(out, 5 * 32).iter().map(|v| v.to_bits()).collect();
        (bits, stats.cycles, stats.sim_blocks)
    };
    let full = run(ExecMode::Full);
    let sampled = run(ExecMode::Sampled(100));
    assert_eq!(full, sampled, "Sampled(k >= grid) must behave like Full");
}

#[test]
fn sampled_zero_is_a_structured_error() {
    let gpu = Gpu::quadro_6000();
    let mut mem = GlobalMemory::with_bytes(1 << 12);
    let out = mem.alloc(64);
    let k = move |blk: &mut BlockCtx| {
        blk.for_each(|t| {
            let v = t.lit(1.0);
            t.gstore(out, t.tid, v);
        });
    };
    let lc = LaunchConfig::new(4, 32)
        .regs(8)
        .shared_words(0)
        .exec(ExecMode::Sampled(0));
    let err = gpu.launch(&k, &lc, &mut mem).unwrap_err();
    assert!(
        matches!(err, regla_gpu_sim::LaunchError::InvalidExecMode(_)),
        "expected InvalidExecMode, got {err:?}"
    );
    assert!(err.to_string().contains("Sampled(0)"));
}

/// The debug-build disjoint-write checker must reject kernels whose blocks
/// write overlapping device words — such kernels would race under the
/// parallel replay. The checker's panic is contained by the launch and
/// surfaced as `LaunchError::KernelPanic`. (Release builds skip the checker
/// unless `REGLA_SIM_CHECK=1`, so this test only asserts in debug.)
#[test]
#[cfg_attr(not(debug_assertions), ignore = "checker is a debug-build feature")]
fn overlapping_block_writes_are_rejected_in_debug() {
    let gpu = Gpu::quadro_6000();
    let mut mem = GlobalMemory::with_bytes(1 << 12);
    let out = mem.alloc(64);
    let k = move |blk: &mut BlockCtx| {
        blk.for_each(|t| {
            // Every block writes the same 32 words: blocks 1..4 collide.
            let v = t.lit(t.block_id as f32);
            t.gstore(out, t.tid, v);
        });
    };
    let lc = LaunchConfig::new(4, 32)
        .regs(8)
        .shared_words(0)
        .exec(ExecMode::Full)
        .host_threads(2);
    let err = gpu.launch(&k, &lc, &mut mem).unwrap_err();
    match err {
        regla_gpu_sim::LaunchError::KernelPanic { message, .. } => {
            assert!(
                message.contains("cross-block write overlap"),
                "unexpected panic message: {message}"
            );
        }
        other => panic!("expected KernelPanic, got {other:?}"),
    }
}

#[test]
fn stats_expose_host_replay_telemetry() {
    let gpu = Gpu::quadro_6000();
    let run = |mode: ExecMode, threads: usize| {
        let mut mem = GlobalMemory::with_bytes(1 << 16);
        let out = mem.alloc(16 * 32);
        let k = move |blk: &mut BlockCtx| {
            let nthreads = blk.num_threads();
            blk.for_each(|t| {
                let v = t.lit(1.0);
                t.gstore(out, t.block_id * nthreads + t.tid, v);
            });
        };
        let lc = LaunchConfig::new(16, 32)
            .regs(8)
            .shared_words(0)
            .exec(mode)
            .host_threads(threads);
        gpu.launch(&k, &lc, &mut mem).unwrap()
    };

    let before = regla_gpu_sim::telemetry::snapshot();
    let full = run(ExecMode::Full, 3);
    assert_eq!(full.sim_blocks, 15);
    assert_eq!(full.sim_host_threads, 3, "explicit host_threads wins");
    assert!(full.sim_wall_s > 0.0);
    assert!(full.sim_worker_utilization > 0.0 && full.sim_worker_utilization <= 1.0);
    assert!(full.sim_blocks_per_sec() > 0.0);

    let rep = run(ExecMode::Representative, 3);
    assert_eq!(rep.sim_blocks, 0, "Representative replays nothing");
    assert_eq!(rep.sim_host_threads, 1);

    // Process-wide counters move monotonically with each launch.
    let after = regla_gpu_sim::telemetry::snapshot();
    assert!(after.launches >= before.launches + 2);
    assert!(after.functional_blocks >= before.functional_blocks + 15);
    assert!(after.max_host_threads >= 3);
}

#[test]
fn host_threads_never_exceed_replay_blocks() {
    // 3 replay blocks but 8 requested workers: the launch must report the
    // clamped count it actually used.
    let gpu = Gpu::quadro_6000();
    let mut mem = GlobalMemory::with_bytes(1 << 14);
    let out = mem.alloc(4 * 32);
    let k = move |blk: &mut BlockCtx| {
        let nthreads = blk.num_threads();
        blk.for_each(|t| {
            let v = t.lit(1.0);
            t.gstore(out, t.block_id * nthreads + t.tid, v);
        });
    };
    let lc = LaunchConfig::new(4, 32)
        .regs(8)
        .shared_words(0)
        .exec(ExecMode::Full)
        .host_threads(8);
    let stats = gpu.launch(&k, &lc, &mut mem).unwrap();
    assert_eq!(stats.sim_blocks, 3);
    assert_eq!(stats.sim_host_threads, 3);
}
