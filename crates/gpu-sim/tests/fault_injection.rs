//! Launch validation and deterministic fault injection.
//!
//! The simulator is the fault oracle for the whole stack: every fault a
//! `FaultPlan` applies is recorded in `LaunchStats::faults` (the ECC /
//! machine-check report), and the same seed must corrupt the same bits in
//! the same blocks on every run so resilience campaigns are reproducible.

use regla_gpu_sim::{
    BlockCtx, ExecMode, FaultKind, FaultPlan, GlobalMemory, Gpu, LaunchConfig, LaunchError,
};

fn store_kernel(out: regla_gpu_sim::DPtr) -> impl Fn(&mut BlockCtx) + Sync {
    move |blk: &mut BlockCtx| {
        blk.for_each(|t| {
            let v = t.lit((t.block_id * 100 + t.tid) as f32 + 1.0);
            let idx = t.block_id * 32 + t.tid;
            t.gstore(out, idx, v);
        });
    }
}

#[test]
fn launch_validation_rejects_bad_configs() {
    let gpu = Gpu::quadro_6000();
    let mut mem = GlobalMemory::with_bytes(1 << 16);
    let out = mem.alloc(1024);
    let k = store_kernel(out);

    let err = gpu
        .launch(&k, &LaunchConfig::new(0, 32).regs(8), &mut mem)
        .unwrap_err();
    assert!(matches!(err, LaunchError::EmptyGrid));

    let err = gpu
        .launch(&k, &LaunchConfig::new(1, 0).regs(8), &mut mem)
        .unwrap_err();
    assert!(matches!(err, LaunchError::ZeroThreads));

    let err = gpu
        .launch(&k, &LaunchConfig::new(1, 4096).regs(8), &mut mem)
        .unwrap_err();
    assert!(matches!(
        err,
        LaunchError::TooManyThreads {
            requested: 4096,
            ..
        }
    ));

    let err = gpu
        .launch(
            &k,
            &LaunchConfig::new(1, 32).regs(8).shared_words(1 << 20),
            &mut mem,
        )
        .unwrap_err();
    assert!(matches!(err, LaunchError::SharedMemoryExceeded { .. }));

    // Errors render as human-readable messages.
    assert!(err.to_string().contains("shared memory"));
}

#[test]
fn same_seed_same_faults_same_memory() {
    let gpu = Gpu::quadro_6000();
    // Pin the kind to global-store flips: this minimal kernel performs no
    // register-array or shared stores, so mixed-kind faults targeting those
    // would (correctly) never fire.
    let plan = FaultPlan::new(0xBADC0FFE, 5).kind(FaultKind::GlobalBitFlip);
    let run = || {
        let mut mem = GlobalMemory::with_bytes(1 << 16);
        let out = mem.alloc(16 * 32);
        let lc = LaunchConfig::new(16, 32)
            .regs(8)
            .exec(ExecMode::Full)
            .fault(plan);
        let stats = gpu.launch(&store_kernel(out), &lc, &mut mem).unwrap();
        let words: Vec<u32> = (0..16 * 32).map(|i| mem.read(out, i).to_bits()).collect();
        (stats.faults, words)
    };
    let (f1, w1) = run();
    let (f2, w2) = run();
    assert_eq!(f1.len(), 5, "all planned faults must be applied");
    assert_eq!(f1, f2, "fault records must be bit-reproducible");
    assert_eq!(w1, w2, "corrupted memory must be bit-reproducible");
}

#[test]
fn different_seeds_differ() {
    let gpu = Gpu::quadro_6000();
    let run = |seed: u64| {
        let mut mem = GlobalMemory::with_bytes(1 << 16);
        let out = mem.alloc(16 * 32);
        let lc = LaunchConfig::new(16, 32)
            .regs(8)
            .fault(FaultPlan::new(seed, 5).kind(FaultKind::GlobalBitFlip));
        gpu.launch(&store_kernel(out), &lc, &mut mem).unwrap().faults
    };
    assert_ne!(run(1), run(2));
}

#[test]
fn global_bit_flip_corrupts_exactly_one_word() {
    let gpu = Gpu::quadro_6000();
    let plan = FaultPlan::new(7, 1).kind(FaultKind::GlobalBitFlip);
    let mut clean_mem = GlobalMemory::with_bytes(1 << 16);
    let out_c = clean_mem.alloc(8 * 32);
    let lc_clean = LaunchConfig::new(8, 32).regs(8);
    gpu.launch(&store_kernel(out_c), &lc_clean, &mut clean_mem)
        .unwrap();

    let mut mem = GlobalMemory::with_bytes(1 << 16);
    let out = mem.alloc(8 * 32);
    let lc = LaunchConfig::new(8, 32).regs(8).fault(plan);
    let stats = gpu.launch(&store_kernel(out), &lc, &mut mem).unwrap();
    assert_eq!(stats.faults.len(), 1);
    let rec = stats.faults[0];
    assert_eq!(rec.kind, FaultKind::GlobalBitFlip);

    let diffs: Vec<usize> = (0..8 * 32)
        .filter(|&i| mem.read(out, i).to_bits() != clean_mem.read(out_c, i).to_bits())
        .collect();
    assert_eq!(diffs.len(), 1, "exactly one word must differ");
    let i = diffs[0];
    assert_eq!(i / 32, rec.block, "corruption must land in the faulted block");
    assert_eq!(
        mem.read(out, i).to_bits() ^ clean_mem.read(out_c, i).to_bits(),
        1 << rec.bit,
        "exactly the planned bit must be flipped"
    );
}

#[test]
fn block_abort_suppresses_all_its_stores() {
    let gpu = Gpu::quadro_6000();
    let plan = FaultPlan::new(42, 1).kind(FaultKind::BlockAbort);
    let mut mem = GlobalMemory::with_bytes(1 << 16);
    let out = mem.alloc(8 * 32);
    let lc = LaunchConfig::new(8, 32).regs(8).fault(plan);
    let stats = gpu.launch(&store_kernel(out), &lc, &mut mem).unwrap();
    assert_eq!(stats.faults.len(), 1);
    let rec = stats.faults[0];
    assert_eq!(rec.kind, FaultKind::BlockAbort);

    for b in 0..8 {
        for tid in 0..32 {
            let got = mem.read(out, b * 32 + tid);
            if b == rec.block && (tid as u32) >= rec.nth_store {
                assert_eq!(got, 0.0, "aborted block {b} must stop storing");
            } else {
                assert_eq!(got, (b * 100 + tid) as f32 + 1.0);
            }
        }
    }
}

#[test]
fn faults_only_land_on_executed_blocks() {
    // Under Sampled(k) only a subset of blocks runs; a plan targeting the
    // whole grid must still report exactly the faults that were applied,
    // i.e. those on executed blocks.
    let gpu = Gpu::quadro_6000();
    let mut mem = GlobalMemory::with_bytes(1 << 16);
    let out = mem.alloc(32 * 32);
    let lc = LaunchConfig::new(32, 32)
        .regs(8)
        .exec(ExecMode::Sampled(4))
        .fault(FaultPlan::new(3, 32).kind(FaultKind::GlobalBitFlip));
    let stats = gpu.launch(&store_kernel(out), &lc, &mut mem).unwrap();
    let executed = lc.executed_blocks();
    assert!(!stats.faults.is_empty());
    for f in &stats.faults {
        assert!(
            executed.contains(&f.block),
            "fault on non-executed block {}",
            f.block
        );
    }
}

#[test]
fn executed_blocks_matches_replay_plus_traced() {
    let lc = LaunchConfig::new(10, 32).exec(ExecMode::Sampled(3));
    let ex = lc.executed_blocks();
    assert!(ex.contains(&0), "traced block always executes");
    assert_eq!(ex.len(), 3);
    let full = LaunchConfig::new(10, 32).exec(ExecMode::Full).executed_blocks();
    assert_eq!(full, (0..10).collect::<Vec<_>>());
    let rep = LaunchConfig::new(10, 32)
        .exec(ExecMode::Representative)
        .executed_blocks();
    assert_eq!(rep, vec![0]);
}

#[test]
fn kernel_panics_are_contained() {
    let gpu = Gpu::quadro_6000();
    let mut mem = GlobalMemory::with_bytes(1 << 16);
    let k = |blk: &mut BlockCtx| {
        let id = blk.block_id;
        blk.for_each(|t| {
            let _ = t.lit(1.0);
            if id == 2 {
                panic!("kernel bug in block {id}");
            }
        });
    };
    let lc = LaunchConfig::new(4, 32).regs(8).exec(ExecMode::Full);
    let err = gpu.launch(&k, &lc, &mut mem).unwrap_err();
    match err {
        LaunchError::KernelPanic { message, .. } => {
            assert!(message.contains("kernel bug"), "got: {message}")
        }
        other => panic!("expected KernelPanic, got {other:?}"),
    }
}
