//! Behavioural tests of the simulator's timing model: the launch-level
//! invariants the figure harnesses rely on.

use regla_gpu_sim::{
    BlockCtx, DPtr, ExecMode, GlobalMemory, Gpu, LaunchConfig, MathMode, RegArray, Rv,
};

fn work_kernel(n_fma: usize, out: DPtr) -> impl Fn(&mut BlockCtx) {
    move |blk: &mut BlockCtx| {
        let nthreads = blk.num_threads();
        blk.for_each(|t| {
            let x = t.lit(1.0000001);
            let mut acc = t.lit(0.5);
            for _ in 0..n_fma {
                acc = t.fma(acc, x, x);
            }
            // Each block writes its own slab (the disjoint-write invariant
            // the parallel functional replay checks in debug builds).
            t.gstore(out, t.block_id * nthreads + t.tid, acc);
        });
    }
}

#[test]
fn representative_and_full_report_identical_timing() {
    // All blocks execute identical code, so skipping the functional pass
    // must not change any timing statistic.
    let gpu = Gpu::quadro_6000();
    let run = |mode: ExecMode| {
        let mut mem = GlobalMemory::with_bytes(1 << 20);
        let out = mem.alloc(300 * 64);
        let lc = LaunchConfig::new(300, 64).regs(12).shared_words(0).exec(mode);
        gpu.launch(&work_kernel(100, out), &lc, &mut mem).unwrap()
    };
    let full = run(ExecMode::Full);
    let rep = run(ExecMode::Representative);
    assert_eq!(full.cycles, rep.cycles);
    assert_eq!(full.flops, rep.flops);
    assert_eq!(full.dram_bytes, rep.dram_bytes);
    assert_eq!(full.waves, rep.waves);
}

#[test]
fn wave_tail_costs_a_partial_wave() {
    let gpu = Gpu::quadro_6000();
    let time_for = |grid: usize| {
        let mut mem = GlobalMemory::with_bytes(1 << 16);
        let out = mem.alloc(64);
        let lc = LaunchConfig::new(grid, 64)
            .regs(12)
            .shared_words(0)
            .exec(ExecMode::Representative);
        gpu.launch(&work_kernel(200, out), &lc, &mut mem).unwrap().cycles
    };
    // 8 blocks/SM x 14 SMs = 112 blocks per wave for this config.
    let one = time_for(112);
    let one_and_tail = time_for(113);
    let two = time_for(224);
    assert!(one < one_and_tail);
    // The tail wave is compute-bound here, so 113 blocks ~ 2 full waves.
    assert!((one_and_tail - two).abs() / two < 0.05);
    assert!((two - 2.0 * one).abs() / two < 0.01);
}

#[test]
fn spill_severity_escalates_from_l1_to_dram() {
    let gpu = Gpu::quadro_6000();
    let run = |regs: usize, blocks: usize| {
        let mut mem = GlobalMemory::with_bytes(1 << 22);
        let out = mem.alloc(4096);
        let k = move |blk: &mut BlockCtx| {
            blk.for_each(|t| {
                let mut a = RegArray::<Rv>::zeroed(regs);
                let one = t.lit(1.0);
                for r in 0..3 {
                    for i in 0..regs {
                        let x = a.get(t, i);
                        let y = t.add(x, one);
                        a.set(t, i, y);
                    }
                    let _ = r;
                }
                let last = a.get(t, regs - 1);
                t.gstore(out, t.tid, last);
            });
        };
        let lc = LaunchConfig::new(blocks, 64)
            .regs(regs)
            .shared_words(0)
            .exec(ExecMode::Representative);
        gpu.launch(&k, &lc, &mut mem).unwrap()
    };
    let resident = run(60, 112);
    let mild = run(72, 112); // small spill, prefer-L1 absorbs it
    let heavy = run(200, 112); // overflows the L1 into DRAM
    // The resident variant only stores one word per thread.
    assert_eq!(resident.dram_bytes, resident.grid_blocks as f64 * 64.0 * 4.0);
    assert!(mild.cycles > resident.cycles);
    assert!(heavy.cycles > 2.0 * mild.cycles);
    assert!(
        heavy.dram_bytes > mild.dram_bytes,
        "DRAM spill traffic must appear once the L1 overflows"
    );
    assert!(heavy.spill_to_dram);
}

#[test]
fn fast_math_truncates_but_speeds_up() {
    let gpu = Gpu::quadro_6000();
    let run = |math: MathMode| {
        let mut mem = GlobalMemory::with_bytes(1 << 16);
        let out = mem.alloc(64);
        let k = move |blk: &mut BlockCtx| {
            blk.for_each(|t| {
                let mut acc = t.lit(3.7);
                for _ in 0..50 {
                    let r = t.recip(acc);
                    let s = t.sqrt(r);
                    let one = t.lit(1.0);
                    acc = t.add(s, one);
                }
                t.gstore(out, t.tid, acc);
            });
        };
        let lc = LaunchConfig::new(1, 32).regs(8).shared_words(0).math(math);
        let stats = gpu.launch(&k, &lc, &mut mem).unwrap();
        (stats.cycles, mem.read(out, 0))
    };
    let (fast_c, fast_v) = run(MathMode::Fast);
    let (prec_c, prec_v) = run(MathMode::Precise);
    assert!(prec_c > 2.0 * fast_c, "precise {prec_c} vs fast {fast_c}");
    assert!((fast_v - prec_v).abs() < 1e-3, "22-bit drift stays small");
    assert!(fast_v != prec_v, "fast math must actually differ in low bits");
}

#[test]
fn divergent_warps_cost_the_worst_lane() {
    // Only lane 0 of each warp works: the warp still pays for it.
    let gpu = Gpu::quadro_6000();
    let run = |active_lanes: usize| {
        let mut mem = GlobalMemory::with_bytes(1 << 16);
        let out = mem.alloc(64);
        let k = move |blk: &mut BlockCtx| {
            blk.for_each(|t| {
                if t.tid % 32 < active_lanes {
                    let x = t.lit(2.0);
                    let mut acc = t.lit(0.0);
                    for _ in 0..100 {
                        acc = t.fma(acc, x, x);
                    }
                    t.gstore(out, t.tid, acc);
                }
            });
        };
        let lc = LaunchConfig::new(1, 64).regs(8).shared_words(0);
        gpu.launch(&k, &lc, &mut mem).unwrap().cycles
    };
    let one_lane = run(1);
    let all_lanes = run(32);
    // SIMT: the warp's cost is the active path, not the lane count.
    assert!((one_lane - all_lanes).abs() / all_lanes < 0.05);
}

#[test]
fn dram_bound_phases_scale_with_grid_not_compute() {
    let gpu = Gpu::quadro_6000();
    let run = |grid: usize| {
        let mut mem = GlobalMemory::with_bytes(1 << 26);
        let n = grid * 64 * 32;
        let src = mem.alloc(n);
        let dst = mem.alloc(n);
        let k = move |blk: &mut BlockCtx| {
            let base = blk.block_id * 64 * 32;
            blk.for_each(|t| {
                for i in 0..32 {
                    let v = t.gload(src, base + i * 64 + t.tid);
                    t.gstore(dst, base + i * 64 + t.tid, v);
                }
            });
        };
        let lc = LaunchConfig::new(grid, 64)
            .regs(12)
            .shared_words(0)
            .exec(ExecMode::Representative);
        gpu.launch(&k, &lc, &mut mem).unwrap()
    };
    let small = run(112);
    let big = run(448);
    // 4x the data at the same bandwidth: ~4x the time.
    let ratio = big.cycles / small.cycles;
    assert!(
        (3.6..4.4).contains(&ratio),
        "DRAM-bound scaling ratio {ratio}"
    );
    assert!((big.dram_gbs() - 108.0).abs() < 8.0);
}

#[test]
fn g80_preset_is_slower_per_clock() {
    // Sanity of the second configuration: same kernel, older chip.
    let run = |gpu: &Gpu| {
        let mut mem = GlobalMemory::with_bytes(1 << 16);
        let out = mem.alloc(14 * 64);
        let lc = LaunchConfig::new(14, 64).regs(12).shared_words(0);
        gpu.launch(&work_kernel(200, out), &lc, &mut mem).unwrap().time_s
    };
    let fermi = run(&Gpu::quadro_6000());
    let g80 = run(&Gpu::new(regla_gpu_sim::GpuConfig::g80()));
    assert!(g80 > fermi, "G80 {g80} should be slower than Fermi {fermi}");
}

#[test]
fn summary_reports_the_essentials() {
    let gpu = Gpu::quadro_6000();
    let mut mem = GlobalMemory::with_bytes(1 << 16);
    let out = mem.alloc(14 * 64);
    let lc = LaunchConfig::new(14, 64).regs(12).shared_words(0);
    let stats = gpu.launch(&work_kernel(50, out), &lc, &mut mem).unwrap();
    let s = stats.summary();
    assert!(s.contains("14 blocks x 64 threads"));
    assert!(s.contains("blocks/SM"));
    assert!(s.contains("GFLOPS"));
    assert!(s.contains("wave breakdown"));
}

#[test]
fn three_generations_order_correctly() {
    // G80 -> GT200 -> GF100 on a fixed batch big enough to need several
    // waves: each generation finishes sooner (more SMs, then the Fermi
    // dual-issue pipeline).
    let run = |cfg: regla_gpu_sim::GpuConfig| {
        let gpu = Gpu::new(cfg);
        let mut mem = GlobalMemory::with_bytes(1 << 20);
        let out = mem.alloc(64 * 1024);
        let lc = LaunchConfig::new(960, 64)
            .regs(12)
            .shared_words(0)
            .exec(ExecMode::Representative);
        gpu.launch(&work_kernel(400, out), &lc, &mut mem).unwrap().time_s
    };
    let g80 = run(regla_gpu_sim::GpuConfig::g80());
    let gt200 = run(regla_gpu_sim::GpuConfig::gt200());
    let gf100 = run(regla_gpu_sim::GpuConfig::quadro_6000());
    assert!(g80 > gt200, "G80 {g80} vs GT200 {gt200}");
    assert!(gt200 > gf100, "GT200 {gt200} vs GF100 {gf100}");
}
