//! Property-based tests of the analytic model: monotonicity and
//! scale-consistency laws that any sane cost model must satisfy.

use proptest::prelude::*;
use regla_gpu_sim::GpuConfig;
use regla_model::{
    arithmetic_intensity, block_plan, per_block, per_thread, tau_global, tau_local, Algorithm,
    ModelParams,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn logp_terms_are_additive(
        m1 in 0.0f64..100.0, m2 in 0.0f64..100.0,
        b1 in 0.0f64..1e6, b2 in 0.0f64..1e6,
        f1 in 0.0f64..1e4, f2 in 0.0f64..1e4,
    ) {
        let p = ModelParams::table_iv();
        let a = tau_global(&p, m1, b1, f1) + tau_global(&p, m2, b2, f2);
        let c = tau_global(&p, m1 + m2, b1 + b2, f1 + f2);
        prop_assert!((a - c).abs() < 1e-6 * c.max(1.0));
    }

    #[test]
    fn tau_local_grows_with_thread_count(
        msgs in 0.0f64..100.0,
        syncs in 1.0f64..50.0,
        t1 in 32usize..512,
    ) {
        let p = ModelParams::table_iv();
        let small = tau_local(&p, msgs, syncs, 0.0, 0.0, t1);
        let big = tau_local(&p, msgs, syncs, 0.0, 0.0, t1 * 2);
        prop_assert!(big >= small);
    }

    #[test]
    fn flop_counts_scale_cubically(n in 2usize..64) {
        for alg in [Algorithm::GaussJordan, Algorithm::Lu, Algorithm::Qr, Algorithm::Cholesky] {
            let f1 = alg.flops(n, n);
            let f2 = alg.flops(2 * n, 2 * n);
            let ratio = f2 / f1;
            prop_assert!(
                (7.0..9.0).contains(&ratio),
                "{alg:?}: doubling n gave ratio {ratio}"
            );
            prop_assert_eq!(alg.flops_complex(n, n), 4.0 * f1);
        }
    }

    #[test]
    fn intensity_increases_with_n(n in 4usize..128) {
        let a = arithmetic_intensity(Algorithm::Qr, n, n, 4);
        let b = arithmetic_intensity(Algorithm::Qr, 2 * n, 2 * n, 4);
        prop_assert!(b > a);
    }

    #[test]
    fn per_thread_roofline_is_linear_in_bandwidth(n in 3usize..12) {
        let mut p = ModelParams::table_iv();
        let g1 = per_thread::predicted_gflops(&p, Algorithm::Lu, n, 4);
        p.beta_glb_gbs *= 2.0;
        let g2 = per_thread::predicted_gflops(&p, Algorithm::Lu, n, 4);
        prop_assert!((g2 / g1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn block_prediction_time_scales_with_batch(
        n in prop::sample::select(vec![16usize, 32, 48, 56]),
        batch in 112usize..2000,
    ) {
        let p = ModelParams::table_iv();
        let cfg = GpuConfig::quadro_6000();
        let t1 = per_block::predict_block(&p, &cfg, Algorithm::Qr, n, n, 0, 1, batch).time_s;
        let t2 = per_block::predict_block(&p, &cfg, Algorithm::Qr, n, n, 0, 1, 2 * batch).time_s;
        // Doubling the batch costs between 1.5x and 2.5x (wave quantisation).
        let r = t2 / t1;
        prop_assert!((1.4..2.6).contains(&r), "batch scaling ratio {r}");
    }

    #[test]
    fn compute_cycles_grow_with_n(n in 8usize..70) {
        let p = ModelParams::table_iv();
        let a = per_block::block_compute_cycles(&p, &block_plan(n, n, 0, 1), Algorithm::Qr, 8);
        let b = per_block::block_compute_cycles(
            &p,
            &block_plan(n + 8, n + 8, 0, 1),
            Algorithm::Qr,
            8,
        );
        prop_assert!(b > a);
    }

    #[test]
    fn slower_memory_never_speeds_predictions_up(n in 3usize..8) {
        let p = ModelParams::table_iv();
        let mut slow = p.clone();
        slow.beta_glb_gbs /= 2.0;
        let fast_t = per_thread::predicted_time_s(&p, Algorithm::Qr, n, 1000, 4);
        let slow_t = per_thread::predicted_time_s(&slow, Algorithm::Qr, n, 1000, 4);
        prop_assert!(slow_t > fast_t);
    }

    #[test]
    fn dispatch_always_returns_a_feasible_choice(
        n in prop::sample::select(vec![4usize, 8, 16, 56, 96, 240, 1024]),
        batch in prop::sample::select(vec![1usize, 100, 10_000]),
    ) {
        let p = ModelParams::table_iv();
        let cfg = GpuConfig::quadro_6000();
        let d = regla_model::choose(&p, &cfg, Algorithm::Qr, n, n, batch, 1).unwrap();
        let c = d.chosen().unwrap();
        prop_assert!(c.time_s.is_finite() && c.time_s > 0.0);
        prop_assert!(c.gflops.is_finite() && c.gflops > 0.0);
        for cand in &d.candidates {
            prop_assert!(c.time_s <= cand.time_s + 1e-12);
        }
    }
}
