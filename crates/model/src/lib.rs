//! # regla-model — the paper's analytic GPU performance model
//!
//! Implements Section II's LogP-derived cost equations, Section III's FLOP
//! counts, Section IV's roofline for the one-problem-per-thread approach,
//! and Section V-D's per-operation cost model for the one-problem-per-block
//! approach (Table VI), plus the dispatch logic that turns the model into a
//! *predictive* tool for choosing an execution strategy.
//!
//! ```
//! use regla_model::{Algorithm, ModelParams, per_thread};
//!
//! // Section IV's worked example: a 7x7 QR has arithmetic intensity 1.17
//! // FLOPs/byte, so the per-thread roofline predicts ~126 GFLOP/s.
//! let p = ModelParams::table_iv();
//! let g = per_thread::predicted_gflops(&p, Algorithm::Qr, 7, 4);
//! assert!((g - 126.0).abs() < 2.0);
//! ```

pub mod dispatch;
pub mod intensity;
pub mod logp;
pub mod params;
pub mod per_block;
pub mod per_thread;
pub mod pipeline;
pub mod plan;
pub mod verify;

pub use dispatch::{
    choose, choose_with_rhs, model_plan, plan_cycles, predicted_cycles, predicted_seconds,
    saturation_batch, tiled_panel_cycles, Candidate, Decision, ModelError,
};
pub use intensity::{arithmetic_intensity, bytes_moved, Algorithm};
pub use logp::{tau_global, tau_local};
pub use params::ModelParams;
pub use per_block::{
    phase_estimates, predict_block, predict_block_plan, qr_panels, BlockPrediction, PanelEstimate,
    PhaseEstimate,
};
pub use per_thread::{communication_bound_gflops, register_resident_limit};
pub use pipeline::PipelineEstimate;
pub use verify::{verify_cycles, verify_flops, verify_seconds, VerifyMode, HOST_VERIFY_GFLOPS};
pub use plan::{
    block_plan, block_plan_with_threads, block_threads, heuristic_plan, thread_plan, Approach,
    BlockPlan, DecisionTable, Layout, Plan, PlanKey, Planner, TableEntry, TableParseError,
    ThreadPlan, DEFAULT_PANEL, PER_BLOCK_MAX_DECLARED_REGS,
};
