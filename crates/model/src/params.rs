//! Model parameters (the paper's Table IV).

use regla_gpu_sim::GpuConfig;

/// The parameters of the paper's GPU performance model (Table IV), plus the
/// division/square-root latencies taken from microbenchmarks (the paper
/// cites Wong et al.'s GT200 study) and the address-computation overhead the
/// paper measures for GF100 shared-memory access chains (Section II-C1).
#[derive(Clone, Debug)]
pub struct ModelParams {
    /// Global memory latency α_glb in cycles (570).
    pub alpha_glb: f64,
    /// Achievable global bandwidth in GB/s (108; β_glb = 1/108 s/GB).
    pub beta_glb_gbs: f64,
    /// Shared memory latency α_sh in cycles (27).
    pub alpha_sh: f64,
    /// Achievable shared bandwidth, all SMs, in GB/s (880; β_sh = 1/880).
    pub beta_sh_gbs: f64,
    /// Pipeline latency for FP operations γ in cycles (18).
    pub gamma: f64,
    /// Address-computation overhead per dependent shared access (the SHL.W
    /// measured at 18 cycles in Section II-C1).
    pub gamma_addr: f64,
    /// Hardware (fast-math) reciprocal latency in cycles.
    pub gamma_div: f64,
    /// Hardware (fast-math) square root latency in cycles.
    pub gamma_sqrt: f64,
    /// Synchronization cost: `sync_base + sync_per_warp * warps` cycles
    /// (46 cycles for 64 threads, Table IV).
    pub sync_base: f64,
    pub sync_per_warp: f64,
    /// Warp width (32).
    pub warp_size: usize,
    /// Core clock in GHz (1.15).
    pub clock_ghz: f64,
    /// Number of SMs (14).
    pub num_sms: usize,
}

impl ModelParams {
    /// The paper's Table IV values for the Quadro 6000.
    pub fn table_iv() -> Self {
        ModelParams {
            alpha_glb: 570.0,
            beta_glb_gbs: 108.0,
            alpha_sh: 27.0,
            beta_sh_gbs: 880.0,
            gamma: 18.0,
            gamma_addr: 18.0,
            gamma_div: 28.0,
            gamma_sqrt: 32.0,
            sync_base: 36.4,
            sync_per_warp: 4.8,
            warp_size: 32,
            clock_ghz: 1.15,
            num_sms: 14,
        }
    }

    /// Derive the parameters from a simulator configuration (what
    /// `regla-microbench` measures ends up numerically equal to this).
    pub fn from_config(cfg: &GpuConfig) -> Self {
        ModelParams {
            alpha_glb: cfg.dram_row_miss_latency as f64,
            beta_glb_gbs: cfg.dram_peak_gbs * cfg.dram_stream_efficiency,
            alpha_sh: cfg.shared_latency as f64,
            beta_sh_gbs: cfg.peak_shared_gbs() * 0.854,
            gamma: cfg.alu_latency as f64,
            gamma_addr: cfg.alu_latency as f64,
            gamma_div: cfg.fast_recip_latency as f64,
            gamma_sqrt: cfg.fast_sqrt_latency as f64,
            sync_base: cfg.sync_base,
            sync_per_warp: cfg.sync_per_warp,
            warp_size: cfg.warp_size,
            clock_ghz: cfg.core_clock_ghz,
            num_sms: cfg.num_sms,
        }
    }

    /// α_sync for a block of `threads` (Figure 2 / Table IV).
    pub fn alpha_sync(&self, threads: usize) -> f64 {
        let warps = threads.div_ceil(self.warp_size) as f64;
        (self.sync_base + self.sync_per_warp * warps).round()
    }

    /// Cost in cycles of a dependent shared-memory access including the
    /// GF100 address computation (the 45-cycle load+shift chain of §II-C1).
    pub fn beta_chain(&self) -> f64 {
        self.alpha_sh + self.gamma_addr
    }

    /// Global bandwidth in bytes per hot-clock cycle.
    pub fn glb_bytes_per_cycle(&self) -> f64 {
        self.beta_glb_gbs / self.clock_ghz
    }

    pub fn cycles_to_secs(&self, cycles: f64) -> f64 {
        cycles / (self.clock_ghz * 1e9)
    }
}

impl Default for ModelParams {
    fn default() -> Self {
        Self::table_iv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iv_sync_of_64_threads_is_46() {
        assert_eq!(ModelParams::table_iv().alpha_sync(64), 46.0);
    }

    #[test]
    fn from_config_matches_table_iv() {
        let p = ModelParams::from_config(&GpuConfig::quadro_6000());
        let t = ModelParams::table_iv();
        assert_eq!(p.alpha_glb, t.alpha_glb);
        assert!((p.beta_glb_gbs - t.beta_glb_gbs).abs() < 0.5);
        assert_eq!(p.alpha_sh, t.alpha_sh);
        assert!((p.beta_sh_gbs - t.beta_sh_gbs).abs() < 5.0);
        assert_eq!(p.gamma, t.gamma);
    }

    #[test]
    fn beta_chain_is_the_measured_45_cycles() {
        assert_eq!(ModelParams::table_iv().beta_chain(), 45.0);
    }
}
