//! The paper's LogP-derived cost equations (Section II, Equations 1 and 2).

use crate::params::ModelParams;

/// Equation 1 — global model:
/// `τ_gbl = #msg · α_glb + msize · β_glb + flops · γ` (cycles).
///
/// `msize` is in bytes; `β_glb` is applied as bytes-per-cycle of achievable
/// DRAM bandwidth.
pub fn tau_global(p: &ModelParams, msgs: f64, msize_bytes: f64, flops: f64) -> f64 {
    msgs * p.alpha_glb + msize_bytes / p.glb_bytes_per_cycle() + flops * p.gamma
}

/// Equation 2 — shared-memory model:
/// `τ_lcl = #msg · α_sh + nsync · α_sync + msize · β_sh + flops · γ`.
///
/// `threads` selects the α_sync operating point (Figure 2); `msize` is in
/// bytes and is charged at the chip's achievable shared bandwidth divided
/// evenly over the SMs.
pub fn tau_local(
    p: &ModelParams,
    msgs: f64,
    nsync: f64,
    msize_bytes: f64,
    flops: f64,
    threads: usize,
) -> f64 {
    let sh_bytes_per_cycle = p.beta_sh_gbs / p.num_sms as f64 / p.clock_ghz;
    msgs * p.alpha_sh
        + nsync * p.alpha_sync(threads)
        + msize_bytes / sh_bytes_per_cycle
        + flops * p.gamma
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tau_global_is_linear_in_each_term() {
        let p = ModelParams::table_iv();
        let base = tau_global(&p, 1.0, 0.0, 0.0);
        assert_eq!(base, 570.0);
        let two = tau_global(&p, 2.0, 0.0, 0.0);
        assert_eq!(two, 1140.0);
        let f = tau_global(&p, 0.0, 0.0, 10.0);
        assert_eq!(f, 180.0);
        // Exactly one cycle's worth of bytes at 108 GB/s and 1.15 GHz.
        let b = tau_global(&p, 0.0, 108.0 / 1.15, 0.0);
        assert!((b - 1.0).abs() < 1e-9);
    }

    #[test]
    fn tau_local_counts_syncs_at_the_right_operating_point() {
        let p = ModelParams::table_iv();
        let one_sync_64 = tau_local(&p, 0.0, 1.0, 0.0, 0.0, 64);
        assert_eq!(one_sync_64, 46.0);
        let one_sync_1024 = tau_local(&p, 0.0, 1.0, 0.0, 0.0, 1024);
        assert!(one_sync_1024 > 3.0 * one_sync_64);
    }

    #[test]
    fn shared_messages_cost_alpha_sh() {
        let p = ModelParams::table_iv();
        assert_eq!(tau_local(&p, 3.0, 0.0, 0.0, 0.0, 64), 81.0);
    }
}
