//! Predictions for the one-problem-per-thread approach (Section IV).
//!
//! The paper's model here is a pure roofline: FLOPs are free (γ = 0),
//! latency is hidden by multithreading (α_glb = 0), and the only cost is
//! moving the matrix between DRAM and the register files. Expected
//! performance is arithmetic intensity times achievable DRAM bandwidth —
//! the dashed lines of Figure 4. The model deliberately ignores register
//! spilling, which is why it diverges from measurement past n = 8.

use crate::intensity::{arithmetic_intensity, bytes_moved, Algorithm};
use crate::params::ModelParams;

/// Predicted GFLOP/s for `n x n` problems solved one per thread.
pub fn predicted_gflops(p: &ModelParams, alg: Algorithm, n: usize, elem_bytes: usize) -> f64 {
    arithmetic_intensity(alg, n, n, elem_bytes) * p.beta_glb_gbs
}

/// Predicted wall time for a batch of `count` problems.
pub fn predicted_time_s(
    p: &ModelParams,
    alg: Algorithm,
    n: usize,
    count: usize,
    elem_bytes: usize,
) -> f64 {
    let rhs = match alg {
        Algorithm::GaussJordan | Algorithm::LeastSquares | Algorithm::QrSolve => 1,
        _ => 0,
    };
    let bytes = bytes_moved(n, n, rhs, elem_bytes) * count as f64;
    bytes / (p.beta_glb_gbs * 1e9)
}

/// The communication lower bound the paper closes Section IV with: even
/// with blocked algorithms inside a thread, performance is "determined by
/// the amount of global bandwidth and the amount of local storage per
/// thread ... regardless of the blocking strategy or algorithm" (Ballard,
/// Demmel, Holtz, Schwartz [6]). For O(n³) dense linear algebra with M
/// words of local storage, at least `flops / sqrt(8 M)` words must cross
/// the memory interface, bounding the attainable rate at
/// `beta_glb * sqrt(8 M) / word_bytes` FLOP/s.
pub fn communication_bound_gflops(p: &ModelParams, local_words: usize, elem_bytes: usize) -> f64 {
    let m = local_words as f64;
    p.beta_glb_gbs * (8.0 * m).sqrt() / elem_bytes as f64
}

/// The largest n for which the *entire* matrix fits the per-thread
/// register file (below which the simple read-once/write-once bound of
/// `predicted_gflops` applies instead of the blocked bound).
pub fn register_resident_limit(regs: usize, rhs_cols: usize, elem_words: usize) -> usize {
    let mut n = 1;
    while (n + 1) * (n + 1 + rhs_cols) * elem_words + 12 <= regs {
        n += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qr_7x7_predicts_126_gflops() {
        // Section IV's worked example: 1.17 FLOPs/byte x 108 GB/s ≈ 126.
        let p = ModelParams::table_iv();
        let g = predicted_gflops(&p, Algorithm::Qr, 7, 4);
        assert!((g - 126.0).abs() < 2.0, "got {g}");
    }

    #[test]
    fn prediction_grows_linearly_with_n_for_qr() {
        // AI of QR is Θ(n), so the roofline grows with n.
        let p = ModelParams::table_iv();
        let g4 = predicted_gflops(&p, Algorithm::Qr, 4, 4);
        let g8 = predicted_gflops(&p, Algorithm::Qr, 8, 4);
        assert!(g8 > 1.8 * g4);
    }

    #[test]
    fn lu_predicts_half_of_gj() {
        let p = ModelParams::table_iv();
        let lu = predicted_gflops(&p, Algorithm::Lu, 6, 4);
        let qr = predicted_gflops(&p, Algorithm::Qr, 6, 4);
        assert!(lu < qr, "LU does fewer flops on the same bytes");
    }

    #[test]
    fn communication_bound_caps_blocked_per_thread() {
        // With the GF100's 64 registers, a blocked per-thread algorithm
        // cannot beat ~1.2 TFLOP/s even in theory... but the relevant
        // regime (the paper's point) is that the bound *scales with the
        // square root of local storage*: 4x the registers only doubles it.
        let p = ModelParams::table_iv();
        let b64 = communication_bound_gflops(&p, 64, 4);
        let b256 = communication_bound_gflops(&p, 256, 4);
        assert!((b256 / b64 - 2.0).abs() < 1e-9);
        // And the register-resident roofline at n = 7 sits far below it:
        // the bound is not the binding constraint until spilling starts.
        let roofline = predicted_gflops(&p, Algorithm::Qr, 7, 4);
        assert!(roofline < b64);
    }

    #[test]
    fn register_limit_matches_figure_4() {
        assert_eq!(register_resident_limit(64, 0, 1), 7);
        assert_eq!(register_resident_limit(64, 0, 2), 5);
        assert!(register_resident_limit(256, 0, 1) > 7);
    }

    #[test]
    fn time_is_bandwidth_times_bytes() {
        let p = ModelParams::table_iv();
        let t = predicted_time_s(&p, Algorithm::Lu, 8, 64000, 4);
        let bytes = 2.0 * 64.0 * 4.0 * 64000.0;
        assert!((t - bytes / 108e9).abs() / t < 1e-12);
    }
}
