//! Pricing for algorithm-based result verification.
//!
//! The verification screens in `regla-core::verify` (Huang–Abraham-style
//! checksum relations through the factorizations, one-matvec residual
//! screens on the solve paths) run on the host after a launch. They are
//! cheap — a handful of matrix-vector products per problem against the
//! O(n³) factorization — but not free, so this module prices them the
//! same way the dispatch model prices kernels: a FLOP count per (alg,
//! shape) turned into seconds/cycles through an assumed host throughput.
//! The serve layer adds this cost to its admission estimate when a
//! request asks for the verified tier, and the `verify_campaign`
//! experiment reports measured vs predicted overhead side by side.

use crate::intensity::Algorithm;
use crate::params::ModelParams;

/// How much algorithm-based verification to run on a batch's results.
///
/// Verification is strictly observational: outputs, taus and
/// pre-verification statuses are bit-identical whatever the mode. The
/// only effect of turning a screen on is that finite-but-wrong results
/// can be demoted from `Ok` to `VerifyFailed` (and then recovered).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum VerifyMode {
    /// No verification (today's behaviour, and the default).
    #[default]
    Off,
    /// Solve-path residual screen only: `‖A·x̂ − b‖ / (‖A‖·‖x̂‖ + ‖b‖)`
    /// on ops that return a solution. A no-op for factor-only ops.
    Residual,
    /// Factorization checksum screens only: `L(Ue)=Ae` for LU,
    /// `L(Lᴴe)=Ae` for Cholesky, `Q(Re)=Ae` for QR with taus,
    /// `Rᴴ(Re)=Aᴴ(Ae)` for tau-less QR. A no-op for ops with no
    /// factorization (Gauss-Jordan).
    Checksum,
    /// Both screens.
    Full,
}

impl VerifyMode {
    /// Whether any screen runs at all.
    pub fn is_on(self) -> bool {
        !matches!(self, VerifyMode::Off)
    }

    /// Whether the factorization checksum screen runs.
    pub fn checksum(self) -> bool {
        matches!(self, VerifyMode::Checksum | VerifyMode::Full)
    }

    /// Whether the solve-path residual screen runs.
    pub fn residual(self) -> bool {
        matches!(self, VerifyMode::Residual | VerifyMode::Full)
    }
}

/// Assumed host throughput of the screens' f64 accumulation loops in
/// GFLOP/s. Small-n matvecs over strided batch storage run far below
/// peak; this constant is calibrated against the measured overhead the
/// `verify_campaign` experiment reports.
pub const HOST_VERIFY_GFLOPS: f64 = 1.0;

/// FLOPs of the verification screens for ONE problem of shape
/// `m x n` (+`rhs` carried right-hand-side columns) under `mode`.
///
/// Counts are matvec-level estimates (multiply+add = 2 FLOPs), not
/// exact op counts — they feed a throughput model, so the shape terms
/// matter and the constants are calibrated once.
pub fn verify_flops(alg: Algorithm, m: usize, n: usize, rhs: usize, mode: VerifyMode) -> f64 {
    let (mf, nf, rf) = (m as f64, n as f64, rhs as f64);
    let mut fl = 0.0;
    if mode.checksum() {
        fl += match alg {
            // L(Ue) vs Ae: one row-sum of A plus two triangular matvecs.
            Algorithm::Lu => 2.0 * mf * nf + 2.0 * nf * nf,
            // L(Lᴴe) vs Ae over the lower triangle.
            Algorithm::Cholesky => 2.0 * nf * nf + 2.0 * nf * nf,
            // Ae + Re + the reverse reflector sweep (≈4 FLOPs per stored
            // reflector element).
            Algorithm::Qr => 3.0 * mf * nf + 4.0 * mf * nf,
            // Gram relation Rᴴ(Re) vs Aᴴ(Ae): two matvecs per side.
            Algorithm::LeastSquares | Algorithm::QrSolve => 4.0 * mf * nf + 2.0 * nf * nf,
            // Gauss-Jordan leaves no factorization to checksum.
            Algorithm::GaussJordan => 0.0,
        };
    }
    if mode.residual() {
        fl += match alg {
            // A(Xe) vs Be plus ‖A‖_F: a matvec, two column sums, a norm.
            Algorithm::GaussJordan | Algorithm::QrSolve | Algorithm::LeastSquares => {
                2.0 * nf * nf + 2.0 * nf * rf.max(1.0) + mf * nf
            }
            // Factor-only ops return no solution to screen.
            Algorithm::Lu | Algorithm::Qr | Algorithm::Cholesky => 0.0,
        };
    }
    fl
}

/// Host seconds to verify a `count`-problem batch.
pub fn verify_seconds(
    alg: Algorithm,
    m: usize,
    n: usize,
    rhs: usize,
    count: usize,
    mode: VerifyMode,
) -> f64 {
    count as f64 * verify_flops(alg, m, n, rhs, mode) / (HOST_VERIFY_GFLOPS * 1e9)
}

/// Verification overhead expressed in device hot-clock cycles, so it can
/// be compared against (and added to) kernel cycle estimates.
pub fn verify_cycles(
    p: &ModelParams,
    alg: Algorithm,
    m: usize,
    n: usize,
    rhs: usize,
    count: usize,
    mode: VerifyMode,
) -> f64 {
    verify_seconds(alg, m, n, rhs, count, mode) * p.clock_ghz * 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_costs_nothing_and_full_dominates() {
        for alg in crate::intensity::Algorithm::ALL {
            assert_eq!(verify_flops(alg, 24, 24, 1, VerifyMode::Off), 0.0);
            let r = verify_flops(alg, 24, 24, 1, VerifyMode::Residual);
            let c = verify_flops(alg, 24, 24, 1, VerifyMode::Checksum);
            let f = verify_flops(alg, 24, 24, 1, VerifyMode::Full);
            assert_eq!(f, r + c, "{alg:?}");
            assert!(f > 0.0, "{alg:?} must have at least one screen");
        }
    }

    #[test]
    fn mode_predicates() {
        assert!(!VerifyMode::Off.is_on());
        assert!(VerifyMode::Residual.is_on() && VerifyMode::Residual.residual());
        assert!(!VerifyMode::Residual.checksum());
        assert!(VerifyMode::Checksum.checksum() && !VerifyMode::Checksum.residual());
        assert!(VerifyMode::Full.checksum() && VerifyMode::Full.residual());
        assert_eq!(VerifyMode::default(), VerifyMode::Off);
    }

    #[test]
    fn cycles_track_seconds_through_the_clock() {
        let p = ModelParams::table_iv();
        let s = verify_seconds(Algorithm::Qr, 24, 24, 0, 4096, VerifyMode::Checksum);
        let c = verify_cycles(&p, Algorithm::Qr, 24, 24, 0, 4096, VerifyMode::Checksum);
        assert!(s > 0.0);
        assert!((c - s * p.clock_ghz * 1e9).abs() < 1e-6 * c);
        assert!((p.cycles_to_secs(c) - s).abs() < 1e-12);
    }

    #[test]
    fn verify_is_cheap_relative_to_factorization() {
        // The screens are O(n²) per problem against the O(n³) kernels;
        // at the paper's shapes they must stay a small fraction of the
        // predicted solve cost.
        let fl = verify_flops(Algorithm::Qr, 56, 56, 0, VerifyMode::Full);
        let kernel = 4.0 / 3.0 * 56f64.powi(3);
        assert!(fl < kernel / 4.0, "verify {fl} vs kernel {kernel}");
    }
}
