//! The *predictive* part of the model as an API: given a batch of problems,
//! predict the runtime of each feasible approach and choose one.
//!
//! This codifies the design space of Figure 10: one-problem-per-thread for
//! register-resident sizes, one-problem-per-block up to the register-file
//! capacity of a block, the tiled algorithm for matrices that exceed it,
//! and the hybrid CPU+GPU library for single large factorizations.

use crate::intensity::Algorithm;
use crate::params::ModelParams;
use crate::per_block::{block_compute_cycles, predict_block};
use crate::per_thread;
use crate::plan::{block_plan, thread_plan, Approach};
use regla_gpu_sim::{occupancy, GpuConfig};

/// Predicted cost of one approach.
#[derive(Clone, Debug)]
pub struct Candidate {
    pub approach: Approach,
    pub time_s: f64,
    pub gflops: f64,
}

/// Why the predictive model could not produce a dispatch decision.
///
/// These conditions cannot arise from the design space as currently wired
/// (the hybrid candidate is unconditional), but the dispatcher is public
/// API and the conditions must surface as structured errors rather than
/// panics if a future pruning rule or a hand-built [`Decision`] violates
/// the invariants.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModelError {
    /// No approach was feasible for the requested shape.
    NoCandidates {
        alg: Algorithm,
        m: usize,
        n: usize,
        batch: usize,
    },
    /// A [`Decision`]'s `choice` is not among its `candidates`.
    ChoiceNotCandidate { choice: Approach },
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::NoCandidates { alg, m, n, batch } => write!(
                f,
                "no feasible approach for {} on {m}x{n} x {batch} problems",
                alg.name()
            ),
            ModelError::ChoiceNotCandidate { choice } => write!(
                f,
                "decision chose {} but it is not among the candidates",
                choice.name()
            ),
        }
    }
}

impl std::error::Error for ModelError {}

/// A dispatch decision with the full predicted design space.
#[derive(Clone, Debug)]
pub struct Decision {
    pub choice: Approach,
    pub candidates: Vec<Candidate>,
}

impl Decision {
    /// The candidate backing `choice`.
    ///
    /// Errors (rather than panics) if the decision was constructed with a
    /// `choice` missing from `candidates`.
    pub fn chosen(&self) -> Result<&Candidate, ModelError> {
        self.candidates
            .iter()
            .find(|c| c.approach == self.choice)
            .ok_or(ModelError::ChoiceNotCandidate { choice: self.choice })
    }
}

/// Default tile edge for the tiled algorithm (a shape that keeps the tile
/// inside one block's register file with 64 threads).
pub fn default_tile(elem_words: usize) -> usize {
    if elem_words >= 2 {
        40
    } else {
        56
    }
}

/// Rough cycle estimate for the sequential tiled QR of one `m x n` problem
/// with tile edge `b`: a GEQRT per diagonal tile, TSQRTs down the panel,
/// and trailing-tile updates, each re-streaming its tiles through DRAM.
pub fn tiled_qr_cycles(
    p: &ModelParams,
    m: usize,
    n: usize,
    b: usize,
    elem_words: usize,
) -> f64 {
    let tm = m.div_ceil(b);
    let tn = n.div_ceil(b);
    let tile_plan = block_plan(b, b, 0, elem_words);
    let geqrt = block_compute_cycles(p, &tile_plan, Algorithm::Qr, 2);
    // A TSQRT couples two tiles (2b x b): roughly twice the chain depth.
    let tsqrt = 2.0 * geqrt;
    // An update applies b reflectors to a b x b tile: comparable to the
    // trailing-matrix work of a QR, ~2/3 of the factorization cost.
    let update = 1.5 * geqrt;
    let tile_bytes = (b * b * elem_words * 4) as f64;
    let dram_per_tile_op = 2.0 * tile_bytes / p.glb_bytes_per_cycle();

    let mut ops = 0.0;
    let mut compute = 0.0;
    for k in 0..tn.min(tm) {
        let below = (tm - 1 - k) as f64;
        let right = (tn - 1 - k) as f64;
        compute += geqrt + below * tsqrt + right * update + below * right * update;
        ops += 1.0 + below + right + below * right;
    }
    compute + ops * dram_per_tile_op
}

/// Predict and choose an execution strategy for a batch.
pub fn choose(
    p: &ModelParams,
    cfg: &GpuConfig,
    alg: Algorithm,
    m: usize,
    n: usize,
    batch: usize,
    elem_words: usize,
) -> Result<Decision, ModelError> {
    let mut candidates = Vec::new();
    let rhs = match alg {
        Algorithm::GaussJordan | Algorithm::LeastSquares | Algorithm::QrSolve => 1,
        _ => 0,
    };
    let flops = match elem_words {
        2 => alg.flops_complex(m, n),
        _ => alg.flops(m, n),
    } * batch as f64;

    // --- one problem per thread: only for square, register-resident sizes.
    if m == n && thread_plan(n, rhs, elem_words).fits_registers() {
        let t = per_thread::predicted_time_s(p, alg, n, batch, 4 * elem_words);
        candidates.push(Candidate {
            approach: Approach::PerThread,
            time_s: t,
            gflops: flops / t / 1e9,
        });
    }

    // --- one problem per block: while the tile (with tolerable spilling)
    // fits; the paper runs this up to n = 144.
    let bp = block_plan(m.max(n), n, rhs, elem_words);
    if bp.regs_per_thread <= 110 && m >= n {
        let pred = predict_block(p, cfg, alg, m, n, rhs, elem_words, batch);
        candidates.push(Candidate {
            approach: Approach::PerBlock,
            time_s: pred.time_s,
            gflops: pred.gflops,
        });
    }

    // --- tiled within a block: anything taller/wider, still batched.
    if m >= n && (alg == Algorithm::Qr || alg == Algorithm::LeastSquares) {
        let b = default_tile(elem_words);
        if m > b || n > b {
            let cyc = tiled_qr_cycles(p, m, n, b, elem_words);
            // Tiled problems run one per block; occupancy fills the chip.
            let tile_plan = block_plan(b, b, 0, elem_words);
            let occ = occupancy(
                cfg,
                tile_plan.threads,
                tile_plan.regs_per_thread.min(cfg.max_regs_per_thread),
                tile_plan.shared_words * 4,
            );
            let lanes = (occ.blocks_per_sm * cfg.num_sms).min(batch).max(1);
            let waves = (batch as f64 / lanes as f64).ceil();
            let t = p.cycles_to_secs(cyc * waves);
            candidates.push(Candidate {
                approach: Approach::Tiled,
                time_s: t,
                gflops: flops / t / 1e9,
            });
        }
    }

    // --- hybrid library: a coarse asymptotic model of MAGMA-class
    // performance (GEMM-bound for large n, CPU-bound under the 96-wide
    // panel, one problem at a time).
    {
        let per_problem_flops = flops / batch as f64;
        let rate_gflops = if n < 96 {
            5.0 // panel runs on the CPU
        } else {
            let nn = n as f64;
            450.0 * nn / (nn + 700.0)
        };
        let xfer = 2.0 * (m * (n + rhs) * elem_words * 4) as f64 / (cfg.pcie_gbs * 1e9)
            + 2.0 * cfg.pcie_latency_us * 1e-6;
        let t = batch as f64 * (per_problem_flops / (rate_gflops * 1e9) + xfer);
        candidates.push(Candidate {
            approach: Approach::Hybrid,
            time_s: t,
            gflops: flops / t / 1e9,
        });
    }

    let choice = candidates
        .iter()
        .min_by(|a, b| a.time_s.total_cmp(&b.time_s))
        .map(|c| c.approach)
        .ok_or(ModelError::NoCandidates { alg, m, n, batch })?;
    Ok(Decision { choice, candidates })
}

/// Predicted whole-launch cycle count for running `batch` problems with
/// `approach` — the predictive model acting as a timeout oracle.
///
/// A fleet derives per-launch deadline budgets from this (estimate × slack
/// factor): a launch that takes materially longer than the model predicts
/// is a sick device, not a slow problem. Returns `None` when the model has
/// no candidate for the requested approach (the caller should then run
/// without a deadline rather than guess one).
#[allow(clippy::too_many_arguments)]
pub fn predicted_cycles(
    p: &ModelParams,
    cfg: &GpuConfig,
    alg: Algorithm,
    approach: Approach,
    m: usize,
    n: usize,
    batch: usize,
    elem_words: usize,
) -> Option<f64> {
    let d = choose(p, cfg, alg, m, n, batch, elem_words).ok()?;
    d.candidates
        .iter()
        .find(|c| c.approach == approach)
        .map(|c| cfg.secs_to_cycles(c.time_s))
}

/// Predicted wall time, in simulated seconds, for the *chosen* approach on
/// a `batch`-problem launch — the estimate a serving layer prices
/// admission and flush decisions with. `None` when the model has no
/// candidate for the shape.
pub fn predicted_seconds(
    p: &ModelParams,
    cfg: &GpuConfig,
    alg: Algorithm,
    m: usize,
    n: usize,
    batch: usize,
    elem_words: usize,
) -> Option<f64> {
    choose(p, cfg, alg, m, n, batch, elem_words)
        .ok()?
        .chosen()
        .ok()
        .map(|c| c.time_s)
}

/// Smallest batch size at which the device saturates for this shape: the
/// point where doubling the batch roughly doubles the predicted time
/// (adding problems no longer rides for free on unused occupancy).
///
/// A micro-batcher flushes once a coalesced launch reaches this size —
/// beyond it, holding requests back buys latency without throughput.
/// Returns `None` when the model has no estimate for the shape.
pub fn saturation_batch(
    p: &ModelParams,
    cfg: &GpuConfig,
    alg: Algorithm,
    m: usize,
    n: usize,
    elem_words: usize,
) -> Option<usize> {
    const CAP: usize = 1 << 20;
    let mut b = 1usize;
    let mut t = predicted_seconds(p, cfg, alg, m, n, b, elem_words)?;
    while b < CAP {
        let t2 = predicted_seconds(p, cfg, alg, m, n, 2 * b, elem_words)?;
        // Doubling the batch costs ~double the time: scaling is linear
        // from here on, so the chip is full at `b`.
        if t > 0.0 && t2 >= 1.9 * t {
            return Some(b);
        }
        b *= 2;
        t = t2;
    }
    Some(CAP)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (ModelParams, GpuConfig) {
        (ModelParams::table_iv(), GpuConfig::quadro_6000())
    }

    #[test]
    fn tiny_batched_problems_go_per_thread() {
        let (p, cfg) = setup();
        let d = choose(&p, &cfg, Algorithm::Lu, 6, 6, 64000, 1).unwrap();
        assert_eq!(d.choice, Approach::PerThread);
    }

    #[test]
    fn mid_sized_batched_problems_go_per_block() {
        let (p, cfg) = setup();
        let d = choose(&p, &cfg, Algorithm::Qr, 56, 56, 8000, 1).unwrap();
        assert_eq!(d.choice, Approach::PerBlock);
    }

    #[test]
    fn stap_240x66_goes_tiled() {
        let (p, cfg) = setup();
        let d = choose(&p, &cfg, Algorithm::Qr, 240, 66, 128, 2).unwrap();
        assert_eq!(d.choice, Approach::Tiled);
    }

    #[test]
    fn single_huge_problem_goes_hybrid() {
        let (p, cfg) = setup();
        let d = choose(&p, &cfg, Algorithm::Qr, 4096, 4096, 1, 1).unwrap();
        assert_eq!(d.choice, Approach::Hybrid);
    }

    #[test]
    fn decision_exposes_the_design_space() {
        let (p, cfg) = setup();
        let d = choose(&p, &cfg, Algorithm::Qr, 56, 56, 8000, 1).unwrap();
        assert!(d.candidates.len() >= 2);
        let chosen = d.chosen().unwrap();
        for c in &d.candidates {
            assert!(chosen.time_s <= c.time_s + 1e-12);
        }
    }

    #[test]
    fn predicted_seconds_tracks_the_chosen_candidate() {
        let (p, cfg) = setup();
        let t = predicted_seconds(&p, &cfg, Algorithm::Lu, 8, 8, 4096, 1).unwrap();
        let d = choose(&p, &cfg, Algorithm::Lu, 8, 8, 4096, 1).unwrap();
        assert_eq!(t, d.chosen().unwrap().time_s);
        assert!(t > 0.0 && t.is_finite());
    }

    #[test]
    fn saturation_batch_is_finite_and_marks_linear_scaling() {
        let (p, cfg) = setup();
        let b = saturation_batch(&p, &cfg, Algorithm::Lu, 8, 8, 1).unwrap();
        assert!((1..1 << 20).contains(&b), "b = {b}");
        // Past saturation, doubling the batch ~doubles the time.
        let t1 = predicted_seconds(&p, &cfg, Algorithm::Lu, 8, 8, b, 1).unwrap();
        let t2 = predicted_seconds(&p, &cfg, Algorithm::Lu, 8, 8, 2 * b, 1).unwrap();
        assert!(t2 >= 1.9 * t1, "t1 = {t1}, t2 = {t2}");
    }

    #[test]
    fn tiled_estimate_grows_with_problem_size() {
        let p = ModelParams::table_iv();
        let small = tiled_qr_cycles(&p, 128, 64, 56, 1);
        let large = tiled_qr_cycles(&p, 512, 256, 56, 1);
        assert!(large > 4.0 * small);
    }
}
