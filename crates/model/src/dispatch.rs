//! The *predictive* part of the model as an API: given a batch of problems,
//! predict the runtime of each feasible approach and choose one.
//!
//! This codifies the design space of Figure 10: one-problem-per-thread for
//! register-resident sizes, one-problem-per-block up to the register-file
//! capacity of a block, the tiled algorithm for matrices that exceed it,
//! and the hybrid CPU+GPU library for single large factorizations.

use crate::intensity::Algorithm;
use crate::params::ModelParams;
use crate::per_block::{block_compute_cycles, predict_block_plan};
use crate::per_thread;
use crate::plan::{
    block_plan, block_plan_with_threads, thread_plan, Approach, Layout, Plan, PlanKey,
    PER_BLOCK_MAX_DECLARED_REGS,
};
use regla_gpu_sim::{occupancy, GpuConfig};

/// Predicted cost of one approach.
#[derive(Clone, Debug)]
pub struct Candidate {
    pub approach: Approach,
    pub time_s: f64,
    pub gflops: f64,
}

/// Why the predictive model could not produce a dispatch decision.
///
/// These conditions cannot arise from the design space as currently wired
/// (the hybrid candidate is unconditional), but the dispatcher is public
/// API and the conditions must surface as structured errors rather than
/// panics if a future pruning rule or a hand-built [`Decision`] violates
/// the invariants.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModelError {
    /// No approach was feasible for the requested shape.
    NoCandidates {
        alg: Algorithm,
        m: usize,
        n: usize,
        batch: usize,
    },
    /// A [`Decision`]'s `choice` is not among its `candidates`.
    ChoiceNotCandidate { choice: Approach },
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::NoCandidates { alg, m, n, batch } => write!(
                f,
                "no feasible approach for {} on {m}x{n} x {batch} problems",
                alg.name()
            ),
            ModelError::ChoiceNotCandidate { choice } => write!(
                f,
                "decision chose {} but it is not among the candidates",
                choice.name()
            ),
        }
    }
}

impl std::error::Error for ModelError {}

/// A dispatch decision with the full predicted design space.
#[derive(Clone, Debug)]
pub struct Decision {
    pub choice: Approach,
    pub candidates: Vec<Candidate>,
}

impl Decision {
    /// The candidate backing `choice`.
    ///
    /// Errors (rather than panics) if the decision was constructed with a
    /// `choice` missing from `candidates`.
    pub fn chosen(&self) -> Result<&Candidate, ModelError> {
        self.candidates
            .iter()
            .find(|c| c.approach == self.choice)
            .ok_or(ModelError::ChoiceNotCandidate { choice: self.choice })
    }
}

/// Default tile edge for the tiled algorithm (a shape that keeps the tile
/// inside one block's register file with 64 threads).
pub fn default_tile(elem_words: usize) -> usize {
    if elem_words >= 2 {
        40
    } else {
        56
    }
}

/// Rough cycle estimate for the sequential tiled QR of one `m x n` problem
/// with tile edge `b`: a GEQRT per diagonal tile, TSQRTs down the panel,
/// and trailing-tile updates, each re-streaming its tiles through DRAM.
pub fn tiled_qr_cycles(
    p: &ModelParams,
    m: usize,
    n: usize,
    b: usize,
    elem_words: usize,
) -> f64 {
    let tm = m.div_ceil(b);
    let tn = n.div_ceil(b);
    let tile_plan = block_plan(b, b, 0, elem_words);
    let geqrt = block_compute_cycles(p, &tile_plan, Algorithm::Qr, 2);
    // A TSQRT couples two tiles (2b x b): roughly twice the chain depth.
    let tsqrt = 2.0 * geqrt;
    // An update applies b reflectors to a b x b tile: comparable to the
    // trailing-matrix work of a QR, ~2/3 of the factorization cost.
    let update = 1.5 * geqrt;
    let tile_bytes = (b * b * elem_words * 4) as f64;
    let dram_per_tile_op = 2.0 * tile_bytes / p.glb_bytes_per_cycle();

    let mut ops = 0.0;
    let mut compute = 0.0;
    for k in 0..tn.min(tm) {
        let below = (tm - 1 - k) as f64;
        let right = (tn - 1 - k) as f64;
        compute += geqrt + below * tsqrt + right * update + below * right * update;
        ops += 1.0 + below + right + below * right;
    }
    compute + ops * dram_per_tile_op
}

/// Predict and choose an execution strategy for a batch, with the
/// conventional right-hand-side width for the algorithm (one carried
/// column for the solve variants, none for the factorizations).
pub fn choose(
    p: &ModelParams,
    cfg: &GpuConfig,
    alg: Algorithm,
    m: usize,
    n: usize,
    batch: usize,
    elem_words: usize,
) -> Result<Decision, ModelError> {
    let rhs = match alg {
        Algorithm::GaussJordan | Algorithm::LeastSquares | Algorithm::QrSolve => 1,
        _ => 0,
    };
    choose_with_rhs(p, cfg, alg, m, n, rhs, batch, elem_words)
}

/// [`choose`] with an explicit carried right-hand-side width — the entry
/// point the planner prices dispatches through (a Gauss-Jordan inversion
/// carries `n` columns, not 1).
#[allow(clippy::too_many_arguments)]
pub fn choose_with_rhs(
    p: &ModelParams,
    cfg: &GpuConfig,
    alg: Algorithm,
    m: usize,
    n: usize,
    rhs: usize,
    batch: usize,
    elem_words: usize,
) -> Result<Decision, ModelError> {
    let mut candidates = Vec::new();
    let flops = match elem_words {
        2 => alg.flops_complex(m, n),
        _ => alg.flops(m, n),
    } * batch as f64;

    // --- one problem per thread: only for square, register-resident sizes.
    if m == n && thread_plan(n, rhs, elem_words).fits_registers() {
        let t = per_thread::predicted_time_s(p, alg, n, batch, 4 * elem_words);
        candidates.push(Candidate {
            approach: Approach::PerThread,
            time_s: t,
            gflops: flops / t / 1e9,
        });
    }

    // --- one problem per block: while the tile (with tolerable spilling)
    // fits; the paper runs this up to n = 144.
    let bp = block_plan(m.max(n), n, rhs, elem_words);
    if bp.regs_per_thread <= PER_BLOCK_MAX_DECLARED_REGS && m >= n {
        let pred = predict_block_plan(p, cfg, alg, bp, batch);
        candidates.push(Candidate {
            approach: Approach::PerBlock,
            time_s: pred.time_s,
            gflops: pred.gflops,
        });
    }

    // --- tiled within a block: anything taller/wider, still batched.
    if m >= n && (alg == Algorithm::Qr || alg == Algorithm::LeastSquares) {
        let b = default_tile(elem_words);
        if m > b || n > b {
            let cyc = tiled_qr_cycles(p, m, n, b, elem_words);
            // Tiled problems run one per block; occupancy fills the chip.
            let tile_plan = block_plan(b, b, 0, elem_words);
            let occ = occupancy(
                cfg,
                tile_plan.threads,
                tile_plan.regs_per_thread.min(cfg.max_regs_per_thread),
                tile_plan.shared_words * 4,
            );
            let lanes = (occ.blocks_per_sm * cfg.num_sms).min(batch).max(1);
            let waves = (batch as f64 / lanes as f64).ceil();
            let t = p.cycles_to_secs(cyc * waves);
            candidates.push(Candidate {
                approach: Approach::Tiled,
                time_s: t,
                gflops: flops / t / 1e9,
            });
        }
    }

    // --- hybrid library: a coarse asymptotic model of MAGMA-class
    // performance (GEMM-bound for large n, CPU-bound under the 96-wide
    // panel, one problem at a time).
    {
        let per_problem_flops = flops / batch as f64;
        let rate_gflops = if n < 96 {
            5.0 // panel runs on the CPU
        } else {
            let nn = n as f64;
            450.0 * nn / (nn + 700.0)
        };
        let xfer = 2.0 * (m * (n + rhs) * elem_words * 4) as f64 / (cfg.pcie_gbs * 1e9)
            + 2.0 * cfg.pcie_latency_us * 1e-6;
        let t = batch as f64 * (per_problem_flops / (rate_gflops * 1e9) + xfer);
        candidates.push(Candidate {
            approach: Approach::Hybrid,
            time_s: t,
            gflops: flops / t / 1e9,
        });
    }

    let choice = candidates
        .iter()
        .min_by(|a, b| a.time_s.total_cmp(&b.time_s))
        .map(|c| c.approach)
        .ok_or(ModelError::NoCandidates { alg, m, n, batch })?;
    Ok(Decision { choice, candidates })
}

/// The `Planner::Model` rule: rank the feasible design space for `key`
/// by predicted time and plan the fastest *device-executable* approach
/// (the hybrid CPU+GPU library is a baseline, not a dispatch target).
/// Falls back to the hand rules when the model has no device candidate.
pub fn model_plan(p: &ModelParams, cfg: &GpuConfig, key: &PlanKey) -> Plan {
    let best = choose_with_rhs(
        p,
        cfg,
        key.alg,
        key.m,
        key.n,
        key.rhs,
        key.batch(),
        key.elem_words,
    )
    .ok()
    .and_then(|d| {
        d.candidates
            .into_iter()
            .filter(|c| c.approach != Approach::Hybrid)
            .min_by(|a, b| a.time_s.total_cmp(&b.time_s))
    });
    match best {
        Some(c) => Plan::new(c.approach),
        None => crate::plan::heuristic_plan(key),
    }
}

/// Cycle estimate for the *sequential panel* tiled QR `regla-core`
/// actually launches (per panel: a per-block factor kernel over the
/// `prows x pw` panel, then a reflector-apply kernel over the trailing
/// columns), as opposed to [`tiled_qr_cycles`]'s PLASMA-style tile
/// algorithm. This is what ranks panel-width candidates in the tuner.
#[allow(clippy::too_many_arguments)]
pub fn tiled_panel_cycles(
    p: &ModelParams,
    cfg: &GpuConfig,
    m: usize,
    n: usize,
    rhs: usize,
    elem_words: usize,
    panel: usize,
    batch: usize,
) -> f64 {
    let cols = n + rhs;
    let mut total = 0.0;
    let mut j0 = 0;
    while j0 < n {
        let pw = panel.min(n - j0);
        let prows = m - j0;
        let plan = block_plan(prows, pw, 0, elem_words);
        let occ = occupancy(
            cfg,
            plan.threads,
            plan.regs_per_thread.min(cfg.max_regs_per_thread),
            plan.shared_words * 4,
        );
        let bpw = (occ.blocks_per_sm * cfg.num_sms).max(1);
        let waves = (batch as f64 / bpw as f64).ceil();
        let wave_blocks = bpw.min(batch) as f64;
        let factor = block_compute_cycles(p, &plan, Algorithm::Qr, occ.blocks_per_sm);
        let panel_bytes = 2.0 * (prows * pw * elem_words * 4) as f64;
        total += (factor + panel_bytes * wave_blocks / p.glb_bytes_per_cycle()) * waves;
        let tcols = cols - (j0 + pw);
        if tcols > 0 {
            // Applying pw reflectors to tcols trailing columns does
            // ~2·prows·pw·tcols FLOPs against the factor's ~2·prows·pw²,
            // on the same layout and sync cadence.
            let apply = factor * 1.5 * tcols as f64 / pw as f64;
            let apply_bytes = 2.0 * (prows * (pw + tcols) * elem_words * 4) as f64;
            total += (apply + apply_bytes * wave_blocks / p.glb_bytes_per_cycle()) * waves;
        }
        j0 += pw;
    }
    total
}

/// Predicted cycles for dispatching `key` with one specific [`Plan`] —
/// the ranking function of the tuner's design-space sweep. `None` when
/// the model cannot price the combination (infeasible approach for the
/// shape, or a 1D layout, which only the simulator can judge).
pub fn plan_cycles(p: &ModelParams, cfg: &GpuConfig, key: &PlanKey, plan: &Plan) -> Option<f64> {
    let PlanKey {
        alg,
        m,
        n,
        rhs,
        elem_words,
        ..
    } = *key;
    let batch = key.batch();
    match plan.approach {
        Approach::PerThread => {
            if m != n {
                return None;
            }
            // The paper's per-thread model is bandwidth-bound and assumes
            // a register-resident matrix. Moderate spill (the n = 8
            // regime, where Figure 4 still has per-thread winning) is
            // priced with a local-traffic penalty proportional to the
            // spilled fraction so the tuner can rank it and let the
            // simulator arbitrate; past 2x the register budget the spill
            // traffic dominates and the plan is not priced at all.
            let tp = thread_plan(n, rhs, elem_words);
            let budget = 64.0;
            let over = tp.regs_per_thread as f64 - budget;
            if over > budget {
                return None;
            }
            let penalty = 1.0 + over.max(0.0) / budget;
            let t = per_thread::predicted_time_s(p, alg, n, batch, 4 * elem_words) * penalty;
            Some(cfg.secs_to_cycles(t))
        }
        Approach::PerBlock => {
            if m < n || plan.layout != Layout::TwoDCyclic {
                return None;
            }
            let threads = plan.block_threads_for(m, n + rhs, elem_words);
            let bp = block_plan_with_threads(m, n, rhs, elem_words, threads);
            if bp.regs_per_thread > PER_BLOCK_MAX_DECLARED_REGS {
                return None;
            }
            let pred = predict_block_plan(p, cfg, alg, bp, batch);
            Some(cfg.secs_to_cycles(pred.time_s))
        }
        Approach::Tiled => {
            if m < n || !matches!(alg, Algorithm::Qr | Algorithm::LeastSquares | Algorithm::QrSolve)
            {
                return None;
            }
            if plan.panel == 0 {
                return None;
            }
            Some(tiled_panel_cycles(
                p, cfg, m, n, rhs, elem_words, plan.panel, batch,
            ))
        }
        Approach::Hybrid => None,
    }
}

/// Predicted whole-launch cycle count for running `batch` problems with
/// `approach` — the predictive model acting as a timeout oracle.
///
/// A fleet derives per-launch deadline budgets from this (estimate × slack
/// factor): a launch that takes materially longer than the model predicts
/// is a sick device, not a slow problem. Returns `None` when the model has
/// no candidate for the requested approach (the caller should then run
/// without a deadline rather than guess one).
#[allow(clippy::too_many_arguments)]
pub fn predicted_cycles(
    p: &ModelParams,
    cfg: &GpuConfig,
    alg: Algorithm,
    approach: Approach,
    m: usize,
    n: usize,
    batch: usize,
    elem_words: usize,
) -> Option<f64> {
    let d = choose(p, cfg, alg, m, n, batch, elem_words).ok()?;
    d.candidates
        .iter()
        .find(|c| c.approach == approach)
        .map(|c| cfg.secs_to_cycles(c.time_s))
}

/// Predicted wall time, in simulated seconds, for the *chosen* approach on
/// a `batch`-problem launch — the estimate a serving layer prices
/// admission and flush decisions with. `None` when the model has no
/// candidate for the shape.
pub fn predicted_seconds(
    p: &ModelParams,
    cfg: &GpuConfig,
    alg: Algorithm,
    m: usize,
    n: usize,
    batch: usize,
    elem_words: usize,
) -> Option<f64> {
    choose(p, cfg, alg, m, n, batch, elem_words)
        .ok()?
        .chosen()
        .ok()
        .map(|c| c.time_s)
}

/// Smallest batch size at which the device saturates for this shape: the
/// point where doubling the batch roughly doubles the predicted time
/// (adding problems no longer rides for free on unused occupancy).
///
/// A micro-batcher flushes once a coalesced launch reaches this size —
/// beyond it, holding requests back buys latency without throughput.
/// Returns `None` when the model has no estimate for the shape.
pub fn saturation_batch(
    p: &ModelParams,
    cfg: &GpuConfig,
    alg: Algorithm,
    m: usize,
    n: usize,
    elem_words: usize,
) -> Option<usize> {
    const CAP: usize = 1 << 20;
    let mut b = 1usize;
    let mut t = predicted_seconds(p, cfg, alg, m, n, b, elem_words)?;
    while b < CAP {
        let t2 = predicted_seconds(p, cfg, alg, m, n, 2 * b, elem_words)?;
        // Doubling the batch costs ~double the time: scaling is linear
        // from here on, so the chip is full at `b`.
        if t > 0.0 && t2 >= 1.9 * t {
            return Some(b);
        }
        b *= 2;
        t = t2;
    }
    Some(CAP)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (ModelParams, GpuConfig) {
        (ModelParams::table_iv(), GpuConfig::quadro_6000())
    }

    #[test]
    fn tiny_batched_problems_go_per_thread() {
        let (p, cfg) = setup();
        let d = choose(&p, &cfg, Algorithm::Lu, 6, 6, 64000, 1).unwrap();
        assert_eq!(d.choice, Approach::PerThread);
    }

    #[test]
    fn mid_sized_batched_problems_go_per_block() {
        let (p, cfg) = setup();
        let d = choose(&p, &cfg, Algorithm::Qr, 56, 56, 8000, 1).unwrap();
        assert_eq!(d.choice, Approach::PerBlock);
    }

    #[test]
    fn stap_240x66_goes_tiled() {
        let (p, cfg) = setup();
        let d = choose(&p, &cfg, Algorithm::Qr, 240, 66, 128, 2).unwrap();
        assert_eq!(d.choice, Approach::Tiled);
    }

    #[test]
    fn single_huge_problem_goes_hybrid() {
        let (p, cfg) = setup();
        let d = choose(&p, &cfg, Algorithm::Qr, 4096, 4096, 1, 1).unwrap();
        assert_eq!(d.choice, Approach::Hybrid);
    }

    #[test]
    fn decision_exposes_the_design_space() {
        let (p, cfg) = setup();
        let d = choose(&p, &cfg, Algorithm::Qr, 56, 56, 8000, 1).unwrap();
        assert!(d.candidates.len() >= 2);
        let chosen = d.chosen().unwrap();
        for c in &d.candidates {
            assert!(chosen.time_s <= c.time_s + 1e-12);
        }
    }

    #[test]
    fn predicted_seconds_tracks_the_chosen_candidate() {
        let (p, cfg) = setup();
        let t = predicted_seconds(&p, &cfg, Algorithm::Lu, 8, 8, 4096, 1).unwrap();
        let d = choose(&p, &cfg, Algorithm::Lu, 8, 8, 4096, 1).unwrap();
        assert_eq!(t, d.chosen().unwrap().time_s);
        assert!(t > 0.0 && t.is_finite());
    }

    #[test]
    fn saturation_batch_is_finite_and_marks_linear_scaling() {
        let (p, cfg) = setup();
        let b = saturation_batch(&p, &cfg, Algorithm::Lu, 8, 8, 1).unwrap();
        assert!((1..1 << 20).contains(&b), "b = {b}");
        // Past saturation, doubling the batch ~doubles the time.
        let t1 = predicted_seconds(&p, &cfg, Algorithm::Lu, 8, 8, b, 1).unwrap();
        let t2 = predicted_seconds(&p, &cfg, Algorithm::Lu, 8, 8, 2 * b, 1).unwrap();
        assert!(t2 >= 1.9 * t1, "t1 = {t1}, t2 = {t2}");
    }

    #[test]
    fn tiled_estimate_grows_with_problem_size() {
        let p = ModelParams::table_iv();
        let small = tiled_qr_cycles(&p, 128, 64, 56, 1);
        let large = tiled_qr_cycles(&p, 512, 256, 56, 1);
        assert!(large > 4.0 * small);
    }

    #[test]
    fn model_plan_never_picks_hybrid() {
        use regla_gpu_sim::MathMode;
        let (p, cfg) = setup();
        // A single huge QR chooses Hybrid in `choose`, but a Plan must be
        // device-executable, so the model planner picks something else.
        let key = PlanKey::new(Algorithm::Qr, 4096, 4096, 0, 1, 1, MathMode::Fast);
        let plan = model_plan(&p, &cfg, &key);
        assert_ne!(plan.approach, Approach::Hybrid);
    }

    #[test]
    fn model_plan_agrees_with_choose_on_batched_shapes() {
        use regla_gpu_sim::MathMode;
        let (p, cfg) = setup();
        let cases = [
            (Algorithm::Lu, 6, 6, 0, 65536, 1, Approach::PerThread),
            (Algorithm::Qr, 56, 56, 0, 8192, 1, Approach::PerBlock),
            (Algorithm::Qr, 240, 66, 0, 128, 2, Approach::Tiled),
        ];
        for (alg, m, n, rhs, batch, ew, want) in cases {
            let key = PlanKey::new(alg, m, n, rhs, ew, batch, MathMode::Fast);
            let plan = model_plan(&p, &cfg, &key);
            assert_eq!(plan.approach, want, "{alg:?} {m}x{n} x{batch}");
        }
    }

    #[test]
    fn plan_cycles_prices_the_feasible_space() {
        use regla_gpu_sim::MathMode;
        let (p, cfg) = setup();
        let key = PlanKey::new(Algorithm::Qr, 56, 56, 0, 1, 8192, MathMode::Fast);
        let pb64 = plan_cycles(&p, &cfg, &key, &Plan::new(Approach::PerBlock)).unwrap();
        let pb256 = plan_cycles(
            &p,
            &cfg,
            &key,
            &Plan::new(Approach::PerBlock).with_threads(256),
        )
        .unwrap();
        assert!(pb64 > 0.0 && pb256 > 0.0);
        assert_ne!(pb64, pb256, "the thread knob changes the estimate");
        // 56x56 is not register-resident per thread.
        assert!(plan_cycles(&p, &cfg, &key, &Plan::new(Approach::PerThread)).is_none());
        // Hybrid and 1D layouts are unpriceable by the model.
        assert!(plan_cycles(&p, &cfg, &key, &Plan::new(Approach::Hybrid)).is_none());
        let row = Plan::new(Approach::PerBlock).with_layout(Layout::RowCyclic);
        assert!(plan_cycles(&p, &cfg, &key, &row).is_none());
        // Tiled pricing responds to the panel-width knob.
        let kt = PlanKey::new(Algorithm::Qr, 240, 66, 0, 2, 128, MathMode::Fast);
        let t16 = plan_cycles(&p, &cfg, &kt, &Plan::new(Approach::Tiled)).unwrap();
        let t8 = plan_cycles(&p, &cfg, &kt, &Plan::new(Approach::Tiled).with_panel(8)).unwrap();
        assert!(t16 > 0.0 && t8 > 0.0 && t16 != t8);
    }
}
