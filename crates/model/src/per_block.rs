//! The analytic cost model for the one-problem-per-block approach
//! (Section V-D, Table VI).
//!
//! Costs follow the paper's accounting, refined with the two effects the
//! measurements expose:
//!
//! * **latency terms** — the implementation is in-order and latency-bound:
//!   dependent FLOPs cost γ each, dependent shared accesses cost α_sh plus
//!   the GF100 address computation, serial reductions walk √p partials,
//!   and every phase ends in an α_sync barrier;
//! * **issue terms** — the SM's issue ports are shared by all resident
//!   blocks (8 at 64 threads/block), so throughput-heavy phases (the
//!   rank-1 update, the matrix-vector multiply) are bounded by
//!   `resident × warp-issue-work` even when each block's critical path is
//!   short.
//!
//! Each operation costs `max(latency, resident * issue) + syncs * α_sync`.
//! Complex elements multiply chain depth and word traffic by two and the
//! FLOP issue work by four.

use crate::intensity::Algorithm;
use crate::params::ModelParams;
use crate::plan::BlockPlan;
use regla_gpu_sim::{occupancy, GpuConfig};

/// Per-panel cycle estimate for Householder QR, split into the three
/// operations of Figure 8.
#[derive(Clone, Copy, Debug)]
pub struct PanelEstimate {
    /// 1-based panel index (Figure 8's x-axis).
    pub panel: usize,
    /// Form the Householder vector: norm, reduce, scale, publish.
    pub form_hh: f64,
    /// Matrix-vector multiply (w = Aᴴ v) including its reductions.
    pub matvec: f64,
    /// Rank-1 update of the trailing matrix.
    pub rank1: f64,
}

impl PanelEstimate {
    pub fn total(&self) -> f64 {
        self.form_hh + self.matvec + self.rank1
    }
}

/// Default co-resident block count when the caller has no occupancy info:
/// the paper's 8 blocks/SM for 64-thread blocks, 2 for 256.
pub fn default_resident(threads: usize) -> usize {
    if threads <= 64 {
        8
    } else {
        2
    }
}

struct Costs<'a> {
    p: &'a ModelParams,
    /// Words per element (1 real, 2 complex).
    ew: f64,
    threads: usize,
    warps: f64,
    resident: f64,
    /// Sustained LD/ST issue interval (2 x derating).
    ldst: f64,
}

impl Costs<'_> {
    fn new<'a>(p: &'a ModelParams, plan: &BlockPlan, resident: usize) -> Costs<'a> {
        Costs {
            p,
            ew: plan.elem_words as f64,
            threads: plan.threads,
            warps: (plan.threads as f64 / p.warp_size as f64).max(1.0),
            resident: resident as f64,
            ldst: 2.342,
        }
    }

    /// `k` independent stores to shared memory: issue-bound plus drain.
    fn store_seq(&self, k: f64) -> f64 {
        self.ldst * k * self.ew + self.p.alpha_sh
    }

    /// `k` independent loads from shared memory with address arithmetic.
    fn load_seq(&self, k: f64) -> f64 {
        3.0 * k * self.ew + self.p.alpha_sh
    }

    /// Dependent chain of `k` multiply-adds (a running sum / column norm).
    fn chain(&self, k: f64) -> f64 {
        k * self.ew * self.p.gamma
    }

    /// `k` independent multiply-adds: issue plus one pipeline drain.
    fn indep(&self, k: f64) -> f64 {
        k * self.ew + self.p.gamma
    }

    /// Serial reduction over `r` partials held in shared memory (the
    /// paper's `(1 + √p)β + √p·γ`); each link is a dependent load + add.
    fn reduction(&self, r: f64) -> f64 {
        r * (self.p.alpha_sh * self.ew.min(2.0) + self.p.gamma)
    }

    fn sync(&self) -> f64 {
        self.p.alpha_sync(self.threads)
    }

    /// One operation: latency vs resident-shared issue, plus barriers.
    fn op(&self, latency: f64, warp_issue: f64, syncs: f64) -> f64 {
        let issue = self.resident * self.warps * warp_issue;
        latency.max(issue) + syncs * self.sync()
    }

    /// Issue cost of `fp` FLOP-equivalent and `ld` LD/ST warp instructions
    /// (dual issue folds the smaller of the two).
    fn issue_mix(&self, fp: f64, ld: f64) -> f64 {
        (fp * self.ew.powi(2)).max(ld * self.ldst * self.ew)
    }
}

/// Per-panel QR estimates (the model side of Figure 8).
pub fn qr_panels(p: &ModelParams, plan: &BlockPlan, resident: usize) -> Vec<PanelEstimate> {
    let c = Costs::new(p, plan, resident);
    let rdim = plan.rdim;
    let rw = rdim as f64; // reduction width of the 2D layout
    let mut out = Vec::with_capacity(plan.panels());
    for k in 0..plan.panels() {
        let cols_in_panel = rdim.min(plan.n - k * rdim) as f64;
        let n_t = (plan.hreg.saturating_sub(k)).max(1) as f64; // rows/thread
        let w_t = (plan.wreg.saturating_sub(k)).max(1) as f64; // cols/thread

        // ---- Form Householder vector (Table VI "Column" rows) ----------
        // Phase 1: partial column norms (dependent abs² chain) + publish.
        let p1 = c.op(c.chain(n_t) + c.store_seq(1.0), c.issue_mix(2.0 * n_t, 2.0), 1.0);
        // Phase 2: the diagonal owner reduces and forms beta/tau/inv
        // (sqrt + 2 divisions + the writes); single-thread, latency-bound.
        let p2 = c.op(
            c.reduction(rw)
                + p.gamma_sqrt
                + 2.0 * p.gamma_div
                + 2.0 * p.gamma
                + 2.0 * p.beta_chain() * c.ew,
            0.0,
            1.0,
        );
        // Phase 3: scale the column and publish it (Listing 6).
        let p3 = c.op(
            c.indep(n_t) + c.store_seq(n_t),
            c.issue_mix(n_t, 2.0 * n_t),
            1.0,
        );
        let form_hh = p1 + p2 + p3;

        // ---- Matrix-vector multiply (Table VI "Trailing Matrix") -------
        // Phase 4: read the Householder vector, per owned column an N-deep
        // dependent accumulation chain, publish partials.
        let p4 = c.op(
            c.load_seq(n_t) + c.chain(n_t * w_t) + c.store_seq(w_t),
            c.issue_mix(n_t * w_t, n_t + 2.0 * w_t),
            1.0,
        );
        // Phase 5: per-column reductions, round-robin over all threads.
        let p5 = c.op(
            c.reduction(rw) + c.store_seq(1.0),
            c.issue_mix(1.0, rw * c.ew),
            1.0,
        );
        let matvec = p4 + p5;

        // ---- Rank-1 update ----------------------------------------------
        let rank1 = c.op(
            c.load_seq(n_t + w_t) + c.indep(n_t * w_t) * c.ew,
            c.issue_mix(n_t * w_t, n_t + w_t),
            1.0,
        );

        out.push(PanelEstimate {
            panel: k + 1,
            form_hh: form_hh * cols_in_panel,
            matvec: matvec * cols_in_panel,
            rank1: rank1 * cols_in_panel,
        });
    }
    out
}

/// Per-column LU cost split into the kernel's two labeled phases:
/// `(column, rank-1)` (Table VI "LU Estimates").
fn lu_column_parts(c: &Costs, p: &ModelParams, n_t: f64, w_t: f64) -> (f64, f64) {
    // Column: the diagonal thread computes and publishes 1/a_kk; everyone
    // scales the column and writes l & u to shared memory.
    let p1 = c.op(p.gamma_div + 2.0 * p.beta_chain() * c.ew, 0.0, 1.0);
    let p2 = c.op(
        c.indep(n_t) + c.store_seq(2.0 * n_t),
        c.issue_mix(n_t, 4.0 * n_t),
        1.0,
    );
    // Trailing: read l & u back, rank-1 update of the Schur complement.
    let p3 = c.op(
        c.load_seq(n_t + w_t) + c.indep(n_t * w_t) * c.ew,
        c.issue_mix(n_t * w_t, n_t + w_t),
        1.0,
    );
    (p1 + p2, p3)
}

/// One named phase's predicted cycles. The `label` matches the kernel's
/// `phase_label` exactly (e.g. `"panel 3: rank-1"`), so a simulated
/// launch trace can be joined against the model phase by phase.
#[derive(Clone, Debug)]
pub struct PhaseEstimate {
    pub label: String,
    pub cycles: f64,
}

/// Predicted cycles of every labeled compute phase of one block, in kernel
/// order. Summing the entries gives [`block_compute_cycles`]; the labels
/// match the per-block kernels' `phase_label` calls so per-phase
/// predicted-vs-simulated discrepancy can be reported (DRAM-bound `load` /
/// `store` phases are not included here — they depend on the wave size,
/// see [`BlockPrediction::dram_cycles_per_wave`]).
pub fn phase_estimates(
    p: &ModelParams,
    plan: &BlockPlan,
    alg: Algorithm,
    resident: usize,
) -> Vec<PhaseEstimate> {
    let c = Costs::new(p, plan, resident);
    let rdim = plan.rdim;
    let mut out = Vec::new();
    let panel_geometry = |k: usize| {
        let cols = rdim.min(plan.n - k * rdim) as f64;
        let n_t = (plan.hreg.saturating_sub(k)).max(1) as f64;
        let w_t = (plan.wreg.saturating_sub(k)).max(1) as f64;
        (cols, n_t, w_t)
    };
    match alg {
        Algorithm::Qr => {
            for e in qr_panels(p, plan, resident) {
                out.push(PhaseEstimate {
                    label: format!("panel {}: form-hh", e.panel),
                    cycles: e.form_hh,
                });
                out.push(PhaseEstimate {
                    label: format!("panel {}: matvec", e.panel),
                    cycles: e.matvec,
                });
                out.push(PhaseEstimate {
                    label: format!("panel {}: rank-1", e.panel),
                    cycles: e.rank1,
                });
            }
        }
        Algorithm::Lu => {
            for k in 0..plan.panels() {
                let (cols, n_t, w_t) = panel_geometry(k);
                let (column, rank1) = lu_column_parts(&c, p, n_t, w_t);
                out.push(PhaseEstimate {
                    label: format!("panel {}: column", k + 1),
                    cycles: cols * column,
                });
                out.push(PhaseEstimate {
                    label: format!("panel {}: rank-1", k + 1),
                    cycles: cols * rank1,
                });
            }
        }
        Algorithm::GaussJordan => {
            for k in 0..plan.panels() {
                let (cols, _, w_t) = panel_geometry(k);
                let n_t = plan.hreg.max(1) as f64;
                let (column, rank1) = lu_column_parts(&c, p, n_t, w_t);
                out.push(PhaseEstimate {
                    label: format!("panel {}: column", k + 1),
                    cycles: cols * column,
                });
                out.push(PhaseEstimate {
                    label: format!("panel {}: rank-1", k + 1),
                    cycles: cols * rank1,
                });
            }
        }
        Algorithm::Cholesky => {
            // Half of an LU step (lower triangle only) plus the pivot sqrt.
            for k in 0..plan.panels() {
                let (cols, n_t, w_t) = panel_geometry(k);
                let (column, rank1) = lu_column_parts(&c, p, n_t, w_t);
                out.push(PhaseEstimate {
                    label: format!("panel {}: pivot", k + 1),
                    cycles: cols * (0.5 * column + p.gamma_sqrt),
                });
                out.push(PhaseEstimate {
                    label: format!("panel {}: syrk", k + 1),
                    cycles: cols * 0.5 * rank1,
                });
            }
        }
        Algorithm::QrSolve | Algorithm::LeastSquares => {
            out = phase_estimates(p, plan, Algorithm::Qr, resident);
            let back: f64 = (0..plan.n)
                .map(|_| {
                    p.gamma_div
                        + 4.0 * p.beta_chain() * c.ew
                        + c.indep(1.0)
                        + 4.0 * c.sync()
                })
                .sum();
            out.push(PhaseEstimate {
                label: String::from("back-substitute"),
                cycles: back,
            });
        }
    }
    out
}

/// Total on-chip compute cycles for one block (no DRAM), per algorithm:
/// the sum of every labeled phase in [`phase_estimates`].
pub fn block_compute_cycles(
    p: &ModelParams,
    plan: &BlockPlan,
    alg: Algorithm,
    resident: usize,
) -> f64 {
    phase_estimates(p, plan, alg, resident)
        .iter()
        .map(|e| e.cycles)
        .sum()
}

/// A complete one-problem-per-block performance prediction.
#[derive(Clone, Debug)]
pub struct BlockPrediction {
    pub plan: BlockPlan,
    pub alg: Algorithm,
    pub batch: usize,
    /// On-chip compute cycles per block.
    pub compute_cycles: f64,
    /// DRAM cycles to stream one wave's matrices in and out.
    pub dram_cycles_per_wave: f64,
    /// Blocks resident on the chip at once (occupancy x SMs).
    pub blocks_per_wave: usize,
    pub total_cycles: f64,
    pub time_s: f64,
    pub gflops: f64,
}

/// Predict the performance of a batch (the dashed lines of Figure 9).
#[allow(clippy::too_many_arguments)]
pub fn predict_block(
    p: &ModelParams,
    cfg: &GpuConfig,
    alg: Algorithm,
    m: usize,
    n: usize,
    rhs_cols: usize,
    elem_words: usize,
    batch: usize,
) -> BlockPrediction {
    let plan = crate::plan::block_plan(m, n, rhs_cols, elem_words);
    predict_block_plan(p, cfg, alg, plan, batch)
}

/// [`predict_block`] for an explicit [`BlockPlan`] — the entry point the
/// tuner prices forced-thread-count candidates through.
pub fn predict_block_plan(
    p: &ModelParams,
    cfg: &GpuConfig,
    alg: Algorithm,
    plan: crate::plan::BlockPlan,
    batch: usize,
) -> BlockPrediction {
    let (m, n, elem_words) = (plan.m, plan.n, plan.elem_words);
    let occ = occupancy(
        cfg,
        plan.threads,
        plan.regs_per_thread.min(cfg.max_regs_per_thread),
        plan.shared_words * 4,
    );
    let blocks_per_wave = (occ.blocks_per_sm * cfg.num_sms).max(1);

    let compute = block_compute_cycles(p, &plan, alg, occ.blocks_per_sm);
    let bytes_per_block = 2.0 * (plan.m * plan.cols() * elem_words * 4) as f64;
    let wave_blocks = blocks_per_wave.min(batch) as f64;
    let dram_per_wave = bytes_per_block * wave_blocks / p.glb_bytes_per_cycle();

    let wave_cycles = compute + dram_per_wave;
    let waves = (batch as f64 / blocks_per_wave as f64).ceil();
    let total_cycles = wave_cycles * waves;
    let time_s = p.cycles_to_secs(total_cycles);
    let flops = match elem_words {
        2 => alg.flops_complex(m, n),
        _ => alg.flops(m, n),
    } * batch as f64;
    BlockPrediction {
        plan,
        alg,
        batch,
        compute_cycles: compute,
        dram_cycles_per_wave: dram_per_wave,
        blocks_per_wave,
        total_cycles,
        time_s,
        gflops: flops / time_s / 1e9,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::block_plan;

    fn params() -> ModelParams {
        ModelParams::table_iv()
    }

    #[test]
    fn qr_56_compute_is_in_the_paper_range() {
        // Table V: ~150k cycles of compute for a 56x56 single-precision QR.
        let plan = block_plan(56, 56, 0, 1);
        let cyc = block_compute_cycles(&params(), &plan, Algorithm::Qr, 8);
        assert!(
            (100_000.0..210_000.0).contains(&cyc),
            "QR 56x56 model = {cyc} cycles, paper measured ~150k"
        );
    }

    #[test]
    fn lu_is_cheaper_than_qr() {
        let plan = block_plan(56, 56, 0, 1);
        let lu = block_compute_cycles(&params(), &plan, Algorithm::Lu, 8);
        let qr = block_compute_cycles(&params(), &plan, Algorithm::Qr, 8);
        assert!(lu < 0.65 * qr, "LU {lu} vs QR {qr}");
    }

    #[test]
    fn panel_costs_decrease_monotonically() {
        // Figure 8: each panel is cheaper than the previous one.
        let plan = block_plan(56, 56, 0, 1);
        let panels = qr_panels(&params(), &plan, 8);
        assert_eq!(panels.len(), 7);
        for w in panels.windows(2) {
            assert!(w[1].total() < w[0].total());
        }
    }

    #[test]
    fn prediction_peaks_before_the_thread_switch() {
        // Figure 9's shape: GFLOPS at 72 (last 64-thread size) exceeds 80
        // (first 256-thread size, occupancy drop).
        let p = params();
        let cfg = GpuConfig::quadro_6000();
        let g72 = predict_block(&p, &cfg, Algorithm::Qr, 72, 72, 0, 1, 8000).gflops;
        let g80 = predict_block(&p, &cfg, Algorithm::Qr, 80, 80, 0, 1, 8000).gflops;
        assert!(g72 > g80, "expected drop at 80: {g72} vs {g80}");
    }

    #[test]
    fn prediction_lands_near_200_gflops_at_56() {
        // Figure 9: measured and predicted QR at n = 56 sit near 200 GFLOPS.
        let p = params();
        let cfg = GpuConfig::quadro_6000();
        let g = predict_block(&p, &cfg, Algorithm::Qr, 56, 56, 0, 1, 8000).gflops;
        assert!((120.0..280.0).contains(&g), "QR@56 predicted {g} GFLOPS");
    }

    #[test]
    fn small_blocks_are_slow() {
        // The per-block approach wastes parallelism on tiny matrices.
        let p = params();
        let cfg = GpuConfig::quadro_6000();
        let g8 = predict_block(&p, &cfg, Algorithm::Qr, 8, 8, 0, 1, 8000).gflops;
        let g56 = predict_block(&p, &cfg, Algorithm::Qr, 56, 56, 0, 1, 8000).gflops;
        assert!(g8 < 0.25 * g56);
    }

    #[test]
    fn complex_prediction_scales_flops_by_four() {
        let p = params();
        let cfg = GpuConfig::quadro_6000();
        let re = predict_block(&p, &cfg, Algorithm::Qr, 48, 48, 0, 1, 1000);
        let cx = predict_block(&p, &cfg, Algorithm::Qr, 48, 48, 0, 2, 1000);
        // Complex does 4x the FLOPs in ~2x the cycles per chain step: the
        // reported GFLOP/s must not be lower than the real-valued run.
        assert!(cx.gflops > re.gflops);
    }
}
