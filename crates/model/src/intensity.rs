//! FLOP counts and arithmetic intensity (Section III and IV).

/// Which factorization/solver is being modelled.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Algorithm {
    /// Gauss-Jordan elimination solve of `[A|b]` (n^3 FLOPs).
    GaussJordan,
    /// LU factorization without pivoting (2/3 n^3 FLOPs).
    Lu,
    /// Householder QR factorization (2mn^2 - 2/3 n^3 FLOPs).
    Qr,
    /// Least squares via QR of `[A|b]` plus triangular solve.
    LeastSquares,
    /// Linear-system solve: QR of `[A|b]` then elimination of R.
    QrSolve,
    /// Cholesky factorization of an SPD matrix (extension; n^3/3 FLOPs).
    Cholesky,
}

impl Algorithm {
    /// Every modelled algorithm, for exhaustive tuning sweeps.
    pub const ALL: [Algorithm; 6] = [
        Algorithm::GaussJordan,
        Algorithm::Lu,
        Algorithm::Qr,
        Algorithm::LeastSquares,
        Algorithm::QrSolve,
        Algorithm::Cholesky,
    ];

    /// Short stable token used by the decision-table text format.
    pub fn code(self) -> &'static str {
        match self {
            Algorithm::GaussJordan => "gj",
            Algorithm::Lu => "lu",
            Algorithm::Qr => "qr",
            Algorithm::LeastSquares => "ls",
            Algorithm::QrSolve => "qrs",
            Algorithm::Cholesky => "chol",
        }
    }

    /// Inverse of [`Algorithm::code`].
    pub fn from_code(s: &str) -> Option<Algorithm> {
        Algorithm::ALL.into_iter().find(|a| a.code() == s)
    }

    pub fn name(self) -> &'static str {
        match self {
            Algorithm::GaussJordan => "Gauss-Jordan",
            Algorithm::Lu => "LU (no pivoting)",
            Algorithm::Qr => "Householder QR",
            Algorithm::LeastSquares => "Least squares (QR)",
            Algorithm::QrSolve => "Linear solve (QR)",
            Algorithm::Cholesky => "Cholesky",
        }
    }

    /// Real FLOPs for an `m x n` problem (the convention the paper uses to
    /// report GFLOP/s; for complex data multiply by 4).
    pub fn flops(self, m: usize, n: usize) -> f64 {
        let m = m as f64;
        let nn = n as f64;
        match self {
            Algorithm::GaussJordan => nn * nn * nn,
            Algorithm::Lu => 2.0 / 3.0 * nn * nn * nn,
            Algorithm::Qr => 2.0 * m * nn * nn - 2.0 / 3.0 * nn * nn * nn,
            // QR of [A|b] applies the reflectors to one extra column
            // (+2mn), then an n^2 triangular solve.
            Algorithm::LeastSquares | Algorithm::QrSolve => {
                2.0 * m * nn * nn - 2.0 / 3.0 * nn * nn * nn + 2.0 * m * nn + nn * nn
            }
            Algorithm::Cholesky => nn * nn * nn / 3.0,
        }
    }

    /// FLOPs for a complex `m x n` problem in real-FLOP units (Section VII
    /// uses 8mn^2 - 8/3 n^3 for complex QR: 4x the real count).
    pub fn flops_complex(self, m: usize, n: usize) -> f64 {
        4.0 * self.flops(m, n)
    }
}

/// Bytes moved to solve one problem in place: the matrix (plus appended
/// right-hand side for the solvers) is read and written once.
pub fn bytes_moved(m: usize, n: usize, rhs_cols: usize, elem_bytes: usize) -> f64 {
    (2 * m * (n + rhs_cols) * elem_bytes) as f64
}

/// Arithmetic intensity in FLOPs/byte (Section IV's 7x7 QR example:
/// 457 FLOPs over 392 bytes = 1.17).
pub fn arithmetic_intensity(alg: Algorithm, m: usize, n: usize, elem_bytes: usize) -> f64 {
    let rhs = match alg {
        Algorithm::GaussJordan | Algorithm::LeastSquares | Algorithm::QrSolve => 1,
        _ => 0,
    };
    alg.flops(m, n) / bytes_moved(m, n, rhs, elem_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qr_7x7_has_457_flops() {
        // Section IV's worked example.
        assert!((Algorithm::Qr.flops(7, 7) - 457.0).abs() < 0.5);
    }

    #[test]
    fn qr_7x7_intensity_is_1_17() {
        let ai = Algorithm::Qr.flops(7, 7) / bytes_moved(7, 7, 0, 4);
        assert!((ai - 1.17).abs() < 0.01);
    }

    #[test]
    fn lu_is_a_third_of_gj() {
        let n = 24;
        let lu = Algorithm::Lu.flops(n, n);
        let gj = Algorithm::GaussJordan.flops(n, n);
        assert!((lu / gj - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn complex_counts_are_4x_real() {
        let r = Algorithm::Qr.flops(240, 66);
        let c = Algorithm::Qr.flops_complex(240, 66);
        assert_eq!(c, 4.0 * r);
        // Section VII: 8mn^2 - 8/3 n^3.
        let direct = 8.0 * 240.0 * 66.0f64.powi(2) - 8.0 / 3.0 * 66.0f64.powi(3);
        assert!((c - direct).abs() < 1.0);
    }

    #[test]
    fn intensity_grows_with_problem_size() {
        let a = arithmetic_intensity(Algorithm::Qr, 8, 8, 4);
        let b = arithmetic_intensity(Algorithm::Qr, 56, 56, 4);
        let c = arithmetic_intensity(Algorithm::Qr, 112, 112, 4);
        assert!(a < b && b < c);
    }
}
