//! Block execution plans: how a problem maps onto threads and registers —
//! and the dispatch-[`Plan`] API: the single decision object every layer
//! (core, fleet, serve, bench, tune) prices and dispatches through.
//!
//! The kernels in `regla-core` and the analytic model must agree on the
//! mapping (thread count, 2D-cyclic tile shape, register usage), so it is
//! computed here once. The rules follow Section V: threads are laid out in
//! a √p x √p grid, 64 threads are used while the per-thread sub-matrix fits
//! the register budget, and the kernel switches to 256 threads at n = 80
//! (the occupancy drop visible in Figure 9).
//!
//! On top of the raw mapping rules this module defines:
//!
//! * [`Plan`] — one concrete dispatch decision (approach, layout, thread
//!   override, tiled panel width, pipeline chunk/stream hints);
//! * [`PlanKey`] — the problem coordinates a decision is indexed by
//!   (algorithm, shape, rhs width, element width, batch bucket, math mode);
//! * [`Planner`] — how a decision is produced: the paper's hand rules
//!   (`Heuristic`), the predictive model ranking the design space per
//!   dispatch (`Model`), or a tuned [`DecisionTable`] (`Table`);
//! * [`DecisionTable`] — a serializable key → plan map emitted by
//!   `regla-tune`, with derived thresholds replacing the hard-coded
//!   64/256 rule.

use crate::params::ModelParams;
use regla_gpu_sim::{GpuConfig, MathMode};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Register overhead per thread beyond the matrix tile (indices, scale
/// factors, accumulators) — roughly what nvcc used for the paper's kernels.
pub const REG_OVERHEAD: usize = 14;

/// Per-thread sub-matrix words above which a 64-thread block switches to
/// 256 threads (n = 72 -> 9x9 = 81 words still runs with 64 threads; n = 80
/// switches, as in the paper).
pub const TILE_WORDS_64T_MAX: usize = 81;

/// Largest declared register count per thread for which the per-block
/// approach is still dispatched automatically.
///
/// The GF100 register file allows 64 registers per thread; beyond that nvcc
/// spills to local memory. The paper's Figure 9 shows the per-block kernels
/// tolerating moderate spill (the dip at n = 64, where an 8x8 tile plus
/// [`REG_OVERHEAD`] just exceeds the budget, still beats the alternatives),
/// but past ~110 declared registers the spill traffic overwhelms the
/// register-resident advantage and the tiled approach wins. This is the
/// dispatch ceiling, not an architectural limit.
pub const PER_BLOCK_MAX_DECLARED_REGS: usize = 110;

/// The three classic distributed register layouts of Figure 6 (Section
/// V-A). The per-block kernels in `regla-core` are generic over a layout
/// map built from this tag; the model and the decision table index plans
/// by it. Lives here (rather than in `regla-core`) so a [`Plan`] is
/// self-contained.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Layout {
    /// Elements (i, j) are owned by thread (i mod √p, j mod √p).
    #[default]
    TwoDCyclic,
    /// Thread t owns the rows {i : i ≡ t (mod p)}.
    RowCyclic,
    /// Thread t owns the columns {j : j ≡ t (mod p)}.
    ColCyclic,
}

impl Layout {
    pub const ALL: [Layout; 3] = [Layout::TwoDCyclic, Layout::RowCyclic, Layout::ColCyclic];

    pub fn name(self) -> &'static str {
        match self {
            Layout::TwoDCyclic => "2D cyclic",
            Layout::RowCyclic => "1D row cyclic",
            Layout::ColCyclic => "1D column cyclic",
        }
    }

    /// Short stable token used by the decision-table text format.
    pub fn code(self) -> &'static str {
        match self {
            Layout::TwoDCyclic => "2d",
            Layout::RowCyclic => "row",
            Layout::ColCyclic => "col",
        }
    }

    /// Inverse of [`Layout::code`].
    pub fn from_code(s: &str) -> Option<Layout> {
        Layout::ALL.into_iter().find(|l| l.code() == s)
    }
}

/// The paper's 64/256 thread rule applied directly to a full (possibly
/// augmented, possibly wider-than-tall) `rows x cols` shape: 64 threads
/// while the per-thread 2D-cyclic tile fits [`TILE_WORDS_64T_MAX`] words,
/// 256 beyond. This is the hand-entered threshold a tuned
/// [`DecisionTable`] replaces with a derived one.
pub fn block_threads(rows: usize, cols: usize, elem_words: usize) -> usize {
    let tile64 = rows.div_ceil(8) * cols.div_ceil(8) * elem_words;
    if tile64 <= TILE_WORDS_64T_MAX {
        64
    } else {
        256
    }
}

/// How one batched problem executes on the device.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Approach {
    /// One problem per thread, matrix in that thread's registers (§IV).
    PerThread,
    /// One problem per thread block, 2D-cyclic register layout (§V).
    PerBlock,
    /// Sequential tiled factorization inside one block (§VII, PLASMA-like).
    Tiled,
    /// Hybrid CPU+GPU blocked library (§VI-A, MAGMA/CULA style).
    Hybrid,
}

impl Approach {
    pub const ALL: [Approach; 4] = [
        Approach::PerThread,
        Approach::PerBlock,
        Approach::Tiled,
        Approach::Hybrid,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Approach::PerThread => "one-problem-per-thread",
            Approach::PerBlock => "one-problem-per-block",
            Approach::Tiled => "tiled-within-block",
            Approach::Hybrid => "hybrid CPU+GPU blocked",
        }
    }

    /// Short stable token used by the decision-table text format.
    pub fn code(self) -> &'static str {
        match self {
            Approach::PerThread => "pt",
            Approach::PerBlock => "pb",
            Approach::Tiled => "tiled",
            Approach::Hybrid => "hybrid",
        }
    }

    /// Inverse of [`Approach::code`].
    pub fn from_code(s: &str) -> Option<Approach> {
        Approach::ALL.into_iter().find(|a| a.code() == s)
    }
}

/// Mapping of one `m x (n + rhs_cols)` problem onto a thread block.
#[derive(Clone, Copy, Debug)]
pub struct BlockPlan {
    pub m: usize,
    pub n: usize,
    pub rhs_cols: usize,
    /// Words per element (1 = f32, 2 = complex32).
    pub elem_words: usize,
    pub threads: usize,
    /// √p: the thread grid is `rdim x rdim`.
    pub rdim: usize,
    /// Per-thread register tile height (rows of the distributed matrix).
    pub hreg: usize,
    /// Per-thread register tile width.
    pub wreg: usize,
    /// Declared registers per thread (tile + overhead); beyond the
    /// architectural 64 the excess spills.
    pub regs_per_thread: usize,
    /// Shared memory words the kernel needs (column + row vectors,
    /// reduction scratch, scale factor and flags).
    pub shared_words: usize,
}

impl BlockPlan {
    /// Total columns including appended right-hand sides.
    pub fn cols(&self) -> usize {
        self.n + self.rhs_cols
    }

    /// Number of panels the factorization walks through (Figure 8's x-axis:
    /// 7 panels for a 56x56 matrix on 64 threads).
    pub fn panels(&self) -> usize {
        self.n.div_ceil(self.rdim)
    }

    /// Whether the tile spills registers.
    pub fn spills(&self) -> bool {
        self.regs_per_thread > 64
    }
}

/// Plan a one-problem-per-block execution with the paper's automatic
/// thread rule ([`block_threads`]).
pub fn block_plan(m: usize, n: usize, rhs_cols: usize, elem_words: usize) -> BlockPlan {
    block_plan_with_threads(
        m,
        n,
        rhs_cols,
        elem_words,
        block_threads(m, n + rhs_cols, elem_words),
    )
}

/// Plan a one-problem-per-block execution with an explicit 2D-cyclic
/// thread count (a perfect square) — the knob a tuned [`Plan`] turns.
pub fn block_plan_with_threads(
    m: usize,
    n: usize,
    rhs_cols: usize,
    elem_words: usize,
    threads: usize,
) -> BlockPlan {
    assert!(m >= n, "per-block kernels require m >= n (got {m} x {n})");
    let cols = n + rhs_cols;
    let rdim = threads.isqrt();
    assert!(
        rdim * rdim == threads && threads > 0,
        "per-block thread count must be a positive perfect square, got {threads}"
    );
    let hreg = m.div_ceil(rdim);
    let wreg = cols.div_ceil(rdim);
    let regs_per_thread = hreg * wreg * elem_words + REG_OVERHEAD;
    // Shared scratch: a column (m), a row (cols), per-thread reduction
    // partials (threads), and a few control words.
    let shared_words = (m + cols + threads + 16) * elem_words;
    BlockPlan {
        m,
        n,
        rhs_cols,
        elem_words,
        threads,
        rdim,
        hreg,
        wreg,
        regs_per_thread,
        shared_words,
    }
}

/// Mapping of one problem onto a single thread (§IV).
#[derive(Clone, Copy, Debug)]
pub struct ThreadPlan {
    pub n: usize,
    pub rhs_cols: usize,
    pub elem_words: usize,
    pub threads_per_block: usize,
    pub regs_per_thread: usize,
}

/// Plan a one-problem-per-thread execution of `n x (n + rhs)` problems.
pub fn thread_plan(n: usize, rhs_cols: usize, elem_words: usize) -> ThreadPlan {
    let regs = n * (n + rhs_cols) * elem_words + 12;
    ThreadPlan {
        n,
        rhs_cols,
        elem_words,
        threads_per_block: 64,
        regs_per_thread: regs,
    }
}

impl ThreadPlan {
    /// Whether the whole matrix fits the 64-register budget (n < 8 for f32,
    /// the boundary in Figure 4).
    pub fn fits_registers(&self) -> bool {
        self.regs_per_thread <= 64
    }
}

/// Default panel width for the sequential tiled path (the paper's choice).
pub const DEFAULT_PANEL: usize = 16;

/// One concrete dispatch decision: everything the launch layer needs to
/// map a batch onto the device. Produced by a [`Planner`] (or supplied
/// verbatim by the caller as an override); consumed by `regla-core`'s
/// dispatch, priced by `regla-tune`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub struct Plan {
    /// The execution mapping (per-thread / per-block / tiled).
    pub approach: Approach,
    /// Register-file data layout for the per-block kernels. The 1D
    /// layouts always run with the paper's 64 threads (Figure 7);
    /// `threads` only applies to the 2D-cyclic layout.
    pub layout: Layout,
    /// Forced per-block thread count (must be a perfect square for the 2D
    /// layout); `None` defers to the 64/256 rule — or to whatever derived
    /// threshold the planner baked into this plan.
    pub threads: Option<usize>,
    /// Panel width for the tiled path.
    pub panel: usize,
    /// Advisory pipeline hint: chunks per batch for chunked/pipelined
    /// drivers (1 = a single synchronous dispatch).
    pub chunks: usize,
    /// Advisory pipeline hint: streams to round-robin chunks over.
    pub streams: usize,
}

impl Plan {
    /// A plan for `approach` with the paper's defaults everywhere else.
    pub fn new(approach: Approach) -> Self {
        Plan {
            approach,
            layout: Layout::TwoDCyclic,
            threads: None,
            panel: DEFAULT_PANEL,
            chunks: 1,
            streams: 1,
        }
    }

    pub fn with_layout(mut self, l: Layout) -> Self {
        self.layout = l;
        self
    }

    pub fn with_threads(mut self, t: impl Into<Option<usize>>) -> Self {
        self.threads = t.into();
        self
    }

    pub fn with_panel(mut self, panel: usize) -> Self {
        self.panel = panel;
        self
    }

    pub fn with_pipeline(mut self, chunks: usize, streams: usize) -> Self {
        self.chunks = chunks;
        self.streams = streams;
        self
    }

    /// Thread count of a per-block launch of the full `rows x cols`
    /// (augmented) shape under this plan: the forced count when set, the
    /// 64/256 rule otherwise; the 1D layouts pin the paper's 64 threads.
    pub fn block_threads_for(&self, rows: usize, cols: usize, elem_words: usize) -> usize {
        match self.layout {
            Layout::TwoDCyclic => self
                .threads
                .unwrap_or_else(|| block_threads(rows, cols, elem_words)),
            _ => 64,
        }
    }
}

/// The problem coordinates a dispatch decision is indexed by. Batch sizes
/// are bucketed by floor-log2 so a table tuned at one batch size serves
/// the whole occupancy regime around it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub struct PlanKey {
    pub alg: crate::intensity::Algorithm,
    pub m: usize,
    pub n: usize,
    /// Carried right-hand-side columns (not factored).
    pub rhs: usize,
    /// Words per element (1 = f32, 2 = complex32).
    pub elem_words: usize,
    /// `floor(log2(batch))`; 0 for a single problem.
    pub batch_log2: u8,
    pub math: MathMode,
}

impl PlanKey {
    pub fn new(
        alg: crate::intensity::Algorithm,
        m: usize,
        n: usize,
        rhs: usize,
        elem_words: usize,
        batch: usize,
        math: MathMode,
    ) -> Self {
        PlanKey {
            alg,
            m,
            n,
            rhs,
            elem_words,
            batch_log2: (usize::BITS - 1 - batch.max(1).leading_zeros()) as u8,
            math,
        }
    }

    /// A representative batch size for this key's bucket.
    pub fn batch(&self) -> usize {
        1usize << self.batch_log2.min(62)
    }
}

/// The paper's hand rules as a plan: per-thread for square
/// register-resident sizes, per-block while the declared registers stay
/// under the spill ceiling, tiled beyond — with the default 2D-cyclic
/// layout and panel width. This is bit-for-bit the dispatch the repo
/// shipped before the planner existed.
pub fn heuristic_plan(key: &PlanKey) -> Plan {
    let PlanKey {
        m, n, rhs, elem_words, ..
    } = *key;
    let approach = if m == n && thread_plan(n, rhs, elem_words).fits_registers() {
        Approach::PerThread
    } else if m >= n
        && block_plan(m, n, rhs, elem_words).regs_per_thread <= PER_BLOCK_MAX_DECLARED_REGS
    {
        Approach::PerBlock
    } else {
        Approach::Tiled
    };
    Plan::new(approach)
}

/// One tuned decision: the plan plus the cycle estimates that justified
/// it (model-predicted, and fast-path-simulated when the tuner validated
/// the candidate).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TableEntry {
    pub plan: Plan,
    /// Model-predicted cycles for the key's representative batch.
    pub predicted_cycles: f64,
    /// Simulated cycles from the tuner's validation probe (`None` when
    /// the entry was ranked by the model alone).
    pub simulated_cycles: Option<f64>,
}

/// Why a decision-table text document failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TableParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    pub msg: String,
}

impl std::fmt::Display for TableParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "decision table line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for TableParseError {}

/// A serializable [`PlanKey`] → [`TableEntry`] map: the output of
/// `regla-tune`, consulted at dispatch time by `Planner::Table`.
///
/// The text format is line-oriented and dependency-free (the workspace
/// has no serde): a `regla-decision-table v1` header, a `device` line,
/// then one whitespace-separated `entry` line per decision. Round-trips
/// bit-exactly: cycle estimates are stored as IEEE-754 bit patterns.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DecisionTable {
    /// Device config name the table was tuned for.
    pub device: String,
    entries: BTreeMap<PlanKey, TableEntry>,
}

impl DecisionTable {
    pub fn new(device: impl Into<String>) -> Self {
        DecisionTable {
            device: device.into(),
            entries: BTreeMap::new(),
        }
    }

    pub fn insert(&mut self, key: PlanKey, entry: TableEntry) {
        self.entries.insert(key, entry);
    }

    /// The tuned entry for `key`, if the table has one (exact key match —
    /// batch sizes were already bucketed by [`PlanKey::new`]).
    pub fn lookup(&self, key: &PlanKey) -> Option<&TableEntry> {
        self.entries.get(key)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&PlanKey, &TableEntry)> {
        self.entries.iter()
    }

    /// Render the table as its text document.
    pub fn to_text(&self) -> String {
        let mut s = String::from("regla-decision-table v1\n");
        s.push_str(&format!("device {}\n", self.device));
        for (k, e) in &self.entries {
            let math = match k.math {
                MathMode::Fast => "fast",
                MathMode::Precise => "precise",
            };
            let threads = e
                .plan
                .threads
                .map_or_else(|| "-".into(), |t| t.to_string());
            let sim = e
                .simulated_cycles
                .map_or_else(|| "-".into(), |c| format!("{:016x}", c.to_bits()));
            s.push_str(&format!(
                "entry {} {} {} {} {} {} {} {} {} {} {} {} {} {:016x} {}\n",
                k.alg.code(),
                k.m,
                k.n,
                k.rhs,
                k.elem_words,
                k.batch_log2,
                math,
                e.plan.approach.code(),
                e.plan.layout.code(),
                threads,
                e.plan.panel,
                e.plan.chunks,
                e.plan.streams,
                e.predicted_cycles.to_bits(),
                sim,
            ));
        }
        s
    }

    /// Parse a text document produced by [`DecisionTable::to_text`].
    pub fn from_text(text: &str) -> Result<Self, TableParseError> {
        let err = |line: usize, msg: &str| TableParseError {
            line,
            msg: msg.into(),
        };
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, l)) if l.trim() == "regla-decision-table v1" => {}
            _ => return Err(err(1, "missing `regla-decision-table v1` header")),
        }
        let device = match lines.next() {
            Some((_, l)) if l.starts_with("device ") => l["device ".len()..].trim().to_string(),
            _ => return Err(err(2, "missing `device <name>` line")),
        };
        let mut table = DecisionTable::new(device);
        for (i, line) in lines {
            let ln = i + 1;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let f: Vec<&str> = line.split_whitespace().collect();
            if f.len() != 16 || f[0] != "entry" {
                return Err(err(ln, "expected `entry` with 15 fields"));
            }
            let usize_at = |idx: usize| -> Result<usize, TableParseError> {
                f[idx]
                    .parse()
                    .map_err(|_| err(ln, &format!("bad integer `{}`", f[idx])))
            };
            let alg = crate::intensity::Algorithm::from_code(f[1])
                .ok_or_else(|| err(ln, &format!("unknown algorithm `{}`", f[1])))?;
            let math = match f[7] {
                "fast" => MathMode::Fast,
                "precise" => MathMode::Precise,
                other => return Err(err(ln, &format!("unknown math mode `{other}`"))),
            };
            let key = PlanKey {
                alg,
                m: usize_at(2)?,
                n: usize_at(3)?,
                rhs: usize_at(4)?,
                elem_words: usize_at(5)?,
                batch_log2: usize_at(6)? as u8,
                math,
            };
            let approach = Approach::from_code(f[8])
                .ok_or_else(|| err(ln, &format!("unknown approach `{}`", f[8])))?;
            let layout = Layout::from_code(f[9])
                .ok_or_else(|| err(ln, &format!("unknown layout `{}`", f[9])))?;
            let threads = if f[10] == "-" {
                None
            } else {
                Some(usize_at(10)?)
            };
            let bits_at = |idx: usize| -> Result<f64, TableParseError> {
                u64::from_str_radix(f[idx], 16)
                    .map(f64::from_bits)
                    .map_err(|_| err(ln, &format!("bad cycle bits `{}`", f[idx])))
            };
            let entry = TableEntry {
                plan: Plan {
                    approach,
                    layout,
                    threads,
                    panel: usize_at(11)?,
                    chunks: usize_at(12)?,
                    streams: usize_at(13)?,
                },
                predicted_cycles: bits_at(14)?,
                simulated_cycles: if f[15] == "-" { None } else { Some(bits_at(15)?) },
            };
            table.insert(key, entry);
        }
        Ok(table)
    }
}

/// How the dispatch layer produces a [`Plan`] for a [`PlanKey`]. Selected
/// per run via `RunOpts::builder().planner(..)` in `regla-core`; every
/// variant goes through the same resolution path, so core, fleet, serve
/// and bench dispatch identically for a given planner.
#[derive(Clone, Debug, Default)]
pub enum Planner {
    /// The paper's hand rules (the 64/256 thresholds) — the default, and
    /// bit-identical to the pre-planner dispatch.
    #[default]
    Heuristic,
    /// Rank the feasible design space by model-predicted cycles on every
    /// dispatch and take the fastest device-executable approach.
    Model,
    /// Consult a tuned [`DecisionTable`]; keys the table does not cover
    /// fall back to the heuristic rules.
    Table(Arc<DecisionTable>),
}

impl Planner {
    /// Produce the dispatch plan for `key`.
    pub fn plan(&self, params: &ModelParams, cfg: &GpuConfig, key: &PlanKey) -> Plan {
        match self {
            Planner::Heuristic => heuristic_plan(key),
            Planner::Model => crate::dispatch::model_plan(params, cfg, key),
            Planner::Table(t) => t
                .lookup(key)
                .map(|e| e.plan)
                .unwrap_or_else(|| heuristic_plan(key)),
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            Planner::Heuristic => "heuristic",
            Planner::Model => "model",
            Planner::Table(_) => "table",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifty_six_uses_64_threads_7x7_tiles() {
        let p = block_plan(56, 56, 0, 1);
        assert_eq!(p.threads, 64);
        assert_eq!(p.rdim, 8);
        assert_eq!((p.hreg, p.wreg), (7, 7));
        assert_eq!(p.panels(), 7);
        assert!(!p.spills());
        assert!(p.regs_per_thread <= 64);
    }

    #[test]
    fn switch_to_256_threads_at_80() {
        let p72 = block_plan(72, 72, 0, 1);
        assert_eq!(p72.threads, 64, "72 still runs on 64 threads");
        let p80 = block_plan(80, 80, 0, 1);
        assert_eq!(p80.threads, 256, "80 switches to 256 threads");
        assert_eq!(p80.rdim, 16);
        assert_eq!((p80.hreg, p80.wreg), (5, 5));
    }

    #[test]
    fn sixty_four_spills() {
        // Figure 9's dip at n = 64: an 8x8 tile plus overhead exceeds 64.
        let p = block_plan(64, 64, 0, 1);
        assert_eq!(p.threads, 64);
        assert!(p.spills());
    }

    #[test]
    fn spills_again_above_112_with_256_threads() {
        let p112 = block_plan(112, 112, 0, 1);
        assert!(!p112.spills(), "112 = 7x7 tiles on 256 threads fits");
        let p120 = block_plan(120, 120, 0, 1);
        assert!(p120.spills(), "beyond 112 the 256-thread tiles spill");
    }

    #[test]
    fn complex_tiles_cost_double() {
        let r = block_plan(56, 56, 0, 1);
        let c = block_plan(56, 56, 0, 2);
        assert_eq!(c.threads, 256, "complex 56x56 exceeds the 64-thread tile");
        assert!(c.regs_per_thread < r.regs_per_thread * 2);
    }

    #[test]
    fn stap_80x16_complex_fits_one_block() {
        // Section VII: "the 80x16 problem fits in a single thread block".
        let p = block_plan(80, 16, 0, 2);
        assert_eq!(p.threads, 64);
        assert!(!p.spills(), "regs = {}", p.regs_per_thread);
    }

    #[test]
    fn rhs_column_is_carried() {
        let p = block_plan(48, 48, 1, 1);
        assert_eq!(p.cols(), 49);
        assert_eq!(p.wreg, 7);
    }

    #[test]
    fn thread_plan_boundary_matches_figure_4() {
        assert!(thread_plan(7, 0, 1).fits_registers());
        assert!(!thread_plan(8, 0, 1).fits_registers());
    }

    #[test]
    fn heuristic_plan_follows_the_paper_rules() {
        use crate::intensity::Algorithm;
        let key = |m, n, rhs, ew| PlanKey::new(Algorithm::Qr, m, n, rhs, ew, 1024, MathMode::Fast);
        assert_eq!(heuristic_plan(&key(6, 6, 0, 1)).approach, Approach::PerThread);
        assert_eq!(heuristic_plan(&key(56, 56, 0, 1)).approach, Approach::PerBlock);
        assert_eq!(heuristic_plan(&key(240, 66, 0, 2)).approach, Approach::Tiled);
        // Wider than tall can't run per-block.
        assert_eq!(heuristic_plan(&key(16, 32, 0, 1)).approach, Approach::Tiled);
    }

    #[test]
    fn plan_key_buckets_batches_by_log2() {
        use crate::intensity::Algorithm;
        let k = |b| PlanKey::new(Algorithm::Lu, 8, 8, 0, 1, b, MathMode::Fast);
        assert_eq!(k(1).batch_log2, 0);
        assert_eq!(k(1000), k(1023), "same power-of-two bucket");
        assert_ne!(k(1023), k(1024));
        assert_eq!(k(4096).batch(), 4096);
        assert_eq!(k(0).batch(), 1, "batch 0 clamps to 1");
    }

    #[test]
    fn block_threads_for_honors_layout_and_override() {
        let p = Plan::new(Approach::PerBlock);
        assert_eq!(p.block_threads_for(56, 56, 1), 64);
        assert_eq!(p.block_threads_for(80, 80, 1), 256);
        assert_eq!(p.with_threads(256).block_threads_for(56, 56, 1), 256);
        // 1D layouts pin the paper's 64 threads regardless.
        let row = p.with_layout(Layout::RowCyclic).with_threads(256);
        assert_eq!(row.block_threads_for(80, 80, 1), 64);
    }

    #[test]
    fn decision_table_round_trips_bit_exactly() {
        use crate::intensity::Algorithm;
        let mut t = DecisionTable::new("quadro_6000");
        t.insert(
            PlanKey::new(Algorithm::Qr, 56, 56, 0, 1, 8000, MathMode::Fast),
            TableEntry {
                plan: Plan::new(Approach::PerBlock).with_threads(256),
                predicted_cycles: 123456.789,
                simulated_cycles: Some(0.1 + 0.2), // deliberately non-round bits
            },
        );
        t.insert(
            PlanKey::new(Algorithm::LeastSquares, 240, 66, 1, 2, 128, MathMode::Precise),
            TableEntry {
                plan: Plan::new(Approach::Tiled).with_panel(8).with_pipeline(4, 2),
                predicted_cycles: f64::MIN_POSITIVE,
                simulated_cycles: None,
            },
        );
        let text = t.to_text();
        let back = DecisionTable::from_text(&text).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.to_text(), text);
    }

    #[test]
    fn decision_table_parse_errors_carry_line_numbers() {
        assert_eq!(DecisionTable::from_text("nope").unwrap_err().line, 1);
        let no_device = "regla-decision-table v1\nentry";
        assert_eq!(DecisionTable::from_text(no_device).unwrap_err().line, 2);
        let bad_entry = "regla-decision-table v1\ndevice x\n\n# comment\nentry bogus";
        let e = DecisionTable::from_text(bad_entry).unwrap_err();
        assert_eq!(e.line, 5);
        let bad_alg = "regla-decision-table v1\ndevice x\nentry zz 8 8 0 1 0 fast pt 2d - 16 1 1 0000000000000000 -";
        let e = DecisionTable::from_text(bad_alg).unwrap_err();
        assert!(e.msg.contains("zz"), "{e}");
    }

    /// Negative paths the round-trip test cannot reach: corrupted cycle
    /// bits, truncated documents, and a future format version must all
    /// come back as structured `TableParseError`s, never as a panic or a
    /// silently half-loaded table.
    #[test]
    fn decision_table_rejects_corrupt_and_truncated_documents() {
        // Non-hex predicted-cycle bits (field 14).
        let bad_hex = "regla-decision-table v1\ndevice x\n\
                       entry qr 8 8 0 1 0 fast pt 2d - 16 1 1 zzzznothex000000 -";
        let e = DecisionTable::from_text(bad_hex).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.msg.contains("bad cycle bits"), "{e}");
        assert!(e.to_string().contains("line 3"), "{e}");

        // Non-hex simulated-cycle bits (field 15, optional but validated).
        let bad_sim = "regla-decision-table v1\ndevice x\n\
                       entry qr 8 8 0 1 0 fast pt 2d - 16 1 1 0000000000000000 nope";
        let e = DecisionTable::from_text(bad_sim).unwrap_err();
        assert!(e.msg.contains("bad cycle bits `nope`"), "{e}");

        // Truncated documents: empty, header-only, and an entry cut off
        // mid-line (as a partial write would leave behind).
        assert_eq!(DecisionTable::from_text("").unwrap_err().line, 1);
        let header_only = "regla-decision-table v1";
        let e = DecisionTable::from_text(header_only).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.msg.contains("missing `device"), "{e}");
        let cut = "regla-decision-table v1\ndevice x\n\
                   entry qr 8 8 0 1 0 fast pt 2d - 16";
        let e = DecisionTable::from_text(cut).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.msg.contains("15 fields"), "{e}");

        // A future header version is a line-1 header error, not a guess.
        let v2 = "regla-decision-table v2\ndevice x";
        let e = DecisionTable::from_text(v2).unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.msg.contains("regla-decision-table v1"), "{e}");

        // Bad integer fields still name the offending token.
        let bad_int = "regla-decision-table v1\ndevice x\n\
                       entry qr 8 eight 0 1 0 fast pt 2d - 16 1 1 0000000000000000 -";
        let e = DecisionTable::from_text(bad_int).unwrap_err();
        assert!(e.msg.contains("bad integer `eight`"), "{e}");
    }

    #[test]
    fn table_planner_falls_back_to_heuristic_on_miss() {
        use crate::intensity::Algorithm;
        let params = ModelParams::table_iv();
        let cfg = regla_gpu_sim::GpuConfig::quadro_6000();
        let hit = PlanKey::new(Algorithm::Qr, 56, 56, 0, 1, 8000, MathMode::Fast);
        let miss = PlanKey::new(Algorithm::Lu, 8, 8, 0, 1, 8000, MathMode::Fast);
        let mut t = DecisionTable::new("quadro_6000");
        let tuned = Plan::new(Approach::PerBlock).with_threads(256);
        t.insert(
            hit,
            TableEntry {
                plan: tuned,
                predicted_cycles: 1.0,
                simulated_cycles: None,
            },
        );
        let planner = Planner::Table(Arc::new(t));
        assert_eq!(planner.plan(&params, &cfg, &hit), tuned);
        assert_eq!(planner.plan(&params, &cfg, &miss), heuristic_plan(&miss));
    }
}
