//! Block execution plans: how a problem maps onto threads and registers.
//!
//! The kernels in `regla-core` and the analytic model must agree on the
//! mapping (thread count, 2D-cyclic tile shape, register usage), so it is
//! computed here once. The rules follow Section V: threads are laid out in
//! a √p x √p grid, 64 threads are used while the per-thread sub-matrix fits
//! the register budget, and the kernel switches to 256 threads at n = 80
//! (the occupancy drop visible in Figure 9).

/// Register overhead per thread beyond the matrix tile (indices, scale
/// factors, accumulators) — roughly what nvcc used for the paper's kernels.
pub const REG_OVERHEAD: usize = 14;

/// Per-thread sub-matrix words above which a 64-thread block switches to
/// 256 threads (n = 72 -> 9x9 = 81 words still runs with 64 threads; n = 80
/// switches, as in the paper).
pub const TILE_WORDS_64T_MAX: usize = 81;

/// Largest declared register count per thread for which the per-block
/// approach is still dispatched automatically.
///
/// The GF100 register file allows 64 registers per thread; beyond that nvcc
/// spills to local memory. The paper's Figure 9 shows the per-block kernels
/// tolerating moderate spill (the dip at n = 64, where an 8x8 tile plus
/// [`REG_OVERHEAD`] just exceeds the budget, still beats the alternatives),
/// but past ~110 declared registers the spill traffic overwhelms the
/// register-resident advantage and the tiled approach wins. This is the
/// dispatch ceiling, not an architectural limit.
pub const PER_BLOCK_MAX_DECLARED_REGS: usize = 110;

/// How one batched problem executes on the device.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Approach {
    /// One problem per thread, matrix in that thread's registers (§IV).
    PerThread,
    /// One problem per thread block, 2D-cyclic register layout (§V).
    PerBlock,
    /// Sequential tiled factorization inside one block (§VII, PLASMA-like).
    Tiled,
    /// Hybrid CPU+GPU blocked library (§VI-A, MAGMA/CULA style).
    Hybrid,
}

impl Approach {
    pub fn name(self) -> &'static str {
        match self {
            Approach::PerThread => "one-problem-per-thread",
            Approach::PerBlock => "one-problem-per-block",
            Approach::Tiled => "tiled-within-block",
            Approach::Hybrid => "hybrid CPU+GPU blocked",
        }
    }
}

/// Mapping of one `m x (n + rhs_cols)` problem onto a thread block.
#[derive(Clone, Copy, Debug)]
pub struct BlockPlan {
    pub m: usize,
    pub n: usize,
    pub rhs_cols: usize,
    /// Words per element (1 = f32, 2 = complex32).
    pub elem_words: usize,
    pub threads: usize,
    /// √p: the thread grid is `rdim x rdim`.
    pub rdim: usize,
    /// Per-thread register tile height (rows of the distributed matrix).
    pub hreg: usize,
    /// Per-thread register tile width.
    pub wreg: usize,
    /// Declared registers per thread (tile + overhead); beyond the
    /// architectural 64 the excess spills.
    pub regs_per_thread: usize,
    /// Shared memory words the kernel needs (column + row vectors,
    /// reduction scratch, scale factor and flags).
    pub shared_words: usize,
}

impl BlockPlan {
    /// Total columns including appended right-hand sides.
    pub fn cols(&self) -> usize {
        self.n + self.rhs_cols
    }

    /// Number of panels the factorization walks through (Figure 8's x-axis:
    /// 7 panels for a 56x56 matrix on 64 threads).
    pub fn panels(&self) -> usize {
        self.n.div_ceil(self.rdim)
    }

    /// Whether the tile spills registers.
    pub fn spills(&self) -> bool {
        self.regs_per_thread > 64
    }
}

/// Plan a one-problem-per-block execution.
pub fn block_plan(m: usize, n: usize, rhs_cols: usize, elem_words: usize) -> BlockPlan {
    assert!(m >= n, "per-block kernels require m >= n (got {m} x {n})");
    let cols = n + rhs_cols;
    let tile64 = m.div_ceil(8) * cols.div_ceil(8) * elem_words;
    let (threads, rdim) = if tile64 <= TILE_WORDS_64T_MAX {
        (64, 8)
    } else {
        (256, 16)
    };
    let hreg = m.div_ceil(rdim);
    let wreg = cols.div_ceil(rdim);
    let regs_per_thread = hreg * wreg * elem_words + REG_OVERHEAD;
    // Shared scratch: a column (m), a row (cols), per-thread reduction
    // partials (threads), and a few control words.
    let shared_words = (m + cols + threads + 16) * elem_words;
    BlockPlan {
        m,
        n,
        rhs_cols,
        elem_words,
        threads,
        rdim,
        hreg,
        wreg,
        regs_per_thread,
        shared_words,
    }
}

/// Mapping of one problem onto a single thread (§IV).
#[derive(Clone, Copy, Debug)]
pub struct ThreadPlan {
    pub n: usize,
    pub rhs_cols: usize,
    pub elem_words: usize,
    pub threads_per_block: usize,
    pub regs_per_thread: usize,
}

/// Plan a one-problem-per-thread execution of `n x (n + rhs)` problems.
pub fn thread_plan(n: usize, rhs_cols: usize, elem_words: usize) -> ThreadPlan {
    let regs = n * (n + rhs_cols) * elem_words + 12;
    ThreadPlan {
        n,
        rhs_cols,
        elem_words,
        threads_per_block: 64,
        regs_per_thread: regs,
    }
}

impl ThreadPlan {
    /// Whether the whole matrix fits the 64-register budget (n < 8 for f32,
    /// the boundary in Figure 4).
    pub fn fits_registers(&self) -> bool {
        self.regs_per_thread <= 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifty_six_uses_64_threads_7x7_tiles() {
        let p = block_plan(56, 56, 0, 1);
        assert_eq!(p.threads, 64);
        assert_eq!(p.rdim, 8);
        assert_eq!((p.hreg, p.wreg), (7, 7));
        assert_eq!(p.panels(), 7);
        assert!(!p.spills());
        assert!(p.regs_per_thread <= 64);
    }

    #[test]
    fn switch_to_256_threads_at_80() {
        let p72 = block_plan(72, 72, 0, 1);
        assert_eq!(p72.threads, 64, "72 still runs on 64 threads");
        let p80 = block_plan(80, 80, 0, 1);
        assert_eq!(p80.threads, 256, "80 switches to 256 threads");
        assert_eq!(p80.rdim, 16);
        assert_eq!((p80.hreg, p80.wreg), (5, 5));
    }

    #[test]
    fn sixty_four_spills() {
        // Figure 9's dip at n = 64: an 8x8 tile plus overhead exceeds 64.
        let p = block_plan(64, 64, 0, 1);
        assert_eq!(p.threads, 64);
        assert!(p.spills());
    }

    #[test]
    fn spills_again_above_112_with_256_threads() {
        let p112 = block_plan(112, 112, 0, 1);
        assert!(!p112.spills(), "112 = 7x7 tiles on 256 threads fits");
        let p120 = block_plan(120, 120, 0, 1);
        assert!(p120.spills(), "beyond 112 the 256-thread tiles spill");
    }

    #[test]
    fn complex_tiles_cost_double() {
        let r = block_plan(56, 56, 0, 1);
        let c = block_plan(56, 56, 0, 2);
        assert_eq!(c.threads, 256, "complex 56x56 exceeds the 64-thread tile");
        assert!(c.regs_per_thread < r.regs_per_thread * 2);
    }

    #[test]
    fn stap_80x16_complex_fits_one_block() {
        // Section VII: "the 80x16 problem fits in a single thread block".
        let p = block_plan(80, 16, 0, 2);
        assert_eq!(p.threads, 64);
        assert!(!p.spills(), "regs = {}", p.regs_per_thread);
    }

    #[test]
    fn rhs_column_is_carried() {
        let p = block_plan(48, 48, 1, 1);
        assert_eq!(p.cols(), 49);
        assert_eq!(p.wreg, 7);
    }

    #[test]
    fn thread_plan_boundary_matches_figure_4() {
        assert!(thread_plan(7, 0, 1).fits_registers());
        assert!(!thread_plan(8, 0, 1).fits_registers());
    }
}
