//! Closed-form end-to-end estimate for stream-pipelined batch execution.
//!
//! The paper's end-to-end numbers are transfer-gated: for small
//! factorizations the PCIe time rivals the kernel time, so the only way to
//! approach the kernel-only rate is to chunk the batch and overlap transfers
//! with compute. This module predicts what the discrete-event stream
//! scheduler in `regla_gpu_sim::stream` will conclude, without running it —
//! the model analog of the three-stage software pipeline:
//!
//! * Each chunk passes through three stages — H2D copy (time `t1`), kernel
//!   (`t2`, including launch overhead), D2H copy (`t3`).
//! * With dedicated copy engines per direction and chunks round-robined over
//!   `S` streams, the pipeline fills in `t1 + t2 + t3` and then retires one
//!   chunk per steady-state interval `max(t1, t2, t3, (t1+t2+t3)/S)` — each
//!   stage is a unit-capacity resource, and a stream (a FIFO) can hold at
//!   most one of its chunks per interval.
//! * With fewer than two copy engines (the paper's GF100 board) the driver
//!   serializes everything, so the pipelined time *is* the synchronous time
//!   — the "no benefit from using multiple streams" claim.

use regla_gpu_sim::GpuConfig;
use regla_gpu_sim::PcieModel;

/// Predicted timing of a chunked, stream-pipelined batch.
#[derive(Clone, Debug)]
pub struct PipelineEstimate {
    pub chunks: usize,
    pub streams: usize,
    pub copy_engines: usize,
    /// Per-chunk H2D transfer time (seconds).
    pub h2d_chunk_s: f64,
    /// Per-chunk kernel time, including launch overhead (seconds).
    pub kernel_chunk_s: f64,
    /// Per-chunk D2H transfer time (seconds).
    pub d2h_chunk_s: f64,
    /// End-to-end time with no overlap: `chunks * (t1 + t2 + t3)`.
    pub sync_s: f64,
    /// End-to-end time of the software pipeline.
    pub pipelined_s: f64,
}

impl PipelineEstimate {
    /// Predicted gain from overlap: `sync_s / pipelined_s`.
    pub fn speedup(&self) -> f64 {
        if self.pipelined_s > 0.0 {
            self.sync_s / self.pipelined_s
        } else {
            1.0
        }
    }

    /// The stage that gates the steady state.
    pub fn bottleneck(&self) -> &'static str {
        let m = self
            .h2d_chunk_s
            .max(self.kernel_chunk_s)
            .max(self.d2h_chunk_s);
        if m == self.kernel_chunk_s {
            "kernel"
        } else if m == self.h2d_chunk_s {
            "h2d"
        } else {
            "d2h"
        }
    }
}

/// Closed-form pipelined end-to-end time from per-chunk stage durations.
///
/// `kernel_chunk_s` must already include the launch overhead; copy times are
/// derived from the config's PCIe link. Degenerate configurations (one
/// stream, one chunk, fewer than two copy engines) fall back to the
/// synchronous time.
pub fn estimate(
    cfg: &GpuConfig,
    chunks: usize,
    streams: usize,
    h2d_bytes_per_chunk: usize,
    d2h_bytes_per_chunk: usize,
    kernel_chunk_s: f64,
) -> PipelineEstimate {
    let pcie = PcieModel::from_config(cfg);
    let t1 = pcie.transfer_secs(h2d_bytes_per_chunk);
    let t2 = kernel_chunk_s.max(0.0);
    let t3 = pcie.transfer_secs(d2h_bytes_per_chunk);
    let sum = t1 + t2 + t3;
    let chunks = chunks.max(1);
    let streams = streams.max(1);
    let sync = chunks as f64 * sum;

    let overlapped = cfg.copy_engines >= 2 && streams >= 2 && chunks >= 2;
    let pipelined = if overlapped {
        // Exact flow-shop recurrence over the chunk schedule. Asymptotically
        // this is `t1 + t2 + t3 + (chunks - 1) * max(t1, t2, t3, sum/S)`
        // (fill plus one steady-state interval per chunk), but the fill and
        // FIFO corrections matter at small chunk counts, and the recurrence
        // is as cheap as the closed form.
        let mut stream_end = vec![0.0f64; streams];
        let mut h2d_free = 0.0f64;
        let mut d2h_free = 0.0f64;
        let mut kernel_free = vec![0.0f64; cfg.concurrent_kernels.max(1)];
        let mut last = 0.0f64;
        for c in 0..chunks {
            let s = c % streams;
            let a_end = stream_end[s].max(h2d_free) + t1;
            h2d_free = a_end;
            let slot = (0..kernel_free.len())
                .min_by(|&a, &b| kernel_free[a].total_cmp(&kernel_free[b]))
                .unwrap_or(0);
            let k_end = a_end.max(kernel_free[slot]) + t2;
            kernel_free[slot] = k_end;
            let d_end = k_end.max(d2h_free) + t3;
            d2h_free = d_end;
            stream_end[s] = d_end;
            last = d_end;
        }
        last
    } else {
        sync
    };

    PipelineEstimate {
        chunks,
        streams,
        copy_engines: cfg.copy_engines,
        h2d_chunk_s: t1,
        kernel_chunk_s: t2,
        d2h_chunk_s: t3,
        sync_s: sync,
        pipelined_s: pipelined,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regla_gpu_sim::Timeline;

    #[test]
    fn single_copy_engine_predicts_no_speedup() {
        let cfg = GpuConfig::quadro_6000();
        let e = estimate(&cfg, 8, 4, 2 << 20, 2 << 20, 500e-6);
        assert_eq!(e.pipelined_s, e.sync_s);
        assert_eq!(e.speedup(), 1.0);
    }

    #[test]
    fn balanced_stages_approach_three_x() {
        // t1 == t2 == t3 and many chunks: speedup tends to 3.
        let cfg = GpuConfig::quadro_6000_dual_copy();
        let pcie = PcieModel::from_config(&cfg);
        let bytes = 4 << 20;
        let t = pcie.transfer_secs(bytes);
        let e = estimate(&cfg, 64, 4, bytes, bytes, t);
        assert!(e.speedup() > 2.7, "speedup {}", e.speedup());
        assert!(e.speedup() <= 3.0 + 1e-9);
    }

    #[test]
    fn two_streams_are_gated_by_the_fifo() {
        // With S = 2 the per-stream FIFO (sum/2) can exceed the widest
        // stage, capping speedup at 2.
        let cfg = GpuConfig::quadro_6000_dual_copy();
        let pcie = PcieModel::from_config(&cfg);
        let bytes = 4 << 20;
        let t = pcie.transfer_secs(bytes);
        let e = estimate(&cfg, 64, 2, bytes, bytes, t);
        assert!(e.speedup() < 2.05, "speedup {}", e.speedup());
    }

    #[test]
    fn closed_form_matches_the_timeline_scheduler() {
        // The estimate must agree with the discrete-event resolution of the
        // same chunk schedule across engine counts, stream counts, and
        // stage balances.
        for cfg in [
            GpuConfig::quadro_6000(),
            GpuConfig::quadro_6000_dual_copy(),
        ] {
            for streams in [1usize, 2, 3, 4] {
                for chunks in [1usize, 2, 5, 12] {
                    for ksecs in [50e-6, 700e-6, 5e-3] {
                        let bytes = 3 << 20;
                        let e = estimate(&cfg, chunks, streams, bytes, bytes, ksecs);
                        let mut tl = Timeline::new(&cfg);
                        let ss: Vec<_> = (0..streams).map(|_| tl.stream()).collect();
                        for c in 0..chunks {
                            let s = ss[c % streams];
                            tl.h2d(s, bytes);
                            tl.kernel(s, ksecs, "");
                            tl.d2h(s, bytes);
                        }
                        let r = tl.resolve();
                        let err = (e.pipelined_s - r.total_s).abs() / r.total_s;
                        assert!(
                            err < 1e-9,
                            "cfg {} streams {} chunks {} ksecs {}: model {} vs sim {}",
                            cfg.copy_engines,
                            streams,
                            chunks,
                            ksecs,
                            e.pipelined_s,
                            r.total_s
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn bottleneck_names_the_widest_stage() {
        let cfg = GpuConfig::quadro_6000_dual_copy();
        let e = estimate(&cfg, 8, 4, 1 << 20, 1 << 20, 50e-3);
        assert_eq!(e.bottleneck(), "kernel");
        let e = estimate(&cfg, 8, 4, 32 << 20, 1 << 10, 50e-6);
        assert_eq!(e.bottleneck(), "h2d");
    }
}
