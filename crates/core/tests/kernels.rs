//! GPU-kernel correctness: every device path must agree with the host
//! reference implementations, for real and complex scalars, across the
//! per-thread, per-block (all three layouts) and tiled approaches.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use regla_core::host;
use regla_core::{C32, Layout, MatBatch, Op, RunOpts, Session};
use regla_model::Approach;

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

fn rand_f32_batch(r: &mut StdRng, m: usize, n: usize, count: usize, dd: bool) -> MatBatch<f32> {
    let mut b = MatBatch::from_fn(m, n, count, |_, _, _| r.random_range(-1.0f32..1.0));
    if dd {
        for k in 0..count {
            let mut mk = b.mat(k);
            mk.make_diagonally_dominant();
            b.set_mat(k, &mk);
        }
    }
    b
}

fn rand_c32_batch(r: &mut StdRng, m: usize, n: usize, count: usize, dd: bool) -> MatBatch<C32> {
    let mut b = MatBatch::from_fn(m, n, count, |_, _, _| {
        C32::new(r.random_range(-1.0f32..1.0), r.random_range(-1.0f32..1.0))
    });
    if dd {
        for k in 0..count {
            let mut mk = b.mat(k);
            mk.make_diagonally_dominant();
            b.set_mat(k, &mk);
        }
    }
    b
}

fn opts(approach: Approach) -> RunOpts {
    RunOpts::builder().approach(approach).build().unwrap()
}

/// Compare a device QR factorization against the host reference.
///
/// When the matrices are diagonally dominant the pivots stay far from the
/// sign boundary and both sides choose identical reflector signs, so the
/// packed factorizations can be compared elementwise. (On general random
/// matrices a pivot with tiny real part can flip sign under the 22-bit
/// fast-math arithmetic, flipping a whole column — harmless for solving,
/// enormous in Frobenius distance; those cases use
/// `assert_r_gram_matches` instead.)
fn assert_qr_matches_host<T: regla_core::DeviceScalar>(
    out: &MatBatch<T>,
    input: &MatBatch<T>,
    tol: f64,
) {
    for k in 0..input.count() {
        let mut f = input.mat(k);
        host::householder_qr_in_place(&mut f);
        let d = out.mat(k).frob_dist(&f);
        assert!(
            d < tol * f.frob_norm().max(1.0),
            "problem {k}: |device - host| = {d}"
        );
    }
}

/// Full self-consistency: rebuild Q from the device's own reflectors and
/// taus and verify Q·R reproduces the input.
fn assert_qr_reconstructs<T: regla_core::DeviceScalar>(
    run: &regla_core::BatchRun<T>,
    input: &MatBatch<T>,
    tol: f64,
) {
    let taus = run.taus.as_ref().expect("QR returns taus");
    for k in 0..input.count() {
        let f = run.out.mat(k);
        let tk: Vec<T> = (0..f.cols().min(f.rows())).map(|i| taus.get(k, i, 0)).collect();
        let q = host::form_q(&f, &tk);
        let r = host::extract_r(&f);
        let a = input.mat(k);
        let d = q.matmul(&r).frob_dist(&a);
        assert!(d < tol * a.frob_norm().max(1.0), "problem {k}: |QR - A| = {d}");
    }
}

/// Sign-convention-independent QR check: Q unitary implies RᴴR = AᴴA.
fn assert_r_gram_matches<T: regla_core::DeviceScalar>(
    out: &MatBatch<T>,
    input: &MatBatch<T>,
    tol: f64,
) {
    for k in 0..input.count() {
        let a = input.mat(k);
        let r = host::extract_r(&out.mat(k));
        let ata = a.hermitian_transpose().matmul(&a);
        let rtr = r.hermitian_transpose().matmul(&r);
        let d = rtr.frob_dist(&ata);
        assert!(
            d < tol * ata.frob_norm().max(1.0),
            "problem {k}: |R^H R - A^H A| = {d}"
        );
    }
}

#[test]
fn per_thread_lu_matches_host() {
    let session = Session::new();
    let mut r = rng(1);
    let a = rand_f32_batch(&mut r, 6, 6, 100, true);
    let run = session.run_with(Op::Lu, &a, None, &opts(Approach::PerThread)).unwrap().run;
    assert_eq!(run.approach, Approach::PerThread);
    for k in 0..a.count() {
        let mut f = a.mat(k);
        host::lu_nopivot_in_place(&mut f).unwrap();
        assert!(run.out.mat(k).frob_dist(&f) < 2e-4 * f.frob_norm());
    }
}

#[test]
fn per_thread_qr_matches_host() {
    let session = Session::new();
    let mut r = rng(2);
    let a = rand_f32_batch(&mut r, 7, 7, 64, false);
    let run = session.run_with(Op::Qr, &a, None, &opts(Approach::PerThread)).unwrap().run;
    assert_r_gram_matches(&run.out, &a, 1e-2);
    assert_qr_reconstructs(&run, &a, 1e-2);
}

#[test]
fn per_thread_gj_solves_systems() {
    let session = Session::new();
    let mut r = rng(3);
    let a = rand_f32_batch(&mut r, 6, 6, 50, true);
    let b = rand_f32_batch(&mut r, 6, 1, 50, false);
    let run = session.run_with(Op::GjSolve, &a, Some(&b), &opts(Approach::PerThread)).unwrap().run;
    for k in 0..a.count() {
        let x: Vec<f32> = (0..6).map(|i| run.out.get(k, i, 6)).collect();
        let bk: Vec<f32> = (0..6).map(|i| b.get(k, i, 0)).collect();
        let res = host::residual_norm(&a.mat(k), &x, &bk);
        assert!(res < 1e-3, "problem {k}: residual {res}");
    }
}

#[test]
fn per_block_lu_matches_host_2d() {
    let session = Session::new();
    let mut r = rng(4);
    let a = rand_f32_batch(&mut r, 24, 24, 6, true);
    let run = session.run_with(Op::Lu, &a, None, &opts(Approach::PerBlock)).unwrap().run;
    assert_eq!(run.approach, Approach::PerBlock);
    for k in 0..a.count() {
        let mut f = a.mat(k);
        host::lu_nopivot_in_place(&mut f).unwrap();
        let d = run.out.mat(k).frob_dist(&f);
        assert!(d < 1e-3 * f.frob_norm(), "problem {k}: {d}");
    }
}

#[test]
fn per_block_qr_matches_host_2d() {
    let session = Session::new();
    let mut r = rng(5);
    let a = rand_f32_batch(&mut r, 24, 24, 5, false);
    let run = session.run_with(Op::Qr, &a, None, &opts(Approach::PerBlock)).unwrap().run;
    assert_r_gram_matches(&run.out, &a, 1e-2);
    assert_qr_reconstructs(&run, &a, 1e-2);
}

#[test]
fn per_block_qr_tall_matrix() {
    let session = Session::new();
    let mut r = rng(6);
    let a = rand_f32_batch(&mut r, 40, 12, 4, false);
    let run = session.run_with(Op::Qr, &a, None, &opts(Approach::PerBlock)).unwrap().run;
    assert_qr_matches_host(&run.out, &a, 2e-3);
}

#[test]
fn per_block_complex_qr_matches_host() {
    let session = Session::new();
    let mut r = rng(7);
    let a = rand_c32_batch(&mut r, 16, 16, 4, false);
    let run = session.run_with(Op::Qr, &a, None, &opts(Approach::PerBlock)).unwrap().run;
    assert_qr_matches_host(&run.out, &a, 5e-3);
}

#[test]
fn per_block_gj_solves_2d() {
    let session = Session::new();
    let mut r = rng(8);
    let a = rand_f32_batch(&mut r, 20, 20, 4, true);
    let b = rand_f32_batch(&mut r, 20, 1, 4, false);
    let run = session.run_with(Op::GjSolve, &a, Some(&b), &opts(Approach::PerBlock)).unwrap().run;
    for k in 0..a.count() {
        let x: Vec<f32> = (0..20).map(|i| run.out.get(k, i, 20)).collect();
        let bk: Vec<f32> = (0..20).map(|i| b.get(k, i, 0)).collect();
        assert!(host::residual_norm(&a.mat(k), &x, &bk) < 1e-2);
    }
}

#[test]
fn per_block_qr_solve_2d() {
    let session = Session::new();
    let mut r = rng(9);
    let a = rand_f32_batch(&mut r, 24, 24, 4, true);
    let b = rand_f32_batch(&mut r, 24, 1, 4, false);
    let run = session.run_with(Op::QrSolve, &a, Some(&b), &opts(Approach::PerBlock)).unwrap().run;
    for k in 0..a.count() {
        let x: Vec<f32> = (0..24).map(|i| run.out.get(k, i, 24)).collect();
        let bk: Vec<f32> = (0..24).map(|i| b.get(k, i, 0)).collect();
        let res = host::residual_norm(&a.mat(k), &x, &bk);
        assert!(res < 1e-2, "problem {k}: residual {res}");
    }
}

#[test]
fn qr_solve_agrees_across_layouts() {
    // Figure 7's three layouts must all produce correct solutions.
    let session = Session::new();
    let mut r = rng(10);
    let a = rand_f32_batch(&mut r, 16, 16, 3, true);
    let b = rand_f32_batch(&mut r, 16, 1, 3, false);
    for layout in [Layout::TwoDCyclic, Layout::RowCyclic, Layout::ColCyclic] {
        let o = RunOpts::builder()
            .approach(Approach::PerBlock)
            .layout(layout)
            .build().unwrap();
        let run = session.run_with(Op::QrSolve, &a, Some(&b), &o).unwrap().run;
        for k in 0..a.count() {
            let x: Vec<f32> = (0..16).map(|i| run.out.get(k, i, 16)).collect();
            let bk: Vec<f32> = (0..16).map(|i| b.get(k, i, 0)).collect();
            let res = host::residual_norm(&a.mat(k), &x, &bk);
            assert!(res < 1e-2, "{layout:?} problem {k}: residual {res}");
        }
    }
}

#[test]
fn complex_gj_solves() {
    let session = Session::new();
    let mut r = rng(11);
    let a = rand_c32_batch(&mut r, 12, 12, 3, true);
    let b = rand_c32_batch(&mut r, 12, 1, 3, false);
    let run = session.run_with(Op::GjSolve, &a, Some(&b), &opts(Approach::PerBlock)).unwrap().run;
    for k in 0..a.count() {
        let x: Vec<C32> = (0..12).map(|i| run.out.get(k, i, 12)).collect();
        let bk: Vec<C32> = (0..12).map(|i| b.get(k, i, 0)).collect();
        assert!(host::residual_norm(&a.mat(k), &x, &bk) < 1e-2);
    }
}

#[test]
fn tiled_qr_matches_host_tall_real() {
    let session = Session::new();
    let mut r = rng(12);
    // Tall enough to need several panels but small enough to test quickly.
    let a = rand_f32_batch(&mut r, 60, 20, 2, false);
    let run = session.run_with(Op::Qr, &a, None, &opts(Approach::Tiled)).unwrap().run;
    for k in 0..a.count() {
        let mut f = a.mat(k);
        host::householder_qr_in_place(&mut f);
        // R must match in the upper triangle (the panel reflectors are
        // organised differently, so compare R only).
        for j in 0..20 {
            for i in 0..=j {
                let d = (run.out.get(k, i, j) - f[(i, j)]).abs();
                assert!(
                    d < 2e-3,
                    "problem {k} R({i},{j}): {} vs {}",
                    run.out.get(k, i, j),
                    f[(i, j)]
                );
            }
        }
    }
}

#[test]
fn tiled_least_squares_complex_radar_shape() {
    let session = Session::new();
    let mut r = rng(13);
    // A miniature 240x66-style problem: tall complex least squares.
    let a = rand_c32_batch(&mut r, 48, 12, 2, false);
    let b = rand_c32_batch(&mut r, 48, 1, 2, false);
    let o = RunOpts::builder().approach(Approach::Tiled).build().unwrap();
    let x = session.run_with(Op::LeastSquares, &a, Some(&b), &o).unwrap().solution.unwrap();
    for k in 0..a.count() {
        let bk: Vec<C32> = (0..48).map(|i| b.get(k, i, 0)).collect();
        let xk: Vec<C32> = (0..12).map(|i| x.get(k, i, 0)).collect();
        let href = host::least_squares(&a.mat(k), &bk);
        for (dev, hst) in xk.iter().zip(&href) {
            assert!((*dev - *hst).abs() < 5e-2, "{dev:?} vs {hst:?}");
        }
    }
}

#[test]
fn least_squares_per_block_tall() {
    let session = Session::new();
    let mut r = rng(14);
    let a = rand_f32_batch(&mut r, 32, 8, 4, false);
    let b = rand_f32_batch(&mut r, 32, 1, 4, false);
    let (_, x) = session.least_squares(&a, &b).unwrap();
    for k in 0..a.count() {
        let bk: Vec<f32> = (0..32).map(|i| b.get(k, i, 0)).collect();
        let xk: Vec<f32> = (0..8).map(|i| x.get(k, i, 0)).collect();
        let href = host::least_squares(&a.mat(k), &bk);
        for (dev, hst) in xk.iter().zip(&href) {
            assert!((dev - hst).abs() < 1e-2, "{dev} vs {hst}");
        }
    }
}

#[test]
fn gemm_batch_matches_host() {
    let session = Session::new();
    let mut r = rng(15);
    let a = rand_f32_batch(&mut r, 16, 12, 5, false);
    let b = rand_f32_batch(&mut r, 12, 10, 5, false);
    let run = session.run_with(Op::Gemm, &a, Some(&b), &RunOpts::default()).unwrap().run;
    for k in 0..a.count() {
        let c = a.mat(k).matmul(&b.mat(k));
        assert!(run.out.mat(k).frob_dist(&c) < 1e-3 * c.frob_norm());
    }
}

#[test]
fn gemm_complex_gmm_shape() {
    // The speech-recognition motivation: 79x16 complex-free multiplies —
    // here a smaller complex variant to exercise the complex path.
    let session = Session::new();
    let mut r = rng(16);
    let a = rand_c32_batch(&mut r, 20, 8, 3, false);
    let b = rand_c32_batch(&mut r, 8, 6, 3, false);
    let run = session.run_with(Op::Gemm, &a, Some(&b), &RunOpts::default()).unwrap().run;
    for k in 0..a.count() {
        let c = a.mat(k).matmul(&b.mat(k));
        assert!(run.out.mat(k).frob_dist(&c) < 1e-3 * c.frob_norm().max(1.0));
    }
}

#[test]
fn fast_math_error_is_bounded() {
    // --use_fast_math (22-bit reciprocal/sqrt) must stay close to precise.
    use regla_gpu_sim::MathMode;
    let session = Session::new();
    let mut r = rng(17);
    let a = rand_f32_batch(&mut r, 16, 16, 3, true);
    let b = rand_f32_batch(&mut r, 16, 1, 3, false);
    let solve = |math: MathMode| {
        let o = RunOpts::builder().math(math).approach(Approach::PerBlock).build().unwrap();
        session.run_with(Op::QrSolve, &a, Some(&b), &o).unwrap().run
    };
    let fast = solve(MathMode::Fast);
    let precise = solve(MathMode::Precise);
    let d = fast.out.max_frob_dist(&precise.out);
    assert!(d > 0.0, "fast math should differ in the low bits");
    assert!(d < 1e-3, "fast-math drift too large: {d}");
    // And precise mode must cost more cycles (the paper's ~30% penalty).
    assert!(precise.time_s() > fast.time_s());
}

#[test]
fn auto_dispatch_picks_sensible_approaches() {
    let session = Session::new();
    let mut r = rng(18);
    let small = rand_f32_batch(&mut r, 6, 6, 32, true);
    let run = session.run_with(Op::Lu, &small, None, &RunOpts::default()).unwrap().run;
    assert_eq!(run.approach, Approach::PerThread);
    let mid = rand_f32_batch(&mut r, 40, 40, 2, true);
    let run = session.run_with(Op::Lu, &mid, None, &RunOpts::default()).unwrap().run;
    assert_eq!(run.approach, Approach::PerBlock);
}

#[test]
fn invert_batch_produces_inverses() {
    let session = Session::new();
    let mut r = rng(30);
    let a = rand_f32_batch(&mut r, 12, 12, 3, true);
    let (inv, run) = session.invert(&a).unwrap();
    assert!(run.not_solved().iter().all(|&f| !f));
    for k in 0..3 {
        let prod = a.mat(k).matmul(&inv.mat(k));
        let eye = regla_core::Mat::<f32>::identity(12);
        let d = prod.frob_dist(&eye);
        assert!(d < 1e-2, "problem {k}: |A*inv(A) - I| = {d}");
    }
}

#[test]
fn gj_multi_rhs_solves_all_columns() {
    let session = Session::new();
    let mut r = rng(31);
    let a = rand_f32_batch(&mut r, 10, 10, 2, true);
    let b = rand_f32_batch(&mut r, 10, 3, 2, false);
    let run = session.run_with(Op::GjSolve, &a, Some(&b), &RunOpts::default()).unwrap().run;
    for k in 0..2 {
        for c in 0..3 {
            let x: Vec<f32> = (0..10).map(|i| run.out.get(k, i, 10 + c)).collect();
            let bc: Vec<f32> = (0..10).map(|i| b.get(k, i, c)).collect();
            let res = host::residual_norm(&a.mat(k), &x, &bc);
            assert!(res < 1e-2, "problem {k} rhs {c}: residual {res}");
        }
    }
}

#[test]
fn singularity_flags_fire_on_zero_pivot() {
    let session = Session::new();
    let mut a = MatBatch::<f32>::zeros(8, 8, 2);
    // Problem 0: permutation-like (zero pivot at k=0); problem 1: identity.
    for i in 0..8 {
        a.set(0, i, (i + 1) % 8, 1.0);
        a.set(1, i, i, 1.0);
    }
    let run = session.run_with(Op::Lu, &a, None, &opts(Approach::PerBlock)).unwrap().run;
    assert!(run.not_solved()[0], "singular problem must raise the flag");
    assert!(!run.not_solved()[1], "identity must not raise the flag");
}

#[test]
fn tree_reduction_matches_serial_results() {
    let session = Session::new();
    let mut r = rng(32);
    let a = rand_f32_batch(&mut r, 20, 20, 3, true);
    let serial = session.run_with(Op::Qr, &a, None, &opts(Approach::PerBlock)).unwrap().run;
    let tree_opts = RunOpts::builder()
        .approach(Approach::PerBlock)
        .tree_reduction(true)
        .build().unwrap();
    let tree = session.run_with(Op::Qr, &a, None, &tree_opts).unwrap().run;
    // Same algorithm, different summation order: results agree closely.
    let d = serial.out.max_frob_dist(&tree.out);
    assert!(d < 1e-2, "tree vs serial divergence {d}");
}

#[test]
fn listing7_lu_is_slower_but_equal() {
    let session = Session::new();
    let mut r = rng(33);
    let a = rand_f32_batch(&mut r, 24, 24, 2, true);
    let hoisted = session.run_with(Op::Lu, &a, None, &opts(Approach::PerBlock)).unwrap().run;
    let l7_opts = RunOpts::builder()
        .approach(Approach::PerBlock)
        .lu_listing7(true)
        .build().unwrap();
    let l7 = session.run_with(Op::Lu, &a, None, &l7_opts).unwrap().run;
    assert_eq!(hoisted.out.max_frob_dist(&l7.out), 0.0, "identical math");
    assert!(
        l7.time_s() > hoisted.time_s(),
        "re-reading shared per FMA must cost more: {} vs {}",
        l7.time_s(),
        hoisted.time_s()
    );
}

#[test]
fn qr_solve_multi_rhs() {
    let session = Session::new();
    let mut r = rng(34);
    let a = rand_f32_batch(&mut r, 14, 14, 2, true);
    let b = rand_f32_batch(&mut r, 14, 2, 2, false);
    let run = session.run_with(Op::QrSolve, &a, Some(&b), &RunOpts::default()).unwrap().run;
    for k in 0..2 {
        for c in 0..2 {
            let x: Vec<f32> = (0..14).map(|i| run.out.get(k, i, 14 + c)).collect();
            let bc: Vec<f32> = (0..14).map(|i| b.get(k, i, c)).collect();
            let res = host::residual_norm(&a.mat(k), &x, &bc);
            assert!(res < 1e-2, "problem {k} rhs {c}: residual {res}");
        }
    }
}

fn spd_f32_batch(r: &mut StdRng, n: usize, count: usize) -> MatBatch<f32> {
    // A = B Bᵀ + n I per problem.
    let mut out = MatBatch::zeros(n, n, count);
    for k in 0..count {
        let b = regla_core::Mat::from_fn(n, n, |_, _| r.random_range(-1.0f32..1.0));
        let mut a = b.matmul(&b.hermitian_transpose());
        for i in 0..n {
            a[(i, i)] += n as f32;
        }
        out.set_mat(k, &a);
    }
    out
}

#[test]
fn per_thread_cholesky_matches_host() {
    let session = Session::new();
    let mut r = rng(40);
    let a = spd_f32_batch(&mut r, 6, 40);
    let run = session.run_with(Op::Cholesky, &a, None, &opts(Approach::PerThread)).unwrap().run;
    assert!(run.not_solved().is_empty() || run.not_solved().iter().all(|&f| !f));
    for k in 0..a.count() {
        let mut f = a.mat(k);
        host::cholesky_in_place(&mut f).unwrap();
        let dev_l = host::extract_l(&run.out.mat(k));
        let ref_l = host::extract_l(&f);
        assert!(dev_l.frob_dist(&ref_l) < 1e-3 * ref_l.frob_norm());
    }
}

#[test]
fn per_block_cholesky_reconstructs() {
    let session = Session::new();
    let mut r = rng(41);
    let a = spd_f32_batch(&mut r, 20, 4);
    let run = session.run_with(Op::Cholesky, &a, None, &opts(Approach::PerBlock)).unwrap().run;
    for k in 0..a.count() {
        assert!(!run.not_solved()[k]);
        let l = host::extract_l(&run.out.mat(k));
        let llt = l.matmul(&l.hermitian_transpose());
        let d = llt.frob_dist(&a.mat(k));
        assert!(d < 1e-2 * a.mat(k).frob_norm(), "problem {k}: {d}");
    }
}

#[test]
fn per_block_cholesky_complex_hermitian() {
    let session = Session::new();
    let mut r = rng(42);
    let n = 12;
    let mut a = MatBatch::<C32>::zeros(n, n, 2);
    for k in 0..2 {
        let b = regla_core::Mat::from_fn(n, n, |_, _| {
            C32::new(r.random_range(-1.0f32..1.0), r.random_range(-1.0f32..1.0))
        });
        let mut h = b.matmul(&b.hermitian_transpose());
        for i in 0..n {
            h[(i, i)] += C32::new(2.0 * n as f32, 0.0);
        }
        a.set_mat(k, &h);
    }
    let run = session.run_with(Op::Cholesky, &a, None, &opts(Approach::PerBlock)).unwrap().run;
    for k in 0..2 {
        let l = host::extract_l(&run.out.mat(k));
        let llh = l.matmul(&l.hermitian_transpose());
        let d = llh.frob_dist(&a.mat(k));
        assert!(d < 2e-2 * a.mat(k).frob_norm(), "problem {k}: {d}");
    }
}

#[test]
fn cholesky_flags_non_spd_problems() {
    let session = Session::new();
    let mut a = MatBatch::<f32>::zeros(8, 8, 2);
    for i in 0..8 {
        a.set(0, i, i, 1.0);
        a.set(1, i, i, if i == 3 { -1.0 } else { 1.0 });
    }
    let run = session.run_with(Op::Cholesky, &a, None, &opts(Approach::PerBlock)).unwrap().run;
    assert!(!run.not_solved()[0]);
    assert!(run.not_solved()[1], "indefinite problem must be flagged");
}

#[test]
fn tsqr_least_squares_matches_host() {
    let session = Session::new();
    let mut r = rng(50);
    // Tall enough for two stage-0 blocks plus a combine.
    let a = rand_f32_batch(&mut r, 72, 10, 3, false);
    let b = rand_f32_batch(&mut r, 72, 1, 3, false);
    let (x, stats) = session.tsqr_least_squares(&a, &b).unwrap();
    assert!(stats.launches.len() >= 4, "stage-0 blocks + combine + gather");
    for k in 0..3 {
        let bk: Vec<f32> = (0..72).map(|i| b.get(k, i, 0)).collect();
        let href = host::least_squares(&a.mat(k), &bk);
        for (dev, hst) in (0..10).map(|i| x.get(k, i, 0)).zip(&href) {
            assert!((dev - hst).abs() < 2e-2, "problem {k}: {dev} vs {hst}");
        }
    }
}

#[test]
fn tsqr_complex_radar_shape() {
    let session = Session::new();
    let mut r = rng(51);
    let a = rand_c32_batch(&mut r, 96, 12, 2, false);
    let b = rand_c32_batch(&mut r, 96, 1, 2, false);
    let (x, _) = session.tsqr_least_squares(&a, &b).unwrap();
    for k in 0..2 {
        let bk: Vec<C32> = (0..96).map(|i| b.get(k, i, 0)).collect();
        let href = host::least_squares(&a.mat(k), &bk);
        for (dev, hst) in (0..12).map(|i| x.get(k, i, 0)).zip(&href) {
            assert!((dev - *hst).abs() < 5e-2, "problem {k}: {dev:?} vs {hst:?}");
        }
    }
}

#[test]
fn tsqr_single_block_degenerates_to_per_block() {
    // m <= block height: one stage-0 factorization, then normalisation.
    let session = Session::new();
    let mut r = rng(52);
    let a = rand_f32_batch(&mut r, 16, 8, 2, false);
    let b = rand_f32_batch(&mut r, 16, 1, 2, false);
    let (x, _) = session.tsqr_least_squares(&a, &b).unwrap();
    for k in 0..2 {
        let bk: Vec<f32> = (0..16).map(|i| b.get(k, i, 0)).collect();
        let href = host::least_squares(&a.mat(k), &bk);
        for (dev, hst) in (0..8).map(|i| x.get(k, i, 0)).zip(&href) {
            assert!((dev - hst).abs() < 2e-2);
        }
    }
}

#[test]
fn global_level_qr_matches_host() {
    use regla_core::global_level::{global_level_qr, GlobalLevelOpts};
    use regla_core::per_block::SubMat;
    use regla_gpu_sim::GlobalMemory;
    let session = Session::new();
    let gpu = session.gpu();
    let mut r = rng(60);
    let a = rand_f32_batch(&mut r, 12, 12, 3, true);
    let mut gmem = GlobalMemory::new(a.words_per_mat() * 3 + 4096);
    let ptr = a.to_device(&mut gmem);
    let opts = GlobalLevelOpts {
        exec: regla_gpu_sim::ExecMode::Full,
        ..Default::default()
    };
    let stats = global_level_qr::<regla_gpu_sim::Rv>(
        gpu, &mut gmem, SubMat::whole(ptr, 12, 12), 12, 12, 3, opts,
    )
    .unwrap();
    // 4 launches per column (minus the last column's updates).
    assert!(stats.launches.len() >= 40);
    let out = MatBatch::<f32>::from_device(12, 12, 3, &gmem, ptr);
    for k in 0..3 {
        let mut f = a.mat(k);
        host::householder_qr_in_place(&mut f);
        let am = a.mat(k);
        let r_dev = host::extract_r(&out.mat(k));
        let ata = am.hermitian_transpose().matmul(&am);
        let rtr = r_dev.hermitian_transpose().matmul(&r_dev);
        assert!(
            rtr.frob_dist(&ata) < 1e-2 * ata.frob_norm(),
            "problem {k}: global-level R wrong"
        );
    }
}

#[test]
fn streams_do_not_help_fine_grained_launches() {
    use regla_core::global_level::{global_level_qr, GlobalLevelOpts};
    use regla_core::per_block::SubMat;
    use regla_gpu_sim::GlobalMemory;
    let session = Session::new();
    let gpu = session.gpu();
    let mut r = rng(61);
    let a = rand_f32_batch(&mut r, 16, 16, 64, true);
    let run = |streams: usize| {
        let mut gmem = GlobalMemory::new(a.words_per_mat() * 64 + 8192);
        let ptr = a.to_device(&mut gmem);
        let opts = GlobalLevelOpts {
            streams,
            ..Default::default()
        };
        global_level_qr::<regla_gpu_sim::Rv>(
            gpu, &mut gmem, SubMat::whole(ptr, 16, 16), 16, 16, 64, opts,
        )
        .unwrap()
        .time_s
    };
    // GF100's effective concurrency for this pattern is 1: the paper's
    // "no benefit from using multiple streams".
    assert_eq!(run(1), run(4));
}
