//! Fast-path / slow-path bit identity.
//!
//! The simulator's fast (observer-free) execution path elides all per-op
//! scoreboard and shadow bookkeeping on replay blocks, runs fused
//! macro-op loops, reuses arena-pooled block state and caches traced
//! schedules across launches. None of that may be observable in the
//! outputs: results, taus, per-problem statuses and modeled cycle totals
//! must be *bit-identical* to the fully-instrumented slow path, at every
//! host thread count, for every shipped solver. These tests pin that
//! contract, plus the path-selection rule: attaching any observer (trace,
//! sanitizer, fault plan, watchdog) transparently falls back to the slow
//! path.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use regla_core::{C32, DeviceScalar, MatBatch, Op, OpOutput, RunOpts, Session};
use regla_gpu_sim::{FaultPlan, Profiler, SanitizerMode};
use regla_model::Approach;

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

fn rand_batch(r: &mut StdRng, m: usize, n: usize, count: usize) -> MatBatch<f32> {
    MatBatch::from_fn(m, n, count, |_, _, _| r.random_range(-1.0f32..1.0))
}

/// SPD batch for Cholesky: A = MᵀM + n·I.
fn spd_batch(r: &mut StdRng, n: usize, count: usize) -> MatBatch<f32> {
    let m = rand_batch(r, n, n, count);
    MatBatch::from_fn(n, n, count, |k, i, j| {
        let dot: f32 = (0..n).map(|t| m.get(k, t, i) * m.get(k, t, j)).sum();
        dot + if i == j { n as f32 } else { 0.0 }
    })
}

/// Everything the simulated device produced, as exact bits: output batch,
/// taus, solution, statuses, and the modeled cycle total of every launch.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    out: Vec<u32>,
    taus: Option<Vec<u32>>,
    solution: Option<Vec<u32>>,
    status: Vec<regla_core::ProblemStatus>,
    cycles: Vec<u64>,
}

fn bits<T: DeviceScalar>(b: &MatBatch<T>) -> Vec<u32> {
    b.data()
        .iter()
        .flat_map(|x| {
            let w = x.to_words();
            w[..T::WORDS].to_vec()
        })
        .map(|f| f.to_bits())
        .collect()
}

fn fingerprint<T: DeviceScalar>(o: &OpOutput<T>) -> Fingerprint {
    Fingerprint {
        out: bits(&o.run.out),
        taus: o.run.taus.as_ref().map(bits),
        solution: o.solution.as_ref().map(bits),
        status: o.run.status.clone(),
        cycles: o
            .run
            .stats
            .launches
            .iter()
            .map(|l| l.cycles.to_bits())
            .collect(),
    }
}

/// Build op-appropriate inputs from a seed and run `op` under `opts`.
fn run_op(op: Op, seed: u64, n: usize, count: usize, opts: &RunOpts) -> Fingerprint {
    let mut r = rng(seed);
    let s = Session::builder().opts(opts.clone()).build();
    let (a, b) = match op {
        Op::Cholesky => (spd_batch(&mut r, n, count), None),
        Op::LeastSquares => (
            rand_batch(&mut r, n + 4, n, count),
            Some(rand_batch(&mut r, n + 4, 1, count)),
        ),
        Op::GjSolve => (
            rand_batch(&mut r, n, n, count),
            Some(rand_batch(&mut r, n, 2, count)),
        ),
        Op::QrSolve => (
            rand_batch(&mut r, n, n, count),
            Some(rand_batch(&mut r, n, 1, count)),
        ),
        Op::Gemm => (
            rand_batch(&mut r, n, n + 1, count),
            Some(rand_batch(&mut r, n + 1, n, count)),
        ),
        _ => (rand_batch(&mut r, n, n, count), None),
    };
    let out = s.run(op, &a, b.as_ref()).expect("op runs");
    fingerprint(&out)
}

fn opts_fast(host_threads: Option<usize>) -> RunOpts {
    RunOpts::builder().host_threads(host_threads).build().unwrap()
}

fn opts_slow(host_threads: Option<usize>) -> RunOpts {
    RunOpts::builder()
        .host_threads(host_threads)
        .slow_path(true)
        .build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole contract: for every op, shape, batch size and host
    /// thread count, the fast path is bit-identical to the slow path.
    #[test]
    fn fast_path_is_bit_identical_to_slow(
        op in prop::sample::select(Op::ALL.to_vec()),
        n in 3usize..9,
        count in 1usize..24,
        ht in prop::sample::select(vec![Some(1), Some(4), None]),
        seed in 0u64..1 << 48,
    ) {
        let fast = run_op(op, seed, n, count, &opts_fast(ht));
        let slow = run_op(op, seed, n, count, &opts_slow(ht));
        prop_assert_eq!(&fast, &slow);
        // Host thread count must not change anything either.
        let fast1 = run_op(op, seed, n, count, &opts_fast(Some(1)));
        prop_assert_eq!(&fast, &fast1);
    }

    /// Same contract on the forced per-thread and per-block paths (the
    /// planner may otherwise never pick one of them at these sizes), and
    /// with batches large enough to span several per-thread blocks.
    #[test]
    fn forced_approaches_are_bit_identical(
        approach in prop::sample::select(vec![Approach::PerThread, Approach::PerBlock]),
        n in 3usize..8,
        count in 60usize..80,
        seed in 0u64..1 << 48,
    ) {
        let base = RunOpts::builder().approach(approach);
        let fast = run_op(Op::QrSolve, seed, n, count, &base.clone().build().unwrap());
        let slow = run_op(Op::QrSolve, seed, n, count, &base.slow_path(true).build().unwrap());
        prop_assert_eq!(&fast, &slow);
    }
}

/// Complex scalars go through the same macro-ops with two words per
/// element; one deterministic case pins them.
#[test]
fn complex_fast_slow_identity() {
    let mut r = rng(7);
    let mut gen = |m: usize, n: usize| {
        MatBatch::from_fn(m, n, 9, |_, _, _| {
            C32::new(r.random_range(-1.0f32..1.0), r.random_range(-1.0f32..1.0))
        })
    };
    let a = gen(6, 6);
    let b = gen(6, 1);
    let fast = Session::new().run(Op::QrSolve, &a, Some(&b)).unwrap();
    let slow = Session::builder()
        .opts(RunOpts::builder().slow_path(true).build().unwrap())
        .build()
        .run(Op::QrSolve, &a, Some(&b))
        .unwrap();
    assert_eq!(fingerprint(&fast), fingerprint(&slow));
}

/// Attaching any observer must transparently select the instrumented slow
/// path; a bare run must take the fast path.
#[test]
fn observers_select_the_slow_path() {
    let mut r = rng(11);
    let a = rand_batch(&mut r, 6, 6, 8);
    let paths = |opts: RunOpts| -> Vec<bool> {
        let s = Session::builder().opts(opts).build();
        let run = s.run(Op::Lu, &a, None).expect("lu runs");
        run.run.stats.launches.iter().map(|l| l.sim_fast).collect()
    };

    for fast in paths(RunOpts::default()) {
        assert!(fast, "a bare run must take the fast path");
    }
    let observed = [
        RunOpts::builder().trace(Profiler::new()).build().unwrap(),
        RunOpts::builder().sanitizer(SanitizerMode::Full).build().unwrap(),
        RunOpts::builder().fault(FaultPlan::new(3, 1)).build().unwrap(),
        RunOpts::builder().watchdog(1_000_000).build().unwrap(),
        RunOpts::builder().slow_path(true).build().unwrap(),
    ];
    for opts in observed {
        for fast in paths(opts) {
            assert!(!fast, "an observed run must take the slow path");
        }
    }
}

/// Relaunching the same kernel shape with the same traced-block inputs
/// hits the schedule cache; the modeled cycles stay bit-identical and
/// different inputs miss (data-dependent control flow cannot alias).
#[test]
fn schedule_cache_hits_preserve_cycles() {
    let mut r = rng(23);
    let a = rand_batch(&mut r, 8, 8, 6);
    let s = Session::new();

    let first = s.run(Op::Lu, &a, None).unwrap();
    assert!(!first.run.stats.launches[0].sim_sched_cache_hit);
    let second = s.run(Op::Lu, &a, None).unwrap();
    assert!(
        second.run.stats.launches[0].sim_sched_cache_hit,
        "identical relaunch must hit the schedule cache"
    );
    assert_eq!(fingerprint(&first), fingerprint(&second));

    // Same shape, different data: the input digest must force a re-trace.
    let b = rand_batch(&mut r, 8, 8, 6);
    let third = s.run(Op::Lu, &b, None).unwrap();
    assert!(!third.run.stats.launches[0].sim_sched_cache_hit);
}
