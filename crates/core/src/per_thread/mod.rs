//! One-problem-per-thread kernels (Section IV).
//!
//! For very small problems (n < 16) each thread stores an entire matrix in
//! its register file and factors it serially; threads never communicate.
//! The register array is the simulator's [`RegArray`], so sizes past the
//! 64-register budget spill to local memory exactly like the `#pragma
//! unroll`ed CUDA original — producing Figure 4's collapse at n = 8.

use crate::elem::{Elem, FastVal};
use crate::per_block::common::SubMat;
use regla_gpu_sim::{BlockCtx, BlockKernel, DPtr, RegArray, ThreadCtx};
use std::marker::PhantomData;

/// Which serial algorithm the kernel runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PtAlg {
    /// LU without pivoting (L and U in place).
    Lu,
    /// Householder QR (R and reflectors in place).
    Qr,
    /// Gauss-Jordan reduction of `[A | b]` (solution in the rhs columns).
    Gj,
    /// QR factorization of `[A | b]` followed by back substitution.
    QrSolve,
    /// Cholesky factorization `A = L Lᴴ` (SPD matrices; extension).
    Cholesky,
}

/// Serial in-register kernel: one `n x (n + rhs_cols)` problem per thread.
pub struct PerThreadKernel<E: Elem> {
    pub a: SubMat,
    pub n: usize,
    pub rhs_cols: usize,
    pub count: usize,
    pub alg: PtAlg,
    /// Where QR stores its reflector scales (count x n elements).
    pub d_tau: Option<DPtr>,
    /// Optional per-problem failure flag array (one word per problem):
    /// 0 = solved, `col + 1` = first zero / non-positive pivot column.
    pub d_flag: Option<DPtr>,
    pub _e: PhantomData<E>,
}

impl<E: Elem> PerThreadKernel<E> {
    pub fn new(a: SubMat, n: usize, rhs_cols: usize, count: usize, alg: PtAlg) -> Self {
        PerThreadKernel {
            a,
            n,
            rhs_cols,
            count,
            alg,
            d_tau: None,
            d_flag: None,
            _e: PhantomData,
        }
    }

    pub fn with_tau(mut self, d_tau: DPtr) -> Self {
        self.d_tau = Some(d_tau);
        self
    }

    pub fn with_flag(mut self, d_flag: DPtr) -> Self {
        self.d_flag = Some(d_flag);
        self
    }

    pub fn cols(&self) -> usize {
        self.n + self.rhs_cols
    }

    /// Registers per thread this kernel wants (the matrix plus overhead).
    pub fn regs_per_thread(&self) -> usize {
        self.n * self.cols() * E::WORDS + 12
    }
}

#[inline]
fn idx(n: usize, i: usize, j: usize) -> usize {
    j * n + i
}

fn lu_serial<E: Elem>(
    t: &mut ThreadCtx,
    a: &mut RegArray<E>,
    n: usize,
    cols: usize,
) -> Option<usize> {
    let mut fail = None;
    for k in 0..n {
        let akk = a.get(t, idx(n, k, k));
        if E::is_zero(t, akk) {
            fail.get_or_insert(k);
            continue;
        }
        let inv = E::recip(t, akk);
        for i in k + 1..n {
            let v = a.get(t, idx(n, i, k));
            let l = E::mul(t, v, inv);
            a.set(t, idx(n, i, k), l);
        }
        for j in k + 1..cols {
            let u = a.get(t, idx(n, k, j));
            for i in k + 1..n {
                let l = a.get(t, idx(n, i, k));
                let v = a.get(t, idx(n, i, j));
                let nv = E::fnma(t, l, u, v);
                a.set(t, idx(n, i, j), nv);
            }
        }
    }
    fail
}

fn gj_serial<E: Elem>(
    t: &mut ThreadCtx,
    a: &mut RegArray<E>,
    n: usize,
    cols: usize,
) -> Option<usize> {
    let mut fail = None;
    for k in 0..n {
        let akk = a.get(t, idx(n, k, k));
        if E::is_zero(t, akk) {
            fail.get_or_insert(k);
            continue;
        }
        let s = E::recip(t, akk);
        for j in k..cols {
            let v = a.get(t, idx(n, k, j));
            let u = E::mul(t, v, s);
            a.set(t, idx(n, k, j), u);
        }
        for i in 0..n {
            if i == k {
                continue;
            }
            let f = a.get(t, idx(n, i, k));
            for j in k..cols {
                let u = a.get(t, idx(n, k, j));
                let v = a.get(t, idx(n, i, j));
                let nv = E::fnma(t, f, u, v);
                a.set(t, idx(n, i, j), nv);
            }
        }
    }
    fail
}

fn qr_serial<E: Elem>(
    t: &mut ThreadCtx,
    a: &mut RegArray<E>,
    n: usize,
    cols: usize,
    tau_out: Option<(DPtr, usize)>,
) {
    for k in 0..n {
        let mut x2 = t.lit(0.0);
        for i in k + 1..n {
            let v = a.get(t, idx(n, i, k));
            let v2 = E::abs2(t, v);
            x2 = t.add(x2, v2);
        }
        let alpha = a.get(t, idx(n, k, k));
        let a2 = E::abs2(t, alpha);
        let n2 = t.add(x2, a2);
        if t.is_zero(n2) {
            if let Some((dt, base)) = tau_out {
                E::gstore(t, dt, base + k, E::imm(0.0));
            }
            continue;
        }
        let anorm = t.sqrt(n2);
        let zero = t.lit(0.0);
        let beta = if t.gt(alpha.re(), zero) {
            t.neg(anorm)
        } else {
            anorm
        };
        let beta_e = E::from_re(beta);
        let num = E::sub(t, beta_e, alpha);
        let binv = E::recip(t, beta_e);
        let tau = E::mul(t, num, binv);
        let den = E::sub(t, alpha, beta_e);
        let inv = E::recip(t, den);
        if let Some((dt, base)) = tau_out {
            E::gstore(t, dt, base + k, tau);
        }
        for i in k + 1..n {
            let v = a.get(t, idx(n, i, k));
            let nv = E::mul(t, v, inv);
            a.set(t, idx(n, i, k), nv);
        }
        a.set(t, idx(n, k, k), beta_e);
        let tch = E::conj(t, tau);
        for j in k + 1..cols {
            let mut w = a.get(t, idx(n, k, j));
            for i in k + 1..n {
                let v = a.get(t, idx(n, i, k));
                let x = a.get(t, idx(n, i, j));
                w = E::conj_fma(t, v, x, w);
            }
            let tw = E::mul(t, tch, w);
            let x = a.get(t, idx(n, k, j));
            let nx = E::sub(t, x, tw);
            a.set(t, idx(n, k, j), nx);
            for i in k + 1..n {
                let v = a.get(t, idx(n, i, k));
                let x = a.get(t, idx(n, i, j));
                let nx = E::fnma(t, v, tw, x);
                a.set(t, idx(n, i, j), nx);
            }
        }
    }
}

fn cholesky_serial<E: Elem>(t: &mut ThreadCtx, a: &mut RegArray<E>, n: usize) -> Option<usize> {
    let mut fail = None;
    for k in 0..n {
        let akk = a.get(t, idx(n, k, k));
        let d = akk.re();
        let zero = t.lit(0.0);
        if !t.gt(d, zero) {
            fail.get_or_insert(k);
            continue;
        }
        let lkk = t.sqrt(d);
        let inv = t.recip(lkk);
        a.set(t, idx(n, k, k), E::from_re(lkk));
        for i in k + 1..n {
            let v = a.get(t, idx(n, i, k));
            let l = E::scale_re(t, v, inv);
            a.set(t, idx(n, i, k), l);
        }
        for j in k + 1..n {
            let lj = a.get(t, idx(n, j, k));
            let ljc = E::conj(t, lj);
            for i in j..n {
                let li = a.get(t, idx(n, i, k));
                let v = a.get(t, idx(n, i, j));
                let nv = E::fnma(t, li, ljc, v);
                a.set(t, idx(n, i, j), nv);
            }
        }
    }
    fail
}

fn back_substitute_serial<E: Elem>(
    t: &mut ThreadCtx,
    a: &mut RegArray<E>,
    n: usize,
    rc: usize,
) {
    for j in (0..n).rev() {
        let rjj = a.get(t, idx(n, j, j));
        let inv = E::recip(t, rjj);
        let y = a.get(t, idx(n, j, rc));
        let x = E::mul(t, y, inv);
        a.set(t, idx(n, j, rc), x);
        for i in 0..j {
            let r = a.get(t, idx(n, i, j));
            let y = a.get(t, idx(n, i, rc));
            let ny = E::fnma(t, r, x, y);
            a.set(t, idx(n, i, rc), ny);
        }
    }
}


// ---------------------------------------------------------------------------
// Fast-path serial variants: the same algorithms over a plain element slice
// with value-only ops. Each mirrors its instrumented twin operation for
// operation (same expression order, same math-mode rounding), so the results
// are bit-identical; only the scoreboard/shadow bookkeeping is elided.
// Register-file spilling affects modeled timing, never values, so the slice
// stands in for the `RegArray` exactly.
// ---------------------------------------------------------------------------

// The `_fast` kernels below mirror their scoreboarded twins op for op, in
// the same order, but walk columns as slices: the bounds checks hoist out
// of the inner loops and the independent fnma chains autovectorize, which
// is where most of the fast path's interpreter overhead went.

fn lu_serial_fast<V: FastVal>(t: &ThreadCtx, a: &mut [V], n: usize, cols: usize) -> Option<usize> {
    debug_assert_eq!(a.len(), n * cols);
    let mut fail = None;
    for k in 0..n {
        let akk = a[idx(n, k, k)];
        if V::is_zero(akk) {
            fail.get_or_insert(k);
            continue;
        }
        let inv = V::recip(t, akk);
        let (lo, hi) = a.split_at_mut((k + 1) * n);
        let colk = &mut lo[k * n + k + 1..];
        for x in colk.iter_mut() {
            *x = V::mul(*x, inv);
        }
        for colj in hi.chunks_exact_mut(n) {
            let u = colj[k];
            for (x, &l) in colj[k + 1..].iter_mut().zip(colk.iter()) {
                *x = V::fnma(l, u, *x);
            }
        }
    }
    fail
}

fn gj_serial_fast<V: FastVal>(
    t: &ThreadCtx,
    a: &mut [V],
    n: usize,
    cols: usize,
    fcol: &mut [V],
) -> Option<usize> {
    debug_assert_eq!(a.len(), n * cols);
    let mut fail = None;
    for k in 0..n {
        let akk = a[idx(n, k, k)];
        if V::is_zero(akk) {
            fail.get_or_insert(k);
            continue;
        }
        let s = V::recip(t, akk);
        for colj in a[k * n..].chunks_exact_mut(n) {
            colj[k] = V::mul(colj[k], s);
        }
        // Capture the multiplier column before elimination overwrites it;
        // every (i, j) update below is then an independent expression, so
        // walking column-major computes bit-identical values to the
        // scoreboarded row-major loop.
        fcol[..n].copy_from_slice(&a[k * n..(k + 1) * n]);
        for colj in a[k * n..].chunks_exact_mut(n) {
            let akj = colj[k];
            for (x, &f) in colj[..k].iter_mut().zip(&fcol[..k]) {
                *x = V::fnma(f, akj, *x);
            }
            for (x, &f) in colj[k + 1..n].iter_mut().zip(&fcol[k + 1..n]) {
                *x = V::fnma(f, akj, *x);
            }
        }
    }
    fail
}

fn qr_serial_fast<E: Elem>(
    t: &mut ThreadCtx,
    a: &mut [E::Val],
    n: usize,
    cols: usize,
    tau_out: Option<(DPtr, usize)>,
) {
    type V<E> = <E as Elem>::Val;
    debug_assert_eq!(a.len(), n * cols);
    for k in 0..n {
        let (lo, hi) = a.split_at_mut((k + 1) * n);
        let colk = &mut lo[k * n..];
        let mut x2 = 0.0f32;
        for &x in &colk[k + 1..] {
            x2 += V::<E>::abs2(x);
        }
        let alpha = colk[k];
        let n2 = x2 + V::<E>::abs2(alpha);
        if n2 == 0.0 {
            if let Some((dt, base)) = tau_out {
                E::v_gstore_val(t, dt, base + k, V::<E>::imm(0.0));
            }
            continue;
        }
        let anorm = t.v_sqrt(n2);
        let beta = if V::<E>::re(alpha) > 0.0 { -anorm } else { anorm };
        let beta_e = V::<E>::from_re(beta);
        let num = V::<E>::sub(beta_e, alpha);
        let binv = V::<E>::recip(t, beta_e);
        let tau = V::<E>::mul(num, binv);
        let den = V::<E>::sub(alpha, beta_e);
        let inv = V::<E>::recip(t, den);
        if let Some((dt, base)) = tau_out {
            E::v_gstore_val(t, dt, base + k, tau);
        }
        for x in colk[k + 1..].iter_mut() {
            *x = V::<E>::mul(*x, inv);
        }
        colk[k] = beta_e;
        let v = &colk[k + 1..];
        let tch = V::<E>::conj(tau);
        for colj in hi.chunks_exact_mut(n) {
            let mut w = colj[k];
            for (&vi, &x) in v.iter().zip(&colj[k + 1..]) {
                w = V::<E>::conj_fma(vi, x, w);
            }
            let tw = V::<E>::mul(tch, w);
            colj[k] = V::<E>::sub(colj[k], tw);
            for (x, &vi) in colj[k + 1..].iter_mut().zip(v) {
                *x = V::<E>::fnma(vi, tw, *x);
            }
        }
    }
}

fn cholesky_serial_fast<V: FastVal>(t: &ThreadCtx, a: &mut [V], n: usize) -> Option<usize> {
    let mut fail = None;
    for k in 0..n {
        let d = V::re(a[idx(n, k, k)]);
        // Non-positive or NaN pivot fails, exactly like the tracked
        // kernel's `!t.gt(d, zero)`.
        if d.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            fail.get_or_insert(k);
            continue;
        }
        let lkk = t.v_sqrt(d);
        let inv = t.v_recip(lkk);
        let (lo, hi) = a.split_at_mut((k + 1) * n);
        let colk = &mut lo[k * n..];
        colk[k] = V::from_re(lkk);
        for x in colk[k + 1..].iter_mut() {
            *x = V::scale_re(*x, inv);
        }
        for (jj, colj) in hi.chunks_exact_mut(n).take(n - k - 1).enumerate() {
            let j = k + 1 + jj;
            let ljc = V::conj(colk[j]);
            for (x, &v) in colj[j..].iter_mut().zip(&colk[j..]) {
                *x = V::fnma(v, ljc, *x);
            }
        }
    }
    fail
}

fn back_substitute_serial_fast<V: FastVal>(t: &ThreadCtx, a: &mut [V], n: usize, rc: usize) {
    let (lo, hi) = a.split_at_mut(rc * n);
    let colrc = &mut hi[..n];
    for j in (0..n).rev() {
        let colj = &lo[j * n..(j + 1) * n];
        let inv = V::recip(t, colj[j]);
        let x = V::mul(colrc[j], inv);
        colrc[j] = x;
        for (r, &v) in colrc[..j].iter_mut().zip(colj) {
            *r = V::fnma(v, x, *r);
        }
    }
}

impl<E: Elem> BlockKernel for PerThreadKernel<E> {
    fn run(&self, blk: &mut BlockCtx) {
        let tpb = blk.num_threads();
        let bid = blk.block_id;
        let (n, cols) = (self.n, self.cols());
        let a = self.a;
        let alg = self.alg;
        let count = self.count;
        let d_tau = self.d_tau;
        let d_flag = self.d_flag;
        blk.phase_label_with(|| "per-thread".to_string());
        // One scratch matrix reused across the block's threads: every
        // problem fully overwrites it during its load loop, so reuse is
        // indistinguishable from a fresh zeroed array.
        let mut scratch = RegArray::<E>::zeroed(n * cols);
        let mut fbuf: Vec<E::Val> = vec![<E::Val as FastVal>::imm(0.0); n * cols];
        let mut fcol: Vec<E::Val> = vec![<E::Val as FastVal>::imm(0.0); n];
        blk.for_each(|t| {
            let pid = bid * tpb + t.tid;
            if pid >= count {
                return;
            }
            if t.fast() {
                let buf = &mut fbuf[..];
                // A full-matrix view stores each problem as one contiguous
                // column-major span in `buf`'s own order, so the whole
                // load/store collapses into a fused bulk transfer.
                let contiguous = a.row0 == 0 && a.col0 == 0 && a.lda == n;
                if contiguous {
                    E::v_gload_vals(t, a.ptr, a.index(pid, 0, 0), buf);
                } else {
                    for j in 0..cols {
                        for i in 0..n {
                            buf[idx(n, i, j)] = E::v_gload(t, a.ptr, a.index(pid, i, j)).val();
                        }
                    }
                }
                let fail = match alg {
                    PtAlg::Lu => lu_serial_fast(t, buf, n, cols),
                    PtAlg::Gj => gj_serial_fast(t, buf, n, cols, &mut fcol),
                    PtAlg::Qr => {
                        let sink = d_tau.map(|dt| (dt, pid * n));
                        qr_serial_fast::<E>(t, buf, n, cols, sink);
                        None
                    }
                    PtAlg::QrSolve => {
                        qr_serial_fast::<E>(t, buf, n, cols, None);
                        back_substitute_serial_fast(t, buf, n, n);
                        None
                    }
                    PtAlg::Cholesky => cholesky_serial_fast(t, buf, n),
                };
                if contiguous {
                    E::v_gstore_vals(t, a.ptr, a.index(pid, 0, 0), buf);
                } else {
                    for j in 0..cols {
                        for i in 0..n {
                            E::v_gstore_val(t, a.ptr, a.index(pid, i, j), buf[idx(n, i, j)]);
                        }
                    }
                }
                if let (Some(f), Some(col)) = (d_flag, fail) {
                    t.gset(f, pid, (col + 1) as f32);
                }
                return;
            }
            let regs = &mut scratch;
            for j in 0..cols {
                for i in 0..n {
                    let v = E::gload(t, a.ptr, a.index(pid, i, j));
                    regs.set(t, idx(n, i, j), v);
                }
            }
            let fail = match alg {
                PtAlg::Lu => lu_serial(t, regs, n, cols),
                PtAlg::Gj => gj_serial(t, regs, n, cols),
                PtAlg::Qr => {
                    let sink = d_tau.map(|dt| (dt, pid * n));
                    qr_serial(t, regs, n, cols, sink);
                    None
                }
                PtAlg::QrSolve => {
                    qr_serial(t, regs, n, cols, None);
                    back_substitute_serial(t, regs, n, n);
                    None
                }
                PtAlg::Cholesky => cholesky_serial(t, regs, n),
            };
            for j in 0..cols {
                for i in 0..n {
                    let v = regs.get(t, idx(n, i, j));
                    E::gstore(t, a.ptr, a.index(pid, i, j), v);
                }
            }
            // Per-problem failure flag: `first failing column + 1`
            // (0 = solved), same encoding as the per-block kernels.
            if let (Some(f), Some(col)) = (d_flag, fail) {
                let v = t.lit((col + 1) as f32);
                t.gstore(f, pid, v);
            }
        });
    }
}
