//! One-problem-per-thread kernels (Section IV).
//!
//! For very small problems (n < 16) each thread stores an entire matrix in
//! its register file and factors it serially; threads never communicate.
//! The register array is the simulator's [`RegArray`], so sizes past the
//! 64-register budget spill to local memory exactly like the `#pragma
//! unroll`ed CUDA original — producing Figure 4's collapse at n = 8.

use crate::elem::Elem;
use crate::per_block::common::SubMat;
use regla_gpu_sim::{BlockCtx, BlockKernel, DPtr, RegArray, ThreadCtx};
use std::marker::PhantomData;

/// Which serial algorithm the kernel runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PtAlg {
    /// LU without pivoting (L and U in place).
    Lu,
    /// Householder QR (R and reflectors in place).
    Qr,
    /// Gauss-Jordan reduction of `[A | b]` (solution in the rhs columns).
    Gj,
    /// QR factorization of `[A | b]` followed by back substitution.
    QrSolve,
    /// Cholesky factorization `A = L Lᴴ` (SPD matrices; extension).
    Cholesky,
}

/// Serial in-register kernel: one `n x (n + rhs_cols)` problem per thread.
pub struct PerThreadKernel<E: Elem> {
    pub a: SubMat,
    pub n: usize,
    pub rhs_cols: usize,
    pub count: usize,
    pub alg: PtAlg,
    /// Where QR stores its reflector scales (count x n elements).
    pub d_tau: Option<DPtr>,
    /// Optional per-problem failure flag array (one word per problem):
    /// 0 = solved, `col + 1` = first zero / non-positive pivot column.
    pub d_flag: Option<DPtr>,
    pub _e: PhantomData<E>,
}

impl<E: Elem> PerThreadKernel<E> {
    pub fn new(a: SubMat, n: usize, rhs_cols: usize, count: usize, alg: PtAlg) -> Self {
        PerThreadKernel {
            a,
            n,
            rhs_cols,
            count,
            alg,
            d_tau: None,
            d_flag: None,
            _e: PhantomData,
        }
    }

    pub fn with_tau(mut self, d_tau: DPtr) -> Self {
        self.d_tau = Some(d_tau);
        self
    }

    pub fn with_flag(mut self, d_flag: DPtr) -> Self {
        self.d_flag = Some(d_flag);
        self
    }

    pub fn cols(&self) -> usize {
        self.n + self.rhs_cols
    }

    /// Registers per thread this kernel wants (the matrix plus overhead).
    pub fn regs_per_thread(&self) -> usize {
        self.n * self.cols() * E::WORDS + 12
    }
}

#[inline]
fn idx(n: usize, i: usize, j: usize) -> usize {
    j * n + i
}

fn lu_serial<E: Elem>(
    t: &mut ThreadCtx,
    a: &mut RegArray<E>,
    n: usize,
    cols: usize,
) -> Option<usize> {
    let mut fail = None;
    for k in 0..n {
        let akk = a.get(t, idx(n, k, k));
        if E::is_zero(t, akk) {
            fail.get_or_insert(k);
            continue;
        }
        let inv = E::recip(t, akk);
        for i in k + 1..n {
            let v = a.get(t, idx(n, i, k));
            let l = E::mul(t, v, inv);
            a.set(t, idx(n, i, k), l);
        }
        for j in k + 1..cols {
            let u = a.get(t, idx(n, k, j));
            for i in k + 1..n {
                let l = a.get(t, idx(n, i, k));
                let v = a.get(t, idx(n, i, j));
                let nv = E::fnma(t, l, u, v);
                a.set(t, idx(n, i, j), nv);
            }
        }
    }
    fail
}

fn gj_serial<E: Elem>(
    t: &mut ThreadCtx,
    a: &mut RegArray<E>,
    n: usize,
    cols: usize,
) -> Option<usize> {
    let mut fail = None;
    for k in 0..n {
        let akk = a.get(t, idx(n, k, k));
        if E::is_zero(t, akk) {
            fail.get_or_insert(k);
            continue;
        }
        let s = E::recip(t, akk);
        for j in k..cols {
            let v = a.get(t, idx(n, k, j));
            let u = E::mul(t, v, s);
            a.set(t, idx(n, k, j), u);
        }
        for i in 0..n {
            if i == k {
                continue;
            }
            let f = a.get(t, idx(n, i, k));
            for j in k..cols {
                let u = a.get(t, idx(n, k, j));
                let v = a.get(t, idx(n, i, j));
                let nv = E::fnma(t, f, u, v);
                a.set(t, idx(n, i, j), nv);
            }
        }
    }
    fail
}

fn qr_serial<E: Elem>(
    t: &mut ThreadCtx,
    a: &mut RegArray<E>,
    n: usize,
    cols: usize,
    tau_out: Option<(DPtr, usize)>,
) {
    for k in 0..n {
        let mut x2 = t.lit(0.0);
        for i in k + 1..n {
            let v = a.get(t, idx(n, i, k));
            let v2 = E::abs2(t, v);
            x2 = t.add(x2, v2);
        }
        let alpha = a.get(t, idx(n, k, k));
        let a2 = E::abs2(t, alpha);
        let n2 = t.add(x2, a2);
        if t.is_zero(n2) {
            if let Some((dt, base)) = tau_out {
                E::gstore(t, dt, base + k, E::imm(0.0));
            }
            continue;
        }
        let anorm = t.sqrt(n2);
        let zero = t.lit(0.0);
        let beta = if t.gt(alpha.re(), zero) {
            t.neg(anorm)
        } else {
            anorm
        };
        let beta_e = E::from_re(beta);
        let num = E::sub(t, beta_e, alpha);
        let binv = E::recip(t, beta_e);
        let tau = E::mul(t, num, binv);
        let den = E::sub(t, alpha, beta_e);
        let inv = E::recip(t, den);
        if let Some((dt, base)) = tau_out {
            E::gstore(t, dt, base + k, tau);
        }
        for i in k + 1..n {
            let v = a.get(t, idx(n, i, k));
            let nv = E::mul(t, v, inv);
            a.set(t, idx(n, i, k), nv);
        }
        a.set(t, idx(n, k, k), beta_e);
        let tch = E::conj(t, tau);
        for j in k + 1..cols {
            let mut w = a.get(t, idx(n, k, j));
            for i in k + 1..n {
                let v = a.get(t, idx(n, i, k));
                let x = a.get(t, idx(n, i, j));
                w = E::conj_fma(t, v, x, w);
            }
            let tw = E::mul(t, tch, w);
            let x = a.get(t, idx(n, k, j));
            let nx = E::sub(t, x, tw);
            a.set(t, idx(n, k, j), nx);
            for i in k + 1..n {
                let v = a.get(t, idx(n, i, k));
                let x = a.get(t, idx(n, i, j));
                let nx = E::fnma(t, v, tw, x);
                a.set(t, idx(n, i, j), nx);
            }
        }
    }
}

fn cholesky_serial<E: Elem>(t: &mut ThreadCtx, a: &mut RegArray<E>, n: usize) -> Option<usize> {
    let mut fail = None;
    for k in 0..n {
        let akk = a.get(t, idx(n, k, k));
        let d = akk.re();
        let zero = t.lit(0.0);
        if !t.gt(d, zero) {
            fail.get_or_insert(k);
            continue;
        }
        let lkk = t.sqrt(d);
        let inv = t.recip(lkk);
        a.set(t, idx(n, k, k), E::from_re(lkk));
        for i in k + 1..n {
            let v = a.get(t, idx(n, i, k));
            let l = E::scale_re(t, v, inv);
            a.set(t, idx(n, i, k), l);
        }
        for j in k + 1..n {
            let lj = a.get(t, idx(n, j, k));
            let ljc = E::conj(t, lj);
            for i in j..n {
                let li = a.get(t, idx(n, i, k));
                let v = a.get(t, idx(n, i, j));
                let nv = E::fnma(t, li, ljc, v);
                a.set(t, idx(n, i, j), nv);
            }
        }
    }
    fail
}

fn back_substitute_serial<E: Elem>(
    t: &mut ThreadCtx,
    a: &mut RegArray<E>,
    n: usize,
    rc: usize,
) {
    for j in (0..n).rev() {
        let rjj = a.get(t, idx(n, j, j));
        let inv = E::recip(t, rjj);
        let y = a.get(t, idx(n, j, rc));
        let x = E::mul(t, y, inv);
        a.set(t, idx(n, j, rc), x);
        for i in 0..j {
            let r = a.get(t, idx(n, i, j));
            let y = a.get(t, idx(n, i, rc));
            let ny = E::fnma(t, r, x, y);
            a.set(t, idx(n, i, rc), ny);
        }
    }
}

impl<E: Elem> BlockKernel for PerThreadKernel<E> {
    fn run(&self, blk: &mut BlockCtx) {
        let tpb = blk.num_threads();
        let bid = blk.block_id;
        let (n, cols) = (self.n, self.cols());
        let a = self.a;
        let alg = self.alg;
        let count = self.count;
        let d_tau = self.d_tau;
        let d_flag = self.d_flag;
        blk.phase_label("per-thread");
        blk.for_each(|t| {
            let pid = bid * tpb + t.tid;
            if pid >= count {
                return;
            }
            let mut regs = RegArray::<E>::zeroed(n * cols);
            for j in 0..cols {
                for i in 0..n {
                    let v = E::gload(t, a.ptr, a.index(pid, i, j));
                    regs.set(t, idx(n, i, j), v);
                }
            }
            let fail = match alg {
                PtAlg::Lu => lu_serial(t, &mut regs, n, cols),
                PtAlg::Gj => gj_serial(t, &mut regs, n, cols),
                PtAlg::Qr => {
                    let sink = d_tau.map(|dt| (dt, pid * n));
                    qr_serial(t, &mut regs, n, cols, sink);
                    None
                }
                PtAlg::QrSolve => {
                    qr_serial(t, &mut regs, n, cols, None);
                    back_substitute_serial(t, &mut regs, n, n);
                    None
                }
                PtAlg::Cholesky => cholesky_serial(t, &mut regs, n),
            };
            for j in 0..cols {
                for i in 0..n {
                    let v = regs.get(t, idx(n, i, j));
                    E::gstore(t, a.ptr, a.index(pid, i, j), v);
                }
            }
            // Per-problem failure flag: `first failing column + 1`
            // (0 = solved), same encoding as the per-block kernels.
            if let (Some(f), Some(col)) = (d_flag, fail) {
                let v = t.lit((col + 1) as f32);
                t.gstore(f, pid, v);
            }
        });
    }
}
