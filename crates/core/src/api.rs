//! Public batched API: upload a batch, pick an approach (per-thread,
//! per-block or tiled — via the predictive model's plan rules), launch the
//! kernel on the simulated GPU, download the results.

use crate::batch::MatBatch;
use crate::elem::DeviceScalar;
use crate::layout::{Layout, LayoutMap};
use crate::per_block::{
    CholeskyBlockKernel, GemmBlockKernel, GjBlockKernel, LuBlockKernel, QrBlockKernel, SubMat,
};
use crate::per_thread::{PerThreadKernel, PtAlg};
use crate::tiled::{tiled_qr, MultiLaunch, TiledOpts};
use regla_gpu_sim::{ExecMode, GlobalMemory, Gpu, LaunchConfig, MathMode};
use regla_model::{block_plan, thread_plan, Approach};
use std::marker::PhantomData;

/// Options controlling a batched run.
#[derive(Clone, Copy, Debug)]
pub struct RunOpts {
    /// Register-file data layout for the per-block kernels.
    pub layout: Layout,
    pub math: MathMode,
    pub exec: ExecMode,
    /// Force an approach instead of letting the plan choose.
    pub approach: Option<Approach>,
    /// Panel width for the tiled path.
    pub panel: usize,
    /// Use tree reductions in the per-block QR (ablation; the paper uses
    /// serial reductions).
    pub tree_reduction: bool,
    /// Follow Listing 7 literally in the LU trailing update (fidelity
    /// ablation; slower).
    pub lu_listing7: bool,
    /// Force the per-block thread count (must be a perfect square for the
    /// 2D layout); `None` uses the paper's 64/256 rule. Occupancy ablation.
    pub force_threads: Option<usize>,
    /// Host worker threads for the simulator's functional replay; `None`
    /// defers to `REGLA_SIM_THREADS` and then to available parallelism.
    /// Purely a host-side knob — simulated results are bit-identical at
    /// every thread count.
    pub host_threads: Option<usize>,
}

impl Default for RunOpts {
    fn default() -> Self {
        RunOpts {
            layout: Layout::TwoDCyclic,
            math: MathMode::Fast,
            exec: ExecMode::Full,
            approach: None,
            panel: 16,
            tree_reduction: false,
            lu_listing7: false,
            force_threads: None,
            host_threads: None,
        }
    }
}

/// Result of a batched operation.
pub struct BatchRun<T> {
    /// The output batch (factored matrices / reduced augmented systems).
    pub out: MatBatch<T>,
    pub approach: Approach,
    pub stats: MultiLaunch,
    /// Householder reflector scales (QR factorizations only; `n x 1` per
    /// problem, LAPACK `geqrf` convention).
    pub taus: Option<MatBatch<T>>,
    /// Per-problem "not solved" flags (zero pivot hit in LU/GJ — the
    /// paper's `*notsolved = 1`). Empty when the algorithm cannot fail.
    pub not_solved: Vec<bool>,
}

impl<T> BatchRun<T> {
    pub fn gflops(&self) -> f64 {
        self.stats.gflops()
    }

    pub fn time_s(&self) -> f64 {
        self.stats.time_s
    }
}

fn choose_approach(m: usize, n: usize, rhs: usize, ew: usize, opts: &RunOpts) -> Approach {
    if let Some(a) = opts.approach {
        return a;
    }
    if m == n && thread_plan(n, rhs, ew).fits_registers() {
        Approach::PerThread
    } else if m >= n && block_plan(m, n, rhs, ew).regs_per_thread <= 110 {
        Approach::PerBlock
    } else {
        Approach::Tiled
    }
}

/// Threads and layout map for a per-block launch under the chosen layout.
fn layout_for(opts: &RunOpts, m: usize, cols: usize, ew: usize) -> LayoutMap {
    match opts.layout {
        Layout::TwoDCyclic => {
            // Same 64/256 rule as `block_plan`, but directly on the full
            // augmented shape (which may be wider than tall).
            let tile64 = m.div_ceil(8) * cols.div_ceil(8) * ew;
            let threads = opts.force_threads.unwrap_or(if tile64
                <= regla_model::plan::TILE_WORDS_64T_MAX
            {
                64
            } else {
                256
            });
            LayoutMap::new(Layout::TwoDCyclic, threads, m, cols)
        }
        // The 1D comparisons of Figure 7 run with the paper's 64 threads.
        l => LayoutMap::new(l, 64, m, cols),
    }
}

fn device_for<T: DeviceScalar>(batch: &MatBatch<T>, extra_words: usize) -> GlobalMemory {
    let words = batch.words_per_mat() * batch.count() + extra_words + 4096;
    GlobalMemory::new(words)
}

struct Launched<T> {
    out: MatBatch<T>,
    stats: MultiLaunch,
    taus: Option<MatBatch<T>>,
    flags: Vec<bool>,
}

/// Run one of the in-place factorization kernels over a batch.
fn run_inplace<T: DeviceScalar>(
    gpu: &Gpu,
    aug: &MatBatch<T>,
    nfac: usize,
    alg: PtAlg,
    approach: Approach,
    opts: &RunOpts,
    back_substitute: bool,
) -> Launched<T> {
    let (m, cols, count) = (aug.rows(), aug.cols(), aug.count());
    let rhs = cols - nfac;
    let ew = T::WORDS;
    let tau_words = count * nfac * ew;
    let mut gmem = device_for(aug, tau_words + count);
    let ptr = aug.to_device(&mut gmem);
    let d_tau = gmem.alloc(tau_words.max(1));
    let d_flag = gmem.alloc(count);
    let view = SubMat::whole(ptr, m, cols);
    let mut stats = MultiLaunch::default();

    match approach {
        Approach::PerThread => {
            assert_eq!(m, nfac, "per-thread kernels handle square systems");
            let mut kern = PerThreadKernel::<T::Dev>::new(view, nfac, rhs, count, alg);
            if alg == PtAlg::Qr {
                kern = kern.with_tau(d_tau);
            }
            let tpb = 64;
            let lc = LaunchConfig::new(count.div_ceil(tpb), tpb)
                .regs(kern.regs_per_thread())
                .shared_words(0)
                .math(opts.math)
                .exec(opts.exec)
                .host_threads(opts.host_threads);
            stats.push(gpu.launch(&kern, &lc, &mut gmem));
        }
        Approach::PerBlock => {
            let lm = layout_for(opts, m, cols, ew);
            let regs = lm.local_len() * ew + 14;
            let (shared_words, launch): (usize, Box<dyn regla_gpu_sim::BlockKernel + Sync>) = match alg
            {
                PtAlg::Lu => {
                    let mut k = LuBlockKernel::<T::Dev>::new(view, lm, count).with_flag(d_flag);
                    if opts.lu_listing7 {
                        k = k.listing7();
                    }
                    (k.shared_words(), Box::new(k))
                }
                PtAlg::Gj => {
                    let mut k = GjBlockKernel::<T::Dev>::new(view, lm, count, rhs);
                    k.d_flag = Some(d_flag);
                    (k.shared_words(), Box::new(k))
                }
                PtAlg::Cholesky => {
                    let mut k = CholeskyBlockKernel::<T::Dev>::new(view, lm, count);
                    k.d_flag = Some(d_flag);
                    (k.shared_words(), Box::new(k))
                }
                PtAlg::Qr | PtAlg::QrSolve => {
                    let mut k = QrBlockKernel::<T::Dev>::new(view, lm, count)
                        .with_rhs(rhs)
                        .with_tau(d_tau);
                    if back_substitute {
                        k = k.solving();
                    }
                    if opts.tree_reduction && opts.layout == Layout::TwoDCyclic {
                        k = k.with_tree_reduction();
                    }
                    (k.shared_words(), Box::new(k))
                }
            };
            let lc = LaunchConfig::new(count, lm.p)
                .regs(regs)
                .shared_words(shared_words)
                .math(opts.math)
                .exec(opts.exec)
                .host_threads(opts.host_threads);
            stats.push(gpu.launch(launch.as_ref(), &lc, &mut gmem));
        }
        Approach::Tiled => {
            assert!(
                matches!(alg, PtAlg::Qr | PtAlg::QrSolve),
                "the tiled path implements QR-based algorithms only"
            );
            let topts = TiledOpts {
                panel: opts.panel,
                math: opts.math,
                exec: opts.exec,
                host_threads: opts.host_threads,
            };
            let agg = tiled_qr::<T::Dev>(gpu, &mut gmem, view, m, nfac, rhs, count, d_tau, topts);
            for l in agg.launches {
                stats.push(l);
            }
        }
        Approach::Hybrid => panic!("the hybrid baseline lives in regla-hybrid"),
    }

    let out = MatBatch::<T>::from_device(m, cols, count, &gmem, ptr);
    // The per-thread and per-block QR kernels leave LAPACK-style taus in
    // the scratch buffer; the tiled path reuses it per panel, so no
    // coherent tau set survives there.
    let taus = if alg == PtAlg::Qr && approach != Approach::Tiled {
        Some(MatBatch::<T>::from_device(nfac, 1, count, &gmem, d_tau))
    } else {
        None
    };
    // Per-problem singularity flags (the paper's `*notsolved`), written by
    // the per-block LU/GJ kernels on a zero pivot.
    let mut flag_words = vec![0.0f32; count];
    gmem.d2h(d_flag, &mut flag_words);
    let flags = flag_words.into_iter().map(|w| w != 0.0).collect();
    Launched {
        out,
        stats,
        taus,
        flags,
    }
}

/// Batched in-place Householder QR (R above the diagonal, reflectors
/// below), dispatched across the paper's approaches.
pub fn qr_batch<T: DeviceScalar>(gpu: &Gpu, a: &MatBatch<T>, opts: &RunOpts) -> BatchRun<T> {
    let approach = choose_approach(a.rows(), a.cols(), 0, T::WORDS, opts);
    let r = run_inplace(gpu, a, a.cols(), PtAlg::Qr, approach, opts, false);
    BatchRun {
        out: r.out,
        approach,
        stats: r.stats,
        taus: r.taus,
        not_solved: r.flags,
    }
}

/// Batched in-place LU without pivoting.
pub fn lu_batch<T: DeviceScalar>(gpu: &Gpu, a: &MatBatch<T>, opts: &RunOpts) -> BatchRun<T> {
    let approach = match choose_approach(a.rows(), a.cols(), 0, T::WORDS, opts) {
        Approach::Tiled => Approach::PerBlock, // large LU runs with spills
        other => other,
    };
    let r = run_inplace(gpu, a, a.cols(), PtAlg::Lu, approach, opts, false);
    BatchRun {
        out: r.out,
        approach,
        stats: r.stats,
        taus: None,
        not_solved: r.flags,
    }
}

/// Batched Gauss-Jordan solve of `A x = b` (no pivoting). `out` is the
/// reduced augmented system; `solution()` extracts x.
pub fn gj_solve_batch<T: DeviceScalar>(
    gpu: &Gpu,
    a: &MatBatch<T>,
    b: &MatBatch<T>,
    opts: &RunOpts,
) -> BatchRun<T> {
    assert_eq!(a.rows(), a.cols());
    let aug = MatBatch::augment(a, b);
    let approach = match choose_approach(a.rows(), a.cols(), b.cols(), T::WORDS, opts) {
        Approach::Tiled => Approach::PerBlock,
        other => other,
    };
    let r = run_inplace(gpu, &aug, a.cols(), PtAlg::Gj, approach, opts, false);
    BatchRun {
        out: r.out,
        approach,
        stats: r.stats,
        taus: None,
        not_solved: r.flags,
    }
}

/// Batched linear solve via QR: factor `[A|b]`, then eliminate R
/// (Figure 12's "Solving Linear Systems with QR").
pub fn qr_solve_batch<T: DeviceScalar>(
    gpu: &Gpu,
    a: &MatBatch<T>,
    b: &MatBatch<T>,
    opts: &RunOpts,
) -> BatchRun<T> {
    assert_eq!(a.rows(), a.cols());
    assert_eq!(b.cols(), 1);
    let aug = MatBatch::augment(a, b);
    let approach = match choose_approach(a.rows(), a.cols(), 1, T::WORDS, opts) {
        Approach::Tiled => Approach::PerBlock,
        other => other,
    };
    let r = run_inplace(gpu, &aug, a.cols(), PtAlg::QrSolve, approach, opts, true);
    BatchRun {
        out: r.out,
        approach,
        stats: r.stats,
        taus: None,
        not_solved: r.flags,
    }
}

/// Batched least squares `min ‖Ax − b‖` for tall A via QR of `[A|b]`.
/// Uses the per-block kernel when the problem fits, the tiled path
/// otherwise (with the final triangular solve on the host, as the radar
/// pipeline does).
pub fn least_squares_batch<T: DeviceScalar>(
    gpu: &Gpu,
    a: &MatBatch<T>,
    b: &MatBatch<T>,
    opts: &RunOpts,
) -> (BatchRun<T>, MatBatch<T>) {
    let (m, n) = (a.rows(), a.cols());
    assert!(m >= n);
    assert_eq!(b.cols(), 1);
    let aug = MatBatch::augment(a, b);
    let approach = choose_approach(m, n, 1, T::WORDS, opts);
    match approach {
        Approach::PerThread | Approach::PerBlock => {
            let approach = if m == n { approach } else { Approach::PerBlock };
            let r = run_inplace(gpu, &aug, n, PtAlg::QrSolve, approach, opts, true);
            let x = r.out.sub(0, n, n, 1);
            (
                BatchRun {
                    out: r.out,
                    approach,
                    stats: r.stats,
                    taus: None,
                    not_solved: r.flags,
                },
                x,
            )
        }
        _ => {
            let r = run_inplace(gpu, &aug, n, PtAlg::Qr, Approach::Tiled, opts, false);
            // Host back-substitution of R x = (Qᴴ b)[..n].
            let mut x = MatBatch::zeros(n, 1, aug.count());
            for k in 0..aug.count() {
                let f = r.out.mat(k);
                let y: Vec<T> = (0..n).map(|i| f[(i, n)]).collect();
                let sol = crate::host::qr::back_substitute(&f.submatrix(0, 0, n, n), &y);
                for (i, v) in sol.into_iter().enumerate() {
                    x.set(k, i, 0, v);
                }
            }
            (
                BatchRun {
                    out: r.out,
                    approach: Approach::Tiled,
                    stats: r.stats,
                    taus: None,
                    not_solved: r.flags,
                },
                x,
            )
        }
    }
}

/// Batched GEMM `C = A·B` with one problem per block.
pub fn gemm_batch<T: DeviceScalar>(
    gpu: &Gpu,
    a: &MatBatch<T>,
    b: &MatBatch<T>,
    opts: &RunOpts,
) -> BatchRun<T> {
    let (m, kdim, n, count) = (a.rows(), a.cols(), b.cols(), a.count());
    assert_eq!(b.rows(), kdim);
    assert_eq!(b.count(), count);
    let ew = T::WORDS;
    let c = MatBatch::<T>::zeros(m, n, count);
    let total_words = (a.words_per_mat() + b.words_per_mat() + c.words_per_mat()) * count;
    let mut gmem = GlobalMemory::new(total_words + 4096);
    let pa = a.to_device(&mut gmem);
    let pb = b.to_device(&mut gmem);
    let pc = c.to_device(&mut gmem);

    let plan = block_plan(m.max(n), n.min(m), 0, ew);
    let lm = LayoutMap::new(Layout::TwoDCyclic, plan.threads, m, n);
    let kern = GemmBlockKernel::<T::Dev> {
        a: SubMat::whole(pa, m, kdim),
        b: SubMat::whole(pb, kdim, n),
        c: SubMat::whole(pc, m, n),
        lm,
        kdim,
        count,
        accumulate: false,
        _e: PhantomData,
    };
    let lc = LaunchConfig::new(count, lm.p)
        .regs(lm.local_len() * ew + 14)
        .shared_words(kern.shared_words())
        .math(opts.math)
        .exec(opts.exec)
        .host_threads(opts.host_threads);
    let mut stats = MultiLaunch::default();
    stats.push(gpu.launch(&kern, &lc, &mut gmem));
    let out = MatBatch::<T>::from_device(m, n, count, &gmem, pc);
    BatchRun {
        out,
        approach: Approach::PerBlock,
        stats,
        taus: None,
        not_solved: Vec::new(),
    }
}

/// Batched least squares via TSQR (communication-avoiding tall-skinny QR;
/// extension — see `tiled::tsqr`): factors the row blocks independently
/// and combines R factors in a tree, then back-substitutes on the host.
/// Preferred over the sequential tiled path when the batch is too small
/// to fill the chip.
pub fn tsqr_least_squares<T: DeviceScalar>(
    gpu: &Gpu,
    a: &MatBatch<T>,
    b: &MatBatch<T>,
    opts: &RunOpts,
) -> (MatBatch<T>, crate::tiled::MultiLaunch) {
    use crate::tiled::tsqr::{tsqr, TsqrOpts};
    let (m, n, count) = (a.rows(), a.cols(), a.count());
    assert!(m >= n);
    assert_eq!(b.cols(), 1);
    let aug = MatBatch::augment(a, b);
    // TSQR roughly triples the footprint (stages + scratch).
    let mut gmem = device_for(&aug, 4 * aug.words_per_mat() * count);
    let ptr = aug.to_device(&mut gmem);
    let view = SubMat::whole(ptr, m, n + 1);
    let topts = TsqrOpts {
        math: opts.math,
        exec: opts.exec,
        host_threads: opts.host_threads,
        ..Default::default()
    };
    let (rptr, stats) = tsqr::<T::Dev>(gpu, &mut gmem, view, m, n, 1, count, topts);
    let compact = MatBatch::<T>::from_device(n, n + 1, count, &gmem, rptr);
    let mut x = MatBatch::zeros(n, 1, count);
    for k in 0..count {
        let f = compact.mat(k);
        let y: Vec<T> = (0..n).map(|i| f[(i, n)]).collect();
        let sol = crate::host::qr::back_substitute(&f.submatrix(0, 0, n, n), &y);
        for (i, v) in sol.into_iter().enumerate() {
            x.set(k, i, 0, v);
        }
    }
    (x, stats)
}

/// Batched Cholesky factorization of SPD / Hermitian-positive-definite
/// matrices (extension beyond the paper's four algorithms): L overwrites
/// the lower triangle; `not_solved[k]` is set when problem k is not
/// positive definite.
pub fn cholesky_batch<T: DeviceScalar>(
    gpu: &Gpu,
    a: &MatBatch<T>,
    opts: &RunOpts,
) -> BatchRun<T> {
    assert_eq!(a.rows(), a.cols());
    let approach = match choose_approach(a.rows(), a.cols(), 0, T::WORDS, opts) {
        Approach::Tiled => Approach::PerBlock,
        other => other,
    };
    let r = run_inplace(gpu, a, a.cols(), PtAlg::Cholesky, approach, opts, false);
    BatchRun {
        out: r.out,
        approach,
        stats: r.stats,
        taus: None,
        not_solved: r.flags,
    }
}

/// Batched matrix inversion by Gauss-Jordan reduction of `[A | I]`
/// (no pivoting; intended for diagonally dominant / well-conditioned
/// batches, like the paper's solver benchmarks). Returns the inverses.
pub fn invert_batch<T: DeviceScalar>(
    gpu: &Gpu,
    a: &MatBatch<T>,
    opts: &RunOpts,
) -> (MatBatch<T>, BatchRun<T>) {
    let n = a.rows();
    assert_eq!(a.cols(), n);
    let eye = MatBatch::from_fn(n, n, a.count(), |_, i, j| {
        if i == j {
            T::one()
        } else {
            T::zero()
        }
    });
    let run = gj_solve_multi(gpu, a, &eye, opts);
    let inv = run.out.sub(0, n, n, n);
    (inv, run)
}

/// Batched QR solve with multiple right-hand sides: factor `[A | B]`
/// carrying every column of B, then back-substitute each one.
pub fn qr_solve_multi<T: DeviceScalar>(
    gpu: &Gpu,
    a: &MatBatch<T>,
    b: &MatBatch<T>,
    opts: &RunOpts,
) -> BatchRun<T> {
    assert_eq!(a.rows(), a.cols());
    assert_eq!(b.rows(), a.rows());
    let aug = MatBatch::augment(a, b);
    let approach = match choose_approach(a.rows(), a.cols(), b.cols(), T::WORDS, opts) {
        Approach::Tiled | Approach::PerThread => Approach::PerBlock,
        other => other,
    };
    let r = run_inplace(gpu, &aug, a.cols(), PtAlg::QrSolve, approach, opts, true);
    BatchRun {
        out: r.out,
        approach,
        stats: r.stats,
        taus: None,
        not_solved: r.flags,
    }
}

/// Batched Gauss-Jordan with multiple right-hand sides: reduces
/// `[A | B]` so the trailing columns hold `A^-1 B`.
pub fn gj_solve_multi<T: DeviceScalar>(
    gpu: &Gpu,
    a: &MatBatch<T>,
    b: &MatBatch<T>,
    opts: &RunOpts,
) -> BatchRun<T> {
    assert_eq!(a.rows(), a.cols());
    assert_eq!(b.rows(), a.rows());
    let aug = MatBatch::augment(a, b);
    // Multi-rhs problems are wider; the per-thread path rarely fits.
    let approach = match choose_approach(a.rows(), a.cols(), b.cols(), T::WORDS, opts) {
        Approach::Tiled => Approach::PerBlock,
        other => other,
    };
    let r = run_inplace(gpu, &aug, a.cols(), PtAlg::Gj, approach, opts, false);
    BatchRun {
        out: r.out,
        approach,
        stats: r.stats,
        taus: None,
        not_solved: r.flags,
    }
}
