//! Public batched API: upload a batch, pick an approach (per-thread,
//! per-block or tiled — via the predictive model's plan rules), launch the
//! kernel on the simulated GPU, download the results.
//!
//! Every entry point returns `Result<_, ReglaError>`: malformed shapes and
//! options are reported as values, never as panics. Each problem in the
//! batch gets a [`ProblemStatus`] verdict, and when the simulator's fault
//! campaign corrupts a block (or a result comes back non-finite) the
//! bounded [`RecoveryPolicy`] re-runs the failed subset on the device and
//! finally degrades it to the host baseline.

use crate::batch::MatBatch;
use crate::elem::DeviceScalar;
use crate::error::ReglaError;
use crate::host;
use crate::layout::{Layout, LayoutMap};
use crate::per_block::{
    CholeskyBlockKernel, GemmBlockKernel, GjBlockKernel, LuBlockKernel, QrBlockKernel, SubMat,
};
use crate::per_thread::{PerThreadKernel, PtAlg};
use crate::scalar::Scalar;
use crate::profile::ProfileReport;
use crate::status::{ProblemStatus, RecoveryPolicy, RecoveryStats};
use crate::tiled::{tiled_qr, MultiLaunch};
use regla_gpu_sim::{
    ExecMode, FaultPlan, GlobalMemory, GpuConfig, Gpu, LaunchConfig, MathMode, Profiler,
    SanitizerMode, SanitizerReport,
};
use regla_model::{block_plan, Algorithm, Approach, ModelParams, Plan, PlanKey, Planner};
use std::marker::PhantomData;

/// Options controlling a batched run.
///
/// Construct with [`RunOpts::default()`] plus field mutation inside this
/// crate, or — from anywhere — with the fluent [`RunOpts::builder()`]. The
/// struct is `#[non_exhaustive]`, so downstream code uses the builder (new
/// options stop being breaking changes).
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct RunOpts {
    /// Complete dispatch-[`Plan`] override: when set, neither the planner
    /// nor any forced knob below is consulted — the plan is dispatched
    /// verbatim (highest precedence).
    pub plan: Option<Plan>,
    /// How a dispatch plan is produced when `plan` is unset: the paper's
    /// hand rules (default, bit-identical to the pre-planner dispatch),
    /// the predictive model, or a tuned decision table from `regla-tune`.
    pub planner: Planner,
    /// Force the register-file data layout for the per-block kernels;
    /// `None` defers to the planner's plan.
    pub layout: Option<Layout>,
    pub math: MathMode,
    pub exec: ExecMode,
    /// Force an approach instead of letting the planner choose.
    pub approach: Option<Approach>,
    /// Force the panel width for the tiled path; `None` defers to the
    /// planner's plan (default 16, the paper's choice).
    pub panel: Option<usize>,
    /// Use tree reductions in the per-block QR (ablation; the paper uses
    /// serial reductions).
    pub tree_reduction: bool,
    /// Follow Listing 7 literally in the LU trailing update (fidelity
    /// ablation; slower).
    pub lu_listing7: bool,
    /// Force the per-block thread count (must be a perfect square for the
    /// 2D layout); `None` uses the paper's 64/256 rule. Occupancy ablation.
    pub force_threads: Option<usize>,
    /// Host worker threads for the simulator's functional replay; `None`
    /// defers to `REGLA_SIM_THREADS` and then to available parallelism.
    /// Purely a host-side knob — simulated results are bit-identical at
    /// every thread count.
    pub host_threads: Option<usize>,
    /// Seeded fault-injection plan for resilience campaigns: applied to
    /// the factorization/solve launches (not to GEMM or TSQR). Faults the
    /// simulator reports are surfaced as [`ProblemStatus::FaultDetected`]
    /// and handled by `recovery`.
    pub fault: Option<FaultPlan>,
    /// Bounded recovery for fault-tainted / non-finite problems.
    pub recovery: RecoveryPolicy,
    /// Per-launch trace sink: when set, every kernel launch of the run
    /// records a hierarchical trace (launch → wave → phase) into the
    /// profiler, and [`BatchRun::profile`] carries the per-phase
    /// predicted-vs-simulated discrepancy report.
    pub trace: Option<Profiler>,
    /// Compute-sanitizer mode for every kernel launch of the run
    /// (memcheck / racecheck / synccheck / initcheck). Strictly
    /// observational — outputs are bit-identical with it on or off; the
    /// merged report lands in [`BatchRun::sanitizer`].
    pub sanitizer: SanitizerMode,
    /// Per-block watchdog op budget for every launch (`None` = unlimited):
    /// a hung kernel surfaces as `LaunchError::Watchdog` instead of
    /// hanging the host.
    pub watchdog: Option<u64>,
    /// Force the simulator's fully-instrumented slow path even when no
    /// observer (trace / sanitizer / fault plan / watchdog) is attached.
    /// Results, statuses and modeled cycles are bit-identical either way;
    /// this is an A/B knob for validating exactly that.
    pub slow_path: bool,
    /// Simulated-cycle budget applied to every kernel launch of the run
    /// (`None` = unlimited): a launch whose modeled duration exceeds it
    /// fails with `LaunchError::DeadlineExceeded`. The fleet layer derives
    /// this from the predictive model's estimate × a slack factor.
    pub deadline_cycles: Option<u64>,
    /// Extra simulated cycles injected into every launch of the run (a
    /// chaos knob modeling a stalled stream). Functional results are
    /// unaffected; only modeled timing moves.
    pub stall_cycles: u64,
    /// Target row-block height of the TSQR first stage (`0` resolves it
    /// per matrix: twice the column count).
    pub tsqr_block_rows: usize,
    /// Algorithm-based result verification ([`crate::verify`]): checksum
    /// and/or residual screens run on the host after each launch.
    /// Strictly observational — outputs are bit-identical on or off —
    /// but finite-looking silent corruption is demoted from `Ok` to
    /// [`ProblemStatus::VerifyFailed`] and recovered by `recovery`.
    pub verify: crate::verify::VerifyMode,
}

impl Default for RunOpts {
    fn default() -> Self {
        RunOpts {
            plan: None,
            planner: Planner::Heuristic,
            layout: None,
            math: MathMode::Fast,
            exec: ExecMode::Full,
            approach: None,
            panel: None,
            tree_reduction: false,
            lu_listing7: false,
            force_threads: None,
            host_threads: None,
            fault: None,
            recovery: RecoveryPolicy::default(),
            trace: None,
            sanitizer: SanitizerMode::Off,
            watchdog: None,
            slow_path: false,
            deadline_cycles: None,
            stall_cycles: 0,
            tsqr_block_rows: 0,
            verify: crate::verify::VerifyMode::Off,
        }
    }
}

impl RunOpts {
    /// Start building run options fluently: the only way (outside this
    /// crate) to construct a non-default [`RunOpts`].
    pub fn builder() -> RunOptsBuilder {
        RunOptsBuilder::default()
    }

    /// Apply the observability and execution knobs every launch of a run
    /// shares — math mode, exec mode, host threads, trace sink, sanitizer,
    /// watchdog, slow path — to a launch config. This is the single place
    /// the observability config fans out to launches; call sites chain the
    /// path-specific extras (fault plan, deadline, stall) on top.
    pub(crate) fn apply_observability(&self, lc: LaunchConfig) -> LaunchConfig {
        lc.math(self.math)
            .exec(self.exec)
            .host_threads(self.host_threads)
            .trace(self.trace.clone())
            .sanitizer(self.sanitizer)
            .watchdog(self.watchdog)
            .slow_path(self.slow_path)
    }
}

/// Fluent builder for [`RunOpts`].
///
/// [`RunOptsBuilder::build`] validates the dispatch knobs (panel width,
/// forced thread counts, explicit plans) and reports bad combinations as
/// [`ReglaError::InvalidConfig`] — before any batch is uploaded.
///
/// ```
/// use regla_core::RunOpts;
/// use regla_gpu_sim::ExecMode;
///
/// let opts = RunOpts::builder()
///     .exec(ExecMode::Representative)
///     .panel(8)
///     .build()
///     .unwrap();
/// assert_eq!(opts.panel, Some(8));
/// assert!(RunOpts::builder().panel(0).build().is_err());
/// ```
#[derive(Clone, Debug, Default)]
pub struct RunOptsBuilder {
    opts: RunOpts,
}

impl RunOptsBuilder {
    /// Dispatch this exact [`Plan`] — skip the planner and every forced
    /// knob. The old per-knob setters (`approach`, `layout`, `panel`,
    /// `force_threads`) remain for targeted overrides of a *planned*
    /// dispatch; precedence is `plan` > forced knobs > planner.
    pub fn plan(mut self, v: impl Into<Option<Plan>>) -> Self {
        self.opts.plan = v.into();
        self
    }

    /// Select how dispatch plans are produced (see [`Planner`]).
    pub fn planner(mut self, v: Planner) -> Self {
        self.opts.planner = v;
        self
    }

    /// Force the register-file data layout for the per-block kernels.
    pub fn layout(mut self, v: impl Into<Option<Layout>>) -> Self {
        self.opts.layout = v.into();
        self
    }

    pub fn math(mut self, v: MathMode) -> Self {
        self.opts.math = v;
        self
    }

    pub fn exec(mut self, v: ExecMode) -> Self {
        self.opts.exec = v;
        self
    }

    /// Force an approach instead of letting the plan choose.
    pub fn approach(mut self, v: impl Into<Option<Approach>>) -> Self {
        self.opts.approach = v.into();
        self
    }

    /// Force the panel width for the tiled path.
    pub fn panel(mut self, v: impl Into<Option<usize>>) -> Self {
        self.opts.panel = v.into();
        self
    }

    /// Use tree reductions in the per-block QR (ablation).
    pub fn tree_reduction(mut self, v: bool) -> Self {
        self.opts.tree_reduction = v;
        self
    }

    /// Follow Listing 7 literally in the LU trailing update (ablation).
    pub fn lu_listing7(mut self, v: bool) -> Self {
        self.opts.lu_listing7 = v;
        self
    }

    /// Force the per-block thread count (occupancy ablation).
    pub fn force_threads(mut self, v: impl Into<Option<usize>>) -> Self {
        self.opts.force_threads = v.into();
        self
    }

    /// Host worker threads for the simulator's functional replay.
    pub fn host_threads(mut self, v: impl Into<Option<usize>>) -> Self {
        self.opts.host_threads = v.into();
        self
    }

    /// Seeded fault-injection plan for resilience campaigns.
    pub fn fault(mut self, v: impl Into<Option<FaultPlan>>) -> Self {
        self.opts.fault = v.into();
        self
    }

    /// Bounded recovery for fault-tainted / non-finite problems.
    pub fn recovery(mut self, v: RecoveryPolicy) -> Self {
        self.opts.recovery = v;
        self
    }

    /// Attach a per-launch trace sink (see [`RunOpts::trace`]).
    pub fn trace(mut self, v: impl Into<Option<Profiler>>) -> Self {
        self.opts.trace = v.into();
        self
    }

    /// Run every launch under the compute sanitizer (see
    /// [`RunOpts::sanitizer`]).
    pub fn sanitizer(mut self, v: SanitizerMode) -> Self {
        self.opts.sanitizer = v;
        self
    }

    /// Per-block watchdog op budget (see [`RunOpts::watchdog`]).
    pub fn watchdog(mut self, v: impl Into<Option<u64>>) -> Self {
        self.opts.watchdog = v.into();
        self
    }

    /// Force the instrumented slow path (see [`RunOpts::slow_path`]).
    pub fn slow_path(mut self, v: bool) -> Self {
        self.opts.slow_path = v;
        self
    }

    /// Per-launch simulated-cycle deadline (see
    /// [`RunOpts::deadline_cycles`]).
    pub fn deadline_cycles(mut self, v: impl Into<Option<u64>>) -> Self {
        self.opts.deadline_cycles = v.into();
        self
    }

    /// Inject a stream stall into every launch (see
    /// [`RunOpts::stall_cycles`]).
    pub fn stall_cycles(mut self, v: u64) -> Self {
        self.opts.stall_cycles = v;
        self
    }

    /// Target TSQR first-stage row-block height (see
    /// [`RunOpts::tsqr_block_rows`]).
    pub fn tsqr_block_rows(mut self, v: usize) -> Self {
        self.opts.tsqr_block_rows = v;
        self
    }

    /// Algorithm-based result verification (see [`RunOpts::verify`]).
    pub fn verify(mut self, v: crate::verify::VerifyMode) -> Self {
        self.opts.verify = v;
        self
    }

    /// Validate the dispatch knobs and produce the [`RunOpts`].
    pub fn build(self) -> Result<RunOpts, ReglaError> {
        validate_opts(&self.opts)?;
        Ok(self.opts)
    }
}

/// Result of a batched operation.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct BatchRun<T> {
    /// The output batch (factored matrices / reduced augmented systems).
    pub out: MatBatch<T>,
    pub approach: Approach,
    pub stats: MultiLaunch,
    /// Householder reflector scales (QR factorizations only; `n x 1` per
    /// problem, LAPACK `geqrf` convention).
    pub taus: Option<MatBatch<T>>,
    /// Per-problem verdict (the paper's `*notsolved` flag, upgraded to a
    /// structured status), one entry per problem in every algorithm.
    pub status: Vec<ProblemStatus>,
    /// What the recovery layer did for this run.
    pub recovery: RecoveryStats,
    /// Per-phase predicted-vs-simulated discrepancy, populated when
    /// [`RunOpts::trace`] is set and the model has a phase-level prediction
    /// for the launch (per-block and per-thread approaches).
    pub profile: Option<ProfileReport>,
    /// Merged compute-sanitizer report over every launch of the run,
    /// populated when [`RunOpts::sanitizer`] is on. `Some` with zero
    /// findings means every kernel came back clean.
    pub sanitizer: Option<SanitizerReport>,
}

impl<T> BatchRun<T> {
    pub fn gflops(&self) -> f64 {
        self.stats.gflops()
    }

    pub fn time_s(&self) -> f64 {
        self.stats.time_s
    }

    /// Per-problem "not solved" flags (the paper's `*notsolved = 1`):
    /// true when the problem did not complete cleanly — singular pivot,
    /// non-finite result, or an unrecovered fault.
    pub fn not_solved(&self) -> Vec<bool> {
        self.status.iter().map(|s| !s.is_ok()).collect()
    }
}

/// Resolve the dispatch plan for one batched operation: the explicit
/// [`RunOpts::plan`] when set; otherwise the [`Planner`]'s plan for the
/// problem's [`PlanKey`], with any forced knob (`approach`, `layout`,
/// `panel`, `force_threads`) overriding the corresponding planned field.
///
/// The approach choice and the per-block layout mapping are thin consumers
/// of the plan this returns — every layer (core entry points, fleet,
/// serve, bench) dispatches through it.
#[allow(clippy::too_many_arguments)]
pub(crate) fn resolve_plan(
    params: &ModelParams,
    cfg: &GpuConfig,
    alg: Algorithm,
    m: usize,
    n: usize,
    rhs: usize,
    ew: usize,
    batch: usize,
    opts: &RunOpts,
) -> Plan {
    if let Some(p) = opts.plan {
        return p;
    }
    let key = PlanKey::new(alg, m, n, rhs, ew, batch, opts.math);
    let mut plan = opts.planner.plan(params, cfg, &key);
    if let Some(a) = opts.approach {
        plan.approach = a;
    }
    if let Some(l) = opts.layout {
        plan.layout = l;
    }
    if let Some(ft) = opts.force_threads {
        plan.threads = Some(ft);
    }
    if let Some(pw) = opts.panel {
        plan.panel = pw;
    }
    plan
}

/// Require a positive perfect-square thread count for 2D-cyclic plans
/// (the float `sqrt().round()` round-trip misreports perfect squares once
/// the count exceeds 2^52, hence `isqrt`).
fn validate_square_threads(ft: usize, what: &str) -> Result<(), ReglaError> {
    if ft == 0 {
        return Err(ReglaError::InvalidConfig(format!("{what} must be >= 1")));
    }
    let r = ft.isqrt();
    if r * r != ft {
        return Err(ReglaError::InvalidConfig(format!(
            "{what} = {ft} must be a perfect square for the 2D cyclic layout"
        )));
    }
    Ok(())
}

/// Reject option combinations that the kernels cannot run. This is the
/// validation [`RunOptsBuilder::build`] applies up front; the entry points
/// re-run it as a cheap guard for options assembled by direct field
/// mutation inside the workspace.
fn validate_opts(opts: &RunOpts) -> Result<(), ReglaError> {
    if let Some(ft) = opts.force_threads {
        if ft == 0 {
            return Err(ReglaError::InvalidConfig(
                "force_threads must be >= 1".into(),
            ));
        }
        // An unset layout resolves to the planner's choice, which is
        // 2D cyclic for every shipped planner — so it must satisfy the
        // stricter (square) requirement too.
        if opts.layout.unwrap_or_default() == Layout::TwoDCyclic {
            validate_square_threads(ft, "force_threads")?;
        }
    }
    if opts.panel == Some(0) {
        return Err(ReglaError::InvalidConfig(
            "panel width must be >= 1 on the tiled path".into(),
        ));
    }
    if let Some(p) = &opts.plan {
        if p.panel == 0 {
            return Err(ReglaError::InvalidConfig(
                "plan panel width must be >= 1 on the tiled path".into(),
            ));
        }
        if p.layout == Layout::TwoDCyclic {
            if let Some(t) = p.threads {
                validate_square_threads(t, "plan threads")?;
            }
        }
    }
    Ok(())
}

fn validate_batch<T: Scalar>(a: &MatBatch<T>) -> Result<(), ReglaError> {
    if a.count() == 0 {
        return Err(ReglaError::EmptyBatch);
    }
    if a.rows() == 0 || a.cols() == 0 {
        return Err(ReglaError::DimensionMismatch(
            "matrices must have at least one row and one column".into(),
        ));
    }
    Ok(())
}

/// Check that `b` can be carried as right-hand sides of `a`.
fn validate_rhs<T: Scalar>(a: &MatBatch<T>, b: &MatBatch<T>) -> Result<(), ReglaError> {
    if b.rows() != a.rows() {
        return Err(ReglaError::DimensionMismatch(format!(
            "rhs has {} rows but the systems have {}",
            b.rows(),
            a.rows()
        )));
    }
    if b.count() != a.count() {
        return Err(ReglaError::DimensionMismatch(format!(
            "rhs batch holds {} problems but the system batch holds {}",
            b.count(),
            a.count()
        )));
    }
    if b.cols() == 0 {
        return Err(ReglaError::DimensionMismatch(
            "rhs must have at least one column".into(),
        ));
    }
    Ok(())
}

fn validate_square<T: Scalar>(a: &MatBatch<T>) -> Result<(), ReglaError> {
    if a.rows() != a.cols() {
        return Err(ReglaError::DimensionMismatch(format!(
            "expected square systems, got {} x {}",
            a.rows(),
            a.cols()
        )));
    }
    Ok(())
}

/// Threads and layout map for a per-block launch under the resolved plan:
/// the plan's forced thread count, or the 64/256 rule applied directly to
/// the full augmented shape (which may be wider than tall). The 1D
/// comparisons of Figure 7 run with the paper's 64 threads.
fn layout_for(plan: &Plan, m: usize, cols: usize, ew: usize) -> LayoutMap {
    LayoutMap::new(plan.layout, plan.block_threads_for(m, cols, ew), m, cols)
}

fn device_for<T: DeviceScalar>(batch: &MatBatch<T>, extra_words: usize) -> GlobalMemory {
    let words = batch.words_per_mat() * batch.count() + extra_words + 4096;
    GlobalMemory::new(words)
}

/// Per-thread kernels pack `tpb` problems into each block.
const PER_THREAD_TPB: usize = 64;

/// The model-side algorithm for a kernel algorithm (the two enums exist at
/// different layers; the mapping is 1:1 plus the solve variant).
fn model_alg(alg: PtAlg) -> Algorithm {
    match alg {
        PtAlg::Lu => Algorithm::Lu,
        PtAlg::Gj => Algorithm::GaussJordan,
        PtAlg::Cholesky => Algorithm::Cholesky,
        PtAlg::Qr => Algorithm::Qr,
        PtAlg::QrSolve => Algorithm::QrSolve,
    }
}

/// Short kernel-name prefix for launch traces.
fn alg_label(alg: PtAlg) -> &'static str {
    match alg {
        PtAlg::Lu => "lu",
        PtAlg::Gj => "gauss-jordan",
        PtAlg::Cholesky => "cholesky",
        PtAlg::Qr => "qr",
        PtAlg::QrSolve => "qr-solve",
    }
}

/// FNV-1a fold of a few integers into a schedule-cache kernel id.
fn fnv1a(seed: u64, words: &[u64]) -> u64 {
    let mut h = seed ^ 0xcbf2_9ce4_8422_2325;
    for &w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

/// Fold a digest of the traced block's input problems into a schedule-cache
/// key. The solver kernels branch on their data (zero-pivot and
/// non-positive-definite early exits), so launches may only share a cached
/// schedule when block 0 sees bit-identical inputs; hashing the raw f32
/// bits is the conservative way to guarantee that.
fn traced_input_digest<T: DeviceScalar>(seed: u64, aug: &MatBatch<T>, nprobs: usize) -> u64 {
    let take = aug.elems_per_mat() * nprobs.min(aug.count());
    let mut h = seed ^ 0xcbf2_9ce4_8422_2325;
    for x in &aug.data()[..take] {
        let w = x.to_words();
        for &f in &w[..T::WORDS] {
            h ^= f.to_bits() as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

/// Trace name for a launch: `"qr 56x57 per-block"`.
fn launch_name(alg: PtAlg, m: usize, cols: usize, approach: Approach) -> String {
    let ap = match approach {
        Approach::PerThread => "per-thread",
        Approach::PerBlock => "per-block",
        Approach::Tiled => "tiled",
        Approach::Hybrid => "hybrid",
    };
    format!("{} {m}x{cols} {ap}", alg_label(alg))
}

struct Launched<T> {
    out: MatBatch<T>,
    stats: MultiLaunch,
    taus: Option<MatBatch<T>>,
    status: Vec<ProblemStatus>,
    profile: Option<ProfileReport>,
}

/// All words of problem `k` (and its taus, if any) are finite.
pub(crate) fn problem_is_finite<T: DeviceScalar>(
    out: &MatBatch<T>,
    taus: Option<&MatBatch<T>>,
    k: usize,
) -> bool {
    let finite = |b: &MatBatch<T>| {
        (0..b.cols()).all(|j| {
            (0..b.rows()).all(|i| {
                let w = b.get(k, i, j).to_words();
                w[0].is_finite() && w[1].is_finite()
            })
        })
    };
    finite(out) && taus.is_none_or(finite)
}

/// Run one of the in-place factorization kernels over a batch (single
/// attempt — recovery happens in [`run_recovered`]).
fn run_inplace<T: DeviceScalar>(
    gpu: &Gpu,
    aug: &MatBatch<T>,
    nfac: usize,
    alg: PtAlg,
    plan: Plan,
    opts: &RunOpts,
    back_substitute: bool,
) -> Result<Launched<T>, ReglaError> {
    let approach = plan.approach;
    let (m, cols, count) = (aug.rows(), aug.cols(), aug.count());
    let rhs = cols - nfac;
    let ew = T::WORDS;
    let tau_words = count * nfac * ew;
    let mut gmem = device_for(aug, tau_words + count);
    let ptr = aug.to_device(&mut gmem);
    let d_tau = gmem.alloc(tau_words.max(1));
    let d_flag = gmem.alloc(count);
    // The kernels read the flag words (to keep earlier failing columns)
    // before ever writing them: declare the all-clear state as an input.
    gmem.h2d(d_flag, &vec![0.0; count]);
    let view = SubMat::whole(ptr, m, cols);
    let mut stats = MultiLaunch::default();

    match approach {
        Approach::PerThread => {
            if m != nfac {
                return Err(ReglaError::DimensionMismatch(format!(
                    "the per-thread kernels handle square systems, got {m} rows for {nfac} factored columns"
                )));
            }
            let mut kern =
                PerThreadKernel::<T::Dev>::new(view, nfac, rhs, count, alg).with_flag(d_flag);
            if alg == PtAlg::Qr {
                kern = kern.with_tau(d_tau);
            }
            let tpb = PER_THREAD_TPB;
            // Schedule-cache id: algorithm + shape, plus a digest of the
            // problems block 0 computes (its `tpb` threads each factor one).
            let key = traced_input_digest(
                fnv1a(0x01, &[alg as u64, m as u64, cols as u64, ew as u64]),
                aug,
                tpb,
            );
            let lc = opts
                .apply_observability(
                    LaunchConfig::new(count.div_ceil(tpb), tpb)
                        .regs(kern.regs_per_thread())
                        .shared_words(0),
                )
                .fault(opts.fault)
                .name(launch_name(alg, m, cols, approach))
                .deadline_cycles(opts.deadline_cycles)
                .stall_cycles(opts.stall_cycles)
                .schedule_key(key);
            stats.push(gpu.launch(&kern, &lc, &mut gmem)?);
        }
        Approach::PerBlock => {
            let lm = layout_for(&plan, m, cols, ew);
            let regs = lm.local_len() * ew + 14;
            let (shared_words, launch): (usize, Box<dyn regla_gpu_sim::BlockKernel + Sync>) = match alg
            {
                PtAlg::Lu => {
                    let mut k = LuBlockKernel::<T::Dev>::new(view, lm, count).with_flag(d_flag);
                    if opts.lu_listing7 {
                        k = k.listing7();
                    }
                    (k.shared_words(), Box::new(k))
                }
                PtAlg::Gj => {
                    let mut k = GjBlockKernel::<T::Dev>::new(view, lm, count, rhs);
                    k.d_flag = Some(d_flag);
                    (k.shared_words(), Box::new(k))
                }
                PtAlg::Cholesky => {
                    let mut k = CholeskyBlockKernel::<T::Dev>::new(view, lm, count);
                    k.d_flag = Some(d_flag);
                    (k.shared_words(), Box::new(k))
                }
                PtAlg::Qr | PtAlg::QrSolve => {
                    let mut k = QrBlockKernel::<T::Dev>::new(view, lm, count)
                        .with_rhs(rhs)
                        .with_tau(d_tau);
                    if back_substitute {
                        k = k.solving();
                    }
                    if opts.tree_reduction && plan.layout == Layout::TwoDCyclic {
                        k = k.with_tree_reduction();
                    }
                    (k.shared_words(), Box::new(k))
                }
            };
            // Schedule-cache id: algorithm + layout + shape + the kernel
            // ablation knobs that reshape phases, plus a digest of the one
            // problem the traced block computes.
            let key = traced_input_digest(
                fnv1a(
                    0x02,
                    &[
                        alg as u64,
                        m as u64,
                        cols as u64,
                        ew as u64,
                        plan.layout as u64,
                        u64::from(back_substitute)
                            | u64::from(opts.tree_reduction) << 1
                            | u64::from(opts.lu_listing7) << 2,
                    ],
                ),
                aug,
                1,
            );
            let lc = opts
                .apply_observability(LaunchConfig::new(count, lm.p).regs(regs).shared_words(shared_words))
                .fault(opts.fault)
                .name(launch_name(alg, m, cols, approach))
                .deadline_cycles(opts.deadline_cycles)
                .stall_cycles(opts.stall_cycles)
                .schedule_key(key);
            stats.push(gpu.launch(launch.as_ref(), &lc, &mut gmem)?);
        }
        Approach::Tiled => {
            if !matches!(alg, PtAlg::Qr | PtAlg::QrSolve) {
                return Err(ReglaError::Unsupported(format!(
                    "the tiled path implements QR-based algorithms only, not {alg:?}"
                )));
            }
            if m < nfac {
                return Err(ReglaError::DimensionMismatch(format!(
                    "tiled QR needs a tall system, got {m} rows for {nfac} factored columns"
                )));
            }
            let agg = tiled_qr::<T::Dev>(
                gpu, &mut gmem, view, m, nfac, rhs, count, d_tau, plan.panel, opts,
            )?;
            for l in agg.launches {
                stats.push(l);
            }
        }
        Approach::Hybrid => {
            return Err(ReglaError::Unsupported(
                "the hybrid baseline lives in regla-hybrid".into(),
            ))
        }
    }

    let out = MatBatch::<T>::from_device(m, cols, count, &gmem, ptr);
    // The per-thread and per-block QR kernels leave LAPACK-style taus in
    // the scratch buffer; the tiled path reuses it per panel, so no
    // coherent tau set survives there.
    let taus = if alg == PtAlg::Qr && approach != Approach::Tiled {
        Some(MatBatch::<T>::from_device(nfac, 1, count, &gmem, d_tau))
    } else {
        None
    };
    // Per-problem singularity flags (the paper's `*notsolved`, upgraded to
    // carry the first failing column as `col + 1`).
    let mut flag_words = vec![0.0f32; count];
    gmem.d2h(d_flag, &mut flag_words);

    // ---- per-problem verdicts ------------------------------------------
    // Block -> problem mapping: per-thread blocks cover `tpb` consecutive
    // problems, per-block and tiled launches map block b to problem b.
    let ppb = if approach == Approach::PerThread {
        PER_THREAD_TPB
    } else {
        1
    };
    let grid = count.div_ceil(ppb);
    let problems_of = |b: usize| (b * ppb)..((b + 1) * ppb).min(count);

    // Faults the simulator recorded (its ECC/machine-check report) taint
    // every problem the corrupted block computed — even when the flipped
    // bit produced a finite-looking value.
    let mut fault_problem = vec![false; count];
    for l in &stats.launches {
        for f in &l.faults {
            for p in problems_of(f.block) {
                fault_problem[p] = true;
            }
        }
    }
    // Under Sampled/Representative execution only some blocks computed
    // results; screening the others would flag stale input bytes.
    let mut executed = vec![false; count];
    for b in LaunchConfig::new(grid, 1).exec(opts.exec).executed_blocks() {
        for p in problems_of(b) {
            executed[p] = true;
        }
    }

    let mut status = vec![ProblemStatus::Ok; count];
    for p in 0..count {
        if fault_problem[p] {
            status[p] = ProblemStatus::FaultDetected;
        } else if flag_words[p] != 0.0 {
            status[p] = ProblemStatus::ZeroPivot {
                col: flag_words[p] as usize - 1,
            };
        } else if executed[p] && !problem_is_finite(&out, taus.as_ref(), p) {
            status[p] = ProblemStatus::NonFinite;
        }
    }

    // Checksum/residual screens over the problems that still look Ok —
    // running here (not in run_recovered) means retry sub-batches are
    // re-screened automatically, so a recovery pass cannot launder a
    // still-corrupt result back to Ok. The rhs columns hold a solution on
    // the solving paths (GJ always; QR when the kernel back-substituted —
    // the tiled path defers back-substitution to the host).
    let solved = (alg == PtAlg::Gj && rhs > 0)
        || (back_substitute && approach != Approach::Tiled);
    crate::verify::screen_problems(
        aug,
        nfac,
        alg,
        solved,
        &out,
        taus.as_ref(),
        &executed,
        &mut status,
        opts.verify,
    );

    Ok(Launched {
        out,
        stats,
        taus,
        status,
        profile: None,
    })
}

/// Recompute problem `p` with the host baseline and splice the result into
/// `out`/`taus`. Returns the problem's new status.
pub(crate) fn host_fallback<T: DeviceScalar>(
    aug: &MatBatch<T>,
    nfac: usize,
    alg: PtAlg,
    p: usize,
    out: &mut MatBatch<T>,
    taus: Option<&mut MatBatch<T>>,
) -> ProblemStatus {
    let cols = aug.cols();
    let mut a = aug.mat(p);
    let mut status = match alg {
        PtAlg::Lu => match host::lu::lu_nopivot_in_place(&mut a) {
            Ok(()) => ProblemStatus::Ok,
            Err(z) => ProblemStatus::ZeroPivot { col: z.column },
        },
        PtAlg::Gj => match host::gj::gj_reduce_in_place(&mut a) {
            Ok(()) => ProblemStatus::Ok,
            Err(z) => ProblemStatus::ZeroPivot { col: z.column },
        },
        PtAlg::Cholesky => match host::cholesky::cholesky_in_place(&mut a) {
            Ok(()) => ProblemStatus::Ok,
            Err(npd) => ProblemStatus::ZeroPivot { col: npd.column },
        },
        PtAlg::Qr => {
            let t = host::qr::householder_qr_cols_in_place(&mut a, nfac);
            if let Some(tb) = taus {
                for (i, v) in t.into_iter().enumerate().take(nfac) {
                    tb.set(p, i, 0, v);
                }
            }
            ProblemStatus::Ok
        }
        PtAlg::QrSolve => {
            host::qr::householder_qr_cols_in_place(&mut a, nfac);
            // Back-substitute every carried right-hand-side column, as the
            // device kernels' `solving` mode does.
            for rc in nfac..cols {
                let y: Vec<T> = (0..nfac).map(|i| a[(i, rc)]).collect();
                let x = host::qr::back_substitute(&a.submatrix(0, 0, nfac, nfac), &y);
                for (i, v) in x.into_iter().enumerate() {
                    a[(i, rc)] = v;
                }
            }
            ProblemStatus::Ok
        }
    };
    out.set_mat(p, &a);
    // The host baseline is subject to the same finite screen as the device.
    if status.is_ok() && !problem_is_finite(out, None, p) {
        status = ProblemStatus::NonFinite;
    }
    status
}

/// Run with bounded recovery: retry fault-tainted / non-finite problems on
/// the device (fault injection stripped), then degrade the stragglers to
/// the host baseline.
#[allow(clippy::too_many_arguments)]
fn run_recovered<T: DeviceScalar>(
    gpu: &Gpu,
    params: &ModelParams,
    aug: &MatBatch<T>,
    nfac: usize,
    alg: PtAlg,
    plan: Plan,
    opts: &RunOpts,
    back_substitute: bool,
) -> Result<(Launched<T>, RecoveryStats), ReglaError> {
    let approach = plan.approach;
    let trace_start = opts.trace.as_ref().map_or(0, |t| t.launch_count());
    let mut l = run_inplace(gpu, aug, nfac, alg, plan, opts, back_substitute)?;
    // Join the first launch this run recorded against the model's phase
    // estimates (retry launches repeat the same kernel; the first is the
    // representative one).
    l.profile = opts.trace.as_ref().and_then(|t| {
        let rhs = aug.cols() - nfac;
        t.launches().get(trace_start).and_then(|trace| {
            crate::profile::build_report(
                trace,
                params,
                model_alg(alg),
                approach,
                aug.rows(),
                nfac,
                rhs,
                T::WORDS,
                aug.count(),
            )
        })
    });
    let count = aug.count();
    let mut rec = RecoveryStats {
        faults_detected: l
            .status
            .iter()
            .filter(|s| matches!(s, ProblemStatus::FaultDetected))
            .count(),
        ..RecoveryStats::default()
    };
    let verify_failed: Vec<usize> = (0..count)
        .filter(|&p| matches!(l.status[p], ProblemStatus::VerifyFailed { .. }))
        .collect();
    rec.verify_failures = verify_failed.len();
    let initially_failed: Vec<usize> = (0..count).filter(|&p| !l.status[p].is_settled()).collect();
    let mut failed = initially_failed.clone();
    let policy = opts.recovery;

    for _round in 0..policy.retries {
        if failed.is_empty() {
            break;
        }
        rec.retried += failed.len();
        let mut sub = MatBatch::<T>::zeros(aug.rows(), aug.cols(), failed.len());
        for (i, &p) in failed.iter().enumerate() {
            sub.set_mat(i, &aug.mat(p));
        }
        // The retry runs clean: no fault plan, full execution (a sampled
        // replay of the sub-batch would recompute nothing).
        let mut ropts = opts.clone();
        ropts.fault = None;
        ropts.exec = ExecMode::Full;
        let r = run_inplace(gpu, &sub, nfac, alg, plan, &ropts, back_substitute)?;
        for (i, &p) in failed.iter().enumerate() {
            l.out.set_mat(p, &r.out.mat(i));
            if let (Some(dst), Some(src)) = (l.taus.as_mut(), r.taus.as_ref()) {
                dst.set_mat(p, &src.mat(i));
            }
            l.status[p] = r.status[i];
        }
        failed.retain(|&p| !l.status[p].is_settled());
    }

    if policy.cpu_fallback && !failed.is_empty() {
        for &p in &failed {
            rec.fell_back += 1;
            l.status[p] = host_fallback(aug, nfac, alg, p, &mut l.out, l.taus.as_mut());
        }
        failed.retain(|&p| !l.status[p].is_settled());
    }

    rec.recovered = initially_failed
        .iter()
        .filter(|&&p| l.status[p].is_settled())
        .count();
    rec.verify_recovered = verify_failed
        .iter()
        .filter(|&&p| l.status[p].is_settled())
        .count();
    rec.unrecovered = failed.len();
    l.stats.recovery = rec;
    Ok((l, rec))
}

/// Merge the per-launch sanitizer reports of a run (`None` when no launch
/// ran under the sanitizer).
pub(crate) fn merge_sanitizer(stats: &MultiLaunch) -> Option<SanitizerReport> {
    let mut agg: Option<SanitizerReport> = None;
    for l in &stats.launches {
        if let Some(r) = &l.sanitizer {
            match &mut agg {
                Some(a) => a.merge(r),
                None => agg = Some(r.clone()),
            }
        }
    }
    agg
}

fn into_run<T>(l: Launched<T>, rec: RecoveryStats, approach: Approach, taus: bool) -> BatchRun<T> {
    let sanitizer = merge_sanitizer(&l.stats);
    BatchRun {
        out: l.out,
        approach,
        stats: l.stats,
        taus: if taus { l.taus } else { None },
        status: l.status,
        recovery: rec,
        profile: l.profile,
        sanitizer,
    }
}

/// Batched in-place Householder QR — implementation behind
/// [`crate::Session::qr`].
pub(crate) fn qr_run<T: DeviceScalar>(
    gpu: &Gpu,
    params: &ModelParams,
    a: &MatBatch<T>,
    opts: &RunOpts,
) -> Result<BatchRun<T>, ReglaError> {
    validate_opts(opts)?;
    validate_batch(a)?;
    let plan = resolve_plan(
        params,
        &gpu.cfg,
        Algorithm::Qr,
        a.rows(),
        a.cols(),
        0,
        T::WORDS,
        a.count(),
        opts,
    );
    let (l, rec) = run_recovered(gpu, params, a, a.cols(), PtAlg::Qr, plan, opts, false)?;
    Ok(into_run(l, rec, plan.approach, true))
}

/// Batched in-place LU — implementation behind [`crate::Session::lu`].
pub(crate) fn lu_run<T: DeviceScalar>(
    gpu: &Gpu,
    params: &ModelParams,
    a: &MatBatch<T>,
    opts: &RunOpts,
) -> Result<BatchRun<T>, ReglaError> {
    validate_opts(opts)?;
    validate_batch(a)?;
    let mut plan = resolve_plan(
        params,
        &gpu.cfg,
        Algorithm::Lu,
        a.rows(),
        a.cols(),
        0,
        T::WORDS,
        a.count(),
        opts,
    );
    if plan.approach == Approach::Tiled {
        plan.approach = Approach::PerBlock; // large LU runs with spills
    }
    let (l, rec) = run_recovered(gpu, params, a, a.cols(), PtAlg::Lu, plan, opts, false)?;
    Ok(into_run(l, rec, plan.approach, false))
}

/// Implementation behind [`crate::Session::least_squares`].
pub(crate) fn least_squares_run<T: DeviceScalar>(
    gpu: &Gpu,
    params: &ModelParams,
    a: &MatBatch<T>,
    b: &MatBatch<T>,
    opts: &RunOpts,
) -> Result<(BatchRun<T>, MatBatch<T>), ReglaError> {
    validate_opts(opts)?;
    validate_batch(a)?;
    let (m, n) = (a.rows(), a.cols());
    if m < n {
        return Err(ReglaError::DimensionMismatch(format!(
            "least squares needs a tall system, got {m} x {n}"
        )));
    }
    validate_rhs(a, b)?;
    if b.cols() != 1 {
        return Err(ReglaError::DimensionMismatch(
            "least_squares takes a single right-hand side".into(),
        ));
    }
    let aug = MatBatch::augment(a, b);
    let mut plan = resolve_plan(
        params,
        &gpu.cfg,
        Algorithm::LeastSquares,
        m,
        n,
        1,
        T::WORDS,
        a.count(),
        opts,
    );
    match plan.approach {
        Approach::PerThread | Approach::PerBlock => {
            if m != n {
                plan.approach = Approach::PerBlock;
            }
            let (l, rec) = run_recovered(gpu, params, &aug, n, PtAlg::QrSolve, plan, opts, true)?;
            let x = l.out.sub(0, n, n, 1);
            Ok((into_run(l, rec, plan.approach, false), x))
        }
        _ => {
            plan.approach = Approach::Tiled;
            let (l, rec) = run_recovered(gpu, params, &aug, n, PtAlg::Qr, plan, opts, false)?;
            // Host back-substitution of R x = (Qᴴ b)[..n].
            let mut x = MatBatch::zeros(n, 1, aug.count());
            for k in 0..aug.count() {
                let f = l.out.mat(k);
                let y: Vec<T> = (0..n).map(|i| f[(i, n)]).collect();
                let sol = crate::host::qr::back_substitute(&f.submatrix(0, 0, n, n), &y);
                for (i, v) in sol.into_iter().enumerate() {
                    x.set(k, i, 0, v);
                }
            }
            Ok((into_run(l, rec, Approach::Tiled, false), x))
        }
    }
}

/// Implementation behind [`crate::Session::gemm`]. GEMM has no failure
/// modes of its own, so fault injection and recovery do not apply; the
/// statuses still screen for non-finite results from non-finite inputs.
pub(crate) fn gemm_run<T: DeviceScalar>(
    gpu: &Gpu,
    a: &MatBatch<T>,
    b: &MatBatch<T>,
    opts: &RunOpts,
) -> Result<BatchRun<T>, ReglaError> {
    validate_opts(opts)?;
    validate_batch(a)?;
    validate_batch(b)?;
    let (m, kdim, n, count) = (a.rows(), a.cols(), b.cols(), a.count());
    if b.rows() != kdim {
        return Err(ReglaError::DimensionMismatch(format!(
            "GEMM inner dimensions disagree: A is {m} x {kdim}, B is {} x {n}",
            b.rows()
        )));
    }
    if b.count() != count {
        return Err(ReglaError::DimensionMismatch(format!(
            "A batch holds {count} problems but B holds {}",
            b.count()
        )));
    }
    let ew = T::WORDS;
    let c = MatBatch::<T>::zeros(m, n, count);
    let total_words = (a.words_per_mat() + b.words_per_mat() + c.words_per_mat()) * count;
    let mut gmem = GlobalMemory::new(total_words + 4096);
    let pa = a.to_device(&mut gmem);
    let pb = b.to_device(&mut gmem);
    let pc = c.to_device(&mut gmem);

    let plan = block_plan(m.max(n), n.min(m), 0, ew);
    let lm = LayoutMap::new(Layout::TwoDCyclic, plan.threads, m, n);
    let kern = GemmBlockKernel::<T::Dev> {
        a: SubMat::whole(pa, m, kdim),
        b: SubMat::whole(pb, kdim, n),
        c: SubMat::whole(pc, m, n),
        lm,
        kdim,
        count,
        accumulate: false,
        _e: PhantomData,
    };
    // GEMM's control flow is data-independent, so shape alone identifies
    // its schedule — no input digest needed.
    let key = fnv1a(0x03, &[m as u64, kdim as u64, n as u64, ew as u64]);
    let lc = opts
        .apply_observability(
            LaunchConfig::new(count, lm.p)
                .regs(lm.local_len() * ew + 14)
                .shared_words(kern.shared_words()),
        )
        .name(format!("gemm {m}x{kdim}x{n} per-block"))
        .deadline_cycles(opts.deadline_cycles)
        .stall_cycles(opts.stall_cycles)
        .schedule_key(key);
    let mut stats = MultiLaunch::default();
    stats.push(gpu.launch(&kern, &lc, &mut gmem)?);
    let out = MatBatch::<T>::from_device(m, n, count, &gmem, pc);
    let mut status = vec![ProblemStatus::Ok; count];
    let mut executed = vec![false; count];
    for bk in LaunchConfig::new(count, 1).exec(opts.exec).executed_blocks() {
        executed[bk] = true;
    }
    for (p, st) in status.iter_mut().enumerate() {
        if executed[p] && !problem_is_finite(&out, None, p) {
            *st = ProblemStatus::NonFinite;
        }
    }
    let sanitizer = merge_sanitizer(&stats);
    Ok(BatchRun {
        out,
        approach: Approach::PerBlock,
        stats,
        taus: None,
        status,
        recovery: RecoveryStats::default(),
        profile: None,
        sanitizer,
    })
}

/// Implementation behind [`crate::Session::tsqr_least_squares`]
/// (communication-avoiding tall-skinny QR; extension — see `tiled::tsqr`):
/// factors the row blocks independently and combines R factors in a tree,
/// then back-substitutes on the host. Preferred over the sequential tiled
/// path when the batch is too small to fill the chip.
pub(crate) fn tsqr_run<T: DeviceScalar>(
    gpu: &Gpu,
    a: &MatBatch<T>,
    b: &MatBatch<T>,
    opts: &RunOpts,
) -> Result<(MatBatch<T>, crate::tiled::MultiLaunch), ReglaError> {
    use crate::tiled::tsqr::tsqr;
    validate_opts(opts)?;
    validate_batch(a)?;
    let (m, n, count) = (a.rows(), a.cols(), a.count());
    if m < n {
        return Err(ReglaError::DimensionMismatch(format!(
            "TSQR needs a tall system, got {m} x {n}"
        )));
    }
    validate_rhs(a, b)?;
    if b.cols() != 1 {
        return Err(ReglaError::DimensionMismatch(
            "tsqr_least_squares takes a single right-hand side".into(),
        ));
    }
    let aug = MatBatch::augment(a, b);
    // TSQR roughly triples the footprint (stages + scratch).
    let mut gmem = device_for(&aug, 4 * aug.words_per_mat() * count);
    let ptr = aug.to_device(&mut gmem);
    let view = SubMat::whole(ptr, m, n + 1);
    let (rptr, stats) = tsqr::<T::Dev>(gpu, &mut gmem, view, m, n, 1, count, opts)?;
    let compact = MatBatch::<T>::from_device(n, n + 1, count, &gmem, rptr);
    let mut x = MatBatch::zeros(n, 1, count);
    for k in 0..count {
        let f = compact.mat(k);
        let y: Vec<T> = (0..n).map(|i| f[(i, n)]).collect();
        let sol = crate::host::qr::back_substitute(&f.submatrix(0, 0, n, n), &y);
        for (i, v) in sol.into_iter().enumerate() {
            x.set(k, i, 0, v);
        }
    }
    Ok((x, stats))
}

/// Implementation behind [`crate::Session::cholesky`] (extension beyond
/// the paper's four algorithms): L overwrites the lower triangle;
/// `status[k]` reports `ZeroPivot` when problem k is not positive
/// definite.
pub(crate) fn cholesky_run<T: DeviceScalar>(
    gpu: &Gpu,
    params: &ModelParams,
    a: &MatBatch<T>,
    opts: &RunOpts,
) -> Result<BatchRun<T>, ReglaError> {
    validate_opts(opts)?;
    validate_batch(a)?;
    validate_square(a)?;
    let mut plan = resolve_plan(
        params,
        &gpu.cfg,
        Algorithm::Cholesky,
        a.rows(),
        a.cols(),
        0,
        T::WORDS,
        a.count(),
        opts,
    );
    if plan.approach == Approach::Tiled {
        plan.approach = Approach::PerBlock;
    }
    let (l, rec) = run_recovered(gpu, params, a, a.cols(), PtAlg::Cholesky, plan, opts, false)?;
    Ok(into_run(l, rec, plan.approach, false))
}

/// Implementation behind [`crate::Session::invert`]: batched matrix
/// inversion by Gauss-Jordan reduction of `[A | I]` (no pivoting; intended
/// for diagonally dominant / well-conditioned batches, like the paper's
/// solver benchmarks). Returns the inverses.
pub(crate) fn invert_run<T: DeviceScalar>(
    gpu: &Gpu,
    params: &ModelParams,
    a: &MatBatch<T>,
    opts: &RunOpts,
) -> Result<(MatBatch<T>, BatchRun<T>), ReglaError> {
    validate_opts(opts)?;
    validate_batch(a)?;
    validate_square(a)?;
    let n = a.rows();
    let eye = MatBatch::from_fn(n, n, a.count(), |_, i, j| {
        if i == j {
            T::one()
        } else {
            T::zero()
        }
    });
    let run = solve_multi_driver(gpu, params, a, &eye, opts, PtAlg::Gj, true, false)?;
    let inv = run.out.sub(0, n, n, n);
    Ok((inv, run))
}

/// Shared driver for the multi-right-hand-side solvers: validate, augment
/// `[A | B]`, pick an approach (never tiled — the augmented system is wide,
/// not tall), factor/reduce in place with recovery.
#[allow(clippy::too_many_arguments)]
pub(crate) fn solve_multi_driver<T: DeviceScalar>(
    gpu: &Gpu,
    params: &ModelParams,
    a: &MatBatch<T>,
    b: &MatBatch<T>,
    opts: &RunOpts,
    alg: PtAlg,
    allow_per_thread: bool,
    back_substitute: bool,
) -> Result<BatchRun<T>, ReglaError> {
    validate_opts(opts)?;
    validate_batch(a)?;
    validate_square(a)?;
    validate_rhs(a, b)?;
    let aug = MatBatch::augment(a, b);
    let mut plan = resolve_plan(
        params,
        &gpu.cfg,
        model_alg(alg),
        a.rows(),
        a.cols(),
        b.cols(),
        T::WORDS,
        a.count(),
        opts,
    );
    plan.approach = match plan.approach {
        Approach::Tiled => Approach::PerBlock,
        Approach::PerThread if !allow_per_thread => Approach::PerBlock,
        other => other,
    };
    let (l, rec) = run_recovered(gpu, params, &aug, a.cols(), alg, plan, opts, back_substitute)?;
    Ok(into_run(l, rec, plan.approach, false))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn forced(ft: usize) -> Result<RunOpts, ReglaError> {
        RunOpts::builder().force_threads(ft).build()
    }

    #[test]
    fn perfect_square_thread_counts_pass() {
        for ft in [1usize, 4, 16, 64, 144, 256, 1024] {
            assert!(forced(ft).is_ok(), "{ft} is a square");
        }
    }

    #[test]
    fn near_square_thread_counts_are_rejected_at_build_time() {
        // k^2 - 1 and k^2 + 1 must both fail for every k in range: the old
        // float sqrt().round() check accepted whichever side rounded to k.
        for k in 2usize..=64 {
            let sq = k * k;
            assert!(forced(sq).is_ok(), "{sq}");
            assert!(forced(sq - 1).is_err(), "{} = {k}^2 - 1", sq - 1);
            assert!(forced(sq + 1).is_err(), "{} = {k}^2 + 1", sq + 1);
        }
        assert!(matches!(
            forced(63),
            Err(ReglaError::InvalidConfig(msg)) if msg.contains("perfect square")
        ));
    }

    #[test]
    fn huge_thread_counts_use_exact_integer_sqrt() {
        // Beyond 2^52 the f64 round-trip loses integer precision; isqrt
        // stays exact. (These counts are rejected later by the device
        // limits, but the option validation must still be correct.)
        let k = (1usize << 31) - 1;
        let sq = k * k;
        assert!(forced(sq).is_ok());
        assert!(forced(sq - 1).is_err());
        assert!(forced(sq + 1).is_err());
    }

    #[test]
    fn zero_panel_is_rejected_at_build_time() {
        assert!(matches!(
            RunOpts::builder().panel(0).build(),
            Err(ReglaError::InvalidConfig(msg)) if msg.contains("panel")
        ));
        assert!(RunOpts::builder().panel(1).build().is_ok());
        // The same validation covers an explicit plan override.
        let bad = Plan::new(Approach::Tiled).with_panel(0);
        assert!(RunOpts::builder().plan(bad).build().is_err());
        let bad_threads = Plan::new(Approach::PerBlock).with_threads(63);
        assert!(RunOpts::builder().plan(bad_threads).build().is_err());
    }

    #[test]
    fn non_square_layouts_skip_the_square_check() {
        let opts = RunOpts::builder()
            .layout(Layout::RowCyclic)
            .force_threads(63)
            .build();
        assert!(opts.is_ok());
    }

    #[test]
    fn builder_round_trips_every_field() {
        let prof = Profiler::new();
        let opts = RunOpts::builder()
            .layout(Layout::TwoDCyclic)
            .math(MathMode::Precise)
            .exec(ExecMode::Representative)
            .approach(Approach::PerBlock)
            .panel(8)
            .tree_reduction(true)
            .lu_listing7(true)
            .force_threads(256)
            .host_threads(2)
            .recovery(RecoveryPolicy::default())
            .trace(prof.clone())
            .build()
            .unwrap();
        assert_eq!(opts.math, MathMode::Precise);
        assert_eq!(opts.exec, ExecMode::Representative);
        assert_eq!(opts.approach, Some(Approach::PerBlock));
        assert_eq!(opts.layout, Some(Layout::TwoDCyclic));
        assert_eq!(opts.panel, Some(8));
        assert!(opts.tree_reduction && opts.lu_listing7);
        assert_eq!(opts.force_threads, Some(256));
        assert_eq!(opts.host_threads, Some(2));
        assert!(opts.trace.is_some());
    }

    #[test]
    fn forced_knobs_override_the_planned_fields() {
        let params = ModelParams::table_iv();
        let cfg = GpuConfig::quadro_6000();
        let opts = RunOpts::builder()
            .approach(Approach::PerBlock)
            .layout(Layout::RowCyclic)
            .panel(4)
            .build()
            .unwrap();
        // 6x6 would plan per-thread; the forced knobs must win.
        let plan = resolve_plan(&params, &cfg, Algorithm::Lu, 6, 6, 0, 1, 1024, &opts);
        assert_eq!(plan.approach, Approach::PerBlock);
        assert_eq!(plan.layout, Layout::RowCyclic);
        assert_eq!(plan.panel, 4);
    }

    #[test]
    fn explicit_plan_outranks_forced_knobs_and_planner() {
        let params = ModelParams::table_iv();
        let cfg = GpuConfig::quadro_6000();
        let exact = Plan::new(Approach::Tiled).with_panel(8);
        let opts = RunOpts::builder()
            .approach(Approach::PerThread)
            .panel(32)
            .plan(exact)
            .build()
            .unwrap();
        let plan = resolve_plan(&params, &cfg, Algorithm::Qr, 240, 66, 0, 2, 128, &opts);
        assert_eq!(plan, exact, "the explicit plan is dispatched verbatim");
    }

    #[test]
    fn default_planner_matches_the_seed_heuristic() {
        let params = ModelParams::table_iv();
        let cfg = GpuConfig::quadro_6000();
        let opts = RunOpts::default();
        let cases = [
            (6, 6, 0, 1, Approach::PerThread),
            (56, 56, 0, 1, Approach::PerBlock),
            (56, 56, 1, 1, Approach::PerBlock),
            (240, 66, 0, 2, Approach::Tiled),
            (16, 32, 0, 1, Approach::Tiled),
        ];
        for (m, n, rhs, ew, want) in cases {
            let plan = resolve_plan(&params, &cfg, Algorithm::Qr, m, n, rhs, ew, 512, &opts);
            assert_eq!(plan.approach, want, "{m}x{n} rhs={rhs} ew={ew}");
            assert_eq!(plan.layout, Layout::TwoDCyclic);
            assert_eq!(plan.threads, None);
        }
    }
}
