//! Host-side scalar types: real and complex, with device marshalling.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// Single-precision complex number (the paper's radar workloads are
/// single-precision complex; Section VII).
#[derive(Clone, Copy, Default, PartialEq)]
pub struct C32 {
    pub re: f32,
    pub im: f32,
}

impl C32 {
    pub const fn new(re: f32, im: f32) -> Self {
        C32 { re, im }
    }

    pub fn conj(self) -> Self {
        C32::new(self.re, -self.im)
    }

    pub fn abs2(self) -> f32 {
        self.re * self.re + self.im * self.im
    }

    pub fn abs(self) -> f32 {
        self.abs2().sqrt()
    }
}

impl fmt::Debug for C32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}{:+}i)", self.re, self.im)
    }
}

impl Add for C32 {
    type Output = C32;
    fn add(self, o: C32) -> C32 {
        C32::new(self.re + o.re, self.im + o.im)
    }
}

impl Sub for C32 {
    type Output = C32;
    fn sub(self, o: C32) -> C32 {
        C32::new(self.re - o.re, self.im - o.im)
    }
}

impl Mul for C32 {
    type Output = C32;
    fn mul(self, o: C32) -> C32 {
        C32::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl Div for C32 {
    type Output = C32;
    fn div(self, o: C32) -> C32 {
        let d = o.abs2();
        C32::new(
            (self.re * o.re + self.im * o.im) / d,
            (self.im * o.re - self.re * o.im) / d,
        )
    }
}

impl Neg for C32 {
    type Output = C32;
    fn neg(self) -> C32 {
        C32::new(-self.re, -self.im)
    }
}

impl AddAssign for C32 {
    fn add_assign(&mut self, o: C32) {
        *self = *self + o;
    }
}

impl SubAssign for C32 {
    fn sub_assign(&mut self, o: C32) {
        *self = *self - o;
    }
}

impl MulAssign for C32 {
    fn mul_assign(&mut self, o: C32) {
        *self = *self * o;
    }
}

impl Sum for C32 {
    fn sum<I: Iterator<Item = C32>>(iter: I) -> C32 {
        iter.fold(C32::default(), |a, b| a + b)
    }
}

/// Field scalar usable in the host linear-algebra reference algorithms and
/// marshallable to the simulated device (32-bit words).
pub trait Scalar:
    Copy
    + Default
    + PartialEq
    + fmt::Debug
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + Sum
    + Send
    + Sync
    + 'static
{
    const IS_COMPLEX: bool;
    /// 32-bit device words per element.
    const WORDS: usize;

    fn zero() -> Self {
        Self::default()
    }
    fn one() -> Self;
    fn from_f64(x: f64) -> Self;
    /// Real part as f64.
    fn real(self) -> f64;
    fn conj(self) -> Self;
    /// Squared magnitude as f64 (exact for norms).
    fn abs2(self) -> f64;
    fn abs(self) -> f64 {
        self.abs2().sqrt()
    }
    /// Multiply by a real scalar.
    fn scale(self, s: f64) -> Self;
    /// Marshal to device words (unused slots zero).
    fn to_words(self) -> [f32; 2];
    fn from_words(w: [f32; 2]) -> Self;
}

impl Scalar for f32 {
    const IS_COMPLEX: bool = false;
    const WORDS: usize = 1;

    fn one() -> Self {
        1.0
    }
    fn from_f64(x: f64) -> Self {
        x as f32
    }
    fn real(self) -> f64 {
        self as f64
    }
    fn conj(self) -> Self {
        self
    }
    fn abs2(self) -> f64 {
        (self as f64) * (self as f64)
    }
    fn scale(self, s: f64) -> Self {
        (self as f64 * s) as f32
    }
    fn to_words(self) -> [f32; 2] {
        [self, 0.0]
    }
    fn from_words(w: [f32; 2]) -> Self {
        w[0]
    }
}

impl Scalar for f64 {
    const IS_COMPLEX: bool = false;
    const WORDS: usize = 1; // host-only reference type; device stores f32

    fn one() -> Self {
        1.0
    }
    fn from_f64(x: f64) -> Self {
        x
    }
    fn real(self) -> f64 {
        self
    }
    fn conj(self) -> Self {
        self
    }
    fn abs2(self) -> f64 {
        self * self
    }
    fn scale(self, s: f64) -> Self {
        self * s
    }
    fn to_words(self) -> [f32; 2] {
        [self as f32, 0.0]
    }
    fn from_words(w: [f32; 2]) -> Self {
        w[0] as f64
    }
}

impl Scalar for C32 {
    const IS_COMPLEX: bool = true;
    const WORDS: usize = 2;

    fn one() -> Self {
        C32::new(1.0, 0.0)
    }
    fn from_f64(x: f64) -> Self {
        C32::new(x as f32, 0.0)
    }
    fn real(self) -> f64 {
        self.re as f64
    }
    fn conj(self) -> Self {
        self.conj()
    }
    fn abs2(self) -> f64 {
        (self.re as f64).powi(2) + (self.im as f64).powi(2)
    }
    fn scale(self, s: f64) -> Self {
        C32::new((self.re as f64 * s) as f32, (self.im as f64 * s) as f32)
    }
    fn to_words(self) -> [f32; 2] {
        [self.re, self.im]
    }
    fn from_words(w: [f32; 2]) -> Self {
        C32::new(w[0], w[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complex_field_axioms_spot_checks() {
        let a = C32::new(1.0, 2.0);
        let b = C32::new(-3.0, 0.5);
        assert_eq!(a + b, C32::new(-2.0, 2.5));
        assert_eq!(a * C32::one(), a);
        let q = (a / b) * b;
        assert!((q - a).abs() < 1e-5);
    }

    #[test]
    fn conj_mul_gives_abs2() {
        let a = C32::new(3.0, -4.0);
        let p = a * a.conj();
        assert_eq!(p.re, 25.0);
        assert!(p.im.abs() < 1e-6);
        assert_eq!(Scalar::abs2(a), 25.0);
    }

    #[test]
    fn marshalling_round_trips() {
        let a = C32::new(1.5, -2.5);
        assert_eq!(C32::from_words(a.to_words()), a);
        let x = 3.25f32;
        assert_eq!(f32::from_words(x.to_words()), x);
    }

    #[test]
    fn scale_is_real_multiplication() {
        let a = C32::new(2.0, -6.0);
        assert_eq!(a.scale(0.5), C32::new(1.0, -3.0));
    }
}
