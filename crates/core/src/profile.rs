//! Predicted-vs-simulated per-phase discrepancy reports.
//!
//! The paper's core claim is *predictive*: the analytic model's per-phase
//! cycle estimates should match what the kernels actually do. When a
//! [`crate::RunOpts`] carries a trace sink (`RunOpts::builder().trace(...)`),
//! the batch entry points join the recorded launch trace's phase spans
//! against [`regla_model::phase_estimates`] for the same shape, label by
//! label (`"panel 3: rank-1"`, `"load"`, ...), and surface the resulting
//! [`ProfileReport`] on [`crate::BatchRun::profile`].
//!
//! The comparison is made on *one wave* of blocks — the model's
//! per-operation costs already account for the co-resident blocks sharing
//! the SM's issue ports, and the simulator's full-wave phase durations are
//! the matching quantity. DRAM-bound `load`/`store` phases are compared
//! against the model's streamed wave traffic estimate.

use regla_gpu_sim::LaunchTrace;
use regla_model::{block_plan, phase_estimates, Algorithm, Approach, ModelParams};
use std::fmt::Write as _;

/// One labeled phase: the simulator's full-wave duration next to the
/// model's prediction for the same shape.
#[derive(Clone, Debug)]
pub struct PhaseDiscrepancy {
    /// Kernel phase label (the join key, e.g. `"panel 3: rank-1"`).
    pub label: String,
    /// Full-wave duration from the launch trace, in cycles.
    pub simulated_cycles: f64,
    /// The analytic model's estimate for the same phase, in cycles.
    pub predicted_cycles: f64,
    /// Signed relative error `100 * (predicted - simulated) / simulated`.
    pub error_pct: f64,
}

/// Per-phase predicted-vs-simulated breakdown of one batch launch.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct ProfileReport {
    /// Kernel name, as recorded in the trace.
    pub kernel: String,
    pub alg: Algorithm,
    pub approach: Approach,
    /// Problem shape: `m x n` factored columns plus `rhs_cols` carried.
    pub m: usize,
    pub n: usize,
    pub rhs_cols: usize,
    pub batch: usize,
    /// Blocks in the compared wave (the first wave of the launch).
    pub wave_blocks: usize,
    pub blocks_per_sm: usize,
    /// Phase rows in kernel order.
    pub entries: Vec<PhaseDiscrepancy>,
    /// Mean of `|error_pct|` over the phases.
    pub mean_abs_error_pct: f64,
    /// Sum of the simulated phase durations (one wave).
    pub simulated_wave_cycles: f64,
    /// Sum of the predicted phase durations (one wave).
    pub predicted_wave_cycles: f64,
    /// End-to-end copy/compute overlap report, populated when the run went
    /// through [`crate::Session::pipelined`].
    pub pipeline: Option<PipelineReport>,
}

impl ProfileReport {
    /// Signed whole-wave relative error in percent.
    pub fn total_error_pct(&self) -> f64 {
        if self.simulated_wave_cycles > 0.0 {
            100.0 * (self.predicted_wave_cycles - self.simulated_wave_cycles)
                / self.simulated_wave_cycles
        } else {
            0.0
        }
    }

    /// Human-readable discrepancy table.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "profile: {} — {} {}x{}+{} rhs, batch {}, wave of {} blocks ({}/SM)",
            self.kernel,
            self.alg.name(),
            self.m,
            self.n,
            self.rhs_cols,
            self.batch,
            self.wave_blocks,
            self.blocks_per_sm
        );
        let _ = writeln!(
            s,
            "{:<24} {:>12} {:>12} {:>8}",
            "phase", "simulated", "predicted", "error"
        );
        for e in &self.entries {
            let _ = writeln!(
                s,
                "{:<24} {:>12.0} {:>12.0} {:>+7.1}%",
                e.label, e.simulated_cycles, e.predicted_cycles, e.error_pct
            );
        }
        let _ = writeln!(
            s,
            "{:<24} {:>12.0} {:>12.0} {:>+7.1}%",
            "total (wave)",
            self.simulated_wave_cycles,
            self.predicted_wave_cycles,
            self.total_error_pct()
        );
        let _ = writeln!(s, "mean |error|: {:.1}%", self.mean_abs_error_pct);
        s
    }
}

fn signed_error_pct(predicted: f64, simulated: f64) -> f64 {
    if simulated > 0.0 {
        100.0 * (predicted - simulated) / simulated
    } else if predicted > 0.0 {
        100.0
    } else {
        0.0
    }
}

fn finish(
    trace: &LaunchTrace,
    alg: Algorithm,
    approach: Approach,
    shape: (usize, usize, usize),
    batch: usize,
    entries: Vec<PhaseDiscrepancy>,
) -> ProfileReport {
    let simulated: f64 = entries.iter().map(|e| e.simulated_cycles).sum();
    let predicted: f64 = entries.iter().map(|e| e.predicted_cycles).sum();
    let mean = if entries.is_empty() {
        0.0
    } else {
        entries.iter().map(|e| e.error_pct.abs()).sum::<f64>() / entries.len() as f64
    };
    ProfileReport {
        kernel: trace.name.clone(),
        alg,
        approach,
        m: shape.0,
        n: shape.1,
        rhs_cols: shape.2,
        batch,
        wave_blocks: trace.waves.first().map_or(0, |w| w.blocks),
        blocks_per_sm: trace.blocks_per_sm,
        entries,
        mean_abs_error_pct: mean,
        simulated_wave_cycles: simulated,
        predicted_wave_cycles: predicted,
        pipeline: None,
    }
}

/// End-to-end timing of one chunked, stream-pipelined batch: the resolved
/// stream timeline next to the model's pipelined-time prediction.
///
/// `sync_s` is the same chunked schedule with no overlap (the sum of every
/// command duration), so `speedup()` isolates the gain from overlap alone.
/// On a single-copy-engine config the timeline serializes and
/// `pipelined_s == sync_s` — the paper's "no benefit from using multiple
/// streams" claim, reproduced rather than assumed.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct PipelineReport {
    /// Operation name ([`crate::Op::name`]).
    pub op: &'static str,
    pub batch: usize,
    pub chunks: usize,
    pub streams: usize,
    pub copy_engines: usize,
    /// Total bytes uploaded across all chunks.
    pub h2d_bytes: usize,
    /// Total bytes downloaded across all chunks.
    pub d2h_bytes: usize,
    /// Busy time of the H2D copy path (seconds).
    pub h2d_s: f64,
    /// Busy time of the D2H copy path (seconds).
    pub d2h_s: f64,
    /// Total simulated kernel time across all chunks (seconds).
    pub kernel_s: f64,
    /// Simulated end-to-end time with no overlap (seconds).
    pub sync_s: f64,
    /// Simulated end-to-end time of the resolved stream schedule (seconds).
    pub pipelined_s: f64,
    /// Model-predicted synchronous end-to-end time (seconds).
    pub predicted_sync_s: f64,
    /// Model-predicted pipelined end-to-end time (seconds).
    pub predicted_pipelined_s: f64,
    /// Whether the model had a kernel-time prediction for the operation;
    /// when false the prediction reuses the measured kernel time and only
    /// the overlap structure is predicted.
    pub kernel_modeled: bool,
    /// True when the single-copy-engine rule forced full serialization.
    pub serialized: bool,
}

impl PipelineReport {
    /// Simulated gain from overlap: `sync_s / pipelined_s`.
    pub fn speedup(&self) -> f64 {
        if self.pipelined_s > 0.0 {
            self.sync_s / self.pipelined_s
        } else {
            1.0
        }
    }

    /// Model-predicted gain from overlap.
    pub fn predicted_speedup(&self) -> f64 {
        if self.predicted_pipelined_s > 0.0 {
            self.predicted_sync_s / self.predicted_pipelined_s
        } else {
            1.0
        }
    }

    /// Signed relative error of the predicted pipelined end-to-end time.
    pub fn pipelined_error_pct(&self) -> f64 {
        signed_error_pct(self.predicted_pipelined_s, self.pipelined_s)
    }

    /// Signed relative error of the predicted synchronous end-to-end time.
    pub fn sync_error_pct(&self) -> f64 {
        signed_error_pct(self.predicted_sync_s, self.sync_s)
    }

    /// Human-readable summary table.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "pipeline: {} — batch {} in {} chunks over {} streams, {} copy engine{}{}",
            self.op,
            self.batch,
            self.chunks,
            self.streams,
            self.copy_engines,
            if self.copy_engines == 1 { "" } else { "s" },
            if self.serialized { " (serialized)" } else { "" }
        );
        let _ = writeln!(
            s,
            "  busy: h2d {:.3} ms ({} B), kernel {:.3} ms, d2h {:.3} ms ({} B)",
            self.h2d_s * 1e3,
            self.h2d_bytes,
            self.kernel_s * 1e3,
            self.d2h_s * 1e3,
            self.d2h_bytes
        );
        let _ = writeln!(
            s,
            "  simulated: sync {:.3} ms, pipelined {:.3} ms, speedup {:.2}x",
            self.sync_s * 1e3,
            self.pipelined_s * 1e3,
            self.speedup()
        );
        let _ = writeln!(
            s,
            "  predicted: sync {:.3} ms ({:+.1}%), pipelined {:.3} ms ({:+.1}%), speedup {:.2}x{}",
            self.predicted_sync_s * 1e3,
            self.sync_error_pct(),
            self.predicted_pipelined_s * 1e3,
            self.pipelined_error_pct(),
            self.predicted_speedup(),
            if self.kernel_modeled {
                ""
            } else {
                " [kernel time from measurement]"
            }
        );
        s
    }
}

/// Join a recorded launch trace against the model's phase estimates.
/// Returns `None` when the model has no phase-level prediction for the
/// launch (tiled path, non-default layouts, forced thread counts).
///
/// `params` comes from the owning [`crate::Session`], which derives it from
/// the session's `GpuConfig` once — launches no longer re-derive model
/// parameters per call.
#[allow(clippy::too_many_arguments)]
pub(crate) fn build_report(
    trace: &LaunchTrace,
    params: &ModelParams,
    alg: Algorithm,
    approach: Approach,
    m: usize,
    n: usize,
    rhs_cols: usize,
    elem_words: usize,
    batch: usize,
) -> Option<ProfileReport> {
    let p = params.clone();
    match approach {
        Approach::PerBlock => {
            let plan = block_plan(m, n, rhs_cols, elem_words);
            if plan.threads != trace.threads_per_block {
                // The launch did not use the model's thread mapping
                // (force_threads / 1D-layout ablations): no honest join.
                return None;
            }
            // Simulated side: the first wave's spans aggregated by label
            // (a full wave unless the whole batch fits in one wave).
            let wave = trace.waves.first()?;
            let mut sim: Vec<(String, f64)> = Vec::new();
            for ph in &wave.phases {
                match sim.iter_mut().find(|(l, _)| *l == ph.label) {
                    Some((_, c)) => *c += ph.cycles(),
                    None => sim.push((ph.label.clone(), ph.cycles())),
                }
            }
            // Model side: labeled compute phases plus the streamed wave
            // traffic split over the load and store phases.
            let mut model: Vec<(String, f64)> = phase_estimates(&p, &plan, alg, trace.blocks_per_sm)
                .into_iter()
                .map(|e| (e.label, e.cycles))
                .collect();
            let bytes_per_block = 2.0 * (m * (n + rhs_cols) * elem_words * 4) as f64;
            let dram_wave = bytes_per_block * wave.blocks as f64 / p.glb_bytes_per_cycle();
            model.push((String::from("load"), dram_wave / 2.0));
            model.push((String::from("store"), dram_wave / 2.0));

            let entries = sim
                .into_iter()
                .map(|(label, simulated)| {
                    let predicted = model
                        .iter()
                        .find(|(l, _)| *l == label)
                        .map_or(0.0, |(_, c)| *c);
                    PhaseDiscrepancy {
                        error_pct: signed_error_pct(predicted, simulated),
                        label,
                        simulated_cycles: simulated,
                        predicted_cycles: predicted,
                    }
                })
                .collect();
            Some(finish(trace, alg, approach, (m, n, rhs_cols), batch, entries))
        }
        Approach::PerThread => {
            // The per-thread kernel is one phase; compare whole-launch
            // cycles against the roofline prediction (Section IV).
            let g = regla_model::per_thread::predicted_gflops(&p, alg, n, 4 * elem_words);
            let flops = match elem_words {
                2 => alg.flops_complex(m, n),
                _ => alg.flops(m, n),
            } * batch as f64;
            let predicted = if g > 0.0 {
                (flops / (g * 1e9)) * p.clock_ghz * 1e9
            } else {
                0.0
            };
            let simulated = trace.cycles;
            let entries = vec![PhaseDiscrepancy {
                label: String::from("per-thread"),
                simulated_cycles: simulated,
                predicted_cycles: predicted,
                error_pct: signed_error_pct(predicted, simulated),
            }];
            Some(finish(trace, alg, approach, (m, n, rhs_cols), batch, entries))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signed_error_is_relative_to_simulation() {
        assert_eq!(signed_error_pct(110.0, 100.0), 10.0);
        assert_eq!(signed_error_pct(90.0, 100.0), -10.0);
        assert_eq!(signed_error_pct(0.0, 0.0), 0.0);
        assert_eq!(signed_error_pct(5.0, 0.0), 100.0);
    }
}
