//! Device element abstraction: one kernel source for real and complex.
//!
//! The paper's CUDA kernels are templated over the scalar type; here the
//! same role is played by [`Elem`], implemented for tracked real ([`Rv`])
//! and complex ([`CRv`]) register values. All arithmetic goes through the
//! simulator's counted operations, so complex kernels automatically cost
//! ~4x the FLOPs and 2x the memory traffic of their real counterparts.

use crate::scalar::{Scalar, C32};
use regla_gpu_sim::{CRv, DPtr, RegVal, Rv, ThreadCtx};

/// A plain untracked value the fast path computes on: `f32` for real
/// elements, [`CVal`] for complex. Every operation mirrors the
/// corresponding `v_*` expansion on the tracked type bit for bit; the
/// payoff is layout — slices of `FastVal` are dense machine floats, so
/// the serial kernels' inner loops autovectorize instead of striding
/// over `{value, ready}` register pairs.
pub trait FastVal: Copy + Send + Sync + 'static {
    fn imm(re: f32) -> Self;
    /// Promote a real (imaginary part zero).
    fn from_re(re: f32) -> Self;
    fn add(a: Self, b: Self) -> Self;
    fn sub(a: Self, b: Self) -> Self;
    fn mul(a: Self, b: Self) -> Self;
    fn fma(a: Self, b: Self, acc: Self) -> Self;
    fn fnma(a: Self, b: Self, acc: Self) -> Self;
    fn conj_fma(a: Self, b: Self, acc: Self) -> Self;
    fn conj(a: Self) -> Self;
    fn scale_re(a: Self, s: f32) -> Self;
    fn abs2(a: Self) -> f32;
    /// Multiplicative inverse (math-mode dependent, hence `t`).
    fn recip(t: &ThreadCtx, a: Self) -> Self;
    fn is_zero(a: Self) -> bool;
    /// The real component.
    fn re(self) -> f32;
}

impl FastVal for f32 {
    fn imm(re: f32) -> Self {
        re
    }
    fn from_re(re: f32) -> Self {
        re
    }
    fn add(a: Self, b: Self) -> Self {
        a + b
    }
    fn sub(a: Self, b: Self) -> Self {
        a - b
    }
    fn mul(a: Self, b: Self) -> Self {
        a * b
    }
    fn fma(a: Self, b: Self, acc: Self) -> Self {
        a * b + acc
    }
    fn fnma(a: Self, b: Self, acc: Self) -> Self {
        acc - a * b
    }
    fn conj_fma(a: Self, b: Self, acc: Self) -> Self {
        a * b + acc
    }
    fn conj(a: Self) -> Self {
        a
    }
    fn scale_re(a: Self, s: f32) -> Self {
        a * s
    }
    fn abs2(a: Self) -> f32 {
        a * a
    }
    fn recip(t: &ThreadCtx, a: Self) -> Self {
        t.v_recip(a)
    }
    fn is_zero(a: Self) -> bool {
        a == 0.0
    }
    fn re(self) -> f32 {
        self
    }
}

/// Untracked complex value (fast path); mirrors [`CRv`]'s `v_*`
/// expansions exactly, including operand order in every fused
/// multiply-add, so the rounding pattern is identical.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CVal {
    pub re: f32,
    pub im: f32,
}

impl FastVal for CVal {
    fn imm(re: f32) -> Self {
        CVal { re, im: 0.0 }
    }
    fn from_re(re: f32) -> Self {
        CVal { re, im: 0.0 }
    }
    fn add(a: Self, b: Self) -> Self {
        CVal { re: a.re + b.re, im: a.im + b.im }
    }
    fn sub(a: Self, b: Self) -> Self {
        CVal { re: a.re - b.re, im: a.im - b.im }
    }
    fn mul(a: Self, b: Self) -> Self {
        let t1 = a.re * b.re;
        let re = t1 - a.im * b.im;
        let t2 = a.re * b.im;
        let im = a.im * b.re + t2;
        CVal { re, im }
    }
    fn fma(a: Self, b: Self, acc: Self) -> Self {
        let t1 = a.re * b.re + acc.re;
        let re = t1 - a.im * b.im;
        let t2 = a.re * b.im + acc.im;
        let im = a.im * b.re + t2;
        CVal { re, im }
    }
    fn fnma(a: Self, b: Self, acc: Self) -> Self {
        let t1 = acc.re - a.re * b.re;
        let re = a.im * b.im + t1;
        let t2 = acc.im - a.re * b.im;
        let im = t2 - a.im * b.re;
        CVal { re, im }
    }
    fn conj_fma(a: Self, b: Self, acc: Self) -> Self {
        let aim = -a.im;
        let t1 = a.re * b.re + acc.re;
        let re = t1 - aim * b.im;
        let t2 = a.re * b.im + acc.im;
        let im = aim * b.re + t2;
        CVal { re, im }
    }
    fn conj(a: Self) -> Self {
        CVal { re: a.re, im: -a.im }
    }
    fn scale_re(a: Self, s: f32) -> Self {
        CVal { re: a.re * s, im: a.im * s }
    }
    fn abs2(a: Self) -> f32 {
        let t = a.re * a.re;
        a.im * a.im + t
    }
    fn recip(t: &ThreadCtx, a: Self) -> Self {
        let n = {
            let sq = a.re * a.re;
            a.im * a.im + sq
        };
        let r = t.v_recip(n);
        CVal { re: a.re * r, im: -a.im * r }
    }
    fn is_zero(a: Self) -> bool {
        let sq = a.re * a.re;
        a.im * a.im + sq == 0.0
    }
    fn re(self) -> f32 {
        self.re
    }
}

/// A value that lives in device registers and can flow through the
/// simulated shared/global memories.
pub trait Elem: RegVal + Send + Sync + 'static {
    /// The host scalar this element marshals to/from.
    type Host: Scalar;
    /// The untracked value type the fast path computes on.
    type Val: FastVal;
    /// 32-bit words per element.
    const WORDS: usize;

    /// Immediate (compile-time constant).
    fn imm(re: f32) -> Self;
    /// Promote a real register value (imaginary part zero).
    fn from_re(rv: Rv) -> Self;
    /// Load element `idx` (element units) from global memory.
    fn gload(t: &mut ThreadCtx, p: DPtr, idx: usize) -> Self;
    fn gstore(t: &mut ThreadCtx, p: DPtr, idx: usize, v: Self);
    /// Load element `idx` (element units) from block shared memory.
    fn sload(t: &mut ThreadCtx, idx: usize) -> Self;
    fn sstore(t: &mut ThreadCtx, idx: usize, v: Self);

    fn add(t: &mut ThreadCtx, a: Self, b: Self) -> Self;
    fn sub(t: &mut ThreadCtx, a: Self, b: Self) -> Self;
    fn mul(t: &mut ThreadCtx, a: Self, b: Self) -> Self;
    /// `acc + a*b`.
    fn fma(t: &mut ThreadCtx, a: Self, b: Self, acc: Self) -> Self;
    /// `acc - a*b`.
    fn fnma(t: &mut ThreadCtx, a: Self, b: Self, acc: Self) -> Self;
    /// `acc + conj(a)*b` (plain fma for real elements).
    fn conj_fma(t: &mut ThreadCtx, a: Self, b: Self, acc: Self) -> Self;
    fn conj(t: &mut ThreadCtx, a: Self) -> Self;
    /// Multiply by a real register value.
    fn scale_re(t: &mut ThreadCtx, a: Self, s: Rv) -> Self;
    /// Squared magnitude as a real register value.
    fn abs2(t: &mut ThreadCtx, a: Self) -> Rv;
    /// Multiplicative inverse.
    fn recip(t: &mut ThreadCtx, a: Self) -> Self;
    fn is_zero(t: &mut ThreadCtx, a: Self) -> bool;
    /// The real component as a register value (free: register renaming).
    fn re(self) -> Rv;
    /// Host-side readback of the functional value.
    fn host(self) -> Self::Host;
    /// Construct from a host value (immediate).
    fn from_host(v: Self::Host) -> Self;

    // ---- fast-path value-only ops ----
    //
    // Usable only when `t.fast()` is true (replay block, no observers).
    // Each mirrors its scoreboarded counterpart's `f32` operations in the
    // same order — Rust never contracts float expressions, so the values
    // are bit-identical — while skipping issue/latency bookkeeping. On an
    // untraced block every `Rv::ready` is 0 on both paths, so even the
    // register state matches exactly.

    /// Fast global load (mirrors [`Elem::gload`]).
    fn v_gload(t: &mut ThreadCtx, p: DPtr, idx: usize) -> Self;
    /// Fast global store (mirrors [`Elem::gstore`]).
    fn v_gstore(t: &mut ThreadCtx, p: DPtr, idx: usize, v: Self);
    /// The untracked value of this register (fast path only — on an
    /// untraced block both paths agree that `ready == 0`).
    fn val(self) -> Self::Val;
    /// Wrap an untracked value back into a register (ready = 0).
    fn from_val(v: Self::Val) -> Self;
    /// Fused bulk load of `dst.len()` consecutive elements starting at
    /// element `idx` — one access-path dispatch for the whole span, same
    /// values as `dst.len()` calls to [`Elem::v_gload`].
    fn v_gload_vals(t: &mut ThreadCtx, p: DPtr, idx: usize, dst: &mut [Self::Val]);
    /// Fused bulk store of `src.len()` consecutive elements at `idx`.
    fn v_gstore_vals(t: &mut ThreadCtx, p: DPtr, idx: usize, src: &[Self::Val]);
    /// Fast single-element store of an untracked value (mirrors
    /// [`Elem::v_gstore`]).
    fn v_gstore_val(t: &mut ThreadCtx, p: DPtr, idx: usize, v: Self::Val);
    /// Fast shared load (mirrors [`Elem::sload`]).
    fn v_sload(t: &ThreadCtx, idx: usize) -> Self;
    /// Fast shared store (mirrors [`Elem::sstore`]).
    fn v_sstore(t: &mut ThreadCtx, idx: usize, v: Self);
    /// Fast `a + b`.
    fn v_add(a: Self, b: Self) -> Self;
    /// Fast `a - b`.
    fn v_sub(a: Self, b: Self) -> Self;
    /// Fast `a * b` (complex: the cmul expansion).
    fn v_mul(a: Self, b: Self) -> Self;
    /// Fast `acc + a*b`.
    fn v_fma(a: Self, b: Self, acc: Self) -> Self;
    /// Fast `acc - a*b`.
    fn v_fnma(a: Self, b: Self, acc: Self) -> Self;
    /// Fast `acc + conj(a)*b`.
    fn v_conj_fma(a: Self, b: Self, acc: Self) -> Self;
    /// Fast scale by a real.
    fn v_scale_re(a: Self, s: Rv) -> Self;
    /// Fast squared magnitude.
    fn v_abs2(a: Self) -> Rv;
    /// Fast multiplicative inverse (math-mode dependent, hence `t`).
    fn v_recip(t: &ThreadCtx, a: Self) -> Self;
    /// Fast zero test.
    fn v_is_zero(a: Self) -> bool;
}

impl Elem for Rv {
    type Host = f32;
    type Val = f32;
    const WORDS: usize = 1;

    fn imm(re: f32) -> Self {
        Rv::imm(re)
    }
    fn from_re(rv: Rv) -> Self {
        rv
    }
    fn gload(t: &mut ThreadCtx, p: DPtr, idx: usize) -> Self {
        t.gload(p, idx)
    }
    fn gstore(t: &mut ThreadCtx, p: DPtr, idx: usize, v: Self) {
        t.gstore(p, idx, v)
    }
    fn sload(t: &mut ThreadCtx, idx: usize) -> Self {
        t.shared_load(idx)
    }
    fn sstore(t: &mut ThreadCtx, idx: usize, v: Self) {
        t.shared_store(idx, v)
    }
    fn add(t: &mut ThreadCtx, a: Self, b: Self) -> Self {
        t.add(a, b)
    }
    fn sub(t: &mut ThreadCtx, a: Self, b: Self) -> Self {
        t.sub(a, b)
    }
    fn mul(t: &mut ThreadCtx, a: Self, b: Self) -> Self {
        t.mul(a, b)
    }
    fn fma(t: &mut ThreadCtx, a: Self, b: Self, acc: Self) -> Self {
        t.fma(a, b, acc)
    }
    fn fnma(t: &mut ThreadCtx, a: Self, b: Self, acc: Self) -> Self {
        t.fnma(a, b, acc)
    }
    fn conj_fma(t: &mut ThreadCtx, a: Self, b: Self, acc: Self) -> Self {
        t.fma(a, b, acc)
    }
    fn conj(_t: &mut ThreadCtx, a: Self) -> Self {
        a
    }
    fn scale_re(t: &mut ThreadCtx, a: Self, s: Rv) -> Self {
        t.mul(a, s)
    }
    fn abs2(t: &mut ThreadCtx, a: Self) -> Rv {
        t.mul(a, a)
    }
    fn recip(t: &mut ThreadCtx, a: Self) -> Self {
        t.recip(a)
    }
    fn is_zero(t: &mut ThreadCtx, a: Self) -> bool {
        t.is_zero(a)
    }
    fn re(self) -> Rv {
        self
    }
    fn host(self) -> f32 {
        self.val()
    }
    fn from_host(v: f32) -> Self {
        Rv::imm(v)
    }

    fn v_gload(t: &mut ThreadCtx, p: DPtr, idx: usize) -> Self {
        Rv::imm(t.gget(p, idx))
    }
    fn v_gstore(t: &mut ThreadCtx, p: DPtr, idx: usize, v: Self) {
        t.gset(p, idx, v.v);
    }
    fn val(self) -> f32 {
        self.v
    }
    fn from_val(v: f32) -> Self {
        Rv::imm(v)
    }
    fn v_gload_vals(t: &mut ThreadCtx, p: DPtr, idx: usize, dst: &mut [f32]) {
        t.gget_span(p, idx, dst.len(), |k, v| dst[k] = v);
    }
    fn v_gstore_vals(t: &mut ThreadCtx, p: DPtr, idx: usize, src: &[f32]) {
        t.gset_span(p, idx, src.len(), |k| src[k]);
    }
    fn v_gstore_val(t: &mut ThreadCtx, p: DPtr, idx: usize, v: f32) {
        t.gset(p, idx, v);
    }
    fn v_sload(t: &ThreadCtx, idx: usize) -> Self {
        Rv::imm(t.sget(idx))
    }
    fn v_sstore(t: &mut ThreadCtx, idx: usize, v: Self) {
        t.sset(idx, v.v);
    }
    fn v_add(a: Self, b: Self) -> Self {
        Rv::imm(a.v + b.v)
    }
    fn v_sub(a: Self, b: Self) -> Self {
        Rv::imm(a.v - b.v)
    }
    fn v_mul(a: Self, b: Self) -> Self {
        Rv::imm(a.v * b.v)
    }
    fn v_fma(a: Self, b: Self, acc: Self) -> Self {
        Rv::imm(a.v * b.v + acc.v)
    }
    fn v_fnma(a: Self, b: Self, acc: Self) -> Self {
        Rv::imm(acc.v - a.v * b.v)
    }
    fn v_conj_fma(a: Self, b: Self, acc: Self) -> Self {
        Rv::imm(a.v * b.v + acc.v)
    }
    fn v_scale_re(a: Self, s: Rv) -> Self {
        Rv::imm(a.v * s.v)
    }
    fn v_abs2(a: Self) -> Rv {
        Rv::imm(a.v * a.v)
    }
    fn v_recip(t: &ThreadCtx, a: Self) -> Self {
        Rv::imm(t.v_recip(a.v))
    }
    fn v_is_zero(a: Self) -> bool {
        a.v == 0.0
    }
}

impl Elem for CRv {
    type Host = C32;
    type Val = CVal;
    const WORDS: usize = 2;

    fn imm(re: f32) -> Self {
        CRv::imm(re, 0.0)
    }
    fn from_re(rv: Rv) -> Self {
        CRv {
            re: rv,
            im: Rv::imm(0.0),
        }
    }
    fn gload(t: &mut ThreadCtx, p: DPtr, idx: usize) -> Self {
        t.cgload(p, idx)
    }
    fn gstore(t: &mut ThreadCtx, p: DPtr, idx: usize, v: Self) {
        t.cgstore(p, idx, v)
    }
    fn sload(t: &mut ThreadCtx, idx: usize) -> Self {
        t.cshared_load(2 * idx)
    }
    fn sstore(t: &mut ThreadCtx, idx: usize, v: Self) {
        t.cshared_store(2 * idx, v)
    }
    fn add(t: &mut ThreadCtx, a: Self, b: Self) -> Self {
        t.cadd(a, b)
    }
    fn sub(t: &mut ThreadCtx, a: Self, b: Self) -> Self {
        t.csub(a, b)
    }
    fn mul(t: &mut ThreadCtx, a: Self, b: Self) -> Self {
        t.cmul(a, b)
    }
    fn fma(t: &mut ThreadCtx, a: Self, b: Self, acc: Self) -> Self {
        t.cfma(a, b, acc)
    }
    fn fnma(t: &mut ThreadCtx, a: Self, b: Self, acc: Self) -> Self {
        t.cfnma(a, b, acc)
    }
    fn conj_fma(t: &mut ThreadCtx, a: Self, b: Self, acc: Self) -> Self {
        let ac = t.conj(a);
        t.cfma(ac, b, acc)
    }
    fn conj(t: &mut ThreadCtx, a: Self) -> Self {
        t.conj(a)
    }
    fn scale_re(t: &mut ThreadCtx, a: Self, s: Rv) -> Self {
        t.cscale(a, s)
    }
    fn abs2(t: &mut ThreadCtx, a: Self) -> Rv {
        t.cnorm_sq(a)
    }
    fn recip(t: &mut ThreadCtx, a: Self) -> Self {
        t.crecip(a)
    }
    fn is_zero(t: &mut ThreadCtx, a: Self) -> bool {
        let n = t.cnorm_sq(a);
        t.is_zero(n)
    }
    fn re(self) -> Rv {
        self.re
    }
    fn host(self) -> C32 {
        let (re, im) = self.val();
        C32::new(re, im)
    }
    fn from_host(v: C32) -> Self {
        CRv::imm(v.re, v.im)
    }

    // Each expansion below writes out the slow path's op sequence
    // literally (see `ThreadCtx::{cmul, cfma, cfnma, crecip}`), including
    // operand order inside every fused multiply-add, so the rounding
    // pattern is identical.

    fn v_gload(t: &mut ThreadCtx, p: DPtr, idx: usize) -> Self {
        CRv::imm(t.gget(p, 2 * idx), t.gget(p, 2 * idx + 1))
    }
    fn v_gstore(t: &mut ThreadCtx, p: DPtr, idx: usize, v: Self) {
        t.gset(p, 2 * idx, v.re.v);
        t.gset(p, 2 * idx + 1, v.im.v);
    }
    fn val(self) -> CVal {
        CVal { re: self.re.v, im: self.im.v }
    }
    fn from_val(v: CVal) -> Self {
        CRv::imm(v.re, v.im)
    }
    fn v_gload_vals(t: &mut ThreadCtx, p: DPtr, idx: usize, dst: &mut [CVal]) {
        // Interleaved (re, im) word pairs: even words fill `re`, odd `im`.
        t.gget_span(p, 2 * idx, 2 * dst.len(), |k, v| {
            let e = &mut dst[k / 2];
            if k % 2 == 0 {
                e.re = v;
            } else {
                e.im = v;
            }
        });
    }
    fn v_gstore_vals(t: &mut ThreadCtx, p: DPtr, idx: usize, src: &[CVal]) {
        t.gset_span(p, 2 * idx, 2 * src.len(), |k| {
            let e = src[k / 2];
            if k % 2 == 0 { e.re } else { e.im }
        });
    }
    fn v_gstore_val(t: &mut ThreadCtx, p: DPtr, idx: usize, v: CVal) {
        t.gset(p, 2 * idx, v.re);
        t.gset(p, 2 * idx + 1, v.im);
    }
    fn v_sload(t: &ThreadCtx, idx: usize) -> Self {
        CRv::imm(t.sget(2 * idx), t.sget(2 * idx + 1))
    }
    fn v_sstore(t: &mut ThreadCtx, idx: usize, v: Self) {
        t.sset(2 * idx, v.re.v);
        t.sset(2 * idx + 1, v.im.v);
    }
    fn v_add(a: Self, b: Self) -> Self {
        CRv::imm(a.re.v + b.re.v, a.im.v + b.im.v)
    }
    fn v_sub(a: Self, b: Self) -> Self {
        CRv::imm(a.re.v - b.re.v, a.im.v - b.im.v)
    }
    fn v_mul(a: Self, b: Self) -> Self {
        let t1 = a.re.v * b.re.v;
        let re = t1 - a.im.v * b.im.v;
        let t2 = a.re.v * b.im.v;
        let im = a.im.v * b.re.v + t2;
        CRv::imm(re, im)
    }
    fn v_fma(a: Self, b: Self, acc: Self) -> Self {
        let t1 = a.re.v * b.re.v + acc.re.v;
        let re = t1 - a.im.v * b.im.v;
        let t2 = a.re.v * b.im.v + acc.im.v;
        let im = a.im.v * b.re.v + t2;
        CRv::imm(re, im)
    }
    fn v_fnma(a: Self, b: Self, acc: Self) -> Self {
        let t1 = acc.re.v - a.re.v * b.re.v;
        let re = a.im.v * b.im.v + t1;
        let t2 = acc.im.v - a.re.v * b.im.v;
        let im = t2 - a.im.v * b.re.v;
        CRv::imm(re, im)
    }
    fn v_conj_fma(a: Self, b: Self, acc: Self) -> Self {
        // conj(a) then cfma: the conjugated imaginary part is an exact
        // sign flip, kept explicit to mirror the slow path.
        let aim = -a.im.v;
        let t1 = a.re.v * b.re.v + acc.re.v;
        let re = t1 - aim * b.im.v;
        let t2 = a.re.v * b.im.v + acc.im.v;
        let im = aim * b.re.v + t2;
        CRv::imm(re, im)
    }
    fn v_scale_re(a: Self, s: Rv) -> Self {
        CRv::imm(a.re.v * s.v, a.im.v * s.v)
    }
    fn v_abs2(a: Self) -> Rv {
        let t = a.re.v * a.re.v;
        Rv::imm(a.im.v * a.im.v + t)
    }
    fn v_recip(t: &ThreadCtx, a: Self) -> Self {
        let n = {
            let sq = a.re.v * a.re.v;
            a.im.v * a.im.v + sq
        };
        let r = t.v_recip(n);
        CRv::imm(a.re.v * r, -a.im.v * r)
    }
    fn v_is_zero(a: Self) -> bool {
        let sq = a.re.v * a.re.v;
        a.im.v * a.im.v + sq == 0.0
    }
}

/// Host scalars that have a device representation.
pub trait DeviceScalar: Scalar {
    type Dev: Elem<Host = Self>;
}

impl DeviceScalar for f32 {
    type Dev = Rv;
}

impl DeviceScalar for C32 {
    type Dev = CRv;
}
