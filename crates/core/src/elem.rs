//! Device element abstraction: one kernel source for real and complex.
//!
//! The paper's CUDA kernels are templated over the scalar type; here the
//! same role is played by [`Elem`], implemented for tracked real ([`Rv`])
//! and complex ([`CRv`]) register values. All arithmetic goes through the
//! simulator's counted operations, so complex kernels automatically cost
//! ~4x the FLOPs and 2x the memory traffic of their real counterparts.

use crate::scalar::{Scalar, C32};
use regla_gpu_sim::{CRv, DPtr, RegVal, Rv, ThreadCtx};

/// A value that lives in device registers and can flow through the
/// simulated shared/global memories.
pub trait Elem: RegVal + Send + Sync + 'static {
    /// The host scalar this element marshals to/from.
    type Host: Scalar;
    /// 32-bit words per element.
    const WORDS: usize;

    /// Immediate (compile-time constant).
    fn imm(re: f32) -> Self;
    /// Promote a real register value (imaginary part zero).
    fn from_re(rv: Rv) -> Self;
    /// Load element `idx` (element units) from global memory.
    fn gload(t: &mut ThreadCtx, p: DPtr, idx: usize) -> Self;
    fn gstore(t: &mut ThreadCtx, p: DPtr, idx: usize, v: Self);
    /// Load element `idx` (element units) from block shared memory.
    fn sload(t: &mut ThreadCtx, idx: usize) -> Self;
    fn sstore(t: &mut ThreadCtx, idx: usize, v: Self);

    fn add(t: &mut ThreadCtx, a: Self, b: Self) -> Self;
    fn sub(t: &mut ThreadCtx, a: Self, b: Self) -> Self;
    fn mul(t: &mut ThreadCtx, a: Self, b: Self) -> Self;
    /// `acc + a*b`.
    fn fma(t: &mut ThreadCtx, a: Self, b: Self, acc: Self) -> Self;
    /// `acc - a*b`.
    fn fnma(t: &mut ThreadCtx, a: Self, b: Self, acc: Self) -> Self;
    /// `acc + conj(a)*b` (plain fma for real elements).
    fn conj_fma(t: &mut ThreadCtx, a: Self, b: Self, acc: Self) -> Self;
    fn conj(t: &mut ThreadCtx, a: Self) -> Self;
    /// Multiply by a real register value.
    fn scale_re(t: &mut ThreadCtx, a: Self, s: Rv) -> Self;
    /// Squared magnitude as a real register value.
    fn abs2(t: &mut ThreadCtx, a: Self) -> Rv;
    /// Multiplicative inverse.
    fn recip(t: &mut ThreadCtx, a: Self) -> Self;
    fn is_zero(t: &mut ThreadCtx, a: Self) -> bool;
    /// The real component as a register value (free: register renaming).
    fn re(self) -> Rv;
    /// Host-side readback of the functional value.
    fn host(self) -> Self::Host;
    /// Construct from a host value (immediate).
    fn from_host(v: Self::Host) -> Self;
}

impl Elem for Rv {
    type Host = f32;
    const WORDS: usize = 1;

    fn imm(re: f32) -> Self {
        Rv::imm(re)
    }
    fn from_re(rv: Rv) -> Self {
        rv
    }
    fn gload(t: &mut ThreadCtx, p: DPtr, idx: usize) -> Self {
        t.gload(p, idx)
    }
    fn gstore(t: &mut ThreadCtx, p: DPtr, idx: usize, v: Self) {
        t.gstore(p, idx, v)
    }
    fn sload(t: &mut ThreadCtx, idx: usize) -> Self {
        t.shared_load(idx)
    }
    fn sstore(t: &mut ThreadCtx, idx: usize, v: Self) {
        t.shared_store(idx, v)
    }
    fn add(t: &mut ThreadCtx, a: Self, b: Self) -> Self {
        t.add(a, b)
    }
    fn sub(t: &mut ThreadCtx, a: Self, b: Self) -> Self {
        t.sub(a, b)
    }
    fn mul(t: &mut ThreadCtx, a: Self, b: Self) -> Self {
        t.mul(a, b)
    }
    fn fma(t: &mut ThreadCtx, a: Self, b: Self, acc: Self) -> Self {
        t.fma(a, b, acc)
    }
    fn fnma(t: &mut ThreadCtx, a: Self, b: Self, acc: Self) -> Self {
        t.fnma(a, b, acc)
    }
    fn conj_fma(t: &mut ThreadCtx, a: Self, b: Self, acc: Self) -> Self {
        t.fma(a, b, acc)
    }
    fn conj(_t: &mut ThreadCtx, a: Self) -> Self {
        a
    }
    fn scale_re(t: &mut ThreadCtx, a: Self, s: Rv) -> Self {
        t.mul(a, s)
    }
    fn abs2(t: &mut ThreadCtx, a: Self) -> Rv {
        t.mul(a, a)
    }
    fn recip(t: &mut ThreadCtx, a: Self) -> Self {
        t.recip(a)
    }
    fn is_zero(t: &mut ThreadCtx, a: Self) -> bool {
        t.is_zero(a)
    }
    fn re(self) -> Rv {
        self
    }
    fn host(self) -> f32 {
        self.val()
    }
    fn from_host(v: f32) -> Self {
        Rv::imm(v)
    }
}

impl Elem for CRv {
    type Host = C32;
    const WORDS: usize = 2;

    fn imm(re: f32) -> Self {
        CRv::imm(re, 0.0)
    }
    fn from_re(rv: Rv) -> Self {
        CRv {
            re: rv,
            im: Rv::imm(0.0),
        }
    }
    fn gload(t: &mut ThreadCtx, p: DPtr, idx: usize) -> Self {
        t.cgload(p, idx)
    }
    fn gstore(t: &mut ThreadCtx, p: DPtr, idx: usize, v: Self) {
        t.cgstore(p, idx, v)
    }
    fn sload(t: &mut ThreadCtx, idx: usize) -> Self {
        t.cshared_load(2 * idx)
    }
    fn sstore(t: &mut ThreadCtx, idx: usize, v: Self) {
        t.cshared_store(2 * idx, v)
    }
    fn add(t: &mut ThreadCtx, a: Self, b: Self) -> Self {
        t.cadd(a, b)
    }
    fn sub(t: &mut ThreadCtx, a: Self, b: Self) -> Self {
        t.csub(a, b)
    }
    fn mul(t: &mut ThreadCtx, a: Self, b: Self) -> Self {
        t.cmul(a, b)
    }
    fn fma(t: &mut ThreadCtx, a: Self, b: Self, acc: Self) -> Self {
        t.cfma(a, b, acc)
    }
    fn fnma(t: &mut ThreadCtx, a: Self, b: Self, acc: Self) -> Self {
        t.cfnma(a, b, acc)
    }
    fn conj_fma(t: &mut ThreadCtx, a: Self, b: Self, acc: Self) -> Self {
        let ac = t.conj(a);
        t.cfma(ac, b, acc)
    }
    fn conj(t: &mut ThreadCtx, a: Self) -> Self {
        t.conj(a)
    }
    fn scale_re(t: &mut ThreadCtx, a: Self, s: Rv) -> Self {
        t.cscale(a, s)
    }
    fn abs2(t: &mut ThreadCtx, a: Self) -> Rv {
        t.cnorm_sq(a)
    }
    fn recip(t: &mut ThreadCtx, a: Self) -> Self {
        t.crecip(a)
    }
    fn is_zero(t: &mut ThreadCtx, a: Self) -> bool {
        let n = t.cnorm_sq(a);
        t.is_zero(n)
    }
    fn re(self) -> Rv {
        self.re
    }
    fn host(self) -> C32 {
        let (re, im) = self.val();
        C32::new(re, im)
    }
    fn from_host(v: C32) -> Self {
        CRv::imm(v.re, v.im)
    }
}

/// Host scalars that have a device representation.
pub trait DeviceScalar: Scalar {
    type Dev: Elem<Host = Self>;
}

impl DeviceScalar for f32 {
    type Dev = Rv;
}

impl DeviceScalar for C32 {
    type Dev = CRv;
}
