//! # regla-core — batched small dense linear algebra in GPU registers
//!
//! The primary contribution of *"A Predictive Model for Solving Small
//! Linear Algebra Problems in GPU Registers"* (IPPS 2012), reproduced on
//! the `regla-gpu-sim` substrate:
//!
//! * **One problem per thread** (§IV) — for n < 16 each thread factors a
//!   whole matrix serially in its register file; performance is bounded by
//!   arithmetic intensity × DRAM bandwidth until the registers spill.
//! * **One problem per block** (§V) — the matrix is distributed over a
//!   thread block's register files (2D cyclic by default; 1D row/column
//!   cyclic for the Figure 7 comparison) and factored cooperatively
//!   through shared memory.
//! * **Tiled within blocks** (§VII) — tall matrices (the 240x66 radar
//!   problems) are factored panel by panel, streaming through DRAM.
//!
//! Four algorithms are provided in all paths: Gauss-Jordan solve, LU
//! without pivoting, Householder QR, and least squares / linear solve via
//! QR, for both `f32` and single-precision complex [`C32`].
//!
//! ```
//! use regla_core::{MatBatch, Session};
//! use regla_gpu_sim::Gpu;
//!
//! // Factor 128 diagonally-dominant 6x6 systems on the simulated GPU.
//! let session = Session::with_config(Gpu::quadro_6000().cfg);
//! let mut proto = regla_core::Mat::from_fn(6, 6, |i, j| ((i * j) as f32).sin());
//! proto.make_diagonally_dominant();
//! let batch = MatBatch::replicate(&proto, 128);
//! let run = session.lu(&batch).unwrap();
//! assert!(run.gflops() > 0.0);
//! assert!(run.status.iter().all(|s| s.is_ok()));
//! ```
//!
//! ## Failure semantics
//!
//! Every public entry point returns `Result<_, ReglaError>`: malformed
//! shapes or options are reported as values, never as panics. Within a
//! successful run, each problem carries a [`ProblemStatus`] verdict
//! (singular pivot, non-finite result, or a detected hardware fault when
//! a [`regla_gpu_sim::FaultPlan`] is active), and the bounded
//! [`RecoveryPolicy`] retries and finally CPU-degrades failed problems.

pub mod api;
pub mod batch;
pub mod elem;
pub mod error;
pub mod fleet;
pub mod global_level;
pub mod host;
pub mod layout;
pub mod matrix;
pub mod per_block;
pub mod per_thread;
pub mod pipeline;
pub mod prelude;
pub mod profile;
pub mod scalar;
pub mod session;
pub mod status;
pub mod tiled;
pub mod verify;

pub use api::{BatchRun, RunOpts, RunOptsBuilder};
pub use regla_model::{DecisionTable, Plan, PlanKey, Planner};
pub use session::{Op, OpOutput, Session, SessionBuilder};
pub use pipeline::{PipelineOpts, PipelinedRun};
pub use profile::{PhaseDiscrepancy, PipelineReport, ProfileReport};
pub use batch::MatBatch;
pub use elem::{DeviceScalar, Elem};
pub use error::ReglaError;
pub use layout::{Layout, LayoutMap};
pub use matrix::Mat;
pub use scalar::{Scalar, C32};
pub use status::{ProblemStatus, RecoveryPolicy, RecoveryStats, RecoveryTelemetry, VerifyScreen};
pub use verify::VerifyMode;
pub use fleet::{
    BreakerPolicy, BreakerState, ChaosEvent, ChaosPlan, DeviceReport, Fleet, FleetBuilder,
    FleetPolicy, FleetReport, FleetRun,
};
pub use global_level::{global_level_qr, GlobalLevelOpts};
pub use tiled::MultiLaunch;
