//! Multi-device fault domains: health-gated sharded dispatch with
//! failover, model-derived deadlines, and seeded chaos injection.
//!
//! A [`Fleet`] owns N simulated devices (each wrapped in its own
//! [`Session`], with its own [`regla_model::ModelParams`]) plus the CPU
//! host pool, and shards a batch across them:
//!
//! * **Sharding** — each device's share is proportional to the
//!   predictive model's throughput estimate for the operation on *that*
//!   device, so a GT200 next to a Quadro 6000 gets fewer problems, not
//!   half. Shares are contiguous problem ranges split into a few chunks
//!   per device so stragglers can be stolen.
//! * **Health gating** — every device carries a circuit breaker
//!   (Closed → Open → HalfOpen) fed by consecutive dispatch errors and
//!   by the fault-detection rate of successful runs. An open breaker
//!   parks the device until a deterministic simulated-clock backoff
//!   expires; the first dispatch after that is a half-open probe.
//! * **Deadlines** — when [`FleetPolicy::deadline_slack`] is set, every
//!   dispatch gets a per-launch cycle budget derived from the model's
//!   *worst-candidate* time estimate × the slack factor; a launch that
//!   blows it fails with [`LaunchError::DeadlineExceeded`] instead of
//!   dilating the campaign.
//! * **Failover & stealing** — a chunk whose dispatch failed is re-queued
//!   and preferentially picked up by a *different* device (a rescue,
//!   counted in [`RecoveryStats::device_failovers`]); an idle device
//!   steals queued chunks from the most-loaded peer (counted in
//!   [`RecoveryStats::shards_stolen`]). A chunk that exhausts its
//!   attempt budget degrades to the CPU host pool — or, with
//!   [`FleetPolicy::cpu_pool`] off, fails the run with the structured
//!   [`ReglaError::FleetUnavailable`] instead of hanging.
//! * **Chaos** — a seeded [`ChaosPlan`] kills devices at a given
//!   dispatch index, stalls their streams, or showers them with fault
//!   storms. The plan is pure data keyed on (device, dispatch index), so
//!   a rerun with the same plan reproduces the same campaign
//!   bit-identically.
//!
//! The scheduler is a sequential event loop driven by per-device
//! *simulated* clocks: the device with the smallest next-available time
//! dispatches next, ties break on the lowest device index, and every
//! clock advance comes from modeled launch statistics (which the
//! simulator guarantees bit-identical across host thread counts and the
//! fast/slow execution paths). Fleet results are therefore exactly
//! reproducible — the whole point of rehearsing failure handling on a
//! simulator.
//!
//! ```
//! use regla_core::{ChaosPlan, Fleet, MatBatch, Op};
//! use regla_gpu_sim::GpuConfig;
//!
//! let fleet = Fleet::builder()
//!     .device(GpuConfig::quadro_6000())
//!     .device(GpuConfig::gt200())
//!     .chaos(ChaosPlan::new(7).device_death(1, 0)) // device 1 never works
//!     .build()
//!     .unwrap();
//! let a = MatBatch::from_fn(8, 8, 64, |k, i, j| {
//!     ((k + i + 2 * j) % 5) as f32 + if i == j { 9.0 } else { 0.0 }
//! });
//! let run = fleet.run(Op::Lu, &a, None).unwrap();
//! assert!(run.output.run.status.iter().all(|s| s.is_ok()));
//! assert!(run.report.failovers > 0); // device 0 rescued device 1's shards
//! ```

use crate::api::{self, BatchRun, RunOpts};
use crate::batch::MatBatch;
use crate::elem::DeviceScalar;
use crate::error::ReglaError;
use crate::per_thread::PtAlg;
use crate::pipeline::model_alg;
use crate::session::{Op, OpOutput, Session};
use crate::status::{ProblemStatus, RecoveryCounters, RecoveryStats, RecoveryTelemetry};
use crate::tiled::MultiLaunch;
use regla_gpu_sim::{FaultPlan, GpuConfig, LaunchError};
use regla_model::Approach;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Simulated cost of a dispatch that failed without a modeled duration
/// (a dead device rejecting the launch): long enough to be visible on
/// the clock, far shorter than any real launch.
const FAIL_COST_S: f64 = 1e-5;

// ---------------------------------------------------------------------
// Chaos injection
// ---------------------------------------------------------------------

/// One injected failure in a [`ChaosPlan`]. `at_launch` indices count
/// *dispatches* (one `Session` run per chunk) on that device, starting
/// at 0 and persisting across [`Fleet::run`] calls.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosEvent {
    /// From dispatch `at_launch` on, every launch on `device` fails with
    /// [`LaunchError::DeviceLost`] without running — CUDA's sticky
    /// device-lost semantics.
    DeviceDeath { device: usize, at_launch: usize },
    /// Dispatch `at_launch` on `device` is stretched by `stall_cycles`
    /// simulated cycles (a stalled stream). Functional output is
    /// untouched; with a deadline armed the stall can push the launch
    /// over budget.
    StreamStall {
        device: usize,
        at_launch: usize,
        stall_cycles: u64,
    },
    /// Dispatches `from_launch .. from_launch + launches` on `device`
    /// each run under a seeded [`FaultPlan`] injecting
    /// `faults_per_launch` block faults.
    FaultStorm {
        device: usize,
        from_launch: usize,
        launches: usize,
        faults_per_launch: usize,
    },
}

/// A seeded, replayable failure-injection campaign for a [`Fleet`].
///
/// The plan is pure data: effects are keyed on (device index, dispatch
/// index), and fault-storm PRNG seeds are derived from `seed`, the
/// device and the dispatch index — so the same plan over the same batch
/// reproduces the same failures, rescues and outputs bit-identically.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Base seed for derived [`FaultPlan`]s.
    pub seed: u64,
    events: Vec<ChaosEvent>,
}

impl ChaosPlan {
    pub fn new(seed: u64) -> Self {
        ChaosPlan {
            seed,
            events: Vec::new(),
        }
    }

    pub fn event(mut self, e: ChaosEvent) -> Self {
        self.events.push(e);
        self
    }

    /// Kill `device` permanently starting at dispatch `at_launch`.
    pub fn device_death(self, device: usize, at_launch: usize) -> Self {
        self.event(ChaosEvent::DeviceDeath { device, at_launch })
    }

    /// Stall dispatch `at_launch` on `device` by `stall_cycles` cycles.
    pub fn stream_stall(self, device: usize, at_launch: usize, stall_cycles: u64) -> Self {
        self.event(ChaosEvent::StreamStall {
            device,
            at_launch,
            stall_cycles,
        })
    }

    /// Inject `faults_per_launch` block faults into each of `launches`
    /// dispatches on `device` starting at `from_launch`.
    pub fn fault_storm(
        self,
        device: usize,
        from_launch: usize,
        launches: usize,
        faults_per_launch: usize,
    ) -> Self {
        self.event(ChaosEvent::FaultStorm {
            device,
            from_launch,
            launches,
            faults_per_launch,
        })
    }

    pub fn events(&self) -> &[ChaosEvent] {
        &self.events
    }

    fn dead(&self, device: usize, launch: usize) -> bool {
        self.events.iter().any(|e| {
            matches!(e, ChaosEvent::DeviceDeath { device: d, at_launch }
                     if *d == device && launch >= *at_launch)
        })
    }

    fn stall(&self, device: usize, launch: usize) -> u64 {
        self.events
            .iter()
            .map(|e| match e {
                ChaosEvent::StreamStall {
                    device: d,
                    at_launch,
                    stall_cycles,
                } if *d == device && *at_launch == launch => *stall_cycles,
                _ => 0,
            })
            .sum()
    }

    fn storm(&self, device: usize, launch: usize) -> Option<FaultPlan> {
        self.events.iter().find_map(|e| match e {
            ChaosEvent::FaultStorm {
                device: d,
                from_launch,
                launches,
                faults_per_launch,
            } if *d == device && launch >= *from_launch && launch < from_launch + launches => {
                // Derived seed: same plan + same dispatch => same faults.
                let seed = self.seed ^ ((device as u64) << 32) ^ (launch as u64).wrapping_mul(0x9E37_79B9);
                Some(FaultPlan::new(seed, *faults_per_launch))
            }
            _ => None,
        })
    }
}

// ---------------------------------------------------------------------
// Policy
// ---------------------------------------------------------------------

/// Circuit-breaker tuning for one fleet device.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BreakerPolicy {
    /// Consecutive failed dispatches that trip the breaker open. A
    /// [`LaunchError::DeviceLost`] trips it immediately regardless.
    pub consecutive_errors: u32,
    /// Trip when a *successful* dispatch reports at least this fraction
    /// of its problems fault-detected (an unhealthy-but-alive device).
    pub fault_rate_threshold: f64,
    /// Initial open interval, in simulated seconds.
    pub backoff_s: f64,
    /// Backoff multiplier applied on every re-trip.
    pub backoff_factor: f64,
    /// Backoff ceiling, in simulated seconds.
    pub max_backoff_s: f64,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        BreakerPolicy {
            consecutive_errors: 2,
            fault_rate_threshold: 0.5,
            backoff_s: 1e-3,
            backoff_factor: 2.0,
            max_backoff_s: 1e-1,
        }
    }
}

/// Circuit-breaker state of one fleet device.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: dispatches flow normally.
    #[default]
    Closed,
    /// Tripped: the device is parked until its backoff expires.
    Open,
    /// Backoff expired: the next dispatch is a probe — success closes
    /// the breaker, failure re-opens it with doubled backoff.
    HalfOpen,
}

/// Tuning for a [`Fleet`].
#[derive(Clone, Debug, PartialEq)]
pub struct FleetPolicy {
    /// Arm per-dispatch deadlines at (model worst-candidate estimate ×
    /// this factor) simulated cycles; `None` disables deadlines. The
    /// budget is derived per device and per chunk size, so a slower
    /// device gets a proportionally larger budget.
    pub deadline_slack: Option<f64>,
    pub breaker: BreakerPolicy,
    /// Chunks each device's share is split into (more chunks = finer
    /// stealing/failover granularity, more launches). Clamped to ≥ 1.
    pub chunks_per_device: usize,
    /// Degrade chunks that exhaust their dispatch attempts to the CPU
    /// host pool. With this off such a chunk fails the whole run with
    /// [`ReglaError::FleetUnavailable`].
    pub cpu_pool: bool,
}

impl Default for FleetPolicy {
    fn default() -> Self {
        FleetPolicy {
            deadline_slack: None,
            breaker: BreakerPolicy::default(),
            chunks_per_device: 4,
            cpu_pool: true,
        }
    }
}

// ---------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------

/// Per-device telemetry for one [`Fleet::run`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DeviceReport {
    /// Device config name (e.g. `"quadro-6000"`).
    pub name: String,
    /// Problems the sharding planner assigned to this device.
    pub planned_problems: usize,
    /// Chunks the planner assigned to this device.
    pub planned_chunks: usize,
    /// Chunks this device actually completed (own + stolen + rescued).
    pub chunks_run: usize,
    /// Problems this device actually completed.
    pub problems_run: usize,
    /// Chunks this device stole from a straggler's queue.
    pub steals: usize,
    /// Previously-failed chunks this device rescued.
    pub rescues: usize,
    /// Dispatches on this device that returned a launch error.
    pub failed_dispatches: usize,
    /// Dispatches that blew their model-derived deadline.
    pub deadline_misses: usize,
    /// Problems reported fault-detected across this device's runs.
    pub faults_detected: usize,
    /// Times this device's breaker tripped open during the run.
    pub breaker_trips: usize,
    /// Breaker state at the end of the run.
    pub breaker_state: BreakerState,
    /// The device's simulated clock at the end of the run (seconds).
    pub sim_time_s: f64,
}

/// What the fleet scheduler did for one [`Fleet::run`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FleetReport {
    pub devices: Vec<DeviceReport>,
    /// Total chunks the batch was split into.
    pub chunks: usize,
    /// Chunks rescued by a device after a failed dispatch.
    pub failovers: usize,
    /// Chunks executed by a device other than their planned owner
    /// without any prior failure (work stealing).
    pub steals: usize,
    /// Dispatches that blew their deadline, fleet-wide.
    pub deadline_misses: usize,
    /// Breaker trips, fleet-wide.
    pub breaker_trips: usize,
    /// Chunks degraded to the CPU host pool.
    pub cpu_pool_chunks: usize,
    /// Problems computed by the CPU host pool.
    pub cpu_pool_problems: usize,
}

/// Result of [`Fleet::run`]: the merged batch output plus the fleet
/// telemetry.
#[derive(Clone, Debug)]
pub struct FleetRun<T> {
    pub output: OpOutput<T>,
    pub report: FleetReport,
}

// ---------------------------------------------------------------------
// Fleet
// ---------------------------------------------------------------------

/// Builder for [`Fleet`]: device configs, base run options, policy,
/// optional chaos plan.
#[derive(Clone, Debug, Default)]
pub struct FleetBuilder {
    devices: Vec<GpuConfig>,
    opts: RunOpts,
    policy: FleetPolicy,
    chaos: Option<ChaosPlan>,
}

impl FleetBuilder {
    /// Add one device to the fleet.
    pub fn device(mut self, cfg: GpuConfig) -> Self {
        self.devices.push(cfg);
        self
    }

    /// Add several devices.
    pub fn devices(mut self, cfgs: impl IntoIterator<Item = GpuConfig>) -> Self {
        self.devices.extend(cfgs);
        self
    }

    /// Base [`RunOpts`] applied to every dispatch (the fleet layers its
    /// own deadline / stall / fault knobs on top per dispatch).
    pub fn opts(mut self, opts: RunOpts) -> Self {
        self.opts = opts;
        self
    }

    pub fn policy(mut self, policy: FleetPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Attach a seeded chaos campaign.
    pub fn chaos(mut self, plan: impl Into<Option<ChaosPlan>>) -> Self {
        self.chaos = plan.into();
        self
    }

    pub fn build(self) -> Result<Fleet, ReglaError> {
        if self.devices.is_empty() {
            return Err(ReglaError::FleetUnavailable(
                "fleet has no devices; add at least one GpuConfig".into(),
            ));
        }
        // Degenerate configs used to slip through and only blow up later
        // inside sharding or clock arithmetic; reject them here with a
        // structured error instead.
        for (i, cfg) in self.devices.iter().enumerate() {
            if cfg.num_sms == 0 || cfg.fpus_per_sm == 0 || cfg.warp_size == 0 {
                return Err(ReglaError::InvalidConfig(format!(
                    "fleet device {i} ({}) has zero throughput \
                     (num_sms={}, fpus_per_sm={}, warp_size={})",
                    cfg.name, cfg.num_sms, cfg.fpus_per_sm, cfg.warp_size,
                )));
            }
            if !cfg.core_clock_ghz.is_finite() || cfg.core_clock_ghz <= 0.0 {
                return Err(ReglaError::InvalidConfig(format!(
                    "fleet device {i} ({}) has a non-positive core clock \
                     ({} GHz); the simulated clock cannot advance",
                    cfg.name, cfg.core_clock_ghz,
                )));
            }
        }
        let mut policy = self.policy;
        policy.chunks_per_device = policy.chunks_per_device.max(1);
        // Fleets of identical hardware are legal; disambiguate repeated
        // config names deterministically so reports and per-device
        // telemetry stay unambiguous ("quadro-6000", "quadro-6000#1", …).
        let mut seen: std::collections::HashMap<&'static str, usize> = std::collections::HashMap::new();
        let devices: Vec<FleetDevice> = self
            .devices
            .into_iter()
            .map(|cfg| {
                let dup = seen.entry(cfg.name).or_insert(0);
                let name = if *dup == 0 {
                    cfg.name.to_string()
                } else {
                    format!("{}#{dup}", cfg.name)
                };
                *dup += 1;
                FleetDevice {
                    session: Session::builder().config(cfg).build(),
                    name,
                }
            })
            .collect();
        let runtime = Mutex::new(devices.iter().map(|_| DeviceState::default()).collect());
        Ok(Fleet {
            devices,
            opts: self.opts,
            policy,
            chaos: self.chaos,
            runtime,
            counters: Arc::new(RecoveryCounters::new()),
        })
    }
}

struct FleetDevice {
    session: Session,
    name: String,
}

/// Persistent per-device scheduler state (clock, breaker) — survives
/// across [`Fleet::run`] calls so health history carries over.
#[derive(Clone, Debug)]
struct DeviceState {
    clock_s: f64,
    /// Dispatch counter, the index chaos events key on.
    dispatches: usize,
    breaker: BreakerState,
    open_until_s: f64,
    cur_backoff_s: f64,
    consec_errors: u32,
}

impl Default for DeviceState {
    fn default() -> Self {
        DeviceState {
            clock_s: 0.0,
            dispatches: 0,
            breaker: BreakerState::Closed,
            open_until_s: 0.0,
            cur_backoff_s: 0.0,
            consec_errors: 0,
        }
    }
}

impl DeviceState {
    /// When this device can next dispatch.
    fn avail_s(&self) -> f64 {
        match self.breaker {
            BreakerState::Open => self.clock_s.max(self.open_until_s),
            _ => self.clock_s,
        }
    }

    fn on_success(&mut self, policy: &BreakerPolicy) {
        self.consec_errors = 0;
        self.breaker = BreakerState::Closed;
        self.cur_backoff_s = policy.backoff_s;
    }

    /// Register a failed dispatch; returns true when the breaker
    /// tripped open.
    fn on_failure(&mut self, policy: &BreakerPolicy, fatal: bool) -> bool {
        self.consec_errors += 1;
        let trip = match self.breaker {
            // A failed half-open probe always re-opens.
            BreakerState::HalfOpen => true,
            _ => fatal || self.consec_errors >= policy.consecutive_errors,
        };
        if trip {
            self.trip(policy);
        }
        trip
    }

    fn trip(&mut self, policy: &BreakerPolicy) {
        if self.cur_backoff_s <= 0.0 {
            self.cur_backoff_s = policy.backoff_s;
        }
        self.breaker = BreakerState::Open;
        self.open_until_s = self.clock_s + self.cur_backoff_s;
        self.cur_backoff_s = (self.cur_backoff_s * policy.backoff_factor).min(policy.max_backoff_s);
    }
}

/// One contiguous shard of the batch, owned by a device but movable.
#[derive(Clone, Copy, Debug)]
struct Chunk {
    start: usize,
    len: usize,
    owner: usize,
    attempts: usize,
    last_failed: Option<usize>,
}

/// A multi-device dispatcher over N simulated GPUs plus the CPU host
/// pool. See the [module docs](self) for the scheduling model.
pub struct Fleet {
    devices: Vec<FleetDevice>,
    opts: RunOpts,
    policy: FleetPolicy,
    chaos: Option<ChaosPlan>,
    runtime: Mutex<Vec<DeviceState>>,
    counters: Arc<RecoveryCounters>,
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet")
            .field("devices", &self.devices.iter().map(|d| &d.name).collect::<Vec<_>>())
            .field("policy", &self.policy)
            .field("chaos", &self.chaos)
            .finish_non_exhaustive()
    }
}

impl Fleet {
    pub fn builder() -> FleetBuilder {
        FleetBuilder::default()
    }

    /// Number of devices in the fleet.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Device sessions, in fleet index order (for inspection).
    pub fn sessions(&self) -> impl Iterator<Item = &Session> {
        self.devices.iter().map(|d| &d.session)
    }

    /// Device names, in fleet index order (duplicated configs are
    /// disambiguated with a `#k` suffix at build time).
    pub fn device_names(&self) -> Vec<String> {
        self.devices.iter().map(|d| d.name.clone()).collect()
    }

    /// Each device's simulated clock, in seconds, as of the last
    /// completed run (clocks persist across runs).
    pub fn device_clocks(&self) -> Vec<f64> {
        self.runtime
            .lock()
            .expect("fleet runtime lock poisoned")
            .iter()
            .map(|s| s.clock_s)
            .collect()
    }

    /// Cumulative dispatch count per device (the index chaos events key
    /// on), as of the last completed run.
    pub fn device_dispatches(&self) -> Vec<usize> {
        self.runtime
            .lock()
            .expect("fleet runtime lock poisoned")
            .iter()
            .map(|s| s.dispatches)
            .collect()
    }

    /// Cumulative recovery totals across every fleet run (the fleet's
    /// own counter cell — device sessions also keep theirs).
    pub fn recovery_totals(&self) -> RecoveryTelemetry {
        self.counters.snapshot()
    }

    /// Read and reset the fleet's recovery totals.
    pub fn take_recovery_totals(&self) -> RecoveryTelemetry {
        self.counters.take()
    }

    /// Proportional shares of `count` problems by modeled throughput
    /// (largest-remainder rounding; equal weights when the model has no
    /// estimate, e.g. GEMM).
    fn shares<T: DeviceScalar>(&self, op: Op, m: usize, n: usize, count: usize) -> Vec<usize> {
        let weights: Vec<f64> = self
            .devices
            .iter()
            .map(|d| {
                model_alg(op)
                    .and_then(|alg| {
                        regla_model::choose(
                            d.session.params(),
                            d.session.config(),
                            alg,
                            m,
                            n,
                            count,
                            T::WORDS,
                        )
                        .ok()
                    })
                    .and_then(|dec| dec.chosen().ok().map(|c| c.time_s))
                    .map(|t| if t > 0.0 { 1.0 / t } else { 1.0 })
                    .unwrap_or(1.0)
            })
            .collect();
        let total: f64 = weights.iter().sum();
        let mut shares: Vec<usize> = Vec::with_capacity(weights.len());
        let mut fracs: Vec<(usize, f64)> = Vec::with_capacity(weights.len());
        let mut assigned = 0usize;
        for (i, w) in weights.iter().enumerate() {
            let exact = count as f64 * w / total;
            let base = exact.floor() as usize;
            shares.push(base);
            assigned += base;
            fracs.push((i, exact - base as f64));
        }
        // Hand out the remainder by largest fractional part, ties to the
        // lowest device index (sort is stable over the index order).
        fracs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        for (i, _) in fracs.into_iter().take(count - assigned) {
            shares[i] += 1;
        }
        shares
    }

    /// Per-dispatch deadline budget in simulated cycles: the model's
    /// worst-candidate estimate for a `len`-problem chunk on `dev`,
    /// times the policy slack. `None` when deadlines are disarmed or
    /// the model has no estimate for the operation.
    fn deadline_budget<T: DeviceScalar>(
        &self,
        dev: usize,
        op: Op,
        m: usize,
        n: usize,
        len: usize,
    ) -> Option<u64> {
        let slack = self.policy.deadline_slack?;
        let alg = model_alg(op)?;
        let session = &self.devices[dev].session;
        let dec =
            regla_model::choose(session.params(), session.config(), alg, m, n, len, T::WORDS)
                .ok()?;
        let worst = dec
            .candidates
            .iter()
            .map(|c| c.time_s)
            .fold(f64::NEG_INFINITY, f64::max);
        if !worst.is_finite() || worst <= 0.0 {
            return None;
        }
        let cycles = session.config().secs_to_cycles(worst) * slack;
        Some(cycles.max(0.0).ceil() as u64)
    }

    /// Shard `a` (and `b`) across the fleet and run `op`, with failover,
    /// stealing, deadlines and the chaos plan applied. The merged output
    /// is in original problem order.
    pub fn run<T: DeviceScalar>(
        &self,
        op: Op,
        a: &MatBatch<T>,
        b: Option<&MatBatch<T>>,
    ) -> Result<FleetRun<T>, ReglaError> {
        self.run_with(op, a, b, &self.opts)
    }

    /// [`Fleet::run`] with per-call options overriding the fleet's base
    /// [`RunOpts`] (the fleet still layers its own deadline / stall /
    /// fault knobs on top per dispatch). This is the submission surface
    /// the serving layer uses to carry request-level math/exec settings
    /// through a shared fleet.
    pub fn run_with<T: DeviceScalar>(
        &self,
        op: Op,
        a: &MatBatch<T>,
        b: Option<&MatBatch<T>>,
        opts: &RunOpts,
    ) -> Result<FleetRun<T>, ReglaError> {
        let count = a.count();
        if count == 0 {
            return Err(ReglaError::EmptyBatch);
        }
        let nd = self.devices.len();
        let shares = self.shares::<T>(op, a.rows(), a.cols(), count);

        // Plan contiguous chunks in problem order so the final concat
        // reassembles the original batch.
        let mut chunks: Vec<Chunk> = Vec::new();
        let mut queues: Vec<VecDeque<usize>> = vec![VecDeque::new(); nd];
        let mut reports: Vec<DeviceReport> = self
            .devices
            .iter()
            .map(|d| DeviceReport {
                name: d.name.clone(),
                ..DeviceReport::default()
            })
            .collect();
        let mut start = 0usize;
        for (dev, &share) in shares.iter().enumerate() {
            reports[dev].planned_problems = share;
            if share == 0 {
                continue;
            }
            let nchunks = self.policy.chunks_per_device.min(share);
            reports[dev].planned_chunks = nchunks;
            for c in 0..nchunks {
                // Near-equal split of `share` into `nchunks` pieces.
                let lo = share * c / nchunks;
                let hi = share * (c + 1) / nchunks;
                let id = chunks.len();
                chunks.push(Chunk {
                    start: start + lo,
                    len: hi - lo,
                    owner: dev,
                    attempts: 0,
                    last_failed: None,
                });
                queues[dev].push_back(id);
            }
            start += share;
        }
        debug_assert_eq!(start, count);

        let mut state = self
            .runtime
            .lock()
            .expect("fleet runtime lock poisoned")
            .clone();
        let mut retry: VecDeque<usize> = VecDeque::new();
        let mut done: Vec<Option<OpOutput<T>>> = (0..chunks.len()).map(|_| None).collect();
        let mut report = FleetReport {
            chunks: chunks.len(),
            ..FleetReport::default()
        };
        let mut remaining = chunks.len();

        while remaining > 0 {
            // The device that can dispatch earliest goes next; ties
            // break to the lowest index for determinism.
            let dev = (0..nd)
                .min_by(|&x, &y| {
                    state[x]
                        .avail_s()
                        .partial_cmp(&state[y].avail_s())
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("fleet has at least one device");
            let now = state[dev].avail_s();
            state[dev].clock_s = now;
            if state[dev].breaker == BreakerState::Open && now >= state[dev].open_until_s {
                state[dev].breaker = BreakerState::HalfOpen;
            }

            // Pick work: rescue a failed chunk (from another device if
            // possible), then our own queue, then steal from the most
            // loaded peer, then self-retry as a last resort.
            let mut rescued = false;
            let cid = if let Some(pos) =
                retry.iter().position(|&c| chunks[c].last_failed != Some(dev))
            {
                rescued = true;
                retry.remove(pos).expect("position came from this deque")
            } else if let Some(c) = queues[dev].pop_front() {
                c
            } else if let Some(victim) = (0..nd)
                .filter(|&v| v != dev && !queues[v].is_empty())
                .max_by_key(|&v| (queues[v].len(), std::cmp::Reverse(v)))
            {
                queues[victim].pop_back().expect("victim queue is non-empty")
            } else if let Some(c) = retry.pop_front() {
                rescued = true;
                c
            } else {
                // remaining > 0 means some chunk is queued somewhere.
                unreachable!("undone chunks must be queued");
            };

            let chunk = chunks[cid];
            let launch_idx = state[dev].dispatches;
            state[dev].dispatches += 1;

            let budget = self.deadline_budget::<T>(dev, op, a.rows(), a.cols(), chunk.len);
            let res: Result<OpOutput<T>, ReglaError> = if self
                .chaos
                .as_ref()
                .is_some_and(|p| p.dead(dev, launch_idx))
            {
                // A dead device rejects the launch without running it.
                Err(ReglaError::Launch(LaunchError::DeviceLost { device: dev }))
            } else {
                let mut o = opts.clone();
                o.deadline_cycles = budget;
                if let Some(plan) = &self.chaos {
                    o.stall_cycles += plan.stall(dev, launch_idx);
                    if let Some(fp) = plan.storm(dev, launch_idx) {
                        o.fault = Some(fp);
                    }
                }
                let sub_a = a.slice_problems(chunk.start, chunk.len);
                let sub_b = b.map(|b| b.slice_problems(chunk.start, chunk.len));
                self.devices[dev]
                    .session
                    .run_with(op, &sub_a, sub_b.as_ref(), &o)
            };

            match res {
                Ok(out) => {
                    state[dev].clock_s += out.run.stats.time_s;
                    reports[dev].chunks_run += 1;
                    reports[dev].problems_run += chunk.len;
                    reports[dev].faults_detected += out.run.recovery.faults_detected;
                    if rescued || chunk.attempts > 0 {
                        reports[dev].rescues += 1;
                        report.failovers += 1;
                    } else if dev != chunk.owner {
                        reports[dev].steals += 1;
                        report.steals += 1;
                    }
                    // Health gate: a device that "succeeds" while most of
                    // its problems come back fault-tainted is quarantined.
                    let rate = out.run.recovery.faults_detected as f64 / chunk.len.max(1) as f64;
                    if rate >= self.policy.breaker.fault_rate_threshold {
                        state[dev].trip(&self.policy.breaker);
                        reports[dev].breaker_trips += 1;
                        report.breaker_trips += 1;
                    } else {
                        state[dev].on_success(&self.policy.breaker);
                    }
                    done[cid] = Some(out);
                    remaining -= 1;
                }
                Err(e) => {
                    let (fatal, cost_s) = match &e {
                        ReglaError::Launch(LaunchError::DeviceLost { .. }) => (true, FAIL_COST_S),
                        ReglaError::Launch(LaunchError::DeadlineExceeded { budget, .. }) => {
                            reports[dev].deadline_misses += 1;
                            report.deadline_misses += 1;
                            (
                                false,
                                self.devices[dev]
                                    .session
                                    .config()
                                    .cycles_to_secs(*budget as f64),
                            )
                        }
                        ReglaError::Launch(_) => (false, FAIL_COST_S),
                        // Shape/option/model errors are deterministic
                        // input problems — no device would fare better.
                        _ => return Err(e),
                    };
                    state[dev].clock_s += cost_s;
                    reports[dev].failed_dispatches += 1;
                    if state[dev].on_failure(&self.policy.breaker, fatal) {
                        reports[dev].breaker_trips += 1;
                        report.breaker_trips += 1;
                    }
                    chunks[cid].attempts += 1;
                    chunks[cid].last_failed = Some(dev);
                    if chunks[cid].attempts > nd {
                        // Every device (plus one) had its shot: degrade
                        // to the host pool or fail structurally.
                        if self.policy.cpu_pool {
                            done[cid] = Some(host_chunk(
                                op,
                                &a.slice_problems(chunk.start, chunk.len),
                                b.map(|b| b.slice_problems(chunk.start, chunk.len)).as_ref(),
                            )?);
                            report.cpu_pool_chunks += 1;
                            report.cpu_pool_problems += chunk.len;
                            remaining -= 1;
                        } else {
                            return Err(ReglaError::FleetUnavailable(format!(
                                "chunk of {} problems failed on every device ({} attempts) \
                                 and the CPU pool is disabled: {e}",
                                chunk.len,
                                chunks[cid].attempts,
                            )));
                        }
                    } else {
                        retry.push_back(cid);
                    }
                }
            }
        }

        // Persist clocks/breakers for the next run, snapshot them into
        // the report.
        for (dev, rep) in reports.iter_mut().enumerate() {
            rep.breaker_state = state[dev].breaker;
            rep.sim_time_s = state[dev].clock_s;
        }
        *self.runtime.lock().expect("fleet runtime lock poisoned") = state;
        report.devices = reports;

        let parts: Vec<OpOutput<T>> = done
            .into_iter()
            .map(|o| o.expect("every chunk completed or the run errored"))
            .collect();
        let mut output = merge_outputs(parts);
        let rec = &mut output.run.recovery;
        rec.device_failovers += report.failovers;
        rec.shards_stolen += report.steals;
        rec.deadline_misses += report.deadline_misses;
        rec.breaker_trips += report.breaker_trips;
        output.run.stats.recovery = *rec;
        self.counters.record(rec);
        Ok(FleetRun { output, report })
    }
}

/// Merge chunk outputs (already in problem order) into one
/// [`OpOutput`] — the fleet counterpart of the pipeline's chunk merge.
fn merge_outputs<T: DeviceScalar>(parts: Vec<OpOutput<T>>) -> OpOutput<T> {
    let outs: Vec<_> = parts.iter().map(|o| o.run.out.clone()).collect();
    let out = MatBatch::concat_problems(&outs);
    let taus = parts
        .iter()
        .map(|o| o.run.taus.clone())
        .collect::<Option<Vec<_>>>()
        .map(|t| MatBatch::concat_problems(&t));
    let solution = parts
        .iter()
        .map(|o| o.solution.clone())
        .collect::<Option<Vec<_>>>()
        .map(|s| MatBatch::concat_problems(&s));

    let mut stats = MultiLaunch::default();
    let mut status = Vec::new();
    let mut recovery = RecoveryStats::default();
    let mut profile = None;
    let approach = parts[0].run.approach;
    for o in parts {
        for l in o.run.stats.launches {
            stats.push(l);
        }
        status.extend(o.run.status);
        recovery.merge(&o.run.recovery);
        if profile.is_none() {
            profile = o.run.profile;
        }
    }
    stats.recovery = recovery;
    let sanitizer = api::merge_sanitizer(&stats);
    OpOutput {
        run: BatchRun {
            out,
            approach,
            stats,
            taus,
            status,
            recovery,
            profile,
            sanitizer,
        },
        solution,
    }
}

/// Compute one chunk entirely on the CPU host pool (degraded mode):
/// the same host baselines the recovery layer falls back to, per
/// problem, with the same finite screen as the device paths.
fn host_chunk<T: DeviceScalar>(
    op: Op,
    a: &MatBatch<T>,
    b: Option<&MatBatch<T>>,
) -> Result<OpOutput<T>, ReglaError> {
    let count = a.count();
    let n = a.cols();
    let rhs = || {
        b.ok_or_else(|| {
            ReglaError::InvalidConfig(format!("Op::{op:?} requires a right-hand-side batch"))
        })
    };
    // Map the operation onto the host baseline: the augmented system to
    // reduce, the factored width, and where the solution lives.
    let (aug, nfac, alg) = match op {
        Op::Qr => (a.clone(), n, PtAlg::Qr),
        Op::Lu => (a.clone(), n, PtAlg::Lu),
        Op::Cholesky => (a.clone(), n, PtAlg::Cholesky),
        Op::GjSolve => (MatBatch::augment(a, rhs()?), n, PtAlg::Gj),
        Op::QrSolve => (MatBatch::augment(a, rhs()?), n, PtAlg::QrSolve),
        Op::LeastSquares => (MatBatch::augment(a, rhs()?), n, PtAlg::QrSolve),
        Op::Invert => {
            let eye = MatBatch::from_fn(n, n, count, |_, i, j| {
                if i == j {
                    T::one()
                } else {
                    T::zero()
                }
            });
            (MatBatch::augment(a, &eye), n, PtAlg::Gj)
        }
        Op::Gemm => {
            let b = rhs()?;
            let mut out = MatBatch::<T>::zeros(a.rows(), b.cols(), count);
            let mut status = Vec::with_capacity(count);
            for p in 0..count {
                out.set_mat(p, &a.mat(p).matmul(&b.mat(p)));
                status.push(if api::problem_is_finite(&out, None, p) {
                    ProblemStatus::Ok
                } else {
                    ProblemStatus::NonFinite
                });
            }
            let recovery = RecoveryStats {
                cpu_degraded: count,
                ..RecoveryStats::default()
            };
            let stats = MultiLaunch {
                recovery,
                ..MultiLaunch::default()
            };
            return Ok(OpOutput {
                run: BatchRun {
                    out,
                    approach: Approach::Hybrid,
                    stats,
                    taus: None,
                    status,
                    recovery,
                    profile: None,
                    sanitizer: None,
                },
                solution: None,
            });
        }
    };

    let mut out = MatBatch::<T>::zeros(aug.rows(), aug.cols(), count);
    let mut taus = matches!(op, Op::Qr).then(|| MatBatch::<T>::zeros(nfac, 1, count));
    let mut status = Vec::with_capacity(count);
    for p in 0..count {
        status.push(api::host_fallback(&aug, nfac, alg, p, &mut out, taus.as_mut()));
    }
    let solution = match op {
        Op::LeastSquares => Some(out.sub(0, n, n, 1)),
        Op::Invert => Some(out.sub(0, n, n, n)),
        _ => None,
    };
    let recovery = RecoveryStats {
        cpu_degraded: count,
        ..RecoveryStats::default()
    };
    let stats = MultiLaunch {
        recovery,
        ..MultiLaunch::default()
    };
    Ok(OpOutput {
        run: BatchRun {
            out,
            approach: Approach::Hybrid,
            stats,
            taus,
            status,
            recovery,
            profile: None,
            sanitizer: None,
        },
        solution,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dd_batch(n: usize, count: usize) -> MatBatch<f32> {
        MatBatch::from_fn(n, n, count, |k, i, j| {
            let v = (((k * 31 + i * 7 + j * 3) % 17) as f32) / 17.0 - 0.4;
            if i == j {
                v + n as f32
            } else {
                v
            }
        })
    }

    #[test]
    fn zero_devices_is_a_structured_error() {
        let err = Fleet::builder().build().unwrap_err();
        assert!(matches!(err, ReglaError::FleetUnavailable(_)));
        assert!(err.to_string().contains("no devices"));
    }

    #[test]
    fn zero_throughput_device_is_rejected_at_build() {
        let mut cfg = GpuConfig::quadro_6000();
        cfg.num_sms = 0;
        let err = Fleet::builder().device(cfg).build().unwrap_err();
        assert!(matches!(err, ReglaError::InvalidConfig(_)), "{err}");
        assert!(err.to_string().contains("zero throughput"), "{err}");
    }

    #[test]
    fn non_positive_clock_is_rejected_at_build() {
        for bad in [0.0, -1.2, f64::NAN] {
            let mut cfg = GpuConfig::gt200();
            cfg.core_clock_ghz = bad;
            let err = Fleet::builder()
                .device(GpuConfig::quadro_6000())
                .device(cfg)
                .build()
                .unwrap_err();
            assert!(matches!(err, ReglaError::InvalidConfig(_)), "{err}");
            assert!(err.to_string().contains("device 1"), "{err}");
        }
    }

    #[test]
    fn duplicate_device_configs_stay_legal_and_get_distinct_names() {
        let fleet = Fleet::builder()
            .device(GpuConfig::quadro_6000())
            .device(GpuConfig::quadro_6000())
            .device(GpuConfig::quadro_6000())
            .build()
            .unwrap();
        let names = fleet.device_names();
        assert_eq!(names.len(), 3);
        assert_eq!(names[0], GpuConfig::quadro_6000().name);
        assert_eq!(names[1], format!("{}#1", names[0]));
        assert_eq!(names[2], format!("{}#2", names[0]));
        // Homogeneous twins still run and agree with a single session.
        let a = dd_batch(6, 40);
        let run = fleet.run(Op::Lu, &a, None).unwrap();
        let sref = Session::new().run(Op::Lu, &a, None).unwrap();
        assert_eq!(run.output.run.out.data(), sref.run.out.data());
    }

    #[test]
    fn single_device_fleet_matches_session_bit_for_bit() {
        let cfg = GpuConfig::quadro_6000();
        let a = dd_batch(10, 130); // not divisible by 4 chunks
        let session = Session::with_config(cfg.clone());
        let sref = session.run(Op::Qr, &a, None).unwrap();
        let fleet = Fleet::builder().device(cfg).build().unwrap();
        let frun = fleet.run(Op::Qr, &a, None).unwrap();
        assert_eq!(frun.output.run.out.data(), sref.run.out.data());
        assert_eq!(
            frun.output.run.taus.as_ref().unwrap().data(),
            sref.run.taus.as_ref().unwrap().data()
        );
        assert_eq!(frun.output.run.status, sref.run.status);
        assert_eq!(frun.report.failovers, 0);
        assert_eq!(frun.report.steals, 0);
        assert_eq!(frun.report.cpu_pool_problems, 0);
    }

    #[test]
    fn sharding_is_throughput_proportional_and_covers_the_batch() {
        let fleet = Fleet::builder()
            .device(GpuConfig::quadro_6000())
            .device(GpuConfig::gt200())
            .build()
            .unwrap();
        let shares = fleet.shares::<f32>(Op::Lu, 8, 8, 1000);
        assert_eq!(shares.iter().sum::<usize>(), 1000);
        assert!(shares.iter().all(|&s| s > 0), "shares = {shares:?}");
        // Different devices get different (throughput-weighted) shares,
        // not a naive even split.
        assert_ne!(shares[0], shares[1], "shares = {shares:?}");
    }

    #[test]
    fn device_death_fails_over_and_still_solves_everything() {
        let a = dd_batch(8, 96);
        let fleet = Fleet::builder()
            .device(GpuConfig::quadro_6000())
            .device(GpuConfig::quadro_6000_dual_copy())
            .chaos(ChaosPlan::new(3).device_death(1, 0))
            .build()
            .unwrap();
        let run = fleet.run(Op::Lu, &a, None).unwrap();
        assert!(run.output.run.status.iter().all(|s| s.is_ok()));
        assert!(run.report.failovers > 0);
        assert!(run.report.breaker_trips > 0);
        assert_eq!(run.report.devices[1].chunks_run, 0);
        assert_eq!(run.report.devices[1].breaker_state, BreakerState::Open);
        // The survivor computed the whole batch, bit-identical to a
        // plain session (functional results are device-independent).
        let sref = Session::new().run(Op::Lu, &a, None).unwrap();
        assert_eq!(run.output.run.out.data(), sref.run.out.data());
    }

    #[test]
    fn seeded_chaos_reruns_bit_identically() {
        let a = dd_batch(6, 64);
        let build = || {
            Fleet::builder()
                .device(GpuConfig::quadro_6000())
                .device(GpuConfig::gt200())
                .chaos(
                    ChaosPlan::new(11)
                        .device_death(1, 2)
                        .fault_storm(0, 0, 2, 3),
                )
                .build()
                .unwrap()
        };
        let r1 = build().run(Op::GjSolve, &a, Some(&dd_batch(6, 64).sub(0, 0, 6, 1))).unwrap();
        let r2 = build().run(Op::GjSolve, &a, Some(&dd_batch(6, 64).sub(0, 0, 6, 1))).unwrap();
        assert_eq!(r1.output.run.out.data(), r2.output.run.out.data());
        assert_eq!(r1.output.run.status, r2.output.run.status);
        assert_eq!(r1.output.run.recovery, r2.output.run.recovery);
        assert_eq!(r1.report, r2.report);
    }

    #[test]
    fn impossible_deadline_degrades_to_cpu_pool() {
        let a = dd_batch(8, 40);
        let fleet = Fleet::builder()
            .device(GpuConfig::quadro_6000())
            .policy(FleetPolicy {
                deadline_slack: Some(1e-12), // budget rounds to ~0 cycles
                ..FleetPolicy::default()
            })
            .build()
            .unwrap();
        let run = fleet.run(Op::Lu, &a, None).unwrap();
        assert!(run.report.deadline_misses > 0);
        assert_eq!(run.report.cpu_pool_problems, 40);
        assert_eq!(run.output.run.recovery.cpu_degraded, 40);
        assert!(run.output.run.status.iter().all(|s| s.is_ok()));
        // Telemetry flows into the fleet counters.
        assert!(fleet.recovery_totals().deadline_misses > 0);
        assert_eq!(fleet.recovery_totals().cpu_degraded, 40);
    }

    #[test]
    fn all_devices_dead_without_cpu_pool_is_structured() {
        let a = dd_batch(6, 16);
        let fleet = Fleet::builder()
            .device(GpuConfig::quadro_6000())
            .device(GpuConfig::gt200())
            .policy(FleetPolicy {
                cpu_pool: false,
                ..FleetPolicy::default()
            })
            .chaos(ChaosPlan::new(1).device_death(0, 0).device_death(1, 0))
            .build()
            .unwrap();
        let err = fleet.run(Op::Lu, &a, None).unwrap_err();
        assert!(matches!(err, ReglaError::FleetUnavailable(_)));
    }

    #[test]
    fn fault_storm_is_recovered_and_gates_health() {
        let a = dd_batch(8, 64);
        let fleet = Fleet::builder()
            .device(GpuConfig::quadro_6000())
            .device(GpuConfig::quadro_6000_dual_copy())
            .chaos(ChaosPlan::new(5).fault_storm(0, 0, 8, 64))
            .build()
            .unwrap();
        let run = fleet.run(Op::Lu, &a, None).unwrap();
        // Recovery (retry w/o faults) settles every problem.
        assert!(run.output.run.status.iter().all(|s| s.is_ok()));
        assert!(run.output.run.recovery.faults_detected > 0);
        let sref = Session::new().run(Op::Lu, &a, None).unwrap();
        assert_eq!(run.output.run.out.data(), sref.run.out.data());
    }

    #[test]
    fn solutions_survive_failover_for_solution_ops() {
        let n = 6;
        let a = dd_batch(n, 48);
        let fleet = Fleet::builder()
            .device(GpuConfig::quadro_6000())
            .device(GpuConfig::gt200())
            .chaos(ChaosPlan::new(9).device_death(1, 0))
            .build()
            .unwrap();
        let run = fleet.run(Op::Invert, &a, None).unwrap();
        let inv = run.output.solution.as_ref().unwrap();
        assert_eq!(inv.rows(), n);
        assert_eq!(inv.cols(), n);
        assert_eq!(inv.count(), 48);
        let sref = Session::new().run(Op::Invert, &a, None).unwrap();
        assert_eq!(inv.data(), sref.solution.as_ref().unwrap().data());
    }

    #[test]
    fn host_chunk_matches_host_semantics_per_op() {
        let n = 5;
        let a = dd_batch(n, 9);
        let b = dd_batch(n, 9).sub(0, 0, n, 1);
        for op in [Op::Qr, Op::Lu, Op::Cholesky, Op::GjSolve, Op::QrSolve, Op::Invert, Op::Gemm] {
            let a = if op == Op::Cholesky {
                // SPD: AᵀA of a diagonally dominant batch.
                MatBatch::from_fn(n, n, 9, |k, i, j| {
                    let m = a.mat(k);
                    (0..n).map(|t| m[(t, i)] * m[(t, j)]).sum::<f32>()
                })
            } else {
                a.clone()
            };
            let bb = op.needs_rhs().then(|| {
                if op == Op::Gemm {
                    a.clone()
                } else {
                    b.clone()
                }
            });
            let out = host_chunk(op, &a, bb.as_ref()).unwrap();
            assert_eq!(out.run.status.len(), 9, "{op:?}");
            assert!(out.run.status.iter().all(|s| s.is_settled()), "{op:?}");
            assert_eq!(out.run.recovery.cpu_degraded, 9, "{op:?}");
            assert_eq!(out.run.approach, Approach::Hybrid, "{op:?}");
        }
    }

    #[test]
    fn breaker_backoff_doubles_and_half_open_probe_recloses() {
        let policy = BreakerPolicy::default();
        let mut d = DeviceState::default();
        assert!(!d.on_failure(&policy, false)); // 1 < consecutive_errors
        assert!(d.on_failure(&policy, false)); // trips
        assert_eq!(d.breaker, BreakerState::Open);
        let first_until = d.open_until_s;
        assert!(first_until > d.clock_s);
        // Past the backoff the device probes half-open.
        d.clock_s = first_until;
        d.breaker = BreakerState::HalfOpen;
        assert!(d.on_failure(&policy, false)); // probe fails -> reopen
        assert!(d.open_until_s - d.clock_s > policy.backoff_s * 1.5); // doubled
        d.breaker = BreakerState::HalfOpen;
        d.on_success(&policy);
        assert_eq!(d.breaker, BreakerState::Closed);
        assert_eq!(d.consec_errors, 0);
    }

    #[test]
    fn device_lost_trips_immediately() {
        let policy = BreakerPolicy::default();
        let mut d = DeviceState::default();
        assert!(d.on_failure(&policy, true));
        assert_eq!(d.breaker, BreakerState::Open);
    }
}
