//! Per-problem outcome reporting and bounded fault recovery.
//!
//! Batched runs never fail wholesale: each problem gets a
//! [`ProblemStatus`] verdict, reported uniformly by the per-thread,
//! per-block and tiled paths (and by the `regla-cpu` baseline, so
//! verdicts can be compared across backends). When the simulator's fault
//! campaign corrupts a block, the [`RecoveryPolicy`] bounds what the API
//! does about it: retry the failed subset on the device, then degrade to
//! the host baseline — never loop, never panic.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Which verification screen flagged a problem.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VerifyScreen {
    /// The ABFT checksum relation of the factorization (e.g. `L(Ue)=Ae`
    /// for LU, `Q(Re)=Ae` for QR) broke tolerance.
    Checksum,
    /// The solve-path residual `‖A·x̂ − b‖ / (‖A‖·‖x̂‖ + ‖b‖)` broke
    /// tolerance.
    Residual,
}

/// Outcome of one problem in a batch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ProblemStatus {
    /// Factorization/solve completed.
    Ok,
    /// A zero (LU/GJ) or non-positive (Cholesky) pivot at `col`; the
    /// problem is singular / not positive definite under the paper's
    /// no-pivoting algorithms (the `*notsolved` flag, with the column).
    ZeroPivot { col: usize },
    /// The result contains NaN or infinity.
    NonFinite,
    /// The simulated hardware reported a fault (bit flip or block abort)
    /// in the block that computed this problem; the result is untrusted
    /// even if it looks plausible.
    FaultDetected,
    /// The result is finite but failed an algorithm-based verification
    /// screen ([`crate::verify`]): silent corruption the hardware did not
    /// report. `norm` is the normalized screen value that broke
    /// tolerance. Not settled, so the usual retry/fallback recovery
    /// re-runs the problem.
    VerifyFailed { screen: VerifyScreen, norm: f64 },
}

// `norm` is invariantly finite (a screen that produced NaN reports the
// problem as NonFinite instead), so equality is reflexive.
impl Eq for ProblemStatus {}

impl ProblemStatus {
    /// Whether the result is numerically trustworthy. `ZeroPivot` counts
    /// as a *reported* outcome (the algorithm did its job of detecting
    /// the singularity), but the factors are not usable.
    pub fn is_ok(self) -> bool {
        matches!(self, ProblemStatus::Ok)
    }

    /// Whether the run produced a *trustworthy verdict*: either a good
    /// result or a correctly-diagnosed singular input. Fault-tainted and
    /// non-finite results are not settled.
    pub fn is_settled(self) -> bool {
        matches!(self, ProblemStatus::Ok | ProblemStatus::ZeroPivot { .. })
    }
}

/// Bounded recovery applied when problems come back fault-tainted or
/// non-finite.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Device retries for the failed subset (with fault injection off).
    pub retries: u32,
    /// After retries are exhausted, recompute the still-failed problems
    /// with the host baseline.
    pub cpu_fallback: bool,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            retries: 1,
            cpu_fallback: true,
        }
    }
}

impl RecoveryPolicy {
    /// No retries, no fallback: report raw statuses.
    pub fn off() -> Self {
        RecoveryPolicy {
            retries: 0,
            cpu_fallback: false,
        }
    }
}

/// What the recovery layer did for one batched run.
///
/// The first five fields are per-problem events from the single-device
/// retry/fallback policy; the rest are device-level events recorded by a
/// [`crate::fleet::Fleet`] (zero on plain `Session` runs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Problems whose block the simulator reported a fault in.
    pub faults_detected: usize,
    /// Problems flagged `VerifyFailed` by a checksum/residual screen
    /// before recovery ran (silent corruption detected by verification,
    /// not by the hardware).
    pub verify_failures: usize,
    /// Verify-flagged problems that ended settled after recovery.
    pub verify_recovered: usize,
    /// Problems re-run on the device (summed over retry rounds).
    pub retried: usize,
    /// Problems recomputed by the host baseline.
    pub fell_back: usize,
    /// Problems that ended settled (Ok or ZeroPivot) after recovery.
    pub recovered: usize,
    /// Problems still fault-tainted or non-finite after the policy was
    /// exhausted (only possible with a truncated policy).
    pub unrecovered: usize,
    /// Shards re-dispatched to another device after theirs failed.
    pub device_failovers: usize,
    /// Shards executed by a device other than their planned owner because
    /// the owner was a straggler (work stealing).
    pub shards_stolen: usize,
    /// Launches that blew their model-derived deadline budget.
    pub deadline_misses: usize,
    /// Times a device circuit breaker tripped open.
    pub breaker_trips: usize,
    /// Problems computed by the CPU degraded mode because no device could
    /// take them.
    pub cpu_degraded: usize,
}

impl RecoveryStats {
    pub fn merge(&mut self, other: &RecoveryStats) {
        self.faults_detected += other.faults_detected;
        self.verify_failures += other.verify_failures;
        self.verify_recovered += other.verify_recovered;
        self.retried += other.retried;
        self.fell_back += other.fell_back;
        self.recovered += other.recovered;
        self.unrecovered += other.unrecovered;
        self.device_failovers += other.device_failovers;
        self.shards_stolen += other.shards_stolen;
        self.deadline_misses += other.deadline_misses;
        self.breaker_trips += other.breaker_trips;
        self.cpu_degraded += other.cpu_degraded;
    }
}

/// Monotonic recovery counters: one instance per [`crate::Session`] (and
/// per fleet), read via `Session::recovery_totals` /
/// `Fleet::recovery_totals`.
#[derive(Debug)]
pub(crate) struct RecoveryCounters {
    faults_detected: AtomicU64,
    verify_failures: AtomicU64,
    verify_recovered: AtomicU64,
    retried: AtomicU64,
    fell_back: AtomicU64,
    recovered: AtomicU64,
    unrecovered: AtomicU64,
    device_failovers: AtomicU64,
    shards_stolen: AtomicU64,
    deadline_misses: AtomicU64,
    breaker_trips: AtomicU64,
    cpu_degraded: AtomicU64,
}

impl RecoveryCounters {
    pub(crate) const fn new() -> Self {
        RecoveryCounters {
            faults_detected: AtomicU64::new(0),
            verify_failures: AtomicU64::new(0),
            verify_recovered: AtomicU64::new(0),
            retried: AtomicU64::new(0),
            fell_back: AtomicU64::new(0),
            recovered: AtomicU64::new(0),
            unrecovered: AtomicU64::new(0),
            device_failovers: AtomicU64::new(0),
            shards_stolen: AtomicU64::new(0),
            deadline_misses: AtomicU64::new(0),
            breaker_trips: AtomicU64::new(0),
            cpu_degraded: AtomicU64::new(0),
        }
    }

    pub(crate) fn record(&self, s: &RecoveryStats) {
        self.faults_detected.fetch_add(s.faults_detected as u64, Relaxed);
        self.verify_failures.fetch_add(s.verify_failures as u64, Relaxed);
        self.verify_recovered.fetch_add(s.verify_recovered as u64, Relaxed);
        self.retried.fetch_add(s.retried as u64, Relaxed);
        self.fell_back.fetch_add(s.fell_back as u64, Relaxed);
        self.recovered.fetch_add(s.recovered as u64, Relaxed);
        self.unrecovered.fetch_add(s.unrecovered as u64, Relaxed);
        self.device_failovers.fetch_add(s.device_failovers as u64, Relaxed);
        self.shards_stolen.fetch_add(s.shards_stolen as u64, Relaxed);
        self.deadline_misses.fetch_add(s.deadline_misses as u64, Relaxed);
        self.breaker_trips.fetch_add(s.breaker_trips as u64, Relaxed);
        self.cpu_degraded.fetch_add(s.cpu_degraded as u64, Relaxed);
    }

    pub(crate) fn snapshot(&self) -> RecoveryTelemetry {
        RecoveryTelemetry {
            faults_detected: self.faults_detected.load(Relaxed),
            verify_failures: self.verify_failures.load(Relaxed),
            verify_recovered: self.verify_recovered.load(Relaxed),
            retried: self.retried.load(Relaxed),
            fell_back: self.fell_back.load(Relaxed),
            recovered: self.recovered.load(Relaxed),
            unrecovered: self.unrecovered.load(Relaxed),
            device_failovers: self.device_failovers.load(Relaxed),
            shards_stolen: self.shards_stolen.load(Relaxed),
            deadline_misses: self.deadline_misses.load(Relaxed),
            breaker_trips: self.breaker_trips.load(Relaxed),
            cpu_degraded: self.cpu_degraded.load(Relaxed),
        }
    }

    pub(crate) fn take(&self) -> RecoveryTelemetry {
        RecoveryTelemetry {
            faults_detected: self.faults_detected.swap(0, Relaxed),
            verify_failures: self.verify_failures.swap(0, Relaxed),
            verify_recovered: self.verify_recovered.swap(0, Relaxed),
            retried: self.retried.swap(0, Relaxed),
            fell_back: self.fell_back.swap(0, Relaxed),
            recovered: self.recovered.swap(0, Relaxed),
            unrecovered: self.unrecovered.swap(0, Relaxed),
            device_failovers: self.device_failovers.swap(0, Relaxed),
            shards_stolen: self.shards_stolen.swap(0, Relaxed),
            deadline_misses: self.deadline_misses.swap(0, Relaxed),
            breaker_trips: self.breaker_trips.swap(0, Relaxed),
            cpu_degraded: self.cpu_degraded.swap(0, Relaxed),
        }
    }
}

impl Default for RecoveryCounters {
    fn default() -> Self {
        RecoveryCounters::new()
    }
}

/// Cumulative recovery totals (a [`RecoveryStats`] summed over many runs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryTelemetry {
    pub faults_detected: u64,
    pub verify_failures: u64,
    pub verify_recovered: u64,
    pub retried: u64,
    pub fell_back: u64,
    pub recovered: u64,
    pub unrecovered: u64,
    pub device_failovers: u64,
    pub shards_stolen: u64,
    pub deadline_misses: u64,
    pub breaker_trips: u64,
    pub cpu_degraded: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_predicates() {
        assert!(ProblemStatus::Ok.is_ok());
        assert!(ProblemStatus::Ok.is_settled());
        assert!(!ProblemStatus::ZeroPivot { col: 2 }.is_ok());
        assert!(ProblemStatus::ZeroPivot { col: 2 }.is_settled());
        assert!(!ProblemStatus::NonFinite.is_settled());
        assert!(!ProblemStatus::FaultDetected.is_settled());
        let vf = ProblemStatus::VerifyFailed {
            screen: VerifyScreen::Checksum,
            norm: 1e-2,
        };
        assert!(!vf.is_ok());
        assert!(!vf.is_settled(), "verify failures must reach recovery");
        assert_eq!(vf, vf, "Eq must be reflexive for finite norms");
    }

    #[test]
    fn default_policy_is_bounded() {
        let p = RecoveryPolicy::default();
        assert_eq!(p.retries, 1);
        assert!(p.cpu_fallback);
        let off = RecoveryPolicy::off();
        assert_eq!(off.retries, 0);
        assert!(!off.cpu_fallback);
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = RecoveryStats {
            faults_detected: 1,
            verify_failures: 10,
            verify_recovered: 11,
            retried: 2,
            fell_back: 3,
            recovered: 4,
            unrecovered: 0,
            device_failovers: 5,
            shards_stolen: 6,
            deadline_misses: 7,
            breaker_trips: 8,
            cpu_degraded: 9,
        };
        a.merge(&a.clone());
        assert_eq!(a.retried, 4);
        assert_eq!(a.verify_failures, 20);
        assert_eq!(a.verify_recovered, 22);
        assert_eq!(a.recovered, 8);
        assert_eq!(a.device_failovers, 10);
        assert_eq!(a.breaker_trips, 16);
        assert_eq!(a.cpu_degraded, 18);
    }

    #[test]
    fn counters_record_snapshot_take() {
        let c = RecoveryCounters::new();
        let s = RecoveryStats {
            faults_detected: 2,
            retried: 1,
            recovered: 2,
            shards_stolen: 3,
            ..Default::default()
        };
        c.record(&s);
        c.record(&s);
        let snap = c.snapshot();
        assert_eq!(snap.faults_detected, 4);
        assert_eq!(snap.shards_stolen, 6);
        // take() drains.
        assert_eq!(c.take(), snap);
        assert_eq!(c.snapshot(), RecoveryTelemetry::default());
    }
}
