//! Per-problem outcome reporting and bounded fault recovery.
//!
//! Batched runs never fail wholesale: each problem gets a
//! [`ProblemStatus`] verdict, reported uniformly by the per-thread,
//! per-block and tiled paths (and by the `regla-cpu` baseline, so
//! verdicts can be compared across backends). When the simulator's fault
//! campaign corrupts a block, the [`RecoveryPolicy`] bounds what the API
//! does about it: retry the failed subset on the device, then degrade to
//! the host baseline — never loop, never panic.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Outcome of one problem in a batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProblemStatus {
    /// Factorization/solve completed.
    Ok,
    /// A zero (LU/GJ) or non-positive (Cholesky) pivot at `col`; the
    /// problem is singular / not positive definite under the paper's
    /// no-pivoting algorithms (the `*notsolved` flag, with the column).
    ZeroPivot { col: usize },
    /// The result contains NaN or infinity.
    NonFinite,
    /// The simulated hardware reported a fault (bit flip or block abort)
    /// in the block that computed this problem; the result is untrusted
    /// even if it looks plausible.
    FaultDetected,
}

impl ProblemStatus {
    /// Whether the result is numerically trustworthy. `ZeroPivot` counts
    /// as a *reported* outcome (the algorithm did its job of detecting
    /// the singularity), but the factors are not usable.
    pub fn is_ok(self) -> bool {
        matches!(self, ProblemStatus::Ok)
    }

    /// Whether the run produced a *trustworthy verdict*: either a good
    /// result or a correctly-diagnosed singular input. Fault-tainted and
    /// non-finite results are not settled.
    pub fn is_settled(self) -> bool {
        matches!(self, ProblemStatus::Ok | ProblemStatus::ZeroPivot { .. })
    }
}

/// Bounded recovery applied when problems come back fault-tainted or
/// non-finite.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Device retries for the failed subset (with fault injection off).
    pub retries: u32,
    /// After retries are exhausted, recompute the still-failed problems
    /// with the host baseline.
    pub cpu_fallback: bool,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            retries: 1,
            cpu_fallback: true,
        }
    }
}

impl RecoveryPolicy {
    /// No retries, no fallback: report raw statuses.
    pub fn off() -> Self {
        RecoveryPolicy {
            retries: 0,
            cpu_fallback: false,
        }
    }
}

/// What the recovery layer did for one batched run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Problems whose block the simulator reported a fault in.
    pub faults_detected: usize,
    /// Problems re-run on the device (summed over retry rounds).
    pub retried: usize,
    /// Problems recomputed by the host baseline.
    pub fell_back: usize,
    /// Problems that ended settled (Ok or ZeroPivot) after recovery.
    pub recovered: usize,
    /// Problems still fault-tainted or non-finite after the policy was
    /// exhausted (only possible with a truncated policy).
    pub unrecovered: usize,
}

impl RecoveryStats {
    pub fn merge(&mut self, other: &RecoveryStats) {
        self.faults_detected += other.faults_detected;
        self.retried += other.retried;
        self.fell_back += other.fell_back;
        self.recovered += other.recovered;
        self.unrecovered += other.unrecovered;
    }
}

// Process-wide recovery counters, mirrored after every recovered run so
// the benchmark harness can report campaign totals without threading a
// collector through the API (same pattern as `regla_gpu_sim::telemetry`).
static FAULTS_DETECTED: AtomicU64 = AtomicU64::new(0);
static RETRIED: AtomicU64 = AtomicU64::new(0);
static FELL_BACK: AtomicU64 = AtomicU64::new(0);
static RECOVERED: AtomicU64 = AtomicU64::new(0);
static UNRECOVERED: AtomicU64 = AtomicU64::new(0);

pub(crate) fn record_recovery(s: &RecoveryStats) {
    FAULTS_DETECTED.fetch_add(s.faults_detected as u64, Relaxed);
    RETRIED.fetch_add(s.retried as u64, Relaxed);
    FELL_BACK.fetch_add(s.fell_back as u64, Relaxed);
    RECOVERED.fetch_add(s.recovered as u64, Relaxed);
    UNRECOVERED.fetch_add(s.unrecovered as u64, Relaxed);
}

/// Cumulative recovery totals across every run in this process.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryTelemetry {
    pub faults_detected: u64,
    pub retried: u64,
    pub fell_back: u64,
    pub recovered: u64,
    pub unrecovered: u64,
}

/// Read the process-wide recovery counters without resetting them.
pub fn recovery_snapshot() -> RecoveryTelemetry {
    RecoveryTelemetry {
        faults_detected: FAULTS_DETECTED.load(Relaxed),
        retried: RETRIED.load(Relaxed),
        fell_back: FELL_BACK.load(Relaxed),
        recovered: RECOVERED.load(Relaxed),
        unrecovered: UNRECOVERED.load(Relaxed),
    }
}

/// Read and reset the process-wide recovery counters (one experiment's
/// worth of runs).
pub fn recovery_take() -> RecoveryTelemetry {
    RecoveryTelemetry {
        faults_detected: FAULTS_DETECTED.swap(0, Relaxed),
        retried: RETRIED.swap(0, Relaxed),
        fell_back: FELL_BACK.swap(0, Relaxed),
        recovered: RECOVERED.swap(0, Relaxed),
        unrecovered: UNRECOVERED.swap(0, Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_predicates() {
        assert!(ProblemStatus::Ok.is_ok());
        assert!(ProblemStatus::Ok.is_settled());
        assert!(!ProblemStatus::ZeroPivot { col: 2 }.is_ok());
        assert!(ProblemStatus::ZeroPivot { col: 2 }.is_settled());
        assert!(!ProblemStatus::NonFinite.is_settled());
        assert!(!ProblemStatus::FaultDetected.is_settled());
    }

    #[test]
    fn default_policy_is_bounded() {
        let p = RecoveryPolicy::default();
        assert_eq!(p.retries, 1);
        assert!(p.cpu_fallback);
        let off = RecoveryPolicy::off();
        assert_eq!(off.retries, 0);
        assert!(!off.cpu_fallback);
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = RecoveryStats {
            faults_detected: 1,
            retried: 2,
            fell_back: 3,
            recovered: 4,
            unrecovered: 0,
        };
        a.merge(&a.clone());
        assert_eq!(a.retried, 4);
        assert_eq!(a.recovered, 8);
    }
}
