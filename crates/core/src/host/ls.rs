//! Least squares via QR (Section III-D) — host reference.
//!
//! `min ‖Ax − b‖` for tall `A` is solved by rewriting the normal equations
//! in terms of Q and R: `R x = Qᴴ b`. The right-hand side is appended to
//! the matrix during factorization (as the paper's kernel does), which is
//! numerically equivalent to applying the reflectors to b.

use crate::host::qr::{apply_qh, back_substitute, householder_qr_in_place};
use crate::matrix::Mat;
use crate::scalar::Scalar;

/// Solve the least-squares problem `min ‖Ax − b‖` (m >= n).
pub fn least_squares<T: Scalar>(a: &Mat<T>, b: &[T]) -> Vec<T> {
    let (m, n) = (a.rows(), a.cols());
    assert!(m >= n, "least squares requires m >= n");
    assert_eq!(b.len(), m);
    let mut f = a.clone();
    let taus = householder_qr_in_place(&mut f);
    let mut y = b.to_vec();
    apply_qh(&f, &taus, &mut y);
    back_substitute(&f, &y)
}

/// Residual norm ‖Ax − b‖ (testing / benchmark verification helper).
pub fn residual_norm<T: Scalar>(a: &Mat<T>, x: &[T], b: &[T]) -> f64 {
    let m = a.rows();
    let mut r2 = 0.0;
    for i in 0..m {
        let mut s = -b[i];
        for j in 0..a.cols() {
            s += a[(i, j)] * x[j];
        }
        r2 += s.abs2();
    }
    r2.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::C32;

    #[test]
    fn exact_system_recovered_when_consistent() {
        // b in range(A): residual ~ 0 and x is exact. The pseudo-random
        // generator keeps the columns linearly independent (a plain
        // sin(i*3+j) family is rank-3 and would admit null-space drift).
        let a = Mat::from_fn(10, 4, |i, j| {
            let h = (i * 37 + j * 101) % 97;
            (h as f64) / 97.0 + if i == j { 2.0 } else { 0.0 }
        });
        let xs = [1.0, -2.0, 0.5, 3.0];
        let mut b = vec![0.0; 10];
        for i in 0..10 {
            for j in 0..4 {
                b[i] += a[(i, j)] * xs[j];
            }
        }
        let x = least_squares(&a, &b);
        for (xi, ei) in x.iter().zip(&xs) {
            assert!((xi - ei).abs() < 1e-9);
        }
        assert!(residual_norm(&a, &x, &b) < 1e-9);
    }

    #[test]
    fn residual_is_orthogonal_to_columns() {
        // The optimality condition: Aᴴ(Ax − b) = 0.
        let a = Mat::from_fn(12, 3, |i, j| ((i as f64 + 1.0).ln() * (j as f64 + 1.0)).cos());
        let b: Vec<f64> = (0..12).map(|i| (i as f64 * 0.37).sin()).collect();
        let x = least_squares(&a, &b);
        for j in 0..3 {
            let mut dot = 0.0;
            for i in 0..12 {
                let mut ri = -b[i];
                for k in 0..3 {
                    ri += a[(i, k)] * x[k];
                }
                dot += a[(i, j)] * ri;
            }
            assert!(dot.abs() < 1e-9, "column {j} gradient {dot}");
        }
    }

    #[test]
    fn beats_or_matches_any_perturbed_solution() {
        let a = Mat::from_fn(9, 3, |i, j| ((i * j + 1) as f64).sqrt());
        let b: Vec<f64> = (0..9).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let x = least_squares(&a, &b);
        let best = residual_norm(&a, &x, &b);
        for d in 0..3 {
            let mut xp = x.clone();
            xp[d] += 1e-3;
            assert!(residual_norm(&a, &xp, &b) >= best - 1e-12);
        }
    }

    #[test]
    fn complex_least_squares_consistent_case() {
        let a = Mat::from_fn(8, 3, |i, j| {
            let h = ((i * 13 + j * 29) % 31) as f32 / 31.0;
            let g = ((i * 7 + j * 17) % 23) as f32 / 23.0;
            C32::new(h + if i == j { 1.5 } else { 0.0 }, g - 0.4)
        });
        let xs = [C32::new(1.0, 1.0), C32::new(-0.5, 0.0), C32::new(0.0, 2.0)];
        let mut b = vec![C32::default(); 8];
        for i in 0..8 {
            for j in 0..3 {
                b[i] += a[(i, j)] * xs[j];
            }
        }
        let x = least_squares(&a, &b);
        for (xi, ei) in x.iter().zip(&xs) {
            assert!((*xi - *ei).abs() < 1e-3);
        }
    }
}
