//! Gauss-Jordan elimination (Section III-A) — host reference.
//!
//! Solves `A x = b` by reducing `[A | b]` to reduced row echelon form with
//! row operations, without pivoting, exactly as the paper's kernel does:
//! proceed left to right, scale each row by the diagonal element, and
//! update everything to the right of the current column with an outer
//! product of the scaled row and the current column. n^3 FLOPs.

use crate::host::lu::ZeroPivot;
use crate::matrix::Mat;
use crate::scalar::Scalar;

/// Reduce the augmented system in place; `aug` is `n x (n + k)` where the
/// trailing `k` columns are right-hand sides. On success the trailing
/// columns hold the solutions.
pub fn gj_reduce_in_place<T: Scalar>(aug: &mut Mat<T>) -> Result<(), ZeroPivot> {
    let n = aug.rows();
    assert!(aug.cols() >= n, "augmented matrix must have >= n columns");
    for k in 0..n {
        let piv = aug[(k, k)];
        if piv == T::zero() {
            return Err(ZeroPivot { column: k });
        }
        let inv = T::one() / piv;
        // Scale the pivot row across the remaining columns.
        for j in k..aug.cols() {
            let v = aug[(k, j)] * inv;
            aug[(k, j)] = v;
        }
        // Eliminate the column above and below the pivot.
        for i in 0..n {
            if i == k {
                continue;
            }
            let f = aug[(i, k)];
            if f == T::zero() {
                continue;
            }
            for j in k..aug.cols() {
                let upd = aug[(k, j)] * f;
                aug[(i, j)] -= upd;
            }
        }
    }
    Ok(())
}

/// Solve `A x = b` by Gauss-Jordan elimination of `[A|b]` (no pivoting).
pub fn gj_solve<T: Scalar>(a: &Mat<T>, b: &[T]) -> Result<Vec<T>, ZeroPivot> {
    let n = a.rows();
    assert_eq!(a.cols(), n);
    assert_eq!(b.len(), n);
    let mut aug = Mat::from_fn(n, n + 1, |i, j| if j < n { a[(i, j)] } else { b[i] });
    gj_reduce_in_place(&mut aug)?;
    Ok((0..n).map(|i| aug[(i, n)]).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::C32;

    fn dd_mat(n: usize) -> Mat<f64> {
        let mut a = Mat::from_fn(n, n, |i, j| ((i + 2 * j) as f64).cos());
        a.make_diagonally_dominant();
        a
    }

    #[test]
    fn solves_diagonally_dominant_system() {
        let a = dd_mat(9);
        let xs: Vec<f64> = (0..9).map(|i| 0.5 * i as f64 - 2.0).collect();
        let mut b = vec![0.0; 9];
        for i in 0..9 {
            for j in 0..9 {
                b[i] += a[(i, j)] * xs[j];
            }
        }
        let x = gj_solve(&a, &b).unwrap();
        for (xi, ei) in x.iter().zip(&xs) {
            assert!((xi - ei).abs() < 1e-10);
        }
    }

    #[test]
    fn reduces_identity_to_identity() {
        let mut aug = Mat::from_fn(4, 5, |i, j| {
            if i == j {
                1.0
            } else if j == 4 {
                (i + 1) as f64
            } else {
                0.0
            }
        });
        gj_reduce_in_place(&mut aug).unwrap();
        for i in 0..4 {
            assert_eq!(aug[(i, 4)], (i + 1) as f64);
        }
    }

    #[test]
    fn multiple_rhs_solved_simultaneously() {
        let a = dd_mat(5);
        let mut aug = Mat::from_fn(5, 7, |i, j| if j < 5 { a[(i, j)] } else { 0.0 });
        // rhs0 = A * e0, rhs1 = A * ones
        for i in 0..5 {
            aug[(i, 5)] = a[(i, 0)];
            aug[(i, 6)] = (0..5).map(|j| a[(i, j)]).sum();
        }
        gj_reduce_in_place(&mut aug).unwrap();
        for i in 0..5 {
            let e0 = if i == 0 { 1.0 } else { 0.0 };
            assert!((aug[(i, 5)] - e0).abs() < 1e-10);
            assert!((aug[(i, 6)] - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn zero_pivot_detected() {
        let mut a = Mat::<f64>::zeros(2, 2);
        a[(0, 1)] = 1.0;
        a[(1, 0)] = 1.0;
        assert!(gj_solve(&a, &[1.0, 1.0]).is_err());
    }

    #[test]
    fn complex_system_solves() {
        let mut a = Mat::from_fn(4, 4, |i, j| C32::new((i + j) as f32, (i * j) as f32 * 0.1));
        a.make_diagonally_dominant();
        let xs: Vec<C32> = (0..4).map(|i| C32::new(i as f32, -(i as f32))).collect();
        let mut b = vec![C32::default(); 4];
        for i in 0..4 {
            for j in 0..4 {
                b[i] += a[(i, j)] * xs[j];
            }
        }
        let x = gj_solve(&a, &b).unwrap();
        for (xi, ei) in x.iter().zip(&xs) {
            assert!((*xi - *ei).abs() < 1e-4);
        }
    }
}
