//! Householder QR factorization (Section III-C) — host reference.
//!
//! The paper uses Householder reflectors "because it is consistent with
//! LAPACK". This implementation follows the LAPACK `geqrf`/`larfg`
//! conventions: reflectors are stored below the diagonal with an implicit
//! unit leading element, R overwrites the upper triangle, and the
//! factorization applies `H_k = I - τ v vᴴ` from the left, so
//! `R = H_n ⋯ H_1 A` and `Q = H_1ᴴ ⋯ H_nᴴ`.

use crate::matrix::Mat;
use crate::scalar::Scalar;

/// In-place Householder QR. Returns the reflector scales τ (one per
/// factored column, zero where the column was already triangular).
pub fn householder_qr_in_place<T: Scalar>(a: &mut Mat<T>) -> Vec<T> {
    let kmax = a.rows().min(a.cols());
    householder_qr_cols_in_place(a, kmax)
}

/// In-place Householder QR of the leading `kmax` columns only; trailing
/// columns (carried right-hand sides of an augmented system) get the
/// reflectors applied but are not themselves factored — the convention of
/// the device kernels' `with_rhs` mode.
pub fn householder_qr_cols_in_place<T: Scalar>(a: &mut Mat<T>, kmax: usize) -> Vec<T> {
    let (m, n) = (a.rows(), a.cols());
    let kmax = kmax.min(m).min(n);
    let mut taus = Vec::with_capacity(kmax);
    for k in 0..kmax {
        let alpha = a[(k, k)];
        let xnorm2: f64 = (k + 1..m).map(|i| a[(i, k)].abs2()).sum();
        if xnorm2 == 0.0 && (!T::IS_COMPLEX || alpha.conj() == alpha) {
            taus.push(T::zero());
            continue;
        }
        let anorm = (alpha.abs2() + xnorm2).sqrt();
        let beta = if alpha.real() >= 0.0 { -anorm } else { anorm };
        let beta_s = T::from_f64(beta);
        let tau = (beta_s - alpha) / beta_s;
        let inv = T::one() / (alpha - beta_s);
        for i in k + 1..m {
            let v = a[(i, k)] * inv;
            a[(i, k)] = v;
        }
        a[(k, k)] = beta_s;
        // Apply H_kᴴ = I - conj(tau) v vᴴ to the trailing columns (LAPACK's
        // larfg builds H whose *adjoint* annihilates the column, so the
        // factorization is R = H_nᴴ ⋯ H_1ᴴ A and Q = H_1 ⋯ H_n).
        let tch = tau.conj();
        for j in k + 1..n {
            let mut w = a[(k, j)];
            for i in k + 1..m {
                w += a[(i, k)].conj() * a[(i, j)];
            }
            let tw = tch * w;
            a[(k, j)] -= tw;
            for i in k + 1..m {
                let upd = a[(i, k)] * tw;
                a[(i, j)] -= upd;
            }
        }
        taus.push(tau);
    }
    taus
}

/// Apply `Qᴴ = H_nᴴ ⋯ H_1ᴴ` to a vector (the factorization-order
/// reflector sweep), as needed for least squares: `Qᴴ b`.
pub fn apply_qh<T: Scalar>(a: &Mat<T>, taus: &[T], b: &mut [T]) {
    let m = a.rows();
    assert_eq!(b.len(), m);
    for (k, &tau) in taus.iter().enumerate() {
        if tau == T::zero() {
            continue;
        }
        let mut w = b[k];
        for i in k + 1..m {
            w += a[(i, k)].conj() * b[i];
        }
        let tw = tau.conj() * w;
        b[k] -= tw;
        for i in k + 1..m {
            let upd = a[(i, k)] * tw;
            b[i] -= upd;
        }
    }
}

/// Materialise the m x m unitary Q from the compact factorization.
pub fn form_q<T: Scalar>(a: &Mat<T>, taus: &[T]) -> Mat<T> {
    let m = a.rows();
    let mut q = Mat::<T>::identity(m);
    // Q = H_1 H_2 ⋯ : apply H_k = I - tau v vᴴ to the columns of the
    // accumulating identity, innermost reflector first.
    for k in (0..taus.len()).rev() {
        let tau = taus[k];
        if tau == T::zero() {
            continue;
        }
        for j in 0..m {
            let mut w = q[(k, j)];
            for i in k + 1..m {
                w += a[(i, k)].conj() * q[(i, j)];
            }
            let tw = tau * w;
            q[(k, j)] -= tw;
            for i in k + 1..m {
                let upd = a[(i, k)] * tw;
                q[(i, j)] -= upd;
            }
        }
    }
    q
}

/// Extract the upper-triangular (actually upper-trapezoidal) R.
pub fn extract_r<T: Scalar>(a: &Mat<T>) -> Mat<T> {
    let (m, n) = (a.rows(), a.cols());
    Mat::from_fn(m.min(n.max(m)).min(m), n, |i, j| {
        if i <= j {
            a[(i, j)]
        } else {
            T::zero()
        }
    })
}

/// Solve the square system `R x = y` by back substitution, using the top
/// n x n triangle of the factored matrix.
pub fn back_substitute<T: Scalar>(a: &Mat<T>, y: &[T]) -> Vec<T> {
    let n = a.cols();
    let mut x = y[..n].to_vec();
    for j in (0..n).rev() {
        let xj = x[j] / a[(j, j)];
        x[j] = xj;
        for i in 0..j {
            let upd = a[(i, j)] * xj;
            x[i] -= upd;
        }
    }
    x
}

/// Solve `A x = b` (square A) via QR: factor, apply Qᴴ to b, back-solve.
pub fn qr_solve<T: Scalar>(a: &Mat<T>, b: &[T]) -> Vec<T> {
    assert_eq!(a.rows(), a.cols(), "qr_solve requires a square system");
    let mut f = a.clone();
    let taus = householder_qr_in_place(&mut f);
    let mut y = b.to_vec();
    apply_qh(&f, &taus, &mut y);
    back_substitute(&f, &y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::C32;

    fn test_mat(m: usize, n: usize) -> Mat<f64> {
        Mat::from_fn(m, n, |i, j| {
            ((i * 31 + j * 17) as f64).sin() + if i == j { 3.0 } else { 0.0 }
        })
    }

    #[test]
    fn qr_reconstructs_square_matrix() {
        let a = test_mat(6, 6);
        let mut f = a.clone();
        let taus = householder_qr_in_place(&mut f);
        let q = form_q(&f, &taus);
        let r = extract_r(&f);
        let qr = q.matmul(&r);
        assert!(qr.frob_dist(&a) < 1e-12 * a.frob_norm());
    }

    #[test]
    fn qr_reconstructs_tall_matrix() {
        let a = test_mat(12, 5);
        let mut f = a.clone();
        let taus = householder_qr_in_place(&mut f);
        let q = form_q(&f, &taus);
        let r = extract_r(&f);
        assert!(q.matmul(&r).frob_dist(&a) < 1e-12 * a.frob_norm());
    }

    #[test]
    fn q_is_orthogonal() {
        let a = test_mat(8, 8);
        let mut f = a.clone();
        let taus = householder_qr_in_place(&mut f);
        let q = form_q(&f, &taus);
        let qtq = q.hermitian_transpose().matmul(&q);
        assert!(qtq.frob_dist(&Mat::identity(8)) < 1e-12);
    }

    #[test]
    fn r_diagonal_is_nonpositive_leading() {
        // Our sign convention: beta = -sign(re alpha) * norm.
        let a = test_mat(5, 5);
        let mut f = a.clone();
        householder_qr_in_place(&mut f);
        for j in 1..5 {
            for i in j + 1..5 {
                // below-diagonal holds reflectors, not zeros — extract_r
                // must mask them.
                let r = extract_r(&f);
                assert_eq!(r[(i, j - 1)], 0.0);
            }
        }
    }

    #[test]
    fn complex_qr_reconstructs() {
        let a = Mat::from_fn(6, 4, |i, j| {
            let h = ((i * 11 + j * 23) % 19) as f32 / 19.0;
            let g = ((i * 5 + j * 13) % 17) as f32 / 17.0;
            C32::new(h + if i == j { 2.0 } else { 0.0 }, g - 0.5)
        });
        let mut f = a.clone();
        let taus = householder_qr_in_place(&mut f);
        let q = form_q(&f, &taus);
        let r = extract_r(&f);
        assert!(q.matmul(&r).frob_dist(&a) < 1e-5 * a.frob_norm() + 1e-5);
        let qhq = q.hermitian_transpose().matmul(&q);
        assert!(qhq.frob_dist(&Mat::identity(6)) < 1e-4);
    }

    #[test]
    fn qr_solve_recovers_known_solution() {
        let a = test_mat(7, 7);
        let xs: Vec<f64> = (0..7).map(|i| (i as f64) - 3.0).collect();
        let mut b = vec![0.0; 7];
        for i in 0..7 {
            for j in 0..7 {
                b[i] += a[(i, j)] * xs[j];
            }
        }
        let x = qr_solve(&a, &b);
        for (xi, ei) in x.iter().zip(&xs) {
            assert!((xi - ei).abs() < 1e-10, "{xi} vs {ei}");
        }
    }

    #[test]
    fn zero_lower_column_gives_zero_tau() {
        let mut a = Mat::<f64>::identity(4);
        let taus = householder_qr_in_place(&mut a);
        assert!(taus.iter().all(|&t| t == 0.0));
        assert!(a.frob_dist(&Mat::identity(4)) < 1e-15);
    }
}
