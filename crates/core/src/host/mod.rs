//! Host (CPU) reference implementations of the paper's four algorithms
//! (Section III) plus GEMM. These serve as correctness oracles for the GPU
//! kernels, as the panel factorizations of the tiled and hybrid paths, and
//! as the building blocks of the `regla-cpu` MKL-style baseline.

pub mod cholesky;
pub mod gemm;
pub mod gj;
pub mod lu;
pub mod ls;
pub mod qr;

pub use cholesky::{cholesky_in_place, cholesky_solve, extract_l, NotPositiveDefinite};
pub use gemm::{gemm, matmul, Op};
pub use gj::{gj_reduce_in_place, gj_solve};
pub use lu::{
    lu_nopivot_in_place, lu_nopivot_solve, lu_partial_pivot_in_place, lu_solve, split_lu,
    ZeroPivot,
};
pub use ls::{least_squares, residual_norm};
pub use qr::{
    apply_qh, back_substitute, extract_r, form_q, householder_qr_in_place, qr_solve,
};
