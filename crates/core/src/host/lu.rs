//! LU factorization (Section III-B) — host reference.
//!
//! The paper's GPU kernels do not pivot (they are benchmarked on diagonally
//! dominant matrices); the pivoting variant is provided for the MKL-style
//! CPU baseline and for correctness oracles.

use crate::matrix::Mat;
use crate::scalar::Scalar;

/// Error for a structurally singular (zero-pivot) factorization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZeroPivot {
    pub column: usize,
}

impl std::fmt::Display for ZeroPivot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "zero pivot encountered in column {}", self.column)
    }
}

impl std::error::Error for ZeroPivot {}

/// In-place LU without pivoting: L (unit diagonal, below) and U (upper)
/// overwrite A, exactly like the paper's kernel output.
pub fn lu_nopivot_in_place<T: Scalar>(a: &mut Mat<T>) -> Result<(), ZeroPivot> {
    let n = a.rows().min(a.cols());
    for k in 0..n {
        let piv = a[(k, k)];
        if piv == T::zero() {
            return Err(ZeroPivot { column: k });
        }
        let inv = T::one() / piv;
        for i in k + 1..a.rows() {
            let l = a[(i, k)] * inv;
            a[(i, k)] = l;
        }
        for j in k + 1..a.cols() {
            let u = a[(k, j)];
            for i in k + 1..a.rows() {
                let upd = a[(i, k)] * u;
                a[(i, j)] -= upd;
            }
        }
    }
    Ok(())
}

/// In-place LU with partial (row) pivoting; returns the pivot vector
/// (`piv[k]` = row swapped into position k at step k).
pub fn lu_partial_pivot_in_place<T: Scalar>(a: &mut Mat<T>) -> Result<Vec<usize>, ZeroPivot> {
    let n = a.rows().min(a.cols());
    let mut piv = Vec::with_capacity(n);
    for k in 0..n {
        // Select the largest magnitude pivot in column k.
        let (mut best, mut best_abs) = (k, a[(k, k)].abs());
        for i in k + 1..a.rows() {
            let v = a[(i, k)].abs();
            if v > best_abs {
                best = i;
                best_abs = v;
            }
        }
        if best_abs == 0.0 {
            return Err(ZeroPivot { column: k });
        }
        if best != k {
            for j in 0..a.cols() {
                let t = a[(k, j)];
                a[(k, j)] = a[(best, j)];
                a[(best, j)] = t;
            }
        }
        piv.push(best);
        let inv = T::one() / a[(k, k)];
        for i in k + 1..a.rows() {
            let l = a[(i, k)] * inv;
            a[(i, k)] = l;
        }
        for j in k + 1..a.cols() {
            let u = a[(k, j)];
            for i in k + 1..a.rows() {
                let upd = a[(i, k)] * u;
                a[(i, j)] -= upd;
            }
        }
    }
    Ok(piv)
}

/// Solve `A x = b` from a pivoted in-place factorization.
pub fn lu_solve<T: Scalar>(lu: &Mat<T>, piv: &[usize], b: &[T]) -> Vec<T> {
    let n = lu.rows();
    assert_eq!(lu.rows(), lu.cols());
    let mut x = b.to_vec();
    // Apply the row exchanges in factorization order.
    for (k, &p) in piv.iter().enumerate() {
        x.swap(k, p);
    }
    // Forward substitution with unit-diagonal L.
    for j in 0..n {
        let xj = x[j];
        for i in j + 1..n {
            let upd = lu[(i, j)] * xj;
            x[i] -= upd;
        }
    }
    // Backward substitution with U.
    for j in (0..n).rev() {
        let xj = x[j] / lu[(j, j)];
        x[j] = xj;
        for i in 0..j {
            let upd = lu[(i, j)] * xj;
            x[i] -= upd;
        }
    }
    x
}

/// Solve from a non-pivoted factorization (`piv` implicitly identity).
pub fn lu_nopivot_solve<T: Scalar>(lu: &Mat<T>, b: &[T]) -> Vec<T> {
    lu_solve(lu, &[], b)
}

/// Reconstruct `P A = L U` products for testing: returns (L, U).
pub fn split_lu<T: Scalar>(lu: &Mat<T>) -> (Mat<T>, Mat<T>) {
    let (m, n) = (lu.rows(), lu.cols());
    let k = m.min(n);
    let l = Mat::from_fn(m, k, |i, j| {
        use std::cmp::Ordering::*;
        match i.cmp(&j) {
            Greater => lu[(i, j)],
            Equal => T::one(),
            Less => T::zero(),
        }
    });
    let u = Mat::from_fn(k, n, |i, j| if i <= j { lu[(i, j)] } else { T::zero() });
    (l, u)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::C32;

    fn dd_mat(n: usize) -> Mat<f64> {
        let mut a = Mat::from_fn(n, n, |i, j| ((i * 7 + j * 3) as f64).sin());
        a.make_diagonally_dominant();
        a
    }

    #[test]
    fn nopivot_reconstructs_dd_matrix() {
        let a = dd_mat(8);
        let mut f = a.clone();
        lu_nopivot_in_place(&mut f).unwrap();
        let (l, u) = split_lu(&f);
        assert!(l.matmul(&u).frob_dist(&a) < 1e-12 * a.frob_norm());
    }

    #[test]
    fn pivoted_reconstructs_general_matrix() {
        let a = Mat::from_fn(6, 6, |i, j| ((i as f64 - j as f64) * 1.3).cos());
        let mut f = a.clone();
        let piv = lu_partial_pivot_in_place(&mut f).unwrap();
        let (l, u) = split_lu(&f);
        // Apply the same row exchanges to A and compare.
        let mut pa = a.clone();
        for (k, &p) in piv.iter().enumerate() {
            if p != k {
                for j in 0..6 {
                    let t = pa[(k, j)];
                    pa[(k, j)] = pa[(p, j)];
                    pa[(p, j)] = t;
                }
            }
        }
        assert!(l.matmul(&u).frob_dist(&pa) < 1e-12 * a.frob_norm());
    }

    #[test]
    fn solve_recovers_solution() {
        let a = dd_mat(7);
        let xs: Vec<f64> = (0..7).map(|i| 1.0 + i as f64).collect();
        let mut b = vec![0.0; 7];
        for i in 0..7 {
            for j in 0..7 {
                b[i] += a[(i, j)] * xs[j];
            }
        }
        let mut f = a.clone();
        let piv = lu_partial_pivot_in_place(&mut f).unwrap();
        let x = lu_solve(&f, &piv, &b);
        for (xi, ei) in x.iter().zip(&xs) {
            assert!((xi - ei).abs() < 1e-10);
        }
    }

    #[test]
    fn zero_pivot_is_reported() {
        let mut a = Mat::<f64>::zeros(3, 3);
        a[(0, 1)] = 1.0;
        let e = lu_nopivot_in_place(&mut a).unwrap_err();
        assert_eq!(e.column, 0);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let mut a = Mat::<f64>::zeros(2, 2);
        a[(0, 1)] = 1.0;
        a[(1, 0)] = 2.0;
        let piv = lu_partial_pivot_in_place(&mut a).unwrap();
        assert_eq!(piv[0], 1);
    }

    #[test]
    fn complex_lu_reconstructs() {
        let mut a = Mat::from_fn(5, 5, |i, j| {
            C32::new((i as f32 * 0.7).cos(), (j as f32 * 0.3).sin())
        });
        a.make_diagonally_dominant();
        let mut f = a.clone();
        lu_nopivot_in_place(&mut f).unwrap();
        let (l, u) = split_lu(&f);
        assert!(l.matmul(&u).frob_dist(&a) < 1e-5 * a.frob_norm());
    }
}
