//! Cholesky factorization — an extension beyond the paper's four
//! algorithms, for the symmetric/Hermitian positive definite systems of
//! its MRI motivation (`A = L Lᴴ`, n³/3 FLOPs, no pivoting needed).

use crate::matrix::Mat;
use crate::scalar::Scalar;

/// Error for a matrix that is not positive definite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotPositiveDefinite {
    pub column: usize,
}

impl std::fmt::Display for NotPositiveDefinite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix is not positive definite at column {}", self.column)
    }
}

impl std::error::Error for NotPositiveDefinite {}

/// In-place lower Cholesky: L overwrites the lower triangle (the upper
/// triangle is left untouched).
pub fn cholesky_in_place<T: Scalar>(a: &mut Mat<T>) -> Result<(), NotPositiveDefinite> {
    let n = a.rows();
    assert_eq!(a.cols(), n, "Cholesky needs a square matrix");
    for k in 0..n {
        let d = a[(k, k)].real() - (0..k).map(|j| a[(k, j)].abs2()).sum::<f64>();
        if d <= 0.0 {
            return Err(NotPositiveDefinite { column: k });
        }
        let lkk = d.sqrt();
        a[(k, k)] = T::from_f64(lkk);
        for i in k + 1..n {
            let mut s = a[(i, k)];
            for j in 0..k {
                let upd = a[(i, j)] * a[(k, j)].conj();
                s -= upd;
            }
            a[(i, k)] = s.scale(1.0 / lkk);
        }
    }
    Ok(())
}

/// Solve `A x = b` from an in-place Cholesky factor (`L y = b`, `Lᴴ x = y`).
pub fn cholesky_solve<T: Scalar>(l: &Mat<T>, b: &[T]) -> Vec<T> {
    let n = l.rows();
    let mut y = b.to_vec();
    for i in 0..n {
        let mut acc = y[i];
        for j in 0..i {
            let upd = l[(i, j)] * y[j];
            acc -= upd;
        }
        y[i] = acc.scale(1.0 / l[(i, i)].real());
    }
    for i in (0..n).rev() {
        let mut acc = y[i];
        for j in i + 1..n {
            let upd = l[(j, i)].conj() * y[j];
            acc -= upd;
        }
        y[i] = acc.scale(1.0 / l[(i, i)].real());
    }
    y
}

/// Extract L (zeroing the strict upper triangle).
pub fn extract_l<T: Scalar>(a: &Mat<T>) -> Mat<T> {
    let n = a.rows();
    Mat::from_fn(n, n, |i, j| if i >= j { a[(i, j)] } else { T::zero() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::C32;

    fn spd(n: usize) -> Mat<f64> {
        // A = B Bᵀ + n I is SPD.
        let b = Mat::from_fn(n, n, |i, j| ((i * 7 + j * 3) % 11) as f64 / 11.0);
        let mut a = b.matmul(&b.hermitian_transpose());
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        a
    }

    #[test]
    fn reconstructs_spd_matrix() {
        let a = spd(8);
        let mut f = a.clone();
        cholesky_in_place(&mut f).unwrap();
        let l = extract_l(&f);
        let llt = l.matmul(&l.hermitian_transpose());
        assert!(llt.frob_dist(&a) < 1e-10 * a.frob_norm());
    }

    #[test]
    fn solve_recovers_solution() {
        let a = spd(7);
        let xs: Vec<f64> = (0..7).map(|i| i as f64 - 3.0).collect();
        let mut b = vec![0.0; 7];
        for i in 0..7 {
            for j in 0..7 {
                b[i] += a[(i, j)] * xs[j];
            }
        }
        let mut f = a.clone();
        cholesky_in_place(&mut f).unwrap();
        let x = cholesky_solve(&f, &b);
        for (xi, ei) in x.iter().zip(&xs) {
            assert!((xi - ei).abs() < 1e-10);
        }
    }

    #[test]
    fn hermitian_complex_case() {
        // A = B Bᴴ + n I with complex B is Hermitian positive definite.
        let b = Mat::from_fn(6, 6, |i, j| {
            C32::new(
                ((i * 5 + j) % 7) as f32 / 7.0,
                ((i + j * 3) % 5) as f32 / 5.0 - 0.4,
            )
        });
        let mut a = b.matmul(&b.hermitian_transpose());
        for i in 0..6 {
            a[(i, i)] += C32::new(6.0, 0.0);
        }
        let mut f = a.clone();
        cholesky_in_place(&mut f).unwrap();
        let l = extract_l(&f);
        let llh = l.matmul(&l.hermitian_transpose());
        assert!(llh.frob_dist(&a) < 1e-4 * a.frob_norm());
    }

    #[test]
    fn rejects_indefinite_matrices() {
        let mut a = Mat::<f64>::identity(3);
        a[(1, 1)] = -1.0;
        let e = cholesky_in_place(&mut a).unwrap_err();
        assert_eq!(e.column, 1);
    }
}
