//! General matrix multiply — host reference (used by the hybrid baseline's
//! panel updates, the speech-GMM example, and as a correctness oracle).

use crate::matrix::Mat;
use crate::scalar::Scalar;

/// Operand transposition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    None,
    /// Conjugate transpose (plain transpose for real scalars).
    ConjTrans,
}

fn dims<T: Scalar>(a: &Mat<T>, op: Op) -> (usize, usize) {
    match op {
        Op::None => (a.rows(), a.cols()),
        Op::ConjTrans => (a.cols(), a.rows()),
    }
}

#[inline]
fn at<T: Scalar>(a: &Mat<T>, op: Op, i: usize, j: usize) -> T {
    match op {
        Op::None => a[(i, j)],
        Op::ConjTrans => a[(j, i)].conj(),
    }
}

/// `C = alpha * op(A) * op(B) + beta * C`.
pub fn gemm<T: Scalar>(
    alpha: T,
    a: &Mat<T>,
    opa: Op,
    b: &Mat<T>,
    opb: Op,
    beta: T,
    c: &mut Mat<T>,
) {
    let (m, ka) = dims(a, opa);
    let (kb, n) = dims(b, opb);
    assert_eq!(ka, kb, "inner dimension mismatch");
    assert_eq!((c.rows(), c.cols()), (m, n), "output shape mismatch");
    for j in 0..n {
        for i in 0..m {
            let mut acc = T::zero();
            for k in 0..ka {
                acc += at(a, opa, i, k) * at(b, opb, k, j);
            }
            c[(i, j)] = alpha * acc + beta * c[(i, j)];
        }
    }
}

/// Convenience: `A * B`.
pub fn matmul<T: Scalar>(a: &Mat<T>, b: &Mat<T>) -> Mat<T> {
    let mut c = Mat::zeros(a.rows(), b.cols());
    gemm(T::one(), a, Op::None, b, Op::None, T::zero(), &mut c);
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::C32;

    #[test]
    fn matches_naive_matmul() {
        let a = Mat::from_fn(3, 4, |i, j| (i * 4 + j) as f64);
        let b = Mat::from_fn(4, 2, |i, j| (i as f64) - (j as f64));
        let c = matmul(&a, &b);
        assert!(c.frob_dist(&a.matmul(&b)) < 1e-14);
    }

    #[test]
    fn conj_trans_multiplies_gram_matrix() {
        let a = Mat::from_fn(5, 3, |i, j| C32::new(i as f32, j as f32));
        let mut g = Mat::zeros(3, 3);
        gemm(
            C32::one(),
            &a,
            Op::ConjTrans,
            &a,
            Op::None,
            C32::zero(),
            &mut g,
        );
        // The Gram matrix is Hermitian with real diagonal.
        for i in 0..3 {
            assert!(g[(i, i)].im.abs() < 1e-5);
            for j in 0..3 {
                assert!((g[(i, j)] - g[(j, i)].conj()).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn alpha_beta_accumulate() {
        let a = Mat::<f64>::identity(2);
        let b = Mat::from_fn(2, 2, |i, j| (i + j) as f64);
        let mut c = Mat::from_fn(2, 2, |_, _| 10.0);
        gemm(2.0, &a, Op::None, &b, Op::None, 0.5, &mut c);
        assert_eq!(c[(0, 0)], 5.0);
        assert_eq!(c[(1, 0)], 7.0);
    }
}
