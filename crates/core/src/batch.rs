//! Batches of equally-shaped matrices, on the host and on the device.
//!
//! The device layout is one column-major matrix after another, which is the
//! layout the paper's kernels consume: the per-block loader (Listing 4)
//! offsets `d_A` to its problem and gathers the 2D-cyclic tile from it.

use crate::matrix::Mat;
use crate::scalar::Scalar;
use regla_gpu_sim::{DPtr, GlobalMemory};

/// A batch of `count` matrices, each `rows x cols`, stored contiguously.
#[derive(Clone, Debug)]
pub struct MatBatch<T> {
    rows: usize,
    cols: usize,
    count: usize,
    data: Vec<T>,
}

impl<T: Scalar> MatBatch<T> {
    pub fn zeros(rows: usize, cols: usize, count: usize) -> Self {
        MatBatch {
            rows,
            cols,
            count,
            data: vec![T::zero(); rows * cols * count],
        }
    }

    /// Build each matrix entry with `f(problem, row, col)`.
    pub fn from_fn(
        rows: usize,
        cols: usize,
        count: usize,
        mut f: impl FnMut(usize, usize, usize) -> T,
    ) -> Self {
        let mut b = Self::zeros(rows, cols, count);
        for k in 0..count {
            for j in 0..cols {
                for i in 0..rows {
                    b.set(k, i, j, f(k, i, j));
                }
            }
        }
        b
    }

    /// Replicate one matrix `count` times.
    pub fn replicate(mat: &Mat<T>, count: usize) -> Self {
        Self::from_fn(mat.rows(), mat.cols(), count, |_, i, j| mat[(i, j)])
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn count(&self) -> usize {
        self.count
    }

    /// Elements per problem.
    pub fn elems_per_mat(&self) -> usize {
        self.rows * self.cols
    }

    /// Device words per problem.
    pub fn words_per_mat(&self) -> usize {
        self.elems_per_mat() * T::WORDS
    }

    #[inline]
    pub fn get(&self, k: usize, i: usize, j: usize) -> T {
        self.data[k * self.elems_per_mat() + j * self.rows + i]
    }

    #[inline]
    pub fn set(&mut self, k: usize, i: usize, j: usize, v: T) {
        let e = self.elems_per_mat();
        self.data[k * e + j * self.rows + i] = v;
    }

    /// Copy problem `k` out as a standalone matrix.
    pub fn mat(&self, k: usize) -> Mat<T> {
        let e = self.elems_per_mat();
        Mat::from_col_major(self.rows, self.cols, &self.data[k * e..(k + 1) * e])
    }

    /// Overwrite problem `k`.
    pub fn set_mat(&mut self, k: usize, m: &Mat<T>) {
        assert_eq!((m.rows(), m.cols()), (self.rows, self.cols));
        let e = self.elems_per_mat();
        self.data[k * e..(k + 1) * e].copy_from_slice(m.data());
    }

    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// Upload the batch to the device; returns the device pointer.
    pub fn to_device(&self, gmem: &mut GlobalMemory) -> DPtr {
        let words = self.words_per_mat() * self.count;
        let ptr = gmem.alloc(words);
        let mut buf = Vec::with_capacity(words);
        for x in &self.data {
            let w = x.to_words();
            buf.extend_from_slice(&w[..T::WORDS]);
        }
        gmem.h2d(ptr, &buf);
        ptr
    }

    /// Download the batch from the device (shape must match).
    pub fn from_device(
        rows: usize,
        cols: usize,
        count: usize,
        gmem: &GlobalMemory,
        ptr: DPtr,
    ) -> Self {
        let words = rows * cols * T::WORDS * count;
        let mut buf = vec![0.0f32; words];
        gmem.d2h(ptr, &mut buf);
        let mut data = Vec::with_capacity(rows * cols * count);
        for chunk in buf.chunks(T::WORDS) {
            let mut w = [0.0f32; 2];
            w[..T::WORDS].copy_from_slice(chunk);
            data.push(T::from_words(w));
        }
        MatBatch {
            rows,
            cols,
            count,
            data,
        }
    }

    /// Horizontally concatenate two batches: `[A | B]` per problem (the
    /// augmented systems the solvers consume).
    pub fn augment(a: &MatBatch<T>, b: &MatBatch<T>) -> MatBatch<T> {
        assert_eq!(a.rows, b.rows, "row mismatch");
        assert_eq!(a.count, b.count, "batch size mismatch");
        MatBatch::from_fn(a.rows, a.cols + b.cols, a.count, |k, i, j| {
            if j < a.cols {
                a.get(k, i, j)
            } else {
                b.get(k, i, j - a.cols)
            }
        })
    }

    /// Copy problems `start .. start + len` into a new batch. Problems are
    /// stored contiguously, so this is one slice copy — the chunking
    /// primitive of the pipelined driver.
    pub fn slice_problems(&self, start: usize, len: usize) -> MatBatch<T> {
        assert!(
            start + len <= self.count,
            "slice {start}..{} exceeds batch of {}",
            start + len,
            self.count
        );
        let e = self.elems_per_mat();
        MatBatch {
            rows: self.rows,
            cols: self.cols,
            count: len,
            data: self.data[start * e..(start + len) * e].to_vec(),
        }
    }

    /// Reassemble equally-shaped batches into one (inverse of slicing a
    /// batch into chunks).
    pub fn concat_problems(parts: &[MatBatch<T>]) -> MatBatch<T> {
        assert!(!parts.is_empty(), "cannot concatenate zero batches");
        let (rows, cols) = (parts[0].rows, parts[0].cols);
        let mut data = Vec::with_capacity(parts.iter().map(|p| p.data.len()).sum());
        let mut count = 0;
        for p in parts {
            assert_eq!((p.rows, p.cols), (rows, cols), "shape mismatch");
            data.extend_from_slice(&p.data);
            count += p.count;
        }
        MatBatch {
            rows,
            cols,
            count,
            data,
        }
    }

    /// Extract a rectangular sub-batch from every problem.
    pub fn sub(&self, r0: usize, c0: usize, rows: usize, cols: usize) -> MatBatch<T> {
        assert!(r0 + rows <= self.rows && c0 + cols <= self.cols);
        MatBatch::from_fn(rows, cols, self.count, |k, i, j| {
            self.get(k, r0 + i, c0 + j)
        })
    }

    /// Extract one column from every problem as an `rows x 1` batch.
    pub fn column(&self, j: usize) -> MatBatch<T> {
        self.sub(0, j, self.rows, 1)
    }

    /// Max Frobenius distance to another batch, per problem.
    pub fn max_frob_dist(&self, other: &MatBatch<T>) -> f64 {
        assert_eq!(self.count, other.count);
        (0..self.count)
            .map(|k| self.mat(k).frob_dist(&other.mat(k)))
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::C32;

    #[test]
    fn per_problem_indexing() {
        let b = MatBatch::from_fn(2, 2, 3, |k, i, j| (100 * k + 10 * i + j) as f32);
        assert_eq!(b.get(2, 1, 0), 210.0);
        assert_eq!(b.mat(1)[(0, 1)], 101.0);
    }

    #[test]
    fn device_round_trip_f32() {
        let b = MatBatch::from_fn(3, 2, 4, |k, i, j| (k + i * 7 + j * 13) as f32);
        let mut mem = GlobalMemory::with_bytes(1 << 16);
        let ptr = b.to_device(&mut mem);
        let back = MatBatch::<f32>::from_device(3, 2, 4, &mem, ptr);
        assert_eq!(back.max_frob_dist(&b), 0.0);
    }

    #[test]
    fn device_round_trip_complex() {
        let b = MatBatch::from_fn(2, 2, 2, |k, i, j| C32::new(k as f32 + i as f32, j as f32));
        let mut mem = GlobalMemory::with_bytes(1 << 16);
        let ptr = b.to_device(&mut mem);
        assert_eq!(mem.allocated_words(), 2 * 2 * 2 * 2);
        let back = MatBatch::<C32>::from_device(2, 2, 2, &mem, ptr);
        assert_eq!(back.max_frob_dist(&b), 0.0);
    }

    #[test]
    fn slice_and_concat_round_trip() {
        let b = MatBatch::from_fn(3, 2, 10, |k, i, j| (k * 100 + i * 10 + j) as f32);
        let parts = [
            b.slice_problems(0, 4),
            b.slice_problems(4, 3),
            b.slice_problems(7, 3),
        ];
        assert_eq!(parts[1].count(), 3);
        assert_eq!(parts[1].get(0, 2, 1), 421.0);
        let back = MatBatch::concat_problems(&parts);
        assert_eq!(back.count(), 10);
        assert_eq!(back.data(), b.data());
    }

    #[test]
    fn replicate_copies_the_prototype() {
        let m = Mat::from_fn(2, 2, |i, j| (i + j) as f32);
        let b = MatBatch::replicate(&m, 5);
        assert_eq!(b.count(), 5);
        assert_eq!(b.mat(4), m);
    }
}
