//! Sequential tiled QR for matrices that exceed one block's register file
//! (Section VII): the paper's 240x66 STAP problems "do not fit in a single
//! thread block so we employ a sequential tiled QR factorization algorithm
//! similar to the approach in the PLASMA multicore linear algebra library".
//!
//! The factorization proceeds by column panels. Each panel is factored by
//! the one-problem-per-block QR kernel on a tall submatrix view; its
//! reflectors are then applied to the trailing columns by the streaming
//! apply kernel. Each problem occupies one block throughout, so a batch of
//! radar problems fills the chip. Between steps the data rests in DRAM,
//! which is why this path has lower arithmetic intensity than the pure
//! register-resident kernels — the paper observes the same slowdown for
//! 240x66 ("some of the register file space is being wasted").

pub mod tsqr;

use crate::api::RunOpts;
use crate::elem::Elem;
use crate::layout::{Layout, LayoutMap};
use crate::per_block::{QrApplyKernel, QrBlockKernel, SubMat};
use crate::status::RecoveryStats;
use regla_gpu_sim::{GlobalMemory, Gpu, LaunchConfig, LaunchError, LaunchStats};
use std::marker::PhantomData;

pub use tsqr::tsqr;

/// Aggregate statistics of a multi-launch operation.
#[derive(Clone, Debug, Default)]
pub struct MultiLaunch {
    pub launches: Vec<LaunchStats>,
    pub time_s: f64,
    pub flops: f64,
    /// What the recovery layer did for this run (all zeros when no fault
    /// was detected and nothing was retried).
    pub recovery: RecoveryStats,
}

impl MultiLaunch {
    pub fn push(&mut self, s: LaunchStats) {
        self.time_s += s.time_s;
        self.flops += s.flops;
        self.launches.push(s);
    }

    pub fn gflops(&self) -> f64 {
        if self.time_s == 0.0 {
            0.0
        } else {
            self.flops / self.time_s / 1e9
        }
    }

    /// Aggregate full-wave phase cycles by label across every launch (in
    /// first-appearance order): where a multi-launch operation spends a
    /// wave's time, phase by phase.
    pub fn phase_totals(&self) -> Vec<(String, f64)> {
        let mut totals: Vec<(String, f64)> = Vec::new();
        for l in &self.launches {
            for pt in &l.phase_times {
                match totals.iter_mut().find(|(n, _)| *n == pt.label) {
                    Some((_, c)) => *c += pt.cycles,
                    None => totals.push((pt.label.clone(), pt.cycles)),
                }
            }
        }
        totals
    }
}

/// Tiled QR of a batch of `count` tall matrices (`m x (n + rhs_cols)`,
/// the trailing `rhs_cols` carried but not factored) already resident on
/// the device at view `a`. Reflector scales are written to `d_tau`
/// (`count * n` elements, allocated by the caller).
///
/// The panel width `nb` comes from the resolved dispatch plan (the tuned
/// knob); every observability/chaos knob (trace sink, sanitizer, watchdog,
/// fault plan, deadline, stall) comes straight from the one [`RunOpts`]
/// the whole run shares.
#[allow(clippy::too_many_arguments)]
pub fn tiled_qr<E: Elem>(
    gpu: &Gpu,
    gmem: &mut GlobalMemory,
    a: SubMat,
    m: usize,
    n: usize,
    rhs_cols: usize,
    count: usize,
    d_tau: regla_gpu_sim::DPtr,
    nb: usize,
    opts: &RunOpts,
) -> Result<MultiLaunch, LaunchError> {
    assert!(m >= n, "tiled QR requires m >= n");
    assert!(nb >= 1, "panel width must be >= 1");
    let mut agg = MultiLaunch::default();
    let cols = n + rhs_cols;
    let mut j0 = 0;
    while j0 < n {
        let pw = nb.min(n - j0);
        let prows = m - j0;
        // --- factor the panel ------------------------------------------
        // The panel (prows x pw) must keep its register tile small; use
        // the same 64/256-thread rule as the square kernels.
        let threads = regla_model::block_plan(prows, pw, 0, E::WORDS).threads;
        let lm = LayoutMap::new(Layout::TwoDCyclic, threads, prows, pw);
        let panel_view = a.offset(j0, j0);
        // Taus for this panel land at bid * pw + k in the scratch region,
        // which is exactly how the apply kernel reads them back
        // (tau_stride = pw, tau_off = 0).
        let kern = QrBlockKernel::<E>::new(panel_view, lm, count).with_tau(d_tau);
        let regs = lm.local_len() * E::WORDS + 14;
        let lc = opts
            .apply_observability(
                LaunchConfig::new(count, threads)
                    .regs(regs)
                    .shared_words(kern.shared_words()),
            )
            .fault(opts.fault)
            .name(format!("qr panel {prows}x{pw} tiled"))
            .deadline_cycles(opts.deadline_cycles)
            .stall_cycles(opts.stall_cycles);
        agg.push(gpu.launch(&kern, &lc, gmem)?);

        // --- apply the reflectors to the trailing columns ---------------
        let tcols = cols - (j0 + pw);
        if tcols > 0 {
            let apply = QrApplyKernel::<E> {
                v: panel_view,
                a: a.offset(j0, j0 + pw),
                d_tau,
                tau_stride: pw,
                tau_off: 0,
                lm,
                nb: pw,
                tcols,
                count,
                _e: PhantomData,
            };
            let lc = opts
                .apply_observability(
                    LaunchConfig::new(count, threads)
                        .regs(regs)
                        .shared_words(apply.shared_words()),
                )
                .fault(opts.fault)
                .name(format!("qr apply {prows}x{tcols} tiled"))
                .deadline_cycles(opts.deadline_cycles)
                .stall_cycles(opts.stall_cycles);
            agg.push(gpu.launch(&apply, &lc, gmem)?);
        }
        j0 += pw;
    }
    Ok(agg)
}
