//! TSQR — communication-avoiding tall-skinny QR (extension).
//!
//! The paper's tiled path (Section VII) factors a tall matrix
//! *sequentially*, panel by panel, inside one block. Its own reference
//! [6] (Ballard, Demmel, Holtz, Schwartz — "Minimizing communication in
//! linear algebra") points at the alternative implemented here: split the
//! matrix into row blocks, factor them **independently** (each a
//! register-resident per-block QR — more blocks in flight, better chip
//! utilisation when the batch is small), then combine the R factors
//! pairwise in a reduction tree. Right-hand-side columns are carried
//! through every stage, so `R` and `Qᴴb` come out together and a least-
//! squares solve only needs the final back substitution.
//!
//! Q is left implicit (the reflector tree is not materialised) — exactly
//! what the radar pipeline needs, which only consumes `R` and `Qᴴb`.

use crate::api::RunOpts;
use crate::elem::Elem;
use crate::layout::{Layout, LayoutMap};
use crate::per_block::{QrBlockKernel, SubMat};
use crate::tiled::MultiLaunch;
use regla_gpu_sim::{BlockCtx, BlockKernel, DPtr, GlobalMemory, Gpu, LaunchConfig, LaunchError};
use std::marker::PhantomData;

/// Gather the top `n x cols` triangles of two factored row blocks into a
/// stacked `2n x cols` combine buffer (one pair per thread block).
struct GatherPairs<E: Elem> {
    src: DPtr,
    dst: DPtr,
    /// (row0 of block, rows of block) for each source block of one problem.
    src_blocks: Vec<(usize, usize)>,
    /// Leading dimension / problem stride of the source (elements).
    src_lda: usize,
    src_stride: usize,
    n: usize,
    cols: usize,
    pairs: usize,
    count: usize,
    _e: PhantomData<E>,
}

impl<E: Elem> BlockKernel for GatherPairs<E> {
    fn run(&self, blk: &mut BlockCtx) {
        let bid = blk.block_id;
        if bid >= self.count * self.pairs {
            return;
        }
        let (p, q) = (bid / self.pairs, bid % self.pairs);
        let n = self.n;
        let cols = self.cols;
        let dst_base = (p * self.pairs + q) * 2 * n * cols;
        let nthreads = blk.num_threads();
        blk.phase_label("tsqr: gather");
        let (src, dst) = (self.src, self.dst);
        let (src_lda, src_stride) = (self.src_lda, self.src_stride);
        let blocks = &self.src_blocks;
        blk.for_each(|t| {
            for which in 0..2 {
                let bi = 2 * q + which;
                if bi >= blocks.len() {
                    // Odd block count: pad the lower half with zeros.
                    let mut e = t.tid;
                    while e < n * cols {
                        let (i, j) = (e % n, e / n);
                        let di = dst_base + j * 2 * n + which * n + i;
                        E::gstore(t, dst, di, E::imm(0.0));
                        e += nthreads;
                    }
                    continue;
                }
                let (row0, _rows) = blocks[bi];
                // Copy the upper-trapezoidal R part (i <= j, plus the
                // carried rhs columns in full height n).
                let mut e = t.tid;
                while e < n * cols {
                    let (i, j) = (e % n, e / n);
                    let si = p * src_stride + j * src_lda + row0 + i;
                    let di = dst_base + j * 2 * n + which * n + i;
                    if i <= j {
                        let v = E::gload(t, src, si);
                        E::gstore(t, dst, di, v);
                    } else {
                        E::gstore(t, dst, di, E::imm(0.0));
                    }
                    e += nthreads;
                }
            }
        });
    }
}

#[allow(clippy::too_many_arguments)]
fn qr_stage<E: Elem>(
    gpu: &Gpu,
    gmem: &mut GlobalMemory,
    view: SubMat,
    rows: usize,
    nfac: usize,
    rhs: usize,
    count: usize,
    opts: &RunOpts,
    agg: &mut MultiLaunch,
) -> Result<(), LaunchError> {
    let plan = regla_model::block_plan(rows, nfac, rhs, E::WORDS);
    let lm = LayoutMap::new(Layout::TwoDCyclic, plan.threads, rows, nfac + rhs);
    let kern = QrBlockKernel::<E>::new(view, lm, count).with_rhs(rhs);
    let lc = opts
        .apply_observability(
            LaunchConfig::new(count, lm.p)
                .regs(lm.local_len() * E::WORDS + 14)
                .shared_words(kern.shared_words()),
        )
        .name(format!("tsqr factor {rows}x{}", nfac + rhs));
    agg.push(gpu.launch(&kern, &lc, gmem)?);
    Ok(())
}

/// TSQR of a device batch at `a` (`m x (n + rhs)` per problem): on return,
/// the returned pointer holds `count` matrices of `n x (n + rhs)` whose
/// upper triangle is R and whose trailing columns are `Qᴴ b`.
///
/// Every stage launch applies the one observability config of `opts`; the
/// first-stage row-block height comes from [`RunOpts::tsqr_block_rows`]
/// (`0` = twice the column count).
#[allow(clippy::too_many_arguments)]
pub fn tsqr<E: Elem>(
    gpu: &Gpu,
    gmem: &mut GlobalMemory,
    a: SubMat,
    m: usize,
    n: usize,
    rhs: usize,
    count: usize,
    opts: &RunOpts,
) -> Result<(DPtr, MultiLaunch), LaunchError> {
    assert!(m >= n, "TSQR needs a tall matrix");
    let cols = n + rhs;
    let mut agg = MultiLaunch::default();

    // ---- Stage 0: independent QR of each row block, in place -----------
    let h0 = if opts.tsqr_block_rows >= n {
        opts.tsqr_block_rows
    } else {
        (2 * cols).max(n)
    };
    let nblocks0 = m.div_ceil(h0).max(1);
    let mut row_blocks: Vec<(usize, usize)> = (0..nblocks0)
        .map(|b| {
            let r0 = b * h0;
            (r0, h0.min(m - r0))
        })
        .collect();
    // A short last block (< n rows) is merged into its predecessor.
    if let Some(&(r0, rows)) = row_blocks.last() {
        if rows < n && row_blocks.len() > 1 {
            row_blocks.pop();
            let (pr0, prows) = *row_blocks.last().unwrap();
            *row_blocks.last_mut().unwrap() = (pr0, prows + (r0 + rows) - (pr0 + prows));
        }
    }
    for &(r0, rows) in &row_blocks {
        qr_stage::<E>(gpu, gmem, a.offset(r0, 0), rows, n, rhs, count, opts, &mut agg)?;
    }

    // ---- Combine stages: pairwise QR of stacked R factors --------------
    //
    // A "block origin" below is a flat element offset added to the column
    // address (`p*stride + j*lda + origin + i`): for stage 0 it is the row
    // offset of the block; for combined stages it is `q * 2n * cols`, the
    // start of pair q's contiguous 2n x cols result.
    let mut src = a;
    let mut src_blocks = row_blocks;
    while src_blocks.len() > 1 {
        let pairs = src_blocks.len().div_ceil(2);
        let stacked = gmem.alloc(count * pairs * 2 * n * cols * E::WORDS);
        let gather = GatherPairs::<E> {
            src: src.ptr,
            dst: stacked,
            src_blocks: src_blocks.clone(),
            src_lda: src.lda,
            src_stride: src.stride,
            n,
            cols,
            pairs,
            count,
            _e: PhantomData,
        };
        let lc = opts
            .apply_observability(LaunchConfig::new(count * pairs, 64).regs(16).shared_words(0))
            .name(format!("tsqr gather {pairs} pairs"));
        agg.push(gpu.launch(&gather, &lc, gmem)?);

        // Factor every stacked pair: count*pairs problems of 2n x cols.
        let view = SubMat::whole(stacked, 2 * n, cols);
        qr_stage::<E>(gpu, gmem, view, 2 * n, n, rhs, count * pairs, opts, &mut agg)?;

        src = SubMat {
            ptr: stacked,
            lda: 2 * n,
            row0: 0,
            col0: 0,
            stride: pairs * 2 * n * cols,
        };
        src_blocks = (0..pairs).map(|q| (q * 2 * n * cols, 2 * n)).collect();
    }

    // Normalise the surviving R|Qᴴb into a compact n x cols buffer.
    let scratch = gmem.alloc(count * 2 * n * cols * E::WORDS);
    let gather = GatherPairs::<E> {
        src: src.ptr,
        dst: scratch,
        src_blocks: vec![src_blocks[0]],
        src_lda: src.lda,
        src_stride: src.stride,
        n,
        cols,
        pairs: 1,
        count,
        _e: PhantomData,
    };
    let lc = opts
        .apply_observability(LaunchConfig::new(count, 64).regs(16).shared_words(0))
        .name("tsqr compact");
    agg.push(gpu.launch(&gather, &lc, gmem)?);
    let out = gmem.alloc(count * n * cols * E::WORDS);
    let compact = CompactTop::<E> {
        src: scratch,
        dst: out,
        n,
        cols,
        count,
        _e: PhantomData,
    };
    agg.push(gpu.launch(&compact, &lc, gmem)?);
    Ok((out, agg))
}

/// Copy the top `n x cols` of each `2n x cols` scratch problem to `dst`.
struct CompactTop<E: Elem> {
    src: DPtr,
    dst: DPtr,
    n: usize,
    cols: usize,
    count: usize,
    _e: PhantomData<E>,
}

impl<E: Elem> BlockKernel for CompactTop<E> {
    fn run(&self, blk: &mut BlockCtx) {
        let p = blk.block_id;
        if p >= self.count {
            return;
        }
        let (n, cols) = (self.n, self.cols);
        let nthreads = blk.num_threads();
        let (src, dst) = (self.src, self.dst);
        blk.phase_label("tsqr: compact");
        blk.for_each(|t| {
            let mut e = t.tid;
            while e < n * cols {
                let (i, j) = (e % n, e / n);
                let v = E::gload(t, src, p * 2 * n * cols + j * 2 * n + i);
                E::gstore(t, dst, p * n * cols + j * n + i, v);
                e += nthreads;
            }
        });
    }
}
