//! Shared machinery for the one-problem-per-block kernels.

use crate::elem::Elem;
use crate::layout::LayoutMap;
use regla_gpu_sim::{BlockCtx, DPtr, RegArray, ThreadCtx};

/// A (sub)matrix view into a device batch: problem `b`'s element (i, j)
/// lives at `b*stride + (col0 + j)*lda + row0 + i` (element units).
#[derive(Clone, Copy, Debug)]
pub struct SubMat {
    pub ptr: DPtr,
    /// Leading dimension of the stored matrix, in elements.
    pub lda: usize,
    pub row0: usize,
    pub col0: usize,
    /// Elements between consecutive problems.
    pub stride: usize,
}

impl SubMat {
    /// View of whole `rows x cols` matrices stored contiguously.
    pub fn whole(ptr: DPtr, rows: usize, cols: usize) -> Self {
        SubMat {
            ptr,
            lda: rows,
            row0: 0,
            col0: 0,
            stride: rows * cols,
        }
    }

    /// Shift the view to a submatrix at (row0 + r, col0 + c).
    pub fn offset(self, r: usize, c: usize) -> Self {
        SubMat {
            row0: self.row0 + r,
            col0: self.col0 + c,
            ..self
        }
    }

    /// Element index of (i, j) in problem `b`.
    #[inline]
    pub fn index(&self, b: usize, i: usize, j: usize) -> usize {
        b * self.stride + (self.col0 + j) * self.lda + self.row0 + i
    }
}

/// Shared-memory slot map for the factorization kernels (element units):
/// a column vector, a row vector, four scalars, and per-column reduction
/// partials of width `red_width`.
#[derive(Clone, Copy, Debug)]
pub struct SharedMap {
    pub m: usize,
    pub cols: usize,
    pub red_width: usize,
}

impl SharedMap {
    pub fn new(lm: &LayoutMap) -> Self {
        SharedMap {
            m: lm.rows,
            cols: lm.cols,
            red_width: lm.red_width(),
        }
    }

    /// Column-vector slot (v of the Householder step / l of LU).
    #[inline]
    pub fn sv(&self, i: usize) -> usize {
        i
    }

    /// Row-vector slot (u of LU / τ·w of QR).
    #[inline]
    pub fn sr(&self, j: usize) -> usize {
        self.m + j
    }

    /// Scalar slots: 0 = alpha/pivot, 1 = tau, 2 = inverse/scale, 3 = xj.
    #[inline]
    pub fn se(&self, k: usize) -> usize {
        debug_assert!(k < 4);
        self.m + self.cols + k
    }

    /// Reduction partial for column `j`, owner rank `r`.
    #[inline]
    pub fn part(&self, j: usize, r: usize) -> usize {
        debug_assert!(r < self.red_width);
        self.m + self.cols + 4 + j * self.red_width + r
    }

    /// Total shared elements needed.
    pub fn elems(&self) -> usize {
        self.m + self.cols + 4 + self.cols * self.red_width
    }

    /// Total shared 32-bit words for element type `E`.
    pub fn words<E: Elem>(&self) -> usize {
        self.elems() * E::WORDS
    }
}

/// Per-thread ownership tables, precomputed once per block to keep the
/// functional simulation fast. Suffix slices stand in for the loop bounds
/// a CUDA kernel would resolve at compile time.
pub struct OwnTables {
    /// Sorted owned global rows, per thread.
    pub rows: Vec<Vec<usize>>,
    /// Sorted owned global columns, per thread.
    pub cols: Vec<Vec<usize>>,
}

impl OwnTables {
    pub fn new(lm: &LayoutMap) -> Self {
        OwnTables {
            rows: (0..lm.p).map(|t| lm.owned_rows(t, 0)).collect(),
            cols: (0..lm.p).map(|t| lm.owned_cols(t, 0, lm.cols)).collect(),
        }
    }

    /// Owned rows >= r0 for thread `t`.
    #[inline]
    pub fn rows_from(&self, t: usize, r0: usize) -> &[usize] {
        let v = &self.rows[t];
        &v[v.partition_point(|&i| i < r0)..]
    }

    /// Owned cols >= c0 for thread `t`.
    #[inline]
    pub fn cols_from(&self, t: usize, c0: usize) -> &[usize] {
        let v = &self.cols[t];
        &v[v.partition_point(|&j| j < c0)..]
    }
}

/// Load each thread's 2D-cyclic (or 1D) register tile from global memory
/// (the paper's Listing 4).
pub fn load_tile<E: Elem>(
    blk: &mut BlockCtx,
    lm: &LayoutMap,
    own: &OwnTables,
    a: &SubMat,
    regs: &mut [RegArray<E>],
) {
    let bid = blk.block_id;
    blk.phase_label("load");
    blk.for_each(|t| {
        for &i in own.rows_from(t.tid, 0) {
            for &j in own.cols_from(t.tid, 0) {
                let v = E::gload(t, a.ptr, a.index(bid, i, j));
                regs[t.tid].set(t, lm.local_index(i, j), v);
            }
        }
    });
    blk.sync();
}

/// Store the register tiles back to global memory.
pub fn store_tile<E: Elem>(
    blk: &mut BlockCtx,
    lm: &LayoutMap,
    own: &OwnTables,
    a: &SubMat,
    regs: &mut [RegArray<E>],
) {
    let bid = blk.block_id;
    blk.phase_label("store");
    blk.for_each(|t| {
        for &i in own.rows_from(t.tid, 0) {
            for &j in own.cols_from(t.tid, 0) {
                let v = regs[t.tid].get(t, lm.local_index(i, j));
                E::gstore(t, a.ptr, a.index(bid, i, j), v);
            }
        }
    });
}

/// Serial reduction of the partials for column `j` (ranks `0..red_width`),
/// performed by the calling thread; returns the sum.
pub fn reduce_column<E: Elem>(t: &mut ThreadCtx, sm: &SharedMap, j: usize) -> E {
    let mut acc = E::imm(0.0);
    for r in 0..sm.red_width {
        let p = E::sload(t, sm.part(j, r));
        acc = E::add(t, p, acc);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::Layout;
    use regla_gpu_sim::Rv;

    #[test]
    fn submat_indexing_walks_problems_and_offsets() {
        let s = SubMat::whole(regla_gpu_sim::DPtr::new(0), 8, 4).offset(2, 1);
        // problem 1, local (0,0) -> 1*32 + 1*8 + 2 = 42
        assert_eq!(s.index(1, 0, 0), 42);
        assert_eq!(s.index(0, 3, 2), 3 * 8 + 2 + 3);
    }

    #[test]
    fn shared_map_slots_do_not_overlap() {
        let lm = LayoutMap::new(Layout::TwoDCyclic, 64, 24, 25);
        let sm = SharedMap::new(&lm);
        let mut seen = std::collections::HashSet::new();
        for i in 0..sm.m {
            assert!(seen.insert(sm.sv(i)));
        }
        for j in 0..sm.cols {
            assert!(seen.insert(sm.sr(j)));
        }
        for k in 0..4 {
            assert!(seen.insert(sm.se(k)));
        }
        for j in 0..sm.cols {
            for r in 0..sm.red_width {
                assert!(seen.insert(sm.part(j, r)));
            }
        }
        assert_eq!(seen.len(), sm.elems());
        assert_eq!(sm.words::<Rv>(), sm.elems());
    }

    #[test]
    fn own_tables_suffixes_match_layout() {
        let lm = LayoutMap::new(Layout::TwoDCyclic, 16, 10, 10);
        let own = OwnTables::new(&lm);
        for t in 0..16 {
            assert_eq!(own.rows_from(t, 5), &lm.owned_rows(t, 5)[..]);
            assert_eq!(own.cols_from(t, 7), &lm.owned_cols(t, 7, 10)[..]);
        }
    }
}
